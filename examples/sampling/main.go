// Sampling: Pitfalls 2 and 3 with sampling campaigns. Estimates the
// failure count of a benchmark three ways — correct raw-space sampling,
// effective-population sampling (Corollary 1), and the biased
// class-uniform sampling of Pitfall 2 — and compares each against the
// full-scan ground truth.
//
// Run with:
//
//	go run ./examples/sampling [N [seed]]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"faultspace"
	"faultspace/internal/experiments"
	"faultspace/internal/progs"
)

func main() {
	n, seed := 2000, int64(1)
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil || v <= 0 {
			log.Fatalf("bad sample count %q", os.Args[1])
		}
		n = v
	}
	if len(os.Args) > 2 {
		v, err := strconv.ParseInt(os.Args[2], 10, 64)
		if err != nil {
			log.Fatalf("bad seed %q", os.Args[2])
		}
		seed = v
	}

	prog, err := progs.Sync2(3, 64).Baseline()
	if err != nil {
		log.Fatal(err)
	}
	s, err := experiments.Sampling(prog, n, seed, faultspace.ScanOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark: %s, N = %d samples, seed = %d\n", s.Name, s.N, s.Seed)
	fmt.Printf("ground truth (full scan): F = %d failures, coverage = %.2f%%\n\n",
		s.TrueFailWeight, 100*s.TrueCoverage)

	fmt.Printf("%-18s %12s %10s %12s %26s\n",
		"mode", "population", "sampled F", "experiments", "extrapolated F [95% CI]")
	for _, est := range []experiments.SampleEstimate{s.Raw, s.Effective, s.Biased} {
		fmt.Printf("%-18s %12d %10d %12d %10.0f [%.0f, %.0f]\n",
			est.Mode, est.Population, est.SampledFail, est.Experiments,
			est.FailEstimate, est.FailLo, est.FailHi)
	}

	fmt.Println()
	fmt.Println("raw/effective sampling extrapolate to the fault-space size (Pitfall 3,")
	fmt.Println("Corollary 2) and land on the ground truth. The class-uniform estimator")
	fmt.Println("ignores equivalence-class weights (Pitfall 2): its per-draw failure")
	fmt.Printf("proportion (%.1f%% vs the true %.1f%%) — and any coverage derived from\n",
		100*(1-float64(s.Biased.CoverageEstimate)), 100*(1-s.TrueCoverage))
	fmt.Println("it — is an artifact of how the benchmark's data lifetimes are sliced.")
}
