// Quickstart: assemble a tiny fav32 program, scan its complete fault
// space, and print both the fault-coverage factor and the paper's
// comparison metric (absolute failure counts).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"faultspace"
)

// The program under test writes a greeting into RAM, reads it back and
// prints it — the paper's §IV "Hi" example.
const src = `
        .ram    2               ; two bytes of RAM: the whole fault space
        .equ    SERIAL, 0x10000
        .data
msg:    .space  2
        .text
        sbi     'H', msg+0(r0)
        nop
        sbi     'i', msg+1(r0)
        lb      r1, msg+0(r0)
        sb      r1, SERIAL(r0)
        lb      r2, msg+1(r0)
        sb      r2, SERIAL(r0)
        halt
`

func main() {
	prog, err := faultspace.AssembleSource("quickstart", src)
	if err != nil {
		log.Fatal(err)
	}

	// Scan runs the golden (fault-free) run, prunes the fault space into
	// def/use equivalence classes, and injects one single-bit flip per
	// class — a complete fault-space scan.
	scan, err := faultspace.Scan(prog, faultspace.ScanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	a, err := faultspace.Analyze(scan)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("golden run: %d cycles, output %q\n", scan.Golden.Cycles, scan.Golden.Serial)
	fmt.Printf("fault space: w = Δt·Δm = %d × %d = %d single-bit-flip coordinates\n",
		a.RuntimeCycles, a.MemoryBits, a.SpaceSize)
	fmt.Printf("def/use pruning: %d experiments cover the whole space (%d coordinates known benign)\n",
		a.Classes, a.KnownNoEffect)
	fmt.Println()
	fmt.Printf("fault coverage (weighted):   %.1f%%\n", 100*a.CoverageWeighted)
	fmt.Printf("absolute failure count F:    %d of %d coordinates\n", a.FailWeight, a.SpaceSize)
	fmt.Println()
	fmt.Println("The coverage percentage depends on the benchmark's runtime and memory")
	fmt.Println("size, so it must never be used to compare two different programs; the")
	fmt.Println("extrapolated absolute failure count F is the valid comparison metric")
	fmt.Println("(Schirmeier et al., DSN 2015). Try ../dilution to see coverage fooled.")
}
