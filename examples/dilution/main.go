// Dilution: the paper's §IV Gedankenexperiment end-to-end. A bogus
// "fault-tolerance" transformation (DFT) that merely prepends NOPs inflates
// the fault-coverage metric from 62.5 % to 75.0 % — and DFT′ (dummy loads)
// defeats the "count only activated faults" rule too — while the absolute
// failure count exposes both as useless.
//
// Run with:
//
//	go run ./examples/dilution [n]
//
// where n is the number of prepended instructions (default 4, the paper's
// value; try larger n to push coverage arbitrarily close to 100 %).
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"faultspace"
	"faultspace/internal/experiments"
)

func main() {
	n := 4
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil || v < 0 {
			log.Fatalf("bad dilution count %q", os.Args[1])
		}
		n = v
	}

	d, err := experiments.Dilution(n, faultspace.ScanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Verify(); err != nil {
		log.Fatalf("dilution invariants violated: %v", err)
	}

	fmt.Printf("the fault-space dilution delusion (n = %d)\n\n", n)
	fmt.Printf("%-22s %6s %8s %6s %10s %16s\n",
		"variant", "Δt", "w", "F", "coverage", "activated-only")
	for _, v := range []experiments.VariantAnalysis{d.Baseline, d.DFT, d.DFTPrime} {
		fmt.Printf("%-22s %6d %8d %6d %9.1f%% %15.1f%%\n",
			v.Name, v.RuntimeCycles, v.SpaceSize, v.FailWeight,
			100*v.CoverageWeighted, 100*v.CoverageActivatedOnly)
	}

	fmt.Println()
	fmt.Printf("coverage gain from DFT:  %+.1f percentage points — for a transformation\n",
		d.CmpDFT.CoverageGainWeighted)
	fmt.Println("that provably prevents nothing:")
	fmt.Printf("failure-count ratio r(DFT)  = %.3f (1.000 = exactly as susceptible)\n",
		d.CmpDFT.RatioWeighted)
	fmt.Printf("failure-count ratio r(DFT') = %.3f\n", d.CmpDFTPrime.RatioWeighted)
	fmt.Println()
	if d.CmpDFT.Misleading() {
		fmt.Println("-> the fault-coverage metric was successfully fooled (Pitfall 3);")
		fmt.Println("   the absolute failure count was not.")
	}
}
