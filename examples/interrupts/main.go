// Interrupts: deterministic external events (§II-C of the paper). The
// machine model requires that timer interrupts replay at exactly the same
// cycle in every run, so fault-injection campaigns stay repeatable even
// for interrupt-driven and preemptively scheduled programs.
//
// This example runs two interrupt-driven benchmarks — clock1 (an ISR
// maintaining a tick counter) and preempt1 (a purely timer-driven
// preemptive two-thread scheduler) — shows that their outputs are
// invariant under the timer period, and scans preempt1's fault space in
// both variants: the hardened scheduler keeps every preempted thread
// context in protected memory and eliminates the baseline's failures.
//
// Run with:
//
//	go run ./examples/interrupts
package main

import (
	"fmt"
	"log"

	"faultspace"
	"faultspace/internal/progs"
	"faultspace/internal/trace"
)

func main() {
	fmt.Println("determinism under replayed timer interrupts")
	fmt.Println()

	// clock1: the ISR increments a tick counter the main loop polls.
	clock, err := progs.Clock1(6, 64).Baseline()
	if err != nil {
		log.Fatal(err)
	}
	g, err := trace.Record(clock.Name, faultspace.MachineConfig(clock),
		clock.Code, clock.Image, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %6d cycles, output %q\n", clock.Name, g.Cycles, g.Serial)

	// preempt1: two threads, no yields — the timer slices them. The
	// computed results must not depend on where the slices fall.
	fmt.Println()
	fmt.Println("preempt1 under different timer periods (results must agree):")
	var reference string
	for _, period := range []uint64{48, 97, 1024} {
		p, err := progs.Preempt1(60, period).Baseline()
		if err != nil {
			log.Fatal(err)
		}
		g, err := trace.Record(p.Name, faultspace.MachineConfig(p), p.Code, p.Image, 1<<20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  period %4d: %6d cycles, output %q\n", period, g.Cycles, g.Serial)
		if reference == "" {
			reference = string(g.Serial)
		} else if string(g.Serial) != reference {
			log.Fatalf("preemption broke determinism: %q != %q", g.Serial, reference)
		}
	}

	// Fault-inject the preemptive system: every register of a preempted
	// thread spends its suspension in the protected ICTX area, so SUM+DMR
	// covers the entire context-switch path.
	fmt.Println()
	fmt.Println("full fault-space scan of the preemptive scheduler:")
	spec := progs.Preempt1(40, 48)
	for _, hardened := range []bool{false, true} {
		build := spec.Baseline
		if hardened {
			build = spec.Hardened
		}
		p, err := build()
		if err != nil {
			log.Fatal(err)
		}
		scan, err := faultspace.Scan(p, faultspace.ScanOptions{})
		if err != nil {
			log.Fatal(err)
		}
		a, err := faultspace.Analyze(scan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-26s F = %7d of w = %8d (coverage %.2f%%)\n",
			a.Name, a.FailWeight, a.SpaceSize, 100*a.CoverageWeighted)
	}
}
