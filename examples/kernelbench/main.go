// Kernelbench: the Figure-2 reproduction. Runs complete fault-space scans
// of the bin_sem2 and sync2 kernel benchmarks in their baseline and
// SUM+DMR-hardened variants and prints every panel of the figure,
// culminating in the paper's headline result: for sync2 the coverage
// metric reports an improvement while the program actually became more
// than five times as susceptible to soft errors.
//
// Run with:
//
//	go run ./examples/kernelbench
package main

import (
	"fmt"
	"log"
	"os"

	"faultspace"
	"faultspace/internal/experiments"
	"faultspace/internal/report"
)

func main() {
	f2, err := experiments.Figure2(experiments.Figure2Config{}, faultspace.ScanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	pairs := []experiments.Pair{f2.BinSem2, f2.Sync2}

	coverage := &report.BarChart{Title: "fault coverage, weighted (Figure 2b)", Unit: "%"}
	failures := &report.BarChart{Title: "absolute failure counts, weighted (Figure 2e)", Unit: ""}
	runtime := &report.BarChart{Title: "runtime (Figure 2g)", Unit: " cycles"}
	for _, p := range pairs {
		for _, v := range []experiments.VariantAnalysis{p.Baseline, p.Hardened} {
			coverage.Add(v.Name, 100*v.CoverageWeighted)
			failures.Add(v.Name, float64(v.FailWeight))
			runtime.Add(v.Name, float64(v.RuntimeCycles))
		}
	}
	for _, c := range []*report.BarChart{coverage, failures, runtime} {
		if err := c.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	for _, p := range pairs {
		verdict := "the mechanism helps"
		if !p.Cmp.FailuresSayImproved() {
			verdict = "the mechanism makes the program MORE susceptible"
		}
		fmt.Printf("%s:\n", p.Name)
		fmt.Printf("  coverage gain: %+.1f pp (the coverage metric %s an improvement)\n",
			p.Cmp.CoverageGainWeighted, claims(p.Cmp.CoverageSaysImproved()))
		fmt.Printf("  failure ratio: r = %.2f -> %s\n", p.Cmp.RatioWeighted, verdict)
		if p.Cmp.Misleading() {
			fmt.Println("  ** the two metrics disagree: trusting fault coverage here leads")
			fmt.Println("     to a wrong design decision (the paper's sync2 result, §V-B) **")
		}
		fmt.Println()
	}
}

func claims(b bool) string {
	if b {
		return "claims"
	}
	return "denies"
}
