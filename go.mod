module faultspace

go 1.22
