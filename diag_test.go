package faultspace

import (
	"fmt"
	"sort"
	"testing"

	"faultspace/internal/progs"
)

// TestDiagFailureWeightByRegion is a tuning aid: it buckets weighted
// failure counts by RAM byte address so the lifetime structure of each
// benchmark is visible. Run with -v.
func TestDiagFailureWeightByRegion(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	specs := []progs.Spec{progs.BinSem2(4), progs.Sync2(3, 64)}
	for _, spec := range specs {
		for _, hardened := range []bool{false, true} {
			p, err := spec.Baseline()
			if hardened {
				p, err = spec.Hardened()
			}
			if err != nil {
				t.Fatal(err)
			}
			scan, err := Scan(p, ScanOptions{})
			if err != nil {
				t.Fatal(err)
			}
			byByte := map[uint32]uint64{}
			for i, o := range scan.Outcomes {
				if o.Benign() {
					continue
				}
				c := scan.Space.Classes[i]
				byByte[uint32(c.Bit/8)] += c.Weight()
			}
			// Aggregate into 32-byte buckets.
			byBucket := map[uint32]uint64{}
			for b, w := range byByte {
				byBucket[b/32*32] += w
			}
			keys := make([]uint32, 0, len(byBucket))
			for k := range byBucket {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			var total uint64
			for _, w := range byBucket {
				total += w
			}
			lines := ""
			for _, k := range keys {
				lines += fmt.Sprintf("  [%3d,%3d): %8d (%5.1f%%)\n", k, k+32, byBucket[k],
					100*float64(byBucket[k])/float64(total))
			}
			t.Logf("%s (Δt=%d, failW=%d):\n%s", p.Name, scan.Golden.Cycles, total, lines)
		}
	}
}
