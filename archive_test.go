package faultspace

import (
	"bytes"
	"strings"
	"testing"

	"faultspace/internal/progs"
)

func scanHi(t *testing.T, opts ScanOptions) *ScanResult {
	t.Helper()
	p, err := progs.Hi().Baseline()
	if err != nil {
		t.Fatal(err)
	}
	scan, err := Scan(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return scan
}

func TestScanArchiveRoundTrip(t *testing.T) {
	for _, space := range []SpaceKind{SpaceMemory, SpaceRegisters} {
		scan := scanHi(t, ScanOptions{Space: space})
		var buf bytes.Buffer
		if err := SaveScan(&buf, scan); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadScan(&buf)
		if err != nil {
			t.Fatal(err)
		}

		orig := MustAnalyze(scan)
		got := MustAnalyze(loaded)
		if got != orig {
			t.Errorf("%s: analysis after round trip differs:\n got %+v\nwant %+v", space, got, orig)
		}
		if len(loaded.Outcomes) != len(scan.Outcomes) {
			t.Fatalf("outcome count differs")
		}
		for i := range scan.Outcomes {
			if loaded.Outcomes[i] != scan.Outcomes[i] {
				t.Fatalf("outcome %d differs", i)
			}
		}
		// Locate still works on the reconstructed space.
		c := loaded.Space.Classes[0]
		ci, ok, err := loaded.Space.Locate(c.Slot(), c.Bit)
		if err != nil || !ok || ci != 0 {
			t.Errorf("Locate on loaded space: ci=%d ok=%v err=%v", ci, ok, err)
		}
	}
}

func TestLoadScanRejectsGarbage(t *testing.T) {
	cases := []string{
		``,
		`not json`,
		`{"version":99}`,
		`{"version":1,"space":"plutonium","cycles":1,"bits":8}`,
		// Partition violation: class weights don't add up.
		`{"version":1,"name":"x","space":"memory","cycles":10,"bits":8,
		  "knownNoEffect":0,"classes":[{"b":0,"d":0,"u":5,"o":0}]}`,
		// Unknown outcome code.
		`{"version":1,"name":"x","space":"memory","cycles":10,"bits":1,
		  "knownNoEffect":5,"classes":[{"b":0,"d":0,"u":5,"o":200}]}`,
		// Out-of-order classes (outcome pairing would be silently wrong).
		`{"version":1,"name":"x","space":"memory","cycles":10,"bits":2,
		  "knownNoEffect":8,"classes":[{"b":1,"d":0,"u":6,"o":0},{"b":0,"d":0,"u":6,"o":0}]}`,
	}
	for i, src := range cases {
		if _, err := LoadScan(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: LoadScan accepted invalid archive", i)
		}
	}
}

func TestSaveScanValidates(t *testing.T) {
	scan := scanHi(t, ScanOptions{})
	scan.Outcomes = scan.Outcomes[:1] // corrupt the pairing
	var buf bytes.Buffer
	if err := SaveScan(&buf, scan); err == nil {
		t.Error("SaveScan must reject mismatched outcome counts")
	}
}
