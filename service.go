package faultspace

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"faultspace/internal/cluster"
	"faultspace/internal/service"
	"faultspace/internal/telemetry"
)

// CampaignServiceOptions parameterizes ServeCampaigns.
type CampaignServiceOptions struct {
	// ArchiveDir is the directory of the content-addressed result
	// archive. Empty keeps results in memory only.
	ArchiveDir string
	// MaxArchiveBytes caps the archive size; least-recently-used entries
	// are evicted beyond it (0 = unbounded).
	MaxArchiveBytes int64
	// MaxActive bounds concurrently running campaigns (default 2);
	// MaxQueued bounds waiting ones across all tenants (default 16,
	// beyond it submissions get 429 + Retry-After).
	MaxActive int
	MaxQueued int
	// UnitSize and LeaseTTL parameterize each campaign's coordinator.
	UnitSize int
	LeaseTTL time.Duration
	// StarveAfter is the starved-tenant watchdog threshold: a campaign
	// still queued this long flags its tenant in /v1/status, the trace
	// stream and the fleet.starved_tenants gauge (default 2m).
	StarveAfter time.Duration
	// LocalWorkers starts this many in-process fleet workers against the
	// service's own address, so a single favserve process can execute
	// campaigns without external workers joining.
	LocalWorkers int
	// WorkerOptions configures the local fleet workers (strategy,
	// parallelism, predecode, memo). WorkerID and Telemetry are managed
	// by the service; Interrupt is wired to the service's Interrupt.
	WorkerOptions JoinOptions
	// Interrupt, when closed, drains the service gracefully: new
	// submissions are rejected with 503, running campaigns are
	// interrupted and their leases drained, and the archive is flushed.
	Interrupt <-chan struct{}
	// Telemetry, when non-nil, receives service-level metrics and
	// campaign lifecycle trace events, and enables /debug/telemetry.
	Telemetry *Telemetry
	// OnListen, when non-nil, receives the bound listen address once the
	// service is serving — useful with ":0" addresses.
	OnListen func(addr string)
	// Logf, when non-nil, receives service life-cycle log lines.
	Logf func(format string, args ...any)
}

// CampaignInfo is one campaign's state as reported by the service's
// lifecycle endpoints.
type CampaignInfo struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Tenant string `json:"tenant"`
	// State is one of "queued", "running", "done", "cancelled", "failed".
	State string `json:"state"`
	// Cached reports that the campaign completed without executing a
	// single experiment: its report was served from the result archive.
	Cached bool   `json:"cached"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
	Error  string `json:"error"`
}

// Terminal reports whether the campaign has reached a final state.
func (c CampaignInfo) Terminal() bool {
	switch c.State {
	case service.StateDone, service.StateCancelled, service.StateFailed:
		return true
	}
	return false
}

// ServeCampaigns runs a campaign service on addr until Interrupt is
// closed: a long-lived, multi-tenant coordinator that accepts campaign
// submissions (SubmitCampaign or favscan -submit), runs them against a
// shared worker fleet (JoinServiceFleet, favscan -fleet, or in-process
// LocalWorkers) with per-tenant fair scheduling, and archives every
// report content-addressed by the campaign identity hash. A duplicate
// submission — same program image, fault-space kind and timeout budget —
// is answered from the archive byte-identically without executing a
// single experiment (invariant 12).
func ServeCampaigns(addr string, opts CampaignServiceOptions) error {
	svc, err := service.New(service.Options{
		Dir:             opts.ArchiveDir,
		MaxArchiveBytes: opts.MaxArchiveBytes,
		MaxActive:       opts.MaxActive,
		MaxQueued:       opts.MaxQueued,
		UnitSize:        opts.UnitSize,
		LeaseTTL:        opts.LeaseTTL,
		StarveAfter:     opts.StarveAfter,
		Telemetry:       opts.Telemetry,
		Logf:            opts.Logf,
	})
	if err != nil {
		return fmt.Errorf("faultspace: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("faultspace: %w", err)
	}
	bound := ln.Addr().String()
	if opts.OnListen != nil {
		opts.OnListen(bound)
	}
	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	var fleet sync.WaitGroup
	for i := 0; i < opts.LocalWorkers; i++ {
		fleet.Add(1)
		go func(n int) {
			defer fleet.Done()
			w := opts.WorkerOptions
			err := service.JoinFleet("http://"+bound, service.FleetOptions{
				ID: fmt.Sprintf("local%d", n),
				Worker: cluster.WorkerOptions{
					Workers:        w.Workers,
					Strategy:       w.Strategy,
					LadderInterval: w.LadderInterval,
					Predecode:      w.Predecode,
					Memo:           w.Memo,
				},
				Interrupt: opts.Interrupt,
				// Point each assigned campaign's engine counters at that
				// campaign's own registry, keeping them isolated.
				TelemetryFor: func(spec cluster.Spec) *telemetry.Registry {
					return svc.CampaignTelemetry(spec.Identity)
				},
				Logf: opts.Logf,
			})
			if err != nil && !errors.Is(err, ErrInterrupted) && opts.Logf != nil {
				opts.Logf("faultspace: local worker %d: %v", n, err)
			}
		}(i)
	}

	if opts.Interrupt != nil {
		<-opts.Interrupt
	} else {
		// No interrupt channel: serve until the process dies.
		select {}
	}
	// Drain: cancel queued work, interrupt running campaigns, let their
	// coordinators answer the fleet with shutdown, flush the archive.
	svc.Shutdown()
	fleet.Wait()
	srv.Close()
	<-serveErr
	return nil
}

// SubmitCampaign submits a campaign to a service started with
// ServeCampaigns (or favserve). The campaign is prepared locally — the
// golden run and pruned fault space pin down the identity hash — and
// shipped as a self-contained spec; the service re-verifies the identity
// before running it. tenant attributes the submission for fair
// scheduling ("" = "default"). The returned info reports the admission
// state: an archived identity comes back "done" (Cached) immediately.
func SubmitCampaign(addr string, p *Program, opts ScanOptions, tenant string) (CampaignInfo, error) {
	var info CampaignInfo
	t := Target(p)
	kind, err := opts.space()
	if err != nil {
		return info, fmt.Errorf("faultspace: %w", err)
	}
	_, fs, err := t.PrepareSpace(kind, opts.maxGolden())
	if err != nil {
		return info, fmt.Errorf("faultspace: %w", err)
	}
	cfg, err := opts.campaignConfig()
	if err != nil {
		return info, fmt.Errorf("faultspace: %w", err)
	}
	spec, err := cluster.NewSpec(t, fs.Kind, cfg, opts.maxGolden(), uint64(len(fs.Classes)))
	if err != nil {
		return info, fmt.Errorf("faultspace: %w", err)
	}
	u := normalizeURL(addr) + "/v1/campaigns"
	if tenant != "" {
		u += "?tenant=" + url.QueryEscape(tenant)
	}
	resp, err := http.Post(u, "application/octet-stream", bytes.NewReader(cluster.EncodeSpec(spec)))
	if err != nil {
		return info, fmt.Errorf("faultspace: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return info, fmt.Errorf("faultspace: %w", err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return info, fmt.Errorf("faultspace: submit: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if err := json.Unmarshal(body, &info); err != nil {
		return info, fmt.Errorf("faultspace: submit: %w", err)
	}
	return info, nil
}

// CampaignState fetches one campaign's current state from a service.
func CampaignState(addr, id string) (CampaignInfo, error) {
	var info CampaignInfo
	resp, err := http.Get(normalizeURL(addr) + "/v1/campaigns/" + url.PathEscape(id))
	if err != nil {
		return info, fmt.Errorf("faultspace: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return info, fmt.Errorf("faultspace: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return info, fmt.Errorf("faultspace: status: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if err := json.Unmarshal(body, &info); err != nil {
		return info, fmt.Errorf("faultspace: status: %w", err)
	}
	return info, nil
}

// WaitCampaign polls a campaign until it reaches a terminal state or
// interrupt is closed.
func WaitCampaign(addr, id string, poll time.Duration, interrupt <-chan struct{}) (CampaignInfo, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		info, err := CampaignState(addr, id)
		if err != nil {
			return info, err
		}
		if info.Terminal() {
			return info, nil
		}
		select {
		case <-interrupt:
			return info, fmt.Errorf("faultspace: %w", ErrInterrupted)
		case <-time.After(poll):
		}
	}
}

// CampaignReport fetches a completed campaign's scan report from a
// service and reconstructs it for analysis. The bytes served are exactly
// what SaveScan of a live scan would have produced — whether the service
// executed the campaign or answered from its archive (invariant 12).
func CampaignReport(addr, id string) (*ScanResult, error) {
	resp, err := http.Get(normalizeURL(addr) + "/v1/campaigns/" + url.PathEscape(id) + "/report")
	if err != nil {
		return nil, fmt.Errorf("faultspace: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return nil, fmt.Errorf("faultspace: report: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return LoadScan(io.LimitReader(resp.Body, maxReportBytes))
}

// maxReportBytes bounds a fetched report (matching the service's own
// request bound).
const maxReportBytes = 16 << 20

// FleetOptions parameterizes JoinServiceFleet. The embedded JoinOptions
// keep their JoinScan meaning per assigned campaign.
type FleetOptions struct {
	JoinOptions
	// PollInterval is the wait between handshakes while no campaign is
	// running (default 200ms).
	PollInterval time.Duration
}

// JoinServiceFleet attaches this process to a campaign service as a
// long-lived fleet worker: the service assigns it a campaign, it runs
// that campaign's work units exactly like JoinScan, and when the
// campaign completes it asks for the next one. It returns nil when the
// service announces shutdown and ErrInterrupted when
// JoinOptions.Interrupt fires.
func JoinServiceFleet(addr string, opts FleetOptions) error {
	wopts := cluster.WorkerOptions{
		Workers:        opts.Workers,
		Strategy:       opts.Strategy,
		LadderInterval: opts.LadderInterval,
		Predecode:      opts.Predecode,
		Memo:           opts.Memo,
		Telemetry:      opts.Telemetry,
	}
	if wopts.Strategy == 0 && opts.Rerun {
		wopts.Strategy = StrategyRerun
	}
	err := service.JoinFleet(normalizeURL(addr), service.FleetOptions{
		ID:           opts.WorkerID,
		Worker:       wopts,
		PollInterval: opts.PollInterval,
		Interrupt:    opts.Interrupt,
		Logf:         opts.Logf,
	})
	if err != nil {
		return fmt.Errorf("faultspace: %w", err)
	}
	return nil
}
