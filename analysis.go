package faultspace

import (
	"fmt"

	"faultspace/internal/campaign"
	"faultspace/internal/metrics"
)

// Analysis condenses a full fault-space scan into the numbers the paper
// argues about. All "weighted" quantities expand every experiment result
// by its equivalence-class size (data lifetime), avoiding Pitfall 1.
type Analysis struct {
	Name string
	// Space is the fault-space kind the scan covered (memory or, for the
	// §VI-B generalization, the register file).
	Space SpaceKind

	// Fault-space geometry.
	RuntimeCycles uint64 // Δt
	MemoryBits    uint64 // Δm (bits of the scanned space)
	SpaceSize     uint64 // w = Δt·Δm
	Classes       uint64 // experiments conducted after def/use pruning
	KnownNoEffect uint64 // coordinates with a-priori-known "No Effect"

	// Failure counts (benign outcomes excluded).
	FailClasses uint64 // unweighted: failed experiments
	FailWeight  uint64 // weighted: the paper's comparison metric F

	// Attack counts under the campaign's attacker objective (both zero
	// when the scan ran without one). AttackWeight is the attack-surface
	// analogue of FailWeight: the extrapolated number of raw (cycle, bit)
	// coordinates at which the fault achieves the objective.
	AttackClasses uint64
	AttackWeight  uint64

	// Coverage numbers, all of the form 1 − F/N with different (F, N):
	CoverageWeighted      float64 // F = FailWeight,  N = w            (correct accounting)
	CoverageUnweighted    float64 // F = FailClasses, N = Classes      (Pitfall 1)
	CoverageActivatedOnly float64 // F = FailWeight,  N = w′ = w−known (Barbosa-style counting)

	// Per-outcome breakdowns.
	ClassCounts    [campaign.NumOutcomes]uint64 // per outcome, unweighted
	WeightedCounts [campaign.NumOutcomes]uint64 // per outcome, weighted (full space)
}

// Analyze computes the Analysis of a scan result.
func Analyze(r *ScanResult) (Analysis, error) {
	a := Analysis{
		Name:           r.Target.Name,
		Space:          r.Space.Kind,
		RuntimeCycles:  r.Golden.Cycles,
		MemoryBits:     r.Space.Bits,
		SpaceSize:      r.Space.Size(),
		Classes:        uint64(len(r.Space.Classes)),
		KnownNoEffect:  r.Space.KnownNoEffect,
		FailClasses:    r.FailureClasses(),
		FailWeight:     r.FailureWeight(),
		AttackClasses:  r.AttackClasses(),
		AttackWeight:   r.AttackWeight(),
		ClassCounts:    r.ClassCounts(),
		WeightedCounts: r.FullSpaceCounts(),
	}
	var err error
	if a.CoverageWeighted, err = metrics.Coverage(a.FailWeight, a.SpaceSize); err != nil {
		return a, err
	}
	if a.Classes > 0 {
		if a.CoverageUnweighted, err = metrics.Coverage(a.FailClasses, a.Classes); err != nil {
			return a, err
		}
	} else {
		a.CoverageUnweighted = 1
	}
	if activated := a.SpaceSize - a.KnownNoEffect; activated > 0 {
		if a.CoverageActivatedOnly, err = metrics.Coverage(a.FailWeight, activated); err != nil {
			return a, err
		}
	} else {
		a.CoverageActivatedOnly = 1
	}
	return a, nil
}

// MustAnalyze is Analyze for callers that treat analysis failure as a
// programming error (e.g. examples and benchmarks).
func MustAnalyze(r *ScanResult) Analysis {
	a, err := Analyze(r)
	if err != nil {
		panic(fmt.Sprintf("faultspace: analyze %s: %v", r.Target.Name, err))
	}
	return a
}

// Comparison contrasts a hardened variant with its baseline through every
// metric the paper discusses, making the pitfalls directly visible.
type Comparison struct {
	Baseline Analysis
	Hardened Analysis

	// RatioWeighted is the paper's comparison ratio
	// r = F_hardened/F_baseline over weighted failure counts;
	// the hardened variant improves on the baseline iff r < 1.
	RatioWeighted float64
	// RatioUnweighted is the same ratio computed from unweighted class
	// counts — subject to Pitfall 1.
	RatioUnweighted float64

	// CoverageGainWeighted is the percentage-point coverage change
	// (hardened − baseline) under weighted accounting; positive means the
	// coverage metric *claims* an improvement.
	CoverageGainWeighted float64
	// CoverageGainUnweighted is the same under unweighted accounting.
	CoverageGainUnweighted float64

	// MWTFGain is the Mean-Work-To-Failure improvement (Reis et al.,
	// §VII): MWTF_hardened/MWTF_baseline = 1/RatioWeighted. It always
	// agrees with the paper's metric on the verdict — included to show
	// that a soundly constructed alternative metric does. +Inf when the
	// hardened variant has no failures.
	MWTFGain float64
}

// Compare computes the Comparison of two analyses.
func Compare(baseline, hardened Analysis) (Comparison, error) {
	c := Comparison{Baseline: baseline, Hardened: hardened}
	var err error
	if c.RatioWeighted, err = metrics.Ratio(float64(hardened.FailWeight), float64(baseline.FailWeight)); err != nil {
		return c, err
	}
	if baseline.FailClasses > 0 {
		if c.RatioUnweighted, err = metrics.Ratio(float64(hardened.FailClasses), float64(baseline.FailClasses)); err != nil {
			return c, err
		}
	}
	c.CoverageGainWeighted = metrics.PercentagePoints(hardened.CoverageWeighted, baseline.CoverageWeighted)
	c.CoverageGainUnweighted = metrics.PercentagePoints(hardened.CoverageUnweighted, baseline.CoverageUnweighted)
	if baseline.FailWeight > 0 {
		if c.MWTFGain, err = metrics.MWTFGain(baseline.FailWeight, hardened.FailWeight); err != nil {
			return c, err
		}
	}
	return c, nil
}

// CoverageSaysImproved reports whether the (unfit) fault-coverage metric
// claims the hardened variant improved.
func (c Comparison) CoverageSaysImproved() bool { return c.CoverageGainWeighted > 0 }

// FailuresSayImproved reports whether the paper's metric — extrapolated
// absolute failure counts — shows a real improvement.
func (c Comparison) FailuresSayImproved() bool { return c.RatioWeighted < 1 }

// Misleading reports whether the two metrics disagree: the situation the
// paper demonstrates with sync2, where coverage hides a real degradation.
func (c Comparison) Misleading() bool {
	return c.CoverageSaysImproved() != c.FailuresSayImproved()
}
