package faultspace

import (
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"faultspace/internal/progs"
)

// serveAndJoin runs a distributed scan over loopback HTTP: ServeScan in
// this goroutine, nWorkers JoinScan workers in the background. The
// worker errors are reported through t.
func serveAndJoin(t *testing.T, prog *Program, opts ServeOptions, nWorkers int) *ScanResult {
	t.Helper()
	addrCh := make(chan string, 1)
	opts.OnListen = func(addr string) { addrCh <- addr }

	var wg sync.WaitGroup
	wg.Add(nWorkers)
	workerErrs := make([]error, nWorkers)
	go func() {
		addr := <-addrCh
		for i := 0; i < nWorkers; i++ {
			go func(i int) {
				defer wg.Done()
				workerErrs[i] = JoinScan(addr, JoinOptions{
					WorkerID: string(rune('a' + i)),
					Rerun:    i%2 == 1, // mixed strategies across the cluster
				})
			}(i)
		}
	}()
	res, err := ServeScan(prog, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatalf("ServeScan: %v", err)
	}
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil {
			t.Errorf("worker %d: %v", i, werr)
		}
	}
	return res
}

// TestPlacementEquivalenceAllBenchmarks is the distributed differential
// suite (invariant 8): for every bundled benchmark, a coordinator plus
// two loopback workers must produce a bit-identical outcome vector and
// an identical analysis to a local FullScan.
func TestPlacementEquivalenceAllBenchmarks(t *testing.T) {
	for _, name := range progs.Names() {
		t.Run(name, func(t *testing.T) {
			prog := equivProgram(t, name)
			local, err := Scan(prog, ScanOptions{})
			if err != nil {
				t.Fatal(err)
			}
			distributed := serveAndJoin(t, prog, ServeOptions{
				UnitSize: 32,
			}, 2)
			assertSameOutcomes(t, "distributed vs local", local, distributed)
			if distributed.Identity != local.Identity {
				t.Error("distributed scan must keep the local campaign identity")
			}
			la, err := Analyze(local)
			if err != nil {
				t.Fatal(err)
			}
			da, err := Analyze(distributed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(la, da) {
				t.Errorf("analyses differ:\nlocal       %+v\ndistributed %+v", la, da)
			}
		})
	}
}

// TestPlacementEquivalenceCheckpointResume interrupts a distributed
// campaign via the coordinator's interrupt channel, then resumes it from
// the checkpoint with fresh workers: the merged result must be identical
// to a local scan, with no class executed twice.
func TestPlacementEquivalenceCheckpointResume(t *testing.T) {
	prog := equivProgram(t, "bin_sem2")
	local, err := Scan(prog, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ck := filepath.Join(t.TempDir(), "cluster.ckpt")

	// Phase 1: interrupt once half the classes are merged.
	intCh := make(chan struct{})
	var once sync.Once
	opts := ServeOptions{
		ScanOptions: ScanOptions{
			Checkpoint:       ck,
			ProgressInterval: -1,
			Interrupt:        intCh,
		},
		UnitSize:     8,
		DrainTimeout: time.Second,
		OnClusterProgress: func(p ClusterProgress) {
			if p.Done >= p.Total/2 && p.Done > 0 {
				once.Do(func() { close(intCh) })
			}
		},
	}
	addrCh := make(chan string, 1)
	opts.OnListen = func(addr string) { addrCh <- addr }
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		addr := <-addrCh
		// The worker outlives the interrupted coordinator and must exit
		// cleanly on the shutdown notice (or bounded retries).
		// Shutdown notice during the drain window, or bounded-retry
		// exhaustion if the worker was mid-unit past it — both are clean
		// exits for a worker whose coordinator went away.
		err := JoinScan(addr, JoinOptions{WorkerID: "phase1"})
		if err != nil && !errors.Is(err, ErrCoordinatorShutdown) && !errors.Is(err, ErrCoordinatorUnreachable) {
			t.Errorf("phase-1 worker: %v", err)
		}
	}()
	partial, err := ServeScan(prog, "127.0.0.1:0", opts)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted ServeScan: err = %v, want ErrInterrupted", err)
	}
	if partial == nil {
		t.Fatal("interrupted ServeScan must return its partial result")
	}
	wg.Wait()

	// Phase 2: a fresh coordinator resumes from the checkpoint.
	sessionTotal := 0
	resumed := serveAndJoin(t, prog, ServeOptions{
		ScanOptions: ScanOptions{Checkpoint: ck, Resume: true},
		UnitSize:    8,
		OnClusterProgress: func(p ClusterProgress) {
			if p.Final {
				sessionTotal = p.Session
			}
		},
	}, 2)
	assertSameOutcomes(t, "resumed distributed vs local", local, resumed)
	if sessionTotal >= len(local.Outcomes) {
		t.Errorf("resumed session executed %d classes of %d — checkpointed work was redone", sessionTotal, len(local.Outcomes))
	}
}
