package faultspace

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"faultspace/internal/progs"
)

// equivSizes shrinks every bundled benchmark so the naive rerun strategy
// stays affordable: the differential suite runs each benchmark twice in
// full plus an interrupted+resumed pass.
var equivSizes = progs.Sizes{
	BinSemRounds:  1,
	SyncRounds:    1,
	SyncBufBytes:  16,
	ClockTicks:    2,
	ClockPeriod:   32,
	MboxMessages:  2,
	PreemptWork:   8,
	PreemptPeriod: 24,
	SortElements:  6,
}

func equivProgram(t *testing.T, name string) *Program {
	t.Helper()
	spec, err := progs.Resolve(name, equivSizes)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := spec.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func assertSameOutcomes(t *testing.T, label string, want, got *ScanResult) {
	t.Helper()
	if len(want.Outcomes) != len(got.Outcomes) {
		t.Fatalf("%s: %d outcomes vs %d", label, len(got.Outcomes), len(want.Outcomes))
	}
	for i := range want.Outcomes {
		if want.Outcomes[i] != got.Outcomes[i] {
			t.Fatalf("%s: class %d (slot %d, bit %d): %v vs %v", label, i,
				want.Space.Classes[i].Slot(), want.Space.Classes[i].Bit,
				got.Outcomes[i], want.Outcomes[i])
		}
	}
}

// TestStrategyEquivalenceAllBenchmarks is the differential suite: for
// every bundled benchmark, StrategySnapshot and StrategyRerun must
// produce identical outcome vectors (the invariant that justifies
// excluding the strategy from the campaign identity hash), and a scan
// interrupted at ~50% and resumed from its checkpoint must match an
// uninterrupted scan bit-for-bit.
func TestStrategyEquivalenceAllBenchmarks(t *testing.T) {
	for _, name := range progs.Names() {
		t.Run(name, func(t *testing.T) {
			prog := equivProgram(t, name)
			snap, err := Scan(prog, ScanOptions{})
			if err != nil {
				t.Fatal(err)
			}
			rerun, err := Scan(prog, ScanOptions{Rerun: true})
			if err != nil {
				t.Fatal(err)
			}
			assertSameOutcomes(t, "snapshot vs rerun", snap, rerun)
			if snap.Identity != rerun.Identity {
				t.Error("strategies must share one campaign identity")
			}

			// Interrupt at ~50%, then resume from the checkpoint file.
			ck := filepath.Join(t.TempDir(), name+".ckpt")
			intCh := make(chan struct{})
			var once sync.Once
			partial, err := Scan(prog, ScanOptions{
				Workers:          1,
				Checkpoint:       ck,
				ProgressInterval: -1,
				OnProgress: func(p Progress) {
					if p.Done >= p.Total/2 && p.Done > 0 {
						once.Do(func() { close(intCh) })
					}
				},
				Interrupt: intCh,
			})
			if !errors.Is(err, ErrInterrupted) {
				t.Fatalf("interrupted scan: err = %v, want ErrInterrupted", err)
			}
			if partial == nil {
				t.Fatal("interrupted scan must return its partial result")
			}
			resumed, err := Scan(prog, ScanOptions{Checkpoint: ck, Resume: true})
			if err != nil {
				t.Fatal(err)
			}
			assertSameOutcomes(t, "interrupted+resumed vs uninterrupted", snap, resumed)
			if resumed.Identity != snap.Identity {
				t.Error("resumed scan must keep the campaign identity")
			}
		})
	}
}

// TestStrategyEquivalenceRegisters extends the differential check to the
// §VI-B register fault space on a subset of benchmarks.
func TestStrategyEquivalenceRegisters(t *testing.T) {
	for _, name := range []string{"hi", "sort1"} {
		t.Run(name, func(t *testing.T) {
			prog := equivProgram(t, name)
			snap, err := Scan(prog, ScanOptions{Space: SpaceRegisters})
			if err != nil {
				t.Fatal(err)
			}
			rerun, err := Scan(prog, ScanOptions{Space: SpaceRegisters, Rerun: true})
			if err != nil {
				t.Fatal(err)
			}
			assertSameOutcomes(t, "registers snapshot vs rerun", snap, rerun)
		})
	}
}
