package faultspace

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"faultspace/internal/progs"
)

// equivSizes shrinks every bundled benchmark so the naive rerun strategy
// stays affordable: the differential matrix runs each benchmark under
// every strategy in every fault space, plus an interrupted+resumed pass.
var equivSizes = progs.Sizes{
	BinSemRounds:  1,
	SyncRounds:    1,
	SyncBufBytes:  16,
	ClockTicks:    2,
	ClockPeriod:   32,
	MboxMessages:  2,
	PreemptWork:   8,
	PreemptPeriod: 24,
	SortElements:  6,
}

func equivProgram(t *testing.T, name string) *Program {
	t.Helper()
	spec, err := progs.Resolve(name, equivSizes)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := spec.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func assertSameOutcomes(t *testing.T, label string, want, got *ScanResult) {
	t.Helper()
	if len(want.Outcomes) != len(got.Outcomes) {
		t.Fatalf("%s: %d outcomes vs %d", label, len(got.Outcomes), len(want.Outcomes))
	}
	for i := range want.Outcomes {
		if want.Outcomes[i] != got.Outcomes[i] {
			t.Fatalf("%s: class %d (slot %d, bit %d): %v vs %v", label, i,
				want.Space.Classes[i].Slot(), want.Space.Classes[i].Bit,
				got.Outcomes[i], want.Outcomes[i])
		}
	}
}

// scanBytes serializes a scan result through the JSON archive writer —
// the strongest equality check available: if two results archive to the
// same bytes, every report derived from them is byte-identical too.
func scanBytes(t *testing.T, res *ScanResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveScan(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStrategyEquivalenceAllBenchmarks is the differential strategy-
// equivalence matrix (DESIGN.md invariants 9 and 11): for every bundled
// benchmark × every fault-space kind, the full
// {snapshot, rerun, ladder} × {predecode on/off} × {memo on/off} grid —
// plus telemetry-instrumented variants — must archive byte-identically
// to the naive plain-decoder rerun reference. This is the invariant
// that justifies excluding Strategy, LadderInterval, Predecode and Memo
// from the campaign identity hash.
func TestStrategyEquivalenceAllBenchmarks(t *testing.T) {
	strategies := []struct {
		name string
		s    Strategy
	}{
		{"snapshot", StrategySnapshot},
		{"rerun", StrategyRerun},
		{"ladder/auto", StrategyLadder},
		{"fork/auto", StrategyFork},
	}
	for _, name := range progs.Names() {
		t.Run(name, func(t *testing.T) {
			prog := equivProgram(t, name)
			for _, space := range []SpaceKind{SpaceMemory, SpaceRegisters,
				SpaceSkip, SpacePC, SpaceBurst2, SpaceBurst4} {
				rerun, err := Scan(prog, ScanOptions{Space: space, Strategy: StrategyRerun})
				if err != nil {
					t.Fatal(err)
				}
				ref := scanBytes(t, rerun)
				type tcase struct {
					label string
					opts  ScanOptions
					tel   bool
					trace bool
				}
				var cases []tcase
				// The full accelerator grid: every strategy with every
				// combination of the pre-decoded dispatch stream and the
				// cross-experiment memo cache (invariant 11).
				for _, strat := range strategies {
					for _, pre := range []bool{false, true} {
						for _, memo := range []bool{false, true} {
							cases = append(cases, tcase{
								label: fmt.Sprintf("%s/pre=%t/memo=%t", strat.name, pre, memo),
								opts: ScanOptions{Space: space, Strategy: strat.s,
									Predecode: pre, Memo: memo},
							})
						}
					}
				}
				// An explicit ladder interval shifts both rung and memo
				// boundaries; outcomes must not care. For fork it also
				// reshapes the batch carving — more rungs, smaller batches.
				cases = append(cases, tcase{
					label: "ladder/7/pre=true/memo=true",
					opts: ScanOptions{Space: space, Strategy: StrategyLadder,
						LadderInterval: 7, Predecode: true, Memo: true},
				})
				cases = append(cases, tcase{
					label: "fork/7/pre=true/memo=true",
					opts: ScanOptions{Space: space, Strategy: StrategyFork,
						LadderInterval: 7, Predecode: true, Memo: true},
				})
				// Invariant 10: telemetry observes a campaign, never steers
				// it — instrumented scans of every strategy, with both
				// accelerators on, must archive byte-identically to the
				// uninstrumented plain rerun reference.
				for _, strat := range strategies {
					cases = append(cases, tcase{
						label: strat.name + "/pre=true/memo=true+telemetry",
						opts: ScanOptions{Space: space, Strategy: strat.s,
							Predecode: true, Memo: true},
						tel: true,
					})
				}
				// Invariant 15: tracing is identification, never
				// configuration — span-traced scans of every strategy must
				// archive byte-identically to the untraced reference while
				// actually recording a timeline.
				for _, strat := range strategies {
					cases = append(cases, tcase{
						label: strat.name + "/pre=true/memo=true+trace",
						opts: ScanOptions{Space: space, Strategy: strat.s,
							Predecode: true, Memo: true},
						trace: true,
					})
				}
				for _, tc := range cases {
					var reg *Telemetry
					if tc.tel {
						reg = NewTelemetry()
						tc.opts.Telemetry = reg
					}
					if tc.trace {
						reg = NewTelemetry()
						reg.EnableSpans(NewTraceID(), "local", 0)
						tc.opts.Telemetry = reg
					}
					label := fmt.Sprintf("%s %s vs rerun", space, tc.label)
					got, err := Scan(prog, tc.opts)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					assertSameOutcomes(t, label, rerun, got)
					if got.Identity != rerun.Identity {
						t.Errorf("%s: strategies must share one campaign identity", label)
					}
					if !bytes.Equal(scanBytes(t, got), ref) {
						t.Errorf("%s: archived reports are not byte-identical", label)
					}
					if tc.tel {
						snap := reg.Snapshot()
						if exp := snap.Counters["scan.experiments"]; exp != uint64(len(got.Space.Classes)) {
							t.Errorf("%s: scan.experiments = %d, want %d", label, exp, len(got.Space.Classes))
						}
					}
					if tc.trace {
						spans := reg.SpanRecorder().Spans()
						haveRun := false
						for _, sp := range spans {
							if sp.Name == "scan.run" {
								haveRun = true
							}
						}
						if !haveRun {
							t.Errorf("%s: traced scan recorded no scan.run span (%d spans)", label, len(spans))
						}
					}
				}
			}
		})
	}
}

// TestObjectiveStrategyEquivalence pins the objective soundness contract
// down differentially: under an attacker objective the attack flags are
// part of the recorded outcome, and every strategy/accelerator must
// still archive byte-identically to the plain rerun reference. The PC
// space is the sharp case — its classes are only outcome-equivalent, so
// a predicate peeking at non-invariant observables would diverge here.
func TestObjectiveStrategyEquivalence(t *testing.T) {
	prog := equivProgram(t, "bin_sem2")
	for _, space := range []SpaceKind{SpacePC, SpaceSkip, SpaceBurst2} {
		for _, obj := range ObjectiveNames() {
			rerun, err := Scan(prog, ScanOptions{Space: space, Strategy: StrategyRerun, Objective: obj})
			if err != nil {
				t.Fatal(err)
			}
			ref := scanBytes(t, rerun)
			for _, strat := range []Strategy{StrategySnapshot, StrategyLadder, StrategyFork} {
				label := fmt.Sprintf("%s/%s/%v", space, obj, strat)
				got, err := Scan(prog, ScanOptions{Space: space, Strategy: strat,
					Predecode: true, Memo: true, Objective: obj})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				assertSameOutcomes(t, label, rerun, got)
				if !bytes.Equal(scanBytes(t, got), ref) {
					t.Errorf("%s: archived reports are not byte-identical", label)
				}
			}
			// The objective changes recorded outcomes, so it must change
			// the campaign identity (unlike the accelerator knobs).
			plain, err := CampaignIdentity(prog, ScanOptions{Space: space})
			if err != nil {
				t.Fatal(err)
			}
			if rerun.Identity == plain {
				t.Errorf("%s/%s: objective campaigns must not share the plain identity", space, obj)
			}
		}
	}
}

// TestInterruptResumeEquivalence interrupts a scan at ~50%, resumes it
// from its checkpoint under a different strategy, and requires the
// resumed result to match an uninterrupted scan bit-for-bit — the
// checkpoint is strategy-agnostic by design.
func TestInterruptResumeEquivalence(t *testing.T) {
	for _, name := range progs.Names() {
		t.Run(name, func(t *testing.T) {
			testInterruptResume(t, equivProgram(t, name), ScanOptions{}, StrategyLadder)
		})
	}
}

// TestInterruptResumeFork is invariant 14's interrupt+resume leg: a
// fork-strategy scan interrupted mid-run (exercising the fork feeder's
// and workers' interrupt paths) and resumed under fork — so the resume's
// batch carving runs on an arbitrary leftover class subset — must be
// byte-identical to an uninterrupted scan, across all six fault spaces.
// The dos objective on the skip space checks the attack flag survives
// the fork round trip.
func TestInterruptResumeFork(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts ScanOptions
	}{
		{"memory", ScanOptions{Space: SpaceMemory, Strategy: StrategyFork}},
		{"registers", ScanOptions{Space: SpaceRegisters, Strategy: StrategyFork}},
		{"skip+dos", ScanOptions{Space: SpaceSkip, Strategy: StrategyFork, Objective: "dos"}},
		{"pc", ScanOptions{Space: SpacePC, Strategy: StrategyFork}},
		{"burst2", ScanOptions{Space: SpaceBurst2, Strategy: StrategyFork}},
		{"burst4", ScanOptions{Space: SpaceBurst4, Strategy: StrategyFork}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			testInterruptResume(t, equivProgram(t, "bin_sem2"), tc.opts, StrategyFork)
		})
	}
}

// TestInterruptResumeAttackSpaces is the same invariant under the
// attack-style fault models: a skip campaign under the dos objective
// (attack-flagged outcome bytes must survive the checkpoint round trip)
// and a plain burst campaign.
func TestInterruptResumeAttackSpaces(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts ScanOptions
	}{
		{"skip+dos", ScanOptions{Space: SpaceSkip, Objective: "dos"}},
		{"burst2", ScanOptions{Space: SpaceBurst2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			testInterruptResume(t, equivProgram(t, "bin_sem2"), tc.opts, StrategyLadder)
		})
	}
}

func testInterruptResume(t *testing.T, prog *Program, opts ScanOptions, resume Strategy) {
	t.Helper()
	full, err := Scan(prog, opts)
	if err != nil {
		t.Fatal(err)
	}

	ck := filepath.Join(t.TempDir(), "scan.ckpt")
	intCh := make(chan struct{})
	var once sync.Once
	popts := opts
	popts.Workers = 1
	popts.Checkpoint = ck
	popts.ProgressInterval = -1
	popts.OnProgress = func(p Progress) {
		if p.Done >= p.Total/2 && p.Done > 0 {
			once.Do(func() { close(intCh) })
		}
	}
	popts.Interrupt = intCh
	partial, err := Scan(prog, popts)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted scan: err = %v, want ErrInterrupted", err)
	}
	if partial == nil {
		t.Fatal("interrupted scan must return its partial result")
	}
	// Resume under a different (or the caller's chosen) strategy: the
	// checkpoint must not care what executed the first half.
	ropts := opts
	ropts.Checkpoint = ck
	ropts.Resume = true
	ropts.Strategy = resume
	resumed, err := Scan(prog, ropts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcomes(t, "interrupted+resumed vs uninterrupted", full, resumed)
	if resumed.Identity != full.Identity {
		t.Error("resumed scan must keep the campaign identity")
	}
	if !bytes.Equal(scanBytes(t, resumed), scanBytes(t, full)) {
		t.Error("resumed archive is not byte-identical to an uninterrupted scan's")
	}
}
