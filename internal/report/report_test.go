package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Headers: []string{"name", "value"},
	}
	tbl.AddRow("alpha", 1)
	tbl.AddRow("beta-longer", 23.5)
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "name", "value", "alpha", "beta-longer", "23.5", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + rule + 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: both data rows start their second column at the same
	// offset.
	a := strings.Index(lines[3], "1")
	bRow := lines[4]
	if !strings.HasPrefix(bRow[a-2:], "") || len(bRow) < a {
		t.Errorf("misaligned rows:\n%s", out)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tbl := &Table{Headers: []string{"a", "b"}}
	tbl.AddRow("x,y", `quote"inside`)
	tbl.AddRow("plain", 7)
	var sb strings.Builder
	if err := tbl.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "a,b\n\"x,y\",\"quote\"\"inside\"\nplain,7\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestBarChart(t *testing.T) {
	c := &BarChart{Title: "bars", Unit: "%", Width: 10}
	c.Add("full", 100)
	c.Add("half", 50)
	c.Add("tiny", 0.001)
	c.Add("zero", 0)
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, strings.Repeat("#", 10)) {
		t.Errorf("full bar not at max width:\n%s", out)
	}
	if !strings.Contains(out, strings.Repeat("#", 5)+" 50%") {
		t.Errorf("half bar wrong:\n%s", out)
	}
	// Tiny non-zero values keep a visible trace; zero shows none.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	var tinyLine, zeroLine string
	for _, l := range lines {
		if strings.Contains(l, "tiny") {
			tinyLine = l
		}
		if strings.Contains(l, "zero") {
			zeroLine = l
		}
	}
	if !strings.Contains(tinyLine, "#") {
		t.Errorf("tiny value lost its trace: %q", tinyLine)
	}
	if strings.Contains(zeroLine, "#") {
		t.Errorf("zero value must have no bar: %q", zeroLine)
	}
}

func TestBarChartEmpty(t *testing.T) {
	c := &BarChart{Title: "empty"}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty") {
		t.Error("title missing")
	}
}

func TestFormatValue(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{42, "42"},
		{42.5, "42.5"},
		{0.12345, "0.1235"},
		{1234.56, "1234.6"},
	}
	for _, tt := range tests {
		if got := formatValue(tt.v); got != tt.want {
			t.Errorf("formatValue(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}
