// Package report renders campaign results and metric comparisons as
// fixed-width text tables, ASCII bar charts and CSV — the output formats of
// the favreport tool that regenerates the paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(cell, widths[i]))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// RenderCSV writes the table as CSV (headers first). Cells containing
// commas or quotes are quoted.
func (t *Table) RenderCSV(w io.Writer) error {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(csvEscape(cell))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// BarChart renders labelled horizontal bars, the textual analogue of the
// paper's Figure 2 bar groups.
type BarChart struct {
	Title string
	// Unit annotates the value axis (e.g. "%", "failures").
	Unit string
	// Width is the maximum bar width in characters (default 50).
	Width int
	bars  []bar
}

type bar struct {
	label string
	value float64
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.bars = append(c.bars, bar{label: label, value: value})
}

// Render writes the chart to w. Bars scale to the maximum value.
func (c *BarChart) Render(w io.Writer) error {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	maxVal := 0.0
	labelW := 0
	for _, b := range c.bars {
		if b.value > maxVal {
			maxVal = b.value
		}
		if len(b.label) > labelW {
			labelW = len(b.label)
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	for _, b := range c.bars {
		n := 0
		if maxVal > 0 {
			n = int(b.value / maxVal * float64(width))
		}
		if n == 0 && b.value > 0 {
			n = 1 // visible trace for tiny non-zero values
		}
		fmt.Fprintf(&sb, "  %s  %s %s%s\n",
			pad(b.label, labelW), strings.Repeat("#", n), formatValue(b.value), c.Unit)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func formatValue(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}
