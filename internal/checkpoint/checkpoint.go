// Package checkpoint implements the crash-safe campaign checkpoint log:
// an append-only, CRC-guarded, chunked binary record of completed
// fault-injection experiments.
//
// A campaign streams every completed (class, outcome) pair into a Writer.
// If the process is killed — SIGINT, OOM, power loss — the file retains
// every record that was flushed before the crash, and a campaign relaunch
// loads the valid prefix, truncates any torn tail and continues appending
// where the previous run stopped. The file is bound to a campaign
// identity hash (program image + fault-space kind + outcome-relevant
// config, see campaign.Target.CampaignIdentity), so a stale checkpoint
// can never be resumed against a different target.
//
// # File format
//
// All integers are little-endian. The file is a magic string followed by
// self-validating frames:
//
//	file   = magic frame*
//	magic  = "FAVCKPT1" (8 bytes)
//	frame  = kind(1) length(u32) crc(u32) payload(length)
//
// crc is CRC-32 (IEEE) over the payload. Frame kinds:
//
//	'H'  header, exactly one, first: version(u32) identity(32) classes(u64)
//	'R'  records: repeated { class(uvarint) outcome(1 byte) }
//
// Frames are written with a single write(2) each and fsynced, so a crash
// can only produce a torn or missing tail frame — never a half-updated
// earlier region. The decoder accepts exactly the longest valid frame
// prefix: a clean cut mid-frame yields ErrTruncated, a CRC or framing
// mismatch yields ErrCorrupt, and in both cases the records decoded
// before the damage are still returned so a resume can salvage them.
// Damage to the header, a bad magic, CRC-valid-but-malformed payloads or
// out-of-range class indices are unrecoverable (ErrFormat / ErrVersion /
// ErrIdentityMismatch): nothing in such a file can be trusted.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"faultspace/internal/telemetry"
)

// Version is the checkpoint format version written by this package.
const Version = 1

const (
	magic       = "FAVCKPT1"
	frameHdrLen = 1 + 4 + 4 // kind + length + crc
	headerLen   = 4 + 32 + 8
	maxFrame    = 1 << 20 // sanity bound on frame payload length

	kindHeader  = 'H'
	kindRecords = 'R'
)

// DefaultFlushEvery is the record count between automatic flushes.
const DefaultFlushEvery = 256

// Decoder sentinel errors, distinguishable with errors.Is.
var (
	// ErrFormat marks unrecoverable structural damage: bad magic, broken
	// header, malformed CRC-valid payloads, out-of-range class indices.
	ErrFormat = errors.New("checkpoint: malformed file")
	// ErrVersion marks a checkpoint written by an incompatible format
	// version.
	ErrVersion = errors.New("checkpoint: unsupported version")
	// ErrTruncated marks a file cut mid-frame (crash during a write).
	// Records before the cut are valid and returned.
	ErrTruncated = errors.New("checkpoint: truncated tail")
	// ErrCorrupt marks a frame whose CRC or framing does not verify.
	// Records before the damage are valid and returned.
	ErrCorrupt = errors.New("checkpoint: corrupt frame")
	// ErrIdentityMismatch marks a checkpoint whose campaign identity does
	// not match the campaign being resumed.
	ErrIdentityMismatch = errors.New("checkpoint: campaign identity mismatch")
)

// Header identifies the campaign a checkpoint belongs to.
type Header struct {
	// Version is the format version (Version for files this package writes).
	Version uint32
	// Identity is the campaign identity hash; see
	// campaign.Target.CampaignIdentity.
	Identity [32]byte
	// Classes is the total number of equivalence classes of the campaign.
	// Every record's class index must be below it.
	Classes uint64
}

// Entry is one decoded experiment record.
type Entry struct {
	Class   int
	Outcome uint8
}

// Decode parses a complete checkpoint image. It never panics. On
// ErrTruncated or ErrCorrupt the entries decoded before the damage are
// returned alongside the error; on any other error the data is unusable.
func Decode(data []byte) (Header, []Entry, error) {
	h, entries, _, err := decodeAll(data)
	return h, entries, err
}

// decodeAll parses data and additionally reports goodLen, the byte
// offset after the last fully-valid frame — the truncation point a
// resuming writer must cut the file to before appending.
func decodeAll(data []byte) (h Header, entries []Entry, goodLen int64, err error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return h, nil, 0, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	kind, payload, next, ferr := frame(data, len(magic))
	if ferr != nil || kind != kindHeader || len(payload) != headerLen {
		// Without a trustworthy header nothing else can be interpreted.
		return h, nil, 0, fmt.Errorf("%w: bad header frame", ErrFormat)
	}
	h.Version = binary.LittleEndian.Uint32(payload[0:4])
	copy(h.Identity[:], payload[4:36])
	h.Classes = binary.LittleEndian.Uint64(payload[36:44])
	if h.Version != Version {
		return h, nil, 0, fmt.Errorf("%w: file version %d, this build reads %d", ErrVersion, h.Version, Version)
	}
	goodLen = int64(next)

	for off := next; off < len(data); {
		kind, payload, next, ferr = frame(data, off)
		if ferr != nil {
			return h, entries, goodLen, ferr
		}
		if kind != kindRecords {
			return h, entries, goodLen, fmt.Errorf("%w: unknown frame kind %q", ErrCorrupt, kind)
		}
		batch, perr := decodeRecords(payload, h.Classes)
		if perr != nil {
			// The CRC verified, so these bytes are exactly what some writer
			// produced: malformed contents are a format violation, not
			// recoverable tail damage.
			return h, entries, goodLen, perr
		}
		entries = append(entries, batch...)
		off = next
		goodLen = int64(next)
	}
	return h, entries, goodLen, nil
}

// ReadFrame parses one CRC-guarded frame at off and returns the frame
// kind, its payload (CRC-verified) and the offset of the next frame. It
// is the decoding half of the framing shared with the cluster wire
// protocol (internal/cluster): a frame is kind(1) length(u32) crc32(u32)
// payload. Damage yields ErrTruncated (cut) or ErrCorrupt (CRC/framing).
func ReadFrame(data []byte, off int) (kind byte, payload []byte, next int, err error) {
	return frame(data, off)
}

// frame parses one frame at off. It returns the frame kind, its payload
// (CRC-verified), and the offset of the next frame.
func frame(data []byte, off int) (kind byte, payload []byte, next int, err error) {
	if off+frameHdrLen > len(data) {
		return 0, nil, 0, fmt.Errorf("%w: frame header cut at offset %d", ErrTruncated, off)
	}
	kind = data[off]
	length := binary.LittleEndian.Uint32(data[off+1 : off+5])
	sum := binary.LittleEndian.Uint32(data[off+5 : off+9])
	if length > maxFrame {
		return 0, nil, 0, fmt.Errorf("%w: frame length %d exceeds limit", ErrCorrupt, length)
	}
	end := off + frameHdrLen + int(length)
	if end > len(data) {
		return 0, nil, 0, fmt.Errorf("%w: frame payload cut at offset %d", ErrTruncated, off)
	}
	payload = data[off+frameHdrLen : end]
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, nil, 0, fmt.Errorf("%w: CRC mismatch at offset %d", ErrCorrupt, off)
	}
	return kind, payload, end, nil
}

// decodeRecords parses the entries of one CRC-verified records payload.
func decodeRecords(payload []byte, classes uint64) ([]Entry, error) {
	var batch []Entry
	for p := 0; p < len(payload); {
		class, n := binary.Uvarint(payload[p:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad class varint in records frame", ErrFormat)
		}
		p += n
		if p >= len(payload) {
			return nil, fmt.Errorf("%w: records frame ends mid-entry", ErrFormat)
		}
		if class >= classes {
			return nil, fmt.Errorf("%w: class %d outside campaign of %d classes", ErrFormat, class, classes)
		}
		batch = append(batch, Entry{Class: int(class), Outcome: payload[p]})
		p++
	}
	return batch, nil
}

// Load reads a checkpoint file for analysis. It returns the header and
// the completed outcomes keyed by class index (last record wins). On
// ErrTruncated or ErrCorrupt the salvageable records are still returned.
func Load(path string) (Header, map[int]uint8, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Header{}, nil, err
	}
	h, entries, _, derr := decodeAll(data)
	return h, entryMap(entries), derr
}

func entryMap(entries []Entry) map[int]uint8 {
	m := make(map[int]uint8, len(entries))
	for _, e := range entries {
		m[e.Class] = e.Outcome
	}
	return m
}

// Writer appends experiment records to a checkpoint file. It buffers
// records and writes them as one CRC-framed chunk per flush (a single
// write followed by fsync), so a crash can only lose the unflushed tail.
// A Writer is not safe for concurrent use; the campaign engine calls it
// from its single collector goroutine.
type Writer struct {
	f       *os.File
	buf     []byte
	pending int
	// FlushEvery is the number of buffered records that triggers an
	// automatic flush (default DefaultFlushEvery). Lower it to tighten
	// the crash-loss window at the cost of more fsyncs.
	FlushEvery int
	err        error

	// Telemetry instruments, nil (no-op) until Instrument is called.
	flushes *telemetry.Counter
	bytes   *telemetry.Counter
	fsync   *telemetry.Histogram
}

// Instrument attaches checkpoint I/O metrics from the registry:
// "checkpoint.flushes" and "checkpoint.bytes" count frame flushes and
// bytes written, "checkpoint.fsync" is the fsync latency histogram.
// Safe with a nil registry (the instruments stay no-ops).
func (w *Writer) Instrument(r *telemetry.Registry) {
	w.flushes = r.Counter("checkpoint.flushes")
	w.bytes = r.Counter("checkpoint.bytes")
	w.fsync = r.Histogram("checkpoint.fsync")
}

// Create starts a fresh checkpoint at path. It refuses to overwrite an
// existing file (use Open to resume, or remove the file explicitly).
func Create(path string, h Header) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	w := &Writer{f: f, FlushEvery: DefaultFlushEvery}
	hdr := make([]byte, 0, len(magic)+frameHdrLen+headerLen)
	hdr = append(hdr, magic...)
	payload := make([]byte, headerLen)
	binary.LittleEndian.PutUint32(payload[0:4], Version)
	copy(payload[4:36], h.Identity[:])
	binary.LittleEndian.PutUint64(payload[36:44], h.Classes)
	hdr = appendFrame(hdr, kindHeader, payload)
	if _, err := f.Write(hdr); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return w, nil
}

// Open resumes a checkpoint: it validates the header against h (same
// version, identity and class count), loads the completed records,
// truncates any torn or corrupt tail and positions the writer for
// appending. If the file does not exist yet, Open creates it, so a
// "resume" of a first run degrades to a fresh campaign. The returned map
// holds the already-completed outcomes by class index.
func Open(path string, h Header) (*Writer, map[int]uint8, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		w, cerr := Create(path, h)
		return w, nil, cerr
	}
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	fh, entries, goodLen, derr := decodeAll(data)
	if derr != nil && !errors.Is(derr, ErrTruncated) && !errors.Is(derr, ErrCorrupt) {
		return nil, nil, derr
	}
	if fh.Identity != h.Identity {
		return nil, nil, fmt.Errorf("%w: checkpoint was written by a different campaign (program, fault space or config changed)", ErrIdentityMismatch)
	}
	if fh.Classes != h.Classes {
		return nil, nil, fmt.Errorf("%w: checkpoint covers %d classes, campaign has %d", ErrIdentityMismatch, fh.Classes, h.Classes)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	// Cut the torn tail (if any) so new frames extend a valid prefix.
	if err := f.Truncate(goodLen); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := f.Seek(goodLen, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Writer{f: f, FlushEvery: DefaultFlushEvery}, entryMap(entries), nil
}

// Append buffers one completed experiment record, flushing automatically
// every FlushEvery records. Errors are sticky: once a flush fails, every
// subsequent call (and Close) reports the failure.
func (w *Writer) Append(class int, outcome uint8) error {
	if w.err != nil {
		return w.err
	}
	w.buf = binary.AppendUvarint(w.buf, uint64(class))
	w.buf = append(w.buf, outcome)
	w.pending++
	if w.pending >= w.FlushEvery {
		return w.flush()
	}
	return nil
}

// Sync flushes buffered records to disk as one frame and fsyncs.
func (w *Writer) Sync() error {
	if w.err != nil {
		return w.err
	}
	return w.flush()
}

func (w *Writer) flush() error {
	if w.pending == 0 {
		return nil
	}
	frame := appendFrame(make([]byte, 0, frameHdrLen+len(w.buf)), kindRecords, w.buf)
	if _, err := w.f.Write(frame); err != nil {
		w.err = fmt.Errorf("checkpoint: %w", err)
		return w.err
	}
	var t0 time.Time
	if w.fsync != nil {
		t0 = time.Now()
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("checkpoint: %w", err)
		return w.err
	}
	if w.fsync != nil {
		w.fsync.Observe(time.Since(t0))
	}
	w.flushes.Inc()
	w.bytes.Add(uint64(len(frame)))
	w.buf = w.buf[:0]
	w.pending = 0
	return nil
}

// Close flushes pending records and closes the file.
func (w *Writer) Close() error {
	if w.f == nil {
		return w.err
	}
	ferr := w.flush()
	cerr := w.f.Close()
	w.f = nil
	if ferr != nil {
		return ferr
	}
	if cerr != nil {
		w.err = fmt.Errorf("checkpoint: %w", cerr)
		return w.err
	}
	return nil
}

// AppendFrame appends one CRC-guarded frame (kind, length, CRC32,
// payload) to dst — the encoding half of ReadFrame.
func AppendFrame(dst []byte, kind byte, payload []byte) []byte {
	return appendFrame(dst, kind, payload)
}

// appendFrame appends one frame (kind, length, CRC, payload) to dst.
func appendFrame(dst []byte, kind byte, payload []byte) []byte {
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}
