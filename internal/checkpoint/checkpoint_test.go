package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"faultspace/internal/telemetry"
)

func testHeader() Header {
	h := Header{Version: Version, Classes: 1000}
	for i := range h.Identity {
		h.Identity[i] = byte(i * 7)
	}
	return h
}

func writeRecords(t *testing.T, w *Writer, entries []Entry) {
	t.Helper()
	for _, e := range entries {
		if err := w.Append(e.Class, e.Outcome); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	h := testHeader()
	w, err := Create(path, h)
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{{0, 2}, {7, 0}, {999, 5}, {42, 3}}
	writeRecords(t, w, want)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	gotH, got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotH != h {
		t.Errorf("header mismatch: %+v != %+v", gotH, h)
	}
	if len(got) != len(want) {
		t.Fatalf("loaded %d records, want %d", len(got), len(want))
	}
	for _, e := range want {
		if got[e.Class] != e.Outcome {
			t.Errorf("class %d: outcome %d, want %d", e.Class, got[e.Class], e.Outcome)
		}
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := Create(path, testHeader()); err == nil {
		t.Fatal("Create must refuse to overwrite an existing checkpoint")
	}
}

func TestOpenCreatesMissing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	w, prior, err := Open(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 0 {
		t.Errorf("fresh checkpoint has %d prior records", len(prior))
	}
	writeRecords(t, w, []Entry{{1, 1}})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, prior, err = Open(path, testHeader()); err != nil || len(prior) != 1 {
		t.Fatalf("reopen: prior=%v err=%v", prior, err)
	}
}

func TestOpenAppendsAcrossSessions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	h := testHeader()
	w, err := Create(path, h)
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w, []Entry{{1, 1}, {2, 2}})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w, prior, err := Open(path, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 2 {
		t.Fatalf("prior = %v, want 2 records", prior)
	}
	writeRecords(t, w, []Entry{{3, 3}})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, all, err := Load(path)
	if err != nil || len(all) != 3 || all[3] != 3 {
		t.Fatalf("final load: %v err=%v", all, err)
	}
}

// TestTornTailRecovery simulates a crash mid-write: the file is cut at
// every possible byte boundary inside the last frame, and Open must
// salvage exactly the records of the preceding intact frames, then keep
// appending from there.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")
	h := testHeader()
	w, err := Create(path, h)
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w, []Entry{{1, 1}, {2, 2}})
	if err := w.Sync(); err != nil { // frame 1: classes 1, 2
		t.Fatal(err)
	}
	writeRecords(t, w, []Entry{{3, 3}, {4, 4}})
	if err := w.Close(); err != nil { // frame 2: classes 3, 4
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, _, frame1End, err := decodeAll(full[:len(full)-1])
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("cut file: err = %v, want ErrTruncated", err)
	}

	for cut := int(frame1End) + 1; cut < len(full); cut++ {
		torn := filepath.Join(dir, "torn.ckpt")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, prior, err := Open(torn, h)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(prior) != 2 || prior[1] != 1 || prior[2] != 2 {
			t.Fatalf("cut at %d: salvaged %v, want classes 1, 2", cut, prior)
		}
		// Appending after recovery must yield a fully-valid file again.
		writeRecords(t, w, []Entry{{5, 5}})
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if _, all, err := Load(torn); err != nil || len(all) != 3 || all[5] != 5 {
			t.Fatalf("cut at %d: post-recovery load: %v err=%v", cut, all, err)
		}
		os.Remove(torn)
	}
}

func TestCorruptFrameRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	h := testHeader()
	w, err := Create(path, h)
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w, []Entry{{1, 1}})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w, []Entry{{2, 2}})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	// Flip a byte in the last frame's payload: its CRC no longer matches.
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode of corrupt frame: %v, want ErrCorrupt", err)
	}
	w, prior, err := Open(path, h)
	if err != nil {
		t.Fatalf("Open must recover the valid prefix: %v", err)
	}
	defer w.Close()
	if len(prior) != 1 || prior[1] != 1 {
		t.Fatalf("salvaged %v, want class 1 only", prior)
	}
}

func TestHeaderMismatches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	h := testHeader()
	w, err := Create(path, h)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()

	other := h
	other.Identity[0] ^= 1
	if _, _, err := Open(path, other); !errors.Is(err, ErrIdentityMismatch) {
		t.Errorf("identity mismatch: %v", err)
	}
	other = h
	other.Classes++
	if _, _, err := Open(path, other); !errors.Is(err, ErrIdentityMismatch) {
		t.Errorf("class-count mismatch: %v", err)
	}
}

func TestVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	data, _ := os.ReadFile(path)
	// Patch the version field (payload offset 0 of the header frame) and
	// re-CRC the header payload so only the version is "wrong".
	payload := data[len(magic)+frameHdrLen:]
	payload[0] = 99
	fixed := appendFrame(append([]byte{}, magic...), kindHeader, payload)
	if _, _, err := Decode(fixed); !errors.Is(err, ErrVersion) {
		t.Fatalf("version 99: %v, want ErrVersion", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":                 {},
		"bad magic":             []byte("NOTACKPT file"),
		"magic only, no header": []byte(magic),
	}
	for name, data := range cases {
		if _, _, err := Decode(data); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: err = %v, want ErrFormat", name, err)
		}
	}
}

func TestDecodeRejectsOutOfRangeClass(t *testing.T) {
	h := testHeader()
	h.Classes = 3
	var payload []byte
	payload = append(payload, 0x05, 0x01) // class 5 >= 3 classes
	file := makeFile(h, payload)
	if _, _, err := Decode(file); !errors.Is(err, ErrFormat) {
		t.Fatalf("out-of-range class: %v, want ErrFormat", err)
	}
}

// makeFile hand-assembles a checkpoint image from a header and one raw
// records payload.
func makeFile(h Header, records []byte) []byte {
	hp := make([]byte, headerLen)
	hp[0] = byte(h.Version)
	copy(hp[4:36], h.Identity[:])
	hp[36] = byte(h.Classes)
	file := append([]byte{}, magic...)
	file = appendFrame(file, kindHeader, hp)
	return appendFrame(file, kindRecords, records)
}

func TestStickyWriterError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	w.f.Close() // sabotage the descriptor: the next flush must fail
	w.buf = append(w.buf, 1, 1)
	w.pending = 1
	if err := w.Sync(); err == nil {
		t.Fatal("flush on closed file must fail")
	}
	if err := w.Append(2, 2); err == nil {
		t.Fatal("append after failed flush must report the sticky error")
	}
	if err := w.Close(); err == nil {
		t.Fatal("close must report the sticky error")
	}
}

func TestLargeCampaignManyFlushes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	h := Header{Version: Version, Classes: 100000}
	w, err := Create(path, h)
	if err != nil {
		t.Fatal(err)
	}
	w.FlushEvery = 64
	for i := 0; i < 10000; i++ {
		if err := w.Append(i*7%100000, uint8(i%8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 9000 {
		t.Fatalf("loaded %d distinct records", len(got))
	}
}

// TestWriterTelemetry: an instrumented writer accounts every flush, the
// exact frame bytes written and an fsync timing sample per flush.
func TestWriterTelemetry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	w.Instrument(reg)
	w.FlushEvery = 2
	writeRecords(t, w, []Entry{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	if err := w.Close(); err != nil { // flushes the odd record out
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Counters["checkpoint.flushes"]; got != 3 {
		t.Errorf("checkpoint.flushes = %d, want 3 (2+2+1 records)", got)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	headerBytes := int64(len(magic) + frameHdrLen + headerLen)
	if got := s.Counters["checkpoint.bytes"]; int64(got) != fi.Size()-headerBytes {
		t.Errorf("checkpoint.bytes = %d, want %d (file size minus header)", got, fi.Size()-headerBytes)
	}
	if got := s.Histograms["checkpoint.fsync"].Count; got != 3 {
		t.Errorf("checkpoint.fsync samples = %d, want 3", got)
	}
	// Uninstrumented writers keep working (nil-instrument fast path).
	w2, err := Create(filepath.Join(t.TempDir(), "d.ckpt"), testHeader())
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w2, []Entry{{5, 1}})
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}
