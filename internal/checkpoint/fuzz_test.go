package checkpoint

import (
	"encoding/binary"
	"testing"
)

// fuzzSeedFile builds a small valid checkpoint image for the fuzz corpus.
func fuzzSeedFile() []byte {
	h := Header{Version: Version, Classes: 64}
	for i := range h.Identity {
		h.Identity[i] = byte(i)
	}
	hp := make([]byte, headerLen)
	binary.LittleEndian.PutUint32(hp[0:4], h.Version)
	copy(hp[4:36], h.Identity[:])
	binary.LittleEndian.PutUint64(hp[36:44], h.Classes)
	file := append([]byte{}, magic...)
	file = appendFrame(file, kindHeader, hp)
	var rec []byte
	for i := 0; i < 20; i++ {
		rec = binary.AppendUvarint(rec, uint64(i*3))
		rec = append(rec, byte(i%8))
	}
	file = appendFrame(file, kindRecords, rec[:len(rec)/2*2])
	return appendFrame(file, kindRecords, []byte{0x3f, 0x07})
}

// FuzzCheckpointDecode hammers the decoder with mutated checkpoint
// images: truncations, flipped CRC bytes, version/kind mutations and
// arbitrary garbage. The decoder must never panic and never hand back
// records that violate the header's class bound — corrupted input yields
// an error, not silently wrong outcomes.
func FuzzCheckpointDecode(f *testing.F) {
	valid := fuzzSeedFile()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(magic))
	for _, cut := range []int{1, len(magic), len(magic) + 3, len(valid) / 2, len(valid) - 1} {
		if cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)-1] ^= 0x80 // CRC/payload flip in the tail frame
	f.Add(flipped)
	versioned := append([]byte{}, valid...)
	versioned[len(magic)+frameHdrLen] = 2 // header version byte
	f.Add(versioned)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, entries, err := Decode(data)
		if err != nil {
			// Even on ErrTruncated/ErrCorrupt, salvaged entries must
			// respect the header bound.
			for _, e := range entries {
				if uint64(e.Class) >= h.Classes {
					t.Fatalf("error path leaked out-of-range class %d (classes %d)", e.Class, h.Classes)
				}
			}
			return
		}
		if h.Version != Version {
			t.Fatalf("successful decode with foreign version %d", h.Version)
		}
		for _, e := range entries {
			if uint64(e.Class) >= h.Classes {
				t.Fatalf("decoded class %d outside campaign of %d classes", e.Class, h.Classes)
			}
		}
		// A successful decode must be byte-stable: re-encoding the parsed
		// records through a fresh writer and re-decoding them must yield
		// the same entries (exercised cheaply via the record codec).
		var rec []byte
		for _, e := range entries {
			rec = binary.AppendUvarint(rec, uint64(e.Class))
			rec = append(rec, e.Outcome)
		}
		back, perr := decodeRecords(rec, h.Classes)
		if perr != nil {
			t.Fatalf("re-encode of decoded records failed: %v", perr)
		}
		if len(back) != len(entries) {
			t.Fatalf("re-decode yielded %d records, want %d", len(back), len(entries))
		}
		for i := range back {
			if back[i] != entries[i] {
				t.Fatalf("record %d changed across re-encode: %+v != %+v", i, back[i], entries[i])
			}
		}
	})
}
