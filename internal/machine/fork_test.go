package machine

import (
	"math/rand"
	"testing"

	"faultspace/internal/isa"
)

// buildCountingStoreProgram loops forever storing an incrementing counter
// to RAM[0]: every iteration re-dirties the same page.
func buildCountingStoreProgram() []isa.Instruction {
	return []isa.Instruction{
		{Op: isa.OpAddi, Rd: 1, Rs: 1, Imm: 1},
		{Op: isa.OpSb, Rs: 0, Rt: 1, Imm: 0},
		{Op: isa.OpJmp, Imm: 0},
	}
}

// TestForkerEquivalence is the differential-copy property test: a child
// produced by Fork must be state-identical to a full Snapshot/Restore of
// the parent, across a monotone parent advance with arbitrary child
// dirtying (fault flips + partial suffix runs) in between — exactly the
// fork scan's access pattern.
func TestForkerEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 12; trial++ {
		ramSize := []int{32, 300, 512, 1024}[trial%4]
		prog := buildRandomProgram(rng, ramSize, 120)
		parent, err := New(Config{RAMSize: ramSize}, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		child, err := New(Config{RAMSize: ramSize}, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		f := NewForker(parent, child)
		for i := 0; i < 40 && parent.Status() == StatusRunning; i++ {
			parent.Run(parent.Cycles() + uint64(rng.Intn(9)))
			f.Fork()
			// Reference: a full snapshot round-trip of the parent.
			ref, err := New(Config{RAMSize: ramSize}, prog, nil)
			if err != nil {
				t.Fatal(err)
			}
			ref.Restore(parent.Snapshot())
			if stateHash(child) != stateHash(ref) {
				t.Fatalf("trial %d fork %d: child diverges from parent snapshot at cycle %d",
					trial, i, parent.Cycles())
			}
			// Dirty the child like an experiment would: inject and run a
			// partial faulty suffix.
			if err := child.FlipBit(uint64(rng.Intn(ramSize * 8))); err != nil {
				t.Fatal(err)
			}
			child.Run(child.Cycles() + uint64(rng.Intn(20)))
		}
	}
}

// TestForkerRepeatedPageWrites pins the bug a naive "newly dirtied since
// the last fork" delta misses: the parent writing the SAME page in two
// consecutive inter-fork windows must still propagate the second write.
func TestForkerRepeatedPageWrites(t *testing.T) {
	// Program: stores i to RAM[0] forever — every cycle dirties page 0.
	prog := buildCountingStoreProgram()
	ramSize := 4 * PageSize
	parent, err := New(Config{RAMSize: ramSize}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	child, err := New(Config{RAMSize: ramSize}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := NewForker(parent, child)
	for i := 0; i < 8; i++ {
		parent.Run(parent.Cycles() + 4)
		f.Fork()
		if stateHash(child) != stateHash(parent) {
			t.Fatalf("fork %d: child diverges after repeated writes to one page", i)
		}
		// Child does NOT write anything here: the next fork's page-0 copy
		// must come from the parent-side dirty set alone.
	}
}

// TestForkerInvalidateAfterCursorRestore covers the fork scan's batch
// boundary: the parent is repositioned via an invalidated ladder Cursor
// (a full-page restore that resets dirty bits behind the forker), the
// forker is invalidated, and the next Fork must still be exact.
func TestForkerInvalidateAfterCursorRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ramSize := 1024
	prog := buildRandomProgram(rng, ramSize, 120)
	golden, err := New(Config{RAMSize: ramSize}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	l := runWithLadder(golden, 8, 1000)
	if l.Rungs() < 3 {
		t.Fatalf("degenerate ladder (%d rungs)", l.Rungs())
	}
	parent, err := New(Config{RAMSize: ramSize}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	child, err := New(Config{RAMSize: ramSize}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	cur := l.NewCursor(parent)
	f := NewForker(parent, child)
	for i := 0; i < 20; i++ {
		r := rng.Intn(l.Rungs())
		cur.Invalidate()
		cur.Restore(r)
		f.Invalidate()
		for j := 0; j < 3; j++ {
			parent.Run(parent.Cycles() + uint64(rng.Intn(6)))
			f.Fork()
			ref, err := New(Config{RAMSize: ramSize}, prog, nil)
			if err != nil {
				t.Fatal(err)
			}
			ref.Run(parent.Cycles())
			if stateHash(child) != stateHash(ref) {
				t.Fatalf("batch %d fork %d: child diverges from replay at cycle %d",
					i, j, parent.Cycles())
			}
			if err := child.FlipBit(uint64(rng.Intn(ramSize * 8))); err != nil {
				t.Fatal(err)
			}
			child.Run(child.Cycles() + uint64(rng.Intn(12)))
		}
	}
}

func TestNewForkerMismatchedRAMPanics(t *testing.T) {
	prog := buildCountingStoreProgram()
	m1, _ := New(Config{RAMSize: 8}, prog, nil)
	m2, _ := New(Config{RAMSize: 16}, prog, nil)
	defer func() {
		if recover() == nil {
			t.Error("NewForker with mismatched RAM size must panic")
		}
	}()
	NewForker(m1, m2)
}

// FuzzForkClone drives random fork/dirty/advance sequences against
// replay references, like FuzzDeltaRestore does for the ladder cursor:
// every forked child must hash identically to an uninterrupted run
// reaching the parent's cycle.
func FuzzForkClone(f *testing.F) {
	f.Add(int64(1), []byte{0, 3, 9, 1})
	f.Add(int64(7), []byte{255, 128, 2})
	f.Add(int64(42), []byte{5, 5, 5, 5, 5})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		rng := rand.New(rand.NewSource(seed))
		ramSize := []int{16, 64, 256, 1024}[rng.Intn(4)]
		prog := buildRandomProgram(rng, ramSize, 60)
		parent, err := New(Config{RAMSize: ramSize}, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		child, err := New(Config{RAMSize: ramSize}, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		fk := NewForker(parent, child)
		if len(ops) > 64 {
			ops = ops[:64]
		}
		for i, b := range ops {
			if parent.Status() != StatusRunning {
				break
			}
			parent.Run(parent.Cycles() + uint64(b%11))
			fk.Fork()
			ref, err := New(Config{RAMSize: ramSize}, prog, nil)
			if err != nil {
				t.Fatal(err)
			}
			ref.Run(parent.Cycles())
			if stateHash(child) != stateHash(ref) {
				t.Fatalf("op %d: forked child diverges from replay at cycle %d",
					i, parent.Cycles())
			}
			if b%3 == 0 {
				if err := child.FlipBit(uint64(b) % child.RAMBits()); err != nil {
					t.Fatal(err)
				}
			}
			child.Run(child.Cycles() + uint64(b%7))
		}
	})
}
