package machine

import (
	"encoding/binary"
	"hash/maphash"
)

// This file exposes the machine's behavior-relevant execution state to
// the campaign layer's cross-experiment memoization (see
// internal/campaign/memo.go). The state definition is exactly the loop
// detector's (loop.go): the machine is deterministic, so two running
// machines of the same configuration and program that agree on this
// state — at the same retired-cycle count — execute identical
// continuations. Serial CONTENT and the detect/correct counters are
// excluded (MMIO ports are write-only, so they can never influence
// execution), but the serial LENGTH is included because the serial cap
// check depends on it.

// SerialLen returns the length of the serial output produced so far,
// without copying it (compare Serial).
func (m *Machine) SerialLen() int { return len(m.serial) }

// SerialView returns the serial output as a read-only view into the
// machine's live buffer. The slice is invalidated by any subsequent
// Step, Run or state restore; callers must not mutate or retain it.
// It exists so classification can compare output without per-experiment
// copying (compare Serial).
func (m *Machine) SerialView() []byte { return m.serial }

// AppendSerialSuffix appends the serial output from byte offset `from`
// onwards to dst and returns the extended slice.
func (m *Machine) AppendSerialSuffix(dst []byte, from int) []byte {
	return append(dst, m.serial[from:]...)
}

// HashExecState writes the behavior-relevant execution state into h.
// The machine must be running; the retired-cycle count is deliberately
// NOT written (callers key it separately, so "same state at the same
// cycle" and the hash compose into a full identity). The timer distance
// is clamped like LoopDetector's: an overdue timer fires at the next
// boundary no matter how overdue, so all "already due" states behave
// identically.
func (m *Machine) HashExecState(h *maphash.Hash) {
	var buf [96]byte
	binary.LittleEndian.PutUint32(buf[0:], m.pc)
	for i, r := range m.regs {
		binary.LittleEndian.PutUint32(buf[4+4*i:], r)
	}
	binary.LittleEndian.PutUint32(buf[68:], m.savedPC)
	if m.inIRQ {
		buf[72] = 1
	}
	binary.LittleEndian.PutUint64(buf[73:], m.timerRel())
	binary.LittleEndian.PutUint64(buf[81:], uint64(len(m.serial)))
	h.Write(buf[:89])
	h.Write(m.ram)
}
