package machine

import (
	"bytes"
	"fmt"

	"faultspace/internal/isa"
)

// PageSize is the granularity of dirty-page tracking in bytes. It is a
// multiple of 4 so an aligned word store always lies within one page.
// Smaller pages mean finer deltas (less copying per rung) but more
// bookkeeping; 256 bytes keeps the whole bitset of even the largest
// permissible RAM (64 KiB = 256 pages) in four words.
const PageSize = 256

// numPages returns the number of PageSize pages covering ramSize bytes
// (the last page may be partial).
func numPages(ramSize int) int {
	return (ramSize + PageSize - 1) / PageSize
}

// markDirty records that the page containing RAM byte addr was written.
func (m *Machine) markDirty(addr uint32) {
	p := addr / PageSize
	m.dirty[p>>6] |= 1 << (p & 63)
}

// markAllDirty conservatively marks every page dirty. Full-state
// operations (Restore, Clone) use it so delta-snapshot consumers never
// assume a baseline that was rewritten wholesale.
func (m *Machine) markAllDirty() {
	for i := range m.dirty {
		m.dirty[i] = ^uint64(0)
	}
}

// resetDirty clears the dirty-page bitset.
func (m *Machine) resetDirty() {
	for i := range m.dirty {
		m.dirty[i] = 0
	}
}

// pageDirty reports whether page p is marked dirty.
func (m *Machine) pageDirty(p int) bool {
	return m.dirty[p>>6]&(1<<(uint(p)&63)) != 0
}

// pageBounds returns the RAM byte range [lo, hi) of page p.
func (m *Machine) pageBounds(p int) (lo, hi int) {
	lo = p * PageSize
	hi = lo + PageSize
	if hi > len(m.ram) {
		hi = len(m.ram)
	}
	return lo, hi
}

// rungMeta is the non-RAM machine state of one ladder rung.
type rungMeta struct {
	regs      [isa.NumRegs]uint32
	pc        uint32
	cycles    uint64
	status    Status
	exc       Exception
	serialLen int
	detects   uint64
	corrects  uint64
	inIRQ     bool
	savedPC   uint32
	fireAt    uint64
}

// Ladder is a sequence of delta snapshots ("rungs") of one deterministic
// run, captured at increasing cycle counts. Each rung stores full copies
// only of the RAM pages mutated since the previous rung; unchanged pages
// share their backing array with the prior rung. A Cursor restores any
// rung onto a worker machine by copying only the pages that differ from
// the machine's last-restored state.
//
// The campaign ladder strategy builds one Ladder during the golden run
// and then services each experiment from the nearest rung at-or-below
// its injection cycle, executing only the remaining delta instead of
// replaying from reset.
//
// A Ladder is immutable after construction and safe for concurrent use
// by any number of Cursors (each Cursor belongs to one worker machine).
type Ladder struct {
	ramSize int
	rungs   []rungMeta
	// views[i][p] is the PageSize-byte content of page p at rung i.
	// Slices are shared between consecutive rungs for pages that were
	// not written in between, so pointer identity of &views[i][p][0]
	// doubles as a cheap "unchanged since rung j" test.
	views [][][]byte
	// serial is the accumulated serial output up to the newest rung;
	// rung i's output is the prefix serial[:rungs[i].serialLen].
	serial []byte
}

// NewLadder creates a ladder whose first rung (rung 0) is the machine's
// current state — typically the reset state, before any instruction has
// executed. It clears the machine's dirty-page set so the next Capture
// records exactly the pages written after this point.
func NewLadder(m *Machine) *Ladder {
	np := numPages(len(m.ram))
	view := make([][]byte, np)
	for p := 0; p < np; p++ {
		lo, hi := m.pageBounds(p)
		view[p] = append([]byte(nil), m.ram[lo:hi]...)
	}
	l := &Ladder{
		ramSize: len(m.ram),
		rungs:   []rungMeta{m.rungMeta(len(m.serial))},
		views:   [][][]byte{view},
		serial:  append([]byte(nil), m.serial...),
	}
	m.resetDirty()
	return l
}

func (m *Machine) rungMeta(serialLen int) rungMeta {
	return rungMeta{
		regs:      m.regs,
		pc:        m.pc,
		cycles:    m.cycles,
		status:    m.status,
		exc:       m.exc,
		serialLen: serialLen,
		detects:   m.detects,
		corrects:  m.corrects,
		inIRQ:     m.inIRQ,
		savedPC:   m.savedPC,
		fireAt:    m.fireAt,
	}
}

// Capture appends the machine's current state as a new rung. The machine
// must be the one the ladder has tracked since NewLadder (same run, no
// intervening Restore), and its cycle count must exceed the last rung's.
// Only pages dirtied since the previous Capture are copied.
func (l *Ladder) Capture(m *Machine) {
	if len(m.ram) != l.ramSize {
		panic("machine: Ladder.Capture with mismatched RAM size")
	}
	last := l.rungs[len(l.rungs)-1]
	if m.cycles <= last.cycles {
		panic(fmt.Sprintf("machine: Ladder.Capture at cycle %d, not after last rung (cycle %d)",
			m.cycles, last.cycles))
	}
	prev := l.views[len(l.views)-1]
	view := make([][]byte, len(prev))
	copy(view, prev)
	for p := range view {
		if m.pageDirty(p) {
			lo, hi := m.pageBounds(p)
			view[p] = append([]byte(nil), m.ram[lo:hi]...)
		}
	}
	m.resetDirty()
	// The golden run only ever appends serial output, so the suffix
	// beyond the previous rung's length is the new output.
	l.serial = append(l.serial, m.serial[last.serialLen:]...)
	l.rungs = append(l.rungs, m.rungMeta(len(m.serial)))
	l.views = append(l.views, view)
}

// Rungs returns the number of rungs (at least 1: the initial state).
func (l *Ladder) Rungs() int { return len(l.rungs) }

// RungCycle returns the cycle count of rung i.
func (l *Ladder) RungCycle(i int) uint64 { return l.rungs[i].cycles }

// Find returns the index of the highest rung whose cycle count is at or
// below cycle — the best starting point for reaching that cycle. Rung 0
// is at the initial state, so Find never fails for cycle ≥ RungCycle(0).
func (l *Ladder) Find(cycle uint64) int {
	// Binary search: first rung strictly above cycle, minus one.
	lo, hi := 0, len(l.rungs)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.rungs[mid].cycles <= cycle {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		panic(fmt.Sprintf("machine: Ladder.Find(%d) below rung 0 (cycle %d)",
			cycle, l.rungs[0].cycles))
	}
	return lo - 1
}

// RungAccum returns the traced run's accumulated observable output at
// rung i: serial output length, detect count and correct count. With
// StateMatches these let a caller compose the final output of a
// reconverged run without simulating it: final = current + (end − rung).
func (l *Ladder) RungAccum(i int) (serialLen int, detects, corrects uint64) {
	r := l.rungs[i]
	return r.serialLen, r.detects, r.corrects
}

// StateMatches reports whether m's execution-relevant state — program
// counter, registers, status, IRQ/timer state and RAM — equals rung r.
// The machine must be at exactly the rung's cycle count for a match.
//
// Serial output and the detect/correct counters are deliberately
// excluded: MMIO ports are write-only (loads from them raise
// ExcPortLoad), so accumulated output can never influence future
// execution. A running machine that matches a rung will therefore
// replay the traced run's continuation cycle-for-cycle — it has
// reconverged — and its remaining output is exactly the traced
// remainder (see RungAccum).
func (l *Ladder) StateMatches(m *Machine, r int) bool {
	if len(m.ram) != l.ramSize {
		return false
	}
	meta := l.rungs[r]
	// Cheapest-first ordering: a diverged run almost always differs in
	// pc or a register, so the RAM comparison is rarely reached.
	if m.pc != meta.pc || m.cycles != meta.cycles || m.status != meta.status {
		return false
	}
	if m.regs != meta.regs {
		return false
	}
	if m.inIRQ != meta.inIRQ || m.savedPC != meta.savedPC || m.fireAt != meta.fireAt {
		return false
	}
	view := l.views[r]
	for p := range view {
		lo, hi := m.pageBounds(p)
		if !bytes.Equal(m.ram[lo:hi], view[p]) {
			return false
		}
	}
	return true
}

// PagesStored returns the total number of page copies the ladder holds,
// counting shared (unchanged) pages once. It quantifies the delta-
// snapshot memory saving versus Rungs() × numPages full snapshots.
func (l *Ladder) PagesStored() int {
	n := 0
	for i, view := range l.views {
		for p := range view {
			if i == 0 || &view[p][0] != &l.views[i-1][p][0] {
				n++
			}
		}
	}
	return n
}

// Cursor restores ladder rungs onto one worker machine, copying only the
// pages that differ from the machine's last-restored state. A Cursor is
// bound to its machine and is not safe for concurrent use; create one
// Cursor per worker.
type Cursor struct {
	l     *Ladder
	m     *Machine
	rung  int
	valid bool
}

// NewCursor creates a cursor for restoring l's rungs onto m. The machine
// must have the same RAM size as the ladder's source machine (and, for
// the restored state to be meaningful, the same program and config).
func (l *Ladder) NewCursor(m *Machine) *Cursor {
	if len(m.ram) != l.ramSize {
		panic("machine: Ladder.NewCursor with mismatched RAM size")
	}
	return &Cursor{l: l, m: m}
}

// Invalidate drops the cursor's knowledge of the machine's state: the
// next Restore copies every page. Required when something other than
// the machine's own dirty-tracked execution consumed or reset the dirty
// bits — the fork scan's Forker does exactly that (machine/fork.go), so
// it invalidates its parent cursor before every batch restore.
func (c *Cursor) Invalidate() { c.valid = false }

// Restore sets the cursor's machine to the state of rung r.
//
// The first restore copies every page. Subsequent restores copy only the
// union of (a) pages the machine dirtied since the previous Restore —
// stores and FlipBit injections during the experiment — and (b) pages
// whose content differs between the previous rung and rung r, detected
// by backing-array identity. Any full-state mutation of the machine
// outside the cursor's knowledge (Machine.Restore, Clone) marks all
// pages dirty, so reuse stays conservative-correct.
func (c *Cursor) Restore(r int) {
	l, m := c.l, c.m
	meta := l.rungs[r]
	view := l.views[r]
	if !c.valid {
		for p := range view {
			lo, hi := m.pageBounds(p)
			copy(m.ram[lo:hi], view[p])
		}
	} else {
		prev := l.views[c.rung]
		for p := range view {
			if m.pageDirty(p) || &view[p][0] != &prev[p][0] {
				lo, hi := m.pageBounds(p)
				copy(m.ram[lo:hi], view[p])
			}
		}
	}
	m.resetDirty()
	if m.vn {
		// Rung restores rewrite RAM pages outside the predecode cache's
		// sight; drop all cached lowerings (campaigns only ladder Harvard
		// machines, so this is defensive, not hot).
		m.invalidateAllCode()
	}
	m.regs = meta.regs
	m.pc = meta.pc
	m.cycles = meta.cycles
	m.status = meta.status
	m.exc = meta.exc
	m.serial = append(m.serial[:0], l.serial[:meta.serialLen]...)
	m.detects = meta.detects
	m.corrects = meta.corrects
	m.inIRQ = meta.inIRQ
	m.savedPC = meta.savedPC
	m.fireAt = meta.fireAt
	// The golden run never has a pending instruction skip; clear any
	// leftover from an aborted experiment on this worker.
	m.skipNext = false
	c.rung = r
	c.valid = true
}
