package machine

import (
	"bytes"

	"faultspace/internal/isa"
)

// LoopProbeInterval is the default cycle spacing between loop-detector
// probes. Each probe costs one ring insertion (O(RAM) bytes copied) plus
// a hash-chain scan, so the spacing trades detection latency against
// probe overhead; any finite loop is still detected regardless of how
// its period relates to the spacing (see Probe). 16 is measured, not
// guessed: halving it halves ring detection latency in cycles but
// roughly doubles the probe volume, and on the bundled kernels the
// probe cost (a RAM copy per ring insert) wins.
const LoopProbeInterval = 16

// Ring geometry. loopRingSize probes of history bound the recurrence
// window: a loop of period L is caught by the ring when its probe-level
// period L/gcd(interval, L) fits the window. 64 entries cover every
// spin-loop period the Figure-2 kernels exhibit (62–116 cycles) with
// room to spare; rarer long or interval-coprime periods fall through to
// the Brent anchor. loopSlotCount is the pc hash-chain head count.
const (
	loopRingSize  = 64 // power of two
	loopSlotCount = 128
)

// ringEntry is one probe state in the recurrence ring. The RAM buffer is
// reused across probes and experiments; prev chains to the previous
// probe whose pc hashed to the same slot (-1 ends the chain).
type ringEntry struct {
	pc        uint32
	savedPC   uint32
	rel       uint64
	serialLen int
	prev      int
	inIRQ     bool
	regs      [isa.NumRegs]uint32
	ram       []byte
}

// LoopDetector proves that a running machine can never halt, by exact
// state recurrence: the machine is deterministic, so if its complete
// behavior-relevant state — pc, registers, RAM, IRQ state, the clamped
// distance to the next timer fire, and the serial output length —
// recurs, execution from the two occurrences is identical modulo a time
// shift and the machine loops forever. The campaign uses this to
// classify Timeout experiments as soon as the loop closes instead of
// simulating them to the full cycle budget; the verdict is independent
// of the budget, so outcomes are unchanged.
//
// Detection is two-tiered. The primary tier is a recurrence ring: the
// last loopRingSize probe states are retained verbatim, indexed by a
// pc-keyed hash chain, and the current state is compared against every
// retained probe that shares its pc. A loop of period L recurs at probe
// distance L/gcd(interval, L), so the ring proves it after at most
// interval·L/gcd(interval, L) cycles — for the scheduler-round spin
// loops that dominate real campaigns (L under ~100 cycles) that is a
// few hundred cycles, several times earlier than an anchor-doubling
// scheme settles. The fallback tier is Brent's algorithm (one anchored
// reference, re-anchored when the probe count since the last anchor
// reaches a power of two): it needs no history window, so it eventually
// proves any recurring loop the ring's bounded history misses.
//
// The detect/correct counters are deliberately excluded from the state:
// MMIO ports are write-only, so the counters never influence execution,
// and Timeout classification ignores them. The serial LENGTH is
// included: a "loop" that emits output grows the serial buffer and
// eventually terminates with ExcSerialLimit, so it must not be declared
// infinite.
type LoopDetector struct {
	interval uint64

	// Recurrence ring: ringN probes taken so far; probe i lives in
	// ring[i % loopRingSize] until overwritten by probe i+loopRingSize.
	// slots[h] holds 1 + the sequence number of the newest probe whose
	// pc hashes to h (0 = none).
	ringN int
	ring  [loopRingSize]ringEntry
	slots [loopSlotCount]int32

	// Brent fallback state.
	probes   uint64 // probes since the last anchor
	window   uint64 // probes until the next re-anchor (doubles)
	anchored bool

	refRegs   [isa.NumRegs]uint32
	refPC     uint32
	refInIRQ  bool
	refSaved  uint32
	refRel    uint64 // clamped fireAt − cycles at the anchor
	refSerial int
	refRAM    []byte
}

// NewLoopDetector creates a detector probing every interval cycles
// (LoopProbeInterval if interval is 0). One detector serves one machine
// at a time; call Reset between experiments.
func NewLoopDetector(interval uint64) *LoopDetector {
	if interval == 0 {
		interval = LoopProbeInterval
	}
	return &LoopDetector{interval: interval, window: 1}
}

// Interval returns the probe spacing in cycles.
func (d *LoopDetector) Interval() uint64 { return d.interval }

// Reset discards the ring history and the anchored reference so the
// detector can track a new run. The RAM buffers are retained to avoid
// per-experiment allocation.
func (d *LoopDetector) Reset() {
	d.ringN = 0
	clear(d.slots[:])
	d.probes = 0
	d.window = 1
	d.anchored = false
}

// timerRel returns the behavior-relevant distance to the next timer
// fire: an overdue timer fires at the next opportunity no matter how
// overdue it is, so all "already due" states clamp to zero. With the
// timer disabled the field is inert and reads as zero.
func (m *Machine) timerRel() uint64 {
	if m.cfg.TimerPeriod > 0 && m.fireAt > m.cycles {
		return m.fireAt - m.cycles
	}
	return 0
}

// pcSlot hashes a program counter to a chain-head slot.
func pcSlot(pc uint32) uint32 {
	return (pc * 2654435761) >> 16 & (loopSlotCount - 1)
}

// Probe compares the machine's state against the retained probe history
// and reports true if any retained state recurred — proof of an
// infinite loop. Otherwise the state is added to the ring and the Brent
// anchor advances. The machine must be running.
func (d *LoopDetector) Probe(m *Machine) bool {
	rel := m.timerRel()

	// Ring tier: walk the hash chain of probes sharing this pc, newest
	// first. A chain entry older than the ring window has been
	// overwritten; prev links only ever point further back, so the walk
	// stops there.
	h := pcSlot(m.pc)
	for seq := int(d.slots[h]) - 1; seq >= 0 && d.ringN-seq <= loopRingSize; {
		e := &d.ring[seq&(loopRingSize-1)]
		if e.pc == m.pc &&
			e.serialLen == len(m.serial) &&
			e.inIRQ == m.inIRQ &&
			e.savedPC == m.savedPC &&
			e.rel == rel &&
			e.regs == m.regs &&
			bytes.Equal(e.ram, m.ram) {
			return true
		}
		seq = e.prev
	}

	// Brent tier: exactly the classic anchor check, for loops whose
	// probe-level period exceeds the ring window.
	if d.anchored &&
		m.pc == d.refPC &&
		len(m.serial) == d.refSerial &&
		m.inIRQ == d.refInIRQ &&
		m.savedPC == d.refSaved &&
		rel == d.refRel &&
		m.regs == d.refRegs &&
		bytes.Equal(m.ram, d.refRAM) {
		return true
	}

	// No recurrence: retain the current state in the ring...
	e := &d.ring[d.ringN&(loopRingSize-1)]
	e.pc = m.pc
	e.savedPC = m.savedPC
	e.rel = rel
	e.serialLen = len(m.serial)
	e.inIRQ = m.inIRQ
	e.regs = m.regs
	e.ram = append(e.ram[:0], m.ram...)
	e.prev = int(d.slots[h]) - 1
	d.slots[h] = int32(d.ringN) + 1
	d.ringN++

	// ...and advance the Brent window.
	d.probes++
	if d.probes >= d.window {
		d.probes = 0
		d.window *= 2
		d.anchored = true
		d.refRegs = m.regs
		d.refPC = m.pc
		d.refInIRQ = m.inIRQ
		d.refSaved = m.savedPC
		d.refRel = rel
		d.refSerial = len(m.serial)
		d.refRAM = append(d.refRAM[:0], m.ram...)
	}
	return false
}

// RunDetectLoop advances m to the absolute cycle target (like Run) in
// probe-interval chunks, returning early with true as soon as the
// detector proves the machine loops forever. It returns false when the
// machine terminated or reached the target; in either case the machine
// state is then identical to a plain Run(target).
func (d *LoopDetector) RunDetectLoop(m *Machine, target uint64) bool {
	for m.status == StatusRunning && m.cycles < target {
		next := m.cycles + d.interval
		if next > target {
			next = target
		}
		if m.Run(next) != StatusRunning {
			return false
		}
		if m.cycles == next && next < target && d.Probe(m) {
			return true
		}
	}
	return false
}
