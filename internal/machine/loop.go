package machine

import (
	"bytes"

	"faultspace/internal/isa"
)

// LoopProbeInterval is the default cycle spacing between loop-detector
// probes. Each probe costs one full state comparison (O(RAM)), so the
// spacing trades detection latency against probe overhead; any finite
// loop is still detected regardless of how its period relates to the
// spacing (see Probe).
const LoopProbeInterval = 16

// LoopDetector proves that a running machine can never halt, by exact
// state recurrence: the machine is deterministic, so if its complete
// behavior-relevant state — pc, registers, RAM, IRQ state, the clamped
// distance to the next timer fire, and the serial output length —
// recurs, execution from the two occurrences is identical modulo a time
// shift and the machine loops forever. The campaign uses this to
// classify Timeout experiments as soon as the loop closes instead of
// simulating them to the full cycle budget; the verdict is independent
// of the budget, so outcomes are unchanged.
//
// Detection uses Brent's algorithm over probes taken every `interval`
// cycles: one anchored reference state is compared against the current
// state at each probe, and the anchor is re-taken when the probe count
// since the last anchor reaches a power of two. A loop of period L
// recurs at probe granularity after lcm(interval, L) cycles, which the
// doubling anchor window always ends up covering.
//
// The detect/correct counters are deliberately excluded from the state:
// MMIO ports are write-only, so the counters never influence execution,
// and Timeout classification ignores them. The serial LENGTH is
// included: a "loop" that emits output grows the serial buffer and
// eventually terminates with ExcSerialLimit, so it must not be declared
// infinite.
type LoopDetector struct {
	interval uint64
	probes   uint64 // probes since the last anchor
	window   uint64 // probes until the next re-anchor (doubles)
	anchored bool

	refRegs   [isa.NumRegs]uint32
	refPC     uint32
	refInIRQ  bool
	refSaved  uint32
	refRel    uint64 // clamped fireAt − cycles at the anchor
	refSerial int
	refRAM    []byte
}

// NewLoopDetector creates a detector probing every interval cycles
// (LoopProbeInterval if interval is 0). One detector serves one machine
// at a time; call Reset between experiments.
func NewLoopDetector(interval uint64) *LoopDetector {
	if interval == 0 {
		interval = LoopProbeInterval
	}
	return &LoopDetector{interval: interval, window: 1}
}

// Interval returns the probe spacing in cycles.
func (d *LoopDetector) Interval() uint64 { return d.interval }

// Reset discards the anchored reference so the detector can track a new
// run. The RAM buffer is retained to avoid per-experiment allocation.
func (d *LoopDetector) Reset() {
	d.probes = 0
	d.window = 1
	d.anchored = false
}

// timerRel returns the behavior-relevant distance to the next timer
// fire: an overdue timer fires at the next opportunity no matter how
// overdue it is, so all "already due" states clamp to zero. With the
// timer disabled the field is inert and reads as zero.
func (m *Machine) timerRel() uint64 {
	if m.cfg.TimerPeriod > 0 && m.fireAt > m.cycles {
		return m.fireAt - m.cycles
	}
	return 0
}

// Probe compares the machine's state against the anchored reference and
// reports true if it recurred — proof of an infinite loop. Otherwise it
// advances Brent's window, re-anchoring when due. The machine must be
// running.
func (d *LoopDetector) Probe(m *Machine) bool {
	rel := m.timerRel()
	if d.anchored &&
		m.pc == d.refPC &&
		len(m.serial) == d.refSerial &&
		m.inIRQ == d.refInIRQ &&
		m.savedPC == d.refSaved &&
		rel == d.refRel &&
		m.regs == d.refRegs &&
		bytes.Equal(m.ram, d.refRAM) {
		return true
	}
	d.probes++
	if d.probes >= d.window {
		d.probes = 0
		d.window *= 2
		d.anchored = true
		d.refRegs = m.regs
		d.refPC = m.pc
		d.refInIRQ = m.inIRQ
		d.refSaved = m.savedPC
		d.refRel = rel
		d.refSerial = len(m.serial)
		d.refRAM = append(d.refRAM[:0], m.ram...)
	}
	return false
}

// RunDetectLoop advances m to the absolute cycle target (like Run) in
// probe-interval chunks, returning early with true as soon as the
// detector proves the machine loops forever. It returns false when the
// machine terminated or reached the target; in either case the machine
// state is then identical to a plain Run(target).
func (d *LoopDetector) RunDetectLoop(m *Machine, target uint64) bool {
	for m.status == StatusRunning && m.cycles < target {
		next := m.cycles + d.interval
		if next > target {
			next = target
		}
		if m.Run(next) != StatusRunning {
			return false
		}
		if m.cycles == next && next < target && d.Probe(m) {
			return true
		}
	}
	return false
}
