package machine

import (
	"bytes"
	"math/bits"
	"math/rand"
	"testing"
)

// FuzzBurstMaskDecode fuzzes the burst coordinate decoder: FlipBurst
// receives (k, pos) straight from campaign classes, wire work units and
// checkpoint resume paths, so arbitrary values must either be rejected
// with RAM untouched or decode to a mask of exactly k adjacent bits
// inside exactly one byte. Injection is an involution: applying the same
// coordinate twice must restore the original image bit-for-bit.
func FuzzBurstMaskDecode(f *testing.F) {
	f.Add(2, uint64(0), int64(1))
	f.Add(4, uint64(305), int64(7))
	f.Add(0, uint64(1<<63), int64(3))
	f.Add(9, uint64(12), int64(9))
	f.Fuzz(func(t *testing.T, k int, pos uint64, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		ramSize := []int{32, 256, 300, 1024}[rng.Intn(4)]
		image := make([]byte, ramSize)
		rng.Read(image)
		m, err := New(Config{RAMSize: ramSize}, buildRandomProgram(rng, ramSize, 8), image)
		if err != nil {
			t.Fatal(err)
		}
		before := append([]byte(nil), m.ram...)

		if err := m.FlipBurst(k, pos); err != nil {
			if !bytes.Equal(m.ram, before) {
				t.Fatalf("rejected burst (k=%d, pos=%d) modified RAM", k, pos)
			}
			return
		}
		diff := -1
		for i := range m.ram {
			if m.ram[i] != before[i] {
				if diff >= 0 {
					t.Fatalf("burst (k=%d, pos=%d) touched bytes %d and %d", k, pos, diff, i)
				}
				diff = i
			}
		}
		if diff < 0 {
			t.Fatalf("burst (k=%d, pos=%d) flipped nothing", k, pos)
		}
		mask := m.ram[diff] ^ before[diff]
		if bits.OnesCount8(mask) != k {
			t.Fatalf("burst (k=%d, pos=%d) mask %08b has %d bits", k, pos, mask, bits.OnesCount8(mask))
		}
		run := mask >> bits.TrailingZeros8(mask)
		if run != byte(1<<k-1) {
			t.Fatalf("burst (k=%d, pos=%d) mask %08b is not adjacent", k, pos, mask)
		}
		p := BurstPositions(k)
		if wantByte, wantShift := pos/p, int(pos%p); uint64(diff) != wantByte || bits.TrailingZeros8(mask) != wantShift {
			t.Fatalf("burst (k=%d, pos=%d) decoded to (byte %d, shift %d), want (%d, %d)",
				k, pos, diff, bits.TrailingZeros8(mask), wantByte, wantShift)
		}
		if err := m.FlipBurst(k, pos); err != nil {
			t.Fatalf("re-injecting accepted burst (k=%d, pos=%d): %v", k, pos, err)
		}
		if !bytes.Equal(m.ram, before) {
			t.Fatalf("burst (k=%d, pos=%d) is not an involution", k, pos)
		}
	})
}
