package machine

import (
	"testing"

	"faultspace/internal/isa"
)

// timerProg builds: main increments r1 forever; handler increments r2 and
// returns.
func timerProg() []isa.Instruction {
	return []isa.Instruction{
		{Op: isa.OpAddi, Rd: 1, Rs: 1, Imm: 1}, // 0: main loop
		{Op: isa.OpJmp, Imm: 0},                // 1
		{Op: isa.OpAddi, Rd: 2, Rs: 2, Imm: 1}, // 2: handler
		{Op: isa.OpSret},                       // 3
	}
}

func TestTimerFiresPeriodically(t *testing.T) {
	m, err := New(Config{RAMSize: 4, TimerPeriod: 10, TimerVector: 2}, timerProg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100)
	// The period counts cycles outside the handler, and each activation
	// consumes 2 cycles: one activation per 12 cycles, ~8 in 100.
	if m.Reg(2) < 7 || m.Reg(2) > 9 {
		t.Errorf("handler ran %d times in 100 cycles, want ~8", m.Reg(2))
	}
	if m.Reg(1) == 0 {
		t.Error("main loop never ran")
	}
}

func TestTimerMaskedDuringHandler(t *testing.T) {
	// Handler longer than the period: ticks must coalesce, not nest.
	prog := []isa.Instruction{
		{Op: isa.OpJmp, Imm: 0},                // 0: main spins
		{Op: isa.OpAddi, Rd: 2, Rs: 2, Imm: 1}, // 1: handler entry
		{Op: isa.OpNop},                        // 2..6: handler body longer than period
		{Op: isa.OpNop},
		{Op: isa.OpNop},
		{Op: isa.OpNop},
		{Op: isa.OpSret}, // 6
	}
	m, err := New(Config{RAMSize: 4, TimerPeriod: 3, TimerVector: 1}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(60)
	// Handler takes 6 cycles, period 3 (counted outside the handler):
	// one activation per 9 cycles, so ~6 in 60 — and crucially exactly one
	// r2 increment per activation (no nesting, no starvation).
	if m.Reg(2) < 5 || m.Reg(2) > 8 {
		t.Errorf("handler activations = %d, want ~6", m.Reg(2))
	}
}

func TestSretOutsideHandlerIsIllegal(t *testing.T) {
	m, err := New(Config{RAMSize: 4}, []isa.Instruction{{Op: isa.OpSret}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := m.Run(5); st != StatusExcepted || m.Exception() != ExcIllegalOp {
		t.Errorf("sret outside handler: status=%v exc=%v", st, m.Exception())
	}
}

func TestSretResumesExactPC(t *testing.T) {
	prog := []isa.Instruction{
		{Op: isa.OpNop},                // 0
		{Op: isa.OpNop},                // 1
		{Op: isa.OpLi, Rd: 1, Imm: 42}, // 2: resumed here after handler
		{Op: isa.OpHalt},               // 3
		{Op: isa.OpLi, Rd: 2, Imm: 7},  // 4: handler
		{Op: isa.OpSret},               // 5
	}
	m, err := New(Config{RAMSize: 4, TimerPeriod: 2, TimerVector: 4}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := m.Run(20); st != StatusHalted {
		t.Fatalf("status %v", st)
	}
	if m.Reg(1) != 42 || m.Reg(2) != 7 {
		t.Errorf("r1=%d r2=%d, want 42/7", m.Reg(1), m.Reg(2))
	}
	// nop, nop, [irq] li r2, sret, li r1, halt = 6 cycles.
	if m.Cycles() != 6 {
		t.Errorf("cycles = %d, want 6", m.Cycles())
	}
}

func TestTimerVectorValidation(t *testing.T) {
	if _, err := New(Config{RAMSize: 4, TimerPeriod: 5, TimerVector: 10},
		[]isa.Instruction{{Op: isa.OpHalt}}, nil); err == nil {
		t.Error("out-of-range timer vector must be rejected")
	}
}

func TestTimerSnapshotRestore(t *testing.T) {
	m, err := New(Config{RAMSize: 4, TimerPeriod: 10, TimerVector: 2}, timerProg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(15) // inside or past the first handler activation
	snap := m.Snapshot()
	m.Run(50)
	wantR2, wantCycles := m.Reg(2), m.Cycles()

	m2, err := New(Config{RAMSize: 4, TimerPeriod: 10, TimerVector: 2}, timerProg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m2.Restore(snap)
	m2.Run(50)
	if m2.Reg(2) != wantR2 || m2.Cycles() != wantCycles {
		t.Errorf("restored run diverged: r2=%d/%d cycles=%d/%d",
			m2.Reg(2), wantR2, m2.Cycles(), wantCycles)
	}
}

func TestTimerDisabledByDefault(t *testing.T) {
	m, err := New(Config{RAMSize: 4}, []isa.Instruction{
		{Op: isa.OpNop},
		{Op: isa.OpJmp, Imm: 0},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100)
	if m.InIRQ() {
		t.Error("no timer configured, but machine entered IRQ state")
	}
}
