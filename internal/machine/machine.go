// Package machine implements the deterministic fav32 simulator used as the
// fault-injection vehicle.
//
// The machine follows the model of Schirmeier et al. (DSN 2015), §II-C:
//
//   - a simple RISC CPU with classic in-order execution,
//   - no caches on the way to a wait-free main memory,
//   - a timing of exactly one cycle per CPU instruction,
//   - programs executed from read-only memory that is immune to faults.
//
// Benchmark runs are deterministic: the same program with an identical start
// configuration leads to an exactly identical run. The machine can be paused
// between any two instructions (e.g. to inject a fault by flipping a memory
// bit) and resumed afterwards, and its full state can be snapshotted and
// restored, which the campaign engine uses to accelerate fault-space scans.
//
// Cycle numbering: the first executed instruction retires at cycle 1. A
// fault-injection slot t ∈ [1, Δt] denotes the instant after instruction
// t−1 retired and before instruction t executes; in simulator terms, flip
// the bit when Cycles() == t−1.
package machine

import (
	"errors"
	"fmt"

	"faultspace/internal/isa"
)

// Memory-mapped I/O port addresses. Ports live above RAM and are not part
// of the fault space. Only stores are allowed; loading from a port raises
// a memory exception (wild reads should be caught, not masked).
const (
	// MMIOBase is the lowest port address; RAM must end at or below it.
	MMIOBase uint32 = 0x0001_0000

	// PortSerial emits the low byte of the stored value on the serial
	// interface. The serial output is the program's observable behavior.
	PortSerial = MMIOBase + 0x0

	// PortDetect signals that a fault-tolerance mechanism detected an
	// error. Stores increment a counter but have no other effect.
	PortDetect = MMIOBase + 0x4

	// PortCorrect signals that a detected error was corrected.
	PortCorrect = MMIOBase + 0x8

	// PortAbort terminates the run: a fault-tolerance mechanism detected
	// an unrecoverable error and shut the system down.
	PortAbort = MMIOBase + 0xc
)

// Status is the execution state of the machine.
type Status uint8

// Machine statuses.
const (
	StatusRunning  Status = iota + 1 // can execute further instructions
	StatusHalted                     // executed OpHalt; normal termination
	StatusExcepted                   // raised a CPU exception
	StatusAborted                    // program stored to PortAbort
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusHalted:
		return "halted"
	case StatusExcepted:
		return "excepted"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Exception identifies the cause of a CPU exception.
type Exception uint8

// Exception causes.
const (
	ExcNone        Exception = iota // no exception
	ExcBadPC                        // program counter outside ROM
	ExcIllegalOp                    // invalid operation code
	ExcMemRange                     // memory access outside RAM and ports
	ExcMisaligned                   // unaligned word access
	ExcPortLoad                     // load from an MMIO port
	ExcSerialLimit                  // serial output exceeded the configured cap
)

// String returns a human-readable exception name.
func (e Exception) String() string {
	switch e {
	case ExcNone:
		return "none"
	case ExcBadPC:
		return "bad-pc"
	case ExcIllegalOp:
		return "illegal-op"
	case ExcMemRange:
		return "mem-range"
	case ExcMisaligned:
		return "misaligned"
	case ExcPortLoad:
		return "port-load"
	case ExcSerialLimit:
		return "serial-limit"
	default:
		return fmt.Sprintf("exception(%d)", uint8(e))
	}
}

// AccessKind distinguishes memory reads from writes in trace hooks.
type AccessKind uint8

// Access kinds.
const (
	AccessRead AccessKind = iota + 1
	AccessWrite
)

// MemHook observes RAM accesses. cycle is the cycle number of the accessing
// instruction; addr/size describe the accessed byte range. Hooks are only
// invoked for RAM (never for MMIO ports), because only RAM is part of the
// fault space.
type MemHook func(cycle uint64, addr uint32, size uint8, kind AccessKind)

// ExecHook observes instruction execution: it fires before the instruction
// at pc executes its effects, with cycle being the cycle the instruction
// will retire at. Used by the tracer to derive register def/use
// information for the §VI-B register fault-space generalization.
type ExecHook func(cycle uint64, pc uint32, ins isa.Instruction)

// Config parameterizes a machine.
type Config struct {
	// RAMSize is the main-memory size in bytes: positive and at most
	// MMIOBase. Word accesses require 4 in-range bytes; tiny RAMs (like
	// the 2-byte "Hi" benchmark) simply cannot use word operations.
	RAMSize int

	// MaxSerial caps the serial output length; a run that exceeds it
	// raises ExcSerialLimit. This bounds memory use of runs that go wild
	// after a fault. 0 means DefaultMaxSerial.
	MaxSerial int

	// TimerPeriod enables the deterministic timer: every TimerPeriod
	// retired cycles an interrupt fires (unless one is already being
	// handled), saving the PC and vectoring to TimerVector. 0 disables
	// the timer. Because the period is counted in retired cycles, timer
	// events replay at exactly the same point in every run — the
	// deterministic external events of the paper's machine model (§II-C).
	TimerPeriod uint64

	// TimerVector is the instruction index of the interrupt handler.
	TimerVector uint32
}

// DefaultMaxSerial is the serial output cap used when Config.MaxSerial is 0.
const DefaultMaxSerial = 1 << 16

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.RAMSize <= 0 {
		return fmt.Errorf("machine: RAMSize %d must be positive", c.RAMSize)
	}
	if uint32(c.RAMSize) > MMIOBase {
		return fmt.Errorf("machine: RAMSize %d overlaps MMIO at %#x", c.RAMSize, MMIOBase)
	}
	if c.MaxSerial < 0 {
		return fmt.Errorf("machine: MaxSerial %d must be non-negative", c.MaxSerial)
	}
	return nil
}

// ErrNotRunning is returned by Step when the machine has terminated.
var ErrNotRunning = errors.New("machine: not running")

// Machine is one fav32 simulator instance. It is not safe for concurrent
// use; campaigns use one Machine per worker.
type Machine struct {
	cfg       Config
	rom       []isa.Instruction
	ram       []byte
	regs      [isa.NumRegs]uint32
	pc        uint32
	cycles    uint64
	status    Status
	exc       Exception
	serial    []byte
	maxSerial int
	detects   uint64
	corrects  uint64
	hook      MemHook
	execHook  ExecHook

	// dirty tracks RAM pages written since the last resetDirty, as a
	// bitset over PageSize-byte pages. Ladder rung capture and Cursor
	// restore use it to touch only mutated pages (see ladder.go).
	dirty []uint64

	// Timer-interrupt state.
	inIRQ   bool
	savedPC uint32
	fireAt  uint64 // cycle count at which the next timer interrupt fires

	// skipNext, when set, makes the next Step retire without executing
	// its instruction: the instruction-skip fault model (FlipSkip). The
	// flag is one-shot and always consumed before the machine reaches a
	// rung boundary, memo probe or loop probe, so it is deliberately
	// excluded from HashExecState, StateMatches and the loop detector's
	// recurrence state.
	skipNext bool

	// codeLen is the program length in instructions; pc ∈ [0, codeLen)
	// is executable. For Harvard machines it equals len(rom).
	codeLen uint32
	// Von Neumann mode (NewVonNeumann): the program is fetched by
	// decoding RAM at codeBase instead of from the fault-immune ROM.
	vn       bool
	codeBase uint32
	// pre is the pre-decoded instruction stream (nil unless enabled via
	// SetPredecode); see predecode.go.
	pre *preProg
}

// New creates a machine executing prog with RAM initialized from image
// (padded with zero bytes). The ROM is shared, not copied: callers must not
// mutate prog afterwards — the fault model keeps ROM immune to faults.
func New(cfg Config, prog []isa.Instruction, image []byte) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(prog) == 0 {
		return nil, errors.New("machine: empty program")
	}
	if len(image) > cfg.RAMSize {
		return nil, fmt.Errorf("machine: image size %d exceeds RAM size %d", len(image), cfg.RAMSize)
	}
	maxSerial := cfg.MaxSerial
	if maxSerial == 0 {
		maxSerial = DefaultMaxSerial
	}
	if cfg.TimerPeriod > 0 && cfg.TimerVector >= uint32(len(prog)) {
		return nil, fmt.Errorf("machine: timer vector %d outside program of %d instructions",
			cfg.TimerVector, len(prog))
	}
	m := &Machine{
		cfg:       cfg,
		rom:       prog,
		ram:       make([]byte, cfg.RAMSize),
		status:    StatusRunning,
		maxSerial: maxSerial,
		fireAt:    cfg.TimerPeriod,
		dirty:     make([]uint64, (numPages(cfg.RAMSize)+63)/64),
		codeLen:   uint32(len(prog)),
	}
	copy(m.ram, image)
	return m, nil
}

// InIRQ reports whether the machine is currently executing a timer
// interrupt handler.
func (m *Machine) InIRQ() bool { return m.inIRQ }

// SetMemHook installs a RAM access observer (nil to remove).
func (m *Machine) SetMemHook(h MemHook) { m.hook = h }

// SetExecHook installs an instruction-execution observer (nil to remove).
func (m *Machine) SetExecHook(h ExecHook) { m.execHook = h }

// Status returns the current execution status.
func (m *Machine) Status() Status { return m.status }

// Exception returns the exception cause (ExcNone unless StatusExcepted).
func (m *Machine) Exception() Exception { return m.exc }

// Cycles returns the number of retired instructions.
func (m *Machine) Cycles() uint64 { return m.cycles }

// PC returns the current program counter (an instruction index).
func (m *Machine) PC() uint32 { return m.pc }

// Reg returns the value of register i.
func (m *Machine) Reg(i int) uint32 { return m.regs[i] }

// SetReg sets register i (writes to r0 are ignored, as in execution).
func (m *Machine) SetReg(i int, v uint32) {
	if i != isa.RegZero {
		m.regs[i] = v
	}
}

// Serial returns a copy of the serial output produced so far.
func (m *Machine) Serial() []byte {
	out := make([]byte, len(m.serial))
	copy(out, m.serial)
	return out
}

// DetectCount returns the number of stores to PortDetect.
func (m *Machine) DetectCount() uint64 { return m.detects }

// CorrectCount returns the number of stores to PortCorrect.
func (m *Machine) CorrectCount() uint64 { return m.corrects }

// RAMSize returns the main-memory size in bytes.
func (m *Machine) RAMSize() int { return len(m.ram) }

// RAMBits returns the fault-space memory dimension Δm in bits.
func (m *Machine) RAMBits() uint64 { return uint64(len(m.ram)) * 8 }

// ReadRAM copies n bytes of RAM starting at addr, for inspection in tests
// and tools. It does not invoke the memory hook.
func (m *Machine) ReadRAM(addr uint32, n int) ([]byte, error) {
	if int(addr)+n > len(m.ram) {
		return nil, fmt.Errorf("machine: ReadRAM [%#x, %#x) outside RAM", addr, int(addr)+n)
	}
	out := make([]byte, n)
	copy(out, m.ram[addr:])
	return out, nil
}

// FlipBit injects a transient single-bit fault: it flips RAM bit `bit`,
// where bit/8 selects the byte and bit%8 the bit within the byte.
func (m *Machine) FlipBit(bit uint64) error {
	if bit >= m.RAMBits() {
		return fmt.Errorf("machine: bit %d outside RAM (%d bits)", bit, m.RAMBits())
	}
	m.ram[bit/8] ^= 1 << (bit % 8)
	m.markDirty(uint32(bit / 8))
	if m.vn {
		m.invalidateCode(uint32(bit/8), 1)
	}
	return nil
}

// RegSpaceBits is the size of the register fault space: the 15 writable
// general-purpose registers (r0 is hardwired zero and immune) times 32
// bits, in the layout used by FlipRegBit.
const RegSpaceBits = (isa.NumRegs - 1) * 32

// FlipRegBit injects a transient single-bit fault into the register file
// (the §VI-B generalization of the fault model). Bit layout: bit/32 + 1
// selects the register (r1..r15), bit%32 the bit within it.
func (m *Machine) FlipRegBit(bit uint64) error {
	if bit >= RegSpaceBits {
		return fmt.Errorf("machine: bit %d outside register space (%d bits)", bit, RegSpaceBits)
	}
	reg := bit/32 + 1
	m.regs[reg] ^= 1 << (bit % 32)
	return nil
}

// FlipSkip injects an instruction-skip fault: the next dynamic instruction
// is not executed. The machine still spends the cycle (the pipeline
// bubbles through) and the program counter falls through to the next
// instruction, but the skipped instruction has no architectural effect —
// the ARMORY-style fault model for clock/voltage glitch attacks.
func (m *Machine) FlipSkip() { m.skipNext = true }

// PCBits is the size of the PC-corruption fault space per injection slot:
// the program counter is a 32-bit register.
const PCBits = 32

// FlipPCBit injects a transient single-bit fault into the program counter:
// the next fetch happens from the corrupted address. Faults that leave the
// PC outside the program raise ExcBadPC on the next Step, exactly like a
// wild indirect jump.
func (m *Machine) FlipPCBit(bit uint64) error {
	if bit >= PCBits {
		return fmt.Errorf("machine: bit %d outside PC (%d bits)", bit, PCBits)
	}
	m.pc ^= 1 << bit
	return nil
}

// BurstPositions returns the number of distinct k-bit burst positions per
// RAM byte: a burst of k adjacent bits fits at offsets 0..8−k within the
// byte, so there are 9−k positions.
func BurstPositions(k int) uint64 { return uint64(9 - k) }

// FlipBurst injects a multi-bit burst fault: k adjacent bits flipped in
// one RAM byte. pos encodes (byte, offset) as byte*(9−k)+offset; the
// flipped mask is ((1<<k)−1)<<offset. k must be in [1, 8].
func (m *Machine) FlipBurst(k int, pos uint64) error {
	if k < 1 || k > 8 {
		return fmt.Errorf("machine: burst width %d outside [1, 8]", k)
	}
	p := BurstPositions(k)
	b := pos / p
	if b >= uint64(len(m.ram)) {
		return fmt.Errorf("machine: burst position %d outside RAM (%d bytes × %d positions)",
			pos, len(m.ram), p)
	}
	m.ram[b] ^= byte((1<<k - 1) << (pos % p))
	m.markDirty(uint32(b))
	if m.vn {
		m.invalidateCode(uint32(b), 1)
	}
	return nil
}

// Step executes one instruction. It returns the machine status after the
// instruction retired, or ErrNotRunning if the machine already terminated.
func (m *Machine) Step() (Status, error) {
	if m.status != StatusRunning {
		return m.status, ErrNotRunning
	}
	// Timer interrupt: fires at the instruction boundary once the retired-
	// cycle count reaches fireAt, unless a handler is already running.
	// The timer is re-armed when the handler returns (see OpSret), so the
	// period counts cycles outside the handler and a handler longer than
	// the period cannot starve the interrupted program.
	if m.cfg.TimerPeriod > 0 && !m.inIRQ && m.cycles >= m.fireAt {
		m.savedPC = m.pc
		m.pc = m.cfg.TimerVector
		m.inIRQ = true
	}
	if m.pc >= m.codeLen {
		return m.raise(ExcBadPC), nil
	}
	if m.skipNext {
		// Instruction-skip fault: the instruction at pc is fetched but not
		// executed. The cycle is still spent and the PC falls through, so
		// cycle accounting stays monotonic and the timer stays in phase.
		m.skipNext = false
		m.cycles++
		m.pc++
		return m.status, nil
	}
	var ins isa.Instruction
	if m.vn {
		var exc Exception
		if ins, exc = m.vnDecode(m.pc); exc != ExcNone {
			return m.raise(exc), nil
		}
	} else {
		ins = m.rom[m.pc]
	}
	cycle := m.cycles + 1
	nextPC := m.pc + 1
	if m.execHook != nil {
		m.execHook(cycle, m.pc, ins)
	}

	switch ins.Op {
	case isa.OpNop:
		// nothing
	case isa.OpHalt:
		m.status = StatusHalted
	case isa.OpLi:
		m.setReg(ins.Rd, uint32(ins.Imm))
	case isa.OpMov:
		m.setReg(ins.Rd, m.regs[ins.Rs])

	case isa.OpAdd:
		m.setReg(ins.Rd, m.regs[ins.Rs]+m.regs[ins.Rt])
	case isa.OpSub:
		m.setReg(ins.Rd, m.regs[ins.Rs]-m.regs[ins.Rt])
	case isa.OpAnd:
		m.setReg(ins.Rd, m.regs[ins.Rs]&m.regs[ins.Rt])
	case isa.OpOr:
		m.setReg(ins.Rd, m.regs[ins.Rs]|m.regs[ins.Rt])
	case isa.OpXor:
		m.setReg(ins.Rd, m.regs[ins.Rs]^m.regs[ins.Rt])
	case isa.OpShl:
		m.setReg(ins.Rd, m.regs[ins.Rs]<<(m.regs[ins.Rt]&31))
	case isa.OpShr:
		m.setReg(ins.Rd, m.regs[ins.Rs]>>(m.regs[ins.Rt]&31))
	case isa.OpSar:
		m.setReg(ins.Rd, uint32(int32(m.regs[ins.Rs])>>(m.regs[ins.Rt]&31)))
	case isa.OpMul:
		m.setReg(ins.Rd, m.regs[ins.Rs]*m.regs[ins.Rt])
	case isa.OpSlt:
		m.setReg(ins.Rd, boolToReg(int32(m.regs[ins.Rs]) < int32(m.regs[ins.Rt])))
	case isa.OpSltu:
		m.setReg(ins.Rd, boolToReg(m.regs[ins.Rs] < m.regs[ins.Rt]))

	case isa.OpAddi:
		m.setReg(ins.Rd, m.regs[ins.Rs]+uint32(ins.Imm))
	case isa.OpAndi:
		m.setReg(ins.Rd, m.regs[ins.Rs]&uint32(ins.Imm))
	case isa.OpOri:
		m.setReg(ins.Rd, m.regs[ins.Rs]|uint32(ins.Imm))
	case isa.OpXori:
		m.setReg(ins.Rd, m.regs[ins.Rs]^uint32(ins.Imm))
	case isa.OpShli:
		m.setReg(ins.Rd, m.regs[ins.Rs]<<(uint32(ins.Imm)&31))
	case isa.OpShri:
		m.setReg(ins.Rd, m.regs[ins.Rs]>>(uint32(ins.Imm)&31))
	case isa.OpSlti:
		m.setReg(ins.Rd, boolToReg(int32(m.regs[ins.Rs]) < ins.Imm))

	case isa.OpLw:
		v, exc := m.loadWord(cycle, m.regs[ins.Rs]+uint32(ins.Imm))
		if exc != ExcNone {
			return m.raise(exc), nil
		}
		m.setReg(ins.Rd, v)
	case isa.OpLb:
		v, exc := m.loadByte(cycle, m.regs[ins.Rs]+uint32(ins.Imm))
		if exc != ExcNone {
			return m.raise(exc), nil
		}
		m.setReg(ins.Rd, uint32(v))
	case isa.OpSw:
		if exc := m.storeWord(cycle, m.regs[ins.Rs]+uint32(ins.Imm), m.regs[ins.Rt]); exc != ExcNone {
			return m.raise(exc), nil
		}
	case isa.OpSb:
		if exc := m.storeByte(cycle, m.regs[ins.Rs]+uint32(ins.Imm), byte(m.regs[ins.Rt])); exc != ExcNone {
			return m.raise(exc), nil
		}
	case isa.OpSwi:
		if exc := m.storeWord(cycle, m.regs[ins.Rs]+uint32(ins.Imm), uint32(ins.Imm2)); exc != ExcNone {
			return m.raise(exc), nil
		}
	case isa.OpSbi:
		if exc := m.storeByte(cycle, m.regs[ins.Rs]+uint32(ins.Imm), byte(ins.Imm2)); exc != ExcNone {
			return m.raise(exc), nil
		}

	case isa.OpBeq:
		if m.regs[ins.Rs] == m.regs[ins.Rt] {
			nextPC = uint32(ins.Imm)
		}
	case isa.OpBne:
		if m.regs[ins.Rs] != m.regs[ins.Rt] {
			nextPC = uint32(ins.Imm)
		}
	case isa.OpBlt:
		if int32(m.regs[ins.Rs]) < int32(m.regs[ins.Rt]) {
			nextPC = uint32(ins.Imm)
		}
	case isa.OpBge:
		if int32(m.regs[ins.Rs]) >= int32(m.regs[ins.Rt]) {
			nextPC = uint32(ins.Imm)
		}
	case isa.OpBltu:
		if m.regs[ins.Rs] < m.regs[ins.Rt] {
			nextPC = uint32(ins.Imm)
		}
	case isa.OpBgeu:
		if m.regs[ins.Rs] >= m.regs[ins.Rt] {
			nextPC = uint32(ins.Imm)
		}
	case isa.OpJmp:
		nextPC = uint32(ins.Imm)
	case isa.OpJal:
		m.setReg(isa.RegLR, m.pc+1)
		nextPC = uint32(ins.Imm)
	case isa.OpJr:
		nextPC = m.regs[ins.Rs]
	case isa.OpJalr:
		m.setReg(ins.Rd, m.pc+1)
		nextPC = m.regs[ins.Rs]
	case isa.OpSret:
		if !m.inIRQ {
			return m.raise(ExcIllegalOp), nil
		}
		m.inIRQ = false
		m.fireAt = cycle + m.cfg.TimerPeriod
		nextPC = m.savedPC
	case isa.OpRdspc:
		if !m.inIRQ {
			return m.raise(ExcIllegalOp), nil
		}
		m.setReg(ins.Rd, m.savedPC)
	case isa.OpWrspc:
		if !m.inIRQ {
			return m.raise(ExcIllegalOp), nil
		}
		m.savedPC = m.regs[ins.Rs]

	default:
		return m.raise(ExcIllegalOp), nil
	}

	m.cycles = cycle
	if m.status == StatusRunning || m.status == StatusHalted || m.status == StatusAborted {
		m.pc = nextPC
	}
	return m.status, nil
}

// Run executes instructions until the machine terminates or maxCycles
// instructions have retired in total (i.e. Cycles() reaches maxCycles).
// It returns the resulting status; StatusRunning means the cycle budget
// was exhausted.
func (m *Machine) Run(maxCycles uint64) Status {
	// A pending instruction-skip fault is consumed by one plain Step
	// before entering any fast path: the pre-decoded chunk loop does not
	// model the skip flag (it can only ever be set at an injection
	// boundary, never mid-run).
	if m.skipNext && m.status == StatusRunning && m.cycles < maxCycles {
		if _, err := m.Step(); err != nil {
			return m.status
		}
	}
	// The pre-decoded fast path replicates the Step loop bit for bit but
	// cannot invoke hooks; fall back to plain stepping while any are
	// installed (see predecode.go).
	if m.pre != nil && m.hook == nil && m.execHook == nil {
		return m.runPre(maxCycles)
	}
	for m.status == StatusRunning && m.cycles < maxCycles {
		if _, err := m.Step(); err != nil {
			break
		}
	}
	return m.status
}

func (m *Machine) raise(exc Exception) Status {
	m.status = StatusExcepted
	m.exc = exc
	// The faulting instruction still consumes its cycle: the machine was
	// busy for it. This keeps cycle accounting monotonic for traces.
	m.cycles++
	return m.status
}

func (m *Machine) setReg(rd uint8, v uint32) {
	if rd != isa.RegZero {
		m.regs[rd] = v
	}
}

func boolToReg(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func (m *Machine) loadWord(cycle uint64, addr uint32) (uint32, Exception) {
	if addr%4 != 0 {
		return 0, ExcMisaligned
	}
	if int(addr)+4 <= len(m.ram) {
		if m.hook != nil {
			m.hook(cycle, addr, 4, AccessRead)
		}
		return uint32(m.ram[addr]) |
			uint32(m.ram[addr+1])<<8 |
			uint32(m.ram[addr+2])<<16 |
			uint32(m.ram[addr+3])<<24, ExcNone
	}
	if addr >= MMIOBase {
		return 0, ExcPortLoad
	}
	return 0, ExcMemRange
}

func (m *Machine) loadByte(cycle uint64, addr uint32) (byte, Exception) {
	if int(addr) < len(m.ram) {
		if m.hook != nil {
			m.hook(cycle, addr, 1, AccessRead)
		}
		return m.ram[addr], ExcNone
	}
	if addr >= MMIOBase {
		return 0, ExcPortLoad
	}
	return 0, ExcMemRange
}

func (m *Machine) storeWord(cycle uint64, addr uint32, v uint32) Exception {
	if addr%4 != 0 {
		return ExcMisaligned
	}
	if int(addr)+4 <= len(m.ram) {
		if m.hook != nil {
			m.hook(cycle, addr, 4, AccessWrite)
		}
		m.ram[addr] = byte(v)
		m.ram[addr+1] = byte(v >> 8)
		m.ram[addr+2] = byte(v >> 16)
		m.ram[addr+3] = byte(v >> 24)
		// PageSize is a multiple of 4 and the access is aligned, so the
		// word lies within one page.
		m.markDirty(addr)
		if m.vn {
			m.invalidateCode(addr, 4)
		}
		return ExcNone
	}
	if addr >= MMIOBase {
		return m.storePort(addr, v)
	}
	return ExcMemRange
}

func (m *Machine) storeByte(cycle uint64, addr uint32, v byte) Exception {
	if int(addr) < len(m.ram) {
		if m.hook != nil {
			m.hook(cycle, addr, 1, AccessWrite)
		}
		m.ram[addr] = v
		m.markDirty(addr)
		if m.vn {
			m.invalidateCode(addr, 1)
		}
		return ExcNone
	}
	if addr >= MMIOBase {
		return m.storePort(addr&^3, uint32(v))
	}
	return ExcMemRange
}

func (m *Machine) storePort(addr uint32, v uint32) Exception {
	switch addr {
	case PortSerial:
		if len(m.serial) >= m.maxSerial {
			return ExcSerialLimit
		}
		m.serial = append(m.serial, byte(v))
	case PortDetect:
		m.detects++
	case PortCorrect:
		m.corrects++
	case PortAbort:
		m.status = StatusAborted
	default:
		return ExcMemRange
	}
	return ExcNone
}
