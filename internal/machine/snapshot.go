package machine

// Snapshot is a full copy of the mutable machine state. Snapshots let the
// campaign engine fork a run at an injection slot instead of re-executing
// the prefix from the reset state for every experiment.
type Snapshot struct {
	ram      []byte
	regs     [16]uint32
	pc       uint32
	cycles   uint64
	status   Status
	exc      Exception
	serial   []byte
	detects  uint64
	corrects uint64
	inIRQ    bool
	savedPC  uint32
	fireAt   uint64
	skipNext bool
}

// Snapshot captures the current machine state.
func (m *Machine) Snapshot() *Snapshot {
	s := &Snapshot{
		ram:      make([]byte, len(m.ram)),
		regs:     m.regs,
		pc:       m.pc,
		cycles:   m.cycles,
		status:   m.status,
		exc:      m.exc,
		serial:   make([]byte, len(m.serial)),
		detects:  m.detects,
		corrects: m.corrects,
		inIRQ:    m.inIRQ,
		savedPC:  m.savedPC,
		fireAt:   m.fireAt,
		skipNext: m.skipNext,
	}
	copy(s.ram, m.ram)
	copy(s.serial, m.serial)
	return s
}

// Restore resets the machine state to the snapshot. The snapshot must have
// been taken from a machine with the same configuration and program.
func (m *Machine) Restore(s *Snapshot) {
	if len(m.ram) != len(s.ram) {
		// Configuration mismatch is a programming error in the caller;
		// fail loudly instead of corrupting state.
		panic("machine: Restore with mismatched RAM size")
	}
	copy(m.ram, s.ram)
	// A full restore rewrites all of RAM; conservatively mark every page
	// dirty so any Cursor attached to this machine stays correct, and
	// drop any cached code lowerings on von Neumann machines.
	m.markAllDirty()
	if m.vn {
		m.invalidateAllCode()
	}
	m.regs = s.regs
	m.pc = s.pc
	m.cycles = s.cycles
	m.status = s.status
	m.exc = s.exc
	m.serial = m.serial[:0]
	m.serial = append(m.serial, s.serial...)
	m.detects = s.detects
	m.corrects = s.corrects
	m.inIRQ = s.inIRQ
	m.savedPC = s.savedPC
	m.fireAt = s.fireAt
	m.skipNext = s.skipNext
}

// Clone creates an independent machine sharing the (immutable) ROM but with
// a copied mutable state.
func (m *Machine) Clone() *Machine {
	c := &Machine{
		cfg:       m.cfg,
		rom:       m.rom,
		ram:       make([]byte, len(m.ram)),
		regs:      m.regs,
		pc:        m.pc,
		cycles:    m.cycles,
		status:    m.status,
		exc:       m.exc,
		serial:    make([]byte, len(m.serial)),
		maxSerial: m.maxSerial,
		detects:   m.detects,
		corrects:  m.corrects,
		inIRQ:     m.inIRQ,
		savedPC:   m.savedPC,
		fireAt:    m.fireAt,
		skipNext:  m.skipNext,
		dirty:     make([]uint64, len(m.dirty)),
		codeLen:   m.codeLen,
		vn:        m.vn,
		codeBase:  m.codeBase,
	}
	copy(c.ram, m.ram)
	copy(c.serial, m.serial)
	// The clone has no delta-snapshot history; mark all pages dirty so a
	// future Cursor on it never assumes a shared baseline.
	c.markAllDirty()
	// The predecode cache is derived state; rebuild it from the clone's
	// own RAM/ROM rather than aliasing the source machine's.
	if m.pre != nil {
		c.SetPredecode(true)
	}
	return c
}
