package machine

import (
	"bytes"
	"testing"

	"faultspace/internal/isa"
)

func newTestMachine(t *testing.T, ramSize int, prog []isa.Instruction, image []byte) *Machine {
	t.Helper()
	m, err := New(Config{RAMSize: ramSize}, prog, image)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runALU executes a single ALU-style instruction with pre-set registers and
// returns the destination register value.
func runALU(t *testing.T, ins isa.Instruction, set map[int]uint32) uint32 {
	t.Helper()
	m := newTestMachine(t, 16, []isa.Instruction{ins, {Op: isa.OpHalt}}, nil)
	for r, v := range set {
		m.SetReg(r, v)
	}
	if st, err := m.Step(); err != nil || st != StatusRunning {
		t.Fatalf("step: status=%v err=%v", st, err)
	}
	return m.Reg(int(ins.Rd))
}

func TestALUSemantics(t *testing.T) {
	tests := []struct {
		name string
		ins  isa.Instruction
		set  map[int]uint32
		want uint32
	}{
		{"li", isa.Instruction{Op: isa.OpLi, Rd: 1, Imm: -2}, nil, 0xfffffffe},
		{"mov", isa.Instruction{Op: isa.OpMov, Rd: 1, Rs: 2}, map[int]uint32{2: 77}, 77},
		{"add", isa.Instruction{Op: isa.OpAdd, Rd: 1, Rs: 2, Rt: 3}, map[int]uint32{2: 3, 3: 4}, 7},
		{"add-wrap", isa.Instruction{Op: isa.OpAdd, Rd: 1, Rs: 2, Rt: 3}, map[int]uint32{2: 0xffffffff, 3: 2}, 1},
		{"sub", isa.Instruction{Op: isa.OpSub, Rd: 1, Rs: 2, Rt: 3}, map[int]uint32{2: 3, 3: 5}, 0xfffffffe},
		{"and", isa.Instruction{Op: isa.OpAnd, Rd: 1, Rs: 2, Rt: 3}, map[int]uint32{2: 0b1100, 3: 0b1010}, 0b1000},
		{"or", isa.Instruction{Op: isa.OpOr, Rd: 1, Rs: 2, Rt: 3}, map[int]uint32{2: 0b1100, 3: 0b1010}, 0b1110},
		{"xor", isa.Instruction{Op: isa.OpXor, Rd: 1, Rs: 2, Rt: 3}, map[int]uint32{2: 0b1100, 3: 0b1010}, 0b0110},
		{"shl", isa.Instruction{Op: isa.OpShl, Rd: 1, Rs: 2, Rt: 3}, map[int]uint32{2: 1, 3: 4}, 16},
		{"shl-mask", isa.Instruction{Op: isa.OpShl, Rd: 1, Rs: 2, Rt: 3}, map[int]uint32{2: 1, 3: 33}, 2},
		{"shr", isa.Instruction{Op: isa.OpShr, Rd: 1, Rs: 2, Rt: 3}, map[int]uint32{2: 0x80000000, 3: 31}, 1},
		{"sar", isa.Instruction{Op: isa.OpSar, Rd: 1, Rs: 2, Rt: 3}, map[int]uint32{2: 0x80000000, 3: 31}, 0xffffffff},
		{"mul", isa.Instruction{Op: isa.OpMul, Rd: 1, Rs: 2, Rt: 3}, map[int]uint32{2: 7, 3: 6}, 42},
		{"slt-true", isa.Instruction{Op: isa.OpSlt, Rd: 1, Rs: 2, Rt: 3}, map[int]uint32{2: 0xffffffff, 3: 0}, 1},
		{"slt-false", isa.Instruction{Op: isa.OpSlt, Rd: 1, Rs: 2, Rt: 3}, map[int]uint32{2: 0, 3: 0xffffffff}, 0},
		{"sltu-true", isa.Instruction{Op: isa.OpSltu, Rd: 1, Rs: 2, Rt: 3}, map[int]uint32{2: 0, 3: 0xffffffff}, 1},
		{"sltu-false", isa.Instruction{Op: isa.OpSltu, Rd: 1, Rs: 2, Rt: 3}, map[int]uint32{2: 0xffffffff, 3: 0}, 0},
		{"addi", isa.Instruction{Op: isa.OpAddi, Rd: 1, Rs: 2, Imm: -1}, map[int]uint32{2: 5}, 4},
		{"andi", isa.Instruction{Op: isa.OpAndi, Rd: 1, Rs: 2, Imm: 7}, map[int]uint32{2: 0xff}, 7},
		{"ori", isa.Instruction{Op: isa.OpOri, Rd: 1, Rs: 2, Imm: 8}, map[int]uint32{2: 3}, 11},
		{"xori-not", isa.Instruction{Op: isa.OpXori, Rd: 1, Rs: 2, Imm: -1}, map[int]uint32{2: 0x0f0f0f0f}, 0xf0f0f0f0},
		{"shli", isa.Instruction{Op: isa.OpShli, Rd: 1, Rs: 2, Imm: 3}, map[int]uint32{2: 2}, 16},
		{"shri", isa.Instruction{Op: isa.OpShri, Rd: 1, Rs: 2, Imm: 4}, map[int]uint32{2: 0x100}, 0x10},
		{"slti", isa.Instruction{Op: isa.OpSlti, Rd: 1, Rs: 2, Imm: 10}, map[int]uint32{2: 9}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := runALU(t, tt.ins, tt.set); got != tt.want {
				t.Errorf("got %#x, want %#x", got, tt.want)
			}
		})
	}
}

func TestR0IsHardwiredZero(t *testing.T) {
	m := newTestMachine(t, 16, []isa.Instruction{
		{Op: isa.OpLi, Rd: 0, Imm: 42},
		{Op: isa.OpHalt},
	}, nil)
	m.Step()
	if m.Reg(0) != 0 {
		t.Errorf("r0 = %d after write, want 0", m.Reg(0))
	}
	m.SetReg(0, 99)
	if m.Reg(0) != 0 {
		t.Error("SetReg must not modify r0")
	}
}

func TestLoadStoreWordAndByte(t *testing.T) {
	m := newTestMachine(t, 16, []isa.Instruction{
		{Op: isa.OpLi, Rd: 1, Imm: -559038737}, // 0xdeadbeef
		{Op: isa.OpSw, Rt: 1, Rs: 0, Imm: 4},
		{Op: isa.OpLw, Rd: 2, Rs: 0, Imm: 4},
		{Op: isa.OpLb, Rd: 3, Rs: 0, Imm: 4},
		{Op: isa.OpLb, Rd: 4, Rs: 0, Imm: 7},
		{Op: isa.OpSb, Rt: 3, Rs: 0, Imm: 0},
		{Op: isa.OpLb, Rd: 5, Rs: 0, Imm: 0},
		{Op: isa.OpHalt},
	}, nil)
	if st := m.Run(100); st != StatusHalted {
		t.Fatalf("status %v (exc %v)", st, m.Exception())
	}
	if m.Reg(2) != 0xdeadbeef {
		t.Errorf("lw: got %#x", m.Reg(2))
	}
	if m.Reg(3) != 0xef { // little-endian low byte
		t.Errorf("lb low byte: got %#x", m.Reg(3))
	}
	if m.Reg(4) != 0xde {
		t.Errorf("lb high byte: got %#x", m.Reg(4))
	}
	if m.Reg(5) != 0xef {
		t.Errorf("sb/lb: got %#x", m.Reg(5))
	}
}

func TestStoreImmediates(t *testing.T) {
	m := newTestMachine(t, 16, []isa.Instruction{
		{Op: isa.OpSwi, Rs: 0, Imm: 0, Imm2: -1},
		{Op: isa.OpSbi, Rs: 0, Imm: 8, Imm2: 72},
		{Op: isa.OpHalt},
	}, nil)
	if st := m.Run(10); st != StatusHalted {
		t.Fatalf("status %v", st)
	}
	ram, _ := m.ReadRAM(0, 9)
	for i := 0; i < 4; i++ {
		if ram[i] != 0xff {
			t.Errorf("swi -1: byte %d = %#x", i, ram[i])
		}
	}
	if ram[8] != 72 {
		t.Errorf("sbi: got %d, want 72", ram[8])
	}
}

func TestBranchesAndJumps(t *testing.T) {
	// Program: r1=1; beq r1,r0 -> skip (not taken); bne r1,r0 -> target.
	m := newTestMachine(t, 16, []isa.Instruction{
		{Op: isa.OpLi, Rd: 1, Imm: 1},
		{Op: isa.OpBeq, Rs: 1, Rt: 0, Imm: 5}, // not taken
		{Op: isa.OpBne, Rs: 1, Rt: 0, Imm: 4}, // taken
		{Op: isa.OpLi, Rd: 2, Imm: 99},        // skipped
		{Op: isa.OpHalt},
		{Op: isa.OpHalt},
	}, nil)
	if st := m.Run(10); st != StatusHalted {
		t.Fatalf("status %v", st)
	}
	if m.Reg(2) == 99 {
		t.Error("bne did not branch")
	}
	if m.Cycles() != 4 {
		t.Errorf("cycles = %d, want 4", m.Cycles())
	}
}

func TestSignedUnsignedBranches(t *testing.T) {
	tests := []struct {
		op       isa.Op
		rs, rt   uint32
		expected bool
	}{
		{isa.OpBlt, 0xffffffff, 0, true},   // -1 < 0 signed
		{isa.OpBltu, 0xffffffff, 0, false}, // max > 0 unsigned
		{isa.OpBge, 0, 0, true},
		{isa.OpBgeu, 0, 1, false},
		{isa.OpBltu, 1, 2, true},
		{isa.OpBge, 0xffffffff, 0, false},
	}
	for _, tt := range tests {
		m := newTestMachine(t, 16, []isa.Instruction{
			{Op: tt.op, Rs: 1, Rt: 2, Imm: 2},
			{Op: isa.OpHalt}, // fallthrough
			{Op: isa.OpHalt}, // branch target
		}, nil)
		m.SetReg(1, tt.rs)
		m.SetReg(2, tt.rt)
		m.Step()
		taken := m.PC() == 2
		if taken != tt.expected {
			t.Errorf("%v(%#x, %#x): taken=%v, want %v", tt.op, tt.rs, tt.rt, taken, tt.expected)
		}
	}
}

func TestJalJrJalr(t *testing.T) {
	m := newTestMachine(t, 16, []isa.Instruction{
		{Op: isa.OpJal, Imm: 3},        // 0: call 3, r15=1
		{Op: isa.OpLi, Rd: 1, Imm: 7},  // 1: executed after return
		{Op: isa.OpHalt},               // 2
		{Op: isa.OpJalr, Rd: 2, Rs: 3}, // 3: r2=4, jump r3 (=5)
		{Op: isa.OpHalt},               // 4
		{Op: isa.OpJr, Rs: 15},         // 5: return to 1
	}, nil)
	m.SetReg(3, 5)
	if st := m.Run(10); st != StatusHalted {
		t.Fatalf("status %v", st)
	}
	if m.Reg(15) != 1 {
		t.Errorf("jal link = %d, want 1", m.Reg(15))
	}
	if m.Reg(2) != 4 {
		t.Errorf("jalr link = %d, want 4", m.Reg(2))
	}
	if m.Reg(1) != 7 {
		t.Error("did not return through jr")
	}
}

func TestExceptions(t *testing.T) {
	tests := []struct {
		name string
		prog []isa.Instruction
		want Exception
	}{
		{"bad-pc", []isa.Instruction{{Op: isa.OpJmp, Imm: 100}, {Op: isa.OpNop}}, ExcBadPC},
		{"illegal-op", []isa.Instruction{{Op: isa.Op(99)}}, ExcIllegalOp},
		{"mem-range-load", []isa.Instruction{{Op: isa.OpLw, Rd: 1, Rs: 0, Imm: 1000}}, ExcMemRange},
		{"mem-range-store", []isa.Instruction{{Op: isa.OpSw, Rt: 1, Rs: 0, Imm: 1000}}, ExcMemRange},
		{"misaligned-load", []isa.Instruction{{Op: isa.OpLw, Rd: 1, Rs: 0, Imm: 2}}, ExcMisaligned},
		{"misaligned-store", []isa.Instruction{{Op: isa.OpSw, Rt: 1, Rs: 0, Imm: 3}}, ExcMisaligned},
		{"port-load", []isa.Instruction{{Op: isa.OpLw, Rd: 1, Rs: 0, Imm: int32(PortSerial)}}, ExcPortLoad},
		{"port-load-byte", []isa.Instruction{{Op: isa.OpLb, Rd: 1, Rs: 0, Imm: int32(PortDetect)}}, ExcPortLoad},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := newTestMachine(t, 16, tt.prog, nil)
			st := m.Run(10)
			if st != StatusExcepted {
				t.Fatalf("status = %v, want excepted", st)
			}
			if m.Exception() != tt.want {
				t.Errorf("exception = %v, want %v", m.Exception(), tt.want)
			}
		})
	}
}

func TestRunOffEndOfROM(t *testing.T) {
	m := newTestMachine(t, 16, []isa.Instruction{{Op: isa.OpNop}}, nil)
	st := m.Run(10)
	if st != StatusExcepted || m.Exception() != ExcBadPC {
		t.Errorf("running off ROM end: status=%v exc=%v, want excepted/bad-pc", st, m.Exception())
	}
}

func TestMMIOPorts(t *testing.T) {
	m := newTestMachine(t, 16, []isa.Instruction{
		{Op: isa.OpLi, Rd: 1, Imm: 'X'},
		{Op: isa.OpSw, Rt: 1, Rs: 0, Imm: int32(PortSerial)},
		{Op: isa.OpSb, Rt: 1, Rs: 0, Imm: int32(PortSerial)},
		{Op: isa.OpSwi, Rs: 0, Imm: int32(PortDetect), Imm2: 1},
		{Op: isa.OpSwi, Rs: 0, Imm: int32(PortCorrect), Imm2: 1},
		{Op: isa.OpSwi, Rs: 0, Imm: int32(PortCorrect), Imm2: 1},
		{Op: isa.OpHalt},
	}, nil)
	if st := m.Run(10); st != StatusHalted {
		t.Fatalf("status %v (exc %v)", st, m.Exception())
	}
	if !bytes.Equal(m.Serial(), []byte("XX")) {
		t.Errorf("serial = %q, want \"XX\"", m.Serial())
	}
	if m.DetectCount() != 1 || m.CorrectCount() != 2 {
		t.Errorf("detect=%d correct=%d, want 1/2", m.DetectCount(), m.CorrectCount())
	}
}

func TestAbortPort(t *testing.T) {
	m := newTestMachine(t, 16, []isa.Instruction{
		{Op: isa.OpSwi, Rs: 0, Imm: int32(PortAbort), Imm2: 1},
		{Op: isa.OpHalt},
	}, nil)
	if st := m.Run(10); st != StatusAborted {
		t.Fatalf("status = %v, want aborted", st)
	}
	if m.Cycles() != 1 {
		t.Errorf("cycles = %d, want 1", m.Cycles())
	}
}

func TestUnknownPortStore(t *testing.T) {
	m := newTestMachine(t, 16, []isa.Instruction{
		{Op: isa.OpSwi, Rs: 0, Imm: int32(MMIOBase + 0x100), Imm2: 1},
	}, nil)
	if st := m.Run(10); st != StatusExcepted || m.Exception() != ExcMemRange {
		t.Errorf("unknown port: status=%v exc=%v", st, m.Exception())
	}
}

func TestSerialLimit(t *testing.T) {
	m, err := New(Config{RAMSize: 16, MaxSerial: 4}, []isa.Instruction{
		{Op: isa.OpSwi, Rs: 0, Imm: int32(PortSerial), Imm2: 'A'},
		{Op: isa.OpJmp, Imm: 0},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Run(100)
	if st != StatusExcepted || m.Exception() != ExcSerialLimit {
		t.Errorf("status=%v exc=%v, want serial-limit", st, m.Exception())
	}
	if len(m.Serial()) != 4 {
		t.Errorf("serial length = %d, want 4", len(m.Serial()))
	}
}

func TestFlipBit(t *testing.T) {
	m := newTestMachine(t, 4, []isa.Instruction{{Op: isa.OpHalt}}, []byte{0, 0, 0, 0})
	if err := m.FlipBit(9); err != nil { // byte 1, bit 1
		t.Fatal(err)
	}
	ram, _ := m.ReadRAM(0, 4)
	if ram[1] != 2 {
		t.Errorf("ram[1] = %d, want 2", ram[1])
	}
	if err := m.FlipBit(9); err != nil {
		t.Fatal(err)
	}
	ram, _ = m.ReadRAM(0, 4)
	if ram[1] != 0 {
		t.Error("double flip must restore the bit")
	}
	if err := m.FlipBit(32); err == nil {
		t.Error("FlipBit outside RAM must fail")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{RAMSize: 0},
		{RAMSize: -4},
		{RAMSize: int(MMIOBase) + 4},
		{RAMSize: 16, MaxSerial: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", cfg)
		}
	}
	if err := (Config{RAMSize: 2}).Validate(); err != nil {
		t.Errorf("tiny RAM must be allowed: %v", err)
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	if _, err := New(Config{RAMSize: 4}, nil, nil); err == nil {
		t.Error("New must reject empty programs")
	}
	if _, err := New(Config{RAMSize: 4}, []isa.Instruction{{Op: isa.OpHalt}}, make([]byte, 8)); err == nil {
		t.Error("New must reject oversized images")
	}
}

func TestStepAfterHalt(t *testing.T) {
	m := newTestMachine(t, 16, []isa.Instruction{{Op: isa.OpHalt}}, nil)
	if st := m.Run(10); st != StatusHalted {
		t.Fatal("expected halt")
	}
	if _, err := m.Step(); err != ErrNotRunning {
		t.Errorf("Step after halt = %v, want ErrNotRunning", err)
	}
}

func TestMemHookObservesRAMOnly(t *testing.T) {
	type access struct {
		cycle uint64
		addr  uint32
		size  uint8
		kind  AccessKind
	}
	var got []access
	m := newTestMachine(t, 16, []isa.Instruction{
		{Op: isa.OpSwi, Rs: 0, Imm: 0, Imm2: 5},              // RAM write, cycle 1
		{Op: isa.OpLw, Rd: 1, Rs: 0, Imm: 0},                 // RAM read, cycle 2
		{Op: isa.OpSw, Rt: 1, Rs: 0, Imm: int32(PortSerial)}, // MMIO: no hook
		{Op: isa.OpLb, Rd: 2, Rs: 0, Imm: 3},                 // RAM read, cycle 4
		{Op: isa.OpHalt},
	}, nil)
	m.SetMemHook(func(cycle uint64, addr uint32, size uint8, kind AccessKind) {
		got = append(got, access{cycle, addr, size, kind})
	})
	if st := m.Run(10); st != StatusHalted {
		t.Fatalf("status %v", st)
	}
	want := []access{
		{1, 0, 4, AccessWrite},
		{2, 0, 4, AccessRead},
		{4, 3, 1, AccessRead},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d accesses, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("access %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestStatusAndExceptionStrings(t *testing.T) {
	for _, s := range []Status{StatusRunning, StatusHalted, StatusExcepted, StatusAborted, Status(99)} {
		if s.String() == "" {
			t.Errorf("empty string for status %d", s)
		}
	}
	for _, e := range []Exception{ExcNone, ExcBadPC, ExcIllegalOp, ExcMemRange, ExcMisaligned, ExcPortLoad, ExcSerialLimit, Exception(99)} {
		if e.String() == "" {
			t.Errorf("empty string for exception %d", e)
		}
	}
}
