package machine

import (
	"math/rand"
	"testing"

	"faultspace/internal/isa"
)

// TestLoopDetectorSpin: a data-free spin loop must be proven infinite
// far before the cycle target.
func TestLoopDetectorSpin(t *testing.T) {
	m, err := New(Config{RAMSize: 64}, []isa.Instruction{
		{Op: isa.OpNop},
		{Op: isa.OpJmp, Imm: 1},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	det := NewLoopDetector(0)
	if !det.RunDetectLoop(m, 1<<20) {
		t.Fatal("spin loop not detected")
	}
	if m.Status() != StatusRunning {
		t.Fatalf("status %v, want still running", m.Status())
	}
	if m.Cycles() > 10*LoopProbeInterval {
		t.Errorf("detection took %d cycles; want well under the target", m.Cycles())
	}
}

// TestLoopDetectorCountingLoop: a loop whose RAM state changes each
// iteration (a counter) must NOT be declared infinite, and the chunked
// run must land in exactly the same state as a plain Run.
func TestLoopDetectorCountingLoop(t *testing.T) {
	// r1 counts up to 200 with the count mirrored into RAM, then halt.
	prog := []isa.Instruction{
		{Op: isa.OpAddi, Rd: 1, Rs: 1, Imm: 1},
		{Op: isa.OpSb, Rt: 1, Rs: 0, Imm: 0},
		{Op: isa.OpLi, Rd: 2, Imm: 200},
		{Op: isa.OpBlt, Rs: 1, Rt: 2, Imm: 0},
		{Op: isa.OpHalt},
	}
	m, err := New(Config{RAMSize: 16}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(Config{RAMSize: 16}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	det := NewLoopDetector(0)
	if det.RunDetectLoop(m, 1<<20) {
		t.Fatal("terminating counter loop declared infinite")
	}
	ref.Run(1 << 20)
	if got, want := stateHash(m), stateHash(ref); got != want {
		t.Fatal("chunked run diverged from plain Run")
	}
	if m.Status() != StatusHalted {
		t.Fatalf("status %v, want halted", m.Status())
	}
}

// TestLoopDetectorSerialLoop: a loop that emits serial output grows
// observable state every iteration, so it must not be declared infinite
// — it really terminates, with ExcSerialLimit.
func TestLoopDetectorSerialLoop(t *testing.T) {
	m, err := New(Config{RAMSize: 16, MaxSerial: 64}, []isa.Instruction{
		{Op: isa.OpSbi, Rs: 0, Imm: int32(PortSerial), Imm2: 'x'},
		{Op: isa.OpJmp, Imm: 0},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	det := NewLoopDetector(0)
	if det.RunDetectLoop(m, 1<<20) {
		t.Fatal("serial-emitting loop declared infinite")
	}
	if m.Status() != StatusExcepted || m.Exception() != ExcSerialLimit {
		t.Fatalf("got status %v exc %v, want serial-limit exception", m.Status(), m.Exception())
	}
}

// TestLoopDetectorTimerLoop: a spin loop under a periodic timer IRQ has
// a longer compound period (loop × timer), but the relative-fire-time
// state still recurs and must be detected.
func TestLoopDetectorTimerLoop(t *testing.T) {
	m, err := New(Config{RAMSize: 16, TimerPeriod: 8, TimerVector: 1}, []isa.Instruction{
		{Op: isa.OpJmp, Imm: 0}, // main: spin
		{Op: isa.OpSret},        // handler: return, re-arming the timer
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	det := NewLoopDetector(0)
	if !det.RunDetectLoop(m, 1<<20) {
		t.Fatal("timer-interleaved spin loop not detected")
	}
	if m.Cycles() >= 1<<20 {
		t.Error("detection did not beat the cycle target")
	}
}

// TestLoopDetectorChunkedEqualsRun: for random halting programs the
// detector-driven chunked execution must finish in exactly the state a
// plain Run reaches, and must never claim an infinite loop.
func TestLoopDetectorChunkedEqualsRun(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		ramSize := []int{16, 64, 256}[rng.Intn(3)]
		prog := buildRandomProgram(rng, ramSize, 40)
		m, err := New(Config{RAMSize: ramSize}, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := New(Config{RAMSize: ramSize}, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		det := NewLoopDetector(0)
		if det.RunDetectLoop(m, 500) {
			t.Fatalf("trial %d: straight-line program declared infinite", trial)
		}
		ref.Run(500)
		if stateHash(m) != stateHash(ref) {
			t.Fatalf("trial %d: chunked run diverged from plain Run", trial)
		}
		det.Reset()
	}
}
