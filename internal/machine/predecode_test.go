package machine

import (
	"math/rand"
	"testing"

	"faultspace/internal/isa"
)

// buildBranchyProgram generates a random program exercising the whole
// dispatch surface the predecode fast path lowers: ALU ops, loads and
// stores (including misaligned and MMIO-port targets), branches, jumps,
// calls and — when a timer is configured — the interrupt-handler ops.
// Programs may loop forever, run off the end (BadPC) or except; every
// such ending is a behavior the plain and pre-decoded interpreters
// must agree on.
func buildBranchyProgram(rng *rand.Rand, ramSize, n int) []isa.Instruction {
	prog := make([]isa.Instruction, 0, n+1)
	reg := func() uint8 { return uint8(1 + rng.Intn(10)) }
	for i := 0; i < n; i++ {
		addr := int32(rng.Intn(ramSize + 8)) // occasionally out of range
		word := int32(rng.Intn(ramSize/4+2)) * 4
		target := int32(rng.Intn(n + 2)) // occasionally just past the end
		switch rng.Intn(16) {
		case 0:
			prog = append(prog, isa.Instruction{Op: isa.OpLi, Rd: reg(), Imm: int32(rng.Uint32())})
		case 1:
			prog = append(prog, isa.Instruction{Op: isa.OpAdd, Rd: reg(), Rs: reg(), Rt: reg()})
		case 2:
			prog = append(prog, isa.Instruction{Op: isa.OpXor, Rd: reg(), Rs: reg(), Rt: reg()})
		case 3:
			prog = append(prog, isa.Instruction{Op: isa.OpShli, Rd: reg(), Rs: reg(), Imm: int32(rng.Intn(64))})
		case 4:
			prog = append(prog, isa.Instruction{Op: isa.OpSlti, Rd: reg(), Rs: reg(), Imm: int32(rng.Int31()) - 1<<30})
		case 5:
			prog = append(prog, isa.Instruction{Op: isa.OpSb, Rt: reg(), Rs: 0, Imm: addr})
		case 6:
			prog = append(prog, isa.Instruction{Op: isa.OpLb, Rd: reg(), Rs: 0, Imm: addr})
		case 7:
			prog = append(prog, isa.Instruction{Op: isa.OpSw, Rt: reg(), Rs: 0, Imm: word})
		case 8:
			prog = append(prog, isa.Instruction{Op: isa.OpLw, Rd: reg(), Rs: 0, Imm: word})
		case 9:
			prog = append(prog, isa.Instruction{Op: isa.OpSwi, Rs: 0, Imm: word, Imm2: int32(rng.Intn(4096)) - 2048})
		case 10:
			prog = append(prog, isa.Instruction{Op: isa.OpBne, Rs: reg(), Rt: reg(), Imm: target})
		case 11:
			prog = append(prog, isa.Instruction{Op: isa.OpBltu, Rs: reg(), Rt: reg(), Imm: target})
		case 12:
			prog = append(prog, isa.Instruction{Op: isa.OpJal, Imm: target})
		case 13:
			prog = append(prog, isa.Instruction{Op: isa.OpJr, Rs: 15})
		case 14:
			port := []int32{int32(PortSerial), int32(PortDetect), int32(PortCorrect)}[rng.Intn(3)]
			prog = append(prog, isa.Instruction{Op: isa.OpSb, Rt: reg(), Rs: 0, Imm: port})
		case 15:
			prog = append(prog, isa.Instruction{Op: isa.OpMul, Rd: reg(), Rs: reg(), Rt: reg()})
		}
	}
	prog = append(prog, isa.Instruction{Op: isa.OpHalt})
	return prog
}

// runLockstep drives two machines through the same run in random
// absolute-cycle increments and compares their complete state at every
// pause. Returns at termination or maxCycles.
func runLockstep(t *testing.T, rng *rand.Rand, a, b *Machine, maxCycles uint64) {
	t.Helper()
	for target := uint64(0); target < maxCycles; {
		target += uint64(1 + rng.Intn(97))
		if target > maxCycles {
			target = maxCycles
		}
		sa := a.Run(target)
		sb := b.Run(target)
		if sa != sb {
			t.Fatalf("status diverged at target %d: %v vs %v (cycles %d vs %d)",
				target, sa, sb, a.Cycles(), b.Cycles())
		}
		if stateHash(a) != stateHash(b) {
			t.Fatalf("state diverged at target %d (cycle %d, pc %d vs %d, exc %v vs %v)",
				target, a.Cycles(), a.PC(), b.PC(), a.Exception(), b.Exception())
		}
		if sa != StatusRunning {
			return
		}
	}
}

// TestPredecodeEquivalenceRandomPrograms pins the core fast-path
// invariant: Run over the pre-decoded stream is bit-for-bit identical
// to the plain Step loop, across random programs, random pause points
// and (half the time) a timer-interrupt handler.
func TestPredecodeEquivalenceRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		ramSize := []int{16, 64, 256, 1024}[rng.Intn(4)]
		prog := buildBranchyProgram(rng, ramSize, 40+rng.Intn(80))
		cfg := Config{RAMSize: ramSize, MaxSerial: 64}
		if trial%2 == 1 {
			// Interrupt-heavy variant: vector into the program body so the
			// handler is arbitrary code (sret is usually illegal there —
			// also a behavior to agree on). Some trials get a proper
			// handler by prepending sret-reachable code.
			cfg.TimerPeriod = uint64(3 + rng.Intn(17))
			cfg.TimerVector = uint32(rng.Intn(len(prog)))
			if trial%4 == 3 {
				handler := []isa.Instruction{
					{Op: isa.OpAddi, Rd: 9, Rs: 9, Imm: 1},
					{Op: isa.OpRdspc, Rd: 10},
					{Op: isa.OpWrspc, Rs: 10},
					{Op: isa.OpSret},
				}
				shifted := make([]isa.Instruction, 0, len(handler)+len(prog))
				shifted = append(shifted, handler...)
				shifted = append(shifted, prog...)
				prog = shifted
				cfg.TimerVector = 0
			}
		}
		plain, err := New(cfg, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := New(cfg, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		fast.SetPredecode(true)
		if !fast.PredecodeEnabled() || plain.PredecodeEnabled() {
			t.Fatal("SetPredecode state wrong")
		}
		runLockstep(t, rng, plain, fast, 4000)
	}
}

// TestPredecodeToggleAndClone checks that disabling predecode falls back
// to the plain loop and that clones rebuild their own cache.
func TestPredecodeToggleAndClone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prog := buildBranchyProgram(rng, 64, 50)
	m, err := New(Config{RAMSize: 64}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.SetPredecode(true)
	m.Run(100)
	c := m.Clone()
	if !c.PredecodeEnabled() {
		t.Fatal("clone lost predecode")
	}
	ref := m.Clone()
	ref.SetPredecode(false)
	if ref.PredecodeEnabled() {
		t.Fatal("SetPredecode(false) did not disable")
	}
	c.Run(4000)
	ref.Run(4000)
	if stateHash(c) != stateHash(ref) {
		t.Fatal("clone with predecode diverged from plain clone")
	}
}

// TestVonNeumannMatchesHarvard: without stores into the code region, a
// von Neumann machine behaves exactly like the Harvard machine running
// the same program (modulo the code bytes visible in its RAM).
func TestVonNeumannMatchesHarvard(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		// Data accesses stay below 64+8 bytes; the code region sits far
		// above at 256, so the program can never touch it. Both machines
		// get the same RAM size so out-of-range behavior coincides too.
		dataSize := 64
		prog := buildBranchyProgram(rng, dataSize, 60)
		codeBase := uint32(256)
		cfg := Config{RAMSize: 256 + len(prog)*8, MaxSerial: 64}
		hv, err := New(cfg, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		vn, err := NewVonNeumann(cfg, prog, nil, codeBase)
		if err != nil {
			t.Fatal(err)
		}
		if !vn.VonNeumann() || hv.VonNeumann() {
			t.Fatal("VonNeumann flag wrong")
		}
		hs := hv.Run(4000)
		vs := vn.Run(4000)
		// Programs only address [0, dataSize) plus ports, so behavior
		// must coincide even though the vn RAM is larger.
		if hs != vs || hv.Cycles() != vn.Cycles() || hv.PC() != vn.PC() ||
			hv.Exception() != vn.Exception() || string(hv.Serial()) != string(vn.Serial()) {
			t.Fatalf("trial %d: vn diverged from Harvard: %v/%v cycle %d/%d pc %d/%d",
				trial, hs, vs, hv.Cycles(), vn.Cycles(), hv.PC(), vn.PC())
		}
	}
}

// buildSelfModifyProgram generates a program that stores into its own
// code region: the fuzz workload for the predecode cache's precise
// invalidation.
func buildSelfModifyProgram(rng *rand.Rand, codeBase uint32, n int) []isa.Instruction {
	prog := make([]isa.Instruction, 0, n+1)
	reg := func() uint8 { return uint8(1 + rng.Intn(10)) }
	codeBytes := int32(n+1) * 8
	for i := 0; i < n; i++ {
		// Address somewhere in (or just around) the code region.
		codeAddr := int32(codeBase) + int32(rng.Intn(int(codeBytes)+8)) - 4
		switch rng.Intn(8) {
		case 0:
			prog = append(prog, isa.Instruction{Op: isa.OpLi, Rd: reg(), Imm: int32(rng.Uint32())})
		case 1:
			prog = append(prog, isa.Instruction{Op: isa.OpAddi, Rd: reg(), Rs: reg(), Imm: int32(rng.Intn(256))})
		case 2:
			// Byte store into code: usually corrupts one instruction.
			prog = append(prog, isa.Instruction{Op: isa.OpSb, Rt: reg(), Rs: 0, Imm: codeAddr})
		case 3:
			// Word store into code (often misaligned: also a behavior).
			prog = append(prog, isa.Instruction{Op: isa.OpSw, Rt: reg(), Rs: 0, Imm: codeAddr})
		case 4:
			// Store an immediate zero-ish word: bytes 0 decode to OpInvalid.
			prog = append(prog, isa.Instruction{Op: isa.OpSwi, Rs: 0, Imm: codeAddr &^ 3, Imm2: int32(rng.Intn(4096)) - 2048})
		case 5:
			prog = append(prog, isa.Instruction{Op: isa.OpLb, Rd: reg(), Rs: 0, Imm: codeAddr})
		case 6:
			prog = append(prog, isa.Instruction{Op: isa.OpBne, Rs: reg(), Rt: reg(), Imm: int32(rng.Intn(n + 1))})
		case 7:
			prog = append(prog, isa.Instruction{Op: isa.OpSb, Rt: reg(), Rs: 0, Imm: int32(PortSerial)})
		}
	}
	prog = append(prog, isa.Instruction{Op: isa.OpHalt})
	return prog
}

// FuzzPredecodeSelfModify differentially tests the pre-decoded fast
// path on von Neumann machines against the plain decoder: random
// programs store into their own code region mid-run (and the harness
// flips random code-region bits between chunks, like an injected
// fault), so the predecode cache must invalidate precisely — any staleness
// shows up as a state divergence from the machine that decodes RAM on
// every fetch.
func FuzzPredecodeSelfModify(f *testing.F) {
	f.Add(int64(1), []byte{0, 3, 9, 1})
	f.Add(int64(7), []byte{255, 128, 2, 77, 13})
	f.Add(int64(42), []byte{5})
	f.Fuzz(func(t *testing.T, seed int64, steps []byte) {
		rng := rand.New(rand.NewSource(seed))
		codeBase := uint32(64)
		n := 24 + rng.Intn(40)
		prog := buildSelfModifyProgram(rng, codeBase, n)
		cfg := Config{RAMSize: 64 + (len(prog)+2)*8, MaxSerial: 32}
		if rng.Intn(2) == 1 {
			cfg.TimerPeriod = uint64(5 + rng.Intn(20))
			cfg.TimerVector = uint32(rng.Intn(len(prog)))
		}
		plain, err := NewVonNeumann(cfg, prog, nil, codeBase)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := NewVonNeumann(cfg, prog, nil, codeBase)
		if err != nil {
			t.Fatal(err)
		}
		fast.SetPredecode(true)

		codeBits := uint64(len(prog)) * 8 * 8
		target := uint64(0)
		if len(steps) > 64 {
			steps = steps[:64]
		}
		for _, b := range steps {
			target += uint64(b%61) + 1
			sp := plain.Run(target)
			sf := fast.Run(target)
			if sp != sf || stateHash(plain) != stateHash(fast) {
				t.Fatalf("predecode diverged from plain decode at cycle %d/%d: status %v/%v pc %d/%d exc %v/%v",
					plain.Cycles(), fast.Cycles(), sp, sf, plain.PC(), fast.PC(),
					plain.Exception(), fast.Exception())
			}
			if sp != StatusRunning {
				return
			}
			// Injected fault into the code region, applied to both.
			bit := uint64(codeBase)*8 + uint64(b)*2654435761%codeBits
			if err := plain.FlipBit(bit); err != nil {
				t.Fatal(err)
			}
			if err := fast.FlipBit(bit); err != nil {
				t.Fatal(err)
			}
		}
		if fast.PredecodeInvalidations() == 0 && len(steps) > 0 && target > 0 {
			// FlipBit into the code region must have invalidated at least
			// once (the flips above always land inside it).
			t.Fatal("no predecode invalidation despite code-region faults")
		}
	})
}

// TestPredecodeInvalidationCounter pins the counter semantics: Harvard
// machines never invalidate; von Neumann machines count store and
// restore events that clobber cached instructions.
func TestPredecodeInvalidationCounter(t *testing.T) {
	prog := []isa.Instruction{
		{Op: isa.OpSbi, Rs: 0, Imm: 64, Imm2: 0}, // store into own code (instruction 8 region? no: addr 64 = codeBase)
		{Op: isa.OpHalt},
	}
	vn, err := NewVonNeumann(Config{RAMSize: 128}, prog, nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	vn.SetPredecode(true)
	vn.Run(10)
	if got := vn.PredecodeInvalidations(); got != 1 {
		t.Fatalf("vn invalidations = %d, want 1", got)
	}

	hv, err := New(Config{RAMSize: 128}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	hv.SetPredecode(true)
	hv.Run(10)
	if err := hv.FlipBit(0); err != nil {
		t.Fatal(err)
	}
	if got := hv.PredecodeInvalidations(); got != 0 {
		t.Fatalf("harvard invalidations = %d, want 0", got)
	}
}
