package machine

import (
	"errors"
	"fmt"

	"faultspace/internal/isa"
)

// This file implements the pre-decoded execution engine: the program is
// lowered once into a dense, dispatch-ready instruction stream and Run
// executes it in a tight loop with the program counter and cycle counter
// held in locals, instead of paying the full per-Step overhead (status
// check, timer check, hook checks, operand masking) on every cycle.
//
// The fast path is an implementation detail, never a semantic one: it is
// only taken when no hooks are installed, it replicates Step's effects
// bit for bit, and every shortcut is pinned by the differential fuzz
// test (FuzzPredecodeSelfModify) and the strategy-equivalence matrix
// (DESIGN.md invariant 11).
//
// Two machine models use it:
//
//   - The Harvard machines of campaigns (New) fetch from the fault-immune
//     ROM, so the lowered stream is built once and can never go stale —
//     faults only hit RAM and registers.
//   - Von Neumann machines (NewVonNeumann) map the encoded program into
//     RAM and fetch by decoding it, so stores and injected faults CAN
//     corrupt the code region. The lowered stream then acts as a decode
//     cache with precise per-instruction invalidation: any write
//     overlapping an instruction's bytes clears its valid bit, and a
//     dirtied instruction falls back to plain decode-from-RAM on every
//     subsequent fetch, so outcomes never change.

// preIns is one lowered instruction: operands pre-masked and immediates
// pre-converted so the dispatch loop does no per-cycle bit fiddling.
// Register indices are masked to the architectural 4 bits at lowering
// time, which also lets the compiler elide bounds checks on the
// register-file accesses in runChunk.
type preIns struct {
	op         isa.Op
	rd, rs, rt uint8
	imm        int32  // signed immediate (Slti)
	immU       uint32 // unsigned immediate: address offset, branch target, shift count
	imm2U      uint32 // store-immediate value (Swi/Sbi)
}

// lower converts a decoded instruction to its dispatch-ready form.
func lower(ins isa.Instruction) preIns {
	p := preIns{
		op:    ins.Op,
		rd:    ins.Rd & 15,
		rs:    ins.Rs & 15,
		rt:    ins.Rt & 15,
		imm:   ins.Imm,
		immU:  uint32(ins.Imm),
		imm2U: uint32(ins.Imm2),
	}
	switch ins.Op {
	case isa.OpShli, isa.OpShri:
		// The shift count is static; mask it once here instead of per cycle.
		p.immU &= 31
	}
	return p
}

// preProg is the pre-decoded form of a machine's program.
type preProg struct {
	code []preIns
	// valid is the per-instruction coherence bitset of von Neumann
	// machines: bit i set means code[i] faithfully lowers the current RAM
	// bytes of instruction i. Harvard machines fetch from immutable ROM
	// and leave valid nil. A cleared bit is never re-set: the dirtied
	// instruction decodes plain from RAM for the rest of the run.
	valid []uint64
	// invalidations counts invalidation events: writes (stores, bit
	// flips, state restores) that clobbered at least one cached
	// instruction. Exposed via PredecodeInvalidations for telemetry.
	invalidations uint64
}

// SetPredecode enables or disables the pre-decoded fast path. Enabling
// is idempotent; disabling drops the lowered stream so Run falls back to
// the plain Step loop. The setting never changes observable machine
// behavior — only how fast Run gets there.
func (m *Machine) SetPredecode(on bool) {
	if !on {
		m.pre = nil
		return
	}
	if m.pre != nil {
		return
	}
	m.pre = m.buildPre()
}

// PredecodeEnabled reports whether the pre-decoded fast path is active.
func (m *Machine) PredecodeEnabled() bool { return m.pre != nil }

// PredecodeInvalidations returns the number of predecode-cache
// invalidation events on this machine. Harvard machines always report 0:
// their ROM is fault-immune, so the cache can never go stale — only von
// Neumann machines (NewVonNeumann) invalidate.
func (m *Machine) PredecodeInvalidations() uint64 {
	if m.pre == nil {
		return 0
	}
	return m.pre.invalidations
}

// buildPre lowers the machine's program into a preProg. For von Neumann
// machines the source of truth is RAM: instructions whose bytes do not
// decode are left invalid and fall to the plain path (which raises
// ExcIllegalOp on fetch, same as executing them would).
func (m *Machine) buildPre() *preProg {
	p := &preProg{code: make([]preIns, m.codeLen)}
	if !m.vn {
		for i, ins := range m.rom {
			p.code[i] = lower(ins)
		}
		return p
	}
	p.valid = make([]uint64, (int(m.codeLen)+63)/64)
	for i := uint32(0); i < m.codeLen; i++ {
		ins, exc := m.vnDecode(i)
		if exc != ExcNone {
			continue
		}
		p.code[i] = lower(ins)
		p.valid[i>>6] |= 1 << (i & 63)
	}
	return p
}

// NewVonNeumann creates a machine whose program lives in RAM: the
// encoded form of prog (8 bytes per instruction, see isa.Encode) is
// mapped at codeBase on top of the RAM image, and every fetch decodes
// the current RAM bytes — so stores and injected faults can corrupt,
// and self-modifying programs can rewrite, the code region. PC remains
// an instruction index: index i fetches RAM[codeBase+8i : codeBase+8i+8].
// Bytes that fail to decode raise ExcIllegalOp at fetch.
//
// Campaigns never use this mode — the paper's machine model (§II-C) and
// the campaign identity hash are defined over the fault-immune-ROM
// Harvard machine — it exists to differentially test the predecode
// cache's invalidation against the plain decoder.
func NewVonNeumann(cfg Config, prog []isa.Instruction, image []byte, codeBase uint32) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(prog) == 0 {
		return nil, errors.New("machine: empty program")
	}
	code, err := isa.EncodeProgram(prog)
	if err != nil {
		return nil, fmt.Errorf("machine: von Neumann program: %w", err)
	}
	if int(codeBase)+len(code) > cfg.RAMSize {
		return nil, fmt.Errorf("machine: code region [%d, %d) outside RAM of %d bytes",
			codeBase, int(codeBase)+len(code), cfg.RAMSize)
	}
	if len(image) > cfg.RAMSize {
		return nil, fmt.Errorf("machine: image size %d exceeds RAM size %d", len(image), cfg.RAMSize)
	}
	maxSerial := cfg.MaxSerial
	if maxSerial == 0 {
		maxSerial = DefaultMaxSerial
	}
	if cfg.TimerPeriod > 0 && cfg.TimerVector >= uint32(len(prog)) {
		return nil, fmt.Errorf("machine: timer vector %d outside program of %d instructions",
			cfg.TimerVector, len(prog))
	}
	m := &Machine{
		cfg:       cfg,
		rom:       prog, // initial program, for reference only; fetches decode RAM
		ram:       make([]byte, cfg.RAMSize),
		status:    StatusRunning,
		maxSerial: maxSerial,
		fireAt:    cfg.TimerPeriod,
		dirty:     make([]uint64, (numPages(cfg.RAMSize)+63)/64),
		vn:        true,
		codeBase:  codeBase,
		codeLen:   uint32(len(prog)),
	}
	copy(m.ram, image)
	// The code mapping wins over image bytes in the code region.
	copy(m.ram[codeBase:], code)
	return m, nil
}

// VonNeumann reports whether the machine fetches its program from RAM.
func (m *Machine) VonNeumann() bool { return m.vn }

// vnDecode decodes instruction index pc from the RAM-resident code
// region. The caller must have bounds-checked pc against codeLen.
func (m *Machine) vnDecode(pc uint32) (isa.Instruction, Exception) {
	off := m.codeBase + pc*8
	b := m.ram[off : off+8 : off+8]
	w := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	ins, err := isa.Decode(w)
	if err != nil {
		return isa.Instruction{}, ExcIllegalOp
	}
	return ins, ExcNone
}

// invalidateCode clears the cached lowering of every instruction whose
// encoded bytes overlap the written RAM range [addr, addr+size). Called
// on the von Neumann store/flip/restore paths; a no-op without an
// active predecode cache.
func (m *Machine) invalidateCode(addr, size uint32) {
	if m.pre == nil || m.pre.valid == nil {
		return
	}
	end := m.codeBase + m.codeLen*8
	if addr+size <= m.codeBase || addr >= end {
		return
	}
	lo, hi := addr, addr+size
	if lo < m.codeBase {
		lo = m.codeBase
	}
	if hi > end {
		hi = end
	}
	first := (lo - m.codeBase) / 8
	last := (hi - 1 - m.codeBase) / 8
	cleared := false
	for i := first; i <= last; i++ {
		if m.pre.valid[i>>6]&(1<<(i&63)) != 0 {
			m.pre.valid[i>>6] &^= 1 << (i & 63)
			cleared = true
		}
	}
	if cleared {
		m.pre.invalidations++
	}
}

// invalidateAllCode conservatively drops every cached lowering; used by
// full-state restores, which may rewrite the code region wholesale.
func (m *Machine) invalidateAllCode() {
	if m.pre == nil || m.pre.valid == nil {
		return
	}
	cleared := false
	for i, w := range m.pre.valid {
		if w != 0 {
			m.pre.valid[i] = 0
			cleared = true
		}
	}
	if cleared {
		m.pre.invalidations++
	}
}

// runPre is Run over the pre-decoded stream. It executes in chunks
// bounded by the next timer event, so the chunk loop itself needs no
// per-cycle timer check; interrupt delivery happens here at chunk
// boundaries, mirroring Step's instruction-boundary semantics exactly
// (the chunk limit never extends past a pending fire).
func (m *Machine) runPre(maxCycles uint64) Status {
	for m.status == StatusRunning && m.cycles < maxCycles {
		limit := maxCycles
		if m.cfg.TimerPeriod > 0 && !m.inIRQ {
			if m.cycles >= m.fireAt {
				m.savedPC = m.pc
				m.pc = m.cfg.TimerVector
				m.inIRQ = true
			} else if m.fireAt < limit {
				limit = m.fireAt
			}
		}
		m.runChunk(limit)
	}
	return m.status
}

// runChunk executes pre-decoded instructions until the retired-cycle
// count reaches limit, the machine leaves StatusRunning, or an OpSret
// re-arms the timer (which invalidates the caller's chunk limit). The
// caller guarantees no timer interrupt becomes deliverable strictly
// inside (m.cycles, limit) and that no hooks are installed.
func (m *Machine) runChunk(limit uint64) {
	var fexc Exception
	code := m.pre.code
	valid := m.pre.valid
	ram := m.ram
	regs := &m.regs
	pc := m.pc
	cycles := m.cycles
	codeLen := uint32(len(code))
	for cycles < limit {
		if pc >= codeLen {
			m.pc, m.cycles = pc, cycles
			m.raise(ExcBadPC)
			return
		}
		ins := &code[pc]
		var tmp preIns
		if valid != nil && valid[pc>>6]&(1<<(pc&63)) == 0 {
			// Dirtied (or never-decodable) instruction: fall back to plain
			// decode from RAM, exactly like the slow path would.
			dec, exc := m.vnDecode(pc)
			if exc != ExcNone {
				m.pc, m.cycles = pc, cycles
				m.raise(exc)
				return
			}
			tmp = lower(dec)
			ins = &tmp
		}
		cycles++ // the executing instruction's retire count (== Step's `cycle`)
		nextPC := pc + 1

		switch ins.op {
		case isa.OpNop:
			// nothing
		case isa.OpHalt:
			m.status = StatusHalted
			m.pc, m.cycles = nextPC, cycles
			return
		case isa.OpLi:
			if ins.rd != 0 {
				regs[ins.rd&15] = ins.immU
			}
		case isa.OpMov:
			if ins.rd != 0 {
				regs[ins.rd&15] = regs[ins.rs&15]
			}

		case isa.OpAdd:
			if ins.rd != 0 {
				regs[ins.rd&15] = regs[ins.rs&15] + regs[ins.rt&15]
			}
		case isa.OpSub:
			if ins.rd != 0 {
				regs[ins.rd&15] = regs[ins.rs&15] - regs[ins.rt&15]
			}
		case isa.OpAnd:
			if ins.rd != 0 {
				regs[ins.rd&15] = regs[ins.rs&15] & regs[ins.rt&15]
			}
		case isa.OpOr:
			if ins.rd != 0 {
				regs[ins.rd&15] = regs[ins.rs&15] | regs[ins.rt&15]
			}
		case isa.OpXor:
			if ins.rd != 0 {
				regs[ins.rd&15] = regs[ins.rs&15] ^ regs[ins.rt&15]
			}
		case isa.OpShl:
			if ins.rd != 0 {
				regs[ins.rd&15] = regs[ins.rs&15] << (regs[ins.rt&15] & 31)
			}
		case isa.OpShr:
			if ins.rd != 0 {
				regs[ins.rd&15] = regs[ins.rs&15] >> (regs[ins.rt&15] & 31)
			}
		case isa.OpSar:
			if ins.rd != 0 {
				regs[ins.rd&15] = uint32(int32(regs[ins.rs&15]) >> (regs[ins.rt&15] & 31))
			}
		case isa.OpMul:
			if ins.rd != 0 {
				regs[ins.rd&15] = regs[ins.rs&15] * regs[ins.rt&15]
			}
		case isa.OpSlt:
			if ins.rd != 0 {
				regs[ins.rd&15] = boolToReg(int32(regs[ins.rs&15]) < int32(regs[ins.rt&15]))
			}
		case isa.OpSltu:
			if ins.rd != 0 {
				regs[ins.rd&15] = boolToReg(regs[ins.rs&15] < regs[ins.rt&15])
			}

		case isa.OpAddi:
			if ins.rd != 0 {
				regs[ins.rd&15] = regs[ins.rs&15] + ins.immU
			}
		case isa.OpAndi:
			if ins.rd != 0 {
				regs[ins.rd&15] = regs[ins.rs&15] & ins.immU
			}
		case isa.OpOri:
			if ins.rd != 0 {
				regs[ins.rd&15] = regs[ins.rs&15] | ins.immU
			}
		case isa.OpXori:
			if ins.rd != 0 {
				regs[ins.rd&15] = regs[ins.rs&15] ^ ins.immU
			}
		case isa.OpShli:
			if ins.rd != 0 {
				regs[ins.rd&15] = regs[ins.rs&15] << ins.immU
			}
		case isa.OpShri:
			if ins.rd != 0 {
				regs[ins.rd&15] = regs[ins.rs&15] >> ins.immU
			}
		case isa.OpSlti:
			if ins.rd != 0 {
				regs[ins.rd&15] = boolToReg(int32(regs[ins.rs&15]) < ins.imm)
			}

		case isa.OpLw:
			addr := regs[ins.rs&15] + ins.immU
			if addr%4 != 0 {
				fexc = ExcMisaligned
				goto fault
			}
			if int(addr)+4 <= len(ram) {
				if ins.rd != 0 {
					regs[ins.rd&15] = uint32(ram[addr]) |
						uint32(ram[addr+1])<<8 |
						uint32(ram[addr+2])<<16 |
						uint32(ram[addr+3])<<24
				}
			} else if addr >= MMIOBase {
				fexc = ExcPortLoad
				goto fault
			} else {
				fexc = ExcMemRange
				goto fault
			}
		case isa.OpLb:
			addr := regs[ins.rs&15] + ins.immU
			if int(addr) < len(ram) {
				if ins.rd != 0 {
					regs[ins.rd&15] = uint32(ram[addr])
				}
			} else if addr >= MMIOBase {
				fexc = ExcPortLoad
				goto fault
			} else {
				fexc = ExcMemRange
				goto fault
			}

		case isa.OpSw, isa.OpSwi:
			addr := regs[ins.rs&15] + ins.immU
			v := ins.imm2U
			if ins.op == isa.OpSw {
				v = regs[ins.rt&15]
			}
			if addr%4 != 0 {
				fexc = ExcMisaligned
				goto fault
			}
			if int(addr)+4 <= len(ram) {
				ram[addr] = byte(v)
				ram[addr+1] = byte(v >> 8)
				ram[addr+2] = byte(v >> 16)
				ram[addr+3] = byte(v >> 24)
				m.markDirty(addr)
				if valid != nil {
					m.invalidateCode(addr, 4)
				}
			} else if addr >= MMIOBase {
				if exc := m.storePort(addr, v); exc != ExcNone {
					fexc = exc
					goto fault
				}
				if m.status != StatusRunning { // PortAbort
					m.pc, m.cycles = nextPC, cycles
					return
				}
			} else {
				fexc = ExcMemRange
				goto fault
			}
		case isa.OpSb, isa.OpSbi:
			addr := regs[ins.rs&15] + ins.immU
			v := byte(ins.imm2U)
			if ins.op == isa.OpSb {
				v = byte(regs[ins.rt&15])
			}
			if int(addr) < len(ram) {
				ram[addr] = v
				m.markDirty(addr)
				if valid != nil {
					m.invalidateCode(addr, 1)
				}
			} else if addr >= MMIOBase {
				if exc := m.storePort(addr&^3, uint32(v)); exc != ExcNone {
					fexc = exc
					goto fault
				}
				if m.status != StatusRunning {
					m.pc, m.cycles = nextPC, cycles
					return
				}
			} else {
				fexc = ExcMemRange
				goto fault
			}

		case isa.OpBeq:
			if regs[ins.rs&15] == regs[ins.rt&15] {
				nextPC = ins.immU
			}
		case isa.OpBne:
			if regs[ins.rs&15] != regs[ins.rt&15] {
				nextPC = ins.immU
			}
		case isa.OpBlt:
			if int32(regs[ins.rs&15]) < int32(regs[ins.rt&15]) {
				nextPC = ins.immU
			}
		case isa.OpBge:
			if int32(regs[ins.rs&15]) >= int32(regs[ins.rt&15]) {
				nextPC = ins.immU
			}
		case isa.OpBltu:
			if regs[ins.rs&15] < regs[ins.rt&15] {
				nextPC = ins.immU
			}
		case isa.OpBgeu:
			if regs[ins.rs&15] >= regs[ins.rt&15] {
				nextPC = ins.immU
			}
		case isa.OpJmp:
			nextPC = ins.immU
		case isa.OpJal:
			regs[isa.RegLR] = pc + 1
			nextPC = ins.immU
		case isa.OpJr:
			nextPC = regs[ins.rs&15]
		case isa.OpJalr:
			if ins.rd != 0 {
				regs[ins.rd&15] = pc + 1
			}
			nextPC = regs[ins.rs&15]
		case isa.OpSret:
			if !m.inIRQ {
				fexc = ExcIllegalOp
				goto fault
			}
			m.inIRQ = false
			m.fireAt = cycles + m.cfg.TimerPeriod
			// The re-armed timer invalidates the chunk limit; hand control
			// back so runPre recomputes it.
			m.pc, m.cycles = m.savedPC, cycles
			return
		case isa.OpRdspc:
			if !m.inIRQ {
				fexc = ExcIllegalOp
				goto fault
			}
			if ins.rd != 0 {
				regs[ins.rd&15] = m.savedPC
			}
		case isa.OpWrspc:
			if !m.inIRQ {
				fexc = ExcIllegalOp
				goto fault
			}
			m.savedPC = regs[ins.rs&15]

		default:
			fexc = ExcIllegalOp
			goto fault
		}

		pc = nextPC
	}
	m.pc, m.cycles = pc, cycles
	return

fault:
	// Mirrors raise(): the faulting instruction consumes its cycle
	// (already counted in cycles) and the PC stays at the faulting
	// instruction.
	m.status = StatusExcepted
	m.exc = fexc
	m.pc, m.cycles = pc, cycles
}
