package machine

// Forker clones one machine's state onto another cheaply and repeatedly:
// the fork-scan primitive. A parent ("cursor") machine advances
// monotonically through the golden run; at each injection cycle the scan
// forks a child, injects the fault into the child and runs only the
// faulty suffix there — the golden prefix is never replayed per
// experiment.
//
// The first Fork (and the first after Invalidate) copies every RAM page.
// Subsequent Forks copy only the union of
//
//	(a) pages the CHILD dirtied since the previous Fork — the faulty
//	    suffix's stores and the injected flip itself — and
//	(b) pages the PARENT dirtied since the previous Fork — the golden
//	    cycles it advanced in between.
//
// That union is exactly the set of pages on which the two machines can
// disagree: at the previous Fork they were bit-identical, and RAM only
// ever changes through dirty-tracked stores and flips. The child
// therefore cannot observe any faulty state from a previous experiment —
// every page it mutated is rewritten from the parent — which is the
// soundness half of DESIGN.md §4f.
//
// To make "dirtied since the previous Fork" a direct bitset read, Fork
// RESETS both machines' dirty sets once the copy is done. The forker
// consequently owns the parent's dirty tracking: any other consumer of
// those bits (a ladder Cursor in its delta mode) must not rely on them,
// and any operation that rewrites the parent wholesale or resets its
// bits behind the forker's back (Machine.Restore, Cursor.Restore) must
// be followed by Invalidate.
//
// A Forker is bound to its two machines and not safe for concurrent
// use; create one per scan worker.
type Forker struct {
	parent, child *Machine
	valid         bool
}

// NewForker creates a forker copying parent state onto child. Both
// machines must share the target configuration (same RAM size, program
// and machine config); the child's own state is irrelevant — the first
// Fork overwrites it wholesale.
func NewForker(parent, child *Machine) *Forker {
	if len(parent.ram) != len(child.ram) {
		panic("machine: NewForker with mismatched RAM size")
	}
	return &Forker{parent: parent, child: child}
}

// Invalidate forces the next Fork to copy every page. Required after any
// operation that mutates either machine outside dirty tracking or
// resets dirty bits — in the fork scan, the once-per-batch rung restore
// that repositions the parent.
func (f *Forker) Invalidate() { f.valid = false }

// Fork makes the child a state-identical copy of the parent, copying
// only the RAM pages that can differ (see the type comment), and clears
// both machines' dirty sets so the next Fork sees exactly the pages
// mutated by the upcoming experiment and golden advance.
func (f *Forker) Fork() {
	p, c := f.parent, f.child
	if !f.valid {
		copy(c.ram, p.ram)
	} else {
		np := numPages(len(p.ram))
		for pg := 0; pg < np; pg++ {
			if c.dirty[pg>>6]|p.dirty[pg>>6] == 0 {
				// Skip whole clean 64-page runs word-wise.
				pg |= 63
				continue
			}
			if (c.dirty[pg>>6]|p.dirty[pg>>6])&(1<<(uint(pg)&63)) != 0 {
				lo, hi := p.pageBounds(pg)
				copy(c.ram[lo:hi], p.ram[lo:hi])
			}
		}
	}
	p.resetDirty()
	c.resetDirty()
	if c.vn {
		// RAM pages were rewritten outside the predecode cache's sight;
		// drop cached lowerings (campaigns only fork Harvard machines, so
		// this is defensive, not hot — mirrors Cursor.Restore).
		c.invalidateAllCode()
	}
	c.regs = p.regs
	c.pc = p.pc
	c.cycles = p.cycles
	c.status = p.status
	c.exc = p.exc
	c.serial = append(c.serial[:0], p.serial...)
	c.detects = p.detects
	c.corrects = p.corrects
	c.inIRQ = p.inIRQ
	c.savedPC = p.savedPC
	c.fireAt = p.fireAt
	c.skipNext = p.skipNext
	f.valid = true
}
