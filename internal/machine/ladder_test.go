package machine

import (
	"crypto/sha256"
	"encoding/binary"
	"math/rand"
	"testing"

	"faultspace/internal/isa"
)

// stateHash digests the complete mutable machine state. Two machines with
// equal hashes are indistinguishable to any campaign observer.
func stateHash(m *Machine) [32]byte {
	h := sha256.New()
	h.Write(m.ram)
	var buf [8]byte
	wr := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, r := range m.regs {
		wr(uint64(r))
	}
	wr(uint64(m.pc))
	wr(m.cycles)
	wr(uint64(m.status))
	wr(uint64(m.exc))
	wr(uint64(len(m.serial)))
	h.Write(m.serial)
	wr(m.detects)
	wr(m.corrects)
	if m.inIRQ {
		wr(1)
	} else {
		wr(0)
	}
	wr(uint64(m.savedPC))
	wr(m.fireAt)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// runWithLadder executes m from its current state, capturing a rung every
// interval cycles while the machine is still running — the same capture
// loop the campaign ladder strategy uses during the golden run.
func runWithLadder(m *Machine, interval, maxCycles uint64) *Ladder {
	l := NewLadder(m)
	next := m.Cycles() + interval
	for m.Status() == StatusRunning && m.Cycles() < maxCycles {
		if _, err := m.Step(); err != nil {
			break
		}
		if m.Status() == StatusRunning && m.Cycles() == next {
			l.Capture(m)
			next += interval
		}
	}
	return l
}

// TestDirtyDeltaEqualsFullSnapshot is the dirty-page tracking property
// test: at every rung, the RAM image reconstructed from the ladder's
// delta views hashes identically to the live machine's full RAM.
func TestDirtyDeltaEqualsFullSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 12; trial++ {
		ramSize := []int{32, 300, 512, 1024}[trial%4]
		prog := buildRandomProgram(rng, ramSize, 100)
		m, err := New(Config{RAMSize: ramSize}, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		l := NewLadder(m)
		interval := uint64(1 + rng.Intn(10))
		next := interval
		for m.Status() == StatusRunning && m.Cycles() < 1000 {
			if _, err := m.Step(); err != nil {
				break
			}
			if m.Status() == StatusRunning && m.Cycles() == next {
				l.Capture(m)
				next += interval

				view := l.views[len(l.views)-1]
				h := sha256.New()
				for _, page := range view {
					h.Write(page)
				}
				want := sha256.Sum256(m.ram)
				var got [32]byte
				copy(got[:], h.Sum(nil))
				if got != want {
					t.Fatalf("trial %d: delta view diverges from RAM at cycle %d",
						trial, m.Cycles())
				}
			}
		}
		if l.Rungs() < 2 {
			t.Fatalf("trial %d: degenerate ladder (%d rungs)", trial, l.Rungs())
		}
	}
}

// TestCursorRestoreEquivalence restores rungs in random order onto one
// shared worker machine — dirtying it with partial runs and bit flips in
// between, exactly like back-to-back experiments — and checks the full
// state hash against a reference machine replayed from reset.
func TestCursorRestoreEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		ramSize := []int{32, 256, 1024}[trial%3]
		prog := buildRandomProgram(rng, ramSize, 120)
		golden, err := New(Config{RAMSize: ramSize}, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		interval := uint64(1 + rng.Intn(16))
		l := runWithLadder(golden, interval, 1000)

		worker, err := New(Config{RAMSize: ramSize}, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		cur := l.NewCursor(worker)
		for i := 0; i < 30; i++ {
			r := rng.Intn(l.Rungs())
			cur.Restore(r)

			ref, err := New(Config{RAMSize: ramSize}, prog, nil)
			if err != nil {
				t.Fatal(err)
			}
			ref.Run(l.RungCycle(r))
			if stateHash(worker) != stateHash(ref) {
				t.Fatalf("trial %d step %d: restored rung %d (cycle %d) diverges from replay",
					trial, i, r, l.RungCycle(r))
			}

			// Dirty the worker like an experiment would: inject a fault
			// and execute part of the remaining run.
			if err := worker.FlipBit(uint64(rng.Intn(ramSize * 8))); err != nil {
				t.Fatal(err)
			}
			worker.Run(worker.Cycles() + uint64(rng.Intn(int(interval)+4)))
		}
	}
}

// TestCursorSurvivesFullRestore checks the conservative dirty marking:
// a full Machine.Restore rewrites RAM behind the cursor's back, and the
// next cursor restore must still produce the exact rung state.
func TestCursorSurvivesFullRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ramSize := 1024
	prog := buildRandomProgram(rng, ramSize, 100)
	golden, err := New(Config{RAMSize: ramSize}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	l := runWithLadder(golden, 8, 1000)
	if l.Rungs() < 3 {
		t.Fatalf("degenerate ladder (%d rungs)", l.Rungs())
	}

	worker, err := New(Config{RAMSize: ramSize}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	scratch := worker.Snapshot()
	cur := l.NewCursor(worker)
	cur.Restore(l.Rungs() - 1)

	// Rewrite the whole machine state outside the cursor's knowledge.
	worker.Restore(scratch)
	worker.Run(3)

	r := 1
	cur.Restore(r)
	ref, err := New(Config{RAMSize: ramSize}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(l.RungCycle(r))
	if stateHash(worker) != stateHash(ref) {
		t.Fatal("cursor restore after full Restore diverges from replay")
	}
}

func TestLadderFind(t *testing.T) {
	prog := make([]isa.Instruction, 0, 65)
	for i := 0; i < 64; i++ {
		prog = append(prog, isa.Instruction{Op: isa.OpNop})
	}
	prog = append(prog, isa.Instruction{Op: isa.OpHalt})
	m, err := New(Config{RAMSize: 8}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	l := runWithLadder(m, 10, 1000) // rungs at cycles 0, 10, 20, ..., 60
	if l.Rungs() != 7 {
		t.Fatalf("rungs = %d, want 7", l.Rungs())
	}
	cases := []struct {
		cycle uint64
		rung  int
	}{
		{0, 0}, {1, 0}, {9, 0}, {10, 1}, {11, 1}, {19, 1},
		{20, 2}, {59, 5}, {60, 6}, {64, 6}, {1000, 6},
	}
	for _, c := range cases {
		if got := l.Find(c.cycle); got != c.rung {
			t.Errorf("Find(%d) = %d, want %d", c.cycle, got, c.rung)
		}
		if got := l.RungCycle(l.Find(c.cycle)); got > c.cycle {
			t.Errorf("Find(%d) returned rung above the cycle (%d)", c.cycle, got)
		}
	}
}

// TestLadderPageSharing verifies delta capture actually shares unchanged
// pages: a program that only ever writes one page must store ~1 extra
// page per rung, not a full RAM image per rung.
func TestLadderPageSharing(t *testing.T) {
	ramSize := 4 * PageSize
	prog := make([]isa.Instruction, 0, 65)
	for i := 0; i < 64; i++ {
		// All stores land in page 0.
		prog = append(prog, isa.Instruction{Op: isa.OpSbi, Rs: 0, Imm: int32(i % PageSize), Imm2: int32(i)})
	}
	prog = append(prog, isa.Instruction{Op: isa.OpHalt})
	m, err := New(Config{RAMSize: ramSize}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	l := runWithLadder(m, 4, 1000)
	full := l.Rungs() * numPages(ramSize)
	want := numPages(ramSize) + (l.Rungs() - 1) // rung 0 full + 1 dirty page per capture
	if got := l.PagesStored(); got != want {
		t.Errorf("PagesStored = %d, want %d (full snapshots would be %d)", got, want, full)
	}
	// And the shared pages must really be shared backing arrays.
	for i := 1; i < len(l.views); i++ {
		for p := 1; p < numPages(ramSize); p++ {
			if &l.views[i][p][0] != &l.views[i-1][p][0] {
				t.Fatalf("rung %d page %d: untouched page was copied", i, p)
			}
		}
	}
}

func TestLadderCaptureStaleCyclePanics(t *testing.T) {
	m, err := New(Config{RAMSize: 8}, []isa.Instruction{{Op: isa.OpNop}, {Op: isa.OpHalt}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLadder(m)
	defer func() {
		if recover() == nil {
			t.Error("Capture without forward progress must panic")
		}
	}()
	l.Capture(m)
}

func TestNewCursorMismatchedRAMPanics(t *testing.T) {
	prog := []isa.Instruction{{Op: isa.OpHalt}}
	m1, _ := New(Config{RAMSize: 8}, prog, nil)
	m2, _ := New(Config{RAMSize: 16}, prog, nil)
	l := NewLadder(m1)
	defer func() {
		if recover() == nil {
			t.Error("NewCursor with mismatched RAM size must panic")
		}
	}()
	l.NewCursor(m2)
}

// FuzzDeltaRestore drives random restore/dirty sequences against replay
// references. It must never panic, and every restored state must hash
// identically to an uninterrupted run reaching the same cycle.
func FuzzDeltaRestore(f *testing.F) {
	f.Add(int64(1), uint8(4), []byte{0, 3, 9, 1})
	f.Add(int64(7), uint8(0), []byte{255, 128, 2})
	f.Add(int64(42), uint8(31), []byte{5})
	f.Fuzz(func(t *testing.T, seed int64, rawInterval uint8, ops []byte) {
		rng := rand.New(rand.NewSource(seed))
		ramSize := []int{16, 64, 256, 1024}[rng.Intn(4)]
		prog := buildRandomProgram(rng, ramSize, 60)
		interval := uint64(rawInterval%32) + 1

		golden, err := New(Config{RAMSize: ramSize}, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		l := runWithLadder(golden, interval, 1000)

		// Reference hash per rung, from replay-from-reset.
		refs := make([][32]byte, l.Rungs())
		for r := range refs {
			ref, err := New(Config{RAMSize: ramSize}, prog, nil)
			if err != nil {
				t.Fatal(err)
			}
			ref.Run(l.RungCycle(r))
			refs[r] = stateHash(ref)
		}

		worker, err := New(Config{RAMSize: ramSize}, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		cur := l.NewCursor(worker)
		if len(ops) > 64 {
			ops = ops[:64]
		}
		for i, b := range ops {
			r := int(b) % l.Rungs()
			cur.Restore(r)
			if stateHash(worker) != refs[r] {
				t.Fatalf("op %d: rung %d (cycle %d) diverges from replay", i, r, l.RungCycle(r))
			}
			if b%3 == 0 {
				if err := worker.FlipBit(uint64(b) % worker.RAMBits()); err != nil {
					t.Fatal(err)
				}
			}
			worker.Run(worker.Cycles() + uint64(b%7))
		}
	})
}
