package machine

import (
	"bytes"
	"math/rand"
	"testing"

	"faultspace/internal/isa"
)

// buildRandomProgram creates a terminating random program that exercises
// loads, stores, ALU ops and serial output over a tiny RAM.
func buildRandomProgram(rng *rand.Rand, ramSize int, n int) []isa.Instruction {
	prog := make([]isa.Instruction, 0, n+1)
	for i := 0; i < n; i++ {
		r := func() uint8 { return uint8(1 + rng.Intn(10)) }
		addr := int32(rng.Intn(ramSize))
		word := int32(rng.Intn(ramSize/4)) * 4
		switch rng.Intn(8) {
		case 0:
			prog = append(prog, isa.Instruction{Op: isa.OpLi, Rd: r(), Imm: int32(rng.Uint32())})
		case 1:
			prog = append(prog, isa.Instruction{Op: isa.OpAdd, Rd: r(), Rs: r(), Rt: r()})
		case 2:
			prog = append(prog, isa.Instruction{Op: isa.OpXor, Rd: r(), Rs: r(), Rt: r()})
		case 3:
			prog = append(prog, isa.Instruction{Op: isa.OpSb, Rt: r(), Rs: 0, Imm: addr})
		case 4:
			prog = append(prog, isa.Instruction{Op: isa.OpLb, Rd: r(), Rs: 0, Imm: addr})
		case 5:
			prog = append(prog, isa.Instruction{Op: isa.OpSw, Rt: r(), Rs: 0, Imm: word})
		case 6:
			prog = append(prog, isa.Instruction{Op: isa.OpLw, Rd: r(), Rs: 0, Imm: word})
		case 7:
			prog = append(prog, isa.Instruction{Op: isa.OpSb, Rt: r(), Rs: 0, Imm: int32(PortSerial)})
		}
	}
	prog = append(prog, isa.Instruction{Op: isa.OpHalt})
	return prog
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		prog := buildRandomProgram(rng, 32, 60)
		run := func() (*Machine, Status) {
			m, err := New(Config{RAMSize: 32}, prog, nil)
			if err != nil {
				t.Fatal(err)
			}
			return m, m.Run(1000)
		}
		m1, s1 := run()
		m2, s2 := run()
		if s1 != s2 || m1.Cycles() != m2.Cycles() || !bytes.Equal(m1.Serial(), m2.Serial()) {
			t.Fatalf("trial %d: nondeterministic run: %v/%v cycles %d/%d", trial, s1, s2, m1.Cycles(), m2.Cycles())
		}
		for r := 0; r < isa.NumRegs; r++ {
			if m1.Reg(r) != m2.Reg(r) {
				t.Fatalf("trial %d: register r%d differs", trial, r)
			}
		}
	}
}

// TestSnapshotRestoreEquivalence verifies that pausing at an arbitrary
// cycle, snapshotting, restoring into a different machine and resuming
// produces exactly the same final state as an uninterrupted run.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		prog := buildRandomProgram(rng, 32, 80)

		ref, err := New(Config{RAMSize: 32}, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		refStatus := ref.Run(1000)

		cut := uint64(rng.Intn(int(ref.Cycles()) + 1))
		m, err := New(Config{RAMSize: 32}, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		m.Run(cut)
		snap := m.Snapshot()

		other, err := New(Config{RAMSize: 32}, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		other.Restore(snap)
		gotStatus := other.Run(1000)

		if gotStatus != refStatus || other.Cycles() != ref.Cycles() {
			t.Fatalf("trial %d cut %d: status %v/%v cycles %d/%d",
				trial, cut, gotStatus, refStatus, other.Cycles(), ref.Cycles())
		}
		if !bytes.Equal(other.Serial(), ref.Serial()) {
			t.Fatalf("trial %d: serial differs after restore", trial)
		}
		for r := 0; r < isa.NumRegs; r++ {
			if other.Reg(r) != ref.Reg(r) {
				t.Fatalf("trial %d: register r%d differs", trial, r)
			}
		}
	}
}

func TestSnapshotIsolation(t *testing.T) {
	prog := []isa.Instruction{
		{Op: isa.OpSwi, Rs: 0, Imm: 0, Imm2: 1},
		{Op: isa.OpHalt},
	}
	m, err := New(Config{RAMSize: 8}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	m.Run(10) // writes RAM
	ram, _ := m.ReadRAM(0, 1)
	if ram[0] != 1 {
		t.Fatal("setup failed")
	}
	m.Restore(snap)
	ram, _ = m.ReadRAM(0, 1)
	if ram[0] != 0 {
		t.Error("snapshot must not alias live RAM")
	}
	if m.Status() != StatusRunning || m.Cycles() != 0 {
		t.Error("restore did not reset status/cycles")
	}
}

func TestCloneIndependence(t *testing.T) {
	prog := []isa.Instruction{
		{Op: isa.OpSwi, Rs: 0, Imm: 0, Imm2: 7},
		{Op: isa.OpHalt},
	}
	m, err := New(Config{RAMSize: 8}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	m.Run(10)
	ram, _ := c.ReadRAM(0, 1)
	if ram[0] != 0 {
		t.Error("clone shares RAM with original")
	}
	if st := c.Run(10); st != StatusHalted {
		t.Errorf("clone run: %v", st)
	}
}

func TestRestoreMismatchedRAMPanics(t *testing.T) {
	m1, _ := New(Config{RAMSize: 8}, []isa.Instruction{{Op: isa.OpHalt}}, nil)
	m2, _ := New(Config{RAMSize: 16}, []isa.Instruction{{Op: isa.OpHalt}}, nil)
	defer func() {
		if recover() == nil {
			t.Error("Restore with mismatched RAM size must panic")
		}
	}()
	m2.Restore(m1.Snapshot())
}
