// Package service implements the campaign-as-a-service layer: a
// long-lived, multi-tenant coordinator that accepts campaign submissions
// over HTTP, runs many campaigns concurrently against a shared worker
// fleet, and fronts everything with a persistent content-addressed
// result archive keyed by the campaign identity hash.
//
// The archive is what turns the identity hash into a cache key: all
// execution-side choices (strategy, placement, predecode, memoization)
// are provably outcome-invariant (DESIGN.md invariants 8–11) and
// excluded from the hash, and the scan-archive encoding is
// deterministic, so one identity maps to exactly one report byte
// sequence. A duplicate submission is therefore answered from the
// archive, byte-identical to a live scan, without touching the fleet
// (invariant 12).
package service

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"faultspace/internal/checkpoint"
)

// Archive entry framing, layered on the checkpoint CRC framing: a file
// is magic, one kindEntry frame (identity + total report length), then
// the report bytes chunked into kindData frames small enough for the
// frame-length sanity bound.
const (
	storeMagic = "FAVARCH1"
	kindEntry  = 'E'
	kindData   = 'D'
	// chunkSize keeps every data frame well under the checkpoint framing's
	// payload bound (1 MiB).
	chunkSize = 1 << 19
	// entryExt names archive entry files: <identity-hex>.far.
	entryExt = ".far"
)

// ErrEntry marks a structurally invalid archive entry (bad magic,
// malformed framing, length mismatch). CRC damage and truncation keep
// the checkpoint package's ErrCorrupt/ErrTruncated identity so torn
// tails remain distinguishable.
var ErrEntry = errors.New("service: malformed archive entry")

// EncodeEntry encodes one archive entry file: an identity-keyed report.
func EncodeEntry(id [32]byte, report []byte) []byte {
	p := make([]byte, 0, 48)
	p = append(p, id[:]...)
	p = binary.AppendUvarint(p, uint64(len(report)))
	out := append([]byte(storeMagic), checkpoint.AppendFrame(nil, kindEntry, p)...)
	for off := 0; off < len(report); off += chunkSize {
		end := off + chunkSize
		if end > len(report) {
			end = len(report)
		}
		out = checkpoint.AppendFrame(out, kindData, report[off:end])
	}
	return out
}

// DecodeEntry decodes an archive entry file, verifying magic, CRC frames
// and the announced report length. Truncation surfaces as
// checkpoint.ErrTruncated (a torn tail, recoverable by re-running the
// campaign), CRC damage as checkpoint.ErrCorrupt.
func DecodeEntry(data []byte) (id [32]byte, report []byte, err error) {
	if len(data) < len(storeMagic) {
		return id, nil, fmt.Errorf("%w: file cut before magic", checkpoint.ErrTruncated)
	}
	if string(data[:len(storeMagic)]) != storeMagic {
		return id, nil, fmt.Errorf("%w: bad magic", ErrEntry)
	}
	kind, payload, off, err := checkpoint.ReadFrame(data, len(storeMagic))
	if err != nil {
		return id, nil, err
	}
	if kind != kindEntry {
		return id, nil, fmt.Errorf("%w: first frame kind %q, want %q", ErrEntry, kind, byte(kindEntry))
	}
	if len(payload) < len(id) {
		return id, nil, fmt.Errorf("%w: entry header cut", ErrEntry)
	}
	copy(id[:], payload)
	total, n := binary.Uvarint(payload[len(id):])
	if n <= 0 || len(id)+n != len(payload) {
		return id, nil, fmt.Errorf("%w: bad report length", ErrEntry)
	}
	report = []byte{}
	for uint64(len(report)) < total {
		kind, payload, off, err = checkpoint.ReadFrame(data, off)
		if err != nil {
			return id, nil, err
		}
		if kind != kindData {
			return id, nil, fmt.Errorf("%w: frame kind %q inside report, want %q", ErrEntry, kind, byte(kindData))
		}
		if uint64(len(report))+uint64(len(payload)) > total {
			return id, nil, fmt.Errorf("%w: report overruns announced length %d", ErrEntry, total)
		}
		report = append(report, payload...)
	}
	if off != len(data) {
		return id, nil, fmt.Errorf("%w: %d trailing bytes after report", ErrEntry, len(data)-off)
	}
	return id, report, nil
}

// storeEntry tracks one archived report on disk.
type storeEntry struct {
	size int64
	used uint64 // recency sequence; smallest = least recently used
}

// Store is the on-disk content-addressed result archive: write-once
// entries keyed by campaign identity, with an LRU size cap. One file per
// entry keeps eviction a single unlink and bounds torn-tail damage to
// the entry being written when the process died.
type Store struct {
	dir string
	max int64 // size cap in bytes; 0 = unbounded

	mu      sync.Mutex
	entries map[[32]byte]*storeEntry
	size    int64
	seq     uint64
	evicted uint64
}

// OpenStore opens (creating if necessary) an archive directory and
// recovers its index. Entries that fail to decode — torn tails from a
// crash mid-write, CRC damage, foreign files with the entry extension —
// are deleted: the archive is a cache, and re-running a campaign is
// always sound, while serving a damaged report never is. maxBytes caps
// the total archive size; 0 means unbounded.
func OpenStore(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("service: archive: %w", err)
	}
	s := &Store{dir: dir, max: maxBytes, entries: make(map[[32]byte]*storeEntry)}

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: archive: %w", err)
	}
	type found struct {
		id    [32]byte
		size  int64
		mtime time.Time
	}
	var ok []found
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, entryExt) {
			continue
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("service: archive: %w", err)
		}
		id, _, derr := DecodeEntry(data)
		if derr != nil || name != hex.EncodeToString(id[:])+entryExt {
			// Torn tail, corruption or a misnamed entry: drop it so the
			// campaign can be re-run and re-archived cleanly.
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("service: archive: drop damaged entry: %w", err)
			}
			continue
		}
		info, err := de.Info()
		mtime := time.Time{}
		if err == nil {
			mtime = info.ModTime()
		}
		ok = append(ok, found{id: id, size: int64(len(data)), mtime: mtime})
	}
	// Seed recency from mtimes so LRU order survives restarts (Get
	// touches entries via Chtimes).
	sort.Slice(ok, func(i, j int) bool { return ok[i].mtime.Before(ok[j].mtime) })
	for _, f := range ok {
		s.seq++
		s.entries[f.id] = &storeEntry{size: f.size, used: s.seq}
		s.size += f.size
	}
	return s, nil
}

func (s *Store) path(id [32]byte) string {
	return filepath.Join(s.dir, hex.EncodeToString(id[:])+entryExt)
}

// Get returns the archived report for an identity, or (nil, false) on a
// miss. A hit refreshes the entry's LRU recency. An entry that fails to
// decode on read is dropped and reported as a miss.
func (s *Store) Get(id [32]byte) ([]byte, bool) {
	s.mu.Lock()
	e := s.entries[id]
	if e == nil {
		s.mu.Unlock()
		return nil, false
	}
	s.seq++
	e.used = s.seq
	s.mu.Unlock()

	path := s.path(id)
	data, err := os.ReadFile(path)
	if err == nil {
		var gotID [32]byte
		var report []byte
		if gotID, report, err = DecodeEntry(data); err == nil && gotID == id {
			// Touch the file so recency survives a restart; best effort.
			now := time.Now()
			os.Chtimes(path, now, now)
			return report, true
		}
	}
	s.mu.Lock()
	if cur := s.entries[id]; cur != nil {
		delete(s.entries, id)
		s.size -= cur.size
	}
	s.mu.Unlock()
	os.Remove(path)
	return nil, false
}

// Put archives a report under its identity. Entries are write-once: a
// Put for an existing identity is a no-op (the encoding is
// deterministic, so the bytes could not differ). The write is atomic —
// temp file, fsync, rename, directory fsync — so a crash leaves either
// no entry or a complete one; a torn temp file is swept by OpenStore.
func (s *Store) Put(id [32]byte, report []byte) error {
	s.mu.Lock()
	if s.entries[id] != nil {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	data := EncodeEntry(id, report)
	path := s.path(id)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return fmt.Errorf("service: archive: %w", err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: archive: %w", err)
	}
	syncDir(s.dir)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.entries[id] == nil {
		s.seq++
		s.entries[id] = &storeEntry{size: int64(len(data)), used: s.seq}
		s.size += int64(len(data))
	}
	s.evictLocked(id)
	return nil
}

// evictLocked unlinks least-recently-used entries until the archive fits
// the size cap again. The entry just written (keep) is exempt, so a
// single oversized report still gets archived rather than thrashing.
func (s *Store) evictLocked(keep [32]byte) {
	if s.max <= 0 {
		return
	}
	for s.size > s.max {
		var victim [32]byte
		var ve *storeEntry
		for id, e := range s.entries {
			if id == keep {
				continue
			}
			if ve == nil || e.used < ve.used {
				victim, ve = id, e
			}
		}
		if ve == nil {
			return
		}
		delete(s.entries, victim)
		s.size -= ve.size
		s.evicted++
		os.Remove(s.path(victim))
	}
}

// Len returns the number of archived reports.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Size returns the total archive size in bytes.
func (s *Store) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Evicted returns the number of entries evicted by the size cap since
// the store was opened.
func (s *Store) Evicted() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// Sync fsyncs the archive directory — the shutdown flush. Every Put is
// already individually durable; this only pins down the final directory
// state.
func (s *Store) Sync() {
	syncDir(s.dir)
}

// syncDir fsyncs a directory, best effort (not all platforms support it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
