package service

import (
	"bytes"
	"errors"
	"os"
	"testing"
	"time"

	"faultspace/internal/checkpoint"
)

func testID(b byte) [32]byte {
	var id [32]byte
	for i := range id {
		id[i] = b
	}
	return id
}

func TestEntryRoundtrip(t *testing.T) {
	reports := [][]byte{
		nil,
		[]byte("{}"),
		bytes.Repeat([]byte("x"), chunkSize-1),
		bytes.Repeat([]byte("y"), chunkSize),
		bytes.Repeat([]byte("z"), 3*chunkSize+17),
	}
	for i, report := range reports {
		id := testID(byte(i + 1))
		gotID, got, err := DecodeEntry(EncodeEntry(id, report))
		if err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
		if gotID != id {
			t.Fatalf("report %d: identity mangled", i)
		}
		if !bytes.Equal(got, report) {
			t.Fatalf("report %d: %d bytes back, want %d", i, len(got), len(report))
		}
	}
}

func TestEntryDamage(t *testing.T) {
	id := testID(7)
	good := EncodeEntry(id, bytes.Repeat([]byte("r"), 1000))

	if _, _, err := DecodeEntry(good[:len(good)-3]); !errors.Is(err, checkpoint.ErrTruncated) {
		t.Errorf("torn tail: got %v, want ErrTruncated", err)
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0x40
	if _, _, err := DecodeEntry(flipped); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Errorf("bit flip: got %v, want ErrCorrupt", err)
	}
	if _, _, err := DecodeEntry([]byte("NOTMAGIC" + "rest")); !errors.Is(err, ErrEntry) {
		t.Error("bad magic must be rejected")
	}
	if _, _, err := DecodeEntry(append(append([]byte(nil), good...), good...)); err == nil {
		t.Error("trailing bytes must be rejected")
	}
}

func TestStoreRoundtripAndRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	id := testID(1)
	report := []byte(`{"version":1}` + "\n")
	if err := st.Put(id, report); err != nil {
		t.Fatal(err)
	}
	// Write-once: a second Put is a no-op, not an error.
	if err := st.Put(id, report); err != nil {
		t.Fatal(err)
	}
	if got, ok := st.Get(id); !ok || !bytes.Equal(got, report) {
		t.Fatalf("Get = %q, %v", got, ok)
	}

	// Tear the entry's tail, as a crash mid-write would; reopening must
	// drop it so the campaign can be re-archived.
	path := st.path(id)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-4], 0o666); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Get(id); ok {
		t.Fatal("torn entry must not survive reopen")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("torn entry file must be deleted, stat: %v", err)
	}
	if st2.Len() != 0 {
		t.Fatalf("store has %d entries after recovery, want 0", st2.Len())
	}
}

func TestStoreLRUEviction(t *testing.T) {
	dir := t.TempDir()
	report := bytes.Repeat([]byte("r"), 256)
	one := EncodeEntry(testID(1), report)
	// Cap fits two entries but not three.
	st, err := OpenStore(dir, int64(2*len(one)))
	if err != nil {
		t.Fatal(err)
	}
	for b := byte(1); b <= 2; b++ {
		if err := st.Put(testID(b), report); err != nil {
			t.Fatal(err)
		}
	}
	// Touch entry 1 so entry 2 is the least recently used.
	if _, ok := st.Get(testID(1)); !ok {
		t.Fatal("entry 1 missing before eviction")
	}
	if err := st.Put(testID(3), report); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(testID(2)); ok {
		t.Error("LRU entry 2 must have been evicted")
	}
	for _, b := range []byte{1, 3} {
		if _, ok := st.Get(testID(b)); !ok {
			t.Errorf("entry %d must survive eviction", b)
		}
	}
	if got := st.Evicted(); got != 1 {
		t.Errorf("Evicted() = %d, want 1", got)
	}
	if st.Size() > int64(2*len(one)) {
		t.Errorf("size %d exceeds cap %d after eviction", st.Size(), 2*len(one))
	}
	// A single entry larger than the cap is still archived (no thrash),
	// evicting everything else.
	big := bytes.Repeat([]byte("B"), 3*len(one))
	if err := st.Put(testID(4), big); err != nil {
		t.Fatal(err)
	}
	if got, ok := st.Get(testID(4)); !ok || !bytes.Equal(got, big) {
		t.Error("oversized entry must be kept")
	}
}

func TestStoreRecencySurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	report := []byte("report")
	for b := byte(1); b <= 2; b++ {
		if err := st.Put(testID(b), report); err != nil {
			t.Fatal(err)
		}
	}
	// Make entry 1 clearly most recent on disk (mtime granularity).
	old := time.Now().Add(-time.Hour)
	os.Chtimes(st.path(testID(2)), old, old)

	st2, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	st2.mu.Lock()
	e1, e2 := st2.entries[testID(1)], st2.entries[testID(2)]
	st2.mu.Unlock()
	if e1 == nil || e2 == nil {
		t.Fatal("entries lost across reopen")
	}
	if e1.used <= e2.used {
		t.Error("mtime-seeded LRU order lost across reopen")
	}
}

// FuzzArchiveEntryDecode hammers the archive entry decoder with
// arbitrary bytes: it must never panic and never round-trip damaged
// input into a successful decode with a different identity or report.
func FuzzArchiveEntryDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(storeMagic))
	f.Add(EncodeEntry(testID(1), nil))
	f.Add(EncodeEntry(testID(2), []byte(`{"version":1}`)))
	f.Add(EncodeEntry(testID(3), bytes.Repeat([]byte("x"), 4096)))
	f.Fuzz(func(t *testing.T, data []byte) {
		id, report, err := DecodeEntry(data)
		if err != nil {
			return
		}
		// Whatever decoded must survive a re-encode/re-decode cycle
		// intact — the store's Put(Get(...)) path depends on it.
		id2, report2, err := DecodeEntry(EncodeEntry(id, report))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if id2 != id || !bytes.Equal(report2, report) {
			t.Fatal("entry mutated across encode/decode cycle")
		}
	})
}
