package service

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"faultspace/internal/telemetry"
	"faultspace/internal/telemetry/promtest"
)

// getServiceJSON decodes a JSON GET response into out.
func getServiceJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestServiceTraceAndMetrics runs one campaign through the service fleet
// and checks the full observability surface: the status carries the
// minted trace ID, /v1/campaigns/{id}/trace serves the merged timeline
// as Chrome trace-event JSON (and JSONL), and /metrics exposes the
// per-campaign counters under campaign and tenant labels through the
// grammar-validating Prometheus parser.
func TestServiceTraceAndMetrics(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t, "hi", 0)
	reg := telemetry.New()

	svc, srv := startService(t, Options{Dir: dir, Telemetry: reg})
	startFleet(t, svc, srv.URL, 1)
	st, resp := submitSpec(t, srv.URL, spec, "alice")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	st = waitDone(t, srv.URL, st.ID)
	if st.State != StateDone {
		t.Fatalf("state %s, want done", st.State)
	}
	if len(st.TraceID) != 32 {
		t.Fatalf("status trace id %q, want 32 hex chars", st.TraceID)
	}

	// The Chrome export carries the campaign's trace ID and a root span.
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Dur  float64
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	getServiceJSON(t, srv.URL+"/v1/campaigns/"+st.ID+"/trace", &doc)
	if doc.OtherData["traceId"] != st.TraceID {
		t.Errorf("trace document id %q, want %q", doc.OtherData["traceId"], st.TraceID)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name] = true
		}
	}
	for _, want := range []string{"campaign", "unit.lease", "unit.scan"} {
		if !names[want] {
			t.Errorf("campaign timeline has no %q span (have %v)", want, names)
		}
	}

	// The JSONL variant serves the same spans, stamped with the trace ID.
	resp2, err := http.Get(srv.URL + "/v1/campaigns/" + st.ID + "/trace?format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	lines := 0
	sc := bufio.NewScanner(resp2.Body)
	for sc.Scan() {
		var line struct {
			Trace string `json:"trace"`
			Name  string `json:"name"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("jsonl line %d: %v", lines+1, err)
		}
		if line.Trace != st.TraceID || line.Name == "" {
			t.Fatalf("jsonl line %d malformed: %+v", lines+1, line)
		}
		lines++
	}
	if lines == 0 {
		t.Error("jsonl trace stream is empty")
	}

	// /metrics: service-level and per-campaign series, all grammatical.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if got := mresp.Header.Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics Content-Type %q", got)
	}
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	mdoc, err := promtest.Validate(body)
	if err != nil {
		t.Fatalf("/metrics does not parse as Prometheus text format: %v\n%s", err, body)
	}
	found := false
	for _, s := range mdoc.Samples {
		if s.Name == "faultspace_scan_experiments_total" &&
			s.Labels["campaign"] == st.ID[:12] && s.Labels["tenant"] == "alice" {
			found = true
			if s.Value != float64(spec.Classes) {
				t.Errorf("campaign experiments series = %g, want %d", s.Value, spec.Classes)
			}
		}
	}
	if !found {
		t.Errorf("no faultspace_scan_experiments_total{campaign=%q,tenant=\"alice\"} series in /metrics", st.ID[:12])
	}
	svc.Shutdown()

	// An archive hit executed nothing, so it has no timeline: 404.
	svc2, srv2 := startService(t, Options{Dir: dir})
	st2, resp3 := submitSpec(t, srv2.URL, spec, "bob")
	if resp3.StatusCode != http.StatusOK || !st2.Cached {
		t.Fatalf("resubmit: HTTP %d cached %v, want archive hit", resp3.StatusCode, st2.Cached)
	}
	tr, err := http.Get(srv2.URL + "/v1/campaigns/" + st2.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	tr.Body.Close()
	if tr.StatusCode != http.StatusNotFound {
		t.Errorf("trace of a cached campaign: HTTP %d, want 404", tr.StatusCode)
	}
	svc2.Shutdown()
}

// TestStarvedTenantWatchdog pins the service-side watchdog: with no
// fleet attached and one active slot taken, a queued campaign past
// StarveAfter marks its tenant starved in /v1/status, raises the
// fleet.starved_tenants gauge, and emits exactly one deduplicated
// trace event no matter how often status is polled.
func TestStarvedTenantWatchdog(t *testing.T) {
	reg := telemetry.New()
	reg.EnableTrace(64)
	_, srv := startService(t, Options{
		MaxActive:   1,
		StarveAfter: 20 * time.Millisecond,
		Telemetry:   reg,
	})
	// No fleet: the first campaign occupies the active slot forever, the
	// second queues behind it.
	_, resp1 := submitSpec(t, srv.URL, testSpec(t, "hi", 2), "alice")
	stB, resp2 := submitSpec(t, srv.URL, testSpec(t, "hi", 3), "bob")
	if resp1.StatusCode != http.StatusAccepted || resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("submits: HTTP %d, %d", resp1.StatusCode, resp2.StatusCode)
	}
	time.Sleep(40 * time.Millisecond)

	var status struct {
		Starved []StarvedTenant `json:"starvedTenants"`
	}
	getServiceJSON(t, srv.URL+"/v1/status", &status)
	var verdict *StarvedTenant
	for i := range status.Starved {
		if status.Starved[i].Tenant == "bob" {
			verdict = &status.Starved[i]
		}
	}
	if verdict == nil {
		t.Fatalf("tenant bob not flagged; starved = %+v", status.Starved)
	}
	if verdict.CampaignID != stB.ID {
		t.Errorf("verdict names campaign %s, want %s", verdict.CampaignID, stB.ID)
	}
	if verdict.WaitingMs < 20 {
		t.Errorf("verdict wait %.1fms, want >= the 20ms threshold", verdict.WaitingMs)
	}
	if got := reg.Snapshot().Gauges["fleet.starved_tenants"]; got != 1 {
		t.Errorf("fleet.starved_tenants gauge = %d, want 1", got)
	}

	// Polling again re-reports the verdict but records no second event.
	getServiceJSON(t, srv.URL+"/v1/status", &status)
	events := 0
	for _, e := range reg.Tracer().Events() {
		if e.Name == "watchdog.starved_tenant" {
			events++
		}
	}
	if events != 1 {
		t.Errorf("watchdog.starved_tenant trace events = %d, want exactly 1", events)
	}

	// Cancelling the queued campaign clears the verdict and the gauge.
	cresp, err := http.Post(srv.URL+"/v1/campaigns/"+stB.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	status.Starved = nil
	getServiceJSON(t, srv.URL+"/v1/status", &status)
	if len(status.Starved) != 0 {
		t.Errorf("starved tenants after cancel = %+v, want none", status.Starved)
	}
	if got := reg.Snapshot().Gauges["fleet.starved_tenants"]; got != 0 {
		t.Errorf("fleet.starved_tenants gauge = %d after cancel, want 0", got)
	}
}
