package service

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"faultspace/internal/archive"
	"faultspace/internal/checkpoint"
	"faultspace/internal/cluster"
	"faultspace/internal/telemetry"
)

// Options parameterizes a Service.
type Options struct {
	// Dir is the archive directory for the content-addressed result
	// store. Empty disables persistence (results are kept in memory for
	// the life of the process only).
	Dir string
	// MaxArchiveBytes caps the on-disk archive size; least-recently-used
	// entries are evicted beyond it. 0 = unbounded.
	MaxArchiveBytes int64
	// MaxActive bounds the campaigns running concurrently on the shared
	// fleet (default 2). Further admitted campaigns queue.
	MaxActive int
	// MaxQueued bounds the campaigns waiting across all tenants (default
	// 16). Beyond it submissions are rejected with 429 and a Retry-After
	// hint — the backpressure signal.
	MaxQueued int
	// UnitSize and LeaseTTL parameterize each campaign's coordinator
	// (defaults cluster.DefaultUnitSize / cluster.DefaultLeaseTTL).
	UnitSize int
	LeaseTTL time.Duration
	// RetryAfter is the client back-off hint attached to 429/503
	// responses (default 1s).
	RetryAfter time.Duration
	// Telemetry, when non-nil, receives service-level metrics (queue
	// depth, active campaigns, archive hit/miss counters) and campaign
	// lifecycle trace events, and enables /debug/telemetry.
	Telemetry *telemetry.Registry
	// StarveAfter is the starved-tenant watchdog threshold: a campaign
	// still queued after this long marks its tenant starved in /v1/status
	// and the fleet.starved_tenants gauge (default DefaultStarveAfter).
	StarveAfter time.Duration
	// Logf, when non-nil, receives service life-cycle log lines.
	Logf func(format string, args ...any)
}

// Defaults for Options.
const (
	DefaultMaxActive   = 2
	DefaultMaxQueued   = 16
	DefaultRetryAfter  = time.Second
	DefaultStarveAfter = 2 * time.Minute
)

func (o Options) withDefaults() Options {
	if o.MaxActive == 0 {
		o.MaxActive = DefaultMaxActive
	}
	if o.MaxQueued == 0 {
		o.MaxQueued = DefaultMaxQueued
	}
	if o.UnitSize == 0 {
		o.UnitSize = cluster.DefaultUnitSize
	}
	if o.LeaseTTL == 0 {
		o.LeaseTTL = cluster.DefaultLeaseTTL
	}
	if o.RetryAfter == 0 {
		o.RetryAfter = DefaultRetryAfter
	}
	if o.StarveAfter == 0 {
		o.StarveAfter = DefaultStarveAfter
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Campaign lifecycle states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateCancelled = "cancelled"
	StateFailed    = "failed"
)

// entry is one submitted campaign's service-side state, guarded by the
// service mutex except where noted.
type entry struct {
	id     [32]byte
	idHex  string
	tenant string
	spec   cluster.Spec
	// specBytes is the encoded handshake frame handed to fleet workers;
	// set when the campaign starts running (it carries the service's
	// LeaseTTL).
	specBytes []byte

	state  string
	cached bool   // done without execution: served from the archive
	errMsg string // for StateFailed
	// submitted anchors the starved-tenant watchdog; starveFlagged
	// dedupes its trace event.
	submitted     time.Time
	starveFlagged bool

	// reg is the campaign's own telemetry registry: its coordinator's
	// cluster.* counters and — for in-process fleet workers — its
	// engine's scan.*, memo.* and predecode counters land here,
	// isolated from every other campaign in the process.
	reg   *telemetry.Registry
	coord *cluster.Coordinator // nil until running; stays set after
	// intr interrupts the campaign (cancel endpoint or service drain).
	intr     chan struct{}
	intrOnce sync.Once
	report   []byte        // archive.Encode bytes, set when done
	done     chan struct{} // closed on done/cancelled/failed
}

func (e *entry) interrupt() {
	e.intrOnce.Do(func() { close(e.intr) })
}

// CampaignStatus is the JSON status of one campaign, served by the
// lifecycle endpoints and embedded in /v1/status.
type CampaignStatus struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Tenant string `json:"tenant"`
	State  string `json:"state"`
	// Cached reports that the campaign completed without executing a
	// single experiment: its report came from the result archive.
	Cached bool   `json:"cached,omitempty"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
	// Objective is the campaign's attacker-objective name ("" = none);
	// Attacks counts classes whose outcome satisfied it so far.
	Objective string `json:"objective,omitempty"`
	Attacks   uint64 `json:"attacks,omitempty"`
	Error     string `json:"error,omitempty"`
	// TraceID is the campaign's 128-bit trace ID (hex) when span tracing
	// is on — the correlation key for /v1/campaigns/<id>/trace.
	TraceID string `json:"traceId,omitempty"`
	// Stragglers holds the campaign coordinator's current watchdog
	// verdicts (running campaigns only).
	Stragglers []cluster.Straggler `json:"stragglers,omitempty"`
	// Telemetry is the campaign's own registry snapshot — per-campaign
	// cluster and engine counters, not process globals.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// Service is a long-lived multi-campaign coordinator with per-tenant
// fair scheduling and a content-addressed result archive. It is an
// http.Handler factory (Handler) speaking both the campaign lifecycle
// API (/v1/campaigns...) and the worker protocol (/v1/handshake,
// /v1/lease, /v1/submit, ...), routing worker traffic to the right
// campaign's coordinator by the identity prefix every wire message
// carries.
type Service struct {
	opts  Options
	store *Store

	mu        sync.Mutex
	campaigns map[[32]byte]*entry
	order     []*entry            // submission order, for listing
	queues    map[string][]*entry // per-tenant FIFO of queued campaigns
	ring      []string            // round-robin tenant order
	ringPos   int
	queued    int
	active    []*entry // running campaigns
	fleetPos  int      // round-robin position for fleet assignment
	draining  bool
	wg        sync.WaitGroup

	telQueueDepth *telemetry.Gauge
	telActive     *telemetry.Gauge
	telSubmitted  *telemetry.Counter
	telHits       *telemetry.Counter
	telMisses     *telemetry.Counter
	telStarved    *telemetry.Gauge
}

// New opens the result archive and returns a ready-to-serve Service.
func New(opts Options) (*Service, error) {
	opts = opts.withDefaults()
	s := &Service{
		opts:      opts,
		campaigns: make(map[[32]byte]*entry),
		queues:    make(map[string][]*entry),
	}
	if opts.Dir != "" {
		st, err := OpenStore(opts.Dir, opts.MaxArchiveBytes)
		if err != nil {
			return nil, err
		}
		s.store = st
	}
	reg := opts.Telemetry
	s.telQueueDepth = reg.Gauge("service.queue_depth")
	s.telActive = reg.Gauge("service.active_campaigns")
	s.telSubmitted = reg.Counter("service.submissions")
	s.telHits = reg.Counter("service.archive_hits")
	s.telMisses = reg.Counter("service.archive_misses")
	s.telStarved = reg.Gauge("fleet.starved_tenants")
	return s, nil
}

// Archive exposes the result store (nil when persistence is disabled).
func (s *Service) Archive() *Store { return s.store }

// CampaignTelemetry returns the campaign's own telemetry registry (nil
// for unknown identities) — the FleetOptions.TelemetryFor hook for
// in-process fleet workers, so their engine counters land in the right
// campaign's registry.
func (s *Service) CampaignTelemetry(id [32]byte) *telemetry.Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.campaigns[id]; e != nil {
		return e.reg
	}
	return nil
}

// Handler returns the service's HTTP handler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/campaigns", s.handleCampaigns)
	mux.HandleFunc("/v1/campaigns/", s.handleCampaign)
	mux.HandleFunc("/v1/handshake", s.handleHandshake)
	mux.HandleFunc("/v1/lease", s.routeWorker)
	mux.HandleFunc("/v1/submit", s.routeWorker)
	mux.HandleFunc("/v1/heartbeat", s.routeWorker)
	mux.HandleFunc("/v1/leave", s.routeWorker)
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/metrics", s.handleMetrics)
	if s.opts.Telemetry != nil {
		mux.HandleFunc("/debug/telemetry", s.handleTelemetry)
	}
	return mux
}

// --- lifecycle endpoints -------------------------------------------------

// maxBody mirrors the cluster protocol's request body bound.
const maxBody = 16 << 20

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		http.Error(w, "service: read: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if len(body) > maxBody {
		http.Error(w, "service: request too large", http.StatusBadRequest)
		return nil, false
	}
	return body, true
}

func (s *Service) retryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(int((s.opts.RetryAfter+time.Second-1)/time.Second)))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// handleCampaigns serves POST /v1/campaigns (submit) and GET
// /v1/campaigns (list).
func (s *Service) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.submit(w, r)
	case http.MethodGet:
		s.list(w)
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "service: GET or POST required", http.StatusMethodNotAllowed)
	}
}

// submit admits one campaign: the body is an encoded cluster spec frame
// (cluster.EncodeSpec), the tenant comes from the ?tenant= query
// parameter. Identical re-submissions are idempotent; a submission whose
// identity is archived completes instantly without touching the fleet.
func (s *Service) submit(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	spec, err := cluster.DecodeSpec(body)
	if err != nil {
		http.Error(w, "service: spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	if spec.Proto != cluster.ProtoVersion {
		http.Error(w, fmt.Sprintf("service: protocol %d not supported", spec.Proto), http.StatusBadRequest)
		return
	}
	tenant := r.URL.Query().Get("tenant")
	if tenant == "" {
		tenant = "default"
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.retryAfter(w)
		http.Error(w, "service: draining", http.StatusServiceUnavailable)
		return
	}
	s.telSubmitted.Inc()
	if e := s.campaigns[spec.Identity]; e != nil {
		// Idempotent: the campaign is already known, whatever its state.
		writeJSON(w, http.StatusOK, s.statusLocked(e, false))
		return
	}
	// Submissions minted before span tracing (or with a degraded zero ID)
	// get a trace ID here: the service is the campaign's entry point, so
	// this is where the fleet-wide correlation key is fixed. The ID never
	// feeds the identity hash (invariant 15), so stamping it cannot
	// change which archive entry the campaign maps to.
	if spec.TraceID.IsZero() {
		spec.TraceID = telemetry.NewTraceID()
	}
	e := &entry{
		id:        spec.Identity,
		idHex:     hex.EncodeToString(spec.Identity[:]),
		tenant:    tenant,
		spec:      spec,
		state:     StateQueued,
		reg:       telemetry.New(),
		intr:      make(chan struct{}),
		done:      make(chan struct{}),
		submitted: time.Now(),
	}
	if s.store != nil {
		if report, hit := s.store.Get(spec.Identity); hit {
			// Archive hit: the identity pins down the report bytes
			// (invariant 12), so the campaign is already done.
			e.state = StateDone
			e.cached = true
			e.report = report
			close(e.done)
			s.campaigns[e.id] = e
			s.order = append(s.order, e)
			s.telHits.Inc()
			s.opts.Telemetry.Tracef("campaign.cached", "%s (%s) served from archive", e.spec.Name, e.idHex[:12])
			s.opts.Logf("service: campaign %s (%s) served from archive", e.spec.Name, e.idHex[:12])
			writeJSON(w, http.StatusOK, s.statusLocked(e, false))
			return
		}
		s.telMisses.Inc()
	}
	if s.queued >= s.opts.MaxQueued {
		s.retryAfter(w)
		http.Error(w, "service: campaign queue full", http.StatusTooManyRequests)
		return
	}
	s.campaigns[e.id] = e
	s.order = append(s.order, e)
	if _, known := s.queues[tenant]; !known {
		s.ring = append(s.ring, tenant)
	}
	s.queues[tenant] = append(s.queues[tenant], e)
	s.queued++
	s.telQueueDepth.Set(int64(s.queued))
	s.opts.Telemetry.Tracef("campaign.submitted", "%s (%s) by tenant %s", e.spec.Name, e.idHex[:12], tenant)
	s.opts.Logf("service: campaign %s (%s) submitted by tenant %s", e.spec.Name, e.idHex[:12], tenant)
	s.scheduleLocked()
	writeJSON(w, http.StatusAccepted, s.statusLocked(e, false))
}

func (s *Service) list(w http.ResponseWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CampaignStatus, 0, len(s.order))
	for _, e := range s.order {
		out = append(out, s.statusLocked(e, false))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCampaign serves the per-campaign subpaths:
// GET /v1/campaigns/<id>, GET /v1/campaigns/<id>/report and
// POST /v1/campaigns/<id>/cancel.
func (s *Service) handleCampaign(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/campaigns/")
	idHex, verb, _ := strings.Cut(rest, "/")
	raw, err := hex.DecodeString(idHex)
	var id [32]byte
	if err != nil || len(raw) != len(id) {
		http.Error(w, "service: malformed campaign id", http.StatusBadRequest)
		return
	}
	copy(id[:], raw)

	s.mu.Lock()
	e := s.campaigns[id]
	s.mu.Unlock()
	if e == nil {
		http.Error(w, "service: unknown campaign", http.StatusNotFound)
		return
	}
	switch verb {
	case "":
		if !cluster.RequireMethod(w, r, http.MethodGet) {
			return
		}
		s.mu.Lock()
		st := s.statusLocked(e, true)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
	case "report":
		if !cluster.RequireMethod(w, r, http.MethodGet) {
			return
		}
		s.mu.Lock()
		state, report := e.state, e.report
		s.mu.Unlock()
		if state != StateDone {
			s.retryAfter(w)
			http.Error(w, "service: campaign not complete ("+state+")", http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(report)
	case "cancel":
		if !cluster.RequireMethod(w, r, http.MethodPost) {
			return
		}
		s.cancel(w, e)
	case "trace":
		if !cluster.RequireMethod(w, r, http.MethodGet) {
			return
		}
		s.mu.Lock()
		coord := e.coord
		s.mu.Unlock()
		if coord == nil || coord.TraceID().IsZero() {
			// Cached or never-started campaigns executed nothing, so there
			// is no timeline to serve.
			http.Error(w, "service: no trace for this campaign", http.StatusNotFound)
			return
		}
		spans, _ := coord.Timeline()
		if r.URL.Query().Get("format") == "jsonl" {
			w.Header().Set("Content-Type", "application/jsonl")
			telemetry.WriteSpansJSONL(w, coord.TraceID(), spans)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		telemetry.WriteChromeTrace(w, coord.TraceID(), spans)
	default:
		http.Error(w, "service: unknown campaign endpoint", http.StatusNotFound)
	}
}

func (s *Service) cancel(w http.ResponseWriter, e *entry) {
	s.mu.Lock()
	switch e.state {
	case StateQueued:
		q := s.queues[e.tenant]
		for i, qe := range q {
			if qe == e {
				s.queues[e.tenant] = append(q[:i], q[i+1:]...)
				break
			}
		}
		s.queued--
		s.telQueueDepth.Set(int64(s.queued))
		s.finishLocked(e, StateCancelled, "cancelled before start")
	case StateRunning:
		// The coordinator answers the fleet with UnitShutdown and Wait
		// returns ErrInterrupted; runCampaign finishes the entry.
		e.interrupt()
	}
	st := s.statusLocked(e, false)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// statusLocked renders a campaign's status; withTelemetry attaches the
// campaign's registry snapshot.
func (s *Service) statusLocked(e *entry, withTelemetry bool) CampaignStatus {
	st := CampaignStatus{
		ID:        e.idHex,
		Name:      e.spec.Name,
		Tenant:    e.tenant,
		State:     e.state,
		Cached:    e.cached,
		Total:     int(e.spec.Classes),
		Objective: e.spec.Objective,
		Error:     e.errMsg,
	}
	if !e.spec.TraceID.IsZero() {
		st.TraceID = e.spec.TraceID.String()
	}
	switch {
	case e.state == StateDone:
		st.Done = st.Total
		if e.coord != nil {
			st.Attacks = e.coord.Snapshot().Attacks
		}
	case e.coord != nil:
		snap := e.coord.Snapshot()
		st.Done = snap.Done
		st.Attacks = snap.Attacks
		st.Stragglers = snap.Stragglers
	}
	if withTelemetry {
		snap := e.reg.Snapshot()
		st.Telemetry = &snap
	}
	return st
}

// --- scheduling ----------------------------------------------------------

// scheduleLocked starts queued campaigns while capacity lasts, visiting
// tenants round-robin so no tenant's backlog starves another's.
func (s *Service) scheduleLocked() {
	if s.draining {
		return
	}
	for len(s.active) < s.opts.MaxActive && s.queued > 0 {
		var e *entry
		for range s.ring {
			tenant := s.ring[s.ringPos%len(s.ring)]
			s.ringPos++
			if q := s.queues[tenant]; len(q) > 0 {
				e = q[0]
				s.queues[tenant] = q[1:]
				break
			}
		}
		if e == nil {
			return
		}
		s.queued--
		s.telQueueDepth.Set(int64(s.queued))
		e.state = StateRunning
		s.active = append(s.active, e)
		s.telActive.Set(int64(len(s.active)))
		s.wg.Add(1)
		go s.runCampaign(e)
	}
}

// runCampaign rebuilds the campaign from its spec (verifying the
// identity — a spec whose content does not hash to its announced
// identity fails here and can never poison the archive), runs it on the
// shared fleet through a dedicated coordinator, and archives the report.
func (s *Service) runCampaign(e *entry) {
	defer s.wg.Done()
	t, g, fs, cfg, err := cluster.BuildCampaign(e.spec)
	if err != nil {
		s.mu.Lock()
		s.finishLocked(e, StateFailed, err.Error())
		s.retireLocked(e)
		s.mu.Unlock()
		return
	}
	coord, err := cluster.NewCoordinator(t, g, fs, cfg, cluster.Options{
		UnitSize:        s.opts.UnitSize,
		LeaseTTL:        s.opts.LeaseTTL,
		MaxGoldenCycles: e.spec.MaxGoldenCycles,
		Interrupt:       e.intr,
		Telemetry:       e.reg,
		// The submission's trace ID flows through to the coordinator so
		// every fleet span of this campaign correlates with it.
		TraceID: e.spec.TraceID,
	}, nil)
	if err != nil {
		s.mu.Lock()
		s.finishLocked(e, StateFailed, err.Error())
		s.retireLocked(e)
		s.mu.Unlock()
		return
	}
	spec := e.spec
	spec.LeaseTTL = s.opts.LeaseTTL

	s.mu.Lock()
	e.coord = coord
	e.specBytes = cluster.EncodeSpec(spec)
	s.mu.Unlock()
	s.opts.Telemetry.Tracef("campaign.started", "%s (%s)", e.spec.Name, e.idHex[:12])
	s.opts.Logf("service: campaign %s (%s) started", e.spec.Name, e.idHex[:12])

	res, err := coord.Wait()
	if err != nil {
		// Interrupted: cancel endpoint or service drain. Keep the partial
		// coordinator state for late worker traffic; archive nothing.
		s.drainCoordinator(coord)
		s.mu.Lock()
		s.finishLocked(e, StateCancelled, "interrupted")
		s.retireLocked(e)
		s.mu.Unlock()
		return
	}
	var buf bytes.Buffer
	if err := archive.Encode(&buf, res); err == nil {
		if s.store != nil {
			if perr := s.store.Put(e.id, buf.Bytes()); perr != nil {
				s.opts.Logf("service: archive %s: %v", e.idHex[:12], perr)
			}
		}
	} else {
		s.mu.Lock()
		s.finishLocked(e, StateFailed, err.Error())
		s.retireLocked(e)
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	e.report = buf.Bytes()
	s.finishLocked(e, StateDone, "")
	s.retireLocked(e)
	s.mu.Unlock()
}

// finishLocked moves a campaign to a terminal state.
func (s *Service) finishLocked(e *entry, state, detail string) {
	e.state = state
	if state == StateFailed {
		e.errMsg = detail
	}
	close(e.done)
	s.opts.Telemetry.Tracef("campaign."+state, "%s (%s) %s", e.spec.Name, e.idHex[:12], detail)
	s.opts.Logf("service: campaign %s (%s) %s %s", e.spec.Name, e.idHex[:12], state, detail)
}

// retireLocked removes a campaign from the active set and schedules the
// next queued one.
func (s *Service) retireLocked(e *entry) {
	for i, a := range s.active {
		if a == e {
			s.active = append(s.active[:i], s.active[i+1:]...)
			break
		}
	}
	s.telActive.Set(int64(len(s.active)))
	s.scheduleLocked()
}

// drainCoordinator gives the fleet a bounded grace period to see the
// shutdown answer and deregister before the coordinator is sealed.
func (s *Service) drainCoordinator(c *cluster.Coordinator) {
	deadline := time.Now().Add(2 * s.opts.LeaseTTL)
	for !c.Drained() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	c.Seal()
}

// --- worker protocol -----------------------------------------------------

// handleHandshake admits workers. An empty body is the single-campaign
// protocol of cluster.Join: the reply is the spec of one running
// campaign (chosen round-robin), or 503 + Retry-After when none is
// running — the worker's bounded retry loop absorbs the wait. A body
// carrying a FleetHello frame gets a ServiceHello back, which can also
// say "wait" or "shutdown" explicitly (JoinFleet's protocol).
func (s *Service) handleHandshake(w http.ResponseWriter, r *http.Request) {
	if !cluster.RequireMethod(w, r, http.MethodPost) {
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	if len(body) == 0 {
		spec, _ := s.pickCampaign()
		if spec == nil {
			s.retryAfter(w)
			http.Error(w, "service: no campaign running", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(spec)
		return
	}
	hello, err := DecodeFleetHello(body)
	if err != nil {
		http.Error(w, "service: handshake: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp := ServiceHello{Status: FleetWait}
	spec, draining := s.pickCampaign()
	switch {
	case draining:
		resp.Status = FleetShutdown
	case spec != nil:
		resp.Status = FleetGranted
		resp.Spec = spec
	}
	s.opts.Telemetry.Tracef("fleet.handshake", "worker %s: status %d", hello.WorkerID, resp.Status)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(EncodeServiceHello(resp))
}

// pickCampaign chooses a running campaign round-robin for a handshaking
// worker, spreading the fleet across concurrent campaigns.
func (s *Service) pickCampaign() (spec []byte, draining bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, true
	}
	for range s.active {
		e := s.active[s.fleetPos%len(s.active)]
		s.fleetPos++
		if e.specBytes != nil {
			return e.specBytes, false
		}
	}
	return nil, false
}

// routeWorker dispatches a worker-protocol request to the right
// campaign's coordinator. Every post-handshake message carries the
// campaign identity as its payload prefix, so the service peeks it
// without fully decoding and replays the request against the owning
// coordinator. Campaigns that never ran a coordinator (archive hits,
// early failures) synthesize the protocol answers workers expect.
func (s *Service) routeWorker(w http.ResponseWriter, r *http.Request) {
	if !cluster.RequireMethod(w, r, http.MethodPost) {
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	id, ok := peekIdentity(body)
	if !ok {
		http.Error(w, "service: malformed worker message", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	e := s.campaigns[id]
	var coord *cluster.Coordinator
	var state string
	if e != nil {
		coord, state = e.coord, e.state
	}
	s.mu.Unlock()
	if e == nil {
		http.Error(w, "service: campaign identity mismatch (unknown campaign)", http.StatusConflict)
		return
	}
	if coord != nil {
		r.Body = io.NopCloser(bytes.NewReader(body))
		coord.Handler().ServeHTTP(w, r)
		return
	}
	// No coordinator: synthesize the answer a finished (or not yet
	// started) campaign owes the worker.
	if strings.HasSuffix(r.URL.Path, "/lease") {
		u := cluster.WorkUnit{}
		switch state {
		case StateQueued:
			u.Status = cluster.UnitWait
		case StateDone:
			u.Status = cluster.UnitDone
		default:
			u.Status = cluster.UnitShutdown
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(cluster.EncodeWorkUnit(u))
		return
	}
	w.WriteHeader(http.StatusOK)
}

// peekIdentity extracts the identity prefix every post-handshake worker
// message payload starts with.
func peekIdentity(body []byte) ([32]byte, bool) {
	var id [32]byte
	_, payload, _, err := checkpoint.ReadFrame(body, 0)
	if err != nil || len(payload) < len(id) {
		return id, false
	}
	copy(id[:], payload)
	return id, true
}

// --- observability -------------------------------------------------------

// StarvedTenant is one starved-tenant watchdog verdict: a campaign
// still queued after Options.StarveAfter. Complements the per-campaign
// straggler watchdog (cluster.Straggler) one level up: stragglers catch
// a stalling fleet member, starvation catches a tenant whose work never
// reaches the fleet at all.
type StarvedTenant struct {
	Tenant     string  `json:"tenant"`
	CampaignID string  `json:"campaignId"`
	WaitingMs  float64 `json:"waitingMs"`
}

// starvedLocked computes the current starvation verdicts, emits one
// trace event per newly starved campaign and keeps the
// fleet.starved_tenants gauge current.
func (s *Service) starvedLocked() []StarvedTenant {
	now := time.Now()
	var out []StarvedTenant
	tenants := make(map[string]bool)
	for _, tenant := range s.ring {
		for _, e := range s.queues[tenant] {
			wait := now.Sub(e.submitted)
			if wait <= s.opts.StarveAfter {
				continue
			}
			out = append(out, StarvedTenant{
				Tenant:     tenant,
				CampaignID: e.idHex,
				WaitingMs:  float64(wait) / float64(time.Millisecond),
			})
			tenants[tenant] = true
			if !e.starveFlagged {
				e.starveFlagged = true
				s.opts.Telemetry.Tracef("watchdog.starved_tenant", "%s: campaign %s queued %s",
					tenant, e.idHex[:12], wait.Round(time.Second))
			}
		}
	}
	s.telStarved.Set(int64(len(tenants)))
	return out
}

// handleMetrics serves the Prometheus text exposition: the service
// registry plus one labelled set per campaign (campaign id prefix and
// tenant), so per-campaign scan/cluster counters stay distinguishable
// after scraping.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !cluster.RequireMethod(w, r, http.MethodGet) {
		return
	}
	var sets []telemetry.MetricSet
	if s.opts.Telemetry != nil {
		sets = append(sets, telemetry.MetricSet{Snap: s.opts.Telemetry.Snapshot()})
	}
	s.mu.Lock()
	for _, e := range s.order {
		sets = append(sets, telemetry.MetricSet{
			Labels: map[string]string{"campaign": e.idHex[:12], "tenant": e.tenant},
			Snap:   e.reg.Snapshot(),
		})
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.WritePrometheusSets(w, sets)
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if !cluster.RequireMethod(w, r, http.MethodGet) {
		return
	}
	s.mu.Lock()
	resp := struct {
		Campaigns []CampaignStatus `json:"campaigns"`
		Queued    int              `json:"queued"`
		Active    int              `json:"active"`
		Draining  bool             `json:"draining,omitempty"`
		// Starved holds the starved-tenant watchdog verdicts: queued
		// campaigns waiting longer than Options.StarveAfter.
		Starved []StarvedTenant `json:"starvedTenants,omitempty"`
		Archive *struct {
			Entries int    `json:"entries"`
			Bytes   int64  `json:"bytes"`
			Evicted uint64 `json:"evicted"`
		} `json:"archive,omitempty"`
		Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
	}{
		Queued:   s.queued,
		Active:   len(s.active),
		Draining: s.draining,
	}
	resp.Starved = s.starvedLocked()
	for _, e := range s.order {
		// Per-campaign snapshots keep every campaign's scan/memo/cluster
		// counters isolated — /v1/status never mixes campaigns into one
		// process-global number.
		resp.Campaigns = append(resp.Campaigns, s.statusLocked(e, true))
	}
	s.mu.Unlock()
	sort.Slice(resp.Campaigns, func(i, j int) bool { return resp.Campaigns[i].ID < resp.Campaigns[j].ID })
	if s.store != nil {
		resp.Archive = &struct {
			Entries int    `json:"entries"`
			Bytes   int64  `json:"bytes"`
			Evicted uint64 `json:"evicted"`
		}{Entries: s.store.Len(), Bytes: s.store.Size(), Evicted: s.store.Evicted()}
	}
	if s.opts.Telemetry != nil {
		snap := s.opts.Telemetry.Snapshot()
		resp.Telemetry = &snap
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	if !cluster.RequireMethod(w, r, http.MethodGet) {
		return
	}
	reg := s.opts.Telemetry
	resp := struct {
		Telemetry      telemetry.Snapshot            `json:"telemetry"`
		Campaigns      map[string]telemetry.Snapshot `json:"campaigns,omitempty"`
		Events         []telemetry.Event             `json:"events,omitempty"`
		EventsDropped  uint64                        `json:"events_dropped,omitempty"`
		EventsCapacity int                           `json:"events_capacity,omitempty"`
	}{Telemetry: reg.Snapshot()}
	s.mu.Lock()
	if len(s.order) > 0 {
		resp.Campaigns = make(map[string]telemetry.Snapshot, len(s.order))
		for _, e := range s.order {
			resp.Campaigns[e.idHex] = e.reg.Snapshot()
		}
	}
	s.mu.Unlock()
	if tr := reg.Tracer(); tr != nil {
		resp.Events = tr.Events()
		resp.EventsDropped = tr.Dropped()
		resp.EventsCapacity = tr.Cap()
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- shutdown ------------------------------------------------------------

// Shutdown drains the service: new submissions are rejected with 503,
// queued campaigns are cancelled, running ones interrupted — their
// coordinators answer the fleet with shutdown and get a bounded grace
// period to drain their leases — and the archive is flushed. It blocks
// until every campaign goroutine has finished.
func (s *Service) Shutdown() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	for _, tenant := range s.ring {
		for _, e := range s.queues[tenant] {
			s.queued--
			s.finishLocked(e, StateCancelled, "service shutdown")
		}
		s.queues[tenant] = nil
	}
	s.telQueueDepth.Set(int64(s.queued))
	running := append([]*entry(nil), s.active...)
	s.mu.Unlock()

	for _, e := range running {
		e.interrupt()
	}
	s.wg.Wait()
	if s.store != nil {
		s.store.Sync()
	}
	s.opts.Telemetry.Trace("service.shutdown", "drained")
	s.opts.Logf("service: shut down")
}
