package service

import (
	"errors"
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"faultspace/internal/archive"
	"faultspace/internal/campaign"
	"faultspace/internal/cluster"
	"faultspace/internal/machine"
	"faultspace/internal/progs"
	"faultspace/internal/pruning"
	"faultspace/internal/telemetry"
)

const testMaxGolden = 1 << 22

// testTarget prepares a small benchmark campaign target.
func testTarget(t testing.TB, name string) campaign.Target {
	t.Helper()
	spec, err := progs.Resolve(name, progs.Sizes{
		BinSemRounds: 1, SyncRounds: 1, SyncBufBytes: 16,
		ClockTicks: 2, ClockPeriod: 32, MboxMessages: 2,
		PreemptWork: 8, PreemptPeriod: 24, SortElements: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := spec.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	return campaign.Target{
		Name:  prog.Name,
		Code:  prog.Code,
		Image: prog.Image,
		Mach: machine.Config{
			RAMSize:     prog.RAMSize,
			TimerPeriod: prog.TimerPeriod,
			TimerVector: prog.TimerVector,
		},
	}
}

// testSpec builds a submission spec. Distinct timeout factors yield
// distinct campaign identities for the same program, which several tests
// use to mint cheap unique campaigns.
func testSpec(t testing.TB, name string, factor float64) cluster.Spec {
	t.Helper()
	tgt := testTarget(t, name)
	cfg := campaign.Config{TimeoutFactor: factor}
	_, fs, err := tgt.PrepareSpace(pruning.SpaceMemory, testMaxGolden)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := cluster.NewSpec(tgt, pruning.SpaceMemory, cfg, testMaxGolden, uint64(len(fs.Classes)))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// startService serves a Service over a loopback listener.
func startService(t testing.TB, opts Options) (*Service, *httptest.Server) {
	t.Helper()
	if opts.LeaseTTL == 0 {
		opts.LeaseTTL = 2 * time.Second
	}
	svc, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return svc, srv
}

// startFleet attaches n in-process fleet workers wired like favserve's
// local workers: per-campaign telemetry via the service hook. Returned
// stop drains them (and is registered as cleanup).
func startFleet(t testing.TB, svc *Service, url string, n int) (stop func()) {
	t.Helper()
	intr := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			JoinFleet(url, FleetOptions{
				ID:           fmt.Sprintf("fleet%d", i),
				PollInterval: 10 * time.Millisecond,
				Interrupt:    intr,
				TelemetryFor: func(spec cluster.Spec) *telemetry.Registry {
					return svc.CampaignTelemetry(spec.Identity)
				},
			})
		}(i)
	}
	stop = func() {
		once.Do(func() { close(intr) })
		wg.Wait()
	}
	t.Cleanup(stop)
	return stop
}

// submitSpec POSTs a spec to the service and decodes the reply.
func submitSpec(t testing.TB, url string, spec cluster.Spec, tenant string) (CampaignStatus, *http.Response) {
	t.Helper()
	u := url + "/v1/campaigns"
	if tenant != "" {
		u += "?tenant=" + tenant
	}
	resp, err := http.Post(u, "application/octet-stream", bytes.NewReader(cluster.EncodeSpec(spec)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st CampaignStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("submit reply %q: %v", body, err)
		}
	}
	return st, resp
}

func waitDone(t testing.TB, url, id string) CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st CampaignStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case StateDone, StateCancelled, StateFailed:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in state %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func fetchReport(t testing.TB, url, id string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/campaigns/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: HTTP %d: %s", resp.StatusCode, body)
	}
	return body
}

// localReport runs the same campaign locally and encodes its archive —
// the reference bytes every service path must reproduce.
func localReport(t testing.TB, name string, factor float64) []byte {
	t.Helper()
	tgt := testTarget(t, name)
	golden, fs, err := tgt.PrepareSpace(pruning.SpaceMemory, testMaxGolden)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.FullScan(tgt, golden, fs, campaign.Config{TimeoutFactor: factor})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := archive.Encode(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestInvariant12ArchiveHit is the differential proof of invariant 12:
// a campaign executed on the fleet yields a report byte-identical to a
// local scan; re-submitting the identical campaign to a fresh service
// over the same archive directory is answered from the archive with the
// same bytes and zero experiments executed.
func TestInvariant12ArchiveHit(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t, "hi", 0)
	want := localReport(t, "hi", 0)

	svc, srv := startService(t, Options{Dir: dir})
	startFleet(t, svc, srv.URL, 1)
	st, resp := submitSpec(t, srv.URL, spec, "alice")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	st = waitDone(t, srv.URL, st.ID)
	if st.State != StateDone || st.Cached {
		t.Fatalf("first run: state %s cached %v", st.State, st.Cached)
	}
	live := fetchReport(t, srv.URL, st.ID)
	if !bytes.Equal(live, want) {
		t.Fatal("fleet-executed report differs from local scan (invariant 8/12 broken)")
	}
	if got := svc.CampaignTelemetry(spec.Identity).Counter("scan.experiments").Value(); got == 0 {
		t.Error("live run recorded no experiments — telemetry wiring broken")
	}
	svc.Shutdown()

	// A fresh service over the same archive: the duplicate submission
	// must complete instantly, serve identical bytes, and execute
	// nothing.
	svc2, srv2 := startService(t, Options{Dir: dir})
	st2, resp2 := submitSpec(t, srv2.URL, spec, "bob")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: HTTP %d", resp2.StatusCode)
	}
	if st2.State != StateDone || !st2.Cached {
		t.Fatalf("resubmit: state %s cached %v, want done from archive", st2.State, st2.Cached)
	}
	cached := fetchReport(t, srv2.URL, st2.ID)
	if !bytes.Equal(cached, live) {
		t.Fatal("archived report is not byte-identical to the live scan (invariant 12 broken)")
	}
	if got := svc2.CampaignTelemetry(spec.Identity).Counter("scan.experiments").Value(); got != 0 {
		t.Errorf("archive hit executed %d experiments, want 0", got)
	}
	// Idempotent re-submission to the same live service short-circuits
	// on the in-memory entry too.
	st3, resp3 := submitSpec(t, srv2.URL, spec, "carol")
	if resp3.StatusCode != http.StatusOK || st3.State != StateDone {
		t.Fatalf("idempotent resubmit: HTTP %d state %s", resp3.StatusCode, st3.State)
	}
	svc2.Shutdown()
}

// TestTwoTenantsConcurrent drives two distinct campaigns from different
// tenants through one shared fleet concurrently; both must complete with
// reports byte-identical to their local scans. Run under -race via
// `make race-service`, this is the multi-campaign concurrency proof.
func TestTwoTenantsConcurrent(t *testing.T) {
	specA := testSpec(t, "hi", 0)
	specB := testSpec(t, "bin_sem2", 0)
	if specA.Identity == specB.Identity {
		t.Fatal("test needs distinct campaigns")
	}
	svc, srv := startService(t, Options{MaxActive: 2})
	startFleet(t, svc, srv.URL, 2)

	stA, respA := submitSpec(t, srv.URL, specA, "alice")
	stB, respB := submitSpec(t, srv.URL, specB, "bob")
	if respA.StatusCode != http.StatusAccepted || respB.StatusCode != http.StatusAccepted {
		t.Fatalf("submits: HTTP %d, %d", respA.StatusCode, respB.StatusCode)
	}
	doneA := waitDone(t, srv.URL, stA.ID)
	doneB := waitDone(t, srv.URL, stB.ID)
	if doneA.State != StateDone || doneB.State != StateDone {
		t.Fatalf("states %s/%s, want done/done", doneA.State, doneB.State)
	}
	if got := fetchReport(t, srv.URL, stA.ID); !bytes.Equal(got, localReport(t, "hi", 0)) {
		t.Error("tenant alice's report differs from a local scan")
	}
	if got := fetchReport(t, srv.URL, stB.ID); !bytes.Equal(got, localReport(t, "bin_sem2", 0)) {
		t.Error("tenant bob's report differs from a local scan")
	}
	svc.Shutdown()
}

// TestCounterIsolation (the /v1/status satellite): with several
// campaigns sharing one process, each campaign's scan/memo counters
// must be its own, not a process-global aggregate.
func TestCounterIsolation(t *testing.T) {
	specA := testSpec(t, "hi", 0)
	specB := testSpec(t, "bin_sem2", 0)
	svc, srv := startService(t, Options{MaxActive: 2})
	startFleet(t, svc, srv.URL, 2)
	stA, _ := submitSpec(t, srv.URL, specA, "alice")
	stB, _ := submitSpec(t, srv.URL, specB, "bob")
	waitDone(t, srv.URL, stA.ID)
	waitDone(t, srv.URL, stB.ID)

	expA := svc.CampaignTelemetry(specA.Identity).Counter("scan.experiments").Value()
	expB := svc.CampaignTelemetry(specB.Identity).Counter("scan.experiments").Value()
	if expA != specA.Classes {
		t.Errorf("campaign A counted %d experiments, want its own %d", expA, specA.Classes)
	}
	if expB != specB.Classes {
		t.Errorf("campaign B counted %d experiments, want its own %d", expB, specB.Classes)
	}

	// The same isolation must hold on the wire: /v1/status reports the
	// counters per campaign.
	resp, err := http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Campaigns []struct {
			ID        string `json:"id"`
			Telemetry *struct {
				Counters map[string]uint64 `json:"counters"`
			} `json:"telemetry"`
		} `json:"campaigns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{
		hex.EncodeToString(specA.Identity[:]): specA.Classes,
		hex.EncodeToString(specB.Identity[:]): specB.Classes,
	}
	seen := 0
	for _, c := range status.Campaigns {
		if c.Telemetry == nil {
			t.Fatalf("campaign %s has no telemetry in /v1/status", c.ID)
		}
		if w, ok := want[c.ID]; ok {
			seen++
			if got := c.Telemetry.Counters["scan.experiments"]; got != w {
				t.Errorf("/v1/status campaign %.12s: scan.experiments %d, want %d", c.ID, got, w)
			}
		}
	}
	if seen != 2 {
		t.Fatalf("/v1/status listed %d of the 2 campaigns", seen)
	}
	svc.Shutdown()
}

// TestBackpressure: beyond MaxQueued, submissions get 429 + Retry-After.
func TestBackpressure(t *testing.T) {
	// No fleet: campaigns stay queued/running forever.
	_, srv := startService(t, Options{MaxActive: 1, MaxQueued: 1})
	for i, factor := range []float64{2, 3} {
		if _, resp := submitSpec(t, srv.URL, testSpec(t, "hi", factor), "t"); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
	}
	// The first campaign moved to running, the second fills the queue;
	// the third must bounce.
	_, resp := submitSpec(t, srv.URL, testSpec(t, "hi", 4), "t")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry a Retry-After hint")
	}
}

// TestCancelAndDrain: a queued campaign cancels cleanly; after Shutdown
// the service answers submissions with 503 and fleet handshakes with a
// shutdown notice.
func TestCancelAndDrain(t *testing.T) {
	svc, srv := startService(t, Options{MaxActive: 1})
	// No fleet: both campaigns are admitted, the second stays queued.
	st1, _ := submitSpec(t, srv.URL, testSpec(t, "hi", 2), "t")
	st2, _ := submitSpec(t, srv.URL, testSpec(t, "hi", 3), "t")

	resp, err := http.Post(srv.URL+"/v1/campaigns/"+st2.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var got CampaignStatus
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if got.State != StateCancelled {
		t.Fatalf("cancelled queued campaign reports %s", got.State)
	}

	done := make(chan struct{})
	go func() { svc.Shutdown(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("Shutdown did not drain")
	}
	if st := waitDone(t, srv.URL, st1.ID); st.State != StateCancelled {
		t.Errorf("running campaign after drain: %s, want cancelled", st.State)
	}

	_, resp2 := submitSpec(t, srv.URL, testSpec(t, "hi", 5), "t")
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: HTTP %d, want 503", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("503 must carry a Retry-After hint")
	}
	hello, err := http.Post(srv.URL+"/v1/handshake", "application/octet-stream",
		bytes.NewReader(EncodeFleetHello(FleetHello{WorkerID: "late"})))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hello.Body)
	hello.Body.Close()
	h, err := DecodeServiceHello(body)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != FleetShutdown {
		t.Errorf("fleet handshake while draining: status %d, want shutdown", h.Status)
	}
}

// TestServiceMethodRejection: every mutating service endpoint enforces
// POST, every read endpoint GET — 405 plus an Allow header otherwise.
func TestServiceMethodRejection(t *testing.T) {
	_, srv := startService(t, Options{})
	id := strings.Repeat("ab", 32)
	cases := []struct {
		path  string
		allow string
	}{
		{"/v1/handshake", "POST"},
		{"/v1/lease", "POST"},
		{"/v1/submit", "POST"},
		{"/v1/heartbeat", "POST"},
		{"/v1/leave", "POST"},
		{"/v1/campaigns", "GET, POST"},
		{"/v1/status", "GET"},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("DELETE %s: HTTP %d, want 405", tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != tc.allow {
			t.Errorf("DELETE %s: Allow %q, want %q", tc.path, got, tc.allow)
		}
	}
	// Campaign subpaths 405 too (not 404) once the campaign exists.
	st, _ := submitSpec(t, srv.URL, testSpec(t, "hi", 2), "t")
	for path, allow := range map[string]string{
		"/v1/campaigns/" + st.ID:             "GET",
		"/v1/campaigns/" + st.ID + "/report": "GET",
		"/v1/campaigns/" + st.ID + "/cancel": "POST",
	} {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != allow {
			t.Errorf("DELETE %s: HTTP %d Allow %q, want 405 %q",
				path, resp.StatusCode, resp.Header.Get("Allow"), allow)
		}
	}
	_ = id
}

// TestFleetWireRoundtrip pins the fleet handshake codec.
func TestFleetWireRoundtrip(t *testing.T) {
	h, err := DecodeFleetHello(EncodeFleetHello(FleetHello{WorkerID: "w1"}))
	if err != nil || h.WorkerID != "w1" {
		t.Fatalf("fleet hello roundtrip: %+v, %v", h, err)
	}
	for _, want := range []ServiceHello{
		{Status: FleetWait},
		{Status: FleetShutdown},
		{Status: FleetGranted, Spec: []byte("spec-bytes")},
	} {
		got, err := DecodeServiceHello(EncodeServiceHello(want))
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != want.Status || !bytes.Equal(got.Spec, want.Spec) {
			t.Fatalf("service hello roundtrip: %+v, want %+v", got, want)
		}
	}
	if _, err := DecodeFleetHello([]byte("garbage")); err == nil {
		t.Error("garbage fleet hello must be rejected")
	}
	if _, err := DecodeServiceHello(EncodeFleetHello(FleetHello{})); err == nil {
		t.Error("kind confusion must be rejected")
	}
}

// TestUnknownWorkerIdentity: worker traffic for an unknown campaign is
// answered 409, mirroring the single-coordinator admission check.
func TestUnknownWorkerIdentity(t *testing.T) {
	_, srv := startService(t, Options{})
	var bogus [32]byte
	bogus[0] = 0xee
	resp, err := http.Post(srv.URL+"/v1/lease", "application/octet-stream",
		bytes.NewReader(cluster.EncodeLeaseRequest(cluster.LeaseRequest{Identity: bogus, WorkerID: "w"})))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("lease for unknown campaign: HTTP %d, want 409", resp.StatusCode)
	}
}

// TestFleetUnreachableGivesUp: a fleet worker whose service vanished
// for good stops polling after the failure budget instead of spinning
// on a dead address forever.
func TestFleetUnreachableGivesUp(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close() // nothing listens here any more
	err := JoinFleet(srv.URL, FleetOptions{PollInterval: time.Millisecond})
	if !errors.Is(err, cluster.ErrUnreachable) {
		t.Fatalf("JoinFleet against a dead service: %v, want ErrUnreachable", err)
	}
}

// testSpecSpace is testSpec for an arbitrary fault space and attacker
// objective.
func testSpecSpace(t testing.TB, name string, kind pruning.SpaceKind, objective string) cluster.Spec {
	t.Helper()
	tgt := testTarget(t, name)
	obj, err := campaign.ObjectiveByName(objective)
	if err != nil {
		t.Fatal(err)
	}
	cfg := campaign.Config{Objective: obj}
	_, fs, err := tgt.PrepareSpace(kind, testMaxGolden)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := cluster.NewSpec(tgt, kind, cfg, testMaxGolden, uint64(len(fs.Classes)))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// localReportSpace is localReport for an arbitrary fault space and
// attacker objective.
func localReportSpace(t testing.TB, name string, kind pruning.SpaceKind, objective string) []byte {
	t.Helper()
	tgt := testTarget(t, name)
	obj, err := campaign.ObjectiveByName(objective)
	if err != nil {
		t.Fatal(err)
	}
	golden, fs, err := tgt.PrepareSpace(kind, testMaxGolden)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.FullScan(tgt, golden, fs, campaign.Config{Objective: obj})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := archive.Encode(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFleetForkStrategy runs a fleet whose workers execute their leased
// units under the fork strategy: the service-produced report must stay
// byte-identical to a local scan (invariant 8/12 for the fourth
// strategy), and the campaign's own telemetry must show the fork path
// actually ran — children forked and golden-prefix cycles saved.
func TestFleetForkStrategy(t *testing.T) {
	spec := testSpec(t, "bin_sem2", 0)
	want := localReport(t, "bin_sem2", 0)

	svc, srv := startService(t, Options{})
	intr := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		JoinFleet(srv.URL, FleetOptions{
			ID:           "fork-fleet",
			PollInterval: 10 * time.Millisecond,
			Interrupt:    intr,
			Worker:       cluster.WorkerOptions{Strategy: campaign.StrategyFork},
			TelemetryFor: func(s cluster.Spec) *telemetry.Registry {
				return svc.CampaignTelemetry(s.Identity)
			},
		})
	}()
	t.Cleanup(func() {
		once.Do(func() { close(intr) })
		wg.Wait()
	})

	st, resp := submitSpec(t, srv.URL, spec, "alice")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	st = waitDone(t, srv.URL, st.ID)
	if st.State != StateDone || st.Cached {
		t.Fatalf("state %s cached %v, want a live done run", st.State, st.Cached)
	}
	if got := fetchReport(t, srv.URL, st.ID); !bytes.Equal(got, want) {
		t.Fatal("fork-fleet report differs from local scan (invariant 8/12 broken)")
	}
	reg := svc.CampaignTelemetry(spec.Identity)
	if reg.Counter("fork.children").Value() == 0 {
		t.Error("fork.children = 0 — the fleet worker did not take the fork path")
	}
	if reg.Counter("fork.prefix_cycles_saved").Value() == 0 {
		t.Error("fork.prefix_cycles_saved = 0 — no golden prefix was shared across a batch")
	}
	svc.Shutdown()
}

// TestInvariant12ArchiveHitAttackSpaces replays the invariant-12 proof
// for the attack-style campaign types: a burst campaign under the
// corrupt objective and a plain instruction-skip campaign, each executed
// on the fleet (objective name riding the wire spec), must match the
// local scan byte-for-byte; the duplicate submission to a fresh service
// over the same archive is answered with zero experiments executed.
func TestInvariant12ArchiveHitAttackSpaces(t *testing.T) {
	cases := []struct {
		name      string
		kind      pruning.SpaceKind
		objective string
	}{
		{"burst2+corrupt", pruning.SpaceBurst2, "corrupt"},
		{"skip", pruning.SpaceSkip, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			spec := testSpecSpace(t, "bin_sem2", tc.kind, tc.objective)
			want := localReportSpace(t, "bin_sem2", tc.kind, tc.objective)

			svc, srv := startService(t, Options{Dir: dir})
			startFleet(t, svc, srv.URL, 2)
			st, resp := submitSpec(t, srv.URL, spec, "alice")
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit: HTTP %d", resp.StatusCode)
			}
			st = waitDone(t, srv.URL, st.ID)
			if st.State != StateDone || st.Cached {
				t.Fatalf("first run: state %s cached %v", st.State, st.Cached)
			}
			if st.Objective != tc.objective {
				t.Errorf("status objective %q, want %q", st.Objective, tc.objective)
			}
			live := fetchReport(t, srv.URL, st.ID)
			if !bytes.Equal(live, want) {
				t.Fatal("fleet-executed report differs from local scan (invariant 8/12 broken)")
			}
			svc.Shutdown()

			svc2, srv2 := startService(t, Options{Dir: dir})
			st2, resp2 := submitSpec(t, srv2.URL, spec, "bob")
			if resp2.StatusCode != http.StatusOK {
				t.Fatalf("resubmit: HTTP %d", resp2.StatusCode)
			}
			if st2.State != StateDone || !st2.Cached {
				t.Fatalf("resubmit: state %s cached %v, want done from archive", st2.State, st2.Cached)
			}
			if !bytes.Equal(fetchReport(t, srv2.URL, st2.ID), live) {
				t.Fatal("archived report is not byte-identical to the live scan (invariant 12 broken)")
			}
			if got := svc2.CampaignTelemetry(spec.Identity).Counter("scan.experiments").Value(); got != 0 {
				t.Errorf("archive hit executed %d experiments, want 0", got)
			}
			svc2.Shutdown()
		})
	}
}
