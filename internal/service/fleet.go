package service

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"faultspace/internal/campaign"
	"faultspace/internal/checkpoint"
	"faultspace/internal/cluster"
	"faultspace/internal/telemetry"
)

// Fleet handshake frame kinds, in the same CRC framing namespace as the
// cluster wire protocol ('S', 'L', 'W', 'U', 'B') and the archive
// entries ('E', 'D').
const (
	msgFleetHello   = 'F'
	msgServiceHello = 'V'
)

// ServiceHello statuses.
const (
	// FleetGranted carries the spec of the campaign assigned to the
	// worker.
	FleetGranted uint8 = iota
	// FleetWait means no campaign is running right now; poll again.
	FleetWait
	// FleetShutdown means the service is draining; the worker should
	// exit.
	FleetShutdown
)

// FleetHello is a fleet worker's handshake: unlike the single-campaign
// protocol it does not presume a campaign, it asks to be assigned one.
type FleetHello struct {
	WorkerID string
}

// ServiceHello answers a FleetHello. Spec, present when Status is
// FleetGranted, is the assigned campaign's encoded spec frame.
type ServiceHello struct {
	Status uint8
	Spec   []byte
}

// EncodeFleetHello encodes a fleet handshake frame.
func EncodeFleetHello(h FleetHello) []byte {
	p := make([]byte, 0, 8+len(h.WorkerID))
	p = appendString(p, h.WorkerID)
	return checkpoint.AppendFrame(nil, msgFleetHello, p)
}

// DecodeFleetHello decodes a fleet handshake frame.
func DecodeFleetHello(frame []byte) (FleetHello, error) {
	payload, err := framePayload(frame, msgFleetHello)
	if err != nil {
		return FleetHello{}, err
	}
	id, rest, err := takeString(payload)
	if err != nil || len(rest) != 0 {
		return FleetHello{}, fmt.Errorf("service: malformed fleet hello")
	}
	return FleetHello{WorkerID: id}, nil
}

// EncodeServiceHello encodes a fleet handshake response frame.
func EncodeServiceHello(h ServiceHello) []byte {
	p := make([]byte, 0, 16+len(h.Spec))
	p = append(p, h.Status)
	p = appendString(p, string(h.Spec))
	return checkpoint.AppendFrame(nil, msgServiceHello, p)
}

// DecodeServiceHello decodes a fleet handshake response frame.
func DecodeServiceHello(frame []byte) (ServiceHello, error) {
	payload, err := framePayload(frame, msgServiceHello)
	if err != nil {
		return ServiceHello{}, err
	}
	if len(payload) < 1 {
		return ServiceHello{}, fmt.Errorf("service: malformed service hello")
	}
	status := payload[0]
	spec, rest, err := takeString(payload[1:])
	if err != nil || len(rest) != 0 {
		return ServiceHello{}, fmt.Errorf("service: malformed service hello")
	}
	h := ServiceHello{Status: status}
	if spec != "" {
		h.Spec = []byte(spec)
	}
	return h, nil
}

// framePayload parses one frame and checks its kind.
func framePayload(frame []byte, kind byte) ([]byte, error) {
	k, payload, next, err := checkpoint.ReadFrame(frame, 0)
	if err != nil {
		return nil, err
	}
	if k != kind || next != len(frame) {
		return nil, fmt.Errorf("service: unexpected frame")
	}
	return payload, nil
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func takeString(p []byte) (string, []byte, error) {
	var n uint64
	var shift uint
	i := 0
	for {
		if i >= len(p) || shift > 63 {
			return "", nil, fmt.Errorf("service: bad varint")
		}
		b := p[i]
		i++
		n |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
		shift += 7
	}
	if uint64(len(p)-i) < n {
		return "", nil, fmt.Errorf("service: string cut")
	}
	return string(p[i : i+int(n)]), p[i+int(n):], nil
}

// FleetOptions parameterizes JoinFleet.
type FleetOptions struct {
	// ID names the worker (default "f<pid>").
	ID string
	// Worker carries the per-campaign execution options (strategy,
	// parallelism, predecode, memo, retry budget). Identity, Interrupt
	// and Telemetry interact with the fleet loop as described below.
	Worker cluster.WorkerOptions
	// PollInterval is the wait between handshakes when no campaign is
	// running (default 200ms).
	PollInterval time.Duration
	// Interrupt, when closed, stops the fleet worker after the current
	// campaign protocol step.
	Interrupt <-chan struct{}
	// TelemetryFor, when non-nil, selects the telemetry registry for
	// each assigned campaign — the hook the service uses to point its
	// in-process workers at the campaign's own registry, keeping
	// scan/memo/predecode counters isolated per campaign. When nil, the
	// Worker.Telemetry registry (possibly nil) is used for every
	// campaign.
	TelemetryFor func(spec cluster.Spec) *telemetry.Registry
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Logf, when non-nil, receives fleet worker log lines.
	Logf func(format string, args ...any)
}

func (o FleetOptions) withDefaults() FleetOptions {
	if o.ID == "" {
		o.ID = fmt.Sprintf("f%d", os.Getpid())
	}
	if o.PollInterval == 0 {
		o.PollInterval = 200 * time.Millisecond
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// fleetFailureBudget bounds consecutive handshake transport failures
// before JoinFleet concludes the service is gone for good. A service
// that drains between two handshakes never gets to answer
// FleetShutdown, so connection errors are the only signal left; the
// budget mirrors the cluster worker's bounded request retries rather
// than polling a dead address forever.
const fleetFailureBudget = 25

// JoinFleet attaches a worker to a campaign service for the long haul:
// it handshakes, runs whatever campaign the service assigns via
// cluster.JoinCampaign, and re-handshakes for the next one when that
// campaign completes or shuts down. It returns nil when the service
// announces shutdown, cluster.ErrUnreachable when the service stays
// unreachable across consecutive handshake attempts, and
// campaign.ErrInterrupted when FleetOptions.Interrupt fires.
func JoinFleet(baseURL string, opts FleetOptions) error {
	opts = opts.withDefaults()
	base := strings.TrimSuffix(baseURL, "/")
	hello := EncodeFleetHello(FleetHello{WorkerID: opts.ID})
	failures := 0
	for {
		select {
		case <-opts.Interrupt:
			return campaign.ErrInterrupted
		default:
		}
		resp, status, err := postOnce(opts.Client, base+"/v1/handshake", hello)
		if err != nil || status != http.StatusOK {
			if err == nil {
				err = fmt.Errorf("service: handshake: HTTP %d", status)
			}
			if failures++; failures >= fleetFailureBudget {
				return fmt.Errorf("%w: fleet handshake after %d attempts: %v",
					cluster.ErrUnreachable, failures, err)
			}
			opts.Logf("fleet %s: handshake failed: %v", opts.ID, err)
			if !sleepOrInterrupt(opts.PollInterval, opts.Interrupt) {
				return campaign.ErrInterrupted
			}
			continue
		}
		failures = 0
		h, err := DecodeServiceHello(resp)
		if err != nil {
			return fmt.Errorf("service: handshake: %w", err)
		}
		switch h.Status {
		case FleetShutdown:
			opts.Logf("fleet %s: service shut down", opts.ID)
			return nil
		case FleetWait:
			if !sleepOrInterrupt(opts.PollInterval, opts.Interrupt) {
				return campaign.ErrInterrupted
			}
			continue
		}
		spec, err := cluster.DecodeSpec(h.Spec)
		if err != nil {
			return fmt.Errorf("service: handshake spec: %w", err)
		}
		wopts := opts.Worker
		wopts.ID = opts.ID
		wopts.Interrupt = opts.Interrupt
		wopts.Client = opts.Client
		wopts.Logf = opts.Logf
		if opts.TelemetryFor != nil {
			wopts.Telemetry = opts.TelemetryFor(spec)
		}
		err = cluster.JoinCampaign(base, spec, wopts)
		switch {
		case err == nil, errors.Is(err, cluster.ErrShutdown):
			// Campaign finished or was cancelled; ask for the next one.
		case errors.Is(err, campaign.ErrInterrupted):
			return err
		default:
			return err
		}
	}
}

func sleepOrInterrupt(d time.Duration, interrupt <-chan struct{}) bool {
	select {
	case <-interrupt:
		return false
	case <-time.After(d):
		return true
	}
}

func postOnce(client *http.Client, url string, body []byte) ([]byte, int, error) {
	resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBody+1))
	if err != nil {
		return nil, 0, err
	}
	return data, resp.StatusCode, nil
}
