package experiments

import (
	"fmt"
	"math/rand"

	"faultspace"
	"faultspace/internal/campaign"
)

// The differential oracle harness pins down DESIGN.md invariant 13: for
// the attack-style fault models (instruction skip, PC corruption,
// multi-bit bursts) the pruned, accelerated scan must agree with brute
// force at every raw fault-space coordinate. One pruned scan runs with
// every accelerator the campaign layer has (snapshot forking, predecode,
// memoization); then each randomly drawn raw coordinate (slot, bit) is
// re-executed on a fresh plain machine — no pruning, no predecode, no
// memo, rerun-from-reset — and the two outcomes are compared:
//
//   - coordinates Locate maps to an equivalence class must reproduce the
//     class outcome byte-identically (including the attack flag), and
//   - coordinates in the known-No-Effect region must run observably
//     identical to the golden run (outcome NoEffect; no builtin objective
//     flags a golden-identical run).
//
// A mismatch falsifies either the pruning rederivation for that space or
// one of the outcome-invariance claims of the accelerators.

// OracleMismatch is one raw coordinate where brute force disagreed with
// the pruned scan.
type OracleMismatch struct {
	Slot, Bit uint64
	// InClass reports whether the coordinate belongs to an equivalence
	// class (Class is its index) or to the known-No-Effect region.
	InClass bool
	Class   int
	// Scan is the outcome the pruned scan predicts for the coordinate;
	// Oracle is what the brute-force run produced.
	Scan, Oracle campaign.Outcome
}

// OracleReport summarizes one differential-oracle run.
type OracleReport struct {
	Name      string
	Space     faultspace.SpaceKind
	Objective string
	// Coordinates is the number of random raw coordinates checked;
	// InClass of them mapped to an equivalence class, Pruned fell into
	// the known-No-Effect region.
	Coordinates int
	InClass     int
	Pruned      int
	Mismatches  []OracleMismatch
}

// Ok reports whether every checked coordinate agreed.
func (r *OracleReport) Ok() bool { return len(r.Mismatches) == 0 }

// RandomCoordinateOracle runs the differential oracle for one program:
// a pruned scan with all accelerators on (opts.Space selects the fault
// model; Predecode and Memo are forced on, the strategy is kept), then
// n seeded-random raw coordinates replayed by brute force. The returned
// report lists every disagreement; an empty Mismatches slice is the
// invariant-13 verdict.
func RandomCoordinateOracle(p *faultspace.Program, opts faultspace.ScanOptions, n int, seed int64) (*OracleReport, error) {
	opts.Predecode = true
	opts.Memo = true
	scan, err := faultspace.Scan(p, opts)
	if err != nil {
		return nil, err
	}
	obj, err := campaign.ObjectiveByName(opts.Objective)
	if err != nil {
		return nil, err
	}
	// The brute-force config deliberately carries only the knobs that are
	// part of the campaign identity (timeout and objective): everything
	// else is an accelerator the oracle must not share with the scan.
	plain := campaign.Config{
		TimeoutFactor: opts.TimeoutFactor,
		Strategy:      campaign.StrategyRerun,
		Workers:       1,
		Objective:     obj,
	}
	t := faultspace.Target(p)
	fs, golden := scan.Space, scan.Golden
	if fs.Cycles == 0 || fs.Bits == 0 {
		return nil, fmt.Errorf("experiments: oracle: empty fault space for %s", p.Name)
	}

	rep := &OracleReport{
		Name:        p.Name,
		Space:       fs.Kind,
		Objective:   opts.Objective,
		Coordinates: n,
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		slot := 1 + uint64(rng.Int63n(int64(fs.Cycles)))
		bit := uint64(rng.Int63n(int64(fs.Bits)))

		ci, inClass, err := fs.Locate(slot, bit)
		if err != nil {
			return nil, fmt.Errorf("experiments: oracle: %w", err)
		}
		want := campaign.OutcomeNoEffect
		if inClass {
			rep.InClass++
			want = scan.Outcomes[ci]
		} else {
			rep.Pruned++
		}

		got, err := campaign.RunSingleSpace(t, golden, plain, fs.Kind, slot, bit)
		if err != nil {
			return nil, fmt.Errorf("experiments: oracle: brute force (%d, %d): %w", slot, bit, err)
		}
		if got != want {
			rep.Mismatches = append(rep.Mismatches, OracleMismatch{
				Slot: slot, Bit: bit,
				InClass: inClass, Class: ci,
				Scan: want, Oracle: got,
			})
		}
	}
	return rep, nil
}
