package experiments

import (
	"faultspace"
	"faultspace/internal/campaign"
	"faultspace/internal/metrics"
)

// SamplingResult demonstrates Pitfalls 2 and 3 on one benchmark variant:
// it contrasts the full-scan ground truth with estimates from correct raw
// sampling, effective-population sampling (Corollary 1), and the biased
// class-uniform sampling of Pitfall 2.
type SamplingResult struct {
	Name string
	N    int
	Seed int64

	// Ground truth from a complete fault-space scan.
	TrueFailWeight uint64
	TrueCoverage   float64

	// Raw sampling: uniform over w; the correct procedure.
	Raw SampleEstimate
	// Effective sampling: uniform over w′ (known-No-Effect excluded).
	Effective SampleEstimate
	// Biased sampling: uniform over equivalence classes (Pitfall 2).
	Biased SampleEstimate
}

// SampleEstimate is one sampling campaign's derived numbers.
type SampleEstimate struct {
	Mode        string
	Population  uint64
	SampledFail uint64
	Experiments int

	// FailEstimate is the extrapolated absolute failure count
	// (Pitfall 3, Corollary 2) with its 95 % Wilson interval.
	FailEstimate float64
	FailLo       float64
	FailHi       float64

	// CoverageEstimate is the naive 1 − F_s/N_s coverage this campaign's
	// raw counts suggest (for raw sampling this estimates the true
	// full-space coverage; for biased sampling it is skewed).
	CoverageEstimate float64
}

// Sampling runs the three sampling campaigns plus the ground-truth scan.
func Sampling(p *faultspace.Program, n int, seed int64, opts faultspace.ScanOptions) (*SamplingResult, error) {
	scan, err := faultspace.Scan(p, opts)
	if err != nil {
		return nil, err
	}
	a, err := faultspace.Analyze(scan)
	if err != nil {
		return nil, err
	}
	r := &SamplingResult{
		Name:           p.Name,
		N:              n,
		Seed:           seed,
		TrueFailWeight: a.FailWeight,
		TrueCoverage:   a.CoverageWeighted,
	}
	for _, cfg := range []struct {
		dst  *SampleEstimate
		opts faultspace.SampleOptions
	}{
		{&r.Raw, faultspace.SampleOptions{ScanOptions: opts, N: n, Seed: seed}},
		{&r.Effective, faultspace.SampleOptions{ScanOptions: opts, N: n, Seed: seed, Effective: true}},
		{&r.Biased, faultspace.SampleOptions{ScanOptions: opts, N: n, Seed: seed, Biased: true}},
	} {
		sr, err := faultspace.Sample(p, cfg.opts)
		if err != nil {
			return nil, err
		}
		est, err := estimate(sr)
		if err != nil {
			return nil, err
		}
		*cfg.dst = est
	}
	return r, nil
}

func estimate(sr *campaign.SampleResult) (SampleEstimate, error) {
	est := SampleEstimate{
		Mode:        sr.Mode.String(),
		Population:  sr.Population,
		SampledFail: sr.Failures(),
		Experiments: sr.Experiments,
	}
	est.FailEstimate = sr.ExtrapolatedFailures()
	iv, err := metrics.WilsonInterval(est.SampledFail, uint64(sr.N), metrics.Z95)
	if err != nil {
		return est, err
	}
	ext := metrics.ExtrapolatedInterval(iv, sr.Population)
	est.FailLo, est.FailHi = ext.Lo, ext.Hi
	if est.CoverageEstimate, err = metrics.CoverageFromSample(est.SampledFail, uint64(sr.N)); err != nil {
		return est, err
	}
	return est, nil
}
