package experiments

import (
	"testing"

	"faultspace"
	"faultspace/internal/progs"
)

func TestSweepSync2Buffer(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs several full scans")
	}
	s, err := SweepSync2Buffer(2, []int{4, 32, 96}, faultspace.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(s.Points))
	}
	// The damage must scale monotonically with the unprotected buffer's
	// share of the fault space.
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Cmp.RatioWeighted <= s.Points[i-1].Cmp.RatioWeighted {
			t.Errorf("ratio not increasing: buf %d -> %.3f, buf %d -> %.3f",
				s.Points[i-1].BufBytes, s.Points[i-1].Cmp.RatioWeighted,
				s.Points[i].BufBytes, s.Points[i].Cmp.RatioWeighted)
		}
	}
	// Coverage claims an improvement at every point (the §V-B trap).
	for _, p := range s.Points {
		if !p.Cmp.CoverageSaysImproved() {
			t.Errorf("buf %d: coverage gain %.2f should be positive",
				p.BufBytes, p.Cmp.CoverageGainWeighted)
		}
	}
	if s.CrossoverBufBytes() != 4 {
		t.Errorf("crossover = %d, want 4 (sync2 loses everywhere)", s.CrossoverBufBytes())
	}
}

func TestRegisterSpaceExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("four full scans")
	}
	r, err := RegisterSpace(progs.BinSem2(2), faultspace.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Memory.FailuresSayImproved() {
		t.Errorf("memory model: bin_sem2 hardening must help (r = %.3f)", r.Memory.RatioWeighted)
	}
	if r.Registers.FailuresSayImproved() {
		t.Errorf("register model: hardening must hurt (r = %.3f)", r.Registers.RatioWeighted)
	}
	if r.Memory.Baseline.Space != faultspace.SpaceMemory ||
		r.Registers.Baseline.Space != faultspace.SpaceRegisters {
		t.Error("space kinds not propagated into analyses")
	}
}
