package experiments

import (
	"faultspace"
	"faultspace/internal/progs"
)

// MechanismRow is one benchmark compared under both hardening mechanisms.
type MechanismRow struct {
	Name   string
	SumDMR faultspace.Comparison // baseline vs SUM+DMR
	TMR    faultspace.Comparison // baseline vs TMR
}

// MechanismsResult compares the two implemented fault-tolerance mechanisms
// — SUM+DMR (duplication + complement checksum) and TMR (bitwise-majority
// triplication) — the way the paper demands mechanisms be compared: by
// extrapolated absolute failure counts over each variant's own complete
// fault space. This is the toolkit's "so what" demo: once the metric is
// sound, mechanism trade-offs (runtime overhead vs double-fault
// robustness vs load-path latency) become measurable instead of arguable.
type MechanismsResult struct {
	Rows []MechanismRow
}

// Mechanisms scans every benchmark pair under both mechanisms.
func Mechanisms(specs []progs.Spec, opts faultspace.ScanOptions) (*MechanismsResult, error) {
	if len(specs) == 0 {
		specs = []progs.Spec{progs.BinSem2(4), progs.Sort1(12)}
	}
	res := &MechanismsResult{}
	for _, spec := range specs {
		base, err := spec.Baseline()
		if err != nil {
			return nil, err
		}
		baseScan, err := faultspace.Scan(base, opts)
		if err != nil {
			return nil, err
		}
		ab, err := faultspace.Analyze(baseScan)
		if err != nil {
			return nil, err
		}

		row := MechanismRow{Name: spec.Name}
		for _, mech := range []struct {
			build func() (*faultspace.Program, error)
			dst   *faultspace.Comparison
		}{
			{spec.Hardened, &row.SumDMR},
			{spec.HardenedTMR, &row.TMR},
		} {
			p, err := mech.build()
			if err != nil {
				return nil, err
			}
			scan, err := faultspace.Scan(p, opts)
			if err != nil {
				return nil, err
			}
			a, err := faultspace.Analyze(scan)
			if err != nil {
				return nil, err
			}
			cmp, err := faultspace.Compare(ab, a)
			if err != nil {
				return nil, err
			}
			*mech.dst = cmp
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
