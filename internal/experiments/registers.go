package experiments

import (
	"faultspace"
	"faultspace/internal/progs"
)

// RegisterSpaceResult is the §VI-B extension experiment (beyond the
// paper's evaluation): the same benchmark pair scanned under the register
// fault model instead of the memory model. SUM+DMR protects memory only,
// so the register fault space shows how much of the hardened variant's
// apparent robustness is an artifact of where faults are injected —
// and, because the mechanism stretches runtime, register-fault exposure
// of live registers grows with hardening.
type RegisterSpaceResult struct {
	Name string
	// Memory/Registers hold the comparison under each fault model.
	Memory    faultspace.Comparison
	Registers faultspace.Comparison
}

// RegisterSpace scans one benchmark pair under both fault models.
func RegisterSpace(spec progs.Spec, opts faultspace.ScanOptions) (*RegisterSpaceResult, error) {
	base, err := spec.Baseline()
	if err != nil {
		return nil, err
	}
	hard, err := spec.Hardened()
	if err != nil {
		return nil, err
	}
	r := &RegisterSpaceResult{Name: spec.Name}

	for _, space := range []faultspace.SpaceKind{faultspace.SpaceMemory, faultspace.SpaceRegisters} {
		o := opts
		o.Space = space
		baseScan, err := faultspace.Scan(base, o)
		if err != nil {
			return nil, err
		}
		hardScan, err := faultspace.Scan(hard, o)
		if err != nil {
			return nil, err
		}
		ab, err := faultspace.Analyze(baseScan)
		if err != nil {
			return nil, err
		}
		ah, err := faultspace.Analyze(hardScan)
		if err != nil {
			return nil, err
		}
		cmp, err := faultspace.Compare(ab, ah)
		if err != nil {
			return nil, err
		}
		if space == faultspace.SpaceMemory {
			r.Memory = cmp
		} else {
			r.Registers = cmp
		}
	}
	return r, nil
}
