package experiments

import (
	"faultspace"
	"faultspace/internal/progs"
)

// SweepPoint is one point of the buffer-size sweep: the sync2 benchmark
// pair at a given unprotected-buffer size.
type SweepPoint struct {
	BufBytes int
	Cmp      faultspace.Comparison
}

// SweepResult traces how the hardening verdict for sync2 depends on the
// share of unprotected long-lived data. The paper explains sync2's
// degradation by the runtime-stretched exposure of data the mechanism
// does not cover (§V-B); sweeping the buffer size makes the mechanism's
// break-even point directly visible: below the crossover the protected
// kernel state dominates and SUM+DMR wins, above it the unprotected
// buffer dominates and SUM+DMR loses ground to its own runtime overhead.
type SweepResult struct {
	Rounds int
	Points []SweepPoint
}

// CrossoverBufBytes returns the first swept buffer size at which the
// weighted failure ratio exceeds 1 (hardening starts hurting), or -1 if
// the verdict never flips within the sweep.
func (s *SweepResult) CrossoverBufBytes() int {
	for _, p := range s.Points {
		if p.Cmp.RatioWeighted > 1 {
			return p.BufBytes
		}
	}
	return -1
}

// SweepSync2Buffer scans the sync2 pair for every buffer size.
func SweepSync2Buffer(rounds int, bufSizes []int, opts faultspace.ScanOptions) (*SweepResult, error) {
	if rounds <= 0 {
		rounds = 3
	}
	if len(bufSizes) == 0 {
		bufSizes = []int{4, 8, 16, 32, 64, 128}
	}
	res := &SweepResult{Rounds: rounds}
	for _, buf := range bufSizes {
		pair, err := runPair(progs.Sync2(rounds, buf), opts)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, SweepPoint{BufBytes: buf, Cmp: pair.Cmp})
	}
	return res, nil
}
