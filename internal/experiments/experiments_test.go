package experiments

import (
	"math"
	"testing"

	"faultspace"
	"faultspace/internal/progs"
)

func TestTable1MatchesPaper(t *testing.T) {
	t1, err := Table1(5)
	if err != nil {
		t.Fatal(err)
	}
	// λ = g·w with g = 0.057 FIT/Mbit, Δt = 1 s @ 1 GHz, Δm = 1 MiB.
	// The signature mantissa of the paper's Table I is 1.328.
	if math.Abs(t1.Lambda-1.328e-13)/1.328e-13 > 0.001 {
		t.Errorf("lambda = %g, want ~1.328e-13", t1.Lambda)
	}
	if len(t1.Rows) != 6 {
		t.Fatalf("rows = %d", len(t1.Rows))
	}
	if t1.Rows[0].P < 0.9999999 {
		t.Errorf("P(0) = %v", t1.Rows[0].P)
	}
	// P(1)/P(2) ≈ 2/λ: the single-fault dominance that justifies
	// single-fault injection (§III-A).
	dominance := t1.Rows[1].P / t1.Rows[2].P
	if dominance < 1e12 {
		t.Errorf("P(1)/P(2) = %g, want > 1e12", dominance)
	}
}

func TestFigure1MatchesPaper(t *testing.T) {
	f1, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if f1.RawCoordinates != 108 {
		t.Errorf("raw = %d, want 108", f1.RawCoordinates)
	}
	if f1.Experiments != 8 {
		t.Errorf("experiments = %d, want 8", f1.Experiments)
	}
	if f1.ClassWeight != 7 {
		t.Errorf("weight = %d, want 7", f1.ClassWeight)
	}
	if f1.NaiveCoverage != 0.5 {
		t.Errorf("naive coverage = %v, want 0.5", f1.NaiveCoverage)
	}
	want := 1 - 28.0/108.0
	if math.Abs(f1.WeightCoverage-want) > 1e-12 {
		t.Errorf("weighted coverage = %v, want %v (≈74.1%%)", f1.WeightCoverage, want)
	}
}

func TestDilutionMatchesPaper(t *testing.T) {
	d, err := Dilution(4, faultspace.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	if d.Baseline.CoverageWeighted != 0.625 {
		t.Errorf("baseline coverage = %v, want 0.625", d.Baseline.CoverageWeighted)
	}
	if d.DFT.CoverageWeighted != 0.75 {
		t.Errorf("DFT coverage = %v, want 0.75", d.DFT.CoverageWeighted)
	}
	if d.DFTPrime.CoverageWeighted != 0.75 {
		t.Errorf("DFT' coverage = %v, want 0.75", d.DFTPrime.CoverageWeighted)
	}
	if d.Baseline.FailWeight != 48 || d.DFT.FailWeight != 48 || d.DFTPrime.FailWeight != 48 {
		t.Errorf("failure counts = %d/%d/%d, want 48 each",
			d.Baseline.FailWeight, d.DFT.FailWeight, d.DFTPrime.FailWeight)
	}
	// The baseline's activated-only coverage is 0 (every activated fault
	// fails); DFT' inflates it — the metric is gameable under Barbosa's
	// restriction too.
	if d.Baseline.CoverageActivatedOnly != 0 {
		t.Errorf("baseline activated-only = %v, want 0", d.Baseline.CoverageActivatedOnly)
	}
	if d.DFTPrime.CoverageActivatedOnly <= 0.5 {
		t.Errorf("DFT' activated-only = %v, want > 0.5", d.DFTPrime.CoverageActivatedOnly)
	}
}

// TestDilutionMoreNopsMoreCoverage: the coverage cheat scales — more NOPs,
// higher coverage, identical failures (§IV-B: "we could arbitrarily
// increase the coverage to any c < 100%").
func TestDilutionMoreNopsMoreCoverage(t *testing.T) {
	prev := 0.0
	for _, n := range []int{0, 8, 40} {
		d, err := Dilution(n, faultspace.ScanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if d.DFT.FailWeight != 48 {
			t.Fatalf("n=%d: failures = %d, want 48", n, d.DFT.FailWeight)
		}
		if n > 0 && d.DFT.CoverageWeighted <= prev {
			t.Errorf("n=%d: coverage %v did not grow past %v", n, d.DFT.CoverageWeighted, prev)
		}
		prev = d.DFT.CoverageWeighted
	}
	if prev < 0.9 {
		t.Errorf("40 NOPs should push coverage past 90%%, got %v", prev)
	}
}

func TestFigure2SmallConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("scans are slow")
	}
	f2, err := Figure2(Figure2Config{BinSemRounds: 2, SyncRounds: 2, SyncBufBytes: 32},
		faultspace.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Shape assertions that must hold at any workload size.
	if !f2.BinSem2.Cmp.FailuresSayImproved() {
		t.Error("bin_sem2 hardening must reduce weighted failures")
	}
	if f2.Sync2.Cmp.RatioWeighted <= 1 {
		t.Errorf("sync2 hardening must worsen weighted failures, ratio = %v",
			f2.Sync2.Cmp.RatioWeighted)
	}
	if !f2.Sync2.Cmp.Misleading() {
		t.Error("sync2 must expose the coverage-vs-failures disagreement")
	}
	for _, p := range []Pair{f2.BinSem2, f2.Sync2} {
		if p.Hardened.RAMBytes <= p.Baseline.RAMBytes {
			t.Errorf("%s: hardened RAM %d must exceed baseline %d",
				p.Name, p.Hardened.RAMBytes, p.Baseline.RAMBytes)
		}
		if p.Hardened.RuntimeCycles <= p.Baseline.RuntimeCycles {
			t.Errorf("%s: hardened runtime must exceed baseline", p.Name)
		}
	}
}

func TestPruneStatsFor(t *testing.T) {
	p, err := progs.Hi().Baseline()
	if err != nil {
		t.Fatal(err)
	}
	st, err := PruneStatsFor(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.SpaceSize != 128 || st.Experiments != 16 {
		t.Errorf("stats = %+v, want w=128 experiments=16", st)
	}
	if st.ReductionFactor != 8 {
		t.Errorf("reduction = %v, want 8", st.ReductionFactor)
	}
	// 16 classes of weight 3 cover 48 coordinates; the remaining 80 are
	// known No Effect: together the full 128-coordinate space.
	if st.KnownNoEffect+48 != st.SpaceSize {
		t.Errorf("partition numbers inconsistent: %+v", st)
	}
}

func TestSamplingAgainstGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling campaigns are slow")
	}
	p, err := progs.Sync2(2, 32).Baseline()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Sampling(p, 3000, 5, faultspace.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(s.TrueFailWeight)
	// The correct estimators must bracket the truth in their 95% CI
	// (allowing the occasional seed to miss would flake; seed 5 verified).
	for _, est := range []SampleEstimate{s.Raw, s.Effective} {
		if truth < est.FailLo || truth > est.FailHi {
			t.Errorf("%s: truth %v outside CI [%v, %v]", est.Mode, truth, est.FailLo, est.FailHi)
		}
		if rel := math.Abs(est.FailEstimate-truth) / truth; rel > 0.25 {
			t.Errorf("%s: estimate %v deviates %.0f%% from truth %v",
				est.Mode, est.FailEstimate, 100*rel, truth)
		}
	}
	// The biased estimator extrapolates over classes, not coordinates: its
	// scale is off by orders of magnitude (Pitfall 2).
	if s.Biased.FailEstimate > truth/10 {
		t.Errorf("biased estimate %v suspiciously close to truth %v — bias demo broken",
			s.Biased.FailEstimate, truth)
	}
}
