package experiments

import (
	"fmt"

	"faultspace"
	"faultspace/internal/harden"
	"faultspace/internal/progs"
)

// DilutionResult is the §IV Gedankenexperiment: the "Hi" benchmark under
// the bogus DFT (NOP dilution) and DFT′ (dummy-load dilution)
// "fault-tolerance" transformations.
type DilutionResult struct {
	Baseline VariantAnalysis
	DFT      VariantAnalysis // + n NOPs
	DFTPrime VariantAnalysis // + n dummy loads

	// CmpDFT and CmpDFTPrime compare each cheat against the baseline.
	CmpDFT      faultspace.Comparison
	CmpDFTPrime faultspace.Comparison
}

// Dilution runs the Gedankenexperiment with n prepended instructions.
// With n = 4 the numbers match the paper exactly: coverage climbs from
// 62.5 % to 75.0 % while the absolute failure count stays at 48.
func Dilution(n int, opts faultspace.ScanOptions) (*DilutionResult, error) {
	spec := progs.Hi()

	base, err := spec.Baseline()
	if err != nil {
		return nil, err
	}
	dft, err := spec.WithVariant(harden.Dilution{NOPs: n})
	if err != nil {
		return nil, err
	}
	dftPrime, err := spec.WithVariant(harden.DilutionLoads{Loads: n, Addrs: spec.DataAddrs})
	if err != nil {
		return nil, err
	}

	var r DilutionResult
	if r.Baseline, err = scanVariant(base, opts); err != nil {
		return nil, err
	}
	if r.DFT, err = scanVariant(dft, opts); err != nil {
		return nil, err
	}
	if r.DFTPrime, err = scanVariant(dftPrime, opts); err != nil {
		return nil, err
	}
	if r.CmpDFT, err = faultspace.Compare(r.Baseline.Analysis, r.DFT.Analysis); err != nil {
		return nil, err
	}
	if r.CmpDFTPrime, err = faultspace.Compare(r.Baseline.Analysis, r.DFTPrime.Analysis); err != nil {
		return nil, err
	}
	return &r, nil
}

// Verify checks the invariant of the Gedankenexperiment: neither cheat may
// change the absolute failure count, yet both must raise full-space
// coverage. It returns an error describing the first violated property.
func (r *DilutionResult) Verify() error {
	if r.DFT.FailWeight != r.Baseline.FailWeight {
		return fmt.Errorf("DFT changed the failure count: %d -> %d",
			r.Baseline.FailWeight, r.DFT.FailWeight)
	}
	if r.DFTPrime.FailWeight != r.Baseline.FailWeight {
		return fmt.Errorf("DFT' changed the failure count: %d -> %d",
			r.Baseline.FailWeight, r.DFTPrime.FailWeight)
	}
	if r.DFT.CoverageWeighted <= r.Baseline.CoverageWeighted {
		return fmt.Errorf("DFT did not inflate coverage (%g <= %g)",
			r.DFT.CoverageWeighted, r.Baseline.CoverageWeighted)
	}
	if r.DFTPrime.CoverageWeighted <= r.Baseline.CoverageWeighted {
		return fmt.Errorf("DFT' did not inflate coverage (%g <= %g)",
			r.DFTPrime.CoverageWeighted, r.Baseline.CoverageWeighted)
	}
	// DFT' additionally defeats "activated-faults-only" counting: its
	// dummy loads activate the diluted coordinates, so coverage rises even
	// when known-No-Effect coordinates are excluded (§IV-B).
	if r.DFTPrime.CoverageActivatedOnly <= r.Baseline.CoverageActivatedOnly {
		return fmt.Errorf("DFT' did not inflate activated-only coverage (%g <= %g)",
			r.DFTPrime.CoverageActivatedOnly, r.Baseline.CoverageActivatedOnly)
	}
	return nil
}
