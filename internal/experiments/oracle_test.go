package experiments

import (
	"testing"

	"faultspace"
	"faultspace/internal/progs"
)

// runOracle drives the differential oracle for one space/objective pair
// and fails the test on any scan/brute-force disagreement (invariant 13).
func runOracle(t *testing.T, space faultspace.SpaceKind, objective string, n int) *OracleReport {
	t.Helper()
	p, err := progs.Hi().Baseline()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RandomCoordinateOracle(p, faultspace.ScanOptions{
		Space:     space,
		Objective: objective,
	}, n, 0xfa17)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coordinates != n || rep.InClass+rep.Pruned != n {
		t.Fatalf("coordinate accounting: %d checked, %d in-class + %d pruned",
			rep.Coordinates, rep.InClass, rep.Pruned)
	}
	for _, m := range rep.Mismatches {
		t.Errorf("space %s: (%d, %d) inClass=%v: scan %v, oracle %v",
			space, m.Slot, m.Bit, m.InClass, m.Scan, m.Oracle)
	}
	return rep
}

func TestOracleRandomCoordinatesSkip(t *testing.T) {
	rep := runOracle(t, faultspace.SpaceSkip, "", 200)
	// The skip space prunes nops, fallen-through branches and dead data
	// ops; hi must exercise both sides of the partition.
	if rep.InClass == 0 || rep.Pruned == 0 {
		t.Errorf("degenerate draw: %d in-class, %d pruned", rep.InClass, rep.Pruned)
	}
}

func TestOracleRandomCoordinatesPC(t *testing.T) {
	// The PC space groups classes that are only outcome-equivalent, so it
	// is the sharpest probe of the objective soundness contract — run it
	// under every builtin objective plus none.
	for _, obj := range append([]string{""}, faultspace.ObjectiveNames()...) {
		rep := runOracle(t, faultspace.SpacePC, obj, 200)
		if rep.InClass == 0 {
			t.Errorf("objective %q: no coordinate hit a class", obj)
		}
	}
}

func TestOracleRandomCoordinatesBurst(t *testing.T) {
	for _, space := range []faultspace.SpaceKind{faultspace.SpaceBurst2, faultspace.SpaceBurst4} {
		rep := runOracle(t, space, "corrupt", 200)
		if rep.InClass == 0 || rep.Pruned == 0 {
			t.Errorf("%s: degenerate draw: %d in-class, %d pruned", space, rep.InClass, rep.Pruned)
		}
	}
}
