package experiments

import (
	"testing"

	"faultspace"
	"faultspace/internal/progs"
)

// runOracle drives the differential oracle for one space/objective pair
// and fails the test on any scan/brute-force disagreement (invariant 13).
func runOracle(t *testing.T, space faultspace.SpaceKind, objective string, n int) *OracleReport {
	return runOracleStrategy(t, space, objective, 0, n)
}

func runOracleStrategy(t *testing.T, space faultspace.SpaceKind, objective string, strat faultspace.Strategy, n int) *OracleReport {
	t.Helper()
	p, err := progs.Hi().Baseline()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RandomCoordinateOracle(p, faultspace.ScanOptions{
		Space:     space,
		Objective: objective,
		Strategy:  strat,
	}, n, 0xfa17)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coordinates != n || rep.InClass+rep.Pruned != n {
		t.Fatalf("coordinate accounting: %d checked, %d in-class + %d pruned",
			rep.Coordinates, rep.InClass, rep.Pruned)
	}
	for _, m := range rep.Mismatches {
		t.Errorf("space %s: (%d, %d) inClass=%v: scan %v, oracle %v",
			space, m.Slot, m.Bit, m.InClass, m.Scan, m.Oracle)
	}
	return rep
}

func TestOracleRandomCoordinatesSkip(t *testing.T) {
	rep := runOracle(t, faultspace.SpaceSkip, "", 200)
	// The skip space prunes nops, fallen-through branches and dead data
	// ops; hi must exercise both sides of the partition.
	if rep.InClass == 0 || rep.Pruned == 0 {
		t.Errorf("degenerate draw: %d in-class, %d pruned", rep.InClass, rep.Pruned)
	}
}

func TestOracleRandomCoordinatesPC(t *testing.T) {
	// The PC space groups classes that are only outcome-equivalent, so it
	// is the sharpest probe of the objective soundness contract — run it
	// under every builtin objective plus none.
	for _, obj := range append([]string{""}, faultspace.ObjectiveNames()...) {
		rep := runOracle(t, faultspace.SpacePC, obj, 200)
		if rep.InClass == 0 {
			t.Errorf("objective %q: no coordinate hit a class", obj)
		}
	}
}

func TestOracleRandomCoordinatesBurst(t *testing.T) {
	for _, space := range []faultspace.SpaceKind{faultspace.SpaceBurst2, faultspace.SpaceBurst4} {
		rep := runOracle(t, space, "corrupt", 200)
		if rep.InClass == 0 || rep.Pruned == 0 {
			t.Errorf("%s: degenerate draw: %d in-class, %d pruned", space, rep.InClass, rep.Pruned)
		}
	}
}

// TestOracleRandomCoordinatesFork is invariant 14's oracle leg: the
// fully-accelerated FORK-strategy scan must agree with the plain
// rerun-from-reset brute force at random raw coordinates, across all
// six fault spaces. The skip space runs under the dos objective so the
// attack flag crosses the fork path too.
func TestOracleRandomCoordinatesFork(t *testing.T) {
	for _, tc := range []struct {
		space     faultspace.SpaceKind
		objective string
	}{
		{faultspace.SpaceMemory, ""},
		{faultspace.SpaceRegisters, ""},
		{faultspace.SpaceSkip, "dos"},
		{faultspace.SpacePC, ""},
		{faultspace.SpaceBurst2, ""},
		{faultspace.SpaceBurst4, ""},
	} {
		rep := runOracleStrategy(t, tc.space, tc.objective, faultspace.StrategyFork, 200)
		// hi's live-register region is a sliver of slots × 512 bits, so a
		// random register draw legitimately lands all-pruned; every other
		// space must exercise both sides of the partition.
		if rep.InClass == 0 && tc.space != faultspace.SpaceRegisters {
			t.Errorf("%s: no coordinate hit a class", tc.space)
		}
	}
}
