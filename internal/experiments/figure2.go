package experiments

import (
	"faultspace"
	"faultspace/internal/progs"
)

// Pair is one benchmark's baseline/hardened scan pair with its comparison.
type Pair struct {
	Name     string
	Baseline VariantAnalysis
	Hardened VariantAnalysis
	Cmp      faultspace.Comparison
}

// Figure2Result aggregates the Figure 2 reproduction: full fault-space
// scans of bin_sem2 and sync2 in baseline and SUM+DMR-hardened variants.
// From it every panel of the figure follows:
//
//	2a  unweighted fault coverage     (Analysis.CoverageUnweighted)
//	2b  weighted fault coverage       (Analysis.CoverageWeighted)
//	2d  unweighted failure counts     (Analysis.FailClasses)
//	2e  weighted failure counts       (Analysis.FailWeight)
//	2g  runtime and memory usage      (Analysis.RuntimeCycles, RAMBytes)
type Figure2Result struct {
	BinSem2 Pair
	Sync2   Pair
}

// Figure2Config sizes the benchmark workloads.
type Figure2Config struct {
	// BinSemRounds is the number of bin_sem2 ping-pong rounds (default 4).
	BinSemRounds int
	// SyncRounds is the number of sync2 handshakes (default 3).
	SyncRounds int
	// SyncBufBytes is sync2's unprotected message-buffer size (default 64).
	SyncBufBytes int
}

func (c Figure2Config) withDefaults() Figure2Config {
	if c.BinSemRounds == 0 {
		c.BinSemRounds = 4
	}
	if c.SyncRounds == 0 {
		c.SyncRounds = 3
	}
	if c.SyncBufBytes == 0 {
		c.SyncBufBytes = 64
	}
	return c
}

// Figure2 runs the four full fault-space scans behind Figure 2.
func Figure2(cfg Figure2Config, opts faultspace.ScanOptions) (*Figure2Result, error) {
	cfg = cfg.withDefaults()
	var (
		r   Figure2Result
		err error
	)
	if r.BinSem2, err = runPair(progs.BinSem2(cfg.BinSemRounds), opts); err != nil {
		return nil, err
	}
	if r.Sync2, err = runPair(progs.Sync2(cfg.SyncRounds, cfg.SyncBufBytes), opts); err != nil {
		return nil, err
	}
	return &r, nil
}

func runPair(spec progs.Spec, opts faultspace.ScanOptions) (Pair, error) {
	p := Pair{Name: spec.Name}
	base, err := spec.Baseline()
	if err != nil {
		return p, err
	}
	hard, err := spec.Hardened()
	if err != nil {
		return p, err
	}
	if p.Baseline, err = scanVariant(base, opts); err != nil {
		return p, err
	}
	if p.Hardened, err = scanVariant(hard, opts); err != nil {
		return p, err
	}
	if p.Cmp, err = faultspace.Compare(p.Baseline.Analysis, p.Hardened.Analysis); err != nil {
		return p, err
	}
	return p, nil
}

// PruneStats reports the §III-C experiment-reduction numbers for one
// benchmark variant: raw fault-space size w versus conducted experiments.
type PruneStats struct {
	Name            string
	SpaceSize       uint64
	Experiments     uint64
	KnownNoEffect   uint64
	ReductionFactor float64
}

// PruneStatsFor computes pruning statistics for a program.
func PruneStatsFor(p *faultspace.Program) (PruneStats, error) {
	t := faultspace.Target(p)
	_, fs, err := t.Prepare(faultspace.DefaultMaxGoldenCycles)
	if err != nil {
		return PruneStats{}, err
	}
	return PruneStats{
		Name:            p.Name,
		SpaceSize:       fs.Size(),
		Experiments:     uint64(len(fs.Classes)),
		KnownNoEffect:   fs.KnownNoEffect,
		ReductionFactor: fs.ReductionFactor(),
	}, nil
}
