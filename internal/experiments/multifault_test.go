package experiments

import (
	"testing"

	"faultspace"
	"faultspace/internal/progs"
)

func TestMultiFault(t *testing.T) {
	if testing.Short() {
		t.Skip("4560 double-fault experiments")
	}
	r, err := MultiFault(faultspace.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The single-fault guarantee must be airtight: 96 experiments, zero
	// failures (this is DESIGN.md invariant 5 exercised via the campaign
	// layer).
	if r.SingleTotal != 96 || r.SingleFailures != 0 {
		t.Errorf("single faults: %d/%d failed, want 0/96", r.SingleFailures, r.SingleTotal)
	}
	// All unordered pairs of 96 bits: C(96,2) = 4560.
	if r.PairTotal != 4560 {
		t.Fatalf("pair total = %d, want 4560", r.PairTotal)
	}
	if r.PairFailures == 0 {
		t.Fatal("double faults must defeat SUM+DMR for some pairs")
	}

	// Analytical expectations for the complement-checksum vote:
	//   P+R pairs: replica wins the vote but is corrupt -> always fail.
	//   R+C pairs: check refutes the intact primary -> always fail.
	//   P+C pairs: fail iff the two flips hit the same bit position.
	//   Same-word pairs (P+P, R+R, C+C): detected or masked -> benign.
	expect := map[string]struct{ fail, total int }{
		"P+R": {32 * 32, 32 * 32},
		"C+R": {32 * 32, 32 * 32},
		"C+P": {32, 32 * 32},
		"P+P": {0, 32 * 31 / 2},
		"R+R": {0, 32 * 31 / 2},
		"C+C": {0, 32 * 31 / 2},
	}
	for key, want := range expect {
		if got := r.PairTotalByWords[key]; got != want.total {
			t.Errorf("%s: total = %d, want %d", key, got, want.total)
		}
		if got := r.PairFailuresByWords[key]; got != want.fail {
			t.Errorf("%s: failures = %d, want %d", key, got, want.fail)
		}
	}
	t.Logf("pair failure fraction: %.1f%% (%d of %d)",
		100*r.FailureFraction(), r.PairFailures, r.PairTotal)
}

func TestMultiFaultTMR(t *testing.T) {
	if testing.Short() {
		t.Skip("4560 double-fault experiments")
	}
	r, err := MultiFaultTMR(faultspace.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.SingleFailures != 0 {
		t.Errorf("TMR single faults: %d failures, want 0", r.SingleFailures)
	}
	// Bitwise majority fails only for same-bit flips in two different
	// copies: 3 copy pairs × 32 bit positions = 96 of 4560.
	if r.PairFailures != 96 {
		t.Errorf("TMR pair failures = %d, want 96", r.PairFailures)
	}
	for _, key := range []string{"P+R", "C+R", "C+P"} {
		if got := r.PairFailuresByWords[key]; got != 32 {
			t.Errorf("TMR %s failures = %d, want 32 (same-bit pairs)", key, got)
		}
	}
	for _, key := range []string{"P+P", "R+R", "C+C"} {
		if got := r.PairFailuresByWords[key]; got != 0 {
			t.Errorf("TMR %s failures = %d, want 0", key, got)
		}
	}
}

func TestMechanismsComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("six full scans")
	}
	m, err := Mechanisms([]progs.Spec{progs.BinSem2(2)}, faultspace.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rows) != 1 {
		t.Fatalf("rows = %d", len(m.Rows))
	}
	row := m.Rows[0]
	if !row.SumDMR.FailuresSayImproved() || !row.TMR.FailuresSayImproved() {
		t.Errorf("both mechanisms must help on bin_sem2: dmr r=%.3f tmr r=%.3f",
			row.SumDMR.RatioWeighted, row.TMR.RatioWeighted)
	}
	// Identical baselines: the two comparisons share the denominator.
	if row.SumDMR.Baseline.FailWeight != row.TMR.Baseline.FailWeight {
		t.Error("mechanism comparisons must share the baseline")
	}
}
