package experiments

import (
	"fmt"

	"faultspace"
	"faultspace/internal/asm"
	"faultspace/internal/campaign"
	"faultspace/internal/harden"
)

// MultiFaultResult quantifies what §III-A's single-fault approximation
// protects: the SUM+DMR mechanism guarantees correction of any SINGLE
// bit flip in a protected word's primary/replica/checksum triple, but the
// guarantee collapses for fault PAIRS. The experiment enumerates, on a
// minimal protected store→load program, every single flip and every
// unordered pair of flips across the triple at a fixed injection slot.
type MultiFaultResult struct {
	// Single-fault results: must be all-benign.
	SingleTotal    int
	SingleFailures int

	// Double-fault results over all unordered bit pairs of the triple.
	PairTotal    int
	PairFailures int

	// Breakdown of pair failures by which words the two flips hit:
	// "P+R", "P+C", "R+C", "P+P", "R+R", "C+C".
	PairFailuresByWords map[string]int
	PairTotalByWords    map[string]int
}

// FailureFraction returns the fraction of fault pairs that defeat the
// mechanism.
func (r *MultiFaultResult) FailureFraction() float64 {
	if r.PairTotal == 0 {
		return 0
	}
	return float64(r.PairFailures) / float64(r.PairTotal)
}

// multiFaultProgram is the minimal protected store→load vehicle: store a
// constant through pst, idle, load it back through pld and print all four
// bytes.
const multiFaultProgram = `
        .ram    48
        .equ    SERIAL, 0x10000
        li      r1, 0x5AC3_0F66
        pst     r1, 0(r0)
        nop
        nop
        pld     r2, 0(r0)
        sb      r2, SERIAL(r0)
        shri    r3, r2, 8
        sb      r3, SERIAL(r0)
        shri    r3, r2, 16
        sb      r3, SERIAL(r0)
        shri    r3, r2, 24
        sb      r3, SERIAL(r0)
        halt
`

const (
	mfReplicaOffset = 16
	mfCheckOffset   = 32
	// mfSlot injects after the 4-instruction pst expansion retired
	// (li + sw + sw + xori + sw = 5 cycles) and before the pld begins.
	mfSlot = 6
)

// MultiFault runs the single- and double-fault enumeration for SUM+DMR.
func MultiFault(opts faultspace.ScanOptions) (*MultiFaultResult, error) {
	return MultiFaultWith(harden.SumDMR{
		ReplicaOffset: mfReplicaOffset,
		CheckOffset:   mfCheckOffset,
	}, opts)
}

// MultiFaultTMR runs the enumeration for the TMR mechanism on the same
// layout, making the two mechanisms' double-fault behavior directly
// comparable: TMR's bitwise majority survives every pair except same-bit
// flips in two copies.
func MultiFaultTMR(opts faultspace.ScanOptions) (*MultiFaultResult, error) {
	return MultiFaultWith(harden.TMR{
		Copy2Offset: mfReplicaOffset,
		Copy3Offset: mfCheckOffset,
	}, opts)
}

// MultiFaultWith runs the enumeration under an arbitrary hardening
// variant that uses the shared three-region layout.
func MultiFaultWith(v harden.Variant, opts faultspace.ScanOptions) (*MultiFaultResult, error) {
	stmts, err := asm.Parse(multiFaultProgram)
	if err != nil {
		return nil, err
	}
	expanded, err := v.Apply(stmts)
	if err != nil {
		return nil, err
	}
	prog, err := asm.AssembleStmts("multifault", expanded)
	if err != nil {
		return nil, err
	}
	target := faultspace.Target(prog)
	golden, _, err := target.Prepare(1 << 16)
	if err != nil {
		return nil, err
	}
	cfg := campaign.Config{
		TimeoutFactor: opts.TimeoutFactor,
		Workers:       1,
	}

	// The 96 bits of the protected triple: primary word at byte 0,
	// replica at 16, checksum at 32.
	var bits []uint64
	for _, base := range []uint64{0, mfReplicaOffset, mfCheckOffset} {
		for b := uint64(0); b < 32; b++ {
			bits = append(bits, base*8+b)
		}
	}
	word := func(bit uint64) string {
		switch bit / (8 * mfReplicaOffset) {
		case 0:
			return "P"
		case 1:
			return "R"
		default:
			return "C"
		}
	}

	res := &MultiFaultResult{
		PairFailuresByWords: make(map[string]int),
		PairTotalByWords:    make(map[string]int),
	}

	for _, b := range bits {
		o, err := campaign.RunSingle(target, golden, cfg, mfSlot, b)
		if err != nil {
			return nil, err
		}
		res.SingleTotal++
		if !o.Benign() {
			res.SingleFailures++
		}
	}

	for i := 0; i < len(bits); i++ {
		for j := i + 1; j < len(bits); j++ {
			o, err := campaign.RunMulti(target, golden, cfg, faultspace.SpaceMemory,
				[]campaign.Coord{{Slot: mfSlot, Bit: bits[i]}, {Slot: mfSlot, Bit: bits[j]}})
			if err != nil {
				return nil, err
			}
			key := pairKey(word(bits[i]), word(bits[j]))
			res.PairTotal++
			res.PairTotalByWords[key]++
			if !o.Benign() {
				res.PairFailures++
				res.PairFailuresByWords[key]++
			}
		}
	}
	return res, nil
}

func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return fmt.Sprintf("%s+%s", a, b)
}
