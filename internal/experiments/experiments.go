// Package experiments regenerates every table and figure of the paper's
// evaluation. Each function corresponds to one artifact (see DESIGN.md's
// experiment index) and returns structured results; rendering lives in
// internal/report and cmd/favreport.
package experiments

import (
	"faultspace"
	"faultspace/internal/machine"
	"faultspace/internal/metrics"
	"faultspace/internal/pruning"
	"faultspace/internal/trace"
)

// Table1 reproduces Table I: Poisson probabilities for k = 0..kMax
// independent faults hitting one benchmark run of Δt = 10⁹ cycles at 1 GHz
// with Δm = 1 MiB of memory, at the mean DRAM soft-error rate of the three
// studies the paper cites (g = 0.057 FIT/Mbit).
func Table1(kMax int) (*metrics.FaultCountTable, error) {
	const (
		deltaT     = 1_000_000_000 // 1 s at 1 GHz
		deltaMBits = 8 << 20       // 1 MiB in bits
		clockHz    = 1e9
	)
	return metrics.BuildFaultCountTable(metrics.MeanPaperRate, deltaT, deltaMBits, clockHz, kMax)
}

// Figure1Result captures the def/use pruning example of Figure 1: a
// 12-cycle × 9-bit fault space where one byte is written at cycle 4 and
// read back at cycle 11.
type Figure1Result struct {
	RawCoordinates uint64  // 108 = 12 × 9
	Experiments    int     // 8: one per bit of the written byte
	ClassWeight    uint64  // 7: the def/use lifetime of each class
	KnownNoEffect  uint64  // coordinates needing no experiment
	NaiveCoverage  float64 // 1 − 4/8, the Pitfall-1 mistake
	WeightCoverage float64 // 1 − 4·7/108 ≈ 74.1 %
	Space          *pruning.FaultSpace
}

// Figure1 builds the paper's illustrative fault space and evaluates both
// accounting rules under the paper's assumption that four of the eight
// experiments fail.
func Figure1() (*Figure1Result, error) {
	g := &trace.Golden{
		Name:    "figure1",
		Cycles:  12,
		RAMBits: 9,
		Accesses: []trace.Access{
			{Cycle: 4, Addr: 0, Size: 1, Kind: machine.AccessWrite},
			{Cycle: 11, Addr: 0, Size: 1, Kind: machine.AccessRead},
		},
	}
	fs, err := pruning.Build(g)
	if err != nil {
		return nil, err
	}
	r := &Figure1Result{
		RawCoordinates: fs.Size(),
		Experiments:    len(fs.Classes),
		KnownNoEffect:  fs.KnownNoEffect,
		Space:          fs,
	}
	if len(fs.Classes) > 0 {
		r.ClassWeight = fs.Classes[0].Weight()
	}
	// The paper assumes four of the eight conducted experiments fail.
	const failed = 4
	if r.NaiveCoverage, err = metrics.Coverage(failed, uint64(r.Experiments)); err != nil {
		return nil, err
	}
	if r.WeightCoverage, err = metrics.Coverage(failed*r.ClassWeight, r.RawCoordinates); err != nil {
		return nil, err
	}
	return r, nil
}

// VariantAnalysis pairs a scan analysis with the variant's memory demand,
// the two quantities of Figure 2g.
type VariantAnalysis struct {
	faultspace.Analysis
	RAMBytes int
}

// scanVariant assembles, scans and analyzes one program.
func scanVariant(p *faultspace.Program, opts faultspace.ScanOptions) (VariantAnalysis, error) {
	scan, err := faultspace.Scan(p, opts)
	if err != nil {
		return VariantAnalysis{}, err
	}
	a, err := faultspace.Analyze(scan)
	if err != nil {
		return VariantAnalysis{}, err
	}
	return VariantAnalysis{Analysis: a, RAMBytes: p.RAMSize}, nil
}
