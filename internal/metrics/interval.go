package metrics

import (
	"fmt"
	"math"
)

// Interval is a two-sided confidence interval for a proportion.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether p lies inside the interval.
func (iv Interval) Contains(p float64) bool { return p >= iv.Lo && p <= iv.Hi }

// Width returns Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Z95 and Z99 are the standard-normal quantiles for common confidence
// levels.
const (
	Z95 = 1.959963984540054
	Z99 = 2.5758293035489004
)

// WilsonInterval computes the Wilson score interval for a binomial
// proportion with `successes` out of n trials at normal quantile z.
// It behaves sanely at the extremes (0 or n successes), unlike the Wald
// interval, which matters for fault-injection campaigns where failure
// proportions can be very small.
func WilsonInterval(successes, n uint64, z float64) (Interval, error) {
	if n == 0 {
		return Interval{}, fmt.Errorf("metrics: Wilson interval with n = 0")
	}
	if successes > n {
		return Interval{}, fmt.Errorf("metrics: successes %d exceed n %d", successes, n)
	}
	if z <= 0 {
		return Interval{}, fmt.Errorf("metrics: z %g must be positive", z)
	}
	p := float64(successes) / float64(n)
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo := center - half
	hi := center + half
	// Snap the boundary cases exactly: at p = 0 (or 1) the Wilson bound is
	// analytically 0 (or 1) but floating-point evaluation leaves an
	// epsilon-sized residue that would exclude the point estimate.
	if successes == 0 || lo < 0 {
		lo = 0
	}
	if successes == n || hi > 1 {
		hi = 1
	}
	return Interval{Lo: lo, Hi: hi}, nil
}

// ExtrapolatedInterval scales a proportion interval to an absolute count
// interval over a population (confidence bounds for extrapolated failure
// counts, §V-C Corollary 2).
func ExtrapolatedInterval(iv Interval, population uint64) Interval {
	return Interval{
		Lo: iv.Lo * float64(population),
		Hi: iv.Hi * float64(population),
	}
}
