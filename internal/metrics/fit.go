package metrics

import "fmt"

// FITPerMbit is a soft-error rate in FIT per megabit: expected failures per
// 10⁹ device-hours per 10⁶ bits. DRAM field studies cited by the paper
// report 0.044-0.066 FIT/Mbit.
type FITPerMbit float64

// Soft-error rates from the three large-scale DRAM studies cited in
// §III-A of the paper.
const (
	RateSridharan2012 FITPerMbit = 0.066 // [9] in the paper
	RateHwang2012     FITPerMbit = 0.061 // [10]
	RateSridharan2013 FITPerMbit = 0.044 // [11]
)

// MeanPaperRate is the mean of the three study rates, g = 0.057 FIT/Mbit,
// which the paper adopts.
const MeanPaperRate = (RateSridharan2012 + RateHwang2012 + RateSridharan2013) / 3

const (
	nsPerHour     = 3600e9
	bitsPerMbit   = 1e6
	hoursPerGiga  = 1e9
	nsPerGigaHour = hoursPerGiga * nsPerHour
)

// PerBitPerNs converts the rate to per-bit per-nanosecond, the paper's
// g ≈ 1.6·10⁻²⁹ /(ns·bit) for 0.057 FIT/Mbit.
func (r FITPerMbit) PerBitPerNs() float64 {
	return float64(r) / (nsPerGigaHour * bitsPerMbit)
}

// PerBitPerCycle converts the rate to per-bit per-CPU-cycle for a given
// clock rate in Hz. At the paper's 1 GHz (one cycle per ns) this equals
// PerBitPerNs.
func (r FITPerMbit) PerBitPerCycle(clockHz float64) float64 {
	if clockHz <= 0 {
		return 0
	}
	cycleNs := 1e9 / clockHz
	return r.PerBitPerNs() * cycleNs
}

// Lambda computes the Poisson parameter λ = g·w for a fault space of
// spaceSize = Δt·Δm cycle·bit coordinates at the given clock rate.
func (r FITPerMbit) Lambda(spaceSize float64, clockHz float64) float64 {
	return r.PerBitPerCycle(clockHz) * spaceSize
}

// FaultCountTable is one row of the paper's Table I: the Poisson
// probability of exactly K independent faults hitting one benchmark run.
type FaultCountTable struct {
	Lambda float64
	Rows   []FaultCountRow
}

// FaultCountRow is one (k, probability) pair.
type FaultCountRow struct {
	K int
	P float64
}

// BuildFaultCountTable reproduces Table I for a benchmark with runtime
// deltaT cycles and memory deltaMBits bits, at rate r and clock clockHz,
// listing P(k faults) for k = 0..kMax.
func BuildFaultCountTable(r FITPerMbit, deltaT, deltaMBits uint64, clockHz float64, kMax int) (*FaultCountTable, error) {
	if kMax < 0 {
		return nil, fmt.Errorf("metrics: kMax %d must be non-negative", kMax)
	}
	lambda := r.Lambda(float64(deltaT)*float64(deltaMBits), clockHz)
	t := &FaultCountTable{Lambda: lambda}
	for k := 0; k <= kMax; k++ {
		p, err := PoissonPMF(lambda, k)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, FaultCountRow{K: k, P: p})
	}
	return t, nil
}
