package metrics

import (
	"math"
	"testing"
)

func TestMWTF(t *testing.T) {
	g := MeanPaperRate.PerBitPerCycle(1e9)
	m, err := MWTF(1, 48, g)
	if err != nil {
		t.Fatal(err)
	}
	// One run of work, 48 failing coordinates: MWTF = 1/(g·48).
	want := 1 / (g * 48)
	if math.Abs(m-want)/want > 1e-12 {
		t.Errorf("MWTF = %g, want %g", m, want)
	}
	inf, err := MWTF(1, 0, g)
	if err != nil || !math.IsInf(inf, 1) {
		t.Errorf("failure-free MWTF = %v, %v; want +Inf", inf, err)
	}
	if _, err := MWTF(0, 1, g); err == nil {
		t.Error("zero work must error")
	}
	if _, err := MWTF(1, 1, 0); err == nil {
		t.Error("zero rate must error")
	}
}

func TestMWTFGain(t *testing.T) {
	gain, err := MWTFGain(100, 25)
	if err != nil || gain != 4 {
		t.Errorf("gain = %v, %v; want 4", gain, err)
	}
	// MWTF gain is exactly the inverse of the comparison ratio r.
	r, err := Ratio(25, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gain-1/r) > 1e-12 {
		t.Errorf("MWTF gain %v != 1/r %v", gain, 1/r)
	}
	inf, err := MWTFGain(100, 0)
	if err != nil || !math.IsInf(inf, 1) {
		t.Errorf("gain with zero hardened failures = %v, %v; want +Inf", inf, err)
	}
	if _, err := MWTFGain(0, 1); err == nil {
		t.Error("failure-free baseline must error")
	}
}
