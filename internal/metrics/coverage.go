// Package metrics implements the evaluation metrics dissected by
// Schirmeier et al. (DSN 2015): the (flawed-for-comparison) fault-coverage
// factor, the paper's proposed extrapolated absolute failure counts, the
// comparison ratio r, the Poisson model for independent fault counts, and
// FIT-rate conversions.
//
// The package is pure math over counts; it does not depend on the
// simulator or campaign machinery.
package metrics

import "fmt"

// Coverage computes the fault-coverage factor c = 1 − F/N (Equation 2 of
// the paper): the probability of benign behavior given that exactly one
// fault occurred, estimated from F failures among N observations.
//
// Whether this number is meaningful depends entirely on what F and N count:
//
//   - N = raw fault-space size w and F = weighted failure count → the
//     correct per-program coverage (still unfit for *comparing* programs,
//     §IV).
//   - N = number of conducted experiments after def/use pruning and
//     F = failed experiments → Pitfall 1 (unweighted result accounting).
func Coverage(failures, n uint64) (float64, error) {
	if n == 0 {
		return 0, fmt.Errorf("metrics: coverage with N = 0")
	}
	if failures > n {
		return 0, fmt.Errorf("metrics: failures %d exceed N %d", failures, n)
	}
	return 1 - float64(failures)/float64(n), nil
}

// CoverageFromSample estimates coverage from a sampling campaign:
// c ≈ 1 − F_sampled/N_sampled.
func CoverageFromSample(failuresSampled, nSampled uint64) (float64, error) {
	return Coverage(failuresSampled, nSampled)
}

// ExtrapolateFailures converts raw sampled failure counts into the paper's
// comparison metric (Pitfall 3, Corollary 2):
//
//	F_extrapolated = population · F_sampled / N_sampled
//
// where population is the fault-space size w the samples were drawn from
// (or w′ when known-No-Effect coordinates were excluded, Corollary 1).
func ExtrapolateFailures(population, failuresSampled, nSampled uint64) (float64, error) {
	if nSampled == 0 {
		return 0, fmt.Errorf("metrics: extrapolation with no samples")
	}
	if failuresSampled > nSampled {
		return 0, fmt.Errorf("metrics: failures %d exceed samples %d", failuresSampled, nSampled)
	}
	return float64(population) * float64(failuresSampled) / float64(nSampled), nil
}

// Ratio computes the comparison ratio r = F_hardened / F_baseline
// (§V, "Summary: Avoiding Pitfalls 1-3"). The hardened variant improves on
// the baseline iff r < 1. Both inputs must be extrapolated absolute failure
// counts over each variant's own complete fault space.
func Ratio(hardenedFailures, baselineFailures float64) (float64, error) {
	if baselineFailures <= 0 {
		return 0, fmt.Errorf("metrics: baseline failure count %g must be positive", baselineFailures)
	}
	if hardenedFailures < 0 {
		return 0, fmt.Errorf("metrics: hardened failure count %g must be non-negative", hardenedFailures)
	}
	return hardenedFailures / baselineFailures, nil
}

// PercentagePoints returns (a−b) in percentage points for two probabilities,
// as used when quantifying the Pitfall-1 gap between weighted and unweighted
// coverage.
func PercentagePoints(a, b float64) float64 { return (a - b) * 100 }
