package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCoverage(t *testing.T) {
	tests := []struct {
		f, n uint64
		want float64
	}{
		{48, 128, 0.625}, // the paper's Hi baseline
		{48, 192, 0.75},  // after DFT
		{0, 10, 1},
		{10, 10, 0},
	}
	for _, tt := range tests {
		got, err := Coverage(tt.f, tt.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("Coverage(%d, %d) = %v, want %v", tt.f, tt.n, got, tt.want)
		}
	}
	if _, err := Coverage(1, 0); err == nil {
		t.Error("N=0 must error")
	}
	if _, err := Coverage(11, 10); err == nil {
		t.Error("F>N must error")
	}
}

func TestExtrapolateFailures(t *testing.T) {
	got, err := ExtrapolateFailures(1000, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Errorf("got %v, want 50", got)
	}
	// A "full sample" (N = population, F = true F) is the identity.
	got, err = ExtrapolateFailures(128, 48, 128)
	if err != nil {
		t.Fatal(err)
	}
	if got != 48 {
		t.Errorf("identity extrapolation = %v, want 48", got)
	}
	if _, err := ExtrapolateFailures(10, 0, 0); err == nil {
		t.Error("N=0 must error")
	}
	if _, err := ExtrapolateFailures(10, 5, 4); err == nil {
		t.Error("F>N must error")
	}
}

func TestRatio(t *testing.T) {
	r, err := Ratio(5, 10)
	if err != nil || r != 0.5 {
		t.Errorf("Ratio(5,10) = %v, %v", r, err)
	}
	if _, err := Ratio(1, 0); err == nil {
		t.Error("baseline 0 must error")
	}
	if _, err := Ratio(-1, 1); err == nil {
		t.Error("negative hardened must error")
	}
}

func TestPercentagePoints(t *testing.T) {
	if got := PercentagePoints(0.75, 0.625); math.Abs(got-12.5) > 1e-12 {
		t.Errorf("got %v, want 12.5", got)
	}
}

func TestPoissonPMFBasics(t *testing.T) {
	// λ=0: all mass at k=0.
	p0, err := PoissonPMF(0, 0)
	if err != nil || p0 != 1 {
		t.Errorf("PMF(0,0) = %v, %v", p0, err)
	}
	p1, _ := PoissonPMF(0, 1)
	if p1 != 0 {
		t.Errorf("PMF(0,1) = %v, want 0", p1)
	}
	// Moderate λ: PMF sums to ~1.
	const lambda = 3.5
	var sum float64
	for k := 0; k < 60; k++ {
		p, err := PoissonPMF(lambda, k)
		if err != nil {
			t.Fatal(err)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("PMF sum = %v, want 1", sum)
	}
	if _, err := PoissonPMF(-1, 0); err == nil {
		t.Error("negative lambda must error")
	}
	if _, err := PoissonPMF(1, -1); err == nil {
		t.Error("negative k must error")
	}
}

func TestPoissonTinyLambda(t *testing.T) {
	// The paper's Table I regime: λ = g·w ≈ 1.33e-13.
	lambda := MeanPaperRate.Lambda(1e9*8*1024*1024, 1e9)
	if math.Abs(lambda-1.328e-13)/1.328e-13 > 0.01 {
		t.Fatalf("lambda = %g, want ~1.328e-13", lambda)
	}
	p1, err := PoissonPMF(lambda, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1-lambda)/lambda > 1e-9 {
		t.Errorf("P(1) = %g, want ~λ = %g", p1, lambda)
	}
	p2, _ := PoissonPMF(lambda, 2)
	want2 := lambda * lambda / 2
	if math.Abs(p2-want2)/want2 > 1e-9 {
		t.Errorf("P(2) = %g, want ~λ²/2 = %g", p2, want2)
	}
	// P(K>=2) must not collapse to 0 despite float cancellation.
	tail, err := PoissonAtLeast(lambda, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tail <= 0 || math.Abs(tail-want2)/want2 > 1e-6 {
		t.Errorf("P(K>=2) = %g, want ~%g", tail, want2)
	}
	// Single-fault dominance: ~2/λ ≈ 1.5e13 (the §III-A argument).
	dom, err := SingleFaultDominance(lambda)
	if err != nil {
		t.Fatal(err)
	}
	if dom < 1e12 {
		t.Errorf("dominance = %g, want > 1e12", dom)
	}
}

func TestPoissonComplementZero(t *testing.T) {
	got, err := PoissonComplementZero(1e-15)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 || math.Abs(got-1e-15)/1e-15 > 1e-9 {
		t.Errorf("1-P(0) = %g, want ~1e-15", got)
	}
	if _, err := PoissonComplementZero(-1); err == nil {
		t.Error("negative lambda must error")
	}
}

func TestPoissonAtLeastBounds(t *testing.T) {
	if p, _ := PoissonAtLeast(5, 0); p != 1 {
		t.Errorf("P(K>=0) = %v, want 1", p)
	}
	// Consistency: P(>=1) = 1 - P(0) for moderate λ.
	p, _ := PoissonAtLeast(2, 1)
	want := 1 - math.Exp(-2)
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("P(K>=1) = %v, want %v", p, want)
	}
}

func TestFITConversions(t *testing.T) {
	// The paper: g = 0.057 FIT/Mbit ≈ 1.6e-29 per ns per bit.
	g := MeanPaperRate.PerBitPerNs()
	if math.Abs(g-1.583e-29)/1.583e-29 > 0.01 {
		t.Errorf("g = %g, want ~1.58e-29", g)
	}
	// At 1 GHz a cycle is a nanosecond.
	if got := MeanPaperRate.PerBitPerCycle(1e9); math.Abs(got-g)/g > 1e-12 {
		t.Errorf("PerBitPerCycle(1GHz) = %g, want %g", got, g)
	}
	// At 2 GHz a cycle is half as long.
	if got := MeanPaperRate.PerBitPerCycle(2e9); math.Abs(got-g/2)/g > 1e-12 {
		t.Errorf("PerBitPerCycle(2GHz) = %g, want %g", got, g/2)
	}
	if MeanPaperRate.PerBitPerCycle(0) != 0 {
		t.Error("zero clock must yield 0")
	}
	if math.Abs(float64(MeanPaperRate)-0.057) > 1e-12 {
		t.Errorf("mean rate = %v, want 0.057", float64(MeanPaperRate))
	}
}

func TestBuildFaultCountTable(t *testing.T) {
	tbl, err := BuildFaultCountTable(MeanPaperRate, 1_000_000_000, 8<<20, 1e9, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tbl.Rows))
	}
	if tbl.Rows[0].K != 0 || tbl.Rows[0].P < 0.999999 {
		t.Errorf("P(0) = %v, want ~1", tbl.Rows[0].P)
	}
	// Table I's signature value: P(1) mantissa 1.328.
	p1 := tbl.Rows[1].P
	if math.Abs(p1-1.328e-13)/1.328e-13 > 0.001 {
		t.Errorf("P(1) = %g, want 1.328e-13", p1)
	}
	// Monotonically decreasing for k >= 1 in this regime.
	for k := 1; k < 5; k++ {
		if tbl.Rows[k+1].P >= tbl.Rows[k].P {
			t.Errorf("P(%d) = %g not below P(%d) = %g", k+1, tbl.Rows[k+1].P, k, tbl.Rows[k].P)
		}
	}
	if _, err := BuildFaultCountTable(MeanPaperRate, 1, 1, 1e9, -1); err == nil {
		t.Error("negative kMax must error")
	}
}

func TestWilsonInterval(t *testing.T) {
	iv, err := WilsonInterval(50, 100, Z95)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(0.5) {
		t.Errorf("interval %+v must contain 0.5", iv)
	}
	if iv.Lo < 0.39 || iv.Hi > 0.61 {
		t.Errorf("interval %+v too wide for n=100", iv)
	}
	// Extremes behave sanely.
	iv0, _ := WilsonInterval(0, 100, Z95)
	if iv0.Lo != 0 || iv0.Hi <= 0 || iv0.Hi > 0.05 {
		t.Errorf("zero-success interval %+v", iv0)
	}
	ivN, _ := WilsonInterval(100, 100, Z95)
	if ivN.Hi != 1 || ivN.Lo >= 1 || ivN.Lo < 0.95 {
		t.Errorf("all-success interval %+v", ivN)
	}
	for _, bad := range []struct {
		s, n uint64
		z    float64
	}{{1, 0, Z95}, {5, 4, Z95}, {1, 10, 0}} {
		if _, err := WilsonInterval(bad.s, bad.n, bad.z); err == nil {
			t.Errorf("WilsonInterval(%v) must error", bad)
		}
	}
}

// TestWilsonIntervalQuick property-tests the interval: bounds ordered,
// within [0,1], containing the point estimate, and shrinking with n.
func TestWilsonIntervalQuick(t *testing.T) {
	f := func(s uint16, nRaw uint16) bool {
		n := uint64(nRaw%1000) + 1
		succ := uint64(s) % (n + 1)
		iv, err := WilsonInterval(succ, n, Z95)
		if err != nil {
			return false
		}
		p := float64(succ) / float64(n)
		if iv.Lo < 0 || iv.Hi > 1 || iv.Lo > iv.Hi {
			return false
		}
		if !iv.Contains(p) {
			return false
		}
		big, err := WilsonInterval(succ*10, n*10, Z95)
		if err != nil {
			return false
		}
		return big.Width() <= iv.Width()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestMetricIdentitiesQuick property-tests DESIGN.md invariant 4:
// coverage/extrapolation identities and the ratio's invariance under
// uniform fault-rate scaling (the §I-A hardware-FI argument).
func TestMetricIdentitiesQuick(t *testing.T) {
	f := func(fRaw, wRaw uint32, scaleRaw uint8) bool {
		w := uint64(wRaw%100000) + 1
		fail := uint64(fRaw) % (w + 1)

		// Coverage identity: c = 1 − F/w exactly.
		c, err := Coverage(fail, w)
		if err != nil || c != 1-float64(fail)/float64(w) {
			return false
		}
		// Full-sample extrapolation is the identity.
		ext, err := ExtrapolateFailures(w, fail, w)
		if err != nil || ext != float64(fail) {
			return false
		}
		// Ratio is invariant under uniform scaling of both failure counts
		// (a fault-rate increase hits baseline and hardened alike).
		if fail == 0 {
			return true
		}
		scale := float64(scaleRaw%100) + 1
		r1, err := Ratio(float64(fail), float64(w))
		if err != nil {
			return false
		}
		r2, err := Ratio(scale*float64(fail), scale*float64(w))
		if err != nil {
			return false
		}
		return math.Abs(r1-r2) <= 1e-12*r1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestExtrapolatedInterval(t *testing.T) {
	iv := Interval{Lo: 0.1, Hi: 0.2}
	got := ExtrapolatedInterval(iv, 1000)
	if got.Lo != 100 || got.Hi != 200 {
		t.Errorf("got %+v, want [100, 200]", got)
	}
	if got.Width() != 100 {
		t.Errorf("width = %v, want 100", got.Width())
	}
}
