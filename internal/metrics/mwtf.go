package metrics

import (
	"fmt"
	"math"
)

// MWTF computes the Mean Work To Failure metric of Reis et al. (discussed
// in the paper's §VII): the expected amount of work completed per
// encountered failure,
//
//	MWTF = work / (raw error rate · AVF · execution time)
//	     = work / P(Failure per run)    for one run's worth of work
//	     ≈ work / (g · F)               by the paper's Equation 5/6,
//
// where g is the per-bit per-cycle fault rate and F the absolute failure
// count over the run's complete fault space. Unlike the fault-coverage
// factor, MWTF inherits F's property of charging a mechanism for its
// space and time overhead, so MWTF-based comparisons order programs
// exactly like the paper's extrapolated-failure-count metric:
// MWTF_hardened/MWTF_baseline = 1/r (for equal work units).
func MWTF(workUnits float64, failures uint64, g float64) (float64, error) {
	if workUnits <= 0 {
		return 0, fmt.Errorf("metrics: MWTF work units %g must be positive", workUnits)
	}
	if g <= 0 {
		return 0, fmt.Errorf("metrics: MWTF fault rate %g must be positive", g)
	}
	if failures == 0 {
		return math.Inf(1), nil
	}
	return workUnits / (g * float64(failures)), nil
}

// MWTFGain computes the relative MWTF improvement of a hardened variant
// over its baseline, with one benchmark run as the unit of work:
// MWTF_h/MWTF_b = F_baseline/F_hardened = 1/r. A gain above 1 means the
// hardened variant completes more work between failures. The gain is +Inf
// when the hardened variant shows no failures at all.
func MWTFGain(baselineFailures, hardenedFailures uint64) (float64, error) {
	if baselineFailures == 0 {
		return 0, fmt.Errorf("metrics: MWTF gain undefined for failure-free baseline")
	}
	if hardenedFailures == 0 {
		return math.Inf(1), nil
	}
	return float64(baselineFailures) / float64(hardenedFailures), nil
}
