package metrics

import (
	"fmt"
	"math"
)

// PoissonPMF returns P_λ(k) = λᵏ/k! · e^{−λ} (Equation 1 of the paper):
// the probability that exactly k independent faults hit one benchmark run,
// with λ = g·w the expected fault count.
//
// For the extremely small λ of realistic soft-error rates, the naive
// formula is numerically fine: λᵏ/k! underflows gracefully and e^{−λ} ≈ 1.
func PoissonPMF(lambda float64, k int) (float64, error) {
	if lambda < 0 {
		return 0, fmt.Errorf("metrics: negative Poisson parameter %g", lambda)
	}
	if k < 0 {
		return 0, fmt.Errorf("metrics: negative fault count %d", k)
	}
	// Compute in log space to stay stable for large k or λ.
	logp := float64(k)*math.Log(lambda) - lambda - logFactorial(k)
	if k == 0 {
		logp = -lambda
	}
	return math.Exp(logp), nil
}

// PoissonAtLeast returns P(K ≥ k) = Σ_{i≥k} P_λ(i).
//
// For small λ the complement form 1 − Σ_{i<k} P_λ(i) cancels
// catastrophically (the paper's Table I works at λ ≈ 10⁻¹³ where
// P(K ≥ 2) ≈ λ²/2 is 10 orders of magnitude below float64's resolution
// around 1), so the upper tail is summed directly; the terms decay at
// least geometrically once i > λ.
func PoissonAtLeast(lambda float64, k int) (float64, error) {
	if lambda < 0 {
		return 0, fmt.Errorf("metrics: negative Poisson parameter %g", lambda)
	}
	if k <= 0 {
		return 1, nil
	}
	term, err := PoissonPMF(lambda, k)
	if err != nil {
		return 0, err
	}
	sum := term
	for i := k + 1; ; i++ {
		term *= lambda / float64(i)
		if term < sum*1e-18 || term == 0 {
			break
		}
		sum += term
	}
	if sum > 1 {
		sum = 1
	}
	return sum, nil
}

// PoissonComplementZero returns 1 − P_λ(0) = 1 − e^{−λ}, the probability
// that at least one fault hits the run. For tiny λ it evaluates
// −expm1(−λ) to avoid catastrophic cancellation (the paper's Table I works
// at λ ≈ 10⁻¹³, far below float64's 1-ulp).
func PoissonComplementZero(lambda float64) (float64, error) {
	if lambda < 0 {
		return 0, fmt.Errorf("metrics: negative Poisson parameter %g", lambda)
	}
	return -math.Expm1(-lambda), nil
}

// SingleFaultDominance quantifies §III-A's "improbable independent faults"
// argument: the ratio P_λ(1) / P(K ≥ 2). A large ratio justifies injecting
// a single fault per experiment.
func SingleFaultDominance(lambda float64) (float64, error) {
	p1, err := PoissonPMF(lambda, 1)
	if err != nil {
		return 0, err
	}
	pge2, err := PoissonAtLeast(lambda, 2)
	if err != nil {
		return 0, err
	}
	if pge2 == 0 {
		return math.Inf(1), nil
	}
	return p1 / pge2, nil
}

func logFactorial(k int) float64 {
	var s float64
	for i := 2; i <= k; i++ {
		s += math.Log(float64(i))
	}
	return s
}
