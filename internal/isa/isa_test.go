package isa

import (
	"strings"
	"testing"
)

func TestOpNamesRoundTrip(t *testing.T) {
	for op := OpNop; op < opMax; op++ {
		name := op.String()
		if name == "" || strings.HasPrefix(name, "op(") {
			t.Fatalf("op %d has no name", op)
		}
		got, ok := OpByName(name)
		if !ok {
			t.Fatalf("OpByName(%q) not found", name)
		}
		if got != op {
			t.Errorf("OpByName(%q) = %v, want %v", name, got, op)
		}
	}
}

func TestOpByNameUnknown(t *testing.T) {
	if _, ok := OpByName("frobnicate"); ok {
		t.Error("OpByName should reject unknown mnemonics")
	}
	if _, ok := OpByName("invalid"); ok {
		t.Error("OpByName must not expose OpInvalid")
	}
}

func TestOpValid(t *testing.T) {
	if OpInvalid.Valid() {
		t.Error("OpInvalid must not be valid")
	}
	if Op(200).Valid() {
		t.Error("out-of-range op must not be valid")
	}
	if !OpHalt.Valid() || !OpJalr.Valid() {
		t.Error("real ops must be valid")
	}
}

func TestClassify(t *testing.T) {
	tests := []struct {
		op   Op
		want Class
	}{
		{OpLw, ClassLoad},
		{OpLb, ClassLoad},
		{OpLi, ClassLoad},
		{OpSw, ClassStore},
		{OpSbi, ClassStore},
		{OpBeq, ClassBranch},
		{OpJalr, ClassBranch},
		{OpJmp, ClassBranch},
		{OpAdd, ClassALU},
		{OpMov, ClassALU},
		{OpXori, ClassALU},
		{OpNop, ClassOther},
		{OpHalt, ClassOther},
	}
	for _, tt := range tests {
		if got := Classify(tt.op); got != tt.want {
			t.Errorf("Classify(%v) = %v, want %v", tt.op, got, tt.want)
		}
	}
}

func TestInstructionValidate(t *testing.T) {
	valid := []Instruction{
		{Op: OpNop},
		{Op: OpLi, Rd: 1, Imm: -5},
		{Op: OpSwi, Rs: 2, Imm: 100, Imm2: 2047},
		{Op: OpSwi, Rs: 2, Imm: 100, Imm2: -2048},
		{Op: OpJalr, Rd: 15, Rs: 3},
	}
	for _, ins := range valid {
		if err := ins.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", ins, err)
		}
	}
	invalid := []Instruction{
		{Op: OpInvalid},
		{Op: Op(250)},
		{Op: OpAdd, Rd: 16},
		{Op: OpAdd, Rs: 99},
		{Op: OpSwi, Imm2: 2048},
		{Op: OpSwi, Imm2: -2049},
		{Op: OpAdd, Imm2: 1}, // imm2 must be zero outside swi/sbi
	}
	for _, ins := range invalid {
		if err := ins.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", ins)
		}
	}
}

func TestReadsAndWrites(t *testing.T) {
	tests := []struct {
		ins    Instruction
		reads  []uint8
		writes int
	}{
		{Instruction{Op: OpNop}, nil, -1},
		{Instruction{Op: OpLi, Rd: 3}, nil, 3},
		{Instruction{Op: OpAdd, Rd: 1, Rs: 2, Rt: 3}, []uint8{2, 3}, 1},
		{Instruction{Op: OpLw, Rd: 4, Rs: 5}, []uint8{5}, 4},
		{Instruction{Op: OpSw, Rs: 6, Rt: 7}, []uint8{6, 7}, -1},
		{Instruction{Op: OpJal, Imm: 3}, nil, RegLR},
		{Instruction{Op: OpJalr, Rd: 2, Rs: 9}, []uint8{9}, 2},
		{Instruction{Op: OpBeq, Rs: 1, Rt: 2}, []uint8{1, 2}, -1},
		{Instruction{Op: OpSbi, Rs: 8, Imm2: 1}, []uint8{8}, -1},
	}
	for _, tt := range tests {
		got := tt.ins.Reads()
		if len(got) != len(tt.reads) {
			t.Errorf("%v Reads() = %v, want %v", tt.ins, got, tt.reads)
			continue
		}
		for i := range got {
			if got[i] != tt.reads[i] {
				t.Errorf("%v Reads() = %v, want %v", tt.ins, got, tt.reads)
			}
		}
		if w := tt.ins.WritesReg(); w != tt.writes {
			t.Errorf("%v WritesReg() = %d, want %d", tt.ins, w, tt.writes)
		}
	}
}
