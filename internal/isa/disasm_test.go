package isa

import (
	"strings"
	"testing"
)

func TestInstructionString(t *testing.T) {
	tests := []struct {
		ins  Instruction
		want string
	}{
		{Instruction{Op: OpNop}, "nop"},
		{Instruction{Op: OpHalt}, "halt"},
		{Instruction{Op: OpLi, Rd: 1, Imm: -7}, "li r1, -7"},
		{Instruction{Op: OpMov, Rd: 2, Rs: 3}, "mov r2, r3"},
		{Instruction{Op: OpAdd, Rd: 1, Rs: 2, Rt: 3}, "add r1, r2, r3"},
		{Instruction{Op: OpAddi, Rd: 1, Rs: 2, Imm: 4}, "addi r1, r2, 4"},
		{Instruction{Op: OpLw, Rd: 4, Rs: 14, Imm: 8}, "lw r4, 8(r14)"},
		{Instruction{Op: OpSw, Rt: 5, Rs: 14, Imm: -4}, "sw r5, -4(r14)"},
		{Instruction{Op: OpSbi, Rs: 0, Imm: 1, Imm2: 72}, "sbi 72, 1(r0)"},
		{Instruction{Op: OpBeq, Rs: 1, Rt: 2, Imm: 9}, "beq r1, r2, 9"},
		{Instruction{Op: OpJmp, Imm: 3}, "jmp 3"},
		{Instruction{Op: OpJal, Imm: 5}, "jal 5"},
		{Instruction{Op: OpJr, Rs: 15}, "jr r15"},
		{Instruction{Op: OpJalr, Rd: 1, Rs: 2}, "jalr r1, r2"},
	}
	for _, tt := range tests {
		if got := tt.ins.String(); got != tt.want {
			t.Errorf("String(%+v) = %q, want %q", tt.ins, got, tt.want)
		}
	}
}

func TestDisassemble(t *testing.T) {
	prog := []Instruction{
		{Op: OpLi, Rd: 1, Imm: 72},
		{Op: OpHalt},
	}
	out := Disassemble(prog)
	if !strings.Contains(out, "0: li r1, 72") || !strings.Contains(out, "1: halt") {
		t.Errorf("unexpected disassembly:\n%s", out)
	}
	if got := len(strings.Split(strings.TrimSpace(out), "\n")); got != 2 {
		t.Errorf("disassembly has %d lines, want 2", got)
	}
}
