package isa

import (
	"fmt"
	"strings"
)

// String renders the instruction in assembler syntax, e.g.
// "lw r1, 8(r14)" or "beq r1, r2, 42".
func (ins Instruction) String() string {
	r := func(n uint8) string { return fmt.Sprintf("r%d", n) }
	switch ins.Op {
	case OpNop, OpHalt, OpSret:
		return ins.Op.String()
	case OpRdspc:
		return fmt.Sprintf("rdspc %s", r(ins.Rd))
	case OpWrspc:
		return fmt.Sprintf("wrspc %s", r(ins.Rs))
	case OpLi:
		return fmt.Sprintf("li %s, %d", r(ins.Rd), ins.Imm)
	case OpMov:
		return fmt.Sprintf("mov %s, %s", r(ins.Rd), r(ins.Rs))
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar, OpMul, OpSlt, OpSltu:
		return fmt.Sprintf("%s %s, %s, %s", ins.Op, r(ins.Rd), r(ins.Rs), r(ins.Rt))
	case OpAddi, OpAndi, OpOri, OpXori, OpShli, OpShri, OpSlti:
		return fmt.Sprintf("%s %s, %s, %d", ins.Op, r(ins.Rd), r(ins.Rs), ins.Imm)
	case OpLw, OpLb:
		return fmt.Sprintf("%s %s, %d(%s)", ins.Op, r(ins.Rd), ins.Imm, r(ins.Rs))
	case OpSw, OpSb:
		return fmt.Sprintf("%s %s, %d(%s)", ins.Op, r(ins.Rt), ins.Imm, r(ins.Rs))
	case OpSwi, OpSbi:
		return fmt.Sprintf("%s %d, %d(%s)", ins.Op, ins.Imm2, ins.Imm, r(ins.Rs))
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return fmt.Sprintf("%s %s, %s, %d", ins.Op, r(ins.Rs), r(ins.Rt), ins.Imm)
	case OpJmp, OpJal:
		return fmt.Sprintf("%s %d", ins.Op, ins.Imm)
	case OpJr:
		return fmt.Sprintf("jr %s", r(ins.Rs))
	case OpJalr:
		return fmt.Sprintf("jalr %s, %s", r(ins.Rd), r(ins.Rs))
	default:
		return fmt.Sprintf("%s rd=%d rs=%d rt=%d imm=%d imm2=%d",
			ins.Op, ins.Rd, ins.Rs, ins.Rt, ins.Imm, ins.Imm2)
	}
}

// Disassemble renders a whole program, one instruction per line, with
// instruction indices as labels.
func Disassemble(prog []Instruction) string {
	var sb strings.Builder
	for i, ins := range prog {
		fmt.Fprintf(&sb, "%5d: %s\n", i, ins)
	}
	return sb.String()
}
