// Package isa defines the fav32 instruction-set architecture: a minimal
// 32-bit RISC machine language executed by the deterministic simulator in
// internal/machine.
//
// fav32 follows the machine model of Schirmeier et al. (DSN 2015), §II-C:
// a simple in-order CPU, one instruction per cycle, a flat wait-free RAM,
// and a fault-immune ROM holding the program. The program counter indexes
// instructions (not bytes), so "cycle n executes instruction ROM[pc_n]".
//
// Registers: 16 general-purpose 32-bit registers r0..r15. r0 is hardwired
// to zero (writes are ignored). By convention r13 is the frame pointer,
// r14 the stack pointer and r15 the link register; r11 and r12 are reserved
// as scratch registers for hardening transformations (see internal/harden).
package isa

import "fmt"

// NumRegs is the number of general-purpose registers.
const NumRegs = 16

// Register aliases used throughout the toolchain.
const (
	RegZero = 0  // hardwired zero
	RegFP   = 13 // frame pointer (convention only)
	RegSP   = 14 // stack pointer (convention only)
	RegLR   = 15 // link register (written by JAL)

	// RegScratch1 and RegScratch2 are reserved for code injected by the
	// hardening transformations. Hand-written programs that are candidates
	// for hardening must not hold live values in them across protected
	// accesses.
	RegScratch1 = 11
	RegScratch2 = 12
)

// Op identifies a fav32 operation.
type Op uint8

// The fav32 operation set. Every operation executes in exactly one cycle.
const (
	// OpInvalid is the zero value; executing it raises an
	// illegal-instruction exception.
	OpInvalid Op = iota

	OpNop  // no operation
	OpHalt // stop the machine; the run terminates successfully

	OpLi  // rd <- imm
	OpMov // rd <- rs

	// Three-register ALU operations: rd <- rs OP rt.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShl  // rd <- rs << (rt & 31)
	OpShr  // rd <- rs >> (rt & 31), logical
	OpSar  // rd <- rs >> (rt & 31), arithmetic
	OpMul  // rd <- low 32 bits of rs * rt
	OpSlt  // rd <- 1 if rs < rt (signed) else 0
	OpSltu // rd <- 1 if rs < rt (unsigned) else 0

	// Register-immediate ALU operations: rd <- rs OP imm.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpShli
	OpShri
	OpSlti

	// Memory operations. Effective address is rs+imm. Words are 4 bytes,
	// little-endian, and must be 4-byte aligned.
	OpLw  // rd <- mem32[rs+imm]
	OpLb  // rd <- zext(mem8[rs+imm])
	OpSw  // mem32[rs+imm] <- rt
	OpSb  // mem8[rs+imm] <- rt & 0xff
	OpSwi // mem32[rs+imm] <- imm2 (sign-extended store-immediate)
	OpSbi // mem8[rs+imm] <- imm2 & 0xff

	// Control transfer. Branch/jump targets are absolute instruction
	// indices carried in imm.
	OpBeq  // if rs == rt: pc <- imm
	OpBne  // if rs != rt: pc <- imm
	OpBlt  // if rs < rt (signed): pc <- imm
	OpBge  // if rs >= rt (signed): pc <- imm
	OpBltu // if rs < rt (unsigned): pc <- imm
	OpBgeu // if rs >= rt (unsigned): pc <- imm
	OpJmp  // pc <- imm
	OpJal  // r15 <- pc+1; pc <- imm
	OpJr   // pc <- rs
	OpJalr // rd <- pc+1; pc <- rs

	// OpSret returns from a timer-interrupt handler: pc <- saved pc,
	// interrupts re-enabled. Illegal outside a handler.
	OpSret
	// OpRdspc reads the saved interrupt-return PC: rd <- savedPC.
	// Illegal outside a handler. Used by preemptive schedulers to capture
	// the interrupted thread's resume point.
	OpRdspc
	// OpWrspc writes the saved interrupt-return PC: savedPC <- rs, so the
	// following sret resumes a *different* thread. Illegal outside a
	// handler.
	OpWrspc

	opMax // sentinel; keep last
)

// NumOps is the number of valid operations (excluding OpInvalid).
const NumOps = int(opMax) - 1

var opNames = [...]string{
	OpInvalid: "invalid",
	OpNop:     "nop",
	OpHalt:    "halt",
	OpLi:      "li",
	OpMov:     "mov",
	OpAdd:     "add",
	OpSub:     "sub",
	OpAnd:     "and",
	OpOr:      "or",
	OpXor:     "xor",
	OpShl:     "shl",
	OpShr:     "shr",
	OpSar:     "sar",
	OpMul:     "mul",
	OpSlt:     "slt",
	OpSltu:    "sltu",
	OpAddi:    "addi",
	OpAndi:    "andi",
	OpOri:     "ori",
	OpXori:    "xori",
	OpShli:    "shli",
	OpShri:    "shri",
	OpSlti:    "slti",
	OpLw:      "lw",
	OpLb:      "lb",
	OpSw:      "sw",
	OpSb:      "sb",
	OpSwi:     "swi",
	OpSbi:     "sbi",
	OpBeq:     "beq",
	OpBne:     "bne",
	OpBlt:     "blt",
	OpBge:     "bge",
	OpBltu:    "bltu",
	OpBgeu:    "bgeu",
	OpJmp:     "jmp",
	OpJal:     "jal",
	OpJr:      "jr",
	OpJalr:    "jalr",
	OpSret:    "sret",
	OpRdspc:   "rdspc",
	OpWrspc:   "wrspc",
}

// String returns the assembler mnemonic for op.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is an executable fav32 operation.
func (op Op) Valid() bool {
	return op > OpInvalid && op < opMax
}

// OpByName maps an assembler mnemonic to its Op. The second return value
// is false if the mnemonic is unknown.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = buildOpsByName()

func buildOpsByName() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := OpNop; op < opMax; op++ {
		m[op.String()] = op
	}
	return m
}

// Instruction is one decoded fav32 instruction. The meaning of each field
// depends on the operation; unused fields must be zero.
type Instruction struct {
	Op   Op
	Rd   uint8 // destination register
	Rs   uint8 // first source / base register for memory ops
	Rt   uint8 // second source / store-value register
	Imm  int32 // primary immediate: constant, address offset, or branch target
	Imm2 int32 // secondary immediate for Swi/Sbi (12-bit signed)
}

// Class is a coarse taxonomy of operations, used by analyses and reports.
type Class uint8

// Instruction classes.
const (
	ClassOther Class = iota + 1
	ClassALU
	ClassLoad
	ClassStore
	ClassBranch
)

// Classify returns the Class of op.
func Classify(op Op) Class {
	switch op {
	case OpLw, OpLb, OpLi:
		// Load-immediate counts as a load for the taxonomy used in the
		// paper's "Hi" example (§IV-A), which calls its 8 instructions
		// "four load and four store instructions".
		return ClassLoad
	case OpSw, OpSb, OpSwi, OpSbi:
		return ClassStore
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu, OpJmp, OpJal, OpJr, OpJalr, OpSret:
		return ClassBranch
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar, OpMul,
		OpSlt, OpSltu, OpAddi, OpAndi, OpOri, OpXori, OpShli, OpShri,
		OpSlti, OpMov:
		return ClassALU
	default:
		return ClassOther
	}
}

// Validate checks structural well-formedness of the instruction: the
// operation is known, register indices are in range, and Imm2 fits the
// encodable 12-bit signed range when used.
func (ins Instruction) Validate() error {
	if !ins.Op.Valid() {
		return fmt.Errorf("isa: invalid op %d", ins.Op)
	}
	if ins.Rd >= NumRegs || ins.Rs >= NumRegs || ins.Rt >= NumRegs {
		return fmt.Errorf("isa: %s: register out of range (rd=%d rs=%d rt=%d)",
			ins.Op, ins.Rd, ins.Rs, ins.Rt)
	}
	switch ins.Op {
	case OpSwi, OpSbi:
		if ins.Imm2 < minImm2 || ins.Imm2 > maxImm2 {
			return fmt.Errorf("isa: %s: imm2 %d outside [%d, %d]",
				ins.Op, ins.Imm2, minImm2, maxImm2)
		}
	default:
		if ins.Imm2 != 0 {
			return fmt.Errorf("isa: %s: imm2 must be zero", ins.Op)
		}
	}
	return nil
}

// Reads reports which registers the instruction reads.
func (ins Instruction) Reads() []uint8 {
	switch ins.Op {
	case OpMov, OpLw, OpLb, OpJr, OpJalr,
		OpAddi, OpAndi, OpOri, OpXori, OpShli, OpShri, OpSlti,
		OpSwi, OpSbi, OpWrspc:
		return []uint8{ins.Rs}
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar, OpMul,
		OpSlt, OpSltu,
		OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return []uint8{ins.Rs, ins.Rt}
	case OpSw, OpSb:
		return []uint8{ins.Rs, ins.Rt}
	default:
		return nil
	}
}

// WritesReg returns the register written by the instruction, or -1 when the
// instruction writes no register.
func (ins Instruction) WritesReg() int {
	switch ins.Op {
	case OpLi, OpMov, OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar,
		OpMul, OpSlt, OpSltu, OpAddi, OpAndi, OpOri, OpXori, OpShli, OpShri,
		OpSlti, OpLw, OpLb, OpJalr, OpRdspc:
		return int(ins.Rd)
	case OpJal:
		return RegLR
	default:
		return -1
	}
}
