package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	samples := []Instruction{
		{Op: OpNop},
		{Op: OpHalt},
		{Op: OpLi, Rd: 15, Imm: -1},
		{Op: OpLi, Rd: 1, Imm: 1<<31 - 1},
		{Op: OpLi, Rd: 1, Imm: -(1 << 31)},
		{Op: OpAdd, Rd: 1, Rs: 2, Rt: 3},
		{Op: OpLw, Rd: 4, Rs: 14, Imm: -8},
		{Op: OpSw, Rt: 5, Rs: 14, Imm: 1024},
		{Op: OpSwi, Rs: 0, Imm: 65540, Imm2: -2048},
		{Op: OpSbi, Rs: 0, Imm: 1, Imm2: 255},
		{Op: OpBeq, Rs: 7, Rt: 8, Imm: 42},
		{Op: OpJalr, Rd: 1, Rs: 2},
	}
	for _, ins := range samples {
		w, err := Encode(ins)
		if err != nil {
			t.Fatalf("Encode(%v): %v", ins, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(Encode(%v)): %v", ins, err)
		}
		if got != ins {
			t.Errorf("round trip: got %+v, want %+v", got, ins)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	if _, err := Encode(Instruction{Op: OpInvalid}); err == nil {
		t.Error("Encode must reject invalid op")
	}
	if _, err := Encode(Instruction{Op: OpSwi, Imm2: 4000}); err == nil {
		t.Error("Encode must reject out-of-range imm2")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(0); err == nil {
		t.Error("Decode(0) must fail (OpInvalid)")
	}
	if _, err := Decode(uint64(250) << 56); err == nil {
		t.Error("Decode of unknown opcode must fail")
	}
}

// randomInstruction generates a structurally valid instruction.
func randomInstruction(rng *rand.Rand) Instruction {
	for {
		ins := Instruction{
			Op: Op(rng.Intn(NumOps) + 1),
			Rd: uint8(rng.Intn(NumRegs)),
			Rs: uint8(rng.Intn(NumRegs)),
			Rt: uint8(rng.Intn(NumRegs)),
		}
		switch ins.Op {
		case OpSwi, OpSbi:
			ins.Imm = rng.Int31()
			ins.Imm2 = int32(rng.Intn(4096) - 2048)
		default:
			ins.Imm = int32(rng.Uint32())
		}
		if ins.Validate() == nil {
			return ins
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		ins := randomInstruction(rng)
		w, err := Encode(ins)
		if err != nil {
			return false
		}
		got, err := Decode(w)
		return err == nil && got == ins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestProgramRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prog := make([]Instruction, 100)
	for i := range prog {
		prog[i] = randomInstruction(rng)
	}
	data, err := EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len(prog)*8 {
		t.Fatalf("encoded length = %d, want %d", len(data), len(prog)*8)
	}
	got, err := DecodeProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prog {
		if got[i] != prog[i] {
			t.Fatalf("instruction %d: got %+v, want %+v", i, got[i], prog[i])
		}
	}
}

func TestDecodeProgramBadLength(t *testing.T) {
	if _, err := DecodeProgram(make([]byte, 7)); err == nil {
		t.Error("DecodeProgram must reject lengths not divisible by 8")
	}
}
