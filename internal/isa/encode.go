package isa

import "fmt"

// fav32 instructions have a fixed 64-bit binary encoding:
//
//	bits 63..56  op      (8 bits)
//	bits 55..52  rd      (4 bits)
//	bits 51..48  rs      (4 bits)
//	bits 47..44  rt      (4 bits)
//	bits 43..32  imm2    (12-bit two's complement)
//	bits 31..0   imm     (32-bit two's complement)
//
// The encoding exists so programs can be stored, hashed and diffed as plain
// bytes; the simulator executes the decoded Instruction form directly.
const (
	minImm2 = -(1 << 11)
	maxImm2 = 1<<11 - 1
)

// Encode packs the instruction into its 64-bit binary form.
// The instruction must Validate.
func Encode(ins Instruction) (uint64, error) {
	if err := ins.Validate(); err != nil {
		return 0, err
	}
	w := uint64(ins.Op)<<56 |
		uint64(ins.Rd&0xf)<<52 |
		uint64(ins.Rs&0xf)<<48 |
		uint64(ins.Rt&0xf)<<44 |
		uint64(uint32(ins.Imm2)&0xfff)<<32 |
		uint64(uint32(ins.Imm))
	return w, nil
}

// Decode unpacks a 64-bit instruction word. It fails if the op field does
// not name a valid operation or the decoded instruction is malformed.
func Decode(w uint64) (Instruction, error) {
	ins := Instruction{
		Op:   Op(w >> 56),
		Rd:   uint8(w>>52) & 0xf,
		Rs:   uint8(w>>48) & 0xf,
		Rt:   uint8(w>>44) & 0xf,
		Imm2: signExtend12(uint32(w>>32) & 0xfff),
		Imm:  int32(uint32(w)),
	}
	if err := ins.Validate(); err != nil {
		return Instruction{}, fmt.Errorf("isa: decode %#016x: %w", w, err)
	}
	return ins, nil
}

func signExtend12(v uint32) int32 {
	if v&0x800 != 0 {
		v |= 0xfffff000
	}
	return int32(v)
}

// EncodeProgram encodes a sequence of instructions into little-endian bytes,
// 8 bytes per instruction.
func EncodeProgram(prog []Instruction) ([]byte, error) {
	out := make([]byte, 0, len(prog)*8)
	for i, ins := range prog {
		w, err := Encode(ins)
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
		for b := 0; b < 8; b++ {
			out = append(out, byte(w>>(8*b)))
		}
	}
	return out, nil
}

// DecodeProgram decodes bytes produced by EncodeProgram.
func DecodeProgram(data []byte) ([]Instruction, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("isa: program length %d not a multiple of 8", len(data))
	}
	prog := make([]Instruction, 0, len(data)/8)
	for off := 0; off < len(data); off += 8 {
		var w uint64
		for b := 0; b < 8; b++ {
			w |= uint64(data[off+b]) << (8 * b)
		}
		ins, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", off/8, err)
		}
		prog = append(prog, ins)
	}
	return prog, nil
}
