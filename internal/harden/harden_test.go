package harden

import (
	"strings"
	"testing"

	"faultspace/internal/asm"
	"faultspace/internal/isa"
)

func parse(t *testing.T, src string) []asm.Stmt {
	t.Helper()
	stmts, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return stmts
}

func assemble(t *testing.T, v Variant, src string) *asm.Program {
	t.Helper()
	stmts, err := v.Apply(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.AssembleStmts("test/"+v.Name(), stmts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const pseudoSrc = `
        .ram    64
        pld     r1, 0(r2)
lbl:    pst     r3, 4(r2)
        pchk
        halt
`

func TestBaselineExpansion(t *testing.T) {
	p := assemble(t, Baseline{}, pseudoSrc)
	want := []isa.Op{isa.OpLw, isa.OpSw, isa.OpHalt}
	if len(p.Code) != len(want) {
		t.Fatalf("got %d instructions, want %d:\n%s", len(p.Code), len(want), isa.Disassemble(p.Code))
	}
	for i, op := range want {
		if p.Code[i].Op != op {
			t.Errorf("instr %d = %v, want %v", i, p.Code[i].Op, op)
		}
	}
	if p.Symbols["lbl"] != 1 {
		t.Errorf("label lbl = %d, want 1", p.Symbols["lbl"])
	}
	// pchk vanished entirely: no extra cycle in the baseline.
}

func TestBaselinePreservesPchkLabel(t *testing.T) {
	p := assemble(t, Baseline{}, `
        .ram 16
        jmp  tgt
tgt:    pchk
        halt
`)
	if p.Symbols["tgt"] != 1 {
		t.Errorf("label on dropped pchk = %d, want 1 (the halt)", p.Symbols["tgt"])
	}
}

func TestSumDMRValidation(t *testing.T) {
	cases := []SumDMR{
		{},                                 // zero offsets
		{ReplicaOffset: 4, CheckOffset: 4}, // equal
		{ReplicaOffset: 3, CheckOffset: 8}, // unaligned
		{ReplicaOffset: 8, CheckOffset: 0}, // zero check
	}
	for _, v := range cases {
		if _, err := v.Apply(parse(t, pseudoSrc)); err == nil {
			t.Errorf("SumDMR%+v must be rejected", v)
		}
	}
}

func TestSumDMRRejectsReservedRegisters(t *testing.T) {
	v := SumDMR{ReplicaOffset: 32, CheckOffset: 64}
	for _, src := range []string{
		"pld r11, 0(r2)\n halt",
		"pld r1, 0(r11)\n halt",
		"pst r12, 0(r2)\n halt",
		"pst r1, 0(r12)\n halt",
		"pld r2, 0(r2)\n halt", // rd == base
	} {
		if _, err := v.Apply(parse(t, src)); err == nil {
			t.Errorf("source %q must be rejected", src)
		}
	}
}

func TestSumDMRRejectsPchkWithoutRegion(t *testing.T) {
	v := SumDMR{ReplicaOffset: 32, CheckOffset: 64}
	if _, err := v.Apply(parse(t, "pchk\n halt")); err == nil {
		t.Error("pchk without a configured region must be rejected")
	}
}

func TestSumDMRExpansionShape(t *testing.T) {
	v := SumDMR{ReplicaOffset: 32, CheckOffset: 64}
	p := assemble(t, v, `
        .ram 128
        pst  r3, 4(r2)
        pld  r1, 4(r2)
        halt
`)
	// pst: sw, sw, xori, sw = 4; pld fast path 3 + slow path 10 = 13.
	if len(p.Code) != 4+13+1 {
		t.Fatalf("expansion length = %d:\n%s", len(p.Code), isa.Disassemble(p.Code))
	}
	// First store hits the primary, second the replica, fourth the check.
	if p.Code[0].Imm != 4 || p.Code[1].Imm != 36 || p.Code[3].Imm != 68 {
		t.Errorf("pst offsets = %d/%d/%d, want 4/36/68",
			p.Code[0].Imm, p.Code[1].Imm, p.Code[3].Imm)
	}
	// Scratch register used for the checksum.
	if p.Code[2].Op != isa.OpXori || p.Code[2].Rd != isa.RegScratch1 {
		t.Errorf("checksum instruction = %v", p.Code[2])
	}
}

func TestSumDMRSymbolicOffsets(t *testing.T) {
	v := SumDMR{ReplicaOffset: 32, CheckOffset: 64}
	p := assemble(t, v, `
        .ram 128
        .equ VAR, 8
        pst  r3, VAR(r2)
        halt
`)
	if p.Code[0].Imm != 8 || p.Code[1].Imm != 40 || p.Code[3].Imm != 72 {
		t.Errorf("symbolic offsets = %d/%d/%d, want 8/40/72",
			p.Code[0].Imm, p.Code[1].Imm, p.Code[3].Imm)
	}
}

func TestSumDMRLabelsUniquePerSite(t *testing.T) {
	v := SumDMR{ReplicaOffset: 32, CheckOffset: 64}
	src := `
        .ram 128
        pld  r1, 0(r2)
        pld  r3, 4(r2)
        halt
`
	if _, err := v.Apply(parse(t, src)); err != nil {
		t.Fatalf("two pld sites must expand without label collisions: %v", err)
	}
	p := assemble(t, v, src)
	if len(p.Code) != 2*13+1 {
		t.Errorf("expansion length = %d, want 27", len(p.Code))
	}
}

func TestSumDMRPreservesLabel(t *testing.T) {
	v := SumDMR{ReplicaOffset: 32, CheckOffset: 64}
	p := assemble(t, v, `
        .ram 128
        jmp  entry
entry:  pld  r1, 0(r2)
        halt
`)
	if p.Symbols["entry"] != 1 {
		t.Errorf("entry = %d, want 1", p.Symbols["entry"])
	}
}

func TestDilutionPrependsNops(t *testing.T) {
	p := assemble(t, Chain(Baseline{}, Dilution{NOPs: 4}), `
        .ram 16
        .equ X, 1
start:  sbi 1, 0(r0)
        jmp start2
start2: halt
`)
	for i := 0; i < 4; i++ {
		if p.Code[i].Op != isa.OpNop {
			t.Fatalf("instr %d = %v, want nop", i, p.Code[i].Op)
		}
	}
	// Labels shifted by 4: the jmp must target start2 = 6.
	if p.Code[5].Imm != 6 {
		t.Errorf("jmp target = %d, want 6", p.Code[5].Imm)
	}
	if _, err := (Dilution{NOPs: -1}).Apply(nil); err == nil {
		t.Error("negative NOP count must be rejected")
	}
}

func TestDilutionLoads(t *testing.T) {
	v := Chain(Baseline{}, DilutionLoads{Loads: 3, Addrs: []int64{0, 1}})
	p := assemble(t, v, `
        .ram 16
        sbi 1, 0(r0)
        halt
`)
	wantAddrs := []int32{0, 1, 0}
	for i, a := range wantAddrs {
		ins := p.Code[i]
		if ins.Op != isa.OpLb || ins.Rd != isa.RegScratch1 || ins.Imm != a {
			t.Errorf("instr %d = %v, want lb r11, %d(r0)", i, ins, a)
		}
	}
	if _, err := (DilutionLoads{Loads: 2}).Apply(nil); err == nil {
		t.Error("loads without addresses must be rejected")
	}
	if _, err := (DilutionLoads{Loads: -2, Addrs: []int64{0}}).Apply(nil); err == nil {
		t.Error("negative load count must be rejected")
	}
}

func TestChainNames(t *testing.T) {
	v := Chain(Baseline{}, Dilution{NOPs: 2})
	if got := v.Name(); got != "baseline+dft(2 nops)" {
		t.Errorf("chain name = %q", got)
	}
	if (SumDMR{}).Name() != "sum+dmr" {
		t.Error("SumDMR name wrong")
	}
}

func TestVariantsDoNotMutateInput(t *testing.T) {
	stmts := parse(t, pseudoSrc)
	orig := make([]asm.Stmt, len(stmts))
	copy(orig, stmts)
	_, _ = Baseline{}.Apply(stmts)
	v := SumDMR{ReplicaOffset: 32, CheckOffset: 64, RegionBase: 0, RegionWords: 8}
	_, _ = v.Apply(stmts)
	_, _ = (Dilution{NOPs: 3}).Apply(stmts)
	for i := range orig {
		if stmts[i].Name != orig[i].Name || stmts[i].Label != orig[i].Label {
			t.Fatalf("input statement %d mutated", i)
		}
	}
}

func TestChainErrorMentionsVariant(t *testing.T) {
	v := Chain(SumDMR{})
	_, err := v.Apply(parse(t, pseudoSrc))
	if err == nil || !strings.Contains(err.Error(), "sum+dmr") {
		t.Errorf("chain error %v must mention the failing variant", err)
	}
}
