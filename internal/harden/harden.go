// Package harden implements software-based hardware fault-tolerance
// transformations applied to fav32 assembly at the statement level.
//
// Two kinds of transformations exist:
//
//   - Real mechanisms: SumDMR expands the pld/pst protected-access pseudo
//     instructions into duplication-plus-checksum sequences with
//     detect-and-correct semantics, modelled after the "SUM+DMR" mechanism
//     the paper's data set uses ([8] in the paper). Baseline expands the
//     same pseudos into plain loads/stores, so baseline and hardened
//     variants come from identical sources.
//
//   - Benchmarking cheats: Dilution ("DFT") prepends NOPs and DilutionLoads
//     ("DFT′") prepends dummy loads — the deliberately ineffective
//     transformations of the paper's §IV Gedankenexperiment, which inflate
//     the fault-coverage metric without reducing failures.
//
// All transformations consume and produce []asm.Stmt, between asm.Parse and
// asm.AssembleStmts.
package harden

import (
	"fmt"

	"faultspace/internal/asm"
)

// Variant is a program transformation.
type Variant interface {
	// Name identifies the variant in reports (e.g. "baseline", "sum+dmr").
	Name() string
	// Apply transforms the parsed program. Implementations must not mutate
	// the input slice.
	Apply(stmts []asm.Stmt) ([]asm.Stmt, error)
}

// Chain composes variants left to right.
func Chain(vs ...Variant) Variant { return chain(vs) }

type chain []Variant

func (c chain) Name() string {
	name := ""
	for i, v := range c {
		if i > 0 {
			name += "+"
		}
		name += v.Name()
	}
	return name
}

func (c chain) Apply(stmts []asm.Stmt) ([]asm.Stmt, error) {
	var err error
	for _, v := range c {
		stmts, err = v.Apply(stmts)
		if err != nil {
			return nil, fmt.Errorf("harden: %s: %w", v.Name(), err)
		}
	}
	return stmts, nil
}

// Baseline expands protected accesses into plain word loads and stores.
type Baseline struct{}

// Name implements Variant.
func (Baseline) Name() string { return "baseline" }

// Apply implements Variant.
func (Baseline) Apply(stmts []asm.Stmt) ([]asm.Stmt, error) {
	out := make([]asm.Stmt, 0, len(stmts))
	for _, st := range stmts {
		if st.IsPseudo() {
			switch st.Name {
			case asm.PseudoPLoad:
				plain := st
				plain.Name = "lw"
				out = append(out, plain)
			case asm.PseudoPStore:
				plain := st
				plain.Name = "sw"
				out = append(out, plain)
			case asm.PseudoPCheck:
				// The baseline has no redundancy to verify: the check
				// disappears entirely (zero cycles). A label attached to
				// it must survive.
				if st.Label != "" {
					out = append(out, labelStmt(st.Pos, st.Label))
				}
			}
			continue
		}
		out = append(out, st)
	}
	return out, nil
}

// instr builds an instruction statement at pos.
func instr(pos asm.Pos, name string, ops ...asm.Operand) asm.Stmt {
	return asm.Stmt{Pos: pos, Kind: asm.StmtInstr, Name: name, Ops: ops}
}

func regOp(r uint8) asm.Operand {
	return asm.Operand{Kind: asm.OperandReg, Reg: r}
}

func exprOp(e asm.Expr) asm.Operand {
	return asm.Operand{Kind: asm.OperandExpr, Expr: e}
}

func numOp(v int64) asm.Operand {
	return exprOp(asm.NumExpr{Value: v})
}

func memOp(base uint8, off asm.Expr) asm.Operand {
	return asm.Operand{Kind: asm.OperandMem, Reg: base, Expr: off}
}

func labelStmt(pos asm.Pos, name string) asm.Stmt {
	return asm.Stmt{Pos: pos, Kind: asm.StmtEmpty, Label: name}
}

// firstCodeIndex returns the index of the first instruction statement, or
// len(stmts) when the program has no code.
func firstCodeIndex(stmts []asm.Stmt) int {
	for i, st := range stmts {
		if st.Kind == asm.StmtInstr {
			return i
		}
	}
	return len(stmts)
}

// addOff shifts a memory-offset expression by delta bytes.
func addOff(e asm.Expr, delta int64) asm.Expr {
	if delta == 0 {
		return e
	}
	if n, ok := e.(asm.NumExpr); ok {
		return asm.NumExpr{Value: n.Value + delta}
	}
	return asm.BinExpr{Op: "+", X: e, Y: asm.NumExpr{Value: delta}}
}
