package harden

import (
	"fmt"

	"faultspace/internal/asm"
	"faultspace/internal/isa"
)

// Dilution is the paper's "Dilution Fault Tolerance" (DFT, §IV-B): a
// deliberately ineffective program transformation that prepends NOP
// instructions. It performs no protective work whatsoever, yet inflates
// the fault-coverage metric by growing the fault-space size N while the
// absolute failure count F stays constant — the "fault-space dilution
// delusion".
type Dilution struct {
	// NOPs is the number of NOP instructions to prepend.
	NOPs int
}

// Name implements Variant.
func (d Dilution) Name() string { return fmt.Sprintf("dft(%d nops)", d.NOPs) }

// Apply implements Variant.
func (d Dilution) Apply(stmts []asm.Stmt) ([]asm.Stmt, error) {
	if d.NOPs < 0 {
		return nil, fmt.Errorf("harden: negative NOP count %d", d.NOPs)
	}
	at := firstCodeIndex(stmts)
	out := make([]asm.Stmt, 0, len(stmts)+d.NOPs)
	out = append(out, stmts[:at]...)
	pos := asm.Pos{}
	if at < len(stmts) {
		pos = stmts[at].Pos
	}
	for i := 0; i < d.NOPs; i++ {
		out = append(out, instr(pos, "nop"))
	}
	out = append(out, stmts[at:]...)
	return out, nil
}

// DilutionLoads is DFT′ (§IV-B): instead of NOPs it prepends dummy load
// instructions that read the given RAM addresses round-robin and discard
// the values. The newly diluted fault-space coordinates are thereby
// "activated" faults, defeating the activated-faults-only counting rule of
// Barbosa et al. that would see through plain NOP dilution.
type DilutionLoads struct {
	// Loads is the number of dummy byte loads to prepend.
	Loads int
	// Addrs are the RAM byte addresses to read, used round-robin.
	Addrs []int64
}

// Name implements Variant.
func (d DilutionLoads) Name() string { return fmt.Sprintf("dft'(%d loads)", d.Loads) }

// Apply implements Variant.
func (d DilutionLoads) Apply(stmts []asm.Stmt) ([]asm.Stmt, error) {
	if d.Loads < 0 {
		return nil, fmt.Errorf("harden: negative load count %d", d.Loads)
	}
	if d.Loads > 0 && len(d.Addrs) == 0 {
		return nil, fmt.Errorf("harden: DilutionLoads needs at least one address")
	}
	at := firstCodeIndex(stmts)
	out := make([]asm.Stmt, 0, len(stmts)+d.Loads)
	out = append(out, stmts[:at]...)
	pos := asm.Pos{}
	if at < len(stmts) {
		pos = stmts[at].Pos
	}
	for i := 0; i < d.Loads; i++ {
		addr := d.Addrs[i%len(d.Addrs)]
		out = append(out, instr(pos, "lb",
			regOp(isa.RegScratch1),
			memOp(isa.RegZero, asm.NumExpr{Value: addr})))
	}
	out = append(out, stmts[at:]...)
	return out, nil
}
