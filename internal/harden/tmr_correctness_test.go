package harden

import (
	"fmt"
	"math/rand"
	"testing"

	"faultspace/internal/asm"
	"faultspace/internal/machine"
)

// TestTMRSingleFaultCorrectness mirrors the SUM+DMR property for the TMR
// mechanism: any single-bit flip in any of the three copies between the
// protected store and load must leave the loaded value intact and the run
// benign.
func TestTMRSingleFaultCorrectness(t *testing.T) {
	const (
		copy2  = 16
		copy3  = 32
		ram    = 48
		nStore = 4 // li + 3-instruction pst expansion
	)
	rng := rand.New(rand.NewSource(101))
	v := TMR{Copy2Offset: copy2, Copy3Offset: copy3}

	for trial := 0; trial < 8; trial++ {
		value := rng.Uint32()
		src := fmt.Sprintf(`
        .ram    %d
        .equ    SERIAL, 0x10000
        li      r1, %d
        pst     r1, 0(r0)
        nop
        nop
        nop
        pld     r2, 0(r0)
        sb      r2, SERIAL(r0)
        shri    r3, r2, 8
        sb      r3, SERIAL(r0)
        shri    r3, r2, 16
        sb      r3, SERIAL(r0)
        shri    r3, r2, 24
        sb      r3, SERIAL(r0)
        halt
`, ram, int32(value))

		stmts, err := asm.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		expanded, err := v.Apply(stmts)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := asm.AssembleStmts("tmr", expanded)
		if err != nil {
			t.Fatal(err)
		}

		golden, err := machine.New(machine.Config{RAMSize: ram}, prog.Code, prog.Image)
		if err != nil {
			t.Fatal(err)
		}
		if st := golden.Run(10000); st != machine.StatusHalted {
			t.Fatalf("golden run: %v", st)
		}
		goldenOut := string(golden.Serial())

		// Inject at every slot between the stores and the pld.
		for slot := uint64(nStore + 1); slot <= nStore+4; slot++ {
			for _, base := range []uint64{0, copy2, copy3} {
				for bit := uint64(0); bit < 32; bit++ {
					m, err := machine.New(machine.Config{RAMSize: ram}, prog.Code, prog.Image)
					if err != nil {
						t.Fatal(err)
					}
					m.Run(slot - 1)
					if err := m.FlipBit(base*8 + bit); err != nil {
						t.Fatal(err)
					}
					if st := m.Run(10000); st != machine.StatusHalted {
						t.Fatalf("slot %d word %d bit %d: status %v", slot, base, bit, st)
					}
					if got := string(m.Serial()); got != goldenOut {
						t.Fatalf("slot %d word %d bit %d: output %q, want %q",
							slot, base, bit, got, goldenOut)
					}
					if m.CorrectCount() == 0 {
						t.Fatalf("slot %d word %d bit %d: no correction signalled", slot, base, bit)
					}
				}
			}
		}
	}
}

// TestTMRBitwiseMajoritySurvivesCrossBitPairs: the defining advantage over
// the complement-checksum vote — flips of *different* bit positions in two
// different copies are still corrected.
func TestTMRBitwiseMajoritySurvivesCrossBitPairs(t *testing.T) {
	const (
		copy2 = 16
		copy3 = 32
	)
	v := TMR{Copy2Offset: copy2, Copy3Offset: copy3}
	src := `
        .ram    48
        li      r1, 0x0F0F5A5A
        pst     r1, 0(r0)
        nop
        pld     r2, 0(r0)
        halt
`
	stmts, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	expanded, err := v.Apply(stmts)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.AssembleStmts("tmr", expanded)
	if err != nil {
		t.Fatal(err)
	}

	runPair := func(bitA, bitB uint64) uint32 {
		t.Helper()
		m, err := machine.New(machine.Config{RAMSize: 48}, prog.Code, prog.Image)
		if err != nil {
			t.Fatal(err)
		}
		m.Run(5) // past li + 3 stores
		if err := m.FlipBit(bitA); err != nil {
			t.Fatal(err)
		}
		if err := m.FlipBit(bitB); err != nil {
			t.Fatal(err)
		}
		if st := m.Run(10000); st != machine.StatusHalted {
			t.Fatalf("status %v", st)
		}
		return m.Reg(2)
	}

	// Different bit positions in primary and copy2: corrected.
	if got := runPair(3, copy2*8+17); got != 0x0F0F5A5A {
		t.Errorf("cross-bit pair: loaded %#x, want value intact", got)
	}
	// Same bit position in primary and copy2: the majority is wrong.
	if got := runPair(3, copy2*8+3); got == 0x0F0F5A5A {
		t.Error("same-bit pair should defeat bitwise majority")
	}
}
