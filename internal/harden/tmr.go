package harden

import (
	"fmt"

	"faultspace/internal/asm"
	"faultspace/internal/isa"
	"faultspace/internal/machine"
)

// TMR expands protected accesses into triple modular redundancy: every
// protected word lives three times —
//
//	copy a at addr
//	copy b at addr + Copy2Offset
//	copy c at addr + Copy3Offset
//
// A protected store writes all three copies. A protected load compares
// them; on any disagreement it computes the bitwise majority
// maj = c ^ ((a^c) & (b^c)), rewrites all three copies and signals
// "detected & corrected". Bitwise voting corrects not only any single-bit
// fault but every fault *pair* except flips of the same bit position in
// two different copies — substantially stronger than SumDMR's
// complement-checksum vote (compare `favreport multifault`).
//
// TMR and SumDMR share the same data layout (three word regions), so any
// benchmark Spec can build either variant from one source. Registers
// isa.RegScratch1/2 are clobbered by the expansions.
type TMR struct {
	// Copy2Offset and Copy3Offset are the byte distances from a protected
	// word to its second and third copy: distinct, word-aligned, non-zero.
	Copy2Offset int64
	Copy3Offset int64

	// RegionBase/RegionWords describe the protected region verified by
	// the pchk pseudo instruction (see SumDMR).
	RegionBase  int64
	RegionWords int64
}

// Name implements Variant.
func (TMR) Name() string { return "tmr" }

func (v TMR) validate() error {
	switch {
	case v.Copy2Offset == 0 || v.Copy3Offset == 0:
		return fmt.Errorf("harden: TMR offsets must be non-zero")
	case v.Copy2Offset == v.Copy3Offset:
		return fmt.Errorf("harden: TMR offsets must differ")
	case v.Copy2Offset%4 != 0 || v.Copy3Offset%4 != 0:
		return fmt.Errorf("harden: TMR offsets must be word-aligned")
	}
	return nil
}

// Apply implements Variant.
func (v TMR) Apply(stmts []asm.Stmt) ([]asm.Stmt, error) {
	if err := v.validate(); err != nil {
		return nil, err
	}
	out := make([]asm.Stmt, 0, len(stmts)+16)
	seq := 0
	for _, st := range stmts {
		if !st.IsPseudo() {
			out = append(out, st)
			continue
		}
		expanded, err := v.expand(st, seq)
		if err != nil {
			return nil, err
		}
		seq++
		if st.Label != "" {
			out = append(out, labelStmt(st.Pos, st.Label))
		}
		out = append(out, expanded...)
	}
	return out, nil
}

func (v TMR) expand(st asm.Stmt, seq int) ([]asm.Stmt, error) {
	const (
		s1 = isa.RegScratch1
		s2 = isa.RegScratch2
	)
	pos := st.Pos

	if st.Name == asm.PseudoPCheck {
		return v.expandCheck(pos, seq)
	}

	val := st.Ops[0]
	mem := st.Ops[1]
	base := mem.Reg
	off := mem.Expr

	if base == s1 || base == s2 {
		return nil, fmt.Errorf("harden: line %d: %s base register r%d is reserved for hardening",
			pos.Line, st.Name, base)
	}
	if val.Reg == s1 || val.Reg == s2 {
		return nil, fmt.Errorf("harden: line %d: %s operand register r%d is reserved for hardening",
			pos.Line, st.Name, val.Reg)
	}

	if st.Name == asm.PseudoPStore {
		return []asm.Stmt{
			instr(pos, "sw", val, memOp(base, off)),
			instr(pos, "sw", val, memOp(base, addOff(off, v.Copy2Offset))),
			instr(pos, "sw", val, memOp(base, addOff(off, v.Copy3Offset))),
		}, nil
	}

	// pld rd, off(rs): rd must differ from the base so the repair stores
	// still have a valid base after rd holds the majority value.
	if val.Reg == base {
		return nil, fmt.Errorf("harden: line %d: pld destination r%d must differ from base register",
			pos.Line, val.Reg)
	}
	lblFix := fmt.Sprintf("__tmr%d_fix", seq)
	lblOK := fmt.Sprintf("__tmr%d_ok", seq)
	return append(
		[]asm.Stmt{
			instr(pos, "lw", val, memOp(base, off)),
			instr(pos, "lw", regOp(s1), memOp(base, addOff(off, v.Copy2Offset))),
			instr(pos, "lw", regOp(s2), memOp(base, addOff(off, v.Copy3Offset))),
			instr(pos, "bne", val, regOp(s1), exprOp(asm.SymExpr{Name: lblFix})),
			instr(pos, "beq", val, regOp(s2), exprOp(asm.SymExpr{Name: lblOK})),
			labelStmt(pos, lblFix),
		},
		append(v.majorityAndRepair(pos, val.Reg, base, off),
			labelStmt(pos, lblOK))...,
	), nil
}

// majorityAndRepair emits the bitwise vote maj = c ^ ((a^c) & (b^c)) over
// a = rd, b = s1, c = s2, followed by rewriting all three copies and the
// correction signal. rd ends up holding the majority value.
func (v TMR) majorityAndRepair(pos asm.Pos, rd, base uint8, off asm.Expr) []asm.Stmt {
	const (
		s1 = isa.RegScratch1
		s2 = isa.RegScratch2
	)
	return []asm.Stmt{
		instr(pos, "xor", regOp(rd), regOp(rd), regOp(s2)),
		instr(pos, "xor", regOp(s1), regOp(s1), regOp(s2)),
		instr(pos, "and", regOp(rd), regOp(rd), regOp(s1)),
		instr(pos, "xor", regOp(rd), regOp(rd), regOp(s2)),
		instr(pos, "sw", regOp(rd), memOp(base, off)),
		instr(pos, "sw", regOp(rd), memOp(base, addOff(off, v.Copy2Offset))),
		instr(pos, "sw", regOp(rd), memOp(base, addOff(off, v.Copy3Offset))),
		instr(pos, "swi", numOp(1), memOp(isa.RegZero, asm.NumExpr{Value: int64(machine.PortCorrect)})),
	}
}

// expandCheck emits the pchk region verification under TMR: compare the
// three copies of every region word, vote and repair on disagreement.
// Clobbers r1-r3 and the hardening scratch registers.
func (v TMR) expandCheck(pos asm.Pos, seq int) ([]asm.Stmt, error) {
	if v.RegionWords <= 0 {
		return nil, fmt.Errorf("harden: line %d: pchk used but TMR region is not configured", pos.Line)
	}
	const (
		s1 = isa.RegScratch1
		s2 = isa.RegScratch2
	)
	lbl := func(suffix string) string { return fmt.Sprintf("__tchk%d_%s", seq, suffix) }
	ref := func(suffix string) asm.Operand { return exprOp(asm.SymExpr{Name: lbl(suffix)}) }

	stmts := []asm.Stmt{
		instr(pos, "li", regOp(1), numOp(v.RegionBase)),
		instr(pos, "li", regOp(2), numOp(v.RegionBase+v.RegionWords*4)),
		labelStmt(pos, lbl("loop")),
		instr(pos, "lw", regOp(3), memOp(1, asm.NumExpr{})),
		instr(pos, "lw", regOp(s1), memOp(1, asm.NumExpr{Value: v.Copy2Offset})),
		instr(pos, "lw", regOp(s2), memOp(1, asm.NumExpr{Value: v.Copy3Offset})),
		instr(pos, "bne", regOp(3), regOp(s1), ref("fix")),
		instr(pos, "bne", regOp(3), regOp(s2), ref("fix")),
		labelStmt(pos, lbl("next")),
		instr(pos, "addi", regOp(1), regOp(1), numOp(4)),
		instr(pos, "blt", regOp(1), regOp(2), ref("loop")),
		instr(pos, "jmp", ref("done")),
		labelStmt(pos, lbl("fix")),
	}
	stmts = append(stmts, v.majorityAndRepair(pos, 3, 1, asm.NumExpr{})...)
	stmts = append(stmts,
		instr(pos, "jmp", ref("next")),
		labelStmt(pos, lbl("done")),
	)
	return stmts, nil
}
