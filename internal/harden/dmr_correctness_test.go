package harden

import (
	"fmt"
	"math/rand"
	"testing"

	"faultspace/internal/asm"
	"faultspace/internal/machine"
)

// TestDMRSingleFaultCorrectness is the core correctness property of the
// SUM+DMR mechanism (DESIGN.md invariant 5): for a protected word, ANY
// single-bit flip in the primary, the replica or the checksum word —
// injected at any cycle between the protected store and the protected
// load — must leave the loaded value intact and the run benign.
//
// The test builds a program that pst-stores a random value, idles a few
// cycles, pld-loads it back and prints all four bytes. It then flips every
// bit of all three words at every possible injection slot between store
// and load and requires golden output every time.
func TestDMRSingleFaultCorrectness(t *testing.T) {
	const (
		primaryAddr   = 0
		replicaOffset = 16
		checkOffset   = 32
		ramSize       = 48
	)
	rng := rand.New(rand.NewSource(99))
	v := SumDMR{ReplicaOffset: replicaOffset, CheckOffset: checkOffset}

	for trial := 0; trial < 8; trial++ {
		value := rng.Uint32()
		src := fmt.Sprintf(`
        .ram    %d
        .equ    SERIAL, 0x10000
        li      r1, %d
        pst     r1, %d(r0)
        nop
        nop
        nop
        pld     r2, %d(r0)
        sb      r2, SERIAL(r0)
        shri    r3, r2, 8
        sb      r3, SERIAL(r0)
        shri    r3, r2, 16
        sb      r3, SERIAL(r0)
        shri    r3, r2, 24
        sb      r3, SERIAL(r0)
        halt
`, ramSize, int32(value), primaryAddr, primaryAddr)

		stmts, err := asm.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		expanded, err := v.Apply(stmts)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := asm.AssembleStmts("dmr", expanded)
		if err != nil {
			t.Fatal(err)
		}

		// Golden run.
		golden, err := machine.New(machine.Config{RAMSize: ramSize}, prog.Code, prog.Image)
		if err != nil {
			t.Fatal(err)
		}
		if st := golden.Run(10000); st != machine.StatusHalted {
			t.Fatalf("golden run: %v", st)
		}
		goldenOut := string(golden.Serial())
		goldenCycles := golden.Cycles()

		// The pst finishes by cycle ~6 (li + 4-instruction expansion); the
		// pld starts after the nops. Inject at every slot in between, on
		// every bit of all three words.
		// Find the pld start conservatively: after the store sequence
		// (5 instructions: li + 4 stores) up to the cycle of the first
		// load. We inject at slots [6, 9] (after the stores, before the
		// pld fast path begins at instruction 9).
		for slot := uint64(6); slot <= 9; slot++ {
			for _, base := range []uint64{primaryAddr, primaryAddr + replicaOffset, primaryAddr + checkOffset} {
				for bit := uint64(0); bit < 32; bit++ {
					m, err := machine.New(machine.Config{RAMSize: ramSize}, prog.Code, prog.Image)
					if err != nil {
						t.Fatal(err)
					}
					m.Run(slot - 1)
					if err := m.FlipBit(base*8 + bit); err != nil {
						t.Fatal(err)
					}
					if st := m.Run(4 * goldenCycles); st != machine.StatusHalted {
						t.Fatalf("slot %d word %d bit %d: status %v", slot, base, bit, st)
					}
					if got := string(m.Serial()); got != goldenOut {
						t.Fatalf("slot %d word %d bit %d: output %q, want %q",
							slot, base, bit, got, goldenOut)
					}
				}
			}
		}
	}
}

// TestDMRCorrectionSignalled verifies that a flip in the primary between
// store and load triggers the correction signal and repairs memory.
func TestDMRCorrectionSignalled(t *testing.T) {
	const (
		replicaOffset = 16
		checkOffset   = 32
		ramSize       = 48
	)
	v := SumDMR{ReplicaOffset: replicaOffset, CheckOffset: checkOffset}
	src := `
        .ram    48
        li      r1, 0x1234
        pst     r1, 0(r0)
        nop
        pld     r2, 0(r0)
        halt
`
	stmts, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	expanded, err := v.Apply(stmts)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.AssembleStmts("dmr", expanded)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(machine.Config{RAMSize: ramSize}, prog.Code, prog.Image)
	if err != nil {
		t.Fatal(err)
	}
	// Run past the store sequence (li + 4 instructions), flip primary bit 2.
	m.Run(6)
	if err := m.FlipBit(2); err != nil {
		t.Fatal(err)
	}
	if st := m.Run(1000); st != machine.StatusHalted {
		t.Fatalf("status %v", st)
	}
	if m.CorrectCount() != 1 {
		t.Errorf("correct count = %d, want 1", m.CorrectCount())
	}
	if m.Reg(2) != 0x1234 {
		t.Errorf("loaded value = %#x, want 0x1234", m.Reg(2))
	}
	// Memory fully repaired: primary, replica and checksum consistent.
	ram, err := m.ReadRAM(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := uint32(ram[0]) | uint32(ram[1])<<8 | uint32(ram[2])<<16 | uint32(ram[3])<<24; got != 0x1234 {
		t.Errorf("primary after repair = %#x", got)
	}
}

// TestPchkScrubsLatentFault verifies the region check: a corrupted replica
// is repaired by pchk even if the word is never pld-loaded afterwards.
func TestPchkScrubsLatentFault(t *testing.T) {
	v := SumDMR{ReplicaOffset: 16, CheckOffset: 32, RegionBase: 0, RegionWords: 4}
	// The checksum words of never-stored (all-zero) region words must be
	// pre-initialized to ~0 or pchk would scrub them as phantom errors.
	src := `
        .ram    48
        .data
        .org    32
        .word   -1, -1, -1, -1
        .text
        li      r1, 0x77
        pst     r1, 0(r0)
        nop
        pchk
        halt
`
	stmts, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	expanded, err := v.Apply(stmts)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.AssembleStmts("pchk", expanded)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(machine.Config{RAMSize: 48}, prog.Code, prog.Image)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(6)                                  // past li + pst expansion
	if err := m.FlipBit(16 * 8); err != nil { // replica word, bit 0
		t.Fatal(err)
	}
	if st := m.Run(1000); st != machine.StatusHalted {
		t.Fatalf("status %v (exc %v)", st, m.Exception())
	}
	if m.CorrectCount() != 1 {
		t.Errorf("correct count = %d, want 1", m.CorrectCount())
	}
	ram, _ := m.ReadRAM(16, 1)
	if ram[0] != 0x77 {
		t.Errorf("replica after scrub = %#x, want 0x77", ram[0])
	}
}
