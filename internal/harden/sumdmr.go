package harden

import (
	"fmt"

	"faultspace/internal/asm"
	"faultspace/internal/isa"
	"faultspace/internal/machine"
)

// SumDMR expands protected accesses (pld/pst) into a duplication-plus-
// checksum scheme modelled after the "SUM+DMR" mechanism of the paper's
// data set: every protected word lives three times in memory —
//
//	primary  at  addr
//	replica  at  addr + ReplicaOffset
//	checksum at  addr + CheckOffset   (one's complement of the value)
//
// A protected store writes all three. A protected load compares primary
// and replica; on mismatch it votes using the checksum, repairs the losing
// copy, refreshes the checksum, and signals "detected & corrected" on the
// machine's correction port. Any single-bit flip in any of the three words
// between a protected store (or load) and the next protected load is
// thereby detected and corrected — the property the DMR correctness tests
// verify.
//
// Registers isa.RegScratch1/2 are clobbered by the expansions; programs
// using pld/pst must treat them as reserved.
type SumDMR struct {
	// ReplicaOffset and CheckOffset are the byte distances from a protected
	// word to its replica and checksum. The program's data layout must
	// reserve those regions; offsets must be distinct, word-aligned and
	// non-zero.
	ReplicaOffset int64
	CheckOffset   int64

	// RegionBase/RegionWords describe the contiguous protected region
	// verified by the pchk pseudo instruction: a GOP-style whole-object
	// check that walks every protected word, compares primary and replica,
	// and votes/repairs on mismatch. This is where the mechanism's large
	// runtime overhead comes from, mirroring the per-access object
	// checksumming of the paper's SUM+DMR library. Programs that never use
	// pchk may leave both zero.
	RegionBase  int64
	RegionWords int64
}

// Name implements Variant.
func (SumDMR) Name() string { return "sum+dmr" }

func (v SumDMR) validate() error {
	switch {
	case v.ReplicaOffset == 0 || v.CheckOffset == 0:
		return fmt.Errorf("harden: SumDMR offsets must be non-zero")
	case v.ReplicaOffset == v.CheckOffset:
		return fmt.Errorf("harden: SumDMR offsets must differ")
	case v.ReplicaOffset%4 != 0 || v.CheckOffset%4 != 0:
		return fmt.Errorf("harden: SumDMR offsets must be word-aligned")
	}
	return nil
}

// Apply implements Variant.
func (v SumDMR) Apply(stmts []asm.Stmt) ([]asm.Stmt, error) {
	if err := v.validate(); err != nil {
		return nil, err
	}
	out := make([]asm.Stmt, 0, len(stmts)+16)
	seq := 0
	for _, st := range stmts {
		if !st.IsPseudo() {
			out = append(out, st)
			continue
		}
		expanded, err := v.expand(st, seq)
		if err != nil {
			return nil, err
		}
		seq++
		// Preserve a label attached to the pseudo instruction: it must
		// name the first expanded instruction.
		if st.Label != "" {
			out = append(out, labelStmt(st.Pos, st.Label))
		}
		out = append(out, expanded...)
	}
	return out, nil
}

func (v SumDMR) expand(st asm.Stmt, seq int) ([]asm.Stmt, error) {
	const (
		s1 = isa.RegScratch1
		s2 = isa.RegScratch2
	)
	pos := st.Pos

	if st.Name == asm.PseudoPCheck {
		return v.expandCheck(pos, seq)
	}

	val := st.Ops[0] // rd (pld) or rt (pst)
	mem := st.Ops[1]
	base := mem.Reg
	off := mem.Expr

	if base == s1 || base == s2 {
		return nil, fmt.Errorf("harden: line %d: %s base register r%d is reserved for hardening",
			pos.Line, st.Name, base)
	}
	if val.Reg == s1 || val.Reg == s2 {
		return nil, fmt.Errorf("harden: line %d: %s operand register r%d is reserved for hardening",
			pos.Line, st.Name, val.Reg)
	}

	if st.Name == asm.PseudoPStore {
		// sw rt, off(rs); sw rt, off+RO(rs); xori s1, rt, -1; sw s1, off+CO(rs)
		return []asm.Stmt{
			instr(pos, "sw", val, memOp(base, off)),
			instr(pos, "sw", val, memOp(base, addOff(off, v.ReplicaOffset))),
			instr(pos, "xori", regOp(s1), regOp(val.Reg), numOp(-1)),
			instr(pos, "sw", regOp(s1), memOp(base, addOff(off, v.CheckOffset))),
		}, nil
	}

	// pld rd, off(rs): rd must differ from the base so the repair stores
	// still have a valid base address after rd is written.
	if val.Reg == base {
		return nil, fmt.Errorf("harden: line %d: pld destination r%d must differ from base register",
			pos.Line, val.Reg)
	}
	lblOK := fmt.Sprintf("__dmr%d_ok", seq)
	lblPrim := fmt.Sprintf("__dmr%d_prim", seq)
	lblFix := fmt.Sprintf("__dmr%d_fix", seq)
	okRef := exprOp(asm.SymExpr{Name: lblOK})
	primRef := exprOp(asm.SymExpr{Name: lblPrim})
	fixRef := exprOp(asm.SymExpr{Name: lblFix})

	return []asm.Stmt{
		// Fast path: three cycles when copies agree.
		instr(pos, "lw", val, memOp(base, off)),
		instr(pos, "lw", regOp(s1), memOp(base, addOff(off, v.ReplicaOffset))),
		instr(pos, "beq", val, regOp(s1), okRef),
		// Mismatch: vote via the complement checksum.
		instr(pos, "lw", regOp(s2), memOp(base, addOff(off, v.CheckOffset))),
		instr(pos, "xori", regOp(s2), regOp(s2), numOp(-1)), // expected primary
		instr(pos, "beq", val, regOp(s2), primRef),
		// Primary corrupted: adopt the replica, repair the primary.
		instr(pos, "mov", val, regOp(s1)),
		instr(pos, "sw", val, memOp(base, off)),
		instr(pos, "jmp", fixRef),
		// Replica corrupted: repair it from the (verified) primary.
		labelStmt(pos, lblPrim),
		instr(pos, "sw", val, memOp(base, addOff(off, v.ReplicaOffset))),
		// Refresh the checksum and signal detected & corrected.
		labelStmt(pos, lblFix),
		instr(pos, "xori", regOp(s2), regOp(val.Reg), numOp(-1)),
		instr(pos, "sw", regOp(s2), memOp(base, addOff(off, v.CheckOffset))),
		instr(pos, "swi", numOp(1), memOp(isa.RegZero, asm.NumExpr{Value: int64(machine.PortCorrect)})),
		labelStmt(pos, lblOK),
	}, nil
}

// expandCheck emits the pchk region verification: walk every protected
// word, compare primary and replica (two loads and a branch on the fast
// path), and vote/repair via the checksum on mismatch. Clobbers r1-r3 and
// the two hardening scratch registers — pchk may only be placed where
// those are free (kernel entry points).
func (v SumDMR) expandCheck(pos asm.Pos, seq int) ([]asm.Stmt, error) {
	if v.RegionWords <= 0 {
		return nil, fmt.Errorf("harden: line %d: pchk used but SumDMR region is not configured", pos.Line)
	}
	const (
		s1 = isa.RegScratch1
		s2 = isa.RegScratch2
	)
	lbl := func(suffix string) string { return fmt.Sprintf("__chk%d_%s", seq, suffix) }
	ref := func(suffix string) asm.Operand { return exprOp(asm.SymExpr{Name: lbl(suffix)}) }

	return []asm.Stmt{
		instr(pos, "li", regOp(1), numOp(v.RegionBase)),
		instr(pos, "li", regOp(2), numOp(v.RegionBase+v.RegionWords*4)),
		labelStmt(pos, lbl("loop")),
		instr(pos, "lw", regOp(3), memOp(1, asm.NumExpr{})),
		instr(pos, "lw", regOp(s1), memOp(1, asm.NumExpr{Value: v.ReplicaOffset})),
		instr(pos, "bne", regOp(3), regOp(s1), ref("bad")),
		// Copies agree; the SUM part verifies the checksum word as well
		// and scrubs a stale one.
		instr(pos, "lw", regOp(s2), memOp(1, asm.NumExpr{Value: v.CheckOffset})),
		instr(pos, "xori", regOp(s2), regOp(s2), numOp(-1)),
		instr(pos, "bne", regOp(3), regOp(s2), ref("fixsum")),
		labelStmt(pos, lbl("next")),
		instr(pos, "addi", regOp(1), regOp(1), numOp(4)),
		instr(pos, "blt", regOp(1), regOp(2), ref("loop")),
		instr(pos, "jmp", ref("done")),
		// Copy mismatch: vote via the complement checksum, repair, signal.
		labelStmt(pos, lbl("bad")),
		instr(pos, "lw", regOp(s2), memOp(1, asm.NumExpr{Value: v.CheckOffset})),
		instr(pos, "xori", regOp(s2), regOp(s2), numOp(-1)),
		instr(pos, "beq", regOp(3), regOp(s2), ref("fixrep")),
		instr(pos, "mov", regOp(3), regOp(s1)),
		instr(pos, "sw", regOp(3), memOp(1, asm.NumExpr{})),
		instr(pos, "jmp", ref("fixsum")),
		labelStmt(pos, lbl("fixrep")),
		instr(pos, "sw", regOp(3), memOp(1, asm.NumExpr{Value: v.ReplicaOffset})),
		labelStmt(pos, lbl("fixsum")),
		instr(pos, "xori", regOp(s2), regOp(3), numOp(-1)),
		instr(pos, "sw", regOp(s2), memOp(1, asm.NumExpr{Value: v.CheckOffset})),
		instr(pos, "swi", numOp(1), memOp(isa.RegZero, asm.NumExpr{Value: int64(machine.PortCorrect)})),
		instr(pos, "jmp", ref("next")),
		labelStmt(pos, lbl("done")),
	}, nil
}
