package campaign

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"faultspace/internal/machine"
	"faultspace/internal/pruning"
	"faultspace/internal/trace"
)

// Result holds the outcome of a full fault-space scan: one classified
// outcome per def/use equivalence class.
type Result struct {
	Target Target
	Golden *trace.Golden
	Space  *pruning.FaultSpace
	// Outcomes is parallel to Space.Classes.
	Outcomes []Outcome
	// Identity is the campaign identity hash (see Target.CampaignIdentity);
	// zero for results reconstructed from archives that predate it.
	Identity [32]byte
}

// ErrInterrupted is returned by a scan stopped via Config.Interrupt. The
// partial Result is returned alongside it: outcomes of classes that did
// not run yet are zero (OutcomeNoEffect) and must not be analyzed —
// resume the scan instead.
var ErrInterrupted = errors.New("campaign: scan interrupted")

// FullScan runs one fault-injection experiment per equivalence class of the
// pruned fault space and classifies every outcome. The scan is exhaustive:
// together with the a-priori-known "No Effect" coordinates the result
// determines the outcome of every coordinate of the raw fault space.
func FullScan(t Target, golden *trace.Golden, fs *pruning.FaultSpace, cfg Config) (*Result, error) {
	return ResumeScan(t, golden, fs, cfg, nil)
}

// ResumeScan is FullScan continuing a partially-completed campaign:
// classes present in prior (keyed by class index) keep their recorded
// outcome and are not re-executed; only the remaining classes run. The
// caller is responsible for prior actually belonging to this campaign —
// the checkpoint layer enforces that with the campaign identity hash.
//
// Completed experiments stream through Config.OnResult and progress
// events through Config.OnProgress; Config.Interrupt stops the scan
// early with ErrInterrupted after flushing all finished experiments.
func ResumeScan(t Target, golden *trace.Golden, fs *pruning.FaultSpace, cfg Config, prior map[int]Outcome) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Target:   t,
		Golden:   golden,
		Space:    fs,
		Outcomes: make([]Outcome, len(fs.Classes)),
	}
	id, err := t.CampaignIdentity(fs.Kind, cfg)
	if err != nil {
		return nil, fmt.Errorf("campaign: identity: %w", err)
	}
	res.Identity = id

	if cfg.memoEnabled() {
		if cfg.MemoCache == nil {
			// Memo without an explicit shared cache gets a private one:
			// entries are still shared across all experiments (and
			// workers) of this scan, just not across calls.
			cfg.MemoCache = NewMemoCache()
		}
		if err := cfg.MemoCache.bind(id, cfg.timeoutBudget(golden.Cycles)); err != nil {
			return nil, err
		}
	}

	for ci, o := range prior {
		if ci < 0 || ci >= len(fs.Classes) {
			return nil, fmt.Errorf("campaign: resume class index %d outside [0, %d)", ci, len(fs.Classes))
		}
		if !o.Known() {
			return nil, fmt.Errorf("campaign: resume class %d has unknown outcome %d", ci, o)
		}
		res.Outcomes[ci] = o
	}
	todo := make([]int, 0, len(fs.Classes)-len(prior))
	for i := range fs.Classes {
		if _, ok := prior[i]; !ok {
			todo = append(todo, i)
		}
	}

	m := newMeter(cfg, len(fs.Classes), prior)
	defer m.finish()
	if len(todo) == 0 {
		return res, nil
	}
	st := newScanTel(cfg)
	sp := cfg.Spans.Start("scan.run")
	var scanErr error
	switch cfg.Strategy {
	case StrategySnapshot:
		scanErr = scanSnapshot(t, golden, fs, cfg, todo, res.Outcomes, m, st)
	case StrategyRerun:
		scanErr = scanRerun(t, golden, fs, cfg, todo, res.Outcomes, m, st)
	case StrategyLadder:
		scanErr = scanLadder(t, golden, fs, cfg, todo, res.Outcomes, m, st)
	case StrategyFork:
		scanErr = scanFork(t, golden, fs, cfg, todo, res.Outcomes, m, st)
	}
	if sp.Live() {
		sp.End(fmt.Sprintf("%s: %d classes", cfg.Strategy, len(todo)))
	}
	if cfg.MemoCache != nil {
		cfg.Telemetry.Gauge("memo.entries").Set(int64(cfg.MemoCache.Len()))
	}
	if scanErr != nil {
		if errors.Is(scanErr, ErrInterrupted) {
			// Partial result: everything completed so far has been
			// recorded (and checkpointed via OnResult).
			return res, scanErr
		}
		return nil, scanErr
	}
	return res, nil
}

// slotGroup is the unit of work handed to scan workers: all classes whose
// representative injection slot is the same, plus the machine state right
// before that slot.
type slotGroup struct {
	snap    *machine.Snapshot
	classes []int // indices into fs.Classes
}

// record is one completed experiment streaming from a worker to the
// collector.
type record struct {
	class   int
	outcome Outcome
}

// flipFunc injects one fault into a machine at a raw space coordinate
// (the bit/position dimension; the slot dimension is when it is called).
type flipFunc func(*machine.Machine, uint64) error

// flipFor selects the injection primitive for a fault-space kind.
func flipFor(kind pruning.SpaceKind) flipFunc {
	switch kind {
	case pruning.SpaceRegisters:
		return (*machine.Machine).FlipRegBit
	case pruning.SpaceSkip:
		return func(m *machine.Machine, _ uint64) error {
			m.FlipSkip()
			return nil
		}
	case pruning.SpacePC:
		return (*machine.Machine).FlipPCBit
	case pruning.SpaceBurst2:
		return func(m *machine.Machine, pos uint64) error {
			return m.FlipBurst(2, pos)
		}
	case pruning.SpaceBurst4:
		return func(m *machine.Machine, pos uint64) error {
			return m.FlipBurst(4, pos)
		}
	}
	return (*machine.Machine).FlipBit
}

// collector drains completed experiments into the outcome slice and the
// meter from a single goroutine, so OnResult/OnProgress callbacks and
// checkpoint writers never need locking. It returns a channel closed
// when the results channel has been fully drained.
func collector(results <-chan record, out []Outcome, m *meter) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range results {
			out[r.class] = r.outcome
			m.record(r.class, r.outcome)
		}
	}()
	return done
}

// collectBatches is collector for strategies that ship completed
// experiments a batch at a time (currently the fork scan).
func collectBatches(results <-chan []record, out []Outcome, m *meter) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rs := range results {
			for _, r := range rs {
				out[r.class] = r.outcome
				m.record(r.class, r.outcome)
			}
		}
	}()
	return done
}

// scanFail reports a worker error at most once and raises the stop flag.
// Workers keep draining their work channel after failing (doing nothing)
// so the feeder can never deadlock on a send to a channel nobody reads —
// the bug the regression test TestWorkerErrorNoDeadlock pins down.
func scanFail(stop *atomic.Bool, errCh chan<- error, err error) {
	stop.Store(true)
	select {
	case errCh <- err:
	default:
	}
}

func scanSnapshot(t Target, golden *trace.Golden, fs *pruning.FaultSpace, cfg Config, todo []int, out []Outcome, m *meter, st *scanTel) error {
	budget := cfg.timeoutBudget(golden.Cycles)
	interval := cfg.ladderInterval(golden.Cycles)
	flip := flipFor(fs.Kind)

	var machines []*machine.Machine
	defer func() { st.addInvalidations(machines); cfg.releaseMachines(machines) }()

	pioneer, err := cfg.acquireMachine(t)
	if err != nil {
		return err
	}
	machines = append(machines, pioneer)

	groups := make(chan slotGroup)
	results := make(chan record, cfg.Workers*2)
	errCh := make(chan error, 1)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		worker, err := cfg.acquireMachine(t)
		if err != nil {
			close(groups)
			wg.Wait()
			close(results)
			return err
		}
		machines = append(machines, worker)
		var mr *memoRun
		if cfg.memoEnabled() {
			mr = newMemoRun(cfg.MemoCache, st)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range groups {
				for _, ci := range g.classes {
					// Interrupt granularity is per experiment, not per
					// slot group: a single group can hold thousands of
					// classes, and a SIGINT must not wait them out.
					select {
					case <-cfg.Interrupt:
						scanFail(&stop, errCh, ErrInterrupted)
					default:
					}
					if stop.Load() {
						break
					}
					t0 := st.begin()
					worker.Restore(g.snap)
					if err := flip(worker, fs.Classes[ci].Bit); err != nil {
						scanFail(&stop, errCh, err)
						break
					}
					o := memoTail(worker, golden, budget, interval, cfg.Objective, mr)
					st.experiment(o, t0)
					results <- record{class: ci, outcome: o}
				}
			}
		}()
	}
	collected := collector(results, out, m)

	// Walk remaining classes grouped by slot, advancing the pioneer to
	// slot-1 cycles before snapshotting. Classes (and therefore todo) are
	// sorted by (Slot, Bit).
	feed := func() error {
		for i := 0; i < len(todo); {
			slot := fs.Classes[todo[i]].Slot()
			j := i
			for j < len(todo) && fs.Classes[todo[j]].Slot() == slot {
				j++
			}
			if pioneer.Cycles() < slot-1 {
				if st := pioneer.Run(slot - 1); st != machine.StatusRunning {
					return fmt.Errorf("campaign: golden replay ended early at cycle %d (status %s), slot %d",
						pioneer.Cycles(), st, slot)
				}
			}
			select {
			case <-cfg.Interrupt:
				return ErrInterrupted
			case err := <-errCh:
				return err
			case groups <- slotGroup{snap: pioneer.Snapshot(), classes: todo[i:j]}:
			}
			i = j
		}
		return nil
	}
	spFeed := st.spans.Start("scan.golden_prefix")
	ferr := feed()
	if spFeed.Live() {
		spFeed.End(fmt.Sprintf("pioneer feed: %d classes", len(todo)))
	}
	close(groups)
	wg.Wait()
	close(results)
	<-collected
	if ferr != nil {
		return ferr
	}
	select {
	case err := <-errCh:
		return err
	default:
	}
	return nil
}

func scanRerun(t Target, golden *trace.Golden, fs *pruning.FaultSpace, cfg Config, todo []int, out []Outcome, m *meter, st *scanTel) error {
	budget := cfg.timeoutBudget(golden.Cycles)
	interval := cfg.ladderInterval(golden.Cycles)
	flip := flipFor(fs.Kind)

	var machines []*machine.Machine
	defer func() { st.addInvalidations(machines); cfg.releaseMachines(machines) }()

	work := make(chan int)
	results := make(chan record, cfg.Workers*2)
	errCh := make(chan error, 1)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		worker, err := cfg.acquireMachine(t)
		if err != nil {
			close(work)
			wg.Wait()
			close(results)
			return err
		}
		machines = append(machines, worker)
		reset := worker.Snapshot()
		var mr *memoRun
		if cfg.memoEnabled() {
			mr = newMemoRun(cfg.MemoCache, st)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range work {
				select {
				case <-cfg.Interrupt:
					scanFail(&stop, errCh, ErrInterrupted)
				default:
				}
				if stop.Load() {
					continue
				}
				t0 := st.begin()
				worker.Restore(reset)
				o, err := runFromReset(worker, golden, fs.Classes[ci].Slot(), fs.Classes[ci].Bit, budget, interval, flip, cfg.Objective, mr)
				if err != nil {
					scanFail(&stop, errCh, err)
					continue
				}
				st.experiment(o, t0)
				results <- record{class: ci, outcome: o}
			}
		}()
	}
	collected := collector(results, out, m)

	var ferr error
feed:
	for _, ci := range todo {
		select {
		case <-cfg.Interrupt:
			ferr = ErrInterrupted
			break feed
		case ferr = <-errCh:
			break feed
		case work <- ci:
		}
	}
	close(work)
	wg.Wait()
	close(results)
	<-collected
	if ferr != nil {
		return ferr
	}
	select {
	case err := <-errCh:
		return err
	default:
	}
	return nil
}

// scanLadder executes experiments from delta snapshots of the golden
// run: one golden replay captures a rung every cfg.ladderInterval
// cycles, then each experiment restores the nearest rung at-or-below its
// injection slot (a targeted dirty-page copy, see machine.Cursor) and
// executes only the remaining delta. Unlike scanSnapshot there is no
// slot-ordered feeder — any worker can serve any class from the shared
// immutable ladder — which makes it equally fast for the arbitrary class
// subsets cluster workers lease.
func scanLadder(t Target, golden *trace.Golden, fs *pruning.FaultSpace, cfg Config, todo []int, out []Outcome, m *meter, st *scanTel) error {
	budget := cfg.timeoutBudget(golden.Cycles)
	flip := flipFor(fs.Kind)

	var machines []*machine.Machine
	defer func() { st.addInvalidations(machines); cfg.releaseMachines(machines) }()

	// Build the ladder with one golden replay. Rungs stop strictly below
	// the final golden cycle: the latest state any experiment restores is
	// slot-1 ≤ Δt-1, and the machine must still be running there.
	pioneer, err := cfg.acquireMachine(t)
	if err != nil {
		return err
	}
	machines = append(machines, pioneer)
	interval := cfg.ladderInterval(golden.Cycles)
	spL := st.spans.Start("scan.golden_prefix")
	ladder := machine.NewLadder(pioneer)
	for next := interval; next < golden.Cycles; next += interval {
		if status := pioneer.Run(next); status != machine.StatusRunning {
			return fmt.Errorf("campaign: golden replay ended early at cycle %d (status %s)",
				pioneer.Cycles(), status)
		}
		ladder.Capture(pioneer)
	}
	if spL.Live() {
		spL.End(fmt.Sprintf("ladder: %d rungs", ladder.Rungs()))
	}
	cfg.Telemetry.Gauge("ladder.rungs").Set(int64(ladder.Rungs()))

	work := make(chan int)
	results := make(chan record, cfg.Workers*2)
	errCh := make(chan error, 1)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		worker, err := cfg.acquireMachine(t)
		if err != nil {
			close(work)
			wg.Wait()
			close(results)
			return err
		}
		machines = append(machines, worker)
		cur := ladder.NewCursor(worker)
		det := machine.NewLoopDetector(0)
		var mr *memoRun
		if cfg.memoEnabled() {
			mr = newMemoRun(cfg.MemoCache, st)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range work {
				select {
				case <-cfg.Interrupt:
					scanFail(&stop, errCh, ErrInterrupted)
				default:
				}
				if stop.Load() {
					continue
				}
				t0 := st.begin()
				slot, bit := fs.Classes[ci].Slot(), fs.Classes[ci].Bit
				cur.Restore(ladder.Find(slot - 1))
				if st != nil {
					st.rungRestores.Inc()
				}
				if worker.Cycles() < slot-1 {
					if status := worker.Run(slot - 1); status != machine.StatusRunning {
						scanFail(&stop, errCh, fmt.Errorf(
							"campaign: golden replay ended early at cycle %d (status %s), slot %d",
							worker.Cycles(), status, slot))
						continue
					}
				}
				if err := flip(worker, bit); err != nil {
					scanFail(&stop, errCh, err)
					continue
				}
				o := runConverge(worker, ladder, golden, budget, cfg.Objective, det, mr, st)
				st.experiment(o, t0)
				results <- record{class: ci, outcome: o}
			}
		}()
	}
	collected := collector(results, out, m)

	var ferr error
feed:
	for _, ci := range todo {
		select {
		case <-cfg.Interrupt:
			ferr = ErrInterrupted
			break feed
		case ferr = <-errCh:
			break feed
		case work <- ci:
		}
	}
	close(work)
	wg.Wait()
	close(results)
	<-collected
	if ferr != nil {
		return ferr
	}
	select {
	case err := <-errCh:
		return err
	default:
	}
	return nil
}

// forkBatchMax caps the classes per fork-scan batch. Batches are carved
// along rung boundaries for injection locality, but a rung whose span
// holds thousands of classes would serialize them all onto one worker;
// splitting costs only one extra rung restore per forkBatchMax classes.
const forkBatchMax = 512

// forkFlushClasses is how many completed experiments a fork worker
// accumulates before handing them to the collector in one send.
const forkFlushClasses = 64

// forkBatch is the unit of work of the fork scan: a run of consecutive
// (injection-cycle-ordered) classes whose restore point falls on one
// ladder rung.
type forkBatch struct {
	rung    int
	classes []int // subslice of todo, ascending class index
}

// carveForkBatches splits the (Slot, Bit)-sorted todo list into
// injection-ordered batches along rung boundaries: every class in a
// batch restores from the same rung, and slots never decrease within or
// across batches — the precondition for the monotone cursor advance.
func carveForkBatches(l *machine.Ladder, fs *pruning.FaultSpace, todo []int) []forkBatch {
	batches := make([]forkBatch, 0, l.Rungs()+len(todo)/forkBatchMax)
	for i := 0; i < len(todo); {
		r := l.Find(fs.Classes[todo[i]].Slot() - 1)
		j := i + 1
		for j < len(todo) && j-i < forkBatchMax && l.Find(fs.Classes[todo[j]].Slot()-1) == r {
			j++
		}
		batches = append(batches, forkBatch{rung: r, classes: todo[i:j]})
		i = j
	}
	return batches
}

// scanFork executes experiments by forking children off a monotone
// golden cursor: classes are batched along rung boundaries in injection
// order; a worker restores the batch's rung once, then advances its
// cursor (parent) machine forward through the golden run, forking a
// dirty-page-delta child (machine.Forker) at each injection cycle and
// running only the faulty suffix on the child. The golden prefix
// between a batch's injections is thus simulated exactly once per
// batch — the ladder strategy re-simulates rung→slot for every class —
// which is what the fork.prefix_cycles_saved counter accounts.
//
// Soundness (DESIGN.md §4f): the parent executes nothing but golden
// cycles — every fault is injected into the child AFTER the fork — so
// no child can observe faulty state from a previous experiment, and
// each child starts bit-identical to the ladder worker state at the
// same slot (Forker's differential-copy invariant). The suffix then
// runs under the same runConverge driver as the ladder strategy, so
// fork outcomes are byte-identical to every other strategy
// (invariant 14).
func scanFork(t Target, golden *trace.Golden, fs *pruning.FaultSpace, cfg Config, todo []int, out []Outcome, m *meter, st *scanTel) error {
	budget := cfg.timeoutBudget(golden.Cycles)
	flip := flipFor(fs.Kind)

	var machines []*machine.Machine
	defer func() { st.addInvalidations(machines); cfg.releaseMachines(machines) }()

	// One golden replay builds the rung ladder, exactly like scanLadder.
	pioneer, err := cfg.acquireMachine(t)
	if err != nil {
		return err
	}
	machines = append(machines, pioneer)
	interval := cfg.forkInterval(golden.Cycles)
	spL := st.spans.Start("scan.golden_prefix")
	ladder := machine.NewLadder(pioneer)
	for next := interval; next < golden.Cycles; next += interval {
		if status := pioneer.Run(next); status != machine.StatusRunning {
			return fmt.Errorf("campaign: golden replay ended early at cycle %d (status %s)",
				pioneer.Cycles(), status)
		}
		ladder.Capture(pioneer)
	}
	if spL.Live() {
		spL.End(fmt.Sprintf("ladder: %d rungs", ladder.Rungs()))
	}
	cfg.Telemetry.Gauge("ladder.rungs").Set(int64(ladder.Rungs()))

	batches := carveForkBatches(ladder, fs, todo)

	work := make(chan forkBatch)
	// The results channel is deliberately unbuffered: each flush is a
	// synchronous handoff, so the collector has observed (and metered)
	// every prior flush before a worker proceeds. Progress therefore
	// trails execution by at most one flush window even at GOMAXPROCS=1,
	// which keeps interrupt delivery bounded for embedders that trigger
	// it from OnProgress.
	results := make(chan []record)
	errCh := make(chan error, 1)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		parent, err := cfg.acquireMachine(t)
		if err != nil {
			close(work)
			wg.Wait()
			close(results)
			return err
		}
		machines = append(machines, parent)
		child, err := cfg.acquireMachine(t)
		if err != nil {
			close(work)
			wg.Wait()
			close(results)
			return err
		}
		machines = append(machines, child)
		cur := ladder.NewCursor(parent)
		forker := machine.NewForker(parent, child)
		det := machine.NewLoopDetector(0)
		var mr *memoRun
		if cfg.memoEnabled() {
			mr = newMemoRun(cfg.MemoCache, st)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range work {
				if stop.Load() {
					continue
				}
				spB := st.spans.Start("scan.batch")
				// Reposition the cursor once per batch. The forker owns the
				// parent's dirty bits (it resets them at every Fork), so the
				// cursor must full-copy and the forker resync afterwards.
				cur.Invalidate()
				cur.Restore(b.rung)
				forker.Invalidate()
				if st != nil {
					st.rungRestores.Inc()
					st.forkBatches.Observe(time.Duration(len(b.classes)))
				}
				rungCycle := ladder.RungCycle(b.rung)
				var children, saved uint64
				// Completed experiments accumulate locally and ship
				// forkFlushClasses at a time: the per-record channel
				// handoff the other strategies pay on every experiment is
				// a measurable slice of a fork experiment's
				// sub-microsecond suffix. A flushed slice is never reused
				// — ownership passes to the collector on send.
				recs := make([]record, 0, forkFlushClasses+16)
				for k, ci := range b.classes {
					// Flush and poll the interrupt every 16 classes (~a
					// quarter millisecond of experiments): a SIGINT never
					// waits out a whole 512-class batch, and progress
					// never trails by more than one flush window.
					if k&15 == 0 {
						if len(recs) >= forkFlushClasses {
							results <- recs
							recs = make([]record, 0, forkFlushClasses+16)
						}
						select {
						case <-cfg.Interrupt:
							scanFail(&stop, errCh, ErrInterrupted)
						default:
						}
					}
					if stop.Load() {
						break
					}
					t0 := st.begin()
					slot, bit := fs.Classes[ci].Slot(), fs.Classes[ci].Bit
					// The cycles between the rung and the cursor's current
					// position are exactly the golden prefix the ladder
					// strategy would re-simulate for this class.
					saved += parent.Cycles() - rungCycle
					if parent.Cycles() < slot-1 {
						if status := parent.Run(slot - 1); status != machine.StatusRunning {
							scanFail(&stop, errCh, fmt.Errorf(
								"campaign: golden replay ended early at cycle %d (status %s), slot %d",
								parent.Cycles(), status, slot))
							break
						}
					}
					forker.Fork()
					children++
					if err := flip(child, bit); err != nil {
						scanFail(&stop, errCh, err)
						break
					}
					o := runConverge(child, ladder, golden, budget, cfg.Objective, det, mr, st)
					st.experiment(o, t0)
					recs = append(recs, record{class: ci, outcome: o})
				}
				if len(recs) > 0 {
					results <- recs
				}
				if st != nil {
					st.forkChildren.Add(children)
					st.forkSaved.Add(saved)
				}
				if spB.Live() {
					spB.End(fmt.Sprintf("rung %d: %d classes", b.rung, len(b.classes)))
				}
			}
		}()
	}
	collected := collectBatches(results, out, m)

	feed := func() error {
		for _, b := range batches {
			select {
			case <-cfg.Interrupt:
				return ErrInterrupted
			case err := <-errCh:
				return err
			case work <- b:
			}
		}
		return nil
	}
	ferr := feed()
	close(work)
	wg.Wait()
	close(results)
	<-collected
	if ferr != nil {
		return ferr
	}
	select {
	case err := <-errCh:
		return err
	default:
	}
	return nil
}

// runFromReset drives a reset-state machine through one experiment:
// replay the golden prefix to just before `slot`, inject via flip at
// `bit`, run to termination (or the cycle budget) and classify. A
// non-nil mr memoizes the post-injection remainder at interval
// boundaries (see memoTail); nil runs the experiment out plainly.
func runFromReset(m *machine.Machine, golden *trace.Golden, slot, bit, budget, interval uint64, flip flipFunc, obj *Objective, mr *memoRun) (Outcome, error) {
	if slot > 0 {
		if st := m.Run(slot - 1); slot-1 > 0 && st != machine.StatusRunning {
			return 0, fmt.Errorf("campaign: golden replay ended early at cycle %d (status %s), slot %d",
				m.Cycles(), st, slot)
		}
	}
	if err := flip(m, bit); err != nil {
		return 0, err
	}
	return memoTail(m, golden, budget, interval, obj, mr), nil
}

// RunSingle executes exactly one memory fault-injection experiment at the
// raw fault-space coordinate (slot, bit), starting from the reset state.
// It is the brute-force path used by validation tests and the sampler.
func RunSingle(t Target, golden *trace.Golden, cfg Config, slot, bit uint64) (Outcome, error) {
	return RunSingleSpace(t, golden, cfg, pruning.SpaceMemory, slot, bit)
}

// RunSingleSpace is RunSingle for an arbitrary fault-space kind.
func RunSingleSpace(t Target, golden *trace.Golden, cfg Config, kind pruning.SpaceKind, slot, bit uint64) (Outcome, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if slot == 0 || slot > golden.Cycles {
		return 0, fmt.Errorf("campaign: slot %d outside [1, %d]", slot, golden.Cycles)
	}
	m, err := t.newMachine()
	if err != nil {
		return 0, err
	}
	// Deliberately plain (no predecode, no memo): this is the brute-force
	// oracle the validation tests compare the optimized scan paths to.
	return runFromReset(m, golden, slot, bit, cfg.timeoutBudget(golden.Cycles), 0, flipFor(kind), cfg.Objective, nil)
}
