package campaign

import (
	"fmt"
	"sync"

	"faultspace/internal/machine"
	"faultspace/internal/pruning"
	"faultspace/internal/trace"
)

// Result holds the outcome of a full fault-space scan: one classified
// outcome per def/use equivalence class.
type Result struct {
	Target Target
	Golden *trace.Golden
	Space  *pruning.FaultSpace
	// Outcomes is parallel to Space.Classes.
	Outcomes []Outcome
}

// FullScan runs one fault-injection experiment per equivalence class of the
// pruned fault space and classifies every outcome. The scan is exhaustive:
// together with the a-priori-known "No Effect" coordinates the result
// determines the outcome of every coordinate of the raw fault space.
func FullScan(t Target, golden *trace.Golden, fs *pruning.FaultSpace, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Target:   t,
		Golden:   golden,
		Space:    fs,
		Outcomes: make([]Outcome, len(fs.Classes)),
	}
	if len(fs.Classes) == 0 {
		return res, nil
	}
	var err error
	switch cfg.Strategy {
	case StrategySnapshot:
		err = scanSnapshot(t, golden, fs, cfg, res.Outcomes)
	case StrategyRerun:
		err = scanRerun(t, golden, fs, cfg, res.Outcomes)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// slotGroup is the unit of work handed to scan workers: all classes whose
// representative injection slot is the same, plus the machine state right
// before that slot.
type slotGroup struct {
	snap    *machine.Snapshot
	classes []int // indices into fs.Classes
}

// flipFunc injects one single-bit fault into a machine.
type flipFunc func(*machine.Machine, uint64) error

// flipFor selects the injection primitive for a fault-space kind.
func flipFor(kind pruning.SpaceKind) flipFunc {
	if kind == pruning.SpaceRegisters {
		return (*machine.Machine).FlipRegBit
	}
	return (*machine.Machine).FlipBit
}

func scanSnapshot(t Target, golden *trace.Golden, fs *pruning.FaultSpace, cfg Config, out []Outcome) error {
	budget := cfg.timeoutBudget(golden.Cycles)
	flip := flipFor(fs.Kind)

	pioneer, err := t.newMachine()
	if err != nil {
		return err
	}

	groups := make(chan slotGroup)
	errCh := make(chan error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		worker, err := t.newMachine()
		if err != nil {
			close(groups)
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range groups {
				for _, ci := range g.classes {
					worker.Restore(g.snap)
					if err := flip(worker, fs.Classes[ci].Bit); err != nil {
						errCh <- err
						return
					}
					worker.Run(budget)
					out[ci] = classify(worker, golden)
				}
			}
		}()
	}

	// Walk classes grouped by slot, advancing the pioneer to slot-1 cycles
	// before snapshotting. Classes are sorted by (Slot, Bit).
	feed := func() error {
		for i := 0; i < len(fs.Classes); {
			slot := fs.Classes[i].Slot()
			j := i
			for j < len(fs.Classes) && fs.Classes[j].Slot() == slot {
				j++
			}
			if pioneer.Cycles() < slot-1 {
				if st := pioneer.Run(slot - 1); st != machine.StatusRunning {
					return fmt.Errorf("campaign: golden replay ended early at cycle %d (status %s), slot %d",
						pioneer.Cycles(), st, slot)
				}
			}
			idxs := make([]int, 0, j-i)
			for k := i; k < j; k++ {
				idxs = append(idxs, k)
			}
			select {
			case err := <-errCh:
				return err
			case groups <- slotGroup{snap: pioneer.Snapshot(), classes: idxs}:
			}
			i = j
		}
		return nil
	}
	ferr := feed()
	close(groups)
	wg.Wait()
	if ferr != nil {
		return ferr
	}
	select {
	case err := <-errCh:
		return err
	default:
	}
	return nil
}

func scanRerun(t Target, golden *trace.Golden, fs *pruning.FaultSpace, cfg Config, out []Outcome) error {
	budget := cfg.timeoutBudget(golden.Cycles)
	flip := flipFor(fs.Kind)

	work := make(chan int)
	errCh := make(chan error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		worker, err := t.newMachine()
		if err != nil {
			close(work)
			return err
		}
		reset := worker.Snapshot()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range work {
				worker.Restore(reset)
				o, err := runFromReset(worker, golden, fs.Classes[ci].Slot(), fs.Classes[ci].Bit, budget, flip)
				if err != nil {
					errCh <- err
					return
				}
				out[ci] = o
			}
		}()
	}
	var ferr error
feed:
	for ci := range fs.Classes {
		select {
		case ferr = <-errCh:
			break feed
		case work <- ci:
		}
	}
	close(work)
	wg.Wait()
	if ferr != nil {
		return ferr
	}
	select {
	case err := <-errCh:
		return err
	default:
	}
	return nil
}

// runFromReset drives a reset-state machine through one experiment:
// replay the golden prefix to just before `slot`, inject via flip at
// `bit`, run to termination (or the cycle budget) and classify.
func runFromReset(m *machine.Machine, golden *trace.Golden, slot, bit, budget uint64, flip flipFunc) (Outcome, error) {
	if slot > 0 {
		if st := m.Run(slot - 1); slot-1 > 0 && st != machine.StatusRunning {
			return 0, fmt.Errorf("campaign: golden replay ended early at cycle %d (status %s), slot %d",
				m.Cycles(), st, slot)
		}
	}
	if err := flip(m, bit); err != nil {
		return 0, err
	}
	m.Run(budget)
	return classify(m, golden), nil
}

// RunSingle executes exactly one memory fault-injection experiment at the
// raw fault-space coordinate (slot, bit), starting from the reset state.
// It is the brute-force path used by validation tests and the sampler.
func RunSingle(t Target, golden *trace.Golden, cfg Config, slot, bit uint64) (Outcome, error) {
	return RunSingleSpace(t, golden, cfg, pruning.SpaceMemory, slot, bit)
}

// RunSingleSpace is RunSingle for an arbitrary fault-space kind.
func RunSingleSpace(t Target, golden *trace.Golden, cfg Config, kind pruning.SpaceKind, slot, bit uint64) (Outcome, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if slot == 0 || slot > golden.Cycles {
		return 0, fmt.Errorf("campaign: slot %d outside [1, %d]", slot, golden.Cycles)
	}
	m, err := t.newMachine()
	if err != nil {
		return 0, err
	}
	return runFromReset(m, golden, slot, bit, cfg.timeoutBudget(golden.Cycles), flipFor(kind))
}
