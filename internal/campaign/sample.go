package campaign

import (
	"fmt"
	"math/rand"

	"faultspace/internal/pruning"
	"faultspace/internal/trace"
)

// SampleMode selects what population a sampling campaign draws from.
type SampleMode uint8

// Sampling modes.
const (
	// SampleRaw draws (slot, bit) coordinates uniformly from the raw,
	// unpruned fault space of size w = Δt·Δm — the statistically correct
	// procedure (§III-E). Coordinates falling into known-No-Effect regions
	// are counted as "No Effect" without running an experiment; coordinates
	// falling into an equivalence class reuse a cached class outcome.
	SampleRaw SampleMode = iota + 1

	// SampleEffective draws uniformly from the reduced population
	// w′ = w − knownNoEffect (§V-C, Corollary 1): sampling from
	// known-No-Effect regions is pointless for failure estimation, so the
	// sampler rejects such coordinates. Extrapolation must then use w′.
	SampleEffective

	// SampleClasses draws equivalence *classes* uniformly — the biased
	// procedure of Pitfall 2. Every class is equally likely regardless of
	// its weight, so the estimate is skewed by exactly the correlation
	// between class size and outcome that Pitfall 1 describes.
	SampleClasses
)

// String returns the mode name.
func (m SampleMode) String() string {
	switch m {
	case SampleRaw:
		return "raw"
	case SampleEffective:
		return "effective"
	case SampleClasses:
		return "classes(biased)"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// SampleResult is the outcome of a sampling campaign.
type SampleResult struct {
	Mode SampleMode
	N    int   // number of samples drawn
	Seed int64 // PRNG seed, for reproducibility

	// Counts is the per-outcome count over the N draws, by base outcome
	// (attack flag stripped). Draws sharing an equivalence class all
	// count (one experiment, many samples).
	Counts [NumOutcomes]uint64

	// Attacks is the number of draws whose outcome satisfied the
	// campaign's attacker objective (always 0 without one).
	Attacks uint64

	// Population is the size of the population sampled from: w for
	// SampleRaw, w′ for SampleEffective, the class count for SampleClasses.
	// Extrapolated counts are Counts[o]/N × Population (§V-C, Corollary 2).
	Population uint64

	// Experiments is the number of fault-injection runs actually executed
	// (unique equivalence classes hit).
	Experiments int
}

// Failures returns the number of non-benign draws.
func (sr *SampleResult) Failures() uint64 {
	var n uint64
	for o := 0; o < NumOutcomes; o++ {
		if !Outcome(o).Benign() {
			n += sr.Counts[o]
		}
	}
	return n
}

// ExtrapolatedFailures extrapolates the sampled failure count to the
// population size (Pitfall 3, Corollary 2): F_extrapolated = pop·F_s/N_s.
func (sr *SampleResult) ExtrapolatedFailures() float64 {
	if sr.N == 0 {
		return 0
	}
	return float64(sr.Population) * float64(sr.Failures()) / float64(sr.N)
}

// SampleScan runs a sampling campaign of n draws with the given mode and
// deterministic seed.
func SampleScan(t Target, golden *trace.Golden, fs *pruning.FaultSpace, cfg Config, mode SampleMode, n int, seed int64) (*SampleResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("campaign: sample size %d must be positive", n)
	}
	if fs.Cycles == 0 || fs.Bits == 0 {
		return nil, fmt.Errorf("campaign: empty fault space")
	}

	sr := &SampleResult{Mode: mode, N: n, Seed: seed}
	switch mode {
	case SampleRaw:
		sr.Population = fs.Size()
	case SampleEffective:
		sr.Population = fs.ExperimentWeight()
		if sr.Population == 0 {
			return nil, fmt.Errorf("campaign: no effective population (all coordinates known No Effect)")
		}
	case SampleClasses:
		sr.Population = uint64(len(fs.Classes))
		if len(fs.Classes) == 0 {
			return nil, fmt.Errorf("campaign: no equivalence classes to sample")
		}
	default:
		return nil, fmt.Errorf("campaign: unknown sample mode %d", mode)
	}

	rng := rand.New(rand.NewSource(seed))
	budget := cfg.timeoutBudget(golden.Cycles)
	m, err := t.newMachine()
	if err != nil {
		return nil, err
	}
	reset := m.Snapshot()
	cache := make(map[int]Outcome)

	flip := flipFor(fs.Kind)
	runClass := func(ci int) (Outcome, error) {
		if o, ok := cache[ci]; ok {
			return o, nil
		}
		m.Restore(reset)
		c := fs.Classes[ci]
		o, err := runFromReset(m, golden, c.Slot(), c.Bit, budget, 0, flip, cfg.Objective, nil)
		if err != nil {
			return 0, err
		}
		cache[ci] = o
		return o, nil
	}

	for i := 0; i < n; i++ {
		var (
			o   Outcome
			err error
		)
		switch mode {
		case SampleClasses:
			o, err = runClass(rng.Intn(len(fs.Classes)))
		case SampleRaw:
			slot := uint64(rng.Int63n(int64(fs.Cycles))) + 1
			bit := uint64(rng.Int63n(int64(fs.Bits)))
			ci, inClass, lerr := fs.Locate(slot, bit)
			if lerr != nil {
				return nil, lerr
			}
			if !inClass {
				o = OutcomeNoEffect
			} else {
				o, err = runClass(ci)
			}
		case SampleEffective:
			// Rejection-sample the raw space until a coordinate lands in an
			// equivalence class; this draws uniformly from w′.
			for {
				slot := uint64(rng.Int63n(int64(fs.Cycles))) + 1
				bit := uint64(rng.Int63n(int64(fs.Bits)))
				ci, inClass, lerr := fs.Locate(slot, bit)
				if lerr != nil {
					return nil, lerr
				}
				if !inClass {
					continue
				}
				o, err = runClass(ci)
				break
			}
		}
		if err != nil {
			return nil, err
		}
		sr.Counts[o.Base()]++
		if o.Attack() {
			sr.Attacks++
		}
	}
	sr.Experiments = len(cache)
	return sr, nil
}
