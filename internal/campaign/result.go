package campaign

// ClassCounts returns the number of equivalence classes per outcome —
// the "unweighted result accounting" that Pitfall 1 warns about when fed
// into coverage formulas.
func (r *Result) ClassCounts() [NumOutcomes]uint64 {
	var counts [NumOutcomes]uint64
	for _, o := range r.Outcomes {
		counts[o.Base()]++
	}
	return counts
}

// WeightedCounts returns, per outcome, the total fault-space weight of the
// classes with that outcome: every experiment result expanded to the size
// of its equivalence class (the correct accounting per Pitfall 1).
// Known-No-Effect coordinates are NOT included; add SpaceKnownNoEffect for
// the full-space view.
func (r *Result) WeightedCounts() [NumOutcomes]uint64 {
	var counts [NumOutcomes]uint64
	for i, o := range r.Outcomes {
		counts[o.Base()] += r.Space.Classes[i].Weight()
	}
	return counts
}

// FullSpaceCounts returns per-outcome weighted counts over the complete
// raw fault space: class weights plus the a-priori-known "No Effect"
// coordinates folded into OutcomeNoEffect. The counts sum to w = Δt·Δm.
func (r *Result) FullSpaceCounts() [NumOutcomes]uint64 {
	counts := r.WeightedCounts()
	counts[OutcomeNoEffect] += r.Space.KnownNoEffect
	return counts
}

// FailureClasses returns the number of classes with a non-benign outcome
// (the raw "F" a naive unweighted analysis would report).
func (r *Result) FailureClasses() uint64 {
	var n uint64
	for _, o := range r.Outcomes {
		if !o.Benign() {
			n++
		}
	}
	return n
}

// FailureWeight returns the total fault-space weight of non-benign
// outcomes: the extrapolated absolute failure count F of §V — the paper's
// proposed comparison metric. P(Failure) ∝ FailureWeight (Equation 6).
func (r *Result) FailureWeight() uint64 {
	var n uint64
	for i, o := range r.Outcomes {
		if !o.Benign() {
			n += r.Space.Classes[i].Weight()
		}
	}
	return n
}

// BenignWeight returns the weighted count of benign outcomes among the
// conducted experiments (excluding known-No-Effect coordinates).
func (r *Result) BenignWeight() uint64 {
	var n uint64
	for i, o := range r.Outcomes {
		if o.Benign() {
			n += r.Space.Classes[i].Weight()
		}
	}
	return n
}

// AttackClasses returns the number of classes whose outcome satisfied
// the campaign's attacker objective (0 when no objective was set).
func (r *Result) AttackClasses() uint64 {
	var n uint64
	for _, o := range r.Outcomes {
		if o.Attack() {
			n++
		}
	}
	return n
}

// AttackWeight returns the total fault-space weight of attack-success
// outcomes: the extrapolated count of raw (cycle, bit) coordinates at
// which the injected fault achieves the attacker objective — the
// attack-surface analogue of FailureWeight. Known-No-Effect coordinates
// never contribute: a fault without any effect cannot satisfy an
// objective (every builtin objective requires an observable deviation).
func (r *Result) AttackWeight() uint64 {
	var n uint64
	for i, o := range r.Outcomes {
		if o.Attack() {
			n += r.Space.Classes[i].Weight()
		}
	}
	return n
}
