// Package campaign executes fault-injection campaigns: full fault-space
// scans over def/use equivalence classes and sampling campaigns, with
// experiment outcomes classified against a golden run.
//
// It is the FAIL*-shaped engine of this reproduction: deterministic,
// repeatable experiments with full controllability of where and when the
// fault is injected (§I of the paper).
package campaign

import (
	"bytes"
	"fmt"

	"faultspace/internal/machine"
	"faultspace/internal/trace"
)

// Outcome is the experiment-outcome type of one fault-injection run.
// The set mirrors the eight outcome types of the paper's data set (§II-D):
// two benign types and six failure modes.
type Outcome uint8

// Experiment outcomes.
const (
	// OutcomeNoEffect: the run behaved exactly like the golden run.
	OutcomeNoEffect Outcome = iota
	// OutcomeDetectedCorrected: output identical to the golden run and a
	// fault-tolerance mechanism signalled a detection/correction. Benign.
	OutcomeDetectedCorrected
	// OutcomeSDC: silent data corruption — the run terminated normally but
	// its output differs from the golden run.
	OutcomeSDC
	// OutcomeTimeout: the run exceeded its cycle budget.
	OutcomeTimeout
	// OutcomeCPUException: a memory-related CPU exception (out-of-range or
	// misaligned access, load from an MMIO port).
	OutcomeCPUException
	// OutcomeIllegalInstruction: control flow escaped the program (bad PC)
	// or an invalid opcode was executed.
	OutcomeIllegalInstruction
	// OutcomeDetectedUnrecoverable: a fault-tolerance mechanism detected an
	// unrecoverable error and shut the system down (store to PortAbort).
	OutcomeDetectedUnrecoverable
	// OutcomePrematureHalt: the run halted with a strict prefix of the
	// golden output — it terminated too early.
	OutcomePrematureHalt

	// NumOutcomes is the number of outcome types.
	NumOutcomes = int(OutcomePrematureHalt) + 1
)

// AttackFlag marks an outcome as attack-success under the campaign's
// attacker objective (see objective.go). It is a high bit OR-ed onto the
// base outcome so the flagged value still fits the single byte used by
// checkpoint entries, wire submissions and archives; code that indexes
// per-outcome arrays must go through Base().
const AttackFlag Outcome = 0x80

// Base strips the attack flag, returning the paper-taxonomy outcome.
func (o Outcome) Base() Outcome { return o &^ AttackFlag }

// Attack reports whether the experiment satisfied the campaign's
// attacker objective.
func (o Outcome) Attack() bool { return o&AttackFlag != 0 }

// Known reports whether o is a valid outcome byte: a known base outcome,
// with or without the attack flag.
func (o Outcome) Known() bool { return int(o.Base()) < NumOutcomes }

var outcomeNames = [NumOutcomes]string{
	"No Effect",
	"Detected & Corrected",
	"SDC",
	"Timeout",
	"CPU Exception",
	"Illegal Instruction",
	"Detected Unrecoverable",
	"Premature Halt",
}

// String returns the outcome name as used in reports; attack-flagged
// outcomes carry an " (attack)" suffix.
func (o Outcome) String() string {
	if int(o.Base()) >= NumOutcomes {
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
	if o.Attack() {
		return outcomeNames[o.Base()] + " (attack)"
	}
	return outcomeNames[o]
}

var outcomeMetricNames = [NumOutcomes]string{
	"no_effect",
	"detected_corrected",
	"sdc",
	"timeout",
	"cpu_exception",
	"illegal_instruction",
	"detected_unrecoverable",
	"premature_halt",
}

// MetricName returns the outcome's snake_case identifier as used in
// telemetry metric names (e.g. "scan.outcome.no_effect"). The attack
// flag does not change the metric name; attack successes are counted
// separately.
func (o Outcome) MetricName() string {
	if int(o.Base()) < NumOutcomes {
		return outcomeMetricNames[o.Base()]
	}
	return fmt.Sprintf("outcome_%d", uint8(o))
}

// Benign reports whether the outcome has no externally visible effect.
// Benign outcomes coalesce into "No Effect" and the remaining six into
// "Failure" for the paper's two-way analysis (§II-D).
func (o Outcome) Benign() bool {
	b := o.Base()
	return b == OutcomeNoEffect || b == OutcomeDetectedCorrected
}

// classify maps a finished experiment machine to an outcome, evaluating
// the campaign's attacker objective (nil = none) on the way.
func classify(m *machine.Machine, golden *trace.Golden, obj *Objective) Outcome {
	return composeOutcome(obj, m.Status(), m.Exception(), m.SerialView(), nil,
		m.DetectCount(), m.CorrectCount(), golden)
}

// composeOutcome classifies a finished run from its terminal status and
// observables, with the serial output split into an observed prefix and
// a (possibly empty) composed suffix — so a memoized remainder can be
// classified against the golden run without concatenating the two
// parts. It is the single source of truth for the status → outcome
// mapping; classify and the memo hit path are both thin wrappers. The
// attacker objective (nil = none) is evaluated here so every
// classification site — plain run-out, memo hit, reconvergence — flags
// attack successes identically.
func composeOutcome(obj *Objective, status machine.Status, exc machine.Exception, serial, suffix []byte, detects, corrects uint64, golden *trace.Golden) Outcome {
	var base Outcome
	switch status {
	case machine.StatusRunning:
		base = OutcomeTimeout
	case machine.StatusAborted:
		base = OutcomeDetectedUnrecoverable
	case machine.StatusExcepted:
		switch exc {
		case machine.ExcIllegalOp, machine.ExcBadPC:
			base = OutcomeIllegalInstruction
		case machine.ExcSerialLimit:
			// The run flooded the serial port; its output necessarily
			// diverged from the golden run.
			base = OutcomeSDC
		default:
			base = OutcomeCPUException
		}
	case machine.StatusHalted:
		base = classifyHaltedParts(serial, suffix, detects, corrects, golden)
	default:
		// Unreachable with a correct machine; classify conservatively.
		base = OutcomeSDC
	}
	return obj.apply(base, status, exc, len(serial)+len(suffix), detects, corrects, golden)
}

// classifyHaltedParts classifies a run that halted normally with the
// given final serial output and event counters, the output given as
// prefix + suffix and compared without concatenation: the run's output
// is the golden output / a strict prefix of it / something else exactly
// when the two parts line up against the corresponding golden slices.
// An empty suffix degenerates to the plain whole-output comparison.
func classifyHaltedParts(prefix, suffix []byte, detects, corrects uint64, golden *trace.Golden) Outcome {
	g := golden.Serial
	n := len(prefix) + len(suffix)
	if len(prefix) <= len(g) && n <= len(g) &&
		bytes.Equal(prefix, g[:len(prefix)]) &&
		bytes.Equal(suffix, g[len(prefix):n]) {
		if n == len(g) {
			if corrects > golden.Corrects || detects > golden.Detects {
				return OutcomeDetectedCorrected
			}
			return OutcomeNoEffect
		}
		return OutcomePrematureHalt
	}
	return OutcomeSDC
}

// classifyConverged classifies an experiment whose machine state
// reconverged with the golden run at ladder rung r (StateMatches): the
// continuation is a cycle-for-cycle golden replay ending in a normal
// halt, so the final serial output and event counters are the current
// values plus the golden remainder — no further simulation needed. The
// two serial parts are compared in place (classifyHaltedParts), never
// concatenated, keeping the reconvergence path allocation-free — under
// ladder and fork this is the most common way an experiment ends, so it
// sits squarely on the scan hot path (TestClassifyConvergedAllocFree).
// Serial-flood is no concern: if the composed output exceeded the
// machine's serial cap it necessarily differs from the golden output,
// and both the real run (ExcSerialLimit) and classifyHaltedParts call
// that SDC.
func classifyConverged(m *machine.Machine, l *machine.Ladder, r int, golden *trace.Golden, obj *Objective) Outcome {
	serialLen, gdet, gcor := l.RungAccum(r)
	suffix := golden.Serial[serialLen:]
	detects := m.DetectCount() + (golden.Detects - gdet)
	corrects := m.CorrectCount() + (golden.Corrects - gcor)
	base := classifyHaltedParts(m.SerialView(), suffix, detects, corrects, golden)
	return obj.apply(base, machine.StatusHalted, machine.ExcNone,
		m.SerialLen()+len(suffix), detects, corrects, golden)
}

// runConverge finishes an injected experiment under the ladder
// strategy: it advances the machine rung by rung, checking for
// reconvergence with the golden state at each rung boundary; once the
// state matches a rung, the outcome is composed from the golden trace
// without simulating the remainder. A run that survives past the last
// rung — it outlived the golden run, so it can only halt abnormally or
// time out — is driven toward the cycle budget under loop detection,
// which proves most Timeout verdicts as soon as the spin loop closes
// instead of simulating the full budget. Loop detection starts early:
// from the first rung whose convergence check fails — most faults that
// spin forever enter their loop well before the golden run's end, and
// an exact-state recurrence is an equally sound infinity proof at any
// cycle (the objective layer masks serial/counter observables for
// non-halted runs, so proof timing is unobservable). Converging
// experiments, the common case, never pay a single probe. Neither
// shortcut changes any outcome relative to rerun: reconvergence
// implies a golden continuation, and state recurrence implies the
// budget is unreachable.
//
// A non-nil mr adds the cross-experiment shortcut at the same rung
// boundaries: states that do NOT match the golden rung are probed
// against the memo cache — a hit composes the outcome from another
// experiment's cached remainder — and however the run ends (golden
// reconvergence, memo hit, or natural finish), entries are back-filled
// for every missed probe so later experiments funneling through the
// same states skip straight to the outcome.
//
// st counts which shortcut, if any, settled the outcome (nil-safe).
func runConverge(m *machine.Machine, l *machine.Ladder, golden *trace.Golden, budget uint64, obj *Objective, det *machine.LoopDetector, mr *memoRun, st *scanTel) Outcome {
	if mr != nil {
		mr.reset()
	}
	probing := false
	for r := l.Find(m.Cycles()) + 1; r < l.Rungs(); r++ {
		if probing {
			if det.RunDetectLoop(m, l.RungCycle(r)) {
				if st != nil {
					st.loopProofs.Inc()
				}
				o := classify(m, golden, obj)
				if mr != nil {
					mr.populate(m)
				}
				return o
			}
			if m.Status() != machine.StatusRunning {
				break
			}
		} else if m.Run(l.RungCycle(r)) != machine.StatusRunning {
			break
		}
		if l.StateMatches(m, r) {
			if st != nil {
				st.reconverged.Inc()
			}
			o := classifyConverged(m, l, r, golden, obj)
			if mr != nil {
				// The continuation from here is the golden remainder:
				// a normal halt emitting the traced serial/counter tail.
				serialLen, gdet, gcor := l.RungAccum(r)
				mr.populateComposed(m, machine.StatusHalted, machine.ExcNone,
					golden.Serial[serialLen:], golden.Detects-gdet, golden.Corrects-gcor)
			}
			return o
		}
		if mr != nil && !mr.exhausted() {
			// Admission gate: skip the probe when the remaining budget
			// cannot repay the state-hash cost (see memoHashBytesPerCycle).
			if budget-m.Cycles() < mr.breakEvenCycles(m) {
				mr.gated()
			} else if e, hit := mr.probe(m); hit {
				o := composeOutcome(obj, e.status, e.exc, m.SerialView(), e.serial,
					m.DetectCount()+e.detects, m.CorrectCount()+e.corrects, golden)
				mr.populateComposed(m, e.status, e.exc, e.serial, e.detects, e.corrects)
				return o
			}
		}
		if !probing {
			probing = true
			det.Reset()
		}
	}
	if m.Status() == machine.StatusRunning && m.Cycles() < budget {
		if !probing {
			det.Reset()
		}
		if det.RunDetectLoop(m, budget) && st != nil {
			st.loopProofs.Inc()
		}
	}
	// A machine still running here either exhausted the budget or was
	// proven to loop forever; classify calls both Timeout.
	o := classify(m, golden, obj)
	if mr != nil {
		mr.populate(m)
	}
	return o
}
