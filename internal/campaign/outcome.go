// Package campaign executes fault-injection campaigns: full fault-space
// scans over def/use equivalence classes and sampling campaigns, with
// experiment outcomes classified against a golden run.
//
// It is the FAIL*-shaped engine of this reproduction: deterministic,
// repeatable experiments with full controllability of where and when the
// fault is injected (§I of the paper).
package campaign

import (
	"bytes"
	"fmt"

	"faultspace/internal/machine"
	"faultspace/internal/trace"
)

// Outcome is the experiment-outcome type of one fault-injection run.
// The set mirrors the eight outcome types of the paper's data set (§II-D):
// two benign types and six failure modes.
type Outcome uint8

// Experiment outcomes.
const (
	// OutcomeNoEffect: the run behaved exactly like the golden run.
	OutcomeNoEffect Outcome = iota
	// OutcomeDetectedCorrected: output identical to the golden run and a
	// fault-tolerance mechanism signalled a detection/correction. Benign.
	OutcomeDetectedCorrected
	// OutcomeSDC: silent data corruption — the run terminated normally but
	// its output differs from the golden run.
	OutcomeSDC
	// OutcomeTimeout: the run exceeded its cycle budget.
	OutcomeTimeout
	// OutcomeCPUException: a memory-related CPU exception (out-of-range or
	// misaligned access, load from an MMIO port).
	OutcomeCPUException
	// OutcomeIllegalInstruction: control flow escaped the program (bad PC)
	// or an invalid opcode was executed.
	OutcomeIllegalInstruction
	// OutcomeDetectedUnrecoverable: a fault-tolerance mechanism detected an
	// unrecoverable error and shut the system down (store to PortAbort).
	OutcomeDetectedUnrecoverable
	// OutcomePrematureHalt: the run halted with a strict prefix of the
	// golden output — it terminated too early.
	OutcomePrematureHalt

	// NumOutcomes is the number of outcome types.
	NumOutcomes = int(OutcomePrematureHalt) + 1
)

var outcomeNames = [NumOutcomes]string{
	"No Effect",
	"Detected & Corrected",
	"SDC",
	"Timeout",
	"CPU Exception",
	"Illegal Instruction",
	"Detected Unrecoverable",
	"Premature Halt",
}

// String returns the outcome name as used in reports.
func (o Outcome) String() string {
	if int(o) < NumOutcomes {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Benign reports whether the outcome has no externally visible effect.
// Benign outcomes coalesce into "No Effect" and the remaining six into
// "Failure" for the paper's two-way analysis (§II-D).
func (o Outcome) Benign() bool {
	return o == OutcomeNoEffect || o == OutcomeDetectedCorrected
}

// classify maps a finished experiment machine to an outcome.
func classify(m *machine.Machine, golden *trace.Golden) Outcome {
	switch m.Status() {
	case machine.StatusRunning:
		return OutcomeTimeout
	case machine.StatusAborted:
		return OutcomeDetectedUnrecoverable
	case machine.StatusExcepted:
		switch m.Exception() {
		case machine.ExcIllegalOp, machine.ExcBadPC:
			return OutcomeIllegalInstruction
		case machine.ExcSerialLimit:
			// The run flooded the serial port; its output necessarily
			// diverged from the golden run.
			return OutcomeSDC
		default:
			return OutcomeCPUException
		}
	case machine.StatusHalted:
		serial := m.Serial()
		if bytes.Equal(serial, golden.Serial) {
			if m.CorrectCount() > golden.Corrects || m.DetectCount() > golden.Detects {
				return OutcomeDetectedCorrected
			}
			return OutcomeNoEffect
		}
		if len(serial) < len(golden.Serial) && bytes.HasPrefix(golden.Serial, serial) {
			return OutcomePrematureHalt
		}
		return OutcomeSDC
	default:
		// Unreachable with a correct machine; classify conservatively.
		return OutcomeSDC
	}
}
