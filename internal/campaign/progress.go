package campaign

import "time"

// Progress is one event of a scan's progress stream. Events are delivered
// to Config.OnProgress serially: an initial event when the scan starts
// (reflecting any checkpoint-restored classes), throttled events while
// experiments complete, and a final event (Final=true) when the scan
// finishes, errors out or is interrupted.
type Progress struct {
	// Done is the number of classes with a recorded outcome, including
	// classes restored from a checkpoint. Total is the class count of the
	// fault space.
	Done, Total int
	// Session counts the experiments executed by this scan run only
	// (excludes checkpoint-restored classes) — the basis of Rate.
	Session int
	// Counts are running per-outcome class counts (by base outcome,
	// attack flag stripped), including restored classes.
	Counts [NumOutcomes]uint64
	// Attacks is the running count of classes whose outcome satisfied
	// the campaign's attacker objective (always 0 without one).
	Attacks uint64
	// Elapsed is the wall time since this scan run started.
	Elapsed time.Duration
	// Rate is experiments per second this session (0 until measurable).
	Rate float64
	// ETA estimates the remaining wall time from Rate (0 when unknown).
	ETA time.Duration
	// Final marks the last event of the scan.
	Final bool
}

// Failures returns the running weighted-class failure count — the number
// of classes (not weights) with a non-benign outcome so far.
func (p Progress) Failures() uint64 {
	var n uint64
	for o := 0; o < NumOutcomes; o++ {
		if !Outcome(o).Benign() {
			n += p.Counts[o]
		}
	}
	return n
}

// meter accumulates scan progress and drives the OnResult / OnProgress
// callbacks. All mutating calls happen on the collector goroutine (or,
// for the initial and final events, strictly before/after it runs), so
// no locking is needed.
type meter struct {
	onResult   func(class int, o Outcome)
	onProgress func(Progress)
	interval   time.Duration // < 0: emit every record

	total    int
	done     int
	session  int
	counts   [NumOutcomes]uint64
	attacks  uint64
	start    time.Time
	lastEmit time.Time
	finished bool
}

// newMeter seeds the meter with checkpoint-restored outcomes and emits
// the initial progress event.
func newMeter(cfg Config, total int, prior map[int]Outcome) *meter {
	now := time.Now()
	m := &meter{
		onResult:   cfg.OnResult,
		onProgress: cfg.OnProgress,
		interval:   cfg.ProgressInterval,
		total:      total,
		done:       len(prior),
		start:      now,
	}
	for _, o := range prior {
		m.counts[o.Base()]++
		if o.Attack() {
			m.attacks++
		}
	}
	if m.onProgress != nil {
		m.emit(now, false)
	}
	return m
}

// record accounts one completed experiment.
func (m *meter) record(class int, o Outcome) {
	m.counts[o.Base()]++
	if o.Attack() {
		m.attacks++
	}
	m.done++
	m.session++
	if m.onResult != nil {
		m.onResult(class, o)
	}
	if m.onProgress != nil {
		if now := time.Now(); m.interval < 0 || now.Sub(m.lastEmit) >= m.interval {
			m.emit(now, false)
		}
	}
}

// finish emits the final progress event (idempotent).
func (m *meter) finish() {
	if m.onProgress != nil && !m.finished {
		m.emit(time.Now(), true)
	}
	m.finished = true
}

// emit builds and delivers one progress event. The single now reading
// is the clock for everything — Elapsed (and hence Rate/ETA) and the
// throttle timestamp lastEmit — so an event can never report an Elapsed
// that disagrees with the instant its throttle window opened.
func (m *meter) emit(now time.Time, final bool) {
	p := Progress{
		Done:    m.done,
		Total:   m.total,
		Session: m.session,
		Counts:  m.counts,
		Attacks: m.attacks,
		Elapsed: now.Sub(m.start),
		Final:   final,
	}
	if p.Elapsed > 0 && m.session > 0 {
		p.Rate = float64(m.session) / p.Elapsed.Seconds()
		if remaining := m.total - m.done; remaining > 0 && p.Rate > 0 {
			p.ETA = time.Duration(float64(remaining) / p.Rate * float64(time.Second))
		}
	}
	m.lastEmit = now
	m.onProgress(p)
}
