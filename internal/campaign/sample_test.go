package campaign

import (
	"math"
	"testing"
)

func TestSampleModeStrings(t *testing.T) {
	for _, m := range []SampleMode{SampleRaw, SampleEffective, SampleClasses, SampleMode(99)} {
		if m.String() == "" {
			t.Errorf("mode %d has empty name", m)
		}
	}
}

func TestSampleValidation(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	if _, err := SampleScan(target, golden, fs, Config{}, SampleRaw, 0, 1); err == nil {
		t.Error("n = 0 must be rejected")
	}
	if _, err := SampleScan(target, golden, fs, Config{}, SampleMode(42), 10, 1); err == nil {
		t.Error("unknown mode must be rejected")
	}
}

func TestSampleDeterministicPerSeed(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	a, err := SampleScan(target, golden, fs, Config{}, SampleRaw, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleScan(target, golden, fs, Config{}, SampleRaw, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts != b.Counts || a.Experiments != b.Experiments {
		t.Error("same seed must reproduce the same campaign")
	}
	c, err := SampleScan(target, golden, fs, Config{}, SampleRaw, 200, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts == c.Counts {
		t.Log("different seeds produced identical counts (possible but unlikely)")
	}
}

// TestRawSamplingConverges draws a large sample from the Hi fault space,
// where the true failure probability is 48/128 = 0.375, and checks the
// extrapolated failure count lands near the truth.
func TestRawSamplingConverges(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	sr, err := SampleScan(target, golden, fs, Config{}, SampleRaw, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Population != 128 {
		t.Fatalf("population = %d, want 128", sr.Population)
	}
	est := sr.ExtrapolatedFailures()
	if math.Abs(est-48) > 5 {
		t.Errorf("extrapolated failures = %.1f, want ~48", est)
	}
	// With only 16 equivalence classes plus the known-No-Effect region,
	// at most 16 experiments can have been executed.
	if sr.Experiments > len(fs.Classes) {
		t.Errorf("experiments = %d > classes = %d", sr.Experiments, len(fs.Classes))
	}
}

// TestEffectiveSamplingConverges checks Corollary-1 sampling: population
// w' and estimates consistent with the raw truth.
func TestEffectiveSamplingConverges(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	sr, err := SampleScan(target, golden, fs, Config{}, SampleEffective, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Population != fs.ExperimentWeight() {
		t.Fatalf("population = %d, want w' = %d", sr.Population, fs.ExperimentWeight())
	}
	est := sr.ExtrapolatedFailures()
	if math.Abs(est-48) > 5 {
		t.Errorf("extrapolated failures = %.1f, want ~48", est)
	}
}

// TestBiasedSamplingSkews demonstrates Pitfall 2 quantitatively: on the Hi
// program the class-uniform estimator sees failure proportion 16/16 = 1.0
// among failing-vs-benign classes... every class here is a failure class of
// weight 3, so the biased failure proportion is 1.0 while the true
// fault-space failure probability is 0.375.
func TestBiasedSamplingSkews(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	sr, err := SampleScan(target, golden, fs, Config{}, SampleClasses, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	fails := sr.Failures()
	if fails != uint64(sr.N) {
		t.Errorf("biased sampling on hi: %d/%d failures, want all draws failing", fails, sr.N)
	}
}

func TestSampleResultHelpers(t *testing.T) {
	sr := &SampleResult{N: 100, Population: 1000}
	sr.Counts[OutcomeSDC] = 20
	sr.Counts[OutcomeNoEffect] = 80
	if sr.Failures() != 20 {
		t.Errorf("failures = %d, want 20", sr.Failures())
	}
	if got := sr.ExtrapolatedFailures(); got != 200 {
		t.Errorf("extrapolated = %v, want 200", got)
	}
	empty := &SampleResult{}
	if empty.ExtrapolatedFailures() != 0 {
		t.Error("empty result must extrapolate to 0")
	}
}
