package campaign

import (
	"testing"

	"faultspace/internal/isa"
	"faultspace/internal/machine"
	"faultspace/internal/trace"
)

func TestOutcomeBenign(t *testing.T) {
	benign := map[Outcome]bool{
		OutcomeNoEffect:              true,
		OutcomeDetectedCorrected:     true,
		OutcomeSDC:                   false,
		OutcomeTimeout:               false,
		OutcomeCPUException:          false,
		OutcomeIllegalInstruction:    false,
		OutcomeDetectedUnrecoverable: false,
		OutcomePrematureHalt:         false,
	}
	if len(benign) != NumOutcomes {
		t.Fatalf("test covers %d outcomes, want %d", len(benign), NumOutcomes)
	}
	for o, want := range benign {
		if o.Benign() != want {
			t.Errorf("%v.Benign() = %v, want %v", o, o.Benign(), want)
		}
		if o.String() == "" {
			t.Errorf("outcome %d has empty name", o)
		}
	}
}

// runToEnd builds a machine for prog, runs it to termination (budget 100)
// and classifies against golden.
func classifyProg(t *testing.T, prog []isa.Instruction, golden *trace.Golden) Outcome {
	t.Helper()
	m, err := machine.New(machine.Config{RAMSize: 8}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100)
	return classify(m, golden, nil)
}

func TestClassifyCases(t *testing.T) {
	golden := &trace.Golden{Serial: []byte("AB")}
	serial := int32(machine.PortSerial)
	emit := func(b byte) isa.Instruction {
		return isa.Instruction{Op: isa.OpSbi, Rs: 0, Imm: serial, Imm2: int32(b)}
	}

	tests := []struct {
		name string
		prog []isa.Instruction
		want Outcome
	}{
		{"no-effect", []isa.Instruction{emit('A'), emit('B'), {Op: isa.OpHalt}}, OutcomeNoEffect},
		{"sdc-wrong-byte", []isa.Instruction{emit('A'), emit('X'), {Op: isa.OpHalt}}, OutcomeSDC},
		{"sdc-extra-output", []isa.Instruction{emit('A'), emit('B'), emit('C'), {Op: isa.OpHalt}}, OutcomeSDC},
		{"premature-halt", []isa.Instruction{emit('A'), {Op: isa.OpHalt}}, OutcomePrematureHalt},
		{"timeout", []isa.Instruction{emit('A'), emit('B'), {Op: isa.OpJmp, Imm: 2}}, OutcomeTimeout},
		{"cpu-exception", []isa.Instruction{{Op: isa.OpLw, Rd: 1, Rs: 0, Imm: 999}}, OutcomeCPUException},
		{"illegal", []isa.Instruction{{Op: isa.Op(77)}}, OutcomeIllegalInstruction},
		{"bad-pc", []isa.Instruction{{Op: isa.OpNop}}, OutcomeIllegalInstruction},
		{"detected-unrecoverable", []isa.Instruction{
			{Op: isa.OpSwi, Rs: 0, Imm: int32(machine.PortAbort), Imm2: 1}}, OutcomeDetectedUnrecoverable},
		{"detected-corrected", []isa.Instruction{
			emit('A'), emit('B'),
			{Op: isa.OpSwi, Rs: 0, Imm: int32(machine.PortCorrect), Imm2: 1},
			{Op: isa.OpHalt}}, OutcomeDetectedCorrected},
		{"detected-only-counts-benign", []isa.Instruction{
			emit('A'), emit('B'),
			{Op: isa.OpSwi, Rs: 0, Imm: int32(machine.PortDetect), Imm2: 1},
			{Op: isa.OpHalt}}, OutcomeDetectedCorrected},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := classifyProg(t, tt.prog, golden); got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestClassifySerialFlood(t *testing.T) {
	golden := &trace.Golden{Serial: []byte("A")}
	m, err := machine.New(machine.Config{RAMSize: 8, MaxSerial: 16}, []isa.Instruction{
		{Op: isa.OpSbi, Rs: 0, Imm: int32(machine.PortSerial), Imm2: 'A'},
		{Op: isa.OpJmp, Imm: 0},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(1000)
	if got := classify(m, golden, nil); got != OutcomeSDC {
		t.Errorf("serial flood classified as %v, want SDC", got)
	}
}

// TestClassifyConvergedAllocFree pins the reconvergence classification
// as allocation-free: under the ladder and fork strategies most
// experiments end through classifyConverged, so a single allocation
// there (the old code concatenated prefix and golden-suffix serial)
// puts garbage on the scan hot path. The faultless machine below
// matches the golden rung state by construction.
func TestClassifyConvergedAllocFree(t *testing.T) {
	target := hiTarget(t)
	golden, _ := prepare(t, target)
	pioneer, err := target.newMachine()
	if err != nil {
		t.Fatal(err)
	}
	interval := (golden.Cycles + 3) / 4 // a handful of rungs regardless of target size
	ladder := machine.NewLadder(pioneer)
	for next := interval; next < golden.Cycles; next += interval {
		if status := pioneer.Run(next); status != machine.StatusRunning {
			t.Fatalf("golden replay ended early at cycle %d (%s)", pioneer.Cycles(), status)
		}
		ladder.Capture(pioneer)
	}
	if ladder.Rungs() < 2 {
		t.Fatalf("need at least 2 rungs, got %d", ladder.Rungs())
	}
	m, err := target.newMachine()
	if err != nil {
		t.Fatal(err)
	}
	r := ladder.Rungs() - 1
	m.Run(ladder.RungCycle(r))
	if !ladder.StateMatches(m, r) {
		t.Fatal("faultless replay must match the golden rung state")
	}
	run := func() {
		if o := classifyConverged(m, ladder, r, golden, nil); o != OutcomeNoEffect {
			t.Fatalf("faultless converged run classified %v, want No Effect", o)
		}
	}
	run() // warm up lazily-allocated machine state
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Errorf("classifyConverged allocates %.1f times per run, want 0", allocs)
	}
}

// TestClassifyCorrectionsRelativeToGolden ensures that a golden run which
// itself signals corrections (it must not, but defensively) is compared by
// delta, not absolute count.
func TestClassifyCorrectionsRelativeToGolden(t *testing.T) {
	golden := &trace.Golden{Serial: []byte("A"), Corrects: 1}
	prog := []isa.Instruction{
		{Op: isa.OpSbi, Rs: 0, Imm: int32(machine.PortSerial), Imm2: 'A'},
		{Op: isa.OpSwi, Rs: 0, Imm: int32(machine.PortCorrect), Imm2: 1},
		{Op: isa.OpHalt},
	}
	if got := classifyProg(t, prog, golden); got != OutcomeNoEffect {
		t.Errorf("got %v, want NoEffect (correction count equals golden)", got)
	}
}
