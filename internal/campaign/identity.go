package campaign

import (
	"crypto/sha256"
	"encoding/binary"
	"math"

	"faultspace/internal/isa"
	"faultspace/internal/pruning"
)

// CampaignIdentity returns the identity hash of a campaign: SHA-256 over
// the target (name, code, initial RAM image, machine configuration), the
// fault-space kind and the outcome-relevant campaign parameters (the
// timeout budget). Two campaigns with equal identity produce equal
// outcome vectors, so the hash keys checkpoints and archives: a
// checkpoint may only ever be resumed into a campaign with the same
// identity.
//
// Workers, Strategy and LadderInterval are deliberately excluded — they
// change how experiments are executed, never what they compute. That
// invariance is what the differential strategy-equivalence test suite
// enforces, and it is what makes a checkpoint written under
// StrategySnapshot resumable under StrategyRerun, StrategyLadder or
// StrategyFork (or with a different worker count or rung spacing).
func (t Target) CampaignIdentity(kind pruning.SpaceKind, cfg Config) ([32]byte, error) {
	cfg = cfg.withDefaults()
	code, err := isa.EncodeProgram(t.Code)
	if err != nil {
		return [32]byte{}, err
	}
	h := sha256.New()
	u64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}
	// v2 added the attacker-objective name: the objective changes the
	// recorded outcomes (the AttackFlag bit), so campaigns with different
	// objectives must never share checkpoints or archive entries.
	str("faultspace campaign identity v2")
	str(t.Name)
	u64(uint64(len(code)))
	h.Write(code)
	u64(uint64(len(t.Image)))
	h.Write(t.Image)
	u64(uint64(t.Mach.RAMSize))
	u64(uint64(t.Mach.MaxSerial))
	u64(t.Mach.TimerPeriod)
	u64(uint64(t.Mach.TimerVector))
	u64(uint64(kind))
	u64(math.Float64bits(cfg.TimeoutFactor))
	u64(cfg.TimeoutSlack)
	if cfg.Objective != nil {
		str(cfg.Objective.Name)
	} else {
		str("")
	}
	var id [32]byte
	copy(id[:], h.Sum(nil))
	return id, nil
}
