package campaign

import (
	"testing"

	"faultspace/internal/pruning"
)

func TestRunMultiSingleCoordMatchesRunSingle(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	cfg := Config{}.withDefaults()
	for _, c := range fs.Classes[:4] {
		single, err := RunSingle(target, golden, cfg, c.Slot(), c.Bit)
		if err != nil {
			t.Fatal(err)
		}
		multi, err := RunMulti(target, golden, cfg, pruning.SpaceMemory,
			[]Coord{{Slot: c.Slot(), Bit: c.Bit}})
		if err != nil {
			t.Fatal(err)
		}
		if single != multi {
			t.Errorf("class %+v: single=%v multi=%v", c, single, multi)
		}
	}
}

func TestRunMultiSameBitTwiceCancels(t *testing.T) {
	// Flipping the same bit twice at the same slot restores the value:
	// the experiment must behave like the fault never happened.
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	c := fs.Classes[0]
	o, err := RunMulti(target, golden, Config{}, pruning.SpaceMemory,
		[]Coord{{Slot: c.Slot(), Bit: c.Bit}, {Slot: c.Slot(), Bit: c.Bit}})
	if err != nil {
		t.Fatal(err)
	}
	if o != OutcomeNoEffect {
		t.Errorf("double flip of one bit = %v, want No Effect", o)
	}
}

func TestRunMultiOrdersCoordinates(t *testing.T) {
	// Coordinates given in descending slot order must still be injected
	// ascending; the result equals the ascending-order call.
	target := hiTarget(t)
	golden, _ := prepare(t, target)
	cfg := Config{}.withDefaults()
	asc, err := RunMulti(target, golden, cfg, pruning.SpaceMemory,
		[]Coord{{Slot: 2, Bit: 0}, {Slot: 5, Bit: 9}})
	if err != nil {
		t.Fatal(err)
	}
	desc, err := RunMulti(target, golden, cfg, pruning.SpaceMemory,
		[]Coord{{Slot: 5, Bit: 9}, {Slot: 2, Bit: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if asc != desc {
		t.Errorf("order dependence: asc=%v desc=%v", asc, desc)
	}
}

func TestRunMultiValidation(t *testing.T) {
	target := hiTarget(t)
	golden, _ := prepare(t, target)
	if _, err := RunMulti(target, golden, Config{}, pruning.SpaceMemory, nil); err == nil {
		t.Error("empty coordinate list must be rejected")
	}
	if _, err := RunMulti(target, golden, Config{}, pruning.SpaceMemory,
		[]Coord{{Slot: 0, Bit: 0}}); err == nil {
		t.Error("slot 0 must be rejected")
	}
	if _, err := RunMulti(target, golden, Config{}, pruning.SpaceMemory,
		[]Coord{{Slot: golden.Cycles + 1, Bit: 0}}); err == nil {
		t.Error("slot past runtime must be rejected")
	}
	if _, err := RunMulti(target, golden, Config{}, pruning.SpaceMemory,
		[]Coord{{Slot: 1, Bit: 1 << 30}}); err == nil {
		t.Error("bit outside space must be rejected")
	}
}

func TestBenignWeightComplementsFailureWeight(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	res, err := FullScan(target, golden, fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BenignWeight()+res.FailureWeight() != fs.ExperimentWeight() {
		t.Errorf("benign %d + failures %d != class weight %d",
			res.BenignWeight(), res.FailureWeight(), fs.ExperimentWeight())
	}
}
