package campaign

import (
	"errors"
	"fmt"
	"sort"

	"faultspace/internal/pruning"
	"faultspace/internal/trace"
)

// EffectiveTimeout returns the outcome-relevant timeout parameters with
// defaults applied — exactly the values CampaignIdentity hashes. The
// cluster handshake ships them so a worker reproduces the coordinator's
// timeout budget (and therefore its identity hash) bit for bit.
func (c Config) EffectiveTimeout() (factor float64, slack uint64) {
	c = c.withDefaults()
	return c.TimeoutFactor, c.TimeoutSlack
}

// RunClasses executes exactly the given equivalence classes of the fault
// space and returns their outcomes keyed by class index. It is the work
// horse of a cluster worker: a leased work unit is a class subset, and
// because experiments are deterministic and independent, running them
// here is outcome-identical to running them inside a local FullScan
// (invariant 8, placement equivalence).
//
// Class indices may arrive in any order; duplicates and out-of-range
// indices are rejected. On interruption via Config.Interrupt the outcomes
// completed so far are returned alongside ErrInterrupted.
func RunClasses(t Target, golden *trace.Golden, fs *pruning.FaultSpace, cfg Config, classes []int) (map[int]Outcome, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.memoEnabled() {
		if cfg.MemoCache == nil {
			cfg.MemoCache = NewMemoCache()
		}
		id, err := t.CampaignIdentity(fs.Kind, cfg)
		if err != nil {
			return nil, fmt.Errorf("campaign: identity: %w", err)
		}
		if err := cfg.MemoCache.bind(id, cfg.timeoutBudget(golden.Cycles)); err != nil {
			return nil, err
		}
	}
	todo := append([]int(nil), classes...)
	// The snapshot feeder walks classes in (Slot, Bit) order, which is the
	// class-index order of a pruned fault space.
	sort.Ints(todo)
	for i, ci := range todo {
		if ci < 0 || ci >= len(fs.Classes) {
			return nil, fmt.Errorf("campaign: class index %d outside [0, %d)", ci, len(fs.Classes))
		}
		if i > 0 && todo[i-1] == ci {
			return nil, fmt.Errorf("campaign: duplicate class index %d", ci)
		}
	}

	completed := make(map[int]Outcome, len(todo))
	userOnResult := cfg.OnResult
	// The collector goroutine is the only writer of completed, and it has
	// exited before RunClasses returns — no locking needed.
	cfg.OnResult = func(ci int, o Outcome) {
		completed[ci] = o
		if userOnResult != nil {
			userOnResult(ci, o)
		}
	}

	m := newMeter(cfg, len(todo), nil)
	defer m.finish()
	if len(todo) == 0 {
		return completed, nil
	}
	out := make([]Outcome, len(fs.Classes))
	st := newScanTel(cfg)
	var scanErr error
	switch cfg.Strategy {
	case StrategySnapshot:
		scanErr = scanSnapshot(t, golden, fs, cfg, todo, out, m, st)
	case StrategyRerun:
		scanErr = scanRerun(t, golden, fs, cfg, todo, out, m, st)
	case StrategyLadder:
		scanErr = scanLadder(t, golden, fs, cfg, todo, out, m, st)
	case StrategyFork:
		scanErr = scanFork(t, golden, fs, cfg, todo, out, m, st)
	}
	if cfg.MemoCache != nil {
		cfg.Telemetry.Gauge("memo.entries").Set(int64(cfg.MemoCache.Len()))
	}
	if scanErr != nil {
		if errors.Is(scanErr, ErrInterrupted) {
			return completed, scanErr
		}
		return nil, scanErr
	}
	return completed, nil
}
