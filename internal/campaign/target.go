package campaign

import (
	"fmt"
	"runtime"
	"time"

	"faultspace/internal/isa"
	"faultspace/internal/machine"
	"faultspace/internal/pruning"
	"faultspace/internal/trace"
)

// Target is a benchmark binary prepared for fault injection.
type Target struct {
	Name  string
	Code  []isa.Instruction
	Image []byte // initial RAM contents
	Mach  machine.Config
}

// Strategy selects how experiments re-reach the injection slot.
type Strategy uint8

// Experiment-execution strategies.
const (
	// StrategySnapshot advances a single pioneer machine through the golden
	// run and forks experiment machines at each injection slot. Each
	// experiment only executes the cycles after the injection. Default.
	StrategySnapshot Strategy = iota + 1
	// StrategyRerun re-executes each experiment from the reset state. This
	// is the naive mode, kept for validation and for the ablation benchmark.
	StrategyRerun
)

// Config parameterizes campaign execution.
type Config struct {
	// TimeoutFactor bounds experiment runtime: an experiment is declared a
	// Timeout after TimeoutFactor × golden-runtime + TimeoutSlack cycles.
	// 0 means DefaultTimeoutFactor.
	TimeoutFactor float64
	// TimeoutSlack is a constant cycle allowance added on top (covers
	// correction slow paths of very short benchmarks). 0 means
	// DefaultTimeoutSlack.
	TimeoutSlack uint64
	// Workers is the number of parallel experiment executors.
	// 0 means GOMAXPROCS.
	Workers int
	// Strategy selects the execution strategy. 0 means StrategySnapshot.
	Strategy Strategy

	// OnResult, when non-nil, receives every completed experiment in
	// completion order. It is invoked from a single collector goroutine,
	// so implementations (e.g. a checkpoint writer) need no locking.
	OnResult func(class int, o Outcome)
	// OnProgress, when non-nil, receives progress events: one initial,
	// throttled intermediate ones, one final. Same goroutine as OnResult.
	OnProgress func(Progress)
	// ProgressInterval throttles intermediate progress events. 0 means
	// DefaultProgressInterval; a negative value emits one event per
	// completed experiment (useful in tests).
	ProgressInterval time.Duration
	// Interrupt, when non-nil, stops the scan as soon as it is closed:
	// no new experiments start, in-flight ones finish and are recorded,
	// and the scan returns ErrInterrupted.
	Interrupt <-chan struct{}
}

// Defaults for Config.
const (
	DefaultTimeoutFactor    = 4.0
	DefaultTimeoutSlack     = 256
	DefaultProgressInterval = time.Second
)

func (c Config) withDefaults() Config {
	if c.TimeoutFactor == 0 {
		c.TimeoutFactor = DefaultTimeoutFactor
	}
	if c.TimeoutSlack == 0 {
		c.TimeoutSlack = DefaultTimeoutSlack
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Strategy == 0 {
		c.Strategy = StrategySnapshot
	}
	if c.ProgressInterval == 0 {
		c.ProgressInterval = DefaultProgressInterval
	}
	return c
}

func (c Config) validate() error {
	if c.TimeoutFactor < 1 {
		return fmt.Errorf("campaign: TimeoutFactor %g must be >= 1", c.TimeoutFactor)
	}
	if c.Workers < 1 {
		return fmt.Errorf("campaign: Workers %d must be >= 1", c.Workers)
	}
	if c.Strategy != StrategySnapshot && c.Strategy != StrategyRerun {
		return fmt.Errorf("campaign: unknown strategy %d", c.Strategy)
	}
	return nil
}

// timeoutBudget computes the per-experiment cycle budget.
func (c Config) timeoutBudget(goldenCycles uint64) uint64 {
	return uint64(c.TimeoutFactor*float64(goldenCycles)) + c.TimeoutSlack
}

// Prepare records the golden run of the target and builds its pruned
// main-memory fault space. maxGoldenCycles bounds the golden run itself
// (pass a generous value; the golden run must terminate).
func (t Target) Prepare(maxGoldenCycles uint64) (*trace.Golden, *pruning.FaultSpace, error) {
	return t.PrepareSpace(pruning.SpaceMemory, maxGoldenCycles)
}

// PrepareSpace is Prepare for an arbitrary fault-space kind.
func (t Target) PrepareSpace(kind pruning.SpaceKind, maxGoldenCycles uint64) (*trace.Golden, *pruning.FaultSpace, error) {
	golden, err := trace.Record(t.Name, t.Mach, t.Code, t.Image, maxGoldenCycles)
	if err != nil {
		return nil, nil, err
	}
	var fs *pruning.FaultSpace
	switch kind {
	case pruning.SpaceMemory:
		fs, err = pruning.Build(golden)
	case pruning.SpaceRegisters:
		fs, err = pruning.BuildRegisters(golden)
	default:
		return nil, nil, fmt.Errorf("campaign: unknown fault-space kind %d", kind)
	}
	if err != nil {
		return nil, nil, err
	}
	return golden, fs, nil
}

// newMachine builds a fresh reset-state machine for the target.
func (t Target) newMachine() (*machine.Machine, error) {
	return machine.New(t.Mach, t.Code, t.Image)
}
