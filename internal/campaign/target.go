package campaign

import (
	"fmt"
	"runtime"
	"time"

	"faultspace/internal/isa"
	"faultspace/internal/machine"
	"faultspace/internal/pruning"
	"faultspace/internal/telemetry"
	"faultspace/internal/trace"
)

// Target is a benchmark binary prepared for fault injection.
type Target struct {
	Name  string
	Code  []isa.Instruction
	Image []byte // initial RAM contents
	Mach  machine.Config
}

// Strategy selects how experiments re-reach the injection slot.
type Strategy uint8

// Experiment-execution strategies.
const (
	// StrategySnapshot advances a single pioneer machine through the golden
	// run and forks experiment machines at each injection slot. Each
	// experiment only executes the cycles after the injection. Default.
	StrategySnapshot Strategy = iota + 1
	// StrategyRerun re-executes each experiment from the reset state. This
	// is the naive mode, kept for validation and for the ablation benchmark.
	StrategyRerun
	// StrategyLadder captures delta snapshots ("rungs") of the golden run
	// every LadderInterval cycles, then serves each experiment from the
	// nearest rung at-or-below its injection slot: restore is a targeted
	// dirty-page copy and only the remaining cycle delta is re-executed.
	// Unlike StrategySnapshot it needs no feeder ordered by slot, so it is
	// the strategy of choice for cluster workers running arbitrary class
	// subsets (RunClasses).
	StrategyLadder
	// StrategyFork batches classes along ladder-rung boundaries in
	// injection-cycle order: each worker restores the batch's rung ONCE,
	// advances a cursor machine monotonically through the golden run, and
	// at each injection cycle forks a cheap dirty-page-delta child
	// (machine.Forker) to run only the faulty suffix — the golden prefix
	// between injections is simulated once per batch instead of once per
	// experiment (ladder replays rung→slot for every class). Fastest on
	// full scans and dense class subsets; see DESIGN.md §4f.
	StrategyFork
)

// String names the strategy as reports and run manifests spell it. The
// zero value reads as the default it resolves to.
func (s Strategy) String() string {
	switch s {
	case StrategyRerun:
		return "rerun"
	case StrategyLadder:
		return "ladder"
	case StrategyFork:
		return "fork"
	case StrategySnapshot, 0:
		return "snapshot"
	}
	return "unknown"
}

// Config parameterizes campaign execution.
type Config struct {
	// TimeoutFactor bounds experiment runtime: an experiment is declared a
	// Timeout after TimeoutFactor × golden-runtime + TimeoutSlack cycles.
	// 0 means DefaultTimeoutFactor.
	TimeoutFactor float64
	// TimeoutSlack is a constant cycle allowance added on top (covers
	// correction slow paths of very short benchmarks). 0 means
	// DefaultTimeoutSlack.
	TimeoutSlack uint64
	// Workers is the number of parallel experiment executors.
	// 0 means GOMAXPROCS.
	Workers int
	// Strategy selects the execution strategy. 0 means StrategySnapshot.
	Strategy Strategy
	// LadderInterval is the rung spacing in cycles for StrategyLadder
	// and StrategyFork (which batches work along the same rungs):
	// smaller intervals mean less delta re-execution per experiment but
	// more snapshot memory. 0 auto-tunes from the golden-trace length
	// (aiming at DefaultLadderRungs rungs, at least MinLadderInterval
	// cycles apart). With Memo on the same spacing also sets the memo
	// probe boundaries under every strategy; otherwise the other
	// strategies ignore it. Like Strategy, it is outcome-invariant and
	// deliberately not part of the campaign identity hash.
	LadderInterval uint64
	// Telemetry, when non-nil, receives scan metrics: the experiment
	// counter, per-outcome duration histograms and the strategy-specific
	// shortcut counters (see DESIGN.md §4d for the metric names). Like
	// Strategy and Workers it is outcome-invariant — telemetry observes a
	// campaign, never steers it — and is therefore excluded from the
	// campaign identity hash (invariant 10). nil disables all
	// instrumentation at zero cost.
	Telemetry *telemetry.Registry
	// Spans, when non-nil, receives phase spans of the scan (strategy
	// run, golden-prefix builds, fork batches) for the campaign timeline.
	// Spans are recorded at phase granularity — never per experiment —
	// and, like Telemetry, are purely observational: outcome-invariant
	// and excluded from the campaign identity hash (invariant 15). nil
	// disables span recording at zero cost (no clock reads, no allocs).
	Spans *telemetry.SpanRecorder
	// Predecode enables the machine's pre-decoded dispatch stream: the
	// program is lowered once per machine into a dense instruction stream
	// executed by a tight chunked loop (see machine.SetPredecode). The
	// fast path is exactly Step-equivalent — the predecode equivalence
	// and self-modify fuzz tests pin that down — so like Strategy it is
	// outcome-invariant and excluded from the campaign identity hash.
	Predecode bool
	// Memo enables cross-experiment outcome memoization: post-injection
	// machine states are hashed at rung-interval boundaries and "suffix
	// state → outcome remainder" entries are shared across all
	// experiments of the campaign (see memo.go). Outcome-invariant by
	// construction (invariant 11) and excluded from the identity hash.
	Memo bool
	// MemoCache, when non-nil, is the shared memoization cache to use
	// (implies Memo). Cluster workers pass one per campaign so entries
	// are shared across all leased work units; leaving it nil with Memo
	// set gives the scan a private per-call cache. The cache binds to the
	// first campaign identity and cycle budget it serves and rejects any
	// other — entries are only transferable between experiments with
	// identical machine semantics and budget.
	MemoCache *MemoCache
	// Objective, when non-nil, is the attacker-objective predicate
	// evaluated on every classified experiment (see objective.go): the
	// AttackFlag bit is set on outcomes that satisfy it. Unlike the
	// execution knobs above it CHANGES the recorded outcomes, so the
	// objective name is part of the campaign identity hash.
	Objective *Objective
	// Pool, when non-nil, recycles worker machines across scans instead
	// of allocating a fresh RAM image per worker per call. Cluster
	// workers use one pool per campaign so that every leased work unit
	// (one RunClasses call each) reuses the same machines. The pool must
	// have been created by NewMachinePool for this same target.
	Pool *MachinePool

	// OnResult, when non-nil, receives every completed experiment in
	// completion order. It is invoked from a single collector goroutine,
	// so implementations (e.g. a checkpoint writer) need no locking.
	OnResult func(class int, o Outcome)
	// OnProgress, when non-nil, receives progress events: one initial,
	// throttled intermediate ones, one final. Same goroutine as OnResult.
	OnProgress func(Progress)
	// ProgressInterval throttles intermediate progress events. 0 means
	// DefaultProgressInterval; a negative value emits one event per
	// completed experiment (useful in tests).
	ProgressInterval time.Duration
	// Interrupt, when non-nil, stops the scan as soon as it is closed:
	// no new experiments start, in-flight ones finish and are recorded,
	// and the scan returns ErrInterrupted.
	Interrupt <-chan struct{}
}

// Defaults for Config.
const (
	DefaultTimeoutFactor    = 4.0
	DefaultTimeoutSlack     = 256
	DefaultProgressInterval = time.Second

	// DefaultLadderRungs is the rung count the LadderInterval auto-tuner
	// aims for: interval = goldenCycles / DefaultLadderRungs. With
	// 256-byte pages and delta capture, 256 rungs keep snapshot memory
	// modest while bounding delta re-execution to ~0.4% of the golden
	// run per experiment.
	DefaultLadderRungs = 256
	// MinLadderInterval floors the auto-tuned rung spacing so very short
	// golden runs do not snapshot after every other instruction.
	MinLadderInterval = 16

	// DefaultForkRungs is the rung count the fork strategy's interval
	// auto-tuner aims for. Fork rungs are never restore sources for
	// experiments — the monotone cursor pays each rung restore once per
	// batch, not once per class — so they only serve as convergence
	// checkpoints and batch-carving anchors. Each checkpoint costs a
	// Run-call boundary plus a StateMatches compare per in-flight child,
	// while coarser spacing merely lets a reconverged child coast up to
	// one interval past its convergence point; the balance lands at far
	// fewer, far wider rungs than the ladder strategy wants.
	DefaultForkRungs = 4
)

func (c Config) withDefaults() Config {
	if c.TimeoutFactor == 0 {
		c.TimeoutFactor = DefaultTimeoutFactor
	}
	if c.TimeoutSlack == 0 {
		c.TimeoutSlack = DefaultTimeoutSlack
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Strategy == 0 {
		c.Strategy = StrategySnapshot
	}
	if c.ProgressInterval == 0 {
		c.ProgressInterval = DefaultProgressInterval
	}
	return c
}

func (c Config) validate() error {
	if c.TimeoutFactor < 1 {
		return fmt.Errorf("campaign: TimeoutFactor %g must be >= 1", c.TimeoutFactor)
	}
	if c.Workers < 1 {
		return fmt.Errorf("campaign: Workers %d must be >= 1", c.Workers)
	}
	switch c.Strategy {
	case StrategySnapshot, StrategyRerun, StrategyLadder, StrategyFork:
	default:
		return fmt.Errorf("campaign: unknown strategy %d", c.Strategy)
	}
	return nil
}

// memoEnabled reports whether outcome memoization is on: either the
// flag is set or the caller supplied a shared cache.
func (c Config) memoEnabled() bool {
	return c.Memo || c.MemoCache != nil
}

// ladderInterval returns the effective rung spacing for StrategyLadder:
// the explicit LadderInterval, or an interval auto-tuned from the
// golden-trace length.
func (c Config) ladderInterval(goldenCycles uint64) uint64 {
	if c.LadderInterval > 0 {
		return c.LadderInterval
	}
	iv := goldenCycles / DefaultLadderRungs
	if iv < MinLadderInterval {
		iv = MinLadderInterval
	}
	return iv
}

// forkInterval returns the effective rung spacing for StrategyFork: an
// explicit LadderInterval is honored verbatim, otherwise the auto-tuner
// aims at DefaultForkRungs rungs (see that constant for why fork wants
// much coarser rungs than ladder).
func (c Config) forkInterval(goldenCycles uint64) uint64 {
	if c.LadderInterval > 0 {
		return c.LadderInterval
	}
	iv := goldenCycles / DefaultForkRungs
	if iv < MinLadderInterval {
		iv = MinLadderInterval
	}
	return iv
}

// timeoutBudget computes the per-experiment cycle budget.
func (c Config) timeoutBudget(goldenCycles uint64) uint64 {
	return uint64(c.TimeoutFactor*float64(goldenCycles)) + c.TimeoutSlack
}

// Prepare records the golden run of the target and builds its pruned
// main-memory fault space. maxGoldenCycles bounds the golden run itself
// (pass a generous value; the golden run must terminate).
func (t Target) Prepare(maxGoldenCycles uint64) (*trace.Golden, *pruning.FaultSpace, error) {
	return t.PrepareSpace(pruning.SpaceMemory, maxGoldenCycles)
}

// PrepareSpace is Prepare for an arbitrary fault-space kind.
func (t Target) PrepareSpace(kind pruning.SpaceKind, maxGoldenCycles uint64) (*trace.Golden, *pruning.FaultSpace, error) {
	golden, err := trace.Record(t.Name, t.Mach, t.Code, t.Image, maxGoldenCycles)
	if err != nil {
		return nil, nil, err
	}
	var fs *pruning.FaultSpace
	switch kind {
	case pruning.SpaceMemory:
		fs, err = pruning.Build(golden)
	case pruning.SpaceRegisters:
		fs, err = pruning.BuildRegisters(golden)
	case pruning.SpaceSkip:
		fs, err = pruning.BuildSkip(golden, t.Code)
	case pruning.SpacePC:
		fs, err = pruning.BuildPC(golden, uint32(len(t.Code)))
	case pruning.SpaceBurst2, pruning.SpaceBurst4:
		fs, err = pruning.BuildBurst(golden, kind.BurstWidth())
	default:
		return nil, nil, fmt.Errorf("campaign: unknown fault-space kind %d", kind)
	}
	if err != nil {
		return nil, nil, err
	}
	return golden, fs, nil
}

// newMachine builds a fresh reset-state machine for the target.
func (t Target) newMachine() (*machine.Machine, error) {
	return machine.New(t.Mach, t.Code, t.Image)
}
