package campaign

import (
	"errors"
	"math/rand"
	"testing"

	"faultspace/internal/isa"
	"faultspace/internal/machine"
	"faultspace/internal/telemetry"
)

// edgeTarget is built so its fault space exercises every ladder corner:
// the very first instruction reads preloaded RAM (classes at slot 1,
// i.e. injection at cycle 0), and reads continue until right before the
// halt (a class at the maximal slot).
func edgeTarget() Target {
	serial := int32(machine.PortSerial)
	prog := []isa.Instruction{
		{Op: isa.OpLb, Rd: 1, Rs: 0, Imm: 0},       // cycle 1: use of image byte 0
		{Op: isa.OpSb, Rt: 1, Rs: 0, Imm: serial},  // cycle 2
		{Op: isa.OpSbi, Rs: 0, Imm: 1, Imm2: 0x5a}, // cycle 3: def byte 1
		{Op: isa.OpNop},                           // cycle 4
		{Op: isa.OpNop},                           // cycle 5
		{Op: isa.OpLb, Rd: 2, Rs: 0, Imm: 1},      // cycle 6: use at a rung boundary (interval 5)
		{Op: isa.OpSb, Rt: 2, Rs: 0, Imm: serial}, // cycle 7
		{Op: isa.OpNop},                           // cycle 8
		{Op: isa.OpLb, Rd: 3, Rs: 0, Imm: 0},      // cycle 9: use right before halt
		{Op: isa.OpSb, Rt: 3, Rs: 0, Imm: serial}, // cycle 10
		{Op: isa.OpHalt},                          // cycle 11
	}
	return Target{
		Name:  "edge",
		Code:  prog,
		Image: []byte{0xa5, 0, 0, 0},
		Mach:  machine.Config{RAMSize: 4},
	}
}

// TestLadderEdgeCases pins the ladder corner cases against rerun:
// injection at cycle 0 (slot 1, restored from rung 0), injection exactly
// at a rung boundary (zero delta cycles), injection at the maximal slot,
// all on a fixed program where the rung positions are known.
func TestLadderEdgeCases(t *testing.T) {
	target := edgeTarget()
	golden, fs, err := target.Prepare(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Classes) == 0 {
		t.Fatal("edge target has an empty fault space")
	}
	const interval = 5 // rungs at cycles 0, 5, 10 for the 11-cycle golden run

	var maxSlot uint64
	haveSlot1, haveBoundary := false, false
	for _, c := range fs.Classes {
		slot := c.Slot()
		if slot == 1 {
			haveSlot1 = true // restore target cycle 0: rung 0, the reset state
		}
		if slot-1 == interval {
			haveBoundary = true // restore target cycle 5: exactly rung 1, zero delta
		}
		if slot > maxSlot {
			maxSlot = slot
		}
	}
	if !haveSlot1 {
		t.Error("want a class at slot 1 (injection at cycle 0)")
	}
	if !haveBoundary {
		t.Errorf("want a class at slot %d (injection exactly at a rung boundary)", interval+1)
	}
	if maxSlot != golden.Cycles-2 {
		// The final instructions are `sb` (writes only) and `halt`, so the
		// last read — the maximal possible slot — is two cycles earlier.
		t.Errorf("max slot = %d, want %d", maxSlot, golden.Cycles-2)
	}

	rerun, err := FullScan(target, golden, fs, Config{Strategy: StrategyRerun})
	if err != nil {
		t.Fatal(err)
	}
	ladder, err := FullScan(target, golden, fs, Config{Strategy: StrategyLadder, LadderInterval: interval})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rerun.Outcomes {
		if ladder.Outcomes[i] != rerun.Outcomes[i] {
			t.Errorf("class %d (slot %d): ladder=%v rerun=%v",
				i, fs.Classes[i].Slot(), ladder.Outcomes[i], rerun.Outcomes[i])
		}
	}
}

// TestLadderConvergenceComposition pins the reconvergence fast path: a
// fault that corrupts the serial output and then vanishes from the
// machine state (its RAM byte redefined, its register overwritten)
// makes the state match a golden rung, so the ladder composes the
// outcome from the golden trace instead of simulating the remainder.
// The composed outcome must preserve the divergence that already
// escaped (SDC) and the masking that already happened (No Effect).
func TestLadderConvergenceComposition(t *testing.T) {
	serial := int32(machine.PortSerial)
	prog := []isa.Instruction{
		{Op: isa.OpLb, Rd: 1, Rs: 0, Imm: 0},       // cycle 1: use of byte 0 — faults here escape to serial
		{Op: isa.OpSb, Rt: 1, Rs: 0, Imm: serial},  // cycle 2: emit it
		{Op: isa.OpLb, Rd: 2, Rs: 0, Imm: 1},       // cycle 3: use of byte 1 — faults here get masked
		{Op: isa.OpAndi, Rd: 2, Rs: 2, Imm: 0},     // cycle 4: mask to zero
		{Op: isa.OpSb, Rt: 2, Rs: 0, Imm: serial},  // cycle 5: emit the masked zero
		{Op: isa.OpSbi, Rs: 0, Imm: 0, Imm2: 0x3c}, // cycle 6: redefine byte 0 — RAM reconverges
		{Op: isa.OpSbi, Rs: 0, Imm: 1, Imm2: 0x2a}, // cycle 7: redefine byte 1
		{Op: isa.OpLi, Rd: 1, Imm: 0},              // cycle 8: redefine r1 — registers reconverge
		{Op: isa.OpLi, Rd: 2, Imm: 0},              // cycle 9
		{Op: isa.OpNop},                            // cycles 10..12: cross a rung boundary converged
		{Op: isa.OpNop},                            //
		{Op: isa.OpNop},                            //
		{Op: isa.OpLb, Rd: 3, Rs: 0, Imm: 0},       // cycle 13: late use keeps the space interesting
		{Op: isa.OpSb, Rt: 3, Rs: 0, Imm: serial},  // cycle 14
		{Op: isa.OpHalt},                           // cycle 15
	}
	target := Target{
		Name:  "reconverge",
		Code:  prog,
		Image: []byte{0xa5, 0x11, 0, 0},
		Mach:  machine.Config{RAMSize: 4},
	}
	golden, fs, err := target.Prepare(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	rerun, err := FullScan(target, golden, fs, Config{Strategy: StrategyRerun})
	if err != nil {
		t.Fatal(err)
	}
	// Interval 4 puts rungs at cycles 4, 8, 12: faults at slots 1 and 3
	// reconverge by cycle 9 and must take the composition fast path at
	// the cycle-12 rung.
	ladder, err := FullScan(target, golden, fs, Config{Strategy: StrategyLadder, LadderInterval: 4})
	if err != nil {
		t.Fatal(err)
	}
	sdc, masked := 0, 0
	for i, c := range fs.Classes {
		if ladder.Outcomes[i] != rerun.Outcomes[i] {
			t.Errorf("class %d (slot %d): ladder=%v rerun=%v",
				i, c.Slot(), ladder.Outcomes[i], rerun.Outcomes[i])
		}
		switch c.Slot() {
		case 1: // corrupted byte escaped to serial before reconvergence
			if ladder.Outcomes[i] != OutcomeSDC {
				t.Errorf("slot-1 class %d: %v, want SDC", i, ladder.Outcomes[i])
			}
			sdc++
		case 3: // corruption masked before reconvergence
			if ladder.Outcomes[i] != OutcomeNoEffect {
				t.Errorf("slot-3 class %d: %v, want No Effect", i, ladder.Outcomes[i])
			}
			masked++
		}
	}
	if sdc == 0 || masked == 0 {
		t.Fatalf("fault space lacks the pinned classes (sdc=%d, masked=%d)", sdc, masked)
	}
}

// TestLadderShortProgram covers a golden run shorter than one rung
// interval: the ladder degenerates to the single reset rung and must
// still classify identically to rerun.
func TestLadderShortProgram(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	if golden.Cycles >= 100 {
		t.Fatalf("hi golden run unexpectedly long: %d cycles", golden.Cycles)
	}
	rerun, err := FullScan(target, golden, fs, Config{Strategy: StrategyRerun})
	if err != nil {
		t.Fatal(err)
	}
	ladder, err := FullScan(target, golden, fs, Config{Strategy: StrategyLadder, LadderInterval: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rerun.Outcomes {
		if ladder.Outcomes[i] != rerun.Outcomes[i] {
			t.Errorf("class %d: ladder=%v rerun=%v", i, ladder.Outcomes[i], rerun.Outcomes[i])
		}
	}
}

// TestLadderMatchesRerunRandomPrograms is the randomized counterpart to
// the fixed edge cases, across rung intervals from 1 to beyond the
// golden runtime.
func TestLadderMatchesRerunRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		target := randomTarget(rng, 8+rng.Intn(12))
		golden, fs, err := target.Prepare(1 << 12)
		if err != nil {
			t.Fatalf("trial %d: prepare: %v", trial, err)
		}
		rerun, err := FullScan(target, golden, fs, Config{Strategy: StrategyRerun})
		if err != nil {
			t.Fatal(err)
		}
		interval := uint64(1 + rng.Intn(int(golden.Cycles)+4))
		ladder, err := FullScan(target, golden, fs, Config{Strategy: StrategyLadder, LadderInterval: interval})
		if err != nil {
			t.Fatal(err)
		}
		for i := range rerun.Outcomes {
			if ladder.Outcomes[i] != rerun.Outcomes[i] {
				t.Fatalf("trial %d interval %d class %d: ladder=%v rerun=%v",
					trial, interval, i, ladder.Outcomes[i], rerun.Outcomes[i])
			}
		}
	}
}

func TestLadderIntervalAutoTune(t *testing.T) {
	cases := []struct {
		explicit uint64
		cycles   uint64
		want     uint64
	}{
		{explicit: 7, cycles: 1 << 20, want: 7},           // explicit wins
		{explicit: 0, cycles: 8, want: MinLadderInterval}, // short run floors
		{explicit: 0, cycles: 256 * 64, want: 64},         // 256 rungs target
		{explicit: 0, cycles: 256 * 1000, want: 1000},     //
		{explicit: 0, cycles: 0, want: MinLadderInterval}, // degenerate
	}
	for _, c := range cases {
		cfg := Config{LadderInterval: c.explicit}
		if got := cfg.ladderInterval(c.cycles); got != c.want {
			t.Errorf("ladderInterval(explicit=%d, cycles=%d) = %d, want %d",
				c.explicit, c.cycles, got, c.want)
		}
	}
}

func TestLadderInterrupt(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	intCh := make(chan struct{})
	close(intCh)
	_, err := FullScan(target, golden, fs, Config{Strategy: StrategyLadder, Interrupt: intCh})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}

// TestMachinePoolReuse checks the pool contract: recycled machines come
// back in the reset state, and scans drawing from a pool are outcome-
// identical to scans allocating fresh machines.
func TestMachinePoolReuse(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	pool := NewMachinePool(target)

	m1, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	m1.Run(5) // dirty it
	if m1.Cycles() == 0 {
		t.Fatal("setup: machine did not run")
	}
	pool.Put(m1)
	m2, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m1 {
		t.Error("pool did not recycle the machine")
	}
	if m2.Cycles() != 0 || m2.Status() != machine.StatusRunning || len(m2.Serial()) != 0 {
		t.Error("recycled machine is not in the reset state")
	}
	pool.Put(m2)

	fresh, err := FullScan(target, golden, fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{StrategySnapshot, StrategyRerun, StrategyLadder} {
		// Two scans per strategy: the second definitely runs on recycled
		// machines dirtied by the first.
		for round := 0; round < 2; round++ {
			pooled, err := FullScan(target, golden, fs, Config{Strategy: strat, Pool: pool})
			if err != nil {
				t.Fatal(err)
			}
			for i := range fresh.Outcomes {
				if pooled.Outcomes[i] != fresh.Outcomes[i] {
					t.Fatalf("strategy %d round %d class %d: pooled=%v fresh=%v",
						strat, round, i, pooled.Outcomes[i], fresh.Outcomes[i])
				}
			}
		}
	}
}

// TestMachinePoolCounters: an instrumented pool accounts every Get as
// either a reuse or a fresh allocation.
func TestMachinePoolCounters(t *testing.T) {
	target := hiTarget(t)
	pool := NewMachinePool(target)
	reg := telemetry.New()
	pool.Instrument(reg)
	m1, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(m1)
	pool.Put(m2)
	if _, err := pool.Get(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("pool.alloc").Value(); got != 2 {
		t.Errorf("pool.alloc = %d, want 2", got)
	}
	if got := reg.Counter("pool.reuse").Value(); got != 1 {
		t.Errorf("pool.reuse = %d, want 1", got)
	}
	// Instrument with a nil registry detaches cleanly.
	pool.Instrument(nil)
	if _, err := pool.Get(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("pool.reuse").Value(); got != 1 {
		t.Errorf("detached pool still counted: reuse = %d, want 1", got)
	}
}

func TestMachinePoolWrongTarget(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	other := edgeTarget()
	pool := NewMachinePool(other)
	if _, err := FullScan(target, golden, fs, Config{Pool: pool}); err == nil {
		t.Fatal("scan with a foreign pool must be rejected")
	}
}

// TestRunClassesLadderWithPool mirrors the cluster-worker usage: many
// RunClasses calls on arbitrary class subsets, one shared pool, ladder
// strategy — together they must reproduce the full scan.
func TestRunClassesLadderWithPool(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	full, err := FullScan(target, golden, fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewMachinePool(target)
	cfg := Config{Strategy: StrategyLadder, LadderInterval: 3, Pool: pool, Workers: 2}
	got := make(map[int]Outcome)
	// Deliberately unordered subsets of mixed size.
	units := [][]int{{5, 1}, {0, 2, 9, 3}, {4}, {6, 7, 8, 10, 11, 12, 13, 14, 15}}
	for _, unit := range units {
		res, err := RunClasses(target, golden, fs, cfg, unit)
		if err != nil {
			t.Fatal(err)
		}
		for ci, o := range res {
			got[ci] = o
		}
	}
	if len(got) != len(full.Outcomes) {
		t.Fatalf("units covered %d classes, want %d", len(got), len(full.Outcomes))
	}
	for ci, o := range got {
		if o != full.Outcomes[ci] {
			t.Errorf("class %d: units=%v full=%v", ci, o, full.Outcomes[ci])
		}
	}
}
