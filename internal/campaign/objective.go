package campaign

import (
	"fmt"
	"sort"

	"faultspace/internal/machine"
	"faultspace/internal/trace"
)

// Attacker objectives reclassify experiment outcomes along a second,
// security-oriented axis: besides the paper's benign/failure taxonomy,
// each experiment is judged attack-success or not against a named
// predicate ("did the fault bypass the hardened check?"). The verdict is
// carried as the AttackFlag bit on the Outcome itself, so it flows
// through checkpoints, the cluster wire protocol and result archives
// without any format change.
//
// Soundness contract: scan strategies classify one representative
// experiment per equivalence class. Memory/register/burst classes are
// state-equivalent at their use point, but PC-corruption classes group
// runs that are only OUTCOME-equivalent (they all fault straight into
// ExcBadPC with different serial prefixes). Objective predicates are
// therefore evaluated on observables that are provably equal across all
// members of any class: for non-halted runs the ObjectiveObs carries
// only (Status, Exc, Base) — serial length and counters are zeroed —
// and for halted runs (which only occur in state-equivalent classes)
// the full final observables are provided. The differential oracle
// harness (internal/experiments) cross-checks this empirically.

// ObjectiveObs are the observables an attacker-objective predicate may
// inspect for one finished experiment.
type ObjectiveObs struct {
	// Status and Exc describe how the run terminated (StatusRunning
	// means the cycle budget was exhausted: a Timeout).
	Status machine.Status
	Exc    machine.Exception
	// Base is the paper-taxonomy outcome the run classified to.
	Base Outcome
	// SerialLen, Detects and Corrects are the run's final observable
	// output; populated only for normally-halted runs (zero otherwise,
	// see the soundness contract above).
	SerialLen int
	Detects   uint64
	Corrects  uint64
	// Golden is the fault-free reference run.
	Golden *trace.Golden
}

// Objective is a named attacker-success predicate.
type Objective struct {
	// Name identifies the objective in the registry, the campaign
	// identity hash and the wire protocol.
	Name string
	// Description is a one-line human-readable summary for reports.
	Description string
	// Success judges one finished experiment.
	Success func(ObjectiveObs) bool
}

// apply evaluates the objective (nil = no objective) on a classified run
// and returns the outcome with the AttackFlag set on success. serialLen,
// detects and corrects must be the run's final observables; they are
// masked for non-halted runs per the soundness contract.
func (obj *Objective) apply(base Outcome, status machine.Status, exc machine.Exception, serialLen int, detects, corrects uint64, golden *trace.Golden) Outcome {
	if obj == nil {
		return base
	}
	obs := ObjectiveObs{Status: status, Exc: exc, Base: base, Golden: golden}
	if status == machine.StatusHalted {
		obs.SerialLen = serialLen
		obs.Detects = detects
		obs.Corrects = corrects
	}
	if obj.Success(obs) {
		return base | AttackFlag
	}
	return base
}

// Built-in objectives. The registry is fixed at init; campaigns refer to
// objectives by name so a spec shipped to a fleet worker resolves to the
// exact same predicate.
var objectives = map[string]*Objective{
	"bypass": {
		Name:        "bypass",
		Description: "run completed with corrupted output and no fault-tolerance mechanism noticed (hardened check bypassed)",
		Success: func(o ObjectiveObs) bool {
			return o.Status == machine.StatusHalted && o.Base == OutcomeSDC &&
				o.Detects <= o.Golden.Detects && o.Corrects <= o.Golden.Corrects
		},
	},
	"corrupt": {
		Name:        "corrupt",
		Description: "silent data corruption of the observable output",
		Success: func(o ObjectiveObs) bool {
			return o.Base == OutcomeSDC
		},
	},
	"dos": {
		Name:        "dos",
		Description: "denial of service: the run never delivered the golden output",
		Success: func(o ObjectiveObs) bool {
			switch o.Base {
			case OutcomeTimeout, OutcomeCPUException, OutcomeIllegalInstruction,
				OutcomeDetectedUnrecoverable, OutcomePrematureHalt:
				return true
			}
			return false
		},
	},
}

// ObjectiveByName resolves a registered objective. The empty name means
// "no objective" and resolves to nil.
func ObjectiveByName(name string) (*Objective, error) {
	if name == "" {
		return nil, nil
	}
	obj, ok := objectives[name]
	if !ok {
		return nil, fmt.Errorf("campaign: unknown objective %q (have %v)", name, ObjectiveNames())
	}
	return obj, nil
}

// ObjectiveNames lists the registered objective names, sorted.
func ObjectiveNames() []string {
	names := make([]string, 0, len(objectives))
	for n := range objectives {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
