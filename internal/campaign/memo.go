package campaign

import (
	"fmt"
	"hash/maphash"
	"sync"

	"faultspace/internal/machine"
	"faultspace/internal/trace"
)

// Cross-experiment outcome memoization.
//
// The ladder strategy already fast-forwards experiments whose state
// rejoins the GOLDEN run at a rung boundary (Ladder.StateMatches). This
// file generalizes that shortcut across experiments: many faulted runs
// converge onto a common continuation that is NOT the golden one — e.g.
// a corrupted value funneling into the same error-handling path — and
// faults in dead bits converge onto the golden state itself, which the
// snapshot and rerun strategies cannot exploit at all without this.
//
// The machine is deterministic, so a running machine's future depends
// only on its behavior-relevant state (machine.HashExecState) and its
// remaining cycle budget. All experiments of one campaign share one
// absolute budget, so keying entries by (boundary cycle, state hash)
// makes "the rest of this run" a pure function of the key. What the
// rest of the run contributes to classification is its outcome-relevant
// suffix: final status and exception, the serial bytes emitted after
// the boundary, and the detect/correct deltas — exactly the quantities
// StateMatches excludes from the state because the MMIO ports are
// write-only (they can never steer execution). An experiment that
// reaches a memoized state therefore composes its outcome as
// prefix-so-far + cached suffix, skipping the simulation; the result is
// bit-identical to running it out (invariant 11), which the equivalence
// matrix and the memo oracle test enforce.
//
// When does memoization pay? Each probe hashes the full machine state,
// so its cost scales with RAMSize, while a hit can never save more than
// the experiment's remaining cycle budget. On the bundled fav32
// benchmarks every +memo row of BENCH_scan.json is SLOWER than the same
// configuration without it (e.g. bin_sem2 snapshot+pre ~32ms → ~60ms):
// the targets are small, most faulted runs terminate or reconverge
// within a few hundred cycles, and under the ladder/fork strategies the
// golden StateMatches fast path already captures the bulk of the
// funneling, leaving the cache only the rarer non-golden continuations.
// Memoization earns its keep on campaigns with LONG post-injection
// tails that repeatedly funnel into few continuations — fault-tolerant
// targets whose detectors route most faults into one recovery path, or
// cluster campaigns where one shared cache amortizes across many units.
// The admission gate below (memoHashBytesPerCycle) bounds the downside
// on everything else by refusing probes that provably cannot pay off.

// Memo tuning knobs.
const (
	// memoMaxProbes caps cache probes (and populated entries) per
	// experiment: each probe hashes the full machine state, so unbounded
	// probing could cost more than the simulation it avoids. Runs that
	// terminate quickly probe little; long divergent runs probe up to
	// this many boundaries and then run out their budget normally.
	memoMaxProbes = 8
	// memoMaxEntries caps the cache size; once full, lookups continue
	// but no new entries are stored.
	memoMaxEntries = 1 << 20

	// memoHashBytesPerCycle calibrates the admission gate: hashing this
	// many state bytes is assumed to cost about as much as simulating one
	// cycle. A probe runs two maphash passes over the full ~(96+RAMSize)
	// byte state, so its cost in simulated-cycle equivalents is
	// 2×(96+RAMSize)/memoHashBytesPerCycle — and a hit can never save
	// more than the experiment's remaining cycle budget. The constant is
	// deliberately an over-estimate of maphash throughput (an
	// under-estimate of probe cost), so the gate only skips probes that
	// cannot pay off even under optimistic assumptions; everything else
	// still reaches the cache and outcome bytes never depend on it.
	memoHashBytesPerCycle = 16
)

// memoKey identifies a post-injection machine state at an experiment
// boundary: the retired-cycle count plus a 128-bit state hash (two
// independently seeded maphash passes — wide enough that a colliding
// pair of distinct states is, for campaign-sized state counts,
// overwhelmingly improbable).
type memoKey struct {
	cycle  uint64
	h1, h2 uint64
}

// memoEntry is the memoized remainder of a run from a keyed state:
// final status/exception plus the observable output emitted after the
// boundary. serial is only populated for halted runs — the other
// terminal classifications never read it.
type memoEntry struct {
	status   machine.Status
	exc      machine.Exception
	serial   []byte // suffix emitted after the boundary (halted runs)
	detects  uint64 // counter deltas after the boundary
	corrects uint64
}

// MemoCache memoizes experiment remainders across one campaign. It is
// safe for concurrent use by any number of scan workers and may be
// shared across successive scans — cluster workers share one per
// campaign over all leased units — but never across campaigns: bind()
// pins the first campaign identity and cycle budget it serves and
// rejects mismatches, because entries are only transferable between
// experiments with identical machine semantics and budget.
type MemoCache struct {
	seed1, seed2 maphash.Seed

	mu      sync.RWMutex
	entries map[memoKey]memoEntry
	bound   bool
	id      [32]byte
	budget  uint64
}

// NewMemoCache creates an empty memo cache with fresh hash seeds.
func NewMemoCache() *MemoCache {
	return &MemoCache{
		seed1:   maphash.MakeSeed(),
		seed2:   maphash.MakeSeed(),
		entries: make(map[memoKey]memoEntry),
	}
}

// Len returns the number of memoized entries.
func (c *MemoCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// bind pins the cache to a campaign identity and cycle budget on first
// use and rejects any later mismatch.
func (c *MemoCache) bind(id [32]byte, budget uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.bound {
		c.bound, c.id, c.budget = true, id, budget
		return nil
	}
	if c.id != id || c.budget != budget {
		return fmt.Errorf("campaign: memo cache already bound to a different campaign or budget")
	}
	return nil
}

func (c *MemoCache) lookup(k memoKey) (memoEntry, bool) {
	c.mu.RLock()
	e, ok := c.entries[k]
	c.mu.RUnlock()
	return e, ok
}

func (c *MemoCache) insert(k memoKey, e memoEntry) {
	c.mu.Lock()
	if len(c.entries) < memoMaxEntries {
		if _, ok := c.entries[k]; !ok {
			c.entries[k] = e
		}
	}
	c.mu.Unlock()
}

// memoMark records one cache miss along an experiment: the key plus the
// observable-output position at that boundary, so populate can later
// compute the suffix the run produced after it.
type memoMark struct {
	key       memoKey
	serialLen int
	detects   uint64
	corrects  uint64
}

// memoRun is one worker's per-experiment memoization driver. Not safe
// for concurrent use; create one per scan worker (the cache behind it
// is shared and concurrency-safe).
type memoRun struct {
	cache  *MemoCache
	h1, h2 maphash.Hash
	marks  []memoMark
	st     *scanTel
	// breakEven is the admission-gate threshold in cycles, computed
	// lazily from the first probed machine's state size (0 = not yet).
	breakEven uint64
}

// breakEvenCycles returns the probe cost in simulated-cycle equivalents
// (see memoHashBytesPerCycle): probing a boundary with fewer remaining
// budget cycles than this is a guaranteed net loss.
func (mr *memoRun) breakEvenCycles(m *machine.Machine) uint64 {
	if mr.breakEven == 0 {
		mr.breakEven = 2 * uint64(96+m.RAMSize()) / memoHashBytesPerCycle
	}
	return mr.breakEven
}

// gated accounts one probe skipped by the admission gate.
func (mr *memoRun) gated() {
	if mr.st != nil {
		mr.st.memoGated.Inc()
	}
}

func newMemoRun(cache *MemoCache, st *scanTel) *memoRun {
	mr := &memoRun{cache: cache, st: st, marks: make([]memoMark, 0, memoMaxProbes)}
	mr.h1.SetSeed(cache.seed1)
	mr.h2.SetSeed(cache.seed2)
	return mr
}

// reset discards the marks of the previous experiment.
func (mr *memoRun) reset() { mr.marks = mr.marks[:0] }

// exhausted reports whether this experiment used up its probe budget.
func (mr *memoRun) exhausted() bool { return len(mr.marks) >= memoMaxProbes }

// probe hashes the running machine's state and looks it up. On a hit it
// returns the entry; on a miss it records a mark so populate can fill
// the entry once the run's remainder is known.
func (mr *memoRun) probe(m *machine.Machine) (memoEntry, bool) {
	mr.h1.Reset()
	m.HashExecState(&mr.h1)
	mr.h2.Reset()
	m.HashExecState(&mr.h2)
	key := memoKey{cycle: m.Cycles(), h1: mr.h1.Sum64(), h2: mr.h2.Sum64()}
	if e, ok := mr.cache.lookup(key); ok {
		if mr.st != nil {
			mr.st.memoHits.Inc()
		}
		return e, true
	}
	if mr.st != nil {
		mr.st.memoMisses.Inc()
	}
	mr.marks = append(mr.marks, memoMark{
		key:       key,
		serialLen: m.SerialLen(),
		detects:   m.DetectCount(),
		corrects:  m.CorrectCount(),
	})
	return memoEntry{}, false
}

// populate stores one entry per recorded mark from the machine's final
// state: the run ended naturally (halt, exception, abort) or is settled
// as a Timeout (still running at the budget, or loop-proven — both
// classify identically from any earlier boundary, because the budget is
// campaign-global).
func (mr *memoRun) populate(m *machine.Machine) {
	status, exc := m.Status(), m.Exception()
	det, cor := m.DetectCount(), m.CorrectCount()
	for _, mk := range mr.marks {
		e := memoEntry{
			status:   status,
			exc:      exc,
			detects:  det - mk.detects,
			corrects: cor - mk.corrects,
		}
		if status == machine.StatusHalted {
			e.serial = m.AppendSerialSuffix(nil, mk.serialLen)
		}
		mr.cache.insert(mk.key, e)
	}
	mr.marks = mr.marks[:0]
}

// populateComposed stores entries for runs whose remainder was itself
// composed rather than simulated — a memo hit at a later boundary, or
// golden reconvergence. The final observables are the machine's current
// values plus the composed tail (tailSerial appended after the
// machine's current serial, tailDet/tailCor added to its counters).
func (mr *memoRun) populateComposed(m *machine.Machine, status machine.Status, exc machine.Exception, tailSerial []byte, tailDet, tailCor uint64) {
	det := m.DetectCount() + tailDet
	cor := m.CorrectCount() + tailCor
	for _, mk := range mr.marks {
		e := memoEntry{
			status:   status,
			exc:      exc,
			detects:  det - mk.detects,
			corrects: cor - mk.corrects,
		}
		if status == machine.StatusHalted {
			e.serial = m.AppendSerialSuffix(nil, mk.serialLen)
			e.serial = append(e.serial, tailSerial...)
		}
		mr.cache.insert(mk.key, e)
	}
	mr.marks = mr.marks[:0]
}

// memoTail drives an injected experiment to its outcome under the
// snapshot and rerun strategies with memoization on: advance boundary
// by boundary (the same spacing the ladder uses), probing the cache at
// each; a hit composes the outcome from the cached remainder, a natural
// finish classifies normally and back-fills entries for every miss.
// Disabled memoization (mr == nil) takes the one-call fast path — the
// exact pre-memo code — so the feature costs nothing when off.
func memoTail(m *machine.Machine, golden *trace.Golden, budget, interval uint64, obj *Objective, mr *memoRun) Outcome {
	if mr == nil {
		m.Run(budget)
		return classify(m, golden, obj)
	}
	mr.reset()
	for m.Status() == machine.StatusRunning && !mr.exhausted() {
		next := (m.Cycles()/interval + 1) * interval
		// Probing beyond the golden run's end is not useful: the ladder
		// strategy stops probing there too, and most runs that survive
		// past it are headed for the budget.
		if next >= golden.Cycles || next >= budget {
			break
		}
		// Admission gate: a hit at this boundary can save at most the
		// remaining budget; once that drops below the probe's own cost,
		// probing is a guaranteed loss — and every later boundary is
		// closer to the budget still, so stop probing outright.
		if budget-next < mr.breakEvenCycles(m) {
			mr.gated()
			break
		}
		if m.Run(next) != machine.StatusRunning || m.Cycles() != next {
			break
		}
		if e, hit := mr.probe(m); hit {
			o := composeOutcome(obj, e.status, e.exc, m.SerialView(), e.serial,
				m.DetectCount()+e.detects, m.CorrectCount()+e.corrects, golden)
			mr.populateComposed(m, e.status, e.exc, e.serial, e.detects, e.corrects)
			return o
		}
	}
	m.Run(budget)
	o := classify(m, golden, obj)
	mr.populate(m)
	return o
}
