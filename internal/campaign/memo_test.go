package campaign

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"faultspace/internal/isa"
	"faultspace/internal/machine"
	"faultspace/internal/telemetry"
)

// convergentTarget is built so many distinct faults funnel into few
// continuations: every working value is redefined mid-run, so most
// faulted states collapse back onto the golden state (or one of a few
// corrupted-output variants of it) — exactly the sharing the memo cache
// exploits. The nop padding makes the run long enough for probe
// boundaries at small intervals.
func convergentTarget() Target {
	serial := int32(machine.PortSerial)
	prog := []isa.Instruction{
		{Op: isa.OpLb, Rd: 1, Rs: 0, Imm: 0},       // cycle 1: use — faults escape to serial
		{Op: isa.OpSb, Rt: 1, Rs: 0, Imm: serial},  // cycle 2
		{Op: isa.OpLb, Rd: 2, Rs: 0, Imm: 1},       // cycle 3: use — faults masked below
		{Op: isa.OpAndi, Rd: 2, Rs: 2, Imm: 0},     // cycle 4
		{Op: isa.OpSb, Rt: 2, Rs: 0, Imm: serial},  // cycle 5
		{Op: isa.OpSbi, Rs: 0, Imm: 0, Imm2: 0x3c}, // cycle 6: redefine byte 0
		{Op: isa.OpSbi, Rs: 0, Imm: 1, Imm2: 0x2a}, // cycle 7: redefine byte 1
		{Op: isa.OpLi, Rd: 1, Imm: 0},              // cycle 8: redefine registers
		{Op: isa.OpLi, Rd: 2, Imm: 0},              // cycle 9
		{Op: isa.OpNop},                            // cycles 10..13: converged stretch
		{Op: isa.OpNop},                            //
		{Op: isa.OpNop},                            //
		{Op: isa.OpNop},                            //
		{Op: isa.OpLb, Rd: 3, Rs: 0, Imm: 0},       // cycle 14: late use
		{Op: isa.OpSb, Rt: 3, Rs: 0, Imm: serial},  // cycle 15
		{Op: isa.OpHalt},                           // cycle 16
	}
	return Target{
		Name:  "convergent",
		Code:  prog,
		Image: []byte{0xa5, 0x11, 0, 0},
		Mach:  machine.Config{RAMSize: 4},
	}
}

// TestMemoOracleRandomCoordinates is the memoization analogue of
// TestRandomCoordinateOracle (invariant 11): outcomes produced by
// memoized scans — under every strategy, with predecode on — must equal
// a fresh, uncached, plain-decoder single experiment at random raw
// coordinates of the fault space.
func TestMemoOracleRandomCoordinates(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	targets := []Target{hiTarget(t), convergentTarget()}
	for trial := 0; trial < 6; trial++ {
		targets = append(targets, randomTarget(rng, 8+rng.Intn(12)))
	}
	strategies := []Strategy{StrategySnapshot, StrategyRerun, StrategyLadder, StrategyFork}
	for ti, target := range targets {
		golden, fs, err := target.Prepare(1 << 12)
		if err != nil {
			t.Fatalf("target %d: prepare: %v", ti, err)
		}
		strat := strategies[ti%len(strategies)]
		// Interval 1 maximizes probe boundaries (and therefore cache
		// traffic) on these short programs.
		res, err := FullScan(target, golden, fs, Config{
			Strategy: strat, LadderInterval: 1, Predecode: true, Memo: true,
		})
		if err != nil {
			t.Fatalf("target %d: memo scan: %v", ti, err)
		}
		cfg := Config{}.withDefaults()
		for n := 0; n < 40; n++ {
			slot := 1 + uint64(rng.Int63n(int64(fs.Cycles)))
			bit := uint64(rng.Int63n(int64(fs.Bits)))
			got, err := RunSingleSpace(target, golden, cfg, fs.Kind, slot, bit)
			if err != nil {
				t.Fatal(err)
			}
			ci, inClass, err := fs.Locate(slot, bit)
			if err != nil {
				t.Fatal(err)
			}
			want := OutcomeNoEffect
			if inClass {
				want = res.Outcomes[ci]
			}
			if got != want {
				t.Fatalf("target %d (%s, strategy %s) coordinate (%d, %d): fresh=%v memoized=%v (inClass=%v)",
					ti, target.Name, strat, slot, bit, got, want, inClass)
			}
		}
	}
}

// TestMemoCacheHits proves the cache actually fires — equivalence alone
// would hold trivially if no experiment ever hit an entry — and that a
// scan's telemetry accounts for it.
func TestMemoCacheHits(t *testing.T) {
	target := convergentTarget()
	golden, fs, err := target.Prepare(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{StrategySnapshot, StrategyRerun, StrategyLadder, StrategyFork} {
		reg := telemetry.New()
		cache := NewMemoCache()
		res, err := FullScan(target, golden, fs, Config{
			Strategy: strat, LadderInterval: 2, Workers: 1,
			MemoCache: cache, Telemetry: reg,
		})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if len(res.Outcomes) == 0 {
			t.Fatalf("%s: empty scan", strat)
		}
		snap := reg.Snapshot()
		hits, misses := snap.Counters["memo.hits"], snap.Counters["memo.misses"]
		if strat != StrategyLadder && strat != StrategyFork && hits == 0 {
			// Under the ladder and fork strategies golden-state convergence
			// is consumed by the StateMatches fast path first, so memo hits
			// may legitimately be rare there; snapshot and rerun have no
			// such competitor and must hit.
			t.Errorf("%s: memo.hits = 0 (misses %d, %d entries) — cache never fired",
				strat, misses, cache.Len())
		}
		if misses == 0 {
			t.Errorf("%s: memo.misses = 0 — probes never recorded marks", strat)
		}
		if cache.Len() == 0 {
			t.Errorf("%s: cache stayed empty", strat)
		}
		if snap.Gauges["memo.entries"] != int64(cache.Len()) {
			t.Errorf("%s: memo.entries gauge = %d, want %d",
				strat, snap.Gauges["memo.entries"], cache.Len())
		}
	}
}

// TestMemoAdmissionGate pins the probe admission gate: on a target whose
// cycle budget sits below the hash-cost break-even threshold (large RAM,
// tight TimeoutFactor), every probe is refused — the cache never fires
// and never fills — while the outcomes still match an unmemoized scan.
// Here breakEven = 2×(96+4096)/memoHashBytesPerCycle = 524 cycles but
// the budget is only golden (16) + slack (256) cycles.
func TestMemoAdmissionGate(t *testing.T) {
	target := convergentTarget()
	target.Name = "convergent-big"
	target.Mach.RAMSize = 4096
	golden, fs, err := target.Prepare(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := FullScan(target, golden, fs, Config{TimeoutFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{StrategySnapshot, StrategyRerun, StrategyLadder, StrategyFork} {
		reg := telemetry.New()
		cache := NewMemoCache()
		res, err := FullScan(target, golden, fs, Config{
			Strategy: strat, LadderInterval: 1, TimeoutFactor: 1,
			MemoCache: cache, Telemetry: reg,
		})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		for ci := range ref.Outcomes {
			if res.Outcomes[ci] != ref.Outcomes[ci] {
				t.Fatalf("%s: class %d: gated=%v plain=%v", strat, ci, res.Outcomes[ci], ref.Outcomes[ci])
			}
		}
		snap := reg.Snapshot()
		if h, m := snap.Counters["memo.hits"], snap.Counters["memo.misses"]; h+m != 0 {
			t.Errorf("%s: %d hits + %d misses — gate admitted unpayable probes", strat, h, m)
		}
		if snap.Counters["memo.gated"] == 0 {
			t.Errorf("%s: memo.gated = 0 — gate never exercised", strat)
		}
		if cache.Len() != 0 {
			t.Errorf("%s: cache holds %d entries, want 0", strat, cache.Len())
		}
	}
}

// TestMemoSharedCacheConcurrentScans exercises one MemoCache (and one
// MachinePool) shared across concurrent multi-worker RunClasses calls —
// the cluster worker's configuration — and requires the merged outcomes
// to match an uncached FullScan. Run under `go test -race ./...` (the
// `make check` race gate) this doubles as the data-race proof for the
// shared cache on the multi-worker scan path.
func TestMemoSharedCacheConcurrentScans(t *testing.T) {
	target := convergentTarget()
	golden, fs, err := target.Prepare(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := FullScan(target, golden, fs, Config{Strategy: StrategyRerun})
	if err != nil {
		t.Fatal(err)
	}

	cache := NewMemoCache()
	pool := NewMachinePool(target)
	cfg := Config{
		Strategy: StrategyLadder, LadderInterval: 2, Workers: 4,
		Predecode: true, MemoCache: cache, Pool: pool,
	}
	// Shard the classes into interleaved subsets and run them all
	// concurrently against the shared cache.
	const shards = 4
	parts := make([][]int, shards)
	for ci := range fs.Classes {
		parts[ci%shards] = append(parts[ci%shards], ci)
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		merged = make(map[int]Outcome, len(fs.Classes))
		firstE error
	)
	for _, part := range parts {
		wg.Add(1)
		go func(classes []int) {
			defer wg.Done()
			got, err := RunClasses(target, golden, fs, cfg, classes)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstE == nil {
					firstE = err
				}
				return
			}
			for ci, o := range got {
				merged[ci] = o
			}
		}(part)
	}
	wg.Wait()
	if firstE != nil {
		t.Fatal(firstE)
	}
	if len(merged) != len(fs.Classes) {
		t.Fatalf("merged %d outcomes, want %d", len(merged), len(fs.Classes))
	}
	for ci, o := range merged {
		if o != ref.Outcomes[ci] {
			t.Errorf("class %d: shared-cache=%v rerun=%v", ci, o, ref.Outcomes[ci])
		}
	}
}

// TestMemoCacheBindGuard pins the cross-campaign safety check: a cache
// bound to one campaign (identity + budget) must reject scans of a
// different target or a different timeout budget — entries are only
// transferable between experiments with identical semantics.
func TestMemoCacheBindGuard(t *testing.T) {
	target := convergentTarget()
	golden, fs, err := target.Prepare(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewMemoCache()
	if _, err := FullScan(target, golden, fs, Config{MemoCache: cache}); err != nil {
		t.Fatal(err)
	}
	// Same campaign again: entries survive and the scan still works.
	if _, err := FullScan(target, golden, fs, Config{MemoCache: cache}); err != nil {
		t.Fatalf("rebinding the same campaign must succeed: %v", err)
	}
	// Different budget → different continuation semantics → rejected.
	if _, err := FullScan(target, golden, fs, Config{MemoCache: cache, TimeoutFactor: 8}); err == nil {
		t.Error("cache bound to one budget accepted a different TimeoutFactor")
	}
	// Different target → different identity → rejected.
	other := hiTarget(t)
	g2, f2, err := other.Prepare(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FullScan(other, g2, f2, Config{MemoCache: cache}); err == nil {
		t.Error("cache bound to one campaign accepted a different target")
	} else if !strings.Contains(err.Error(), "memo cache") {
		t.Errorf("unexpected bind error: %v", err)
	}
}

// TestMemoDisabledAllocFree is the memo half of the zero-overhead
// invariant (the telemetry half lives in internal/telemetry): with
// memoization off (mr == nil), the per-experiment tail — run to
// termination plus classification — must not allocate at all.
func TestMemoDisabledAllocFree(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	m, err := target.newMachine()
	if err != nil {
		t.Fatal(err)
	}
	reset := m.Snapshot()
	budget := Config{}.withDefaults().timeoutBudget(golden.Cycles)
	slot, bit := fs.Classes[0].Slot(), fs.Classes[0].Bit
	run := func() {
		m.Restore(reset)
		if slot > 1 {
			m.Run(slot - 1)
		}
		if err := m.FlipBit(bit); err != nil {
			t.Fatal(err)
		}
		if o := memoTail(m, golden, budget, 0, nil, nil); int(o) >= NumOutcomes {
			t.Fatalf("bad outcome %d", o)
		}
	}
	run() // warm up lazily-allocated machine state
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Errorf("disabled-memo experiment tail allocates %.1f times per run, want 0", allocs)
	}
}
