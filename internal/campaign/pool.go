package campaign

import (
	"fmt"
	"sync"

	"faultspace/internal/machine"
	"faultspace/internal/telemetry"
)

// MachinePool recycles reset-state worker machines for one target.
//
// A full scan allocates one machine (one RAM image) per worker once,
// which is cheap. A cluster worker, however, calls RunClasses once per
// leased work unit — hundreds of times per campaign — and without a pool
// every call would re-allocate every worker machine. Setting Config.Pool
// makes all strategies draw their machines from the pool instead and
// return them when the scan finishes.
//
// Get always hands out machines in the reset state, so pooled and fresh
// machines are indistinguishable to the scan strategies. The pool is
// safe for concurrent use.
type MachinePool struct {
	target Target

	mu    sync.Mutex
	free  []*machine.Machine
	reset *machine.Snapshot
	// reuse/alloc count Get calls served from the pool vs. freshly
	// allocated; nil (no-op) until Instrument attaches a registry.
	reuse *telemetry.Counter
	alloc *telemetry.Counter
}

// NewMachinePool creates an empty pool for the target. Machines are
// allocated lazily by Get and kept indefinitely once Put back.
func NewMachinePool(t Target) *MachinePool {
	return &MachinePool{target: t}
}

// Instrument attaches pool-efficiency counters ("pool.reuse",
// "pool.alloc") from the registry. Safe with a nil registry (counters
// stay no-ops) and concurrently with Get/Put.
func (p *MachinePool) Instrument(r *telemetry.Registry) {
	p.mu.Lock()
	p.reuse = r.Counter("pool.reuse")
	p.alloc = r.Counter("pool.alloc")
	p.mu.Unlock()
}

// Get returns a reset-state machine for the pool's target, reusing a
// pooled one if available.
func (p *MachinePool) Get() (*machine.Machine, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free = p.free[:n-1]
		reset := p.reset
		p.reuse.Inc()
		p.mu.Unlock()
		// Recycled machines come back in an arbitrary post-experiment
		// state; rewind to reset so callers see a fresh machine. (The
		// full restore also marks all RAM pages dirty, keeping any
		// future ladder Cursor on this machine conservative-correct.)
		m.Restore(reset)
		return m, nil
	}
	alloc := p.alloc
	p.mu.Unlock()

	m, err := p.target.newMachine()
	if err != nil {
		return nil, err
	}
	alloc.Inc()
	p.mu.Lock()
	if p.reset == nil {
		// The reset state is deterministic, so the snapshot of any fresh
		// machine serves as the rewind point for all recycled ones.
		p.reset = m.Snapshot()
	}
	p.mu.Unlock()
	return m, nil
}

// Put returns a machine to the pool for reuse. The machine may be in any
// state; Get rewinds it. Put(nil) is a no-op.
func (p *MachinePool) Put(m *machine.Machine) {
	if m == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, m)
	p.mu.Unlock()
}

// matches reports whether the pool was built for the given target.
func (p *MachinePool) matches(t Target) bool {
	return p.target.Name == t.Name &&
		len(p.target.Code) == len(t.Code) &&
		len(p.target.Image) == len(t.Image) &&
		p.target.Mach == t.Mach
}

// acquireMachine hands the scan strategies their worker machines: from
// the configured pool if one is set, freshly allocated otherwise. The
// predecode setting is applied explicitly either way — pooled machines
// carry their previous scan's setting, so "off" must be set, not just
// assumed (SetPredecode is idempotent, so re-enabling is free).
func (c Config) acquireMachine(t Target) (*machine.Machine, error) {
	m, err := c.pooledMachine(t)
	if err != nil {
		return nil, err
	}
	m.SetPredecode(c.Predecode)
	return m, nil
}

func (c Config) pooledMachine(t Target) (*machine.Machine, error) {
	if c.Pool == nil {
		return t.newMachine()
	}
	if !c.Pool.matches(t) {
		return nil, fmt.Errorf("campaign: machine pool belongs to target %q, not %q",
			c.Pool.target.Name, t.Name)
	}
	return c.Pool.Get()
}

// releaseMachines returns scan machines to the configured pool, if any.
func (c Config) releaseMachines(ms []*machine.Machine) {
	if c.Pool == nil {
		return
	}
	for _, m := range ms {
		c.Pool.Put(m)
	}
}
