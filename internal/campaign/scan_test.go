package campaign

import (
	"math/rand"
	"testing"

	"faultspace/internal/asm"
	"faultspace/internal/isa"
	"faultspace/internal/machine"
	"faultspace/internal/pruning"
	"faultspace/internal/trace"
)

// assembleTarget builds a Target from assembly source.
func assembleTarget(t *testing.T, name, src string) Target {
	t.Helper()
	p, err := asm.Assemble(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return Target{
		Name:  p.Name,
		Code:  p.Code,
		Image: p.Image,
		Mach:  machine.Config{RAMSize: p.RAMSize},
	}
}

// hiTarget is the paper's "Hi" program (§IV-A), small enough to reason
// about exhaustively: w = 128, F = 48.
func hiTarget(t *testing.T) Target {
	t.Helper()
	return assembleTarget(t, "hi", `
        .ram    2
        .equ    SERIAL, 0x10000
        .text
        sbi     'H', 0(r0)
        nop
        sbi     'i', 1(r0)
        lb      r1, 0(r0)
        sb      r1, SERIAL(r0)
        lb      r2, 1(r0)
        sb      r2, SERIAL(r0)
        halt
`)
}

func prepare(t *testing.T, target Target) (*trace.Golden, *pruning.FaultSpace) {
	t.Helper()
	golden, fs, err := target.Prepare(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	return golden, fs
}

func TestFullScanHi(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	if golden.Cycles != 8 || fs.Size() != 128 {
		t.Fatalf("golden: cycles=%d w=%d, want 8/128", golden.Cycles, fs.Size())
	}
	res, err := FullScan(target, golden, fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FailureWeight(); got != 48 {
		t.Errorf("failure weight = %d, want 48", got)
	}
	if got := res.FailureClasses(); got != 16 {
		t.Errorf("failure classes = %d, want 16 (2 bytes x 8 bits)", got)
	}
	// All failures must be SDC: the corrupted letters still print.
	counts := res.ClassCounts()
	if counts[OutcomeSDC] != 16 {
		t.Errorf("SDC classes = %d, want 16 (%v)", counts[OutcomeSDC], counts)
	}
	full := res.FullSpaceCounts()
	var sum uint64
	for _, c := range full {
		sum += c
	}
	if sum != fs.Size() {
		t.Errorf("full-space counts sum to %d, want %d", sum, fs.Size())
	}
}

func TestScanStrategiesAgree(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	snap, err := FullScan(target, golden, fs, Config{Strategy: StrategySnapshot})
	if err != nil {
		t.Fatal(err)
	}
	rerun, err := FullScan(target, golden, fs, Config{Strategy: StrategyRerun})
	if err != nil {
		t.Fatal(err)
	}
	for i := range snap.Outcomes {
		if snap.Outcomes[i] != rerun.Outcomes[i] {
			t.Fatalf("class %d: snapshot=%v rerun=%v", i, snap.Outcomes[i], rerun.Outcomes[i])
		}
	}
}

func TestFullScanDeterminism(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	a, err := FullScan(target, golden, fs, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FullScan(target, golden, fs, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Outcomes {
		if a.Outcomes[i] != b.Outcomes[i] {
			t.Fatalf("class %d differs across worker counts", i)
		}
	}
}

// TestPrunedScanEqualsBruteForce is the def/use equivalence theorem as a
// property test: for random programs, running one experiment at EVERY raw
// (slot, bit) coordinate gives exactly the per-coordinate outcomes implied
// by the pruned scan (class outcome for members, No Effect for pruned
// coordinates).
func TestPrunedScanEqualsBruteForce(t *testing.T) {
	if testing.Short() {
		t.Skip("brute-force scan is slow")
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 12; trial++ {
		target := randomTarget(rng, 8+rng.Intn(8))
		golden, fs, err := target.Prepare(1 << 12)
		if err != nil {
			// Random programs occasionally fail the golden run (e.g. run
			// past ROM without halt is prevented by construction, so this
			// is unexpected).
			t.Fatalf("trial %d: prepare: %v", trial, err)
		}
		res, err := FullScan(target, golden, fs, Config{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{}.withDefaults()
		for slot := uint64(1); slot <= golden.Cycles; slot++ {
			for bit := uint64(0); bit < golden.RAMBits; bit++ {
				got, err := RunSingle(target, golden, cfg, slot, bit)
				if err != nil {
					t.Fatal(err)
				}
				ci, inClass, err := fs.Locate(slot, bit)
				if err != nil {
					t.Fatal(err)
				}
				want := OutcomeNoEffect
				if inClass {
					want = res.Outcomes[ci]
				}
				if got != want {
					t.Fatalf("trial %d: coordinate (%d, %d): brute=%v pruned=%v (inClass=%v)",
						trial, slot, bit, got, want, inClass)
				}
			}
		}
	}
}

// randomTarget builds a random straight-line program over 4 bytes of RAM
// that always halts. Straight-line keeps the brute-force scan cheap while
// still exercising every memory-access shape.
func randomTarget(rng *rand.Rand, n int) Target {
	const ramSize = 4
	prog := make([]isa.Instruction, 0, n+1)
	reg := func() uint8 { return uint8(1 + rng.Intn(6)) }
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1:
			prog = append(prog, isa.Instruction{Op: isa.OpSbi, Rs: 0, Imm: int32(rng.Intn(ramSize)), Imm2: int32(rng.Intn(256))})
		case 2:
			prog = append(prog, isa.Instruction{Op: isa.OpSwi, Rs: 0, Imm: 0, Imm2: int32(rng.Intn(2048))})
		case 3, 4:
			prog = append(prog, isa.Instruction{Op: isa.OpLb, Rd: reg(), Rs: 0, Imm: int32(rng.Intn(ramSize))})
		case 5:
			prog = append(prog, isa.Instruction{Op: isa.OpLw, Rd: reg(), Rs: 0, Imm: 0})
		case 6:
			prog = append(prog, isa.Instruction{Op: isa.OpAdd, Rd: reg(), Rs: reg(), Rt: reg()})
		case 7:
			// Emit a data-dependent byte: faults become visible as SDC.
			prog = append(prog, isa.Instruction{Op: isa.OpSb, Rt: reg(), Rs: 0, Imm: int32(machine.PortSerial)})
		case 8:
			prog = append(prog, isa.Instruction{Op: isa.OpSb, Rt: reg(), Rs: 0, Imm: int32(rng.Intn(ramSize))})
		case 9:
			prog = append(prog, isa.Instruction{Op: isa.OpXori, Rd: reg(), Rs: reg(), Imm: int32(rng.Intn(255))})
		}
	}
	prog = append(prog, isa.Instruction{Op: isa.OpHalt})
	return Target{
		Name:  "random",
		Code:  prog,
		Image: nil,
		Mach:  machine.Config{RAMSize: ramSize},
	}
}

func TestRunSingleValidation(t *testing.T) {
	target := hiTarget(t)
	golden, _ := prepare(t, target)
	if _, err := RunSingle(target, golden, Config{}, 0, 0); err == nil {
		t.Error("slot 0 must be rejected")
	}
	if _, err := RunSingle(target, golden, Config{}, golden.Cycles+1, 0); err == nil {
		t.Error("slot past golden runtime must be rejected")
	}
	if _, err := RunSingle(target, golden, Config{}, 1, 1<<20); err == nil {
		t.Error("bit outside RAM must be rejected")
	}
}

func TestConfigValidation(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	if _, err := FullScan(target, golden, fs, Config{TimeoutFactor: 0.5}); err == nil {
		t.Error("TimeoutFactor < 1 must be rejected")
	}
	if _, err := FullScan(target, golden, fs, Config{Workers: -1}); err == nil {
		t.Error("negative Workers must be rejected")
	}
	if _, err := FullScan(target, golden, fs, Config{Strategy: Strategy(9)}); err == nil {
		t.Error("unknown strategy must be rejected")
	}
}

func TestEmptyFaultSpaceScan(t *testing.T) {
	// A program that never touches RAM has zero classes.
	target := assembleTarget(t, "noram", `
        .ram 4
        li r1, 1
        halt
`)
	golden, fs := prepare(t, target)
	if len(fs.Classes) != 0 {
		t.Fatalf("classes = %d, want 0", len(fs.Classes))
	}
	res, err := FullScan(target, golden, fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailureWeight() != 0 || len(res.Outcomes) != 0 {
		t.Error("empty scan must have no outcomes")
	}
}
