package campaign

import (
	"time"

	"faultspace/internal/machine"
	"faultspace/internal/telemetry"
)

// scanTel bundles the telemetry instruments of one scan run, resolved
// once up front so the per-experiment hot path is a handful of atomic
// adds without registry lookups. With telemetry disabled
// (Config.Telemetry == nil) every instrument is nil and every method
// no-ops without reading the clock — the zero-overhead fast path
// invariant 10 builds on.
type scanTel struct {
	live bool
	// spans is the campaign timeline recorder (nil = span tracing off).
	// Deliberately independent of the instrument registry: a cluster
	// worker can trace spans without keeping a metrics registry, and vice
	// versa. Spans are phase-granular (strategy run, golden prefix, fork
	// batches), never per experiment, so the hot path stays untouched.
	spans       *telemetry.SpanRecorder
	experiments *telemetry.Counter
	outcomes    [NumOutcomes]*telemetry.Histogram
	// attacks counts attack-flagged outcomes (nil without an objective).
	attacks *telemetry.Counter

	// Ladder-strategy shortcut counters (nil under other strategies):
	// rungRestores counts rung restores — one per experiment under
	// ladder, one per batch under fork — reconverged counts runs whose
	// outcome was composed from the golden trace after their state
	// rejoined it, loopProofs counts Timeout verdicts proven by state
	// recurrence instead of simulating the full budget. The fork
	// strategy shares reconverged/loopProofs: its children run the same
	// runConverge suffix driver.
	rungRestores *telemetry.Counter
	reconverged  *telemetry.Counter
	loopProofs   *telemetry.Counter

	// Fork-strategy counters (nil under other strategies): forkChildren
	// counts forked child machines (one per experiment), forkSaved
	// accumulates golden-prefix cycles NOT replayed versus the ladder
	// strategy (cursor position minus batch rung cycle at each fork),
	// forkBatches records batch sizes in classes.
	forkChildren *telemetry.Counter
	forkSaved    *telemetry.Counter
	forkBatches  *telemetry.Histogram

	// Memoization counters (nil with memoization off): memoHits counts
	// experiments whose remainder was composed from a cached entry,
	// memoMisses counts cache probes that recorded a mark instead,
	// memoGated counts probes skipped by the admission gate because the
	// remaining cycle budget could not repay the hash cost.
	memoHits   *telemetry.Counter
	memoMisses *telemetry.Counter
	memoGated  *telemetry.Counter
	// predecodeInvals accumulates predecode-cache invalidations across
	// the scan's machines (nil with predecode off). Structurally zero for
	// Harvard-architecture campaign machines — the ROM is fault-immune,
	// so nothing ever dirties the code region — but surfaced so the
	// benchmark report and any von-Neumann embedder can observe it.
	predecodeInvals *telemetry.Counter
}

// newScanTel resolves the scan instruments from the config's registry.
// Call after withDefaults so cfg.Strategy is concrete.
func newScanTel(cfg Config) *scanTel {
	st := &scanTel{spans: cfg.Spans}
	r := cfg.Telemetry
	if r == nil {
		return st
	}
	st.live = true
	st.experiments = r.Counter("scan.experiments")
	for o := 0; o < NumOutcomes; o++ {
		st.outcomes[o] = r.Histogram("scan.outcome." + Outcome(o).MetricName())
	}
	if cfg.Objective != nil {
		st.attacks = r.Counter("scan.attacks")
	}
	if cfg.Strategy == StrategyLadder || cfg.Strategy == StrategyFork {
		st.rungRestores = r.Counter("ladder.rung_restores")
		st.reconverged = r.Counter("ladder.reconverged")
		st.loopProofs = r.Counter("ladder.loop_proofs")
	}
	if cfg.Strategy == StrategyFork {
		st.forkChildren = r.Counter("fork.children")
		st.forkSaved = r.Counter("fork.prefix_cycles_saved")
		st.forkBatches = r.Histogram("fork.batch_sizes")
	}
	if cfg.memoEnabled() {
		st.memoHits = r.Counter("memo.hits")
		st.memoMisses = r.Counter("memo.misses")
		st.memoGated = r.Counter("memo.gated")
	}
	if cfg.Predecode {
		st.predecodeInvals = r.Counter("predecode.invalidations")
	}
	return st
}

// addInvalidations folds the predecode invalidation counts of the
// scan's machines into the counter. Called once at scan teardown, before
// pooled machines are released; fresh campaign machines start at zero,
// so the sum is the scan's own count.
func (st *scanTel) addInvalidations(ms []*machine.Machine) {
	if st == nil || st.predecodeInvals == nil {
		return
	}
	var n uint64
	for _, m := range ms {
		n += m.PredecodeInvalidations()
	}
	st.predecodeInvals.Add(n)
}

// begin stamps the start of one experiment. Disabled telemetry skips
// the clock read entirely and returns the zero time.
func (st *scanTel) begin() time.Time {
	if st == nil || !st.live {
		return time.Time{}
	}
	return time.Now()
}

// experiment accounts one completed experiment and its duration in the
// per-outcome histogram.
func (st *scanTel) experiment(o Outcome, t0 time.Time) {
	if st == nil || !st.live {
		return
	}
	st.experiments.Inc()
	st.outcomes[o.Base()].Observe(time.Since(t0))
	if o.Attack() && st.attacks != nil {
		st.attacks.Inc()
	}
}
