package campaign

import (
	"time"

	"faultspace/internal/telemetry"
)

// scanTel bundles the telemetry instruments of one scan run, resolved
// once up front so the per-experiment hot path is a handful of atomic
// adds without registry lookups. With telemetry disabled
// (Config.Telemetry == nil) every instrument is nil and every method
// no-ops without reading the clock — the zero-overhead fast path
// invariant 10 builds on.
type scanTel struct {
	live        bool
	experiments *telemetry.Counter
	outcomes    [NumOutcomes]*telemetry.Histogram

	// Ladder-strategy shortcut counters (nil under other strategies):
	// rungRestores counts experiments served from a rung, reconverged
	// counts runs whose outcome was composed from the golden trace after
	// their state rejoined it, loopProofs counts Timeout verdicts proven
	// by state recurrence instead of simulating the full budget.
	rungRestores *telemetry.Counter
	reconverged  *telemetry.Counter
	loopProofs   *telemetry.Counter
}

// newScanTel resolves the scan instruments from the config's registry.
// Call after withDefaults so cfg.Strategy is concrete.
func newScanTel(cfg Config) *scanTel {
	st := &scanTel{}
	r := cfg.Telemetry
	if r == nil {
		return st
	}
	st.live = true
	st.experiments = r.Counter("scan.experiments")
	for o := 0; o < NumOutcomes; o++ {
		st.outcomes[o] = r.Histogram("scan.outcome." + Outcome(o).MetricName())
	}
	if cfg.Strategy == StrategyLadder {
		st.rungRestores = r.Counter("ladder.rung_restores")
		st.reconverged = r.Counter("ladder.reconverged")
		st.loopProofs = r.Counter("ladder.loop_proofs")
	}
	return st
}

// begin stamps the start of one experiment. Disabled telemetry skips
// the clock read entirely and returns the zero time.
func (st *scanTel) begin() time.Time {
	if st == nil || !st.live {
		return time.Time{}
	}
	return time.Now()
}

// experiment accounts one completed experiment and its duration in the
// per-outcome histogram.
func (st *scanTel) experiment(o Outcome, t0 time.Time) {
	if st == nil || !st.live {
		return
	}
	st.experiments.Inc()
	st.outcomes[o].Observe(time.Since(t0))
}
