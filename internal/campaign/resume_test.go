package campaign

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"faultspace/internal/pruning"
	"faultspace/internal/telemetry"
)

// TestResumeScanMatchesFull feeds half of a completed scan back as prior
// outcomes: the resumed scan must re-run only the remainder and produce
// the identical outcome vector.
func TestResumeScanMatchesFull(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	full, err := FullScan(target, golden, fs, Config{})
	if err != nil {
		t.Fatal(err)
	}

	prior := make(map[int]Outcome)
	for i := 0; i < len(full.Outcomes); i += 2 {
		prior[i] = full.Outcomes[i]
	}
	var reran []int
	cfg := Config{OnResult: func(ci int, o Outcome) { reran = append(reran, ci) }}
	res, err := ResumeScan(target, golden, fs, cfg, prior)
	if err != nil {
		t.Fatal(err)
	}
	if len(reran) != len(full.Outcomes)-len(prior) {
		t.Errorf("resume re-ran %d classes, want %d", len(reran), len(full.Outcomes)-len(prior))
	}
	for _, ci := range reran {
		if _, ok := prior[ci]; ok {
			t.Errorf("resume re-ran already-completed class %d", ci)
		}
	}
	for i := range full.Outcomes {
		if res.Outcomes[i] != full.Outcomes[i] {
			t.Errorf("class %d: resumed=%v full=%v", i, res.Outcomes[i], full.Outcomes[i])
		}
	}
	if res.Identity != full.Identity || res.Identity == ([32]byte{}) {
		t.Error("resumed scan must carry the same non-zero campaign identity")
	}
}

// TestResumeTelemetrySessionCounters pins the scoping of the two
// progress domains across a checkpoint resume: telemetry counters are
// session-scoped (a fresh registry on resume counts only the re-run
// remainder), while the progress stream's cumulative campaign state
// (Done, Counts) restores the checkpointed classes.
func TestResumeTelemetrySessionCounters(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)

	reg := telemetry.New()
	full, err := FullScan(target, golden, fs, Config{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("scan.experiments").Value(); got != uint64(len(fs.Classes)) {
		t.Fatalf("full scan ran %d experiments, want %d", got, len(fs.Classes))
	}

	prior := make(map[int]Outcome)
	for i := 0; i < len(full.Outcomes); i += 2 {
		prior[i] = full.Outcomes[i]
	}
	remainder := len(fs.Classes) - len(prior)

	resumeReg := telemetry.New()
	var finalP Progress
	cfg := Config{
		Telemetry:        resumeReg,
		ProgressInterval: -1,
		OnProgress: func(p Progress) {
			if p.Final {
				finalP = p
			}
		},
	}
	res, err := ResumeScan(target, golden, fs, cfg, prior)
	if err != nil {
		t.Fatal(err)
	}
	// Session counters reset: the resumed run counts only its own work.
	if got := resumeReg.Counter("scan.experiments").Value(); got != uint64(remainder) {
		t.Errorf("resumed scan.experiments = %d, want %d (the remainder only)", got, remainder)
	}
	snap := resumeReg.Snapshot()
	var histSum uint64
	for o := 0; o < NumOutcomes; o++ {
		histSum += snap.Histograms["scan.outcome."+Outcome(o).MetricName()].Count
	}
	if histSum != uint64(remainder) {
		t.Errorf("outcome histogram counts sum to %d, want %d", histSum, remainder)
	}
	// Cumulative campaign state restores: the final progress event covers
	// the whole campaign, not just this session.
	if finalP.Done != len(fs.Classes) || finalP.Total != len(fs.Classes) {
		t.Errorf("final Done/Total = %d/%d, want %d/%d",
			finalP.Done, finalP.Total, len(fs.Classes), len(fs.Classes))
	}
	if finalP.Session != remainder {
		t.Errorf("final Session = %d, want %d", finalP.Session, remainder)
	}
	var countSum uint64
	for _, c := range finalP.Counts {
		countSum += c
	}
	if countSum != uint64(len(fs.Classes)) {
		t.Errorf("final Counts sum to %d, want %d", countSum, len(fs.Classes))
	}
	for i := range full.Outcomes {
		if res.Outcomes[i] != full.Outcomes[i] {
			t.Fatalf("class %d: resumed=%v full=%v", i, res.Outcomes[i], full.Outcomes[i])
		}
	}
}

func TestResumeScanValidation(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	if _, err := ResumeScan(target, golden, fs, Config{}, map[int]Outcome{len(fs.Classes): 0}); err == nil {
		t.Error("out-of-range prior class index must be rejected")
	}
	if _, err := ResumeScan(target, golden, fs, Config{}, map[int]Outcome{0: Outcome(200)}); err == nil {
		t.Error("unknown prior outcome must be rejected")
	}
	// A fully-completed prior set needs no execution at all.
	full, err := FullScan(target, golden, fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	prior := make(map[int]Outcome, len(full.Outcomes))
	for i, o := range full.Outcomes {
		prior[i] = o
	}
	cfg := Config{OnResult: func(int, Outcome) { t.Error("complete prior must not execute experiments") }}
	res, err := ResumeScan(target, golden, fs, cfg, prior)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Outcomes {
		if res.Outcomes[i] != full.Outcomes[i] {
			t.Fatalf("class %d differs on no-op resume", i)
		}
	}
}

// TestInterruptedScanResumes kills a scan at roughly 50% via the
// Interrupt channel, then resumes from the streamed results: the merged
// outcome vector must be bit-identical to an uninterrupted scan, for both
// execution strategies.
func TestInterruptedScanResumes(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	full, err := FullScan(target, golden, fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{StrategySnapshot, StrategyRerun} {
		var mu sync.Mutex
		done := make(map[int]Outcome)
		intCh := make(chan struct{})
		var once sync.Once
		half := len(fs.Classes) / 2
		// One worker and a small results buffer bound how far the scan can
		// run past the interrupt: the worker stops at its next per-class
		// interrupt check, well before the last class.
		cfg := Config{
			Strategy: strat,
			Workers:  1,
			OnResult: func(ci int, o Outcome) {
				mu.Lock()
				done[ci] = o
				n := len(done)
				mu.Unlock()
				if n >= half {
					once.Do(func() { close(intCh) })
				}
			},
			Interrupt: intCh,
		}
		res, err := ResumeScan(target, golden, fs, cfg, nil)
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("strategy %d: err = %v, want ErrInterrupted", strat, err)
		}
		if res == nil {
			t.Fatalf("strategy %d: interrupted scan must return the partial result", strat)
		}
		if len(done) >= len(fs.Classes) {
			t.Fatalf("strategy %d: interrupt did not stop the scan (%d/%d classes ran)",
				strat, len(done), len(fs.Classes))
		}
		// Everything streamed so far must match the full scan already.
		for ci, o := range done {
			if o != full.Outcomes[ci] {
				t.Errorf("strategy %d: class %d: interrupted=%v full=%v", strat, ci, o, full.Outcomes[ci])
			}
		}
		resumed, err := ResumeScan(target, golden, fs, Config{Strategy: strat}, done)
		if err != nil {
			t.Fatal(err)
		}
		for i := range full.Outcomes {
			if resumed.Outcomes[i] != full.Outcomes[i] {
				t.Errorf("strategy %d: class %d: resumed=%v full=%v",
					strat, i, resumed.Outcomes[i], full.Outcomes[i])
			}
		}
	}
}

// badFlipSpace builds a fault space whose classes all point outside RAM,
// so every flip attempt fails. Many slots and classes keep the feeder
// busy while every worker dies — the scenario that used to be able to
// wedge the feeder when workers stopped draining their channel.
func badFlipSpace(golden uint64, ramBits uint64) *pruning.FaultSpace {
	fs := &pruning.FaultSpace{Kind: pruning.SpaceMemory, Cycles: golden, Bits: ramBits}
	for slot := uint64(1); slot <= golden; slot++ {
		for i := uint64(0); i < 8; i++ {
			fs.Classes = append(fs.Classes, pruning.Class{
				Bit:      ramBits + slot*8 + i, // out of range: flip always errors
				DefCycle: slot - 1,
				UseCycle: slot,
			})
		}
	}
	return fs
}

// TestWorkerErrorNoDeadlock is the regression test for the worker-error
// path: injected flips that fail in every worker must surface as an
// error promptly instead of deadlocking the feeder (workers keep
// draining their work channel after failing).
func TestWorkerErrorNoDeadlock(t *testing.T) {
	target := hiTarget(t)
	golden, _ := prepare(t, target)
	fs := badFlipSpace(golden.Cycles, golden.RAMBits)
	for _, strat := range []Strategy{StrategySnapshot, StrategyRerun} {
		errCh := make(chan error, 1)
		go func() {
			_, err := FullScan(target, golden, fs, Config{Strategy: strat, Workers: 2})
			errCh <- err
		}()
		select {
		case err := <-errCh:
			if err == nil {
				t.Fatalf("strategy %d: failing flips must yield an error", strat)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("strategy %d: scan deadlocked on worker error", strat)
		}
	}
}

func TestProgressEvents(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	var events []Progress
	cfg := Config{
		Workers:          2,
		ProgressInterval: -1, // every experiment
		OnProgress:       func(p Progress) { events = append(events, p) },
	}
	res, err := FullScan(target, golden, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < len(fs.Classes)+2 {
		t.Fatalf("got %d progress events, want >= %d (initial + per-class + final)",
			len(events), len(fs.Classes)+2)
	}
	first, last := events[0], events[len(events)-1]
	if first.Done != 0 || first.Final {
		t.Errorf("initial event wrong: %+v", first)
	}
	if !last.Final || last.Done != len(fs.Classes) || last.Total != len(fs.Classes) {
		t.Errorf("final event wrong: %+v", last)
	}
	prev := -1
	for _, p := range events {
		if p.Done < prev {
			t.Fatalf("progress went backwards: %d after %d", p.Done, prev)
		}
		prev = p.Done
	}
	var sum uint64
	for _, c := range last.Counts {
		sum += c
	}
	if sum != uint64(len(fs.Classes)) {
		t.Errorf("final outcome counts sum to %d, want %d", sum, len(fs.Classes))
	}
	if want := res.FailureClasses(); last.Failures() != want {
		t.Errorf("final failure count %d, want %d", last.Failures(), want)
	}
}

func TestCampaignIdentity(t *testing.T) {
	target := hiTarget(t)
	id := func(tg Target, kind pruning.SpaceKind, cfg Config) [32]byte {
		t.Helper()
		h, err := tg.CampaignIdentity(kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	base := id(target, pruning.SpaceMemory, Config{})
	if base == ([32]byte{}) {
		t.Fatal("identity must be non-zero")
	}
	// Execution strategy and parallelism must NOT change the identity:
	// they are outcome-invariant (enforced by the differential suite).
	if id(target, pruning.SpaceMemory, Config{Strategy: StrategyRerun, Workers: 7}) != base {
		t.Error("strategy/workers must not change the campaign identity")
	}
	if id(target, pruning.SpaceRegisters, Config{}) == base {
		t.Error("fault-space kind must change the identity")
	}
	if id(target, pruning.SpaceMemory, Config{TimeoutFactor: 8}) == base {
		t.Error("timeout budget must change the identity")
	}
	mutated := target
	mutated.Image = append([]byte{}, target.Image...)
	mutated.Image = append(mutated.Image, 0xAA)
	if id(mutated, pruning.SpaceMemory, Config{}) == base {
		t.Error("RAM image must change the identity")
	}
}

// TestRandomCoordinateOracle validates def/use pruning end-to-end on both
// fault spaces: for random raw (slot, bit) coordinates, the brute-force
// single experiment must match the outcome the pruned scan implies (the
// class outcome for members, No Effect for pruned coordinates).
func TestRandomCoordinateOracle(t *testing.T) {
	target := hiTarget(t)
	rng := rand.New(rand.NewSource(23))
	for _, kind := range []pruning.SpaceKind{pruning.SpaceMemory, pruning.SpaceRegisters} {
		golden, fs, err := target.PrepareSpace(kind, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		res, err := FullScan(target, golden, fs, Config{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{}.withDefaults()
		for n := 0; n < 200; n++ {
			slot := 1 + uint64(rng.Int63n(int64(fs.Cycles)))
			bit := uint64(rng.Int63n(int64(fs.Bits)))
			got, err := RunSingleSpace(target, golden, cfg, kind, slot, bit)
			if err != nil {
				t.Fatal(err)
			}
			ci, inClass, err := fs.Locate(slot, bit)
			if err != nil {
				t.Fatal(err)
			}
			want := OutcomeNoEffect
			if inClass {
				want = res.Outcomes[ci]
			}
			if got != want {
				t.Fatalf("%s (%d, %d): brute=%v pruned=%v (inClass=%v)",
					kind, slot, bit, got, want, inClass)
			}
		}
	}
}
