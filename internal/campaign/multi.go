package campaign

import (
	"fmt"
	"sort"

	"faultspace/internal/machine"
	"faultspace/internal/pruning"
	"faultspace/internal/trace"
)

// Coord is one raw fault-space coordinate: flip `Bit` after instruction
// Slot−1 retired and before instruction Slot executes.
type Coord struct {
	Slot uint64
	Bit  uint64
}

// RunMulti executes one experiment with several independent transient
// faults, all within the same fault space. The paper's §III-A shows that
// multi-fault runs are negligibly probable under realistic soft-error
// rates — RunMulti exists to *verify* what that negligibility protects:
// e.g. that SUM+DMR's detect-and-correct guarantee collapses under double
// faults (see internal/experiments.MultiFault).
//
// Coordinates may share a slot (both flips happen at the same boundary)
// but are injected in ascending slot order.
func RunMulti(t Target, golden *trace.Golden, cfg Config, kind pruning.SpaceKind, coords []Coord) (Outcome, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if len(coords) == 0 {
		return 0, fmt.Errorf("campaign: RunMulti needs at least one coordinate")
	}
	sorted := make([]Coord, len(coords))
	copy(sorted, coords)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Slot < sorted[j].Slot })
	for _, c := range sorted {
		if c.Slot == 0 || c.Slot > golden.Cycles {
			return 0, fmt.Errorf("campaign: slot %d outside [1, %d]", c.Slot, golden.Cycles)
		}
	}

	m, err := t.newMachine()
	if err != nil {
		return 0, err
	}
	flip := flipFor(kind)
	budget := cfg.timeoutBudget(golden.Cycles)
	for _, c := range sorted {
		if m.Cycles() < c.Slot-1 {
			m.Run(c.Slot - 1)
			// A fault injected earlier may have terminated the run before
			// the next injection slot; remaining flips then cannot land.
			if m.Status() != machine.StatusRunning {
				return classify(m, golden, cfg.Objective), nil
			}
		}
		if err := flip(m, c.Bit); err != nil {
			return 0, err
		}
	}
	m.Run(budget)
	return classify(m, golden, cfg.Objective), nil
}
