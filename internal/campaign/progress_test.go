package campaign

import (
	"errors"
	"testing"
	"time"
)

// countFinals returns how many events carry Final and whether the last
// event is one of them.
func countFinals(events []Progress) (finals int, lastIsFinal bool) {
	for _, p := range events {
		if p.Final {
			finals++
		}
	}
	return finals, len(events) > 0 && events[len(events)-1].Final
}

// TestProgressEveryRecord pins the ProgressInterval < 0 contract: one
// event per completed experiment, exactly — plus the initial and the
// final event. (The collector delivers events from a single goroutine,
// so the count is deterministic even with parallel workers.)
func TestProgressEveryRecord(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	var events []Progress
	cfg := Config{
		Workers:          4,
		ProgressInterval: -1,
		OnProgress:       func(p Progress) { events = append(events, p) },
	}
	if _, err := FullScan(target, golden, fs, cfg); err != nil {
		t.Fatal(err)
	}
	if want := len(fs.Classes) + 2; len(events) != want {
		t.Errorf("got %d events, want exactly %d (initial + per-class + final)", len(events), want)
	}
	finals, last := countFinals(events)
	if finals != 1 || !last {
		t.Errorf("finals = %d (last final: %v), want exactly 1 and last", finals, last)
	}
}

// TestProgressThrottled pins the ProgressInterval > 0 contract: with an
// interval far longer than the scan, no intermediate event fires — only
// the initial and the final one.
func TestProgressThrottled(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	var events []Progress
	cfg := Config{
		ProgressInterval: time.Hour,
		OnProgress:       func(p Progress) { events = append(events, p) },
	}
	if _, err := FullScan(target, golden, fs, cfg); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (initial + final): %+v", len(events), events)
	}
	if events[0].Final || !events[1].Final {
		t.Errorf("event finality wrong: %+v", events)
	}
	if events[1].Done != len(fs.Classes) {
		t.Errorf("final Done = %d, want %d", events[1].Done, len(fs.Classes))
	}
}

// TestProgressFinalOnErrorPath: a scan that dies on a worker error must
// still deliver exactly one final progress event.
func TestProgressFinalOnErrorPath(t *testing.T) {
	target := hiTarget(t)
	golden, _ := prepare(t, target)
	fs := badFlipSpace(golden.Cycles, golden.RAMBits)
	var events []Progress
	cfg := Config{
		Workers:          2,
		ProgressInterval: -1,
		OnProgress:       func(p Progress) { events = append(events, p) },
	}
	if _, err := FullScan(target, golden, fs, cfg); err == nil {
		t.Fatal("failing flips must yield an error")
	}
	finals, last := countFinals(events)
	if finals != 1 || !last {
		t.Errorf("finals = %d (last final: %v), want exactly 1 and last", finals, last)
	}
}

// TestProgressFinalOnInterrupt: an interrupted scan must deliver exactly
// one final progress event too.
func TestProgressFinalOnInterrupt(t *testing.T) {
	target := hiTarget(t)
	golden, fs := prepare(t, target)
	intCh := make(chan struct{})
	close(intCh) // interrupted before the scan even starts
	var events []Progress
	cfg := Config{
		Workers:          2,
		ProgressInterval: -1,
		OnProgress:       func(p Progress) { events = append(events, p) },
		Interrupt:        intCh,
	}
	_, err := FullScan(target, golden, fs, cfg)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	finals, last := countFinals(events)
	if finals != 1 || !last {
		t.Errorf("finals = %d (last final: %v), want exactly 1 and last", finals, last)
	}
}

// TestMeterFinishIdempotent drives the meter directly: repeated finish
// calls emit the final event only once, and every event's Elapsed and
// throttle timestamp come from the same clock reading (the final event
// of an instant scan reports Elapsed >= 0).
func TestMeterFinishIdempotent(t *testing.T) {
	var events []Progress
	cfg := Config{
		ProgressInterval: -1,
		OnProgress:       func(p Progress) { events = append(events, p) },
	}
	m := newMeter(cfg, 3, nil)
	m.record(0, OutcomeNoEffect)
	m.finish()
	m.finish()
	m.finish()
	finals, last := countFinals(events)
	if finals != 1 || !last {
		t.Fatalf("finals = %d (last final: %v), want exactly 1 and last", finals, last)
	}
	if len(events) != 3 { // initial + record + final
		t.Errorf("got %d events, want 3", len(events))
	}
	for i, p := range events {
		if p.Elapsed < 0 {
			t.Errorf("event %d: negative Elapsed %v", i, p.Elapsed)
		}
	}
}
