package campaign

import (
	"math/rand"
	"testing"

	"faultspace/internal/pruning"
)

func TestRegisterFullScanHi(t *testing.T) {
	target := hiTarget(t)
	golden, fs, err := target.PrepareSpace(pruning.SpaceRegisters, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Kind != pruning.SpaceRegisters {
		t.Fatalf("kind = %v", fs.Kind)
	}
	// hi reads r1 (written cycle 4, read cycle 5) and r2 (6 -> 7):
	// 64 register classes of weight 1 each.
	if len(fs.Classes) != 64 {
		t.Fatalf("classes = %d, want 64", len(fs.Classes))
	}
	res, err := FullScan(target, golden, fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The serial port emits only the low byte of the stored register, so
	// exactly the 8 low bits of r1 and r2 are failure classes (SDC); the
	// 24 high bits of each are architecturally masked — No Effect.
	if got := res.FailureWeight(); got != 16 {
		t.Errorf("register failure weight = %d, want 16", got)
	}
	counts := res.ClassCounts()
	if counts[OutcomeSDC] != 16 {
		t.Errorf("SDC classes = %d, want 16 (%v)", counts[OutcomeSDC], counts)
	}
	if counts[OutcomeNoEffect] != 48 {
		t.Errorf("No Effect classes = %d, want 48 (%v)", counts[OutcomeNoEffect], counts)
	}
}

// TestRegisterPrunedScanEqualsBruteForce extends the def/use equivalence
// property to the register fault space.
func TestRegisterPrunedScanEqualsBruteForce(t *testing.T) {
	if testing.Short() {
		t.Skip("brute-force scan is slow")
	}
	target := hiTarget(t)
	golden, fs, err := target.PrepareSpace(pruning.SpaceRegisters, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FullScan(target, golden, fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{}.withDefaults()
	for slot := uint64(1); slot <= golden.Cycles; slot++ {
		for bit := uint64(0); bit < fs.Bits; bit++ {
			got, err := RunSingleSpace(target, golden, cfg, pruning.SpaceRegisters, slot, bit)
			if err != nil {
				t.Fatal(err)
			}
			ci, inClass, err := fs.Locate(slot, bit)
			if err != nil {
				t.Fatal(err)
			}
			want := OutcomeNoEffect
			if inClass {
				want = res.Outcomes[ci]
			}
			if got != want {
				t.Fatalf("register coordinate (%d, %d): brute=%v pruned=%v", slot, bit, got, want)
			}
		}
	}
}

// TestRegisterBruteForceRandomPrograms extends the register def/use
// equivalence property to random programs. The register space is 480 bits
// wide, so the brute force samples a subset of bits per slot instead of
// enumerating all of them.
func TestRegisterBruteForceRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("brute-force scan is slow")
	}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 6; trial++ {
		target := randomTarget(rng, 8+rng.Intn(8))
		golden, fs, err := target.PrepareSpace(pruning.SpaceRegisters, 1<<12)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := FullScan(target, golden, fs, Config{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{}.withDefaults()
		for slot := uint64(1); slot <= golden.Cycles; slot++ {
			// All class-member bits at this slot, plus a random benign one.
			bits := map[uint64]struct{}{uint64(rng.Intn(int(fs.Bits))): {}}
			for _, c := range fs.Classes {
				if slot > c.DefCycle && slot <= c.UseCycle {
					bits[c.Bit] = struct{}{}
				}
			}
			for bit := range bits {
				got, err := RunSingleSpace(target, golden, cfg, pruning.SpaceRegisters, slot, bit)
				if err != nil {
					t.Fatal(err)
				}
				ci, inClass, err := fs.Locate(slot, bit)
				if err != nil {
					t.Fatal(err)
				}
				want := OutcomeNoEffect
				if inClass {
					want = res.Outcomes[ci]
				}
				if got != want {
					t.Fatalf("trial %d: register coordinate (%d, %d): brute=%v pruned=%v",
						trial, slot, bit, got, want)
				}
			}
		}
	}
}

func TestRegisterSampling(t *testing.T) {
	target := hiTarget(t)
	golden, fs, err := target.PrepareSpace(pruning.SpaceRegisters, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := SampleScan(target, golden, fs, Config{}, SampleRaw, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Population != fs.Size() {
		t.Errorf("population = %d, want %d", sr.Population, fs.Size())
	}
	// The true register failure count is 16 (low bytes of r1/r2 during
	// their one-cycle lifetimes); the estimate must land in the ballpark.
	est := sr.ExtrapolatedFailures()
	if est < 2 || est > 80 {
		t.Errorf("extrapolated register failures = %v, want ~16", est)
	}
}
