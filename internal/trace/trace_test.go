package trace

import (
	"bytes"
	"testing"

	"faultspace/internal/isa"
	"faultspace/internal/machine"
)

func TestRecordGolden(t *testing.T) {
	prog := []isa.Instruction{
		{Op: isa.OpSbi, Rs: 0, Imm: 0, Imm2: 'H'},
		{Op: isa.OpLb, Rd: 1, Rs: 0, Imm: 0},
		{Op: isa.OpSb, Rt: 1, Rs: 0, Imm: int32(machine.PortSerial)},
		{Op: isa.OpHalt},
	}
	g, err := Record("t", machine.Config{RAMSize: 4}, prog, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cycles != 4 {
		t.Errorf("cycles = %d, want 4", g.Cycles)
	}
	if g.RAMBits != 32 {
		t.Errorf("RAMBits = %d, want 32", g.RAMBits)
	}
	if g.SpaceSize() != 128 {
		t.Errorf("space = %d, want 128", g.SpaceSize())
	}
	if !bytes.Equal(g.Serial, []byte("H")) {
		t.Errorf("serial = %q", g.Serial)
	}
	want := []Access{
		{Cycle: 1, Addr: 0, Size: 1, Kind: machine.AccessWrite},
		{Cycle: 2, Addr: 0, Size: 1, Kind: machine.AccessRead},
	}
	if len(g.Accesses) != len(want) {
		t.Fatalf("accesses = %+v", g.Accesses)
	}
	for i := range want {
		if g.Accesses[i] != want[i] {
			t.Errorf("access %d = %+v, want %+v", i, g.Accesses[i], want[i])
		}
	}
}

func TestRecordRejectsNonHaltingRuns(t *testing.T) {
	cases := []struct {
		name string
		prog []isa.Instruction
	}{
		{"timeout", []isa.Instruction{{Op: isa.OpJmp, Imm: 0}}},
		{"exception", []isa.Instruction{{Op: isa.OpLw, Rd: 1, Rs: 0, Imm: 999}}},
		{"abort", []isa.Instruction{{Op: isa.OpSwi, Rs: 0, Imm: int32(machine.PortAbort), Imm2: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Record("t", machine.Config{RAMSize: 4}, tc.prog, nil, 50); err == nil {
				t.Error("Record must reject non-halting golden runs")
			}
		})
	}
}

func TestRecordBadConfig(t *testing.T) {
	if _, err := Record("t", machine.Config{RAMSize: 0}, []isa.Instruction{{Op: isa.OpHalt}}, nil, 10); err == nil {
		t.Error("Record must propagate config errors")
	}
}

func TestRecordCapturesDetectionCounters(t *testing.T) {
	prog := []isa.Instruction{
		{Op: isa.OpSwi, Rs: 0, Imm: int32(machine.PortDetect), Imm2: 1},
		{Op: isa.OpSwi, Rs: 0, Imm: int32(machine.PortCorrect), Imm2: 1},
		{Op: isa.OpHalt},
	}
	g, err := Record("t", machine.Config{RAMSize: 4}, prog, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.Detects != 1 || g.Corrects != 1 {
		t.Errorf("detects=%d corrects=%d, want 1/1", g.Detects, g.Corrects)
	}
}
