// Package trace records golden (fault-free) runs of fav32 programs.
//
// A golden run provides three things to the fault-injection pipeline:
//
//  1. the reference behavior (serial output, termination status) against
//     which fault-injection experiment outcomes are classified,
//  2. the fault-space dimensions: the runtime Δt in cycles and the memory
//     size Δm in bits (w = Δt·Δm, §III-A of the paper), and
//  3. the memory-access trace that def/use pruning (internal/pruning)
//     partitions into equivalence classes.
package trace

import (
	"fmt"

	"faultspace/internal/isa"
	"faultspace/internal/machine"
)

// Access is one RAM access performed by the traced run.
type Access struct {
	Cycle uint64 // cycle of the accessing instruction (1-based)
	Addr  uint32 // first byte address accessed
	Size  uint8  // bytes accessed (1 or 4)
	Kind  machine.AccessKind
}

// Golden is the record of a fault-free benchmark run.
type Golden struct {
	Name     string
	Cycles   uint64 // Δt: runtime in CPU cycles
	RAMBits  uint64 // Δm: main-memory size in bits
	Serial   []byte // reference output
	Detects  uint64 // detection signals during the fault-free run
	Corrects uint64 // correction signals during the fault-free run
	Accesses []Access

	// RegAccesses is the register-file def/use trace for the §VI-B
	// register fault-space generalization. Registers are mapped into a
	// synthetic byte space: register r occupies bytes [(r-1)*4, r*4).
	// r0 is hardwired zero and does not appear. Within one cycle, reads
	// precede writes (an instruction consumes its sources before
	// producing its destination).
	RegAccesses []Access

	// The per-cycle control-flow trace for the attack-style fault spaces
	// (instruction skip, PC corruption). All three slices have length
	// Cycles; slot t uses index t−1.
	//
	// BoundaryPCs[t−1] is the program counter at injection slot t, before
	// any timer redirect — the value a PC-corruption fault at slot t
	// flips.
	BoundaryPCs []uint32
	// ExecPCs[t−1] is the PC the instruction retiring at cycle t actually
	// executed from (after any timer redirect) — the instruction an
	// instruction-skip fault at slot t suppresses.
	ExecPCs []uint32
	// IRQEntries[t−1] reports whether the timer redirect fired at slot
	// t's boundary, making cycle t the first handler instruction.
	IRQEntries []bool
}

// SpaceSize returns the raw memory fault-space size w = Δt · Δm.
func (g *Golden) SpaceSize() uint64 { return g.Cycles * g.RAMBits }

// RegBits returns the register fault-space memory dimension: 15 writable
// registers × 32 bits.
func (g *Golden) RegBits() uint64 { return machine.RegSpaceBits }

// RegSpaceSize returns the register fault-space size Δt × 480.
func (g *Golden) RegSpaceSize() uint64 { return g.Cycles * g.RegBits() }

// Record executes the program without faults and records its memory-access
// trace. The run must halt normally within maxCycles cycles; a golden run
// that crashes, aborts or exceeds the budget is a benchmark bug and yields
// an error.
func Record(name string, cfg machine.Config, code []isa.Instruction, image []byte, maxCycles uint64) (*Golden, error) {
	m, err := machine.New(cfg, code, image)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	g := &Golden{
		Name:    name,
		RAMBits: m.RAMBits(),
	}
	m.SetMemHook(func(cycle uint64, addr uint32, size uint8, kind machine.AccessKind) {
		g.Accesses = append(g.Accesses, Access{Cycle: cycle, Addr: addr, Size: size, Kind: kind})
	})
	var prevIRQ bool
	m.SetExecHook(func(cycle uint64, pc uint32, ins isa.Instruction) {
		// The hook fires after the timer redirect, so pc here is where
		// the instruction really executes from; prevIRQ is captured at
		// the boundary by the step loop below.
		g.ExecPCs = append(g.ExecPCs, pc)
		g.IRQEntries = append(g.IRQEntries, m.InIRQ() && !prevIRQ)
		// Reads first (deduplicated: "add r1, r2, r2" reads r2 once),
		// then the write — matching intra-instruction dataflow order.
		var seen [isa.NumRegs]bool
		for _, r := range ins.Reads() {
			if r == isa.RegZero || seen[r] {
				continue
			}
			seen[r] = true
			g.RegAccesses = append(g.RegAccesses, Access{
				Cycle: cycle, Addr: uint32(r-1) * 4, Size: 4, Kind: machine.AccessRead,
			})
		}
		if w := ins.WritesReg(); w > int(isa.RegZero) {
			g.RegAccesses = append(g.RegAccesses, Access{
				Cycle: cycle, Addr: uint32(w-1) * 4, Size: 4, Kind: machine.AccessWrite,
			})
		}
	})
	// Step explicitly instead of Run: between Steps, m.PC() is exactly
	// the pre-redirect boundary PC that a PC-corruption fault at the next
	// slot would flip.
	for m.Status() == machine.StatusRunning && m.Cycles() < maxCycles {
		g.BoundaryPCs = append(g.BoundaryPCs, m.PC())
		prevIRQ = m.InIRQ()
		if _, err := m.Step(); err != nil {
			break
		}
	}
	status := m.Status()
	switch status {
	case machine.StatusHalted:
		// success
	case machine.StatusRunning:
		return nil, fmt.Errorf("trace: golden run of %q did not halt within %d cycles", name, maxCycles)
	case machine.StatusExcepted:
		return nil, fmt.Errorf("trace: golden run of %q raised %s at pc=%d cycle=%d",
			name, m.Exception(), m.PC(), m.Cycles())
	case machine.StatusAborted:
		return nil, fmt.Errorf("trace: golden run of %q aborted at cycle %d", name, m.Cycles())
	default:
		return nil, fmt.Errorf("trace: golden run of %q ended with unexpected status %s", name, status)
	}
	g.Cycles = m.Cycles()
	g.Serial = m.Serial()
	g.Detects = m.DetectCount()
	g.Corrects = m.CorrectCount()
	return g, nil
}
