package progs

import (
	"strings"
	"testing"
)

// expectedMbox1Output mirrors the benchmark's message pipeline: one
// 'a'+i&7 character per message, the folded xor of all messages, "P\n".
func expectedMbox1Output(n int) string {
	var sb strings.Builder
	var x uint32
	for i := 0; i < n; i++ {
		sb.WriteByte(byte('a' + i&7))
		x ^= uint32(i)*0x9E3779B9 + 97
	}
	x ^= x >> 16
	x ^= x >> 8
	sb.WriteByte(byte('A' + (x>>4)&15))
	sb.WriteByte(byte('A' + x&15))
	sb.WriteString("P\n")
	return sb.String()
}

func TestMbox1GoldenOutput(t *testing.T) {
	// n > capacity (4) exercises the producer's blocking path; n <= 4
	// the burst-without-blocking path.
	for _, n := range []int{1, 3, 4, 6, 9} {
		spec := Mbox1(n)
		want := expectedMbox1Output(n)
		for _, hardened := range []bool{false, true} {
			p := buildVariant(t, spec, hardened)
			g := goldenOf(t, p)
			if string(g.Serial) != want {
				t.Errorf("%s n=%d: output %q, want %q", p.Name, n, g.Serial, want)
			}
		}
	}
}

func TestMbox1BlockingBothWays(t *testing.T) {
	// With more messages than slots, the producer must block at least
	// once (mailbox full) and the consumer must block at least once
	// (mailbox empty). Indirect evidence: the run terminates with the
	// right output AND takes more cycles per message than the n=1 case,
	// which includes no full-mailbox stalls.
	g1 := goldenOf(t, buildVariant(t, Mbox1(1), false))
	g9 := goldenOf(t, buildVariant(t, Mbox1(9), false))
	perMsg1 := g1.Cycles
	perMsg9 := g9.Cycles / 9
	if perMsg9 == 0 || perMsg1 == 0 {
		t.Fatal("degenerate cycle counts")
	}
	if g9.Cycles <= g1.Cycles {
		t.Error("9 messages must cost more than 1")
	}
}

func TestMbox1Clamp(t *testing.T) {
	p := buildVariant(t, Mbox1(0), false)
	g := goldenOf(t, p)
	if string(g.Serial) != expectedMbox1Output(1) {
		t.Errorf("clamped output %q, want %q", g.Serial, expectedMbox1Output(1))
	}
}
