// Package progs contains the fav32 benchmark programs of this
// reproduction:
//
//   - hi: the paper's §IV "Hi" Gedankenexperiment program (Figure 3),
//   - bin_sem2: a port of the eCos binary-semaphore kernel test,
//   - sync2: a port of the eCos mutex/condition-variable kernel test,
//
// plus the cooperative threading kernel (two threads, binary semaphores,
// mutex) the kernel tests run on. Kernel state and thread contexts are
// accessed through the pld/pst protected-access pseudo instructions, so a
// single source yields both the baseline variant (plain loads/stores) and
// the SUM+DMR-hardened variant.
package progs

import (
	"fmt"

	"faultspace/internal/asm"
	"faultspace/internal/harden"
)

// Spec describes one benchmark with its baseline and hardened forms.
type Spec struct {
	// Name identifies the benchmark.
	Name string
	// BaselineSrc is the assembly source of the baseline variant (RAM
	// sized without replica space).
	BaselineSrc string
	// HardenedSrc is the assembly source for the hardened variant: same
	// program, RAM extended by the replica and checksum regions (the
	// checksum region pre-initialized to ~0 for SUM+DMR).
	HardenedSrc string
	// HardenedTMRSrc is the source for the TMR variant: same extended
	// layout, but with the third region zero-initialized (a plain copy,
	// not a checksum). Empty when the benchmark has no protected data.
	HardenedTMRSrc string
	// DMR is the SUM+DMR configuration matching the source's data layout.
	DMR harden.SumDMR
	// DataAddrs lists RAM addresses holding live data, usable as dummy-load
	// targets for the DFT' dilution cheat.
	DataAddrs []int64
}

// BaselineStmts parses the baseline source and expands protected accesses
// into plain loads/stores.
func (s Spec) BaselineStmts() ([]asm.Stmt, error) {
	return s.variantStmts(s.BaselineSrc, harden.Baseline{})
}

// HardenedStmts parses the hardened source and applies SUM+DMR. Specs
// without protected data (zero DMR configuration) fall back to the
// baseline expansion: there is nothing to harden.
func (s Spec) HardenedStmts() ([]asm.Stmt, error) {
	if s.DMR == (harden.SumDMR{}) {
		return s.variantStmts(s.HardenedSrc, harden.Baseline{})
	}
	return s.variantStmts(s.HardenedSrc, s.DMR)
}

// Baseline assembles the baseline variant.
func (s Spec) Baseline() (*asm.Program, error) {
	stmts, err := s.BaselineStmts()
	if err != nil {
		return nil, err
	}
	return asm.AssembleStmts(s.Name+"/baseline", stmts)
}

// Hardened assembles the SUM+DMR variant.
func (s Spec) Hardened() (*asm.Program, error) {
	stmts, err := s.HardenedStmts()
	if err != nil {
		return nil, err
	}
	return asm.AssembleStmts(s.Name+"/sum+dmr", stmts)
}

// TMR returns the triple-modular-redundancy configuration sharing the
// SUM+DMR layout: the second copy lives where SUM+DMR keeps its replica,
// the third where SUM+DMR keeps its checksums.
func (s Spec) TMR() harden.TMR {
	return harden.TMR{
		Copy2Offset: s.DMR.ReplicaOffset,
		Copy3Offset: s.DMR.CheckOffset,
		RegionBase:  s.DMR.RegionBase,
		RegionWords: s.DMR.RegionWords,
	}
}

// HardenedTMR assembles the TMR variant.
func (s Spec) HardenedTMR() (*asm.Program, error) {
	if s.HardenedTMRSrc == "" {
		return nil, fmt.Errorf("progs: %s has no TMR variant", s.Name)
	}
	if s.DMR == (harden.SumDMR{}) {
		return nil, fmt.Errorf("progs: %s has no protected data to triplicate", s.Name)
	}
	stmts, err := s.variantStmts(s.HardenedTMRSrc, s.TMR())
	if err != nil {
		return nil, err
	}
	return asm.AssembleStmts(s.Name+"/tmr", stmts)
}

// WithVariant assembles the baseline program transformed by an additional
// variant (e.g. the DFT dilution cheats applied on top of the baseline).
func (s Spec) WithVariant(v harden.Variant) (*asm.Program, error) {
	stmts, err := s.variantStmts(s.BaselineSrc, harden.Chain(harden.Baseline{}, v))
	if err != nil {
		return nil, err
	}
	return asm.AssembleStmts(s.Name+"/"+v.Name(), stmts)
}

func (s Spec) variantStmts(src string, v harden.Variant) ([]asm.Stmt, error) {
	stmts, err := asm.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("progs: parse %s: %w", s.Name, err)
	}
	out, err := v.Apply(stmts)
	if err != nil {
		return nil, fmt.Errorf("progs: %s: %w", s.Name, err)
	}
	return out, nil
}
