package progs

// Hi returns the paper's §IV-A "Hi" benchmark (Figure 3): eight
// instructions, two bytes of RAM, eight cycles. The program stores 'H' and
// 'i' into memory and echoes both bytes on the serial interface.
//
// Its fault space is exactly the paper's: Δt = 8 cycles × Δm = 16 bits,
// N = 128 coordinates, of which F = 2 bytes × 8 bits × 3 cycles = 48 are
// failures ("Failure" when the fault hits a byte while the datum lives
// there), giving c_baseline = 1 − 48/128 = 62.5 %.
//
// Applying harden.Dilution{NOPs: 4} (DFT) yields the paper's hardened
// variant: Δt = 12, N = 192, F = 48, c = 75.0 % — a coverage gain from a
// transformation that provably prevents nothing.
func Hi() Spec {
	const src = `
; "Hi" -- the fault-space dilution Gedankenexperiment (DSN'15, Fig. 3).
        .ram    2               ; two bytes: msg[0], msg[1]
        .equ    SERIAL, 0x10000

        .data
msg:    .space  2

        .text
        sbi     'H', msg+0(r0)  ; cycle 1: W msg[0]
        nop                     ; cycle 2
        sbi     'i', msg+1(r0)  ; cycle 3: W msg[1]
        lb      r1, msg+0(r0)   ; cycle 4: R msg[0]
        sb      r1, SERIAL(r0)  ; cycle 5: emit 'H' (MMIO, not fault space)
        lb      r2, msg+1(r0)   ; cycle 6: R msg[1]
        sb      r2, SERIAL(r0)  ; cycle 7: emit 'i'
        halt                    ; cycle 8
`
	return Spec{
		Name:        "hi",
		BaselineSrc: src,
		HardenedSrc: src, // no protected data; SUM+DMR is an identity here
		DataAddrs:   []int64{0, 1},
	}
}
