package progs

import "fmt"

// Sync2 returns the sync2 benchmark: a port of the eCos mutex/condition
// synchronization kernel test. A producer thread fills a message buffer,
// then performs niter mutex-protected flag handshakes with a consumer
// thread (a condition-variable pattern: signal via a sequence word, wait
// by polling under the mutex with cooperative yields). At the very end the
// consumer reads the whole buffer back and emits its checksum.
//
// The message buffer is *unprotected* and lives from the first cycles of
// the run until the final checksum — its fault exposure grows linearly
// with the benchmark runtime. The SUM+DMR variant therefore stretches
// exactly the data lifetime that produces failures: the mechanism corrects
// kernel-state faults but pays with runtime that multiplies the buffer's
// exposure. This reproduces the paper's central sync2 finding (§V-B): the
// fault-coverage metric claims an improvement while the extrapolated
// absolute failure count *worsens*.
//
// niter is the number of handshakes (clamped to >= 1); msgLen the buffer
// size in bytes (rounded up to a word multiple, minimum 4).
func Sync2(niter, msgLen int) Spec {
	if niter < 1 {
		niter = 1
	}
	if msgLen < 4 {
		msgLen = 4
	}
	msgLen = alignUp(msgLen, 4)
	stackBase := alignUp(msgLen, 4)
	l := kernelLayout{
		MsgBufAddr: 0,
		MsgLen:     msgLen,
		Stack0Top:  stackBase + 16,
		Stack1Top:  stackBase + 32,
		ProtBase:   stackBase + 32,
	}
	body := `
        .text
start:
        li      sp, STACK0_TOP
        pst     r0, CURTID(r0)
        pst     r0, MUTEX(r0)
        pst     r0, FLAG(r0)
        pst     r0, ACK(r0)
        pst     r0, DONE(r0)
        pst     r0, CONDSEQ(r0)
        li      r1, consumer
        call    ctx1_init

; Produce the message: word i gets a golden-ratio hash of i. Written once,
; read back at the very end of the run -- maximum data lifetime.
        li      r4, 0
fill:
        li      r2, 0x9E3779B9
        mul     r2, r4, r2
        addi    r2, r2, 0x1234567
        shli    r3, r4, 2
        addi    r3, r3, MSGBUF
        sw      r2, 0(r3)
        inc     r4
        li      r1, MSGLEN/4
        blt     r4, r1, fill

; Handshake rounds: publish FLAG=i under the mutex, signal, await ACK=i.
        li      r4, 1
p_loop:
        li      r1, MUTEX
        call    mutex_lock
        pst     r4, FLAG(r0)
        li      r1, MUTEX
        call    mutex_unlock
        pld     r2, CONDSEQ(r0)         ; cond_signal: bump sequence word
        inc     r2
        pst     r2, CONDSEQ(r0)
p_wait_ack:
        pld     r2, ACK(r0)
        beq     r2, r4, p_next
        call    kyield
        jmp     p_wait_ack
p_next:
        inc     r4
        li      r1, NITER
        ble     r4, r1, p_loop
p_wait_done:
        pld     r2, DONE(r0)
        bne     r2, r0, p_finish
        call    kyield
        jmp     p_wait_done
p_finish:
        li      r1, 'P'
        sb      r1, SERIAL(r0)
        li      r1, '\n'
        sb      r1, SERIAL(r0)
        halt

consumer:
        li      r4, 1
c_loop:
c_wait:
        li      r1, MUTEX
        call    mutex_lock
        pld     r5, FLAG(r0)
        li      r1, MUTEX
        call    mutex_unlock
        beq     r5, r4, c_got
        call    kyield
        jmp     c_wait
c_got:
        pst     r4, ACK(r0)
        andi    r1, r4, 7
        addi    r1, r1, 'a'
        sb      r1, SERIAL(r0)
        inc     r4
        li      r1, NITER
        ble     r4, r1, c_loop

; Check the message: XOR all words, fold 32 bits down to 8 so every single
; bit flip in the buffer is visible, and emit two base-16 characters.
        li      r4, 0
        li      r5, 0
c_sum:
        shli    r3, r4, 2
        addi    r3, r3, MSGBUF
        lw      r2, 0(r3)
        xor     r5, r5, r2
        inc     r4
        li      r1, MSGLEN/4
        blt     r4, r1, c_sum
        shri    r1, r5, 16
        xor     r5, r5, r1
        shri    r1, r5, 8
        xor     r5, r5, r1
        shri    r1, r5, 4
        andi    r1, r1, 15
        addi    r1, r1, 'A'
        sb      r1, SERIAL(r0)
        andi    r1, r5, 15
        addi    r1, r1, 'A'
        sb      r1, SERIAL(r0)
        li      r2, 1
        pst     r2, DONE(r0)
c_idle:
        call    kyield
        jmp     c_idle
`
	return Spec{
		Name:           fmt.Sprintf("sync2(n=%d,buf=%d)", niter, msgLen),
		BaselineSrc:    l.prologue(l.baselineRAM(), niter, false) + body + kernelAsm,
		HardenedSrc:    l.prologue(l.hardenedRAM(), niter, true) + body + kernelAsm,
		HardenedTMRSrc: l.prologue(l.hardenedRAM(), niter, false) + body + kernelAsm,
		DMR:            l.dmr(),
		DataAddrs:      []int64{0, int64(msgLen / 2)},
	}
}

func alignUp(v, to int) int {
	if r := v % to; r != 0 {
		return v + to - r
	}
	return v
}
