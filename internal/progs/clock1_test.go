package progs

import (
	"strings"
	"testing"
)

func TestClock1GoldenOutput(t *testing.T) {
	for _, cfg := range []struct {
		nticks int
		period uint64
	}{{1, 64}, {4, 64}, {6, 128}, {3, 40}} {
		spec := Clock1(cfg.nticks, cfg.period)
		for _, hardened := range []bool{false, true} {
			p := buildVariant(t, spec, hardened)
			g := goldenOf(t, p)
			out := string(g.Serial)
			wantTicks := strings.Repeat("t", cfg.nticks)
			if !strings.HasPrefix(out, wantTicks) || strings.Count(out, "t") != cfg.nticks {
				t.Errorf("%s: output %q, want exactly %d ticks", p.Name, out, cfg.nticks)
			}
			if !strings.HasSuffix(out, "P\n") {
				t.Errorf("%s: output %q does not end in P", p.Name, out)
			}
			// ticks + 2 checksum chars + "P\n".
			if len(out) != cfg.nticks+4 {
				t.Errorf("%s: output length %d, want %d", p.Name, len(out), cfg.nticks+4)
			}
		}
	}
}

func TestClock1VariantsAgree(t *testing.T) {
	spec := Clock1(5, 64)
	gb := goldenOf(t, buildVariant(t, spec, false))
	gh := goldenOf(t, buildVariant(t, spec, true))
	if string(gb.Serial) != string(gh.Serial) {
		t.Errorf("baseline %q != hardened %q", gb.Serial, gh.Serial)
	}
	if gh.Cycles <= gb.Cycles {
		t.Error("hardened clock1 must be slower")
	}
}

func TestClock1PeriodClamp(t *testing.T) {
	p := buildVariant(t, Clock1(2, 1), false)
	if p.TimerPeriod < 32 {
		t.Errorf("period = %d, want clamped to >= 32", p.TimerPeriod)
	}
}

func TestClock1RuntimeScalesWithTicks(t *testing.T) {
	prev := uint64(0)
	for _, n := range []int{1, 4, 8} {
		g := goldenOf(t, buildVariant(t, Clock1(n, 64), false))
		if g.Cycles <= prev {
			t.Errorf("n=%d: cycles %d did not grow past %d", n, g.Cycles, prev)
		}
		prev = g.Cycles
	}
}
