package progs

import (
	"fmt"
	"sort"
)

// Sizes parameterizes the built-in benchmark registry.
type Sizes struct {
	BinSemRounds  int    // bin_sem2 ping-pong rounds (default 4)
	SyncRounds    int    // sync2 handshakes (default 3)
	SyncBufBytes  int    // sync2 message-buffer size (default 64)
	ClockTicks    int    // clock1 timer ticks to await (default 6)
	ClockPeriod   uint64 // clock1 timer period in cycles (default 64)
	MboxMessages  int    // mbox1 messages to pass (default 6)
	PreemptWork   int    // preempt1 work units per thread (default 40)
	PreemptPeriod uint64 // preempt1 timer period in cycles (default 48)
	SortElements  int    // sort1 array elements (default 12)
}

func (s Sizes) withDefaults() Sizes {
	if s.BinSemRounds == 0 {
		s.BinSemRounds = 4
	}
	if s.SyncRounds == 0 {
		s.SyncRounds = 3
	}
	if s.SyncBufBytes == 0 {
		s.SyncBufBytes = 64
	}
	if s.ClockTicks == 0 {
		s.ClockTicks = 6
	}
	if s.ClockPeriod == 0 {
		s.ClockPeriod = 64
	}
	if s.MboxMessages == 0 {
		s.MboxMessages = 6
	}
	if s.PreemptWork == 0 {
		s.PreemptWork = 40
	}
	if s.PreemptPeriod == 0 {
		s.PreemptPeriod = 48
	}
	if s.SortElements == 0 {
		s.SortElements = 12
	}
	return s
}

// Resolve returns the benchmark Spec registered under name (see Names).
func Resolve(name string, sizes Sizes) (Spec, error) {
	sizes = sizes.withDefaults()
	switch name {
	case "hi":
		return Hi(), nil
	case "bin_sem2", "binsem2":
		return BinSem2(sizes.BinSemRounds), nil
	case "sync2":
		return Sync2(sizes.SyncRounds, sizes.SyncBufBytes), nil
	case "clock1":
		return Clock1(sizes.ClockTicks, sizes.ClockPeriod), nil
	case "mbox1":
		return Mbox1(sizes.MboxMessages), nil
	case "preempt1":
		return Preempt1(sizes.PreemptWork, sizes.PreemptPeriod), nil
	case "sort1":
		return Sort1(sizes.SortElements), nil
	default:
		return Spec{}, fmt.Errorf("progs: unknown benchmark %q (have: %v)", name, Names())
	}
}

// Names lists the registered benchmark names.
func Names() []string {
	names := []string{"hi", "bin_sem2", "sync2", "clock1", "mbox1", "preempt1", "sort1"}
	sort.Strings(names)
	return names
}
