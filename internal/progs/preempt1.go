package progs

import (
	"fmt"

	"faultspace/internal/harden"
)

// Preempt1 returns the preempt1 benchmark: two compute threads multiplexed
// purely by a timer-interrupt-driven scheduler — no cooperative yields
// anywhere. The ISR saves the full register file (including the interrupt
// return PC via rdspc/wrspc) into a per-thread protected context, flips
// the current thread id and resumes the other thread.
//
// Each thread XOR-folds a distinct hash sequence into an accumulator,
// publishes it through a protected result word and raises its done flag;
// thread 0 finally prints both folded results. Preemption points are
// arbitrary (any instruction boundary), so the benchmark exercises the
// fault tolerance of a *full* context: every live register of a preempted
// thread spends its suspension inside the protected ICTX area.
//
// The hardening scratch registers r11/r12 can be live at an interrupt
// point (inside a pld/pst expansion of the hardened variant), so the ISR
// preserves them through plain per-thread save slots before its own
// protected accesses clobber them.
func Preempt1(nwork int, period uint64) Spec {
	if nwork < 1 {
		nwork = 1
	}
	if period < 48 {
		// The hardened ISR takes ~120 cycles; shorter periods would make
		// the schedule thrash without exercising more behavior.
		period = 48
	}
	const (
		// Unprotected ISR scratch: 2 shared temp words + 2 per-thread
		// r11/r12 save slots.
		itmpA    = 0
		itmpB    = 4
		isrSv0   = 8
		isrSv1   = 16
		protBase = 24
		protWds  = 36
		replOf   = protWds * 4
		chkOf    = 2 * protWds * 4
	)
	baseRAM := protBase + protWds*4
	hardRAM := protBase + 3*protWds*4

	src := func(ram int, hardened bool) string {
		checkInit := ""
		if hardened {
			checkInit = fmt.Sprintf("        .data\n        .org    %d\n", protBase+chkOf)
			for i := 0; i < protWds; i++ {
				checkInit += "        .word   -1\n"
			}
			checkInit += "        .text\n"
		}
		return fmt.Sprintf(`
        .ram    %d
        .equ    SERIAL, 0x10000
        .equ    NWORK,  %d
        .equ    ITMPA,  %d
        .equ    ITMPB,  %d
        .equ    ISRSV0, %d
        .equ    ISRSV1, %d
        .equ    PROT,    %d
        .equ    CURTID,  PROT+0
        .equ    ITMP,    PROT+4
        .equ    DONE0,   PROT+8
        .equ    DONE1,   PROT+12
        .equ    RESULT0, PROT+16
        .equ    RESULT1, PROT+20
        .equ    ICTX0,   PROT+24        ; 14 words: r1-r10, r13, sp, lr, pc
        .equ    ICTX1,   PROT+80
        .timer  %d, isr
%s
        .text
start:
        pst     r0, CURTID(r0)
        pst     r0, DONE0(r0)
        pst     r0, DONE1(r0)
        li      r1, thread1
        pst     r1, ICTX1+52(r0)        ; thread 1 starts at its entry
        pst     r0, ICTX1+0(r0)
        pst     r0, ICTX1+4(r0)
        pst     r0, ICTX1+8(r0)
        pst     r0, ICTX1+12(r0)
        pst     r0, ICTX1+16(r0)
        pst     r0, ICTX1+20(r0)
        pst     r0, ICTX1+24(r0)
        pst     r0, ICTX1+28(r0)
        pst     r0, ICTX1+32(r0)
        pst     r0, ICTX1+36(r0)
        pst     r0, ICTX1+40(r0)
        pst     r0, ICTX1+44(r0)
        pst     r0, ICTX1+48(r0)

; ---- thread 0 body ----
        li      r4, 0
        li      r5, 0
t0_loop:
        li      r2, 0x9E3779B9
        mul     r2, r4, r2
        xor     r5, r5, r2
        inc     r4
        li      r1, NWORK
        blt     r4, r1, t0_loop
        pst     r5, RESULT0(r0)
        li      r2, 1
        pst     r2, DONE0(r0)
t0_wait:
        pld     r2, DONE1(r0)
        beq     r2, r0, t0_wait
        pld     r5, RESULT0(r0)
        call    emit_fold
        pld     r5, RESULT1(r0)
        call    emit_fold
        li      r1, 'P'
        sb      r1, SERIAL(r0)
        li      r1, '\n'
        sb      r1, SERIAL(r0)
        halt

; emit_fold: fold r5 to 8 bits and print two base-16 chars. Clobbers r1.
emit_fold:
        shri    r1, r5, 16
        xor     r5, r5, r1
        shri    r1, r5, 8
        xor     r5, r5, r1
        shri    r1, r5, 4
        andi    r1, r1, 15
        addi    r1, r1, 'A'
        sb      r1, SERIAL(r0)
        andi    r1, r5, 15
        addi    r1, r1, 'A'
        sb      r1, SERIAL(r0)
        ret

; ---- thread 1 body ----
thread1:
        li      r4, 0
        li      r5, 0
t1_loop:
        li      r2, 0x85EBCA6B
        mul     r2, r4, r2
        xor     r5, r5, r2
        inc     r4
        li      r1, NWORK
        blt     r4, r1, t1_loop
        pst     r5, RESULT1(r0)
        li      r2, 1
        pst     r2, DONE1(r0)
t1_idle:
        jmp     t1_idle

; ---- preemptive scheduler ISR ----
; Save the full context of the current thread (absolute addressing, no
; free base register required), flip CURTID, restore the other thread and
; resume it via wrspc + sret.
isr:
        sw      r11, ITMPA(r0)          ; plain saves: pst would clobber r11
        sw      r12, ITMPB(r0)
        pst     r1, ITMP(r0)
        pld     r1, CURTID(r0)
        bne     r1, r0, isr_sv1
isr_sv0:
        pst     r2, ICTX0+4(r0)
        pst     r3, ICTX0+8(r0)
        pst     r4, ICTX0+12(r0)
        pst     r5, ICTX0+16(r0)
        pst     r6, ICTX0+20(r0)
        pst     r7, ICTX0+24(r0)
        pst     r8, ICTX0+28(r0)
        pst     r9, ICTX0+32(r0)
        pst     r10, ICTX0+36(r0)
        pst     r13, ICTX0+40(r0)
        pst     sp, ICTX0+44(r0)
        pst     lr, ICTX0+48(r0)
        pld     r2, ITMP(r0)
        pst     r2, ICTX0+0(r0)
        rdspc   r2
        pst     r2, ICTX0+52(r0)
        lw      r2, ITMPA(r0)
        sw      r2, ISRSV0+0(r0)
        lw      r2, ITMPB(r0)
        sw      r2, ISRSV0+4(r0)
        jmp     isr_switch
isr_sv1:
        pst     r2, ICTX1+4(r0)
        pst     r3, ICTX1+8(r0)
        pst     r4, ICTX1+12(r0)
        pst     r5, ICTX1+16(r0)
        pst     r6, ICTX1+20(r0)
        pst     r7, ICTX1+24(r0)
        pst     r8, ICTX1+28(r0)
        pst     r9, ICTX1+32(r0)
        pst     r10, ICTX1+36(r0)
        pst     r13, ICTX1+40(r0)
        pst     sp, ICTX1+44(r0)
        pst     lr, ICTX1+48(r0)
        pld     r2, ITMP(r0)
        pst     r2, ICTX1+0(r0)
        rdspc   r2
        pst     r2, ICTX1+52(r0)
        lw      r2, ITMPA(r0)
        sw      r2, ISRSV1+0(r0)
        lw      r2, ITMPB(r0)
        sw      r2, ISRSV1+4(r0)
isr_switch:
        xori    r1, r1, 1
        pst     r1, CURTID(r0)
        bne     r1, r0, isr_ld1
isr_ld0:
        pld     r2, ICTX0+52(r0)
        wrspc   r2
        pld     r2, ICTX0+4(r0)
        pld     r3, ICTX0+8(r0)
        pld     r4, ICTX0+12(r0)
        pld     r5, ICTX0+16(r0)
        pld     r6, ICTX0+20(r0)
        pld     r7, ICTX0+24(r0)
        pld     r8, ICTX0+28(r0)
        pld     r9, ICTX0+32(r0)
        pld     r10, ICTX0+36(r0)
        pld     r13, ICTX0+40(r0)
        pld     sp, ICTX0+44(r0)
        pld     lr, ICTX0+48(r0)
        pld     r1, ICTX0+0(r0)
        lw      r11, ISRSV0+0(r0)       ; plain: after the last pld
        lw      r12, ISRSV0+4(r0)
        sret
isr_ld1:
        pld     r2, ICTX1+52(r0)
        wrspc   r2
        pld     r2, ICTX1+4(r0)
        pld     r3, ICTX1+8(r0)
        pld     r4, ICTX1+12(r0)
        pld     r5, ICTX1+16(r0)
        pld     r6, ICTX1+20(r0)
        pld     r7, ICTX1+24(r0)
        pld     r8, ICTX1+28(r0)
        pld     r9, ICTX1+32(r0)
        pld     r10, ICTX1+36(r0)
        pld     r13, ICTX1+40(r0)
        pld     sp, ICTX1+44(r0)
        pld     lr, ICTX1+48(r0)
        pld     r1, ICTX1+0(r0)
        lw      r11, ISRSV1+0(r0)
        lw      r12, ISRSV1+4(r0)
        sret
`, ram, nwork, itmpA, itmpB, isrSv0, isrSv1, protBase, period, checkInit)
	}

	return Spec{
		Name:           fmt.Sprintf("preempt1(n=%d,p=%d)", nwork, period),
		BaselineSrc:    src(baseRAM, false),
		HardenedSrc:    src(hardRAM, true),
		HardenedTMRSrc: src(hardRAM, false),
		DMR:            harden.SumDMR{ReplicaOffset: replOf, CheckOffset: chkOf},
		DataAddrs:      []int64{protBase, protBase + 16},
	}
}
