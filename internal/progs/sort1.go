package progs

import (
	"fmt"

	"faultspace/internal/harden"
)

// Sort1 returns the sort1 benchmark: a data-processing workload rather
// than a kernel test. It fills an n-word array with pseudo-random values,
// bubble-sorts it in place, verifies sortedness (aborting via the
// detected-unrecoverable port on violation) and emits an order-sensitive
// checksum of the result.
//
// The entire array is protected data: every element access in the sort's
// inner loop goes through pld/pst, so the SUM+DMR variant pays the
// mechanism's overhead on the hottest path — the worst case for a
// duplication scheme — while in exchange covering all of the program's
// long-lived state. Array elements have the longest lifetimes of any
// benchmark here (untouched elements wait through entire sort passes),
// which makes the baseline especially susceptible.
func Sort1(n int) Spec {
	if n < 2 {
		n = 2
	}
	if n > 64 {
		n = 64
	}
	protWds := n + 2 // array + 2 pad words
	const protBase = 0
	replOf := int64(protWds * 4)
	chkOf := 2 * replOf
	baseRAM := protBase + protWds*4
	hardRAM := protBase + 3*protWds*4

	src := func(ram int, hardened bool) string {
		checkInit := ""
		if hardened {
			checkInit = fmt.Sprintf("        .data\n        .org    %d\n", protBase+int(chkOf))
			for i := 0; i < protWds; i++ {
				checkInit += "        .word   -1\n"
			}
			checkInit += "        .text\n"
		}
		return fmt.Sprintf(`
        .ram    %d
        .equ    SERIAL, 0x10000
        .equ    ABORT,  0x1000C
        .equ    N,      %d
        .equ    ARR,    %d
%s
        .text
start:
; Fill the array with a pseudo-random permutation-ish sequence.
        li      r4, 0
fill:
        li      r2, 0x9E3779B9
        mul     r2, r4, r2
        addi    r2, r2, 0x2545F
        shli    r3, r4, 2
        addi    r3, r3, ARR
        pst     r2, 0(r3)
        inc     r4
        li      r1, N
        blt     r4, r1, fill

; Bubble sort (unsigned ascending): the classic O(n^2) element churn.
        li      r4, 0                   ; i
outer:
        li      r5, 0                   ; j
inner:
        shli    r3, r5, 2
        addi    r3, r3, ARR
        pld     r6, 0(r3)
        pld     r7, 4(r3)
        bleu    r6, r7, noswap
        pst     r7, 0(r3)
        pst     r6, 4(r3)
noswap:
        inc     r5
        li      r1, N-1
        sub     r1, r1, r4
        blt     r5, r1, inner
        inc     r4
        li      r1, N-1
        blt     r4, r1, outer

; Verify sortedness and emit an order-sensitive rotating-XOR checksum.
        li      r4, 0
        li      r5, 0
check:
        shli    r3, r4, 2
        addi    r3, r3, ARR
        pld     r6, 0(r3)
        beq     r4, r0, first
        bltu    r6, r7, unsorted
first:
        mov     r7, r6
        shli    r1, r5, 1
        shri    r2, r5, 31
        or      r5, r1, r2
        xor     r5, r5, r6
        inc     r4
        li      r1, N
        blt     r4, r1, check
        shri    r1, r5, 16
        xor     r5, r5, r1
        shri    r1, r5, 8
        xor     r5, r5, r1
        shri    r1, r5, 4
        andi    r1, r1, 15
        addi    r1, r1, 'A'
        sb      r1, SERIAL(r0)
        andi    r1, r5, 15
        addi    r1, r1, 'A'
        sb      r1, SERIAL(r0)
        li      r1, 'P'
        sb      r1, SERIAL(r0)
        li      r1, '\n'
        sb      r1, SERIAL(r0)
        halt
unsorted:
        li      r1, '!'
        sb      r1, SERIAL(r0)
        sw      r0, ABORT(r0)
        halt
`, ram, n, protBase, checkInit)
	}

	return Spec{
		Name:           fmt.Sprintf("sort1(n=%d)", n),
		BaselineSrc:    src(baseRAM, false),
		HardenedSrc:    src(hardRAM, true),
		HardenedTMRSrc: src(hardRAM, false),
		DMR:            harden.SumDMR{ReplicaOffset: replOf, CheckOffset: chkOf},
		DataAddrs:      []int64{protBase, protBase + int64(n/2)*4},
	}
}
