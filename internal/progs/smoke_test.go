package progs

import (
	"testing"

	"faultspace/internal/asm"
	"faultspace/internal/machine"
	"faultspace/internal/trace"
)

func goldenOf(t *testing.T, p *asm.Program) *trace.Golden {
	t.Helper()
	cfg := machine.Config{
		RAMSize:     p.RAMSize,
		TimerPeriod: p.TimerPeriod,
		TimerVector: p.TimerVector,
	}
	g, err := trace.Record(p.Name, cfg, p.Code, p.Image, 1<<20)
	if err != nil {
		t.Fatalf("golden run of %s: %v", p.Name, err)
	}
	return g
}

func TestSmokeGoldenRuns(t *testing.T) {
	specs := []Spec{Hi(), BinSem2(4), Sync2(3, 64), Clock1(6, 64), Mbox1(6), Preempt1(40, 48), Sort1(12)}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			bp, err := spec.Baseline()
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			bg := goldenOf(t, bp)
			t.Logf("%s: cycles=%d ram=%dB output=%q accesses=%d",
				bp.Name, bg.Cycles, bp.RAMSize, bg.Serial, len(bg.Accesses))

			hp, err := spec.Hardened()
			if err != nil {
				t.Fatalf("hardened: %v", err)
			}
			hg := goldenOf(t, hp)
			t.Logf("%s: cycles=%d ram=%dB output=%q accesses=%d",
				hp.Name, hg.Cycles, hp.RAMSize, hg.Serial, len(hg.Accesses))

			if string(bg.Serial) != string(hg.Serial) {
				t.Errorf("baseline and hardened outputs differ: %q vs %q", bg.Serial, hg.Serial)
			}
		})
	}
}
