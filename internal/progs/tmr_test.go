package progs

import "testing"

// TestTMRGoldenOutputsMatchBaseline: the TMR variant of every benchmark
// must be behavior-preserving, like SUM+DMR.
func TestTMRGoldenOutputsMatchBaseline(t *testing.T) {
	specs := []Spec{
		BinSem2(4), Sync2(3, 64), Mbox1(6), Clock1(6, 64), Preempt1(40, 48), Sort1(12),
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			base := buildVariant(t, spec, false)
			tmr, err := spec.HardenedTMR()
			if err != nil {
				t.Fatal(err)
			}
			gb := goldenOf(t, base)
			gt := goldenOf(t, tmr)
			if string(gb.Serial) != string(gt.Serial) {
				t.Errorf("TMR output %q != baseline %q", gt.Serial, gb.Serial)
			}
			if gt.Cycles <= gb.Cycles {
				t.Error("TMR must cost runtime")
			}
			// Interrupt-driven benchmarks may race an ISR against a
			// mid-flight protected update; the mechanisms resolve that
			// with a (benign) correction even in fault-free runs.
			if gt.Corrects != 0 && tmr.TimerPeriod == 0 {
				t.Errorf("TMR golden run signalled %d phantom corrections", gt.Corrects)
			}
		})
	}
}

// TestMechanismCostIsWorkloadDependent documents the cost relationship of
// the two mechanisms as implemented: TMR's store is one instruction
// shorter and its region check skips the checksum arithmetic, so it is
// cheaper on the pchk- and store-heavy kernel benchmarks — but its load
// fast path is 5 cycles against SUM+DMR's 3, so SUM+DMR wins on the
// load-dominated sort1.
func TestMechanismCostIsWorkloadDependent(t *testing.T) {
	cheaper := func(spec Spec) bool {
		t.Helper()
		dmr := buildVariant(t, spec, true)
		tmr, err := spec.HardenedTMR()
		if err != nil {
			t.Fatal(err)
		}
		return goldenOf(t, tmr).Cycles < goldenOf(t, dmr).Cycles
	}
	for _, spec := range []Spec{BinSem2(4), Sync2(3, 64), Mbox1(6)} {
		if !cheaper(spec) {
			t.Errorf("%s: TMR should be cheaper than SUM+DMR on kernel workloads", spec.Name)
		}
	}
	if cheaper(Sort1(12)) {
		t.Error("sort1: SUM+DMR should be cheaper than TMR on load-heavy workloads")
	}
}

func TestTMRUnavailableForHi(t *testing.T) {
	if _, err := Hi().HardenedTMR(); err == nil {
		t.Error("hi has no protected data; TMR must be rejected")
	}
}
