package progs

import (
	"sort"
	"strings"
	"testing"
)

// expectedSort1Output mirrors the program: fill, sort ascending (unsigned),
// rotate-XOR checksum, fold, two base-16 chars, "P\n".
func expectedSort1Output(n int) string {
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(i)*0x9E3779B9 + 0x2545F
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	var x uint32
	for _, v := range vals {
		x = (x<<1 | x>>31) ^ v
	}
	x ^= x >> 16
	x ^= x >> 8
	return string([]byte{byte('A' + (x>>4)&15), byte('A' + x&15)}) + "P\n"
}

func TestSort1GoldenOutput(t *testing.T) {
	for _, n := range []int{2, 5, 12, 24} {
		spec := Sort1(n)
		want := expectedSort1Output(n)
		for _, hardened := range []bool{false, true} {
			p := buildVariant(t, spec, hardened)
			g := goldenOf(t, p)
			if string(g.Serial) != want {
				t.Errorf("%s hardened=%v: output %q, want %q", spec.Name, hardened, g.Serial, want)
			}
		}
	}
}

func TestSort1SortsAndVerifies(t *testing.T) {
	// The golden run must pass its own sortedness check: no '!' abort.
	g := goldenOf(t, buildVariant(t, Sort1(16), false))
	if strings.Contains(string(g.Serial), "!") {
		t.Errorf("golden run failed its own verification: %q", g.Serial)
	}
}

func TestSort1Clamps(t *testing.T) {
	small := buildVariant(t, Sort1(0), false)
	if string(goldenOf(t, small).Serial) != expectedSort1Output(2) {
		t.Error("n < 2 must clamp to 2")
	}
	big := buildVariant(t, Sort1(1000), false)
	if string(goldenOf(t, big).Serial) != expectedSort1Output(64) {
		t.Error("n > 64 must clamp to 64")
	}
}

func TestSort1QuadraticRuntime(t *testing.T) {
	g8 := goldenOf(t, buildVariant(t, Sort1(8), false))
	g24 := goldenOf(t, buildVariant(t, Sort1(24), false))
	// 3x the elements, ~9x the inner-loop work: runtime must grow clearly
	// superlinearly.
	if g24.Cycles < 4*g8.Cycles {
		t.Errorf("runtime not quadratic-ish: n=8 -> %d, n=24 -> %d", g8.Cycles, g24.Cycles)
	}
}
