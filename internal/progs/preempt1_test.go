package progs

import (
	"strings"
	"testing"
)

// expectedPreempt1Output mirrors the two compute threads: XOR-fold of
// their respective hash sequences, printed as two base-16 pairs.
func expectedPreempt1Output(nwork int) string {
	fold := func(mult uint32) string {
		var x uint32
		for i := 0; i < nwork; i++ {
			x ^= uint32(i) * mult
		}
		x ^= x >> 16
		x ^= x >> 8
		return string([]byte{byte('A' + (x>>4)&15), byte('A' + x&15)})
	}
	return fold(0x9E3779B9) + fold(0x85EBCA6B) + "P\n"
}

func TestPreempt1GoldenOutput(t *testing.T) {
	for _, nwork := range []int{1, 10, 40, 100} {
		spec := Preempt1(nwork, 48)
		want := expectedPreempt1Output(nwork)
		for _, hardened := range []bool{false, true} {
			p := buildVariant(t, spec, hardened)
			g := goldenOf(t, p)
			if string(g.Serial) != want {
				t.Errorf("%s: output %q, want %q", p.Name, g.Serial, want)
			}
		}
	}
}

// TestPreempt1PeriodInvariance is the crucial preemption property: the
// computed RESULT values must not depend on where the timer slices the
// threads. Any context-switch bug (a register lost across preemption)
// breaks this immediately.
func TestPreempt1PeriodInvariance(t *testing.T) {
	want := expectedPreempt1Output(60)
	for _, period := range []uint64{48, 53, 64, 97, 131, 1024} {
		for _, hardened := range []bool{false, true} {
			p := buildVariant(t, Preempt1(60, period), hardened)
			g := goldenOf(t, p)
			if string(g.Serial) != want {
				t.Errorf("period %d hardened=%v: output %q, want %q",
					period, hardened, g.Serial, want)
			}
		}
	}
}

func TestPreempt1ThreadsActuallyInterleave(t *testing.T) {
	// With a short period, thread 1 must run long before thread 0's
	// wait loop: compare against a period so long that thread 0 finishes
	// its compute loop before the first switch. Both must still agree on
	// the output (the point of the benchmark), but the number of ISR
	// activations — visible through the access trace size — must differ
	// substantially.
	short := goldenOf(t, buildVariant(t, Preempt1(60, 48), false))
	long := goldenOf(t, buildVariant(t, Preempt1(60, 1024), false))
	if string(short.Serial) != string(long.Serial) {
		t.Fatal("outputs differ across periods")
	}
	if len(short.Accesses) <= len(long.Accesses) {
		t.Errorf("short period (%d accesses) should context-switch more than long (%d)",
			len(short.Accesses), len(long.Accesses))
	}
}

func TestPreempt1Clamps(t *testing.T) {
	p := buildVariant(t, Preempt1(0, 1), false)
	if p.TimerPeriod < 48 {
		t.Errorf("period = %d, want clamped", p.TimerPeriod)
	}
	g := goldenOf(t, p)
	if !strings.HasSuffix(string(g.Serial), "P\n") {
		t.Errorf("clamped run output %q", g.Serial)
	}
}
