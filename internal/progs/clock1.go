package progs

import (
	"fmt"

	"faultspace/internal/harden"
)

// Clock1 returns the clock1 benchmark: an interrupt-driven port in the
// spirit of the eCos clock kernel tests. A deterministic timer interrupt
// fires every `period` cycles; its handler increments a protected tick
// counter. The main program churns through a small unprotected work buffer
// while polling the tick counter, emits one 't' per observed tick until
// nticks have passed, then prints the buffer checksum and "P\n".
//
// The benchmark exercises the machine model's deterministic external
// events (§II-C: interrupts replayed at the exact same cycle in every
// run): golden runs, def/use pruning and fault-injection campaigns all
// work unchanged with asynchronous handler activity.
//
// Clock-specific fault surface: the tick counter and its shadow are
// protected (SUM+DMR expandable); the work buffer and the ISR register
// spill slots are not.
func Clock1(nticks int, period uint64) Spec {
	if nticks < 1 {
		nticks = 1
	}
	if period < 32 {
		// The hardened ISR takes ~25 cycles; shorter periods would starve
		// the main program.
		period = 32
	}
	const (
		workLen   = 32
		isrSave   = workLen
		protBase  = isrSave + 12
		protWds   = 4
		replicaOf = protWds * 4
		checkOf   = 2 * protWds * 4
	)
	baseRAM := protBase + protWds*4
	hardRAM := protBase + 3*protWds*4

	src := func(ram int, hardened bool) string {
		checkInit := ""
		if hardened {
			checkInit = fmt.Sprintf("        .data\n        .org    %d\n        .word   -1, -1, -1, -1\n        .text\n",
				protBase+checkOf)
		}
		return fmt.Sprintf(`
        .ram    %d
        .equ    SERIAL, 0x10000
        .equ    NTICKS, %d
        .equ    WORKBUF, 0
        .equ    WORKLEN, %d
        .equ    ISRSAVE, %d
        .equ    PROT,  %d
        .equ    TICKS, PROT+0
        .equ    LAST,  PROT+4
        .timer  %d, isr
%s
        .text
start:
        pst     r0, TICKS(r0)
        pst     r0, LAST(r0)

; Fill the (unprotected) work buffer once; it is read back at the end.
        li      r4, 0
fill:
        li      r2, 31
        mul     r2, r4, r2
        addi    r2, r2, 7
        addi    r3, r4, WORKBUF
        sb      r2, 0(r3)
        inc     r4
        li      r1, WORKLEN
        blt     r4, r1, fill

; Main loop: one unit of busy work per iteration, then poll the tick
; counter maintained by the interrupt handler.
        li      r4, 0                   ; work index
        li      r5, 0                   ; scratch accumulator
        li      r6, 0                   ; ticks observed
poll:
        andi    r3, r4, WORKLEN-1
        addi    r3, r3, WORKBUF
        lb      r2, 0(r3)
        xor     r5, r5, r2
        inc     r4
        pld     r2, TICKS(r0)
        pld     r3, LAST(r0)
        beq     r2, r3, poll_next
        pst     r2, LAST(r0)
        li      r1, 't'
        sb      r1, SERIAL(r0)
        inc     r6
poll_next:
        li      r1, NTICKS
        blt     r6, r1, poll

; Read the whole buffer back and emit its XOR checksum, then finish.
        li      r4, 0
        li      r5, 0
sum:
        addi    r3, r4, WORKBUF
        lb      r2, 0(r3)
        xor     r5, r5, r2
        inc     r4
        li      r1, WORKLEN
        blt     r4, r1, sum
        shri    r1, r5, 4
        andi    r1, r1, 15
        addi    r1, r1, 'A'
        sb      r1, SERIAL(r0)
        andi    r1, r5, 15
        addi    r1, r1, 'A'
        sb      r1, SERIAL(r0)
        li      r1, 'P'
        sb      r1, SERIAL(r0)
        li      r1, '\n'
        sb      r1, SERIAL(r0)
        halt

; Timer interrupt handler: spill the clobbered registers (including the
; hardening scratch registers), bump the protected tick counter, return.
isr:
        sw      r1, ISRSAVE+0(r0)
        sw      r11, ISRSAVE+4(r0)
        sw      r12, ISRSAVE+8(r0)
        pld     r1, TICKS(r0)
        inc     r1
        pst     r1, TICKS(r0)
        lw      r12, ISRSAVE+8(r0)
        lw      r11, ISRSAVE+4(r0)
        lw      r1, ISRSAVE+0(r0)
        sret
`, ram, nticks, workLen, isrSave, protBase, period, checkInit)
	}

	return Spec{
		Name:           fmt.Sprintf("clock1(n=%d,p=%d)", nticks, period),
		BaselineSrc:    src(baseRAM, false),
		HardenedSrc:    src(hardRAM, true),
		HardenedTMRSrc: src(hardRAM, false),
		DMR:            harden.SumDMR{ReplicaOffset: replicaOf, CheckOffset: checkOf},
		DataAddrs:      []int64{0, workLen / 2},
	}
}
