package progs

import "fmt"

// BinSem2 returns the bin_sem2 benchmark: a port of the eCos kernel test
// of the same name. Two threads ping-pong through a pair of binary
// semaphores; the worker thread increments a shared counter and the main
// thread verifies its progression every round, so corrupted kernel state
// or counters surface as output deviations.
//
// All kernel state (semaphores, current-thread id, saved thread contexts,
// the shared counter) is long-lived protected data — the kind of data the
// SUM+DMR mechanism of the paper's data set targets. There is no large
// unprotected long-lived buffer, which is why hardening genuinely pays off
// for this benchmark (Figure 2e: bin_sem2 improves).
//
// niter is the number of ping-pong rounds (the paper's runs used the eCos
// default; pick 3-8 to keep full fault-space scans fast). Values below 1
// are clamped to 1.
func BinSem2(niter int) Spec {
	if niter < 1 {
		niter = 1
	}
	l := kernelLayout{
		MsgBufAddr: 0,
		MsgLen:     niter, // one logged byte per round
		Stack0Top:  alignUp(niter, 4) + 16,
		Stack1Top:  alignUp(niter, 4) + 32,
		ProtBase:   alignUp(niter, 4) + 32,
	}
	body := `
        .text
start:
        li      sp, STACK0_TOP
        pst     r0, CURTID(r0)
        pst     r0, SEM0(r0)
        pst     r0, SEM1(r0)
        pst     r0, COUNTER(r0)
        pst     r0, DONE(r0)
        li      r1, thread1
        call    ctx1_init

        li      r4, 0                   ; r4 = round counter
main_loop:
        li      r1, SEM0
        call    sem_post                ; hand the ball to the worker
        li      r1, SEM1
        call    sem_wait                ; wait until the worker is done
        pld     r2, COUNTER(r0)
        addi    r3, r4, 1
        bne     r2, r3, fail            ; counter must have advanced once
        andi    r1, r4, 7
        addi    r1, r1, 'a'
        sb      r1, SERIAL(r0)
        addi    r3, r4, MSGBUF          ; log the round marker; the log is
        sb      r1, 0(r3)               ; unprotected application data
        inc     r4
        li      r1, NITER
        blt     r4, r1, main_loop
wait_done:
        pld     r2, DONE(r0)
        bne     r2, r0, replay
        call    kyield
        jmp     wait_done
replay:                                 ; echo the round log
        li      r4, 0
rp_loop:
        addi    r3, r4, MSGBUF
        lb      r1, 0(r3)
        sb      r1, SERIAL(r0)
        inc     r4
        li      r1, NITER
        blt     r4, r1, rp_loop
        li      r1, 'P'
        sb      r1, SERIAL(r0)
        li      r1, '\n'
        sb      r1, SERIAL(r0)
        halt
fail:
        li      r1, '!'
        sb      r1, SERIAL(r0)
        halt

thread1:
        li      r4, 0
t1_loop:
        li      r1, SEM0
        call    sem_wait
        pld     r2, COUNTER(r0)
        inc     r2
        pst     r2, COUNTER(r0)
        andi    r1, r4, 7
        addi    r1, r1, 'A'
        sb      r1, SERIAL(r0)
        li      r1, SEM1
        call    sem_post
        inc     r4
        li      r1, NITER
        blt     r4, r1, t1_loop
        li      r2, 1
        pst     r2, DONE(r0)
t1_idle:
        call    kyield
        jmp     t1_idle
`
	return Spec{
		Name:           fmt.Sprintf("bin_sem2(n=%d)", niter),
		BaselineSrc:    l.prologue(l.baselineRAM(), niter, false) + body + kernelAsm,
		HardenedSrc:    l.prologue(l.hardenedRAM(), niter, true) + body + kernelAsm,
		HardenedTMRSrc: l.prologue(l.hardenedRAM(), niter, false) + body + kernelAsm,
		DMR:            l.dmr(),
		DataAddrs:      []int64{int64(l.ProtBase), int64(l.ProtBase + 24)},
	}
}
