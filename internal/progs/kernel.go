package progs

import (
	"fmt"

	"faultspace/internal/harden"
)

// The kernel keeps all of its state — current thread id, semaphore and
// mutex words, shared test variables, per-thread register spill slots, and
// the two saved thread contexts — in one contiguous "protected" region of
// protWords words. Protected words are accessed exclusively through
// pld/pst, and every kernel entry (kyield) runs a pchk whole-region check,
// so the SUM+DMR variant replicates and scrubs exactly this region:
//
//	[ProtBase, ProtBase+176)      primaries (44 words)
//	[ProtBase+176, ProtBase+352)  replicas   (hardened variant only)
//	[ProtBase+352, ProtBase+528)  checksums  (hardened variant only)
const (
	protWords     = 44
	protBytes     = protWords * 4
	replicaOffset = protBytes
	checkOffset   = 2 * protBytes

	// mboxCap is the mailbox capacity in messages (a power of two).
	mboxCap = 4
)

// kernelLayout fixes the RAM layout of a kernel benchmark.
type kernelLayout struct {
	MsgBufAddr int // start of the unprotected message buffer (sync2)
	MsgLen     int // buffer length in bytes (0 = no buffer)
	Stack0Top  int // initial stack pointer of thread 0 (main)
	Stack1Top  int // initial stack pointer of thread 1
	ProtBase   int // start of the protected region
}

func (l kernelLayout) baselineRAM() int { return l.ProtBase + protBytes }
func (l kernelLayout) hardenedRAM() int { return l.ProtBase + 3*protBytes }

// dmr returns the SUM+DMR configuration matching this layout.
func (l kernelLayout) dmr() harden.SumDMR {
	return harden.SumDMR{
		ReplicaOffset: replicaOffset,
		CheckOffset:   checkOffset,
		RegionBase:    int64(l.ProtBase),
		RegionWords:   protWords,
	}
}

// prologue emits the .ram directive and the .equ constants shared by all
// kernel benchmarks. niter is the benchmark's iteration count. For the
// hardened variant it also initializes the checksum region to the one's
// complement of the zeroed primaries, so fresh (never-stored) protected
// words are already consistent and pchk does not scrub phantom errors.
func (l kernelLayout) prologue(ramBytes, niter int, hardened bool) string {
	checkInit := ""
	if hardened {
		checkInit = fmt.Sprintf("\n        .data\n        .org    %d\n", l.ProtBase+checkOffset)
		for i := 0; i < protWords; i++ {
			checkInit += "        .word   -1\n"
		}
		checkInit += "        .text\n"
	}
	return fmt.Sprintf(`
        .ram    %d
        .equ    SERIAL,  0x10000
        .equ    NITER,   %d
        .equ    MSGBUF,  %d
        .equ    MSGLEN,  %d
        .equ    STACK0_TOP, %d
        .equ    STACK1_TOP, %d

; Protected kernel region (primaries). The SUM+DMR variant keeps a replica
; of every word at +%d and its one's-complement checksum at +%d.
        .equ    PROT,    %d
        .equ    CURTID,  PROT+0
        .equ    SEM0,    PROT+4
        .equ    SEM1,    PROT+8
        .equ    MUTEX,   PROT+12
        .equ    FLAG,    PROT+16
        .equ    ACK,     PROT+20
        .equ    COUNTER, PROT+24
        .equ    DONE,    PROT+28
        .equ    CONDSEQ, PROT+32
        .equ    SPILL0,  PROT+36        ; 2 words: per-thread lr/arg spill
        .equ    SPILL1,  PROT+44
        .equ    CTX0,    PROT+52        ; 9 words: saved thread context
        .equ    CTX1,    PROT+88
        .equ    CTXSZ,   36
        .equ    SPILLB0, PROT+124       ; 2 words: mailbox-call spill
        .equ    SPILLB1, PROT+132
        .equ    MB_HEAD, PROT+140       ; mailbox: ring indices,
        .equ    MB_TAIL, PROT+144       ; counting semaphores and slots
        .equ    MB_FREE, PROT+148
        .equ    MB_USED, PROT+152
        .equ    MB_SLOTS, PROT+156      ; %d message words
        .equ    MB_CAP,  %d
%s`, ramBytes, niter, l.MsgBufAddr, l.MsgLen, l.Stack0Top, l.Stack1Top,
		replicaOffset, checkOffset, l.ProtBase, mboxCap, mboxCap, checkInit)
}

// kernelAsm implements the cooperative two-thread kernel:
//
//	kyield        switch to the other thread (checks the protected region)
//	sem_wait      P() on the semaphore whose address is in r1
//	sem_post      V() on the semaphore at r1
//	mutex_lock    acquire the mutex at r1 (spins with kyield)
//	mutex_unlock  release the mutex at r1
//	ctx1_init     prepare thread 1 to start at the address in r1
//
// Register conventions: r1-r3 are caller-saved scratch/argument registers,
// r4-r10 are callee-saved (preserved across kyield and the blocking calls),
// r11/r12 are reserved for the hardening expansions, r14 = sp, r15 = lr.
//
// Blocking calls spill lr and their argument into the per-thread protected
// SPILL slots instead of a RAM stack: those values live across the whole
// blocked period — precisely the "critical data with long lifetimes" the
// paper's SUM+DMR library targets.
//
// kyield stores the caller-visible context into the protected CTX slot of
// the current thread and restores the other thread's context, including lr,
// so a blocked thread resumes exactly after its kyield call site. On entry
// it executes pchk: the GOP-style whole-region verification that gives the
// hardened variant its (faithful) runtime overhead and scrubs latent
// errors.
const kernelAsm = `
; --------------------------------------------------------------------
; fav32 cooperative threading kernel (two threads)
; --------------------------------------------------------------------
kyield:
        pchk                            ; verify/scrub protected region
        pld     r1, CURTID(r0)
        li      r2, CTXSZ
        mul     r2, r1, r2
        addi    r2, r2, CTX0
        pst     r4, 0(r2)
        pst     r5, 4(r2)
        pst     r6, 8(r2)
        pst     r7, 12(r2)
        pst     r8, 16(r2)
        pst     r9, 20(r2)
        pst     r10, 24(r2)
        pst     sp, 28(r2)
        pst     lr, 32(r2)
        xori    r1, r1, 1
        pst     r1, CURTID(r0)
        li      r2, CTXSZ
        mul     r2, r1, r2
        addi    r2, r2, CTX0
        pld     r4, 0(r2)
        pld     r5, 4(r2)
        pld     r6, 8(r2)
        pld     r7, 12(r2)
        pld     r8, 16(r2)
        pld     r9, 20(r2)
        pld     r10, 24(r2)
        pld     sp, 28(r2)
        pld     lr, 32(r2)
        ret

; ctx1_init: set up thread 1 to start at the address in r1 with a fresh
; stack. Clobbers r2, r3.
ctx1_init:
        li      r2, CTX1
        pst     r0, 0(r2)
        pst     r0, 4(r2)
        pst     r0, 8(r2)
        pst     r0, 12(r2)
        pst     r0, 16(r2)
        pst     r0, 20(r2)
        pst     r0, 24(r2)
        li      r3, STACK1_TOP
        pst     r3, 28(r2)
        pst     r1, 32(r2)
        ret

; spill_base (inlined pattern): r2 <- SPILL0 + 8*CURTID

; sem_wait: P() on the semaphore at address r1. Blocks cooperatively.
; Clobbers r1-r3. Like every kernel entry it verifies the protected region
; (pchk) before touching kernel state.
sem_wait:
        pld     r2, CURTID(r0)
        shli    r2, r2, 3
        addi    r2, r2, SPILL0
        pst     lr, 0(r2)
        pst     r1, 4(r2)
        pchk
        jmp     sw_reload
sw_block:
        call    kyield
sw_reload:
        pld     r2, CURTID(r0)
        shli    r2, r2, 3
        addi    r2, r2, SPILL0
        pld     r1, 4(r2)
        pld     r3, 0(r1)
        blt     r0, r3, sw_take
        jmp     sw_block
sw_take:
        addi    r3, r3, -1
        pst     r3, 0(r1)
        pld     r2, CURTID(r0)
        shli    r2, r2, 3
        addi    r2, r2, SPILL0
        pld     lr, 0(r2)
        ret

; sem_post: V() on the semaphore at address r1. Clobbers r2.
sem_post:
        pld     r2, 0(r1)
        inc     r2
        pst     r2, 0(r1)
        ret

; mutex_lock: acquire the mutex at address r1; the owner field holds
; 1 + thread id. Blocks cooperatively. Clobbers r1-r3.
mutex_lock:
        pld     r2, CURTID(r0)
        shli    r2, r2, 3
        addi    r2, r2, SPILL0
        pst     lr, 0(r2)
        pst     r1, 4(r2)
        pchk
        jmp     ml_reload
ml_block:
        call    kyield
ml_reload:
        pld     r2, CURTID(r0)
        shli    r2, r2, 3
        addi    r2, r2, SPILL0
        pld     r1, 4(r2)
        pld     r2, 0(r1)
        beq     r2, r0, ml_take
        jmp     ml_block
ml_take:
        pld     r3, CURTID(r0)
        inc     r3
        pst     r3, 0(r1)
        pld     r2, CURTID(r0)
        shli    r2, r2, 3
        addi    r2, r2, SPILL0
        pld     lr, 0(r2)
        ret

; mutex_unlock: release the mutex at address r1.
mutex_unlock:
        pst     r0, 0(r1)
        ret

; mbox_init: empty the mailbox (free = MB_CAP, used = 0). Clobbers r2.
mbox_init:
        pst     r0, MB_HEAD(r0)
        pst     r0, MB_TAIL(r0)
        li      r2, MB_CAP
        pst     r2, MB_FREE(r0)
        pst     r0, MB_USED(r0)
        ret

; mbox_put: enqueue the message word in r1; blocks while the mailbox is
; full. Clobbers r1-r3. The message and lr live in the per-thread SPILLB
; slots across the blocking wait (sem_wait owns the primary SPILL slots).
mbox_put:
        pld     r2, CURTID(r0)
        shli    r2, r2, 3
        addi    r2, r2, SPILLB0
        pst     lr, 0(r2)
        pst     r1, 4(r2)
        li      r1, MB_FREE
        call    sem_wait
        pld     r2, CURTID(r0)
        shli    r2, r2, 3
        addi    r2, r2, SPILLB0
        pld     r3, 4(r2)               ; the message
        pld     r1, MB_TAIL(r0)
        andi    r2, r1, MB_CAP-1
        shli    r2, r2, 2
        addi    r2, r2, MB_SLOTS
        pst     r3, 0(r2)
        inc     r1
        pst     r1, MB_TAIL(r0)
        li      r1, MB_USED
        call    sem_post
        pld     r2, CURTID(r0)
        shli    r2, r2, 3
        addi    r2, r2, SPILLB0
        pld     lr, 0(r2)
        ret

; mbox_get: dequeue a message into r1; blocks while the mailbox is empty.
; Clobbers r1-r3.
mbox_get:
        pld     r2, CURTID(r0)
        shli    r2, r2, 3
        addi    r2, r2, SPILLB0
        pst     lr, 0(r2)
        li      r1, MB_USED
        call    sem_wait
        pld     r1, MB_HEAD(r0)
        andi    r2, r1, MB_CAP-1
        shli    r2, r2, 2
        addi    r2, r2, MB_SLOTS
        pld     r3, 0(r2)               ; the message
        inc     r1
        pst     r1, MB_HEAD(r0)
        li      r1, MB_FREE
        call    sem_post                ; r3 survives: sem_post clobbers r2 only
        pld     r2, CURTID(r0)
        shli    r2, r2, 3
        addi    r2, r2, SPILLB0
        pld     lr, 0(r2)
        mov     r1, r3
        ret
`
