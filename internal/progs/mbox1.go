package progs

import "fmt"

// Mbox1 returns the mbox1 benchmark: a port of the eCos mailbox kernel
// test. The main thread produces niter message words through a bounded
// (4-slot) mailbox; a consumer thread drains them, verifies the expected
// sequence, accumulates a checksum and emits one character per message.
// The producer deliberately bursts ahead of the consumer, so both the
// mailbox-full and mailbox-empty blocking paths execute.
//
// All mailbox state — ring indices, counting semaphores and the message
// slots themselves — is protected kernel data (eCos keeps messages inside
// the kernel mailbox object), so SUM+DMR covers the full message path;
// the only unprotected long-lived data is the consumer's expectation
// word... which is register-resident. mbox1 therefore behaves like
// bin_sem2 under hardening: a genuine improvement.
func Mbox1(niter int) Spec {
	if niter < 1 {
		niter = 1
	}
	l := kernelLayout{
		Stack0Top: 16,
		Stack1Top: 32,
		ProtBase:  32,
	}
	body := `
        .text
start:
        li      sp, STACK0_TOP
        pst     r0, CURTID(r0)
        pst     r0, DONE(r0)
        pst     r0, COUNTER(r0)
        call    mbox_init
        li      r1, consumer
        call    ctx1_init

; Produce niter messages: msg_i = 2654435769*i + 97. The mailbox holds
; MB_CAP messages, so the producer blocks once it bursts ahead.
        li      r4, 0
p_loop:
        li      r2, 0x9E3779B9
        mul     r2, r4, r2
        addi    r1, r2, 97
        call    mbox_put
        inc     r4
        li      r1, NITER
        blt     r4, r1, p_loop
p_wait_done:
        pld     r2, DONE(r0)
        bne     r2, r0, p_finish
        call    kyield
        jmp     p_wait_done
p_finish:
        pld     r2, COUNTER(r0)         ; consumer's message count
        li      r3, NITER
        bne     r2, r3, p_fail
        li      r1, 'P'
        sb      r1, SERIAL(r0)
        li      r1, '\n'
        sb      r1, SERIAL(r0)
        halt
p_fail:
        li      r1, '!'
        sb      r1, SERIAL(r0)
        halt

consumer:
        li      r4, 0                   ; message index
        li      r5, 0                   ; running xor of received messages
c_loop:
        call    mbox_get                ; message -> r1
        xor     r5, r5, r1
        ; verify the expected value; any deviation aborts visibly
        li      r2, 0x9E3779B9
        mul     r2, r4, r2
        addi    r2, r2, 97
        bne     r1, r2, c_fail
        andi    r1, r4, 7
        addi    r1, r1, 'a'
        sb      r1, SERIAL(r0)
        pld     r2, COUNTER(r0)
        inc     r2
        pst     r2, COUNTER(r0)
        inc     r4
        li      r1, NITER
        blt     r4, r1, c_loop
; Emit the folded xor of everything received.
        shri    r1, r5, 16
        xor     r5, r5, r1
        shri    r1, r5, 8
        xor     r5, r5, r1
        shri    r1, r5, 4
        andi    r1, r1, 15
        addi    r1, r1, 'A'
        sb      r1, SERIAL(r0)
        andi    r1, r5, 15
        addi    r1, r1, 'A'
        sb      r1, SERIAL(r0)
        li      r2, 1
        pst     r2, DONE(r0)
c_idle:
        call    kyield
        jmp     c_idle
c_fail:
        li      r1, '!'
        sb      r1, SERIAL(r0)
        li      r1, 0x10000+12          ; PortAbort: detected, unrecoverable
        sw      r0, 0(r1)
        halt
`
	return Spec{
		Name:           fmt.Sprintf("mbox1(n=%d)", niter),
		BaselineSrc:    l.prologue(l.baselineRAM(), niter, false) + body + kernelAsm,
		HardenedSrc:    l.prologue(l.hardenedRAM(), niter, true) + body + kernelAsm,
		HardenedTMRSrc: l.prologue(l.hardenedRAM(), niter, false) + body + kernelAsm,
		DMR:            l.dmr(),
		DataAddrs:      []int64{int64(l.ProtBase), int64(l.ProtBase + 140)},
	}
}
