package progs

import (
	"fmt"
	"strings"
	"testing"

	"faultspace/internal/asm"
)

// expectedBinSem2Output computes the reference output of bin_sem2: per
// round the worker emits 'A'+i, the main thread 'a'+i (i mod 8), then the
// round log is replayed and "P\n" ends the run.
func expectedBinSem2Output(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(byte('A' + i&7))
		sb.WriteByte(byte('a' + i&7))
	}
	for i := 0; i < n; i++ {
		sb.WriteByte(byte('a' + i&7))
	}
	sb.WriteString("P\n")
	return sb.String()
}

// expectedSync2Output computes the reference output of sync2: the consumer
// emits 'a'+i for i = 1..n, then the buffer checksum as two base-16 chars,
// then the producer's "P\n".
func expectedSync2Output(n, msgLen int) string {
	var sb strings.Builder
	for i := 1; i <= n; i++ {
		sb.WriteByte(byte('a' + i&7))
	}
	// Replicate the fill + XOR + fold pipeline.
	var x uint32
	for i := 0; i < msgLen/4; i++ {
		x ^= uint32(i)*0x9E3779B9 + 0x1234567
	}
	x ^= x >> 16
	x ^= x >> 8
	sb.WriteByte(byte('A' + (x>>4)&15))
	sb.WriteByte(byte('A' + x&15))
	sb.WriteString("P\n")
	return sb.String()
}

func TestBinSem2GoldenOutput(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6} {
		spec := BinSem2(n)
		want := expectedBinSem2Output(n)
		for _, hardened := range []bool{false, true} {
			p := buildVariant(t, spec, hardened)
			g := goldenOf(t, p)
			if string(g.Serial) != want {
				t.Errorf("%s n=%d: output %q, want %q", p.Name, n, g.Serial, want)
			}
		}
	}
}

func TestSync2GoldenOutput(t *testing.T) {
	for _, cfg := range []struct{ n, buf int }{{1, 4}, {2, 32}, {3, 64}, {4, 128}} {
		spec := Sync2(cfg.n, cfg.buf)
		want := expectedSync2Output(cfg.n, cfg.buf)
		for _, hardened := range []bool{false, true} {
			p := buildVariant(t, spec, hardened)
			g := goldenOf(t, p)
			if string(g.Serial) != want {
				t.Errorf("%s: output %q, want %q", p.Name, g.Serial, want)
			}
		}
	}
}

func buildVariant(t *testing.T, spec Spec, hardened bool) *asm.Program {
	t.Helper()
	build := spec.Baseline
	if hardened {
		build = spec.Hardened
	}
	p, err := build()
	if err != nil {
		t.Fatalf("build %s (hardened=%v): %v", spec.Name, hardened, err)
	}
	return p
}

func TestHardeningCostsRuntimeAndMemory(t *testing.T) {
	for _, spec := range []Spec{BinSem2(3), Sync2(2, 32)} {
		base := buildVariant(t, spec, false)
		hard := buildVariant(t, spec, true)
		gb := goldenOf(t, base)
		gh := goldenOf(t, hard)
		if gh.Cycles <= gb.Cycles {
			t.Errorf("%s: hardened cycles %d <= baseline %d", spec.Name, gh.Cycles, gb.Cycles)
		}
		if hard.RAMSize != base.RAMSize+2*protBytes {
			t.Errorf("%s: hardened RAM %d, want baseline %d + %d",
				spec.Name, hard.RAMSize, base.RAMSize, 2*protBytes)
		}
		// The hardened golden run must not signal any corrections: there
		// are no faults to correct, and phantom scrubs would bias the
		// outcome classifier.
		if gh.Corrects != 0 || gh.Detects != 0 {
			t.Errorf("%s: golden hardened run signalled %d detects / %d corrects",
				spec.Name, gh.Detects, gh.Corrects)
		}
	}
}

func TestClampedParameters(t *testing.T) {
	// Degenerate parameters are clamped, not rejected: both loops are
	// do-while shaped, so one round is the minimum meaningful workload.
	for _, spec := range []Spec{BinSem2(0), BinSem2(-3)} {
		p := buildVariant(t, spec, false)
		g := goldenOf(t, p)
		if string(g.Serial) != expectedBinSem2Output(1) {
			t.Errorf("%s: output %q, want clamp to n=1", spec.Name, g.Serial)
		}
	}
	p := buildVariant(t, Sync2(0, 0), false)
	g := goldenOf(t, p)
	if string(g.Serial) != expectedSync2Output(1, 4) {
		t.Errorf("sync2 clamp: output %q, want %q", g.Serial, expectedSync2Output(1, 4))
	}
	// Odd buffer sizes round up to words.
	p = buildVariant(t, Sync2(2, 30), false)
	g = goldenOf(t, p)
	if string(g.Serial) != expectedSync2Output(2, 32) {
		t.Errorf("sync2 align: output %q, want %q", g.Serial, expectedSync2Output(2, 32))
	}
}

func TestRuntimeScalesWithRounds(t *testing.T) {
	prev := uint64(0)
	for _, n := range []int{1, 3, 6} {
		p := buildVariant(t, BinSem2(n), false)
		g := goldenOf(t, p)
		if g.Cycles <= prev {
			t.Errorf("n=%d: cycles %d did not grow past %d", n, g.Cycles, prev)
		}
		prev = g.Cycles
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		spec, err := Resolve(name, Sizes{})
		if err != nil {
			t.Errorf("Resolve(%q): %v", name, err)
			continue
		}
		if spec.Name == "" || spec.BaselineSrc == "" {
			t.Errorf("Resolve(%q): incomplete spec", name)
		}
	}
	if _, err := Resolve("nonsense", Sizes{}); err == nil {
		t.Error("unknown benchmark must be rejected")
	}
	spec, err := Resolve("sync2", Sizes{SyncRounds: 5, SyncBufBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != fmt.Sprintf("sync2(n=%d,buf=%d)", 5, 16) {
		t.Errorf("sizes not applied: %s", spec.Name)
	}
}

func TestVariantNaming(t *testing.T) {
	spec := BinSem2(2)
	base := buildVariant(t, spec, false)
	hard := buildVariant(t, spec, true)
	if !strings.HasSuffix(base.Name, "/baseline") {
		t.Errorf("baseline name = %q", base.Name)
	}
	if !strings.HasSuffix(hard.Name, "/sum+dmr") {
		t.Errorf("hardened name = %q", hard.Name)
	}
}
