package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"faultspace/internal/telemetry/promtest"
)

// TestWritePrometheusSetsValidates renders a multi-set snapshot through
// the grammar-validating parser: mangled names, per-set labels with
// characters needing escaping, counter/gauge/histogram typing and the
// cumulative-bucket contract must all hold.
func TestWritePrometheusSetsValidates(t *testing.T) {
	r := New()
	r.Counter("scan.experiments").Add(7)
	r.Gauge("fleet.stragglers").Set(2)
	h := r.Histogram("cluster.lease_duration")
	h.Observe(3 * time.Microsecond)
	h.Observe(90 * time.Millisecond)
	h.Observe(1000 * time.Hour) // lands in the unbounded overflow bucket

	r2 := New()
	r2.Counter("scan.experiments").Add(9)

	var buf bytes.Buffer
	err := WritePrometheusSets(&buf, []MetricSet{
		{Labels: map[string]string{"campaign": "abc", "tenant": `ali"ce\n`}, Snap: r.Snapshot()},
		{Labels: map[string]string{"campaign": "def"}, Snap: r2.Snapshot()},
	})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := promtest.Validate(buf.Bytes())
	if err != nil {
		t.Fatalf("rendered exposition does not validate: %v\n%s", err, buf.String())
	}
	if doc.Types["faultspace_scan_experiments_total"] != "counter" ||
		doc.Types["faultspace_fleet_stragglers"] != "gauge" ||
		doc.Types["faultspace_cluster_lease_duration_seconds"] != "histogram" {
		t.Errorf("TYPE declarations wrong: %v", doc.Types)
	}
	// One series per set, distinguished by labels; the escaped tenant
	// value survives the round trip.
	var sum float64
	var sawTenant bool
	for _, s := range doc.Samples {
		if s.Name == "faultspace_scan_experiments_total" {
			sum += s.Value
			if s.Labels["tenant"] == `ali"ce\n` {
				sawTenant = true
			}
		}
	}
	if sum != 16 {
		t.Errorf("experiments series sum to %g, want 16 across both sets", sum)
	}
	if !sawTenant {
		t.Error("escaped tenant label value did not survive parse")
	}
	// The unbounded overflow observation must be folded into +Inf, which
	// the validator pins to _count — assert it carried all 3 observations.
	for _, s := range doc.Samples {
		if s.Name == "faultspace_cluster_lease_duration_seconds_bucket" && s.Labels["le"] == "+Inf" {
			if s.Value != 3 {
				t.Errorf("+Inf bucket = %g, want 3 (overflow folded in)", s.Value)
			}
		}
	}

	// A single empty snapshot renders an empty-but-valid document.
	buf.Reset()
	if err := WritePrometheus(&buf, Snapshot{}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := promtest.Validate(buf.Bytes()); err != nil {
		t.Errorf("empty snapshot exposition invalid: %v", err)
	}
	if strings.TrimSpace(buf.String()) != "" {
		t.Errorf("empty snapshot rendered %q, want nothing", buf.String())
	}
}

// TestPromNameMangling pins the registry-name → metric-name mapping the
// dashboards depend on.
func TestPromNameMangling(t *testing.T) {
	cases := map[string]string{
		"scan.experiments":     "faultspace_scan_experiments",
		"memo.hits":            "faultspace_memo_hits",
		"fork.children":        "faultspace_fork_children",
		"weird-name+x":         "faultspace_weird_name_x",
		"cluster.worker.ready": "faultspace_cluster_worker_ready",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := promLabelName("9lives"); got != "_lives" {
		t.Errorf("label name starting with a digit: %q, want _lives", got)
	}
}
