//go:build unix

package telemetry

import "syscall"

// cpuTimes returns the process's user and system CPU seconds consumed
// so far (self, all threads).
func cpuTimes() (user, system float64) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, 0
	}
	toSecs := func(tv syscall.Timeval) float64 {
		return float64(tv.Sec) + float64(tv.Usec)/1e6
	}
	return toSecs(ru.Utime), toSecs(ru.Stime)
}
