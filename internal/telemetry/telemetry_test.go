package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Error("same name must return the same counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	if c != nil {
		t.Fatal("nil registry must hand out nil counters")
	}
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter must read 0")
	}
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(time.Second)
	r.EnableTrace(8)
	r.Trace("e", "d")
	r.Tracef("e", "%d", 1)
	if tr := r.Tracer(); tr != nil {
		t.Error("nil registry must have no tracer")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

// TestDisabledPathAllocFree is the hard half of the zero-overhead
// contract: the nil-registry fast path must not allocate, on any
// instrument or the tracer. (BenchmarkTelemetryOverhead measures the
// time side; allocations are the deterministic assertion.)
func TestDisabledPathAllocFree(t *testing.T) {
	var r *Registry
	if n := testing.AllocsPerRun(100, func() {
		c := r.Counter("scan.experiments")
		c.Inc()
		c.Add(2)
		_ = c.Value()
		r.Gauge("g").Add(1)
		r.Histogram("h").Observe(time.Millisecond)
		r.Trace("event", "detail")
		r.Tracer().Emit("event", "detail")
		// The span layer honors the same contract: a nil recorder's Start
		// returns the inert zero ActiveSpan (no clock read), and every
		// other method is a single-branch no-op.
		rec := r.SpanRecorder()
		sp := rec.Start("scan.run")
		if sp.Live() {
			t.Fatal("nil recorder span must not be live")
		}
		sp.End("detail")
		rec.Record("x", "", time.Time{}, 0)
		rec.Add(Span{})
		_ = rec.Drain()
		_ = rec.Dropped()
		_ = rec.Spans()
	}); n != 0 {
		t.Errorf("disabled telemetry path allocates %.1f times per op, want 0", n)
	}
}

func TestHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("d")
	h.Observe(500 * time.Nanosecond) // bucket <1us
	h.Observe(3 * time.Microsecond)  // bucket <4us
	h.Observe(3 * time.Microsecond)
	h.Observe(90 * time.Millisecond) // large bucket
	s := r.Snapshot().Histograms["d"]
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	wantSum := int64(500 + 3000 + 3000 + 90e6)
	if s.SumNs != wantSum {
		t.Errorf("sum = %d, want %d", s.SumNs, wantSum)
	}
	if s.MinNs != 500 || s.MaxNs != int64(90e6) {
		t.Errorf("min/max = %d/%d, want 500/%d", s.MinNs, s.MaxNs, int64(90e6))
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 4 {
		t.Errorf("bucket counts sum to %d, want 4", total)
	}
	// The two 3us observations share the <4us bucket.
	found := false
	for _, b := range s.Buckets {
		if b.LeUs == 4 && b.Count == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("3us observations not in the <4us bucket: %+v", s.Buckets)
	}
}

func TestHistogramBucketIndex(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{999 * time.Nanosecond, 0},          // <1us
		{time.Microsecond, 1},               // <2us
		{3 * time.Microsecond, 2},           // <4us
		{1000 * time.Hour, histBuckets - 1}, // clamped to overflow
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(time.Duration(j) * time.Microsecond)
				r.Trace("e", "")
			}
		}()
	}
	r.EnableTrace(64)
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestTracerRingBuffer(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 10; i++ {
		tr.Emitf("e", "n=%d", i)
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	for i, e := range ev {
		wantSeq := uint64(7 + i)
		if e.Seq != wantSeq {
			t.Errorf("event %d: seq = %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Detail != fmt.Sprintf("n=%d", wantSeq) {
			t.Errorf("event %d: detail = %q", i, e.Detail)
		}
	}
	if got := tr.Dropped(); got != 6 {
		t.Errorf("dropped = %d, want 6", got)
	}
}

func TestTracerJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit("lease.granted", "unit 3 to w1")
	tr.Emit("scan.finish", "")
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		lines++
	}
	if lines != 2 {
		t.Errorf("wrote %d JSONL lines, want 2", lines)
	}
}

func TestSnapshotNames(t *testing.T) {
	r := New()
	r.Counter("b.two").Inc()
	r.Counter("a.one").Inc()
	r.Histogram("z").Observe(time.Millisecond)
	r.Histogram("m").Observe(time.Millisecond)
	s := r.Snapshot()
	cn := s.CounterNames()
	if len(cn) != 2 || cn[0] != "a.one" || cn[1] != "b.two" {
		t.Errorf("CounterNames = %v", cn)
	}
	hn := s.HistogramNames()
	if len(hn) != 2 || hn[0] != "m" || hn[1] != "z" {
		t.Errorf("HistogramNames = %v", hn)
	}
}

func TestManifestWriteFile(t *testing.T) {
	r := New()
	r.EnableTrace(16)
	r.Counter("scan.experiments").Add(42)
	r.Trace("scan.finish", "done")
	m := &Manifest{
		Tool:      "favscan",
		StartedAt: time.Now().Add(-time.Second),
		Benchmark: "bin_sem2",
		Identity:  "deadbeef",
		Space:     "memory",
		Strategy:  "ladder",
		Classes:   10,
		Workers:   2,
	}
	m.Finish(r)
	if m.WallSeconds <= 0 {
		t.Error("WallSeconds must be positive")
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if back.Telemetry.Counters["scan.experiments"] != 42 {
		t.Errorf("round-tripped counter = %d, want 42", back.Telemetry.Counters["scan.experiments"])
	}
	if len(back.Events) != 1 || back.Events[0].Name != "scan.finish" {
		t.Errorf("round-tripped events = %+v", back.Events)
	}
}

// BenchmarkTelemetryOverhead compares the instrumented hot-path
// operations with telemetry disabled (nil registry) and enabled. The
// disabled variant is the number that matters: it must be within noise
// of doing nothing at all, which is what admits always-on call sites in
// the scan strategies. Run by `make check` with a fixed iteration count.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, r *Registry) {
		c := r.Counter("scan.experiments")
		h := r.Histogram("scan.outcome.no_effect")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
			var t0 time.Time
			if h != nil {
				t0 = time.Now()
			}
			if h != nil {
				h.Observe(time.Since(t0))
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("enabled", func(b *testing.B) { run(b, New()) })
}
