// Package telemetry is the campaign observability layer: named atomic
// counters, gauges and duration histograms in a Registry, plus a bounded
// ring-buffer event tracer (tracer.go) and an exportable run manifest
// (manifest.go). Stdlib only.
//
// The package is built around one non-negotiable constraint: telemetry
// must never perturb campaign results and must cost nothing when it is
// off. Every method on every type is nil-safe — a nil *Registry hands
// out nil instruments, and operations on nil instruments are single-
// branch no-ops with zero allocations (the nil-registry fast path,
// DESIGN.md §4d). Instrumented code therefore never guards call sites:
//
//	var tel *telemetry.Registry            // nil: telemetry off
//	c := tel.Counter("scan.experiments")   // nil Counter
//	c.Inc()                                // no-op, no alloc
//
// The only pattern that needs an explicit guard is timing, because the
// time.Now() read itself must be skipped when telemetry is off:
//
//	var t0 time.Time
//	if h != nil {
//		t0 = time.Now()
//	}
//	... work ...
//	if h != nil {
//		h.Observe(time.Since(t0))
//	}
//
// Instruments are cheap to re-look-up but call sites on hot paths should
// resolve them once and hold the pointers, as the scan strategies do.
package telemetry

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a named set of counters, gauges and histograms, optionally
// carrying an event Tracer. A nil *Registry is the disabled state: it
// hands out nil instruments and empty snapshots. A Registry is safe for
// concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	tracer     *Tracer
	spans      *SpanRecorder
}

// New creates an empty enabled registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. On a nil registry it returns nil, which is itself a valid
// no-op counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Nil-safe like Counter.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the duration histogram registered under name,
// creating it on first use. Nil-safe like Counter.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to
// use; a nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of a Histogram: bucket i counts
// observations with microseconds < 2^i (the last bucket is unbounded),
// spanning 1µs to ~35minutes in powers of two — wide enough for fsync
// latencies and whole-experiment runtimes alike.
const histBuckets = 32

// Histogram records durations into fixed exponential buckets with
// atomic count/sum/min/max, so concurrent Observe calls need no lock.
// The zero value is ready to use; a nil *Histogram is a no-op.
type Histogram struct {
	count atomic.Uint64
	sum   atomic.Int64 // nanoseconds
	// min holds min-nanoseconds+1 so 0 can mean "no observation yet"
	// without a seeding race between concurrent first observers.
	min     atomic.Int64
	max     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Uint64
}

// bucketIndex maps a duration to its bucket: the smallest i with
// microseconds < 2^i, clamped to the last (unbounded) bucket.
func bucketIndex(d time.Duration) int {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	i := bits.Len64(uint64(us)) // us < 2^Len64(us), and Len64(0) == 0
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.min.Load()
		if cur != 0 && ns+1 >= cur {
			break
		}
		if h.min.CompareAndSwap(cur, ns+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.buckets[bucketIndex(d)].Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot is a point-in-time copy of a registry's instruments,
// JSON-serializable for the /debug/telemetry endpoint and the run
// manifest. Maps are nil when empty so a zero Snapshot marshals small.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is the exported state of one Histogram. Bucket
// upper bounds are in microseconds; only non-empty buckets appear.
// P50Ns/P95Ns/P99Ns are quantile estimates interpolated from the
// exponential buckets (see Quantile) — estimates, not exact order
// statistics, but within one power-of-two bucket of the truth.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	SumNs   int64    `json:"sum_ns"`
	MinNs   int64    `json:"min_ns"`
	MaxNs   int64    `json:"max_ns"`
	P50Ns   int64    `json:"p50_ns,omitempty"`
	P95Ns   int64    `json:"p95_ns,omitempty"`
	P99Ns   int64    `json:"p99_ns,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile (0 < q < 1) in nanoseconds by
// linear interpolation inside the exponential bucket holding the rank.
// Bucket i spans [2^(i-1), 2^i) microseconds, so the estimate is off by
// at most the bucket width; Min/Max clamp the first and last buckets to
// the observed extremes. Returns 0 on an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(s.MinNs)
	}
	if q >= 1 {
		return time.Duration(s.MaxNs)
	}
	rank := q * float64(s.Count)
	var cum uint64
	for _, b := range s.Buckets {
		prev := cum
		cum += b.Count
		if float64(cum) < rank {
			continue
		}
		// Bucket bounds in nanoseconds: LeUs is the exclusive upper bound
		// in µs; the lower bound is the previous power of two (0 for the
		// first bucket, where sub-µs observations land). The unbounded
		// overflow bucket (LeUs == 0) tops out at the observed max.
		lower, upper := float64(0), float64(s.MaxNs)
		if b.LeUs > 1 {
			lower = float64(b.LeUs) / 2 * 1e3
		}
		if b.LeUs > 0 {
			upper = float64(b.LeUs) * 1e3
		}
		if lower < float64(s.MinNs) {
			lower = float64(s.MinNs)
		}
		if upper > float64(s.MaxNs) {
			upper = float64(s.MaxNs)
		}
		if upper < lower {
			upper = lower
		}
		pos := (rank - float64(prev)) / float64(b.Count)
		return time.Duration(lower + pos*(upper-lower))
	}
	return time.Duration(s.MaxNs)
}

// Bucket is one non-empty histogram bucket: N observations with
// microseconds < LeUs (the last bucket of a histogram is unbounded and
// reported with LeUs = 0).
type Bucket struct {
	LeUs  uint64 `json:"le_us"`
	Count uint64 `json:"n"`
}

// snapshot copies one histogram.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		SumNs: h.sum.Load(),
		MaxNs: h.max.Load(),
	}
	if v := h.min.Load(); v > 0 {
		s.MinNs = v - 1
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		b := Bucket{LeUs: 1 << uint(i), Count: n}
		if i == histBuckets-1 {
			b.LeUs = 0 // unbounded overflow bucket
		}
		s.Buckets = append(s.Buckets, b)
	}
	s.P50Ns = int64(s.Quantile(0.50))
	s.P95Ns = int64(s.Quantile(0.95))
	s.P99Ns = int64(s.Quantile(0.99))
	return s
}

// Snapshot returns a copy of every instrument's current value. On a nil
// registry it returns the zero Snapshot. The copy is not atomic across
// instruments — counters keep counting while it is taken — but each
// individual value is a consistent atomic read.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// CounterNames returns the registered counter names in sorted order —
// the stable iteration order reports use.
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// GaugeNames returns the registered gauge names in sorted order.
func (s Snapshot) GaugeNames() []string {
	names := make([]string, 0, len(s.Gauges))
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns the registered histogram names in sorted order.
func (s Snapshot) HistogramNames() []string {
	names := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
