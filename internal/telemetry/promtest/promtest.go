// Package promtest implements a validating parser for the Prometheus
// text exposition format (version 0.0.4), used by tests to prove the
// /metrics surfaces emit grammatically correct output. It is a checker,
// not a scrape client: it enforces the line grammar, name and label
// syntax, TYPE declarations, and histogram-series consistency
// (monotone cumulative buckets, mandatory +Inf equal to _count).
package promtest

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed metric sample.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Document is the parsed form of one exposition payload.
type Document struct {
	Types   map[string]string // metric name → counter|gauge|histogram|summary|untyped
	Samples []Sample
}

// Validate parses and validates an exposition payload, returning the
// parsed document or the first grammar violation.
func Validate(payload []byte) (*Document, error) {
	doc := &Document{Types: make(map[string]string)}
	sampled := make(map[string]bool) // base names that already emitted samples
	for i, line := range strings.Split(string(payload), "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(doc, sampled, line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		sampled[baseName(doc, s.Name)] = true
		doc.Samples = append(doc.Samples, s)
	}
	if err := doc.checkHistograms(); err != nil {
		return nil, err
	}
	return doc, nil
}

func parseComment(doc *Document, sampled map[string]bool, line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, kind := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		switch kind {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", kind)
		}
		if _, dup := doc.Types[name]; dup {
			return fmt.Errorf("duplicate TYPE line for %q", name)
		}
		if sampled[name] {
			return fmt.Errorf("TYPE line for %q after its samples", name)
		}
		doc.Types[name] = kind
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: make(map[string]string)}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 && brace < strings.IndexByte(rest+" ", ' ') {
		nameEnd = brace
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return s, fmt.Errorf("sample %q has no value", line)
		}
		nameEnd = sp
	}
	s.Name = rest[:nameEnd]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[nameEnd:]
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", line, err)
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " \t")
	// Value, optionally followed by a timestamp.
	valStr := rest
	if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
		valStr = rest[:sp]
		ts := strings.TrimSpace(rest[sp:])
		if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
			return s, fmt.Errorf("sample %q: bad timestamp %q", line, ts)
		}
	}
	v, err := parseValue(valStr)
	if err != nil {
		return s, fmt.Errorf("sample %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {k="v",...} block starting at in[0] == '{' and
// returns the index one past the closing brace.
func parseLabels(in string, out map[string]string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(in) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if in[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("label without '='")
		}
		name := in[i : i+eq]
		if !validLabelName(name) {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return 0, fmt.Errorf("label %s: value not quoted", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(in) {
				return 0, fmt.Errorf("label %s: unterminated value", name)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(in) {
					return 0, fmt.Errorf("label %s: dangling escape", name)
				}
				switch in[i+1] {
				case '\\', '"':
					val.WriteByte(in[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("label %s: invalid escape \\%c", name, in[i+1])
				}
				i += 2
				continue
			}
			if c == '\n' {
				return 0, fmt.Errorf("label %s: raw newline in value", name)
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := out[name]; dup {
			return 0, fmt.Errorf("duplicate label %q", name)
		}
		out[name] = val.String()
		if i < len(in) && in[i] == ',' {
			i++
		}
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// baseName strips the histogram/summary series suffixes so TYPE lookups
// and ordering checks treat name_bucket/_sum/_count as samples of name.
func baseName(doc *Document, name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if kind, ok := doc.Types[base]; ok && (kind == "histogram" || kind == "summary") {
				return base
			}
		}
	}
	return name
}

// checkHistograms verifies every declared histogram's series shape: a
// le-labelled _bucket family with nondecreasing cumulative counts, a
// mandatory le="+Inf" bucket, and _count equal to the +Inf bucket, per
// label set.
func (d *Document) checkHistograms() error {
	type family struct {
		buckets map[string][]Sample // label-fingerprint (sans le) → buckets
		counts  map[string]float64
		sums    map[string]bool
	}
	fams := make(map[string]*family)
	for name, kind := range d.Types {
		if kind == "histogram" {
			fams[name] = &family{
				buckets: map[string][]Sample{},
				counts:  map[string]float64{},
				sums:    map[string]bool{},
			}
		}
	}
	fingerprint := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%q,", k, labels[k])
		}
		return b.String()
	}
	for _, s := range d.Samples {
		for name, fam := range fams {
			switch s.Name {
			case name + "_bucket":
				if _, ok := s.Labels["le"]; !ok {
					return fmt.Errorf("histogram %s: _bucket sample without le label", name)
				}
				fp := fingerprint(s.Labels)
				fam.buckets[fp] = append(fam.buckets[fp], s)
			case name + "_count":
				fam.counts[fingerprint(s.Labels)] = s.Value
			case name + "_sum":
				fam.sums[fingerprint(s.Labels)] = true
			}
		}
	}
	for name, fam := range fams {
		for fp, buckets := range fam.buckets {
			prev := -1.0
			var inf *Sample
			for i := range buckets {
				b := buckets[i]
				le := b.Labels["le"]
				if le == "+Inf" {
					inf = &buckets[i]
				} else if _, err := strconv.ParseFloat(le, 64); err != nil {
					return fmt.Errorf("histogram %s: bad le %q", name, le)
				}
				if b.Value < prev {
					return fmt.Errorf("histogram %s{%s}: bucket counts not cumulative (%g after %g)", name, fp, b.Value, prev)
				}
				prev = b.Value
			}
			if inf == nil {
				return fmt.Errorf("histogram %s{%s}: missing le=\"+Inf\" bucket", name, fp)
			}
			count, ok := fam.counts[fp]
			if !ok {
				return fmt.Errorf("histogram %s{%s}: missing _count series", name, fp)
			}
			if inf.Value != count {
				return fmt.Errorf("histogram %s{%s}: +Inf bucket %g != _count %g", name, fp, inf.Value, count)
			}
			if !fam.sums[fp] {
				return fmt.Errorf("histogram %s{%s}: missing _sum series", name, fp)
			}
		}
	}
	return nil
}
