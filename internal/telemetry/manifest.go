package telemetry

import (
	"encoding/json"
	"os"
	"time"
)

// Manifest is the machine-readable record of one campaign run: the
// campaign's identity and configuration, the wall/CPU time breakdown,
// the final counter snapshot and the retained trace events. favscan
// writes it on exit (and on SIGINT, whose graceful-interrupt path runs
// the same exit code) when -telemetry is set, and BenchmarkFullScan
// folds its counters into BENCH_scan.json.
type Manifest struct {
	Tool      string    `json:"tool"`
	StartedAt time.Time `json:"started_at"`
	// Campaign identification.
	Benchmark string `json:"benchmark"`
	Identity  string `json:"identity"` // hex campaign identity hash
	Space     string `json:"space"`
	Strategy  string `json:"strategy"`
	Classes   int    `json:"classes"`
	Workers   int    `json:"workers"`
	// Interrupted marks a run stopped by SIGINT/Interrupt: the counters
	// then describe a partial campaign.
	Interrupted bool `json:"interrupted,omitempty"`
	// Timing breakdown. CPU seconds are process-wide (user+system since
	// process start) and 0 on platforms without rusage.
	WallSeconds   float64 `json:"wall_seconds"`
	CPUUserSecs   float64 `json:"cpu_user_seconds"`
	CPUSystemSecs float64 `json:"cpu_system_seconds"`
	// Telemetry is the final instrument snapshot.
	Telemetry Snapshot `json:"telemetry"`
	// Events are the retained trace events, oldest first; EventsDropped
	// counts older events the ring buffer evicted and EventsCapacity the
	// ring size, so a truncated trace is self-describing.
	Events         []Event `json:"events,omitempty"`
	EventsDropped  uint64  `json:"events_dropped,omitempty"`
	EventsCapacity int     `json:"events_capacity,omitempty"`
	// TraceID and Spans are the run's span timeline when span tracing
	// was enabled (favscan -trace); SpansDropped/SpansCapacity describe
	// truncation the same way the event fields do.
	TraceID       string `json:"trace_id,omitempty"`
	Spans         []Span `json:"spans,omitempty"`
	SpansDropped  uint64 `json:"spans_dropped,omitempty"`
	SpansCapacity int    `json:"spans_capacity,omitempty"`
}

// Finish stamps the manifest with the registry's final snapshot, trace
// events and the process CPU times, and computes WallSeconds from
// StartedAt. Safe with a nil registry (the snapshot is empty).
func (m *Manifest) Finish(r *Registry) {
	m.WallSeconds = time.Since(m.StartedAt).Seconds()
	m.CPUUserSecs, m.CPUSystemSecs = cpuTimes()
	m.Telemetry = r.Snapshot()
	if tr := r.Tracer(); tr != nil {
		m.Events = tr.Events()
		m.EventsDropped = tr.Dropped()
		m.EventsCapacity = tr.Cap()
	}
	if rec := r.SpanRecorder(); rec != nil {
		m.TraceID = rec.TraceID().String()
		m.Spans = rec.Spans()
		m.SpansDropped = rec.Dropped()
		m.SpansCapacity = rec.Cap()
	}
}

// WriteFile writes the manifest as indented JSON to path, atomically
// enough for its purpose: a temp file in the same directory renamed
// over the target, so a crash mid-write never leaves a torn manifest.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(dirOf(path), ".manifest-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			return path[:i+1]
		}
	}
	return "."
}
