package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTraceIDParseAndString(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("NewTraceID returned the zero (tracing off) ID")
	}
	if id == NewTraceID() {
		t.Fatal("two minted trace IDs collided")
	}
	s := id.String()
	if len(s) != 32 || strings.ToLower(s) != s {
		t.Fatalf("String() = %q, want 32 lowercase hex digits", s)
	}
	back, err := ParseTraceID(s)
	if err != nil || back != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v; want original", s, back, err)
	}
	for _, bad := range []string{"", "abcd", strings.Repeat("g", 32), s + "00"} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted malformed input", bad)
		}
	}
}

// TestSpanRecorderDropNewest pins the overflow policy: a full recorder
// keeps the spans it has (the campaign's opening phases) and counts the
// rest, mirroring the event tracer's bounded-degradation contract.
func TestSpanRecorderDropNewest(t *testing.T) {
	rec := NewSpanRecorder(NewTraceID(), "w1", 2)
	base := time.Unix(0, 1000)
	// Record out of start order to prove Spans() sorts.
	rec.Record("b", "", base.Add(time.Millisecond), time.Microsecond)
	rec.Record("a", "", base, time.Microsecond)
	rec.Record("c", "", base.Add(2*time.Millisecond), time.Microsecond)
	rec.Record("d", "", base.Add(3*time.Millisecond), time.Microsecond)
	if got := rec.Dropped(); got != 2 {
		t.Errorf("Dropped() = %d, want 2", got)
	}
	spans := rec.Spans()
	if len(spans) != 2 || spans[0].Name != "a" || spans[1].Name != "b" {
		t.Fatalf("Spans() = %+v, want [a b] sorted by start", spans)
	}
	if spans[0].Scope != "w1" {
		t.Errorf("Record must stamp the default scope, got %q", spans[0].Scope)
	}

	// Drain returns recording order and frees capacity for new spans.
	drained := rec.Drain()
	if len(drained) != 2 || drained[0].Name != "b" || drained[1].Name != "a" {
		t.Fatalf("Drain() = %+v, want [b a] in recording order", drained)
	}
	if len(rec.Spans()) != 0 {
		t.Error("recorder must be empty after Drain")
	}
	rec.Record("e", "", base, time.Microsecond)
	if got := rec.Spans(); len(got) != 1 || got[0].Name != "e" {
		t.Errorf("post-drain record lost: %+v", got)
	}

	// Add keeps the span's own scope — the coordinator's merge path.
	rec2 := NewSpanRecorder(NewTraceID(), "coordinator", 0)
	if rec2.Cap() != DefaultSpanCapacity {
		t.Errorf("default capacity = %d, want %d", rec2.Cap(), DefaultSpanCapacity)
	}
	rec2.Add(Span{Scope: "w7", Name: "unit.scan", Start: base, Dur: time.Millisecond})
	if got := rec2.Spans()[0].Scope; got != "w7" {
		t.Errorf("Add rewrote the span scope to %q", got)
	}
}

func TestActiveSpanLifecycle(t *testing.T) {
	rec := NewSpanRecorder(NewTraceID(), "local", 4)
	sp := rec.Start("scan.run")
	if !sp.Live() {
		t.Fatal("span on a live recorder must report Live")
	}
	sp.End("42 classes")
	got := rec.Spans()
	if len(got) != 1 || got[0].Name != "scan.run" || got[0].Detail != "42 classes" {
		t.Fatalf("recorded span = %+v", got)
	}
	if got[0].Dur < 0 {
		t.Errorf("span duration %v negative", got[0].Dur)
	}

	var nilRec *SpanRecorder
	inert := nilRec.Start("x")
	if inert.Live() {
		t.Error("nil recorder's Start must return an inert span")
	}
	inert.End("ignored") // must not panic
	if nilRec.TraceID() != (TraceID{}) || nilRec.Cap() != 0 || nilRec.Drain() != nil {
		t.Error("nil recorder accessors must return zero values")
	}
}

// TestWriteChromeTraceStructure pins the trace-event JSON shape Perfetto
// loads: process metadata, one named thread per scope with the
// coordinator first, and one complete event per span with microsecond
// timestamps.
func TestWriteChromeTraceStructure(t *testing.T) {
	trace := NewTraceID()
	base := time.Unix(100, 500)
	spans := []Span{
		{Scope: "w1", Name: "unit.scan", Start: base.Add(time.Millisecond), Dur: 2 * time.Millisecond},
		{Scope: "coordinator", Name: "campaign", Detail: "hi memory", Start: base, Dur: 5 * time.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, trace, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if doc.OtherData["traceId"] != trace.String() || doc.DisplayTimeUnit != "ms" {
		t.Errorf("document metadata: %+v / %q", doc.OtherData, doc.DisplayTimeUnit)
	}
	threads := map[string]int{}
	var complete int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			threads[ev.Args["name"]] = ev.Tid
		case ev.Ph == "X":
			complete++
			if ev.Name == "campaign" {
				if ev.Dur != 5000 {
					t.Errorf("campaign dur = %gus, want 5000", ev.Dur)
				}
				if ev.Args["detail"] != "hi memory" {
					t.Errorf("campaign args = %v", ev.Args)
				}
			}
			if ev.Name == "unit.scan" {
				if ev.Tid != threads["w1"] {
					t.Errorf("unit.scan on tid %d, want w1's %d", ev.Tid, threads["w1"])
				}
			}
		}
	}
	if complete != 2 {
		t.Errorf("%d complete events, want 2", complete)
	}
	// The coordinator leads the thread numbering even though its span was
	// appended last.
	if threads["coordinator"] != 1 || threads["w1"] != 2 {
		t.Errorf("thread order %v, want coordinator first", threads)
	}
}

// failWriter fails once limit bytes have been written.
type failWriter struct {
	limit int
	n     int
}

var errWriterFull = errors.New("writer full")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > w.limit {
		return 0, errWriterFull
	}
	w.n += len(p)
	return len(p), nil
}

func TestSpanExportWriterErrors(t *testing.T) {
	trace := NewTraceID()
	spans := []Span{
		{Scope: "a", Name: "x", Start: time.Unix(0, 1), Dur: time.Millisecond},
		{Scope: "b", Name: "y", Start: time.Unix(0, 2), Dur: time.Millisecond},
	}
	if err := WriteSpansJSONL(&failWriter{limit: 10}, trace, spans); !errors.Is(err, errWriterFull) {
		t.Errorf("WriteSpansJSONL on a failing writer: %v, want errWriterFull", err)
	}
	if err := WriteChromeTrace(&failWriter{limit: 10}, trace, spans); !errors.Is(err, errWriterFull) {
		t.Errorf("WriteChromeTrace on a failing writer: %v, want errWriterFull", err)
	}
	tr := NewTracer(4)
	tr.Emit("e", "d")
	if err := tr.WriteJSONL(&failWriter{limit: 3}); !errors.Is(err, errWriterFull) {
		t.Errorf("Tracer.WriteJSONL on a failing writer: %v, want errWriterFull", err)
	}
}

// TestHistogramQuantiles checks the interpolated quantile estimates: an
// empty histogram reads zero, and on data the estimates are ordered and
// bounded by the observed extremes (the buckets are exponential, so the
// values are estimates, not exact order statistics).
func TestHistogramQuantiles(t *testing.T) {
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	r := New()
	h := r.Histogram("d")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := r.Snapshot().Histograms["d"]
	if s.P50Ns <= 0 || s.P95Ns < s.P50Ns || s.P99Ns < s.P95Ns {
		t.Fatalf("quantiles not ordered: p50=%d p95=%d p99=%d", s.P50Ns, s.P95Ns, s.P99Ns)
	}
	if s.P50Ns < s.MinNs || s.P99Ns > s.MaxNs {
		t.Errorf("quantiles outside [min, max]: p50=%d p99=%d min=%d max=%d",
			s.P50Ns, s.P99Ns, s.MinNs, s.MaxNs)
	}
	// The p50 of a uniform 1..100us spread must land in the right
	// power-of-two bucket: [32us, 64us).
	if got := time.Duration(s.P50Ns); got < 32*time.Microsecond || got >= 64*time.Microsecond {
		t.Errorf("p50 = %v, want within the [32us, 64us) bucket", got)
	}
	if q := s.Quantile(0); q != time.Duration(s.MinNs) {
		t.Errorf("Quantile(0) = %v, want min", q)
	}
	if q := s.Quantile(1); q != time.Duration(s.MaxNs) {
		t.Errorf("Quantile(1) = %v, want max", q)
	}
}
