//go:build !unix

package telemetry

// cpuTimes is unavailable without rusage; the manifest reports zeros.
func cpuTimes() (user, system float64) { return 0, 0 }
