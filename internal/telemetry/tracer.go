package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// DefaultTraceCapacity bounds the tracer ring buffer when EnableTrace is
// called with capacity 0.
const DefaultTraceCapacity = 1024

// Event is one traced campaign event. Events are ordered by Seq, which
// counts every Emit since the tracer was created — a gap between the
// first retained event's Seq and 1 tells the reader how many older
// events the ring evicted.
type Event struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Name   string    `json:"event"`
	Detail string    `json:"detail,omitempty"`
}

// Tracer is a bounded ring buffer of campaign events. Once full, new
// events evict the oldest — a long campaign keeps its most recent
// history at a fixed memory cost instead of growing without bound. A
// nil *Tracer is a no-op. Safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event // ring storage, len == cap once full
	cap     int
	next    int    // ring write position
	seq     uint64 // total events ever emitted
	wrapped bool
}

// NewTracer creates a tracer retaining at most capacity events
// (DefaultTraceCapacity when <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, 0, capacity), cap: capacity}
}

// Emit records one event with the current time.
func (t *Tracer) Emit(name, detail string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.seq++
	e := Event{Seq: t.seq, Time: now, Name: name, Detail: detail}
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
		t.wrapped = true
	}
	t.next = (t.next + 1) % t.cap
	t.mu.Unlock()
}

// Emitf is Emit with a formatted detail string. The formatting cost is
// only paid when the tracer is live.
func (t *Tracer) Emitf(name, format string, args ...any) {
	if t == nil {
		return
	}
	t.Emit(name, fmt.Sprintf(format, args...))
}

// Cap returns the ring's retention capacity (0 on nil). Exported
// alongside Dropped so truncated traces are self-describing: a reader
// seeing Dropped > 0 knows exactly how big the window was.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return t.cap
}

// Dropped returns how many events the ring has evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq - uint64(len(t.buf))
}

// Events returns the retained events in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if t.wrapped {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// WriteJSONL writes the retained events as one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, e := range t.Events() {
		line, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// EnableTrace attaches a ring-buffer tracer of the given capacity
// (DefaultTraceCapacity when <= 0) to the registry, replacing any
// previous one. No-op on a nil registry.
func (r *Registry) EnableTrace(capacity int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tracer = NewTracer(capacity)
	r.mu.Unlock()
}

// Tracer returns the attached tracer, or nil when tracing is off (or
// the registry is nil) — and a nil Tracer swallows Emit calls, so
// callers chain freely: reg.Tracer().Emit(...).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tracer
}

// Trace emits one event on the attached tracer, if any.
func (r *Registry) Trace(name, detail string) {
	r.Tracer().Emit(name, detail)
}

// Tracef is Trace with a formatted detail string.
func (r *Registry) Tracef(name, format string, args ...any) {
	r.Tracer().Emitf(name, format, args...)
}
