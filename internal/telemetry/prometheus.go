package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// MetricSet pairs one snapshot with constant labels applied to every
// series rendered from it. The service exposes one set per campaign
// (labelled by campaign id and tenant); the coordinator adds per-worker
// sets on top of its own registry.
type MetricSet struct {
	Labels map[string]string
	Snap   Snapshot
}

// WritePrometheus renders one snapshot in the Prometheus text
// exposition format (version 0.0.4). Stdlib only — see
// WritePrometheusSets for the multi-set form.
func WritePrometheus(w io.Writer, snap Snapshot, labels map[string]string) error {
	return WritePrometheusSets(w, []MetricSet{{Labels: labels, Snap: snap}})
}

// WritePrometheusSets renders several labelled snapshots as one
// Prometheus text-format document. Dotted registry names are mangled to
// metric names (`scan.experiments` → `faultspace_scan_experiments_total`),
// counters get a `_total` suffix, and duration histograms are rendered
// as Prometheus histograms in seconds with cumulative `_bucket{le=...}`
// series, `_sum` and `_count`. Each metric name carries exactly one
// `# TYPE` line even when it appears in several sets; output order is
// deterministic (sorted names, sets in argument order).
func WritePrometheusSets(w io.Writer, sets []MetricSet) error {
	type sample struct {
		set  int
		name string // registry name
	}
	var counters, gauges, hists []sample
	counterNames := map[string]bool{}
	gaugeNames := map[string]bool{}
	histNames := map[string]bool{}
	for i, set := range sets {
		for name := range set.Snap.Counters {
			counters = append(counters, sample{i, name})
			counterNames[name] = true
		}
		for name := range set.Snap.Gauges {
			gauges = append(gauges, sample{i, name})
			gaugeNames[name] = true
		}
		for name := range set.Snap.Histograms {
			hists = append(hists, sample{i, name})
			histNames[name] = true
		}
	}
	order := func(s []sample) {
		sort.Slice(s, func(i, j int) bool {
			if s[i].name != s[j].name {
				return s[i].name < s[j].name
			}
			return s[i].set < s[j].set
		})
	}
	order(counters)
	order(gauges)
	order(hists)

	var b strings.Builder
	typed := map[string]bool{}
	writeType := func(metric, kind string) {
		if !typed[metric] {
			typed[metric] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", metric, kind)
		}
	}
	for _, s := range counters {
		metric := promName(s.name) + "_total"
		writeType(metric, "counter")
		fmt.Fprintf(&b, "%s%s %d\n", metric, promLabels(sets[s.set].Labels, "", 0), sets[s.set].Snap.Counters[s.name])
	}
	for _, s := range gauges {
		metric := promName(s.name)
		writeType(metric, "gauge")
		fmt.Fprintf(&b, "%s%s %d\n", metric, promLabels(sets[s.set].Labels, "", 0), sets[s.set].Snap.Gauges[s.name])
	}
	for _, s := range hists {
		metric := promName(s.name) + "_seconds"
		writeType(metric, "histogram")
		h := sets[s.set].Snap.Histograms[s.name]
		labels := sets[s.set].Labels
		var cum uint64
		for _, bucket := range h.Buckets {
			if bucket.LeUs == 0 {
				// Unbounded overflow bucket: folded into +Inf below.
				cum += bucket.Count
				continue
			}
			cum += bucket.Count
			le := float64(bucket.LeUs) / 1e6 // µs upper bound → seconds
			fmt.Fprintf(&b, "%s_bucket%s %d\n", metric, promLabels(labels, "le", le), cum)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", metric, promLabelsInf(labels), h.Count)
		fmt.Fprintf(&b, "%s_sum%s %g\n", metric, promLabels(labels, "", 0), float64(h.SumNs)/1e9)
		fmt.Fprintf(&b, "%s_count%s %d\n", metric, promLabels(labels, "", 0), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promName mangles a dotted registry name into a valid Prometheus
// metric name under the faultspace_ namespace.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("faultspace_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a label set, optionally with one extra float label
// (the histogram le bound). Keys are sorted; values are escaped per the
// exposition format (backslash, double quote, newline).
func promLabels(labels map[string]string, extraKey string, extraVal float64) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escaping matches the exposition format: \\, \" and \n.
		fmt.Fprintf(&b, "%s=%q", promLabelName(k), labels[k])
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%g\"", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// promLabelsInf is promLabels with le="+Inf" (which %g cannot render).
func promLabelsInf(labels map[string]string) string {
	s := promLabels(labels, "", 0)
	if s == "" {
		return `{le="+Inf"}`
	}
	return s[:len(s)-1] + `,le="+Inf"}`
}

func promLabelName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
