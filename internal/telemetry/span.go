package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultSpanCapacity bounds a SpanRecorder when NewSpanRecorder is
// called with capacity <= 0. Spans are recorded at unit/rung/batch
// granularity — not per experiment — so even long campaigns stay well
// under this; when they don't, Dropped() makes the truncation explicit.
const DefaultSpanCapacity = 4096

// TraceID is a 128-bit campaign trace identifier. It is minted once at
// campaign submission, propagated through the cluster wire protocol,
// and stamps every exported timeline so traces from different runs (or
// different campaigns on the same fleet) never get conflated. The zero
// TraceID means "tracing off". TraceIDs are identification, not
// configuration: they are excluded from the campaign identity hash
// (DESIGN.md invariant 15).
type TraceID [16]byte

// NewTraceID mints a random trace ID.
func NewTraceID() TraceID {
	var id TraceID
	if _, err := rand.Read(id[:]); err != nil {
		// crypto/rand does not fail on supported platforms; degrading to
		// the zero ID (tracing off) beats aborting a campaign over it.
		return TraceID{}
	}
	return id
}

// IsZero reports whether the ID is the zero "tracing off" value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceID decodes the 32-hex-digit form produced by String.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 2*len(id) {
		return TraceID{}, fmt.Errorf("trace id must be %d hex digits, got %d", 2*len(id), len(s))
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("trace id: %w", err)
	}
	return id, nil
}

// Span is one completed timed operation in a campaign timeline: a named
// interval with the scope (process/worker) that measured it. Spans are
// value types so recording one never allocates beyond the recorder's
// ring slot.
type Span struct {
	// Scope names the measuring party: "coordinator", a worker ID, or
	// "local" for single-process scans. Timelines group by scope.
	Scope  string        `json:"scope"`
	Name   string        `json:"name"`
	Detail string        `json:"detail,omitempty"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
}

// End returns the span's end time.
func (s Span) End() time.Time { return s.Start.Add(s.Dur) }

// SpanRecorder is a bounded, concurrency-safe store of completed spans.
// Like the event Tracer it degrades by dropping (newest-first here:
// once full, new spans are counted but not retained, keeping the
// campaign's opening phases — golden prefix, first units — which is
// what timeline analysis needs) rather than growing without bound. A
// nil *SpanRecorder is the disabled state: every method is a no-op and
// Start returns an inert ActiveSpan without reading the clock.
type SpanRecorder struct {
	mu      sync.Mutex
	trace   TraceID
	scope   string
	cap     int
	spans   []Span
	dropped uint64
}

// NewSpanRecorder creates a recorder for the given trace with a default
// scope applied to Record/Start spans (Add keeps the span's own scope).
func NewSpanRecorder(trace TraceID, scope string, capacity int) *SpanRecorder {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &SpanRecorder{trace: trace, scope: scope, cap: capacity}
}

// TraceID returns the trace this recorder belongs to (zero on nil).
func (r *SpanRecorder) TraceID() TraceID {
	if r == nil {
		return TraceID{}
	}
	return r.trace
}

// Cap returns the retention capacity (0 on nil).
func (r *SpanRecorder) Cap() int {
	if r == nil {
		return 0
	}
	return r.cap
}

// Record appends one completed span under the recorder's default scope.
func (r *SpanRecorder) Record(name, detail string, start time.Time, dur time.Duration) {
	if r == nil {
		return
	}
	r.Add(Span{Scope: r.scope, Name: name, Detail: detail, Start: start, Dur: dur})
}

// Add appends a fully-specified span (the span's own Scope is kept; the
// coordinator uses this to merge worker-side spans into the campaign
// timeline).
func (r *SpanRecorder) Add(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.spans) < r.cap {
		r.spans = append(r.spans, s)
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// Dropped returns how many spans were discarded because the recorder
// was full.
func (r *SpanRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Spans returns a copy of the retained spans sorted by start time.
func (r *SpanRecorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Drain removes and returns the retained spans in recording order.
// Workers drain their recorder into each submission so span data rides
// the existing result path instead of needing its own endpoint.
func (r *SpanRecorder) Drain() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := r.spans
	r.spans = nil
	r.mu.Unlock()
	return out
}

// ActiveSpan is an in-flight span handle. It is a value type: starting
// and ending a span allocates nothing, and the zero ActiveSpan (what a
// nil recorder's Start returns) makes End a single-branch no-op — the
// same disabled-path contract as the rest of the package.
type ActiveSpan struct {
	rec   *SpanRecorder
	name  string
	start time.Time
}

// Start opens a span. On a nil recorder it returns the inert zero
// ActiveSpan without reading the clock.
func (r *SpanRecorder) Start(name string) ActiveSpan {
	if r == nil {
		return ActiveSpan{}
	}
	return ActiveSpan{rec: r, name: name, start: time.Now()}
}

// Live reports whether the span will be recorded — the guard call sites
// use before building a Detail string, so the formatting cost is only
// paid when tracing is on.
func (s ActiveSpan) Live() bool { return s.rec != nil }

// End completes the span with the given detail. No-op on the zero
// ActiveSpan.
func (s ActiveSpan) End(detail string) {
	if s.rec == nil {
		return
	}
	s.rec.Record(s.name, detail, s.start, time.Since(s.start))
}

// EnableSpans attaches a span recorder for the given trace to the
// registry, replacing any previous one. No-op on a nil registry.
func (r *Registry) EnableSpans(trace TraceID, scope string, capacity int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = NewSpanRecorder(trace, scope, capacity)
	r.mu.Unlock()
}

// SpanRecorder returns the attached recorder, or nil when span tracing
// is off (or the registry is nil) — and a nil SpanRecorder swallows all
// calls, so callers chain freely.
func (r *Registry) SpanRecorder() *SpanRecorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spans
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (the subset Perfetto and chrome://tracing load: complete "X" events
// plus "M" metadata naming processes and threads). Timestamps and
// durations are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Cat  string            `json:"cat,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes a span timeline as Chrome trace-event JSON:
// one process per campaign, one named thread per scope (coordinator,
// each worker), one complete event per span. Load the output in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, trace TraceID, spans []Span) error {
	// Stable thread numbering: scopes sorted, "coordinator" first so the
	// fleet view always leads with the merge side.
	scopes := make([]string, 0, 4)
	seen := make(map[string]int)
	for _, s := range spans {
		if _, ok := seen[s.Scope]; !ok {
			seen[s.Scope] = 0
			scopes = append(scopes, s.Scope)
		}
	}
	sort.Slice(scopes, func(i, j int) bool {
		if (scopes[i] == "coordinator") != (scopes[j] == "coordinator") {
			return scopes[i] == "coordinator"
		}
		return scopes[i] < scopes[j]
	})
	for i, sc := range scopes {
		seen[sc] = i + 1
	}

	events := make([]chromeEvent, 0, len(spans)+len(scopes)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]string{"name": "faultspace campaign " + trace.String()},
	})
	for _, sc := range scopes {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: seen[sc],
			Args: map[string]string{"name": sc},
		})
	}
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start.UnixNano()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  seen[s.Scope],
			Cat:  "faultspace",
		}
		if s.Detail != "" {
			ev.Args = map[string]string{"detail": s.Detail}
		}
		events = append(events, ev)
	}
	doc := struct {
		TraceEvents     []chromeEvent     `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"traceId": trace.String()},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteSpansJSONL writes spans as one JSON object per line, each
// carrying the trace ID — the streaming-friendly sibling of
// WriteChromeTrace.
func WriteSpansJSONL(w io.Writer, trace TraceID, spans []Span) error {
	type line struct {
		Trace string `json:"trace"`
		Span
	}
	enc := json.NewEncoder(w)
	for _, s := range spans {
		if err := enc.Encode(line{Trace: trace.String(), Span: s}); err != nil {
			return err
		}
	}
	return nil
}
