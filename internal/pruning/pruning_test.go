package pruning

import (
	"math/rand"
	"testing"

	"faultspace/internal/machine"
	"faultspace/internal/trace"
)

func mkGolden(cycles, ramBits uint64, accesses ...trace.Access) *trace.Golden {
	return &trace.Golden{
		Name:     "test",
		Cycles:   cycles,
		RAMBits:  ramBits,
		Accesses: accesses,
	}
}

func TestFigure1Example(t *testing.T) {
	// The paper's Figure 1b: 12 cycles × 9 bits, one byte written at cycle
	// 4 and read at cycle 11 → 8 classes of weight 7; 108−56 = 52 known.
	g := mkGolden(12, 9,
		trace.Access{Cycle: 4, Addr: 0, Size: 1, Kind: machine.AccessWrite},
		trace.Access{Cycle: 11, Addr: 0, Size: 1, Kind: machine.AccessRead},
	)
	fs, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Size() != 108 {
		t.Errorf("size = %d, want 108", fs.Size())
	}
	if len(fs.Classes) != 8 {
		t.Fatalf("classes = %d, want 8", len(fs.Classes))
	}
	for _, c := range fs.Classes {
		if c.Weight() != 7 {
			t.Errorf("class %+v weight = %d, want 7", c, c.Weight())
		}
		if c.Slot() != 11 {
			t.Errorf("class %+v slot = %d, want 11", c, c.Slot())
		}
	}
	if fs.KnownNoEffect != 108-8*7 {
		t.Errorf("known = %d, want %d", fs.KnownNoEffect, 108-8*7)
	}
	if got := fs.ReductionFactor(); got != 108.0/8 {
		t.Errorf("reduction = %v, want 13.5", got)
	}
}

func TestEmptyTraceAllKnown(t *testing.T) {
	fs, err := Build(mkGolden(10, 16))
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Classes) != 0 {
		t.Errorf("classes = %d, want 0", len(fs.Classes))
	}
	if fs.KnownNoEffect != 160 {
		t.Errorf("known = %d, want 160", fs.KnownNoEffect)
	}
	if fs.ReductionFactor() != 0 {
		t.Error("reduction factor of empty class list must be 0")
	}
}

func TestUseUseChains(t *testing.T) {
	// Two reads of the same byte: both create classes; the second class
	// spans from the first read.
	g := mkGolden(10, 8,
		trace.Access{Cycle: 2, Addr: 0, Size: 1, Kind: machine.AccessRead},
		trace.Access{Cycle: 7, Addr: 0, Size: 1, Kind: machine.AccessRead},
	)
	fs, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Classes) != 16 {
		t.Fatalf("classes = %d, want 16", len(fs.Classes))
	}
	// Classes are sorted by slot: first 8 at slot 2 (weight 2), then 8 at
	// slot 7 (weight 5).
	for i := 0; i < 8; i++ {
		if fs.Classes[i].Slot() != 2 || fs.Classes[i].Weight() != 2 {
			t.Errorf("class %d = %+v, want slot 2 weight 2", i, fs.Classes[i])
		}
	}
	for i := 8; i < 16; i++ {
		if fs.Classes[i].Slot() != 7 || fs.Classes[i].Weight() != 5 {
			t.Errorf("class %d = %+v, want slot 7 weight 5", i, fs.Classes[i])
		}
	}
	// Tail after cycle 7 is dormant: 3 cycles × 8 bits.
	if fs.KnownNoEffect != 24 {
		t.Errorf("known = %d, want 24", fs.KnownNoEffect)
	}
}

func TestWriteKillsPendingInterval(t *testing.T) {
	// Read at 3, write at 6, read at 9: the write resets the def point.
	g := mkGolden(10, 8,
		trace.Access{Cycle: 3, Addr: 0, Size: 1, Kind: machine.AccessRead},
		trace.Access{Cycle: 6, Addr: 0, Size: 1, Kind: machine.AccessWrite},
		trace.Access{Cycle: 9, Addr: 0, Size: 1, Kind: machine.AccessRead},
	)
	fs, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	var weights []uint64
	for _, c := range fs.Classes {
		if c.Bit == 0 {
			weights = append(weights, c.Weight())
		}
	}
	if len(weights) != 2 || weights[0] != 3 || weights[1] != 3 {
		t.Errorf("bit 0 class weights = %v, want [3 3]", weights)
	}
	// Slots 4..6 are overwritten (3), slot 10 is dormant (1): 4 per bit.
	if fs.KnownNoEffect != 4*8 {
		t.Errorf("known = %d, want 32", fs.KnownNoEffect)
	}
}

func TestWordAccessCoversAllBits(t *testing.T) {
	g := mkGolden(5, 64,
		trace.Access{Cycle: 1, Addr: 4, Size: 4, Kind: machine.AccessWrite},
		trace.Access{Cycle: 4, Addr: 4, Size: 4, Kind: machine.AccessRead},
	)
	fs, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Classes) != 32 {
		t.Fatalf("classes = %d, want 32", len(fs.Classes))
	}
	for _, c := range fs.Classes {
		if c.Bit < 32 || c.Bit >= 64 {
			t.Errorf("class bit %d outside word at address 4", c.Bit)
		}
	}
}

func TestBuildRejectsBadTraces(t *testing.T) {
	bad := []*trace.Golden{
		mkGolden(5, 8, trace.Access{Cycle: 0, Addr: 0, Size: 1, Kind: machine.AccessRead}),
		mkGolden(5, 8, trace.Access{Cycle: 6, Addr: 0, Size: 1, Kind: machine.AccessRead}),
		mkGolden(5, 8, trace.Access{Cycle: 1, Addr: 1, Size: 1, Kind: machine.AccessRead}),
		mkGolden(5, 8,
			trace.Access{Cycle: 3, Addr: 0, Size: 1, Kind: machine.AccessRead},
			trace.Access{Cycle: 3, Addr: 0, Size: 1, Kind: machine.AccessRead}),
	}
	for i, g := range bad {
		if _, err := Build(g); err == nil {
			t.Errorf("case %d: Build accepted a bad trace", i)
		}
	}
}

// TestPartitionInvariantRandom property-tests the exact-partition law on
// random traces: Σ class weights + known = w, and Locate agrees with a
// brute-force interval walk for every coordinate.
func TestPartitionInvariantRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		cycles := uint64(5 + rng.Intn(30))
		ramBytes := 1 + rng.Intn(4)
		// Generate a random monotonic access sequence; at most one access
		// per cycle (as the machine guarantees).
		var accesses []trace.Access
		for c := uint64(1); c <= cycles; c++ {
			if rng.Intn(3) == 0 {
				kind := machine.AccessRead
				if rng.Intn(2) == 0 {
					kind = machine.AccessWrite
				}
				accesses = append(accesses, trace.Access{
					Cycle: c,
					Addr:  uint32(rng.Intn(ramBytes)),
					Size:  1,
					Kind:  kind,
				})
			}
		}
		g := mkGolden(cycles, uint64(ramBytes)*8, accesses...)
		fs, err := Build(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		var classWeight uint64
		for _, c := range fs.Classes {
			classWeight += c.Weight()
		}
		if classWeight+fs.KnownNoEffect != fs.Size() {
			t.Fatalf("trial %d: partition broken: %d + %d != %d",
				trial, classWeight, fs.KnownNoEffect, fs.Size())
		}

		// Every coordinate must map to exactly one class or to known-NE,
		// and the per-coordinate mapping must match a naive recomputation.
		for slot := uint64(1); slot <= cycles; slot++ {
			for bit := uint64(0); bit < fs.Bits; bit++ {
				ci, inClass, err := fs.Locate(slot, bit)
				if err != nil {
					t.Fatal(err)
				}
				wantClass, wantIn := naiveLocate(g, slot, bit)
				if inClass != wantIn {
					t.Fatalf("trial %d: Locate(%d,%d) inClass=%v, want %v",
						trial, slot, bit, inClass, wantIn)
				}
				if inClass {
					c := fs.Classes[ci]
					if c.Bit != bit || slot <= c.DefCycle || slot > c.UseCycle || c.UseCycle != wantClass {
						t.Fatalf("trial %d: Locate(%d,%d) -> %+v, want use cycle %d",
							trial, slot, bit, c, wantClass)
					}
				}
			}
		}
	}
}

// naiveLocate recomputes, from the raw trace, whether (slot, bit) belongs
// to a def/use class and which read activates it.
func naiveLocate(g *trace.Golden, slot, bit uint64) (useCycle uint64, inClass bool) {
	for _, a := range g.Accesses {
		lo := uint64(a.Addr) * 8
		hi := lo + uint64(a.Size)*8
		if bit < lo || bit >= hi || a.Cycle < slot {
			continue
		}
		// First access at or after the injection slot decides the fate.
		if a.Kind == machine.AccessRead {
			return a.Cycle, true
		}
		return 0, false
	}
	return 0, false
}

func TestFromClassesRoundTrip(t *testing.T) {
	g := mkGolden(12, 9,
		trace.Access{Cycle: 4, Addr: 0, Size: 1, Kind: machine.AccessWrite},
		trace.Access{Cycle: 11, Addr: 0, Size: 1, Kind: machine.AccessRead},
	)
	orig, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := FromClasses(orig.Kind, orig.Cycles, orig.Bits, orig.Classes, orig.KnownNoEffect)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Size() != orig.Size() || len(fs.Classes) != len(orig.Classes) {
		t.Fatalf("round trip changed geometry")
	}
	if fs.ExperimentWeight() != orig.ExperimentWeight() {
		t.Errorf("experiment weight differs: %d vs %d", fs.ExperimentWeight(), orig.ExperimentWeight())
	}
	for slot := uint64(1); slot <= fs.Cycles; slot++ {
		for bit := uint64(0); bit < fs.Bits; bit++ {
			c1, ok1, err1 := orig.Locate(slot, bit)
			c2, ok2, err2 := fs.Locate(slot, bit)
			if c1 != c2 || ok1 != ok2 || (err1 == nil) != (err2 == nil) {
				t.Fatalf("Locate(%d, %d) differs after round trip", slot, bit)
			}
		}
	}
}

func TestFromClassesRejectsInconsistency(t *testing.T) {
	good := []Class{{Bit: 0, DefCycle: 0, UseCycle: 5}}
	cases := []struct {
		name    string
		kind    SpaceKind
		cycles  uint64
		bits    uint64
		classes []Class
		known   uint64
	}{
		{"bad-kind", SpaceKind(9), 10, 8, good, 75},
		{"partition-mismatch", SpaceMemory, 10, 8, good, 0},
		{"bit-out-of-range", SpaceMemory, 10, 8, []Class{{Bit: 8, UseCycle: 5}}, 75},
		{"use-past-end", SpaceMemory, 10, 8, []Class{{Bit: 0, UseCycle: 11}}, 69},
		{"zero-weight", SpaceMemory, 10, 8, []Class{{Bit: 0, DefCycle: 5, UseCycle: 5}}, 80},
		{"out-of-order", SpaceMemory, 10, 8,
			[]Class{{Bit: 1, UseCycle: 5}, {Bit: 0, UseCycle: 5}}, 70},
		{"duplicate", SpaceMemory, 10, 8,
			[]Class{{Bit: 0, UseCycle: 5}, {Bit: 0, UseCycle: 5}}, 70},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FromClasses(tc.kind, tc.cycles, tc.bits, tc.classes, tc.known); err == nil {
				t.Error("inconsistent input accepted")
			}
		})
	}
}

func TestSpaceKindString(t *testing.T) {
	if SpaceMemory.String() != "memory" || SpaceRegisters.String() != "registers" {
		t.Error("kind names wrong")
	}
	if SpaceKind(9).String() == "" {
		t.Error("unknown kind must still render")
	}
}

func TestLocateErrors(t *testing.T) {
	fs, err := Build(mkGolden(5, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Locate(0, 0); err == nil {
		t.Error("slot 0 must be rejected")
	}
	if _, _, err := fs.Locate(6, 0); err == nil {
		t.Error("slot past Δt must be rejected")
	}
	if _, _, err := fs.Locate(1, 8); err == nil {
		t.Error("bit past Δm must be rejected")
	}
}
