// Attack-style fault spaces: instruction skip and PC corruption.
//
// Unlike the memory/register spaces, these models corrupt control flow,
// so the def/use interval argument does not apply directly. Each space
// gets its own rederived pruning rule:
//
//   - Skip: a slot is known No Effect exactly when the skipped dynamic
//     instruction provably cannot change any state that is ever observed
//     again — a nop, a fallen-through conditional branch, or a
//     straight-line data instruction all of whose written bits are dead
//     (not read before their next overwrite) in the single-bit def/use
//     partitions of the memory and register spaces. Every other slot is
//     its own weight-1 class.
//
//   - PC: flipping bit b at a boundary whose flipped target lies outside
//     the program deterministically raises ExcBadPC on the very next
//     fetch; no other machine state has been touched, so every such
//     coordinate yields the same outcome. Maximal runs of consecutive
//     such boundaries collapse into one class per bit. Boundaries where
//     the timer redirect fires are excluded from grouping (the corrupted
//     PC is saved as the handler's return address instead of fetched),
//     as are flips that land inside the program; both stay weight-1
//     classes.
//
// Both rules are cross-checked empirically by the differential oracle
// harness (internal/experiments, DESIGN.md invariant 13).
package pruning

import (
	"fmt"
	"sort"

	"faultspace/internal/isa"
	"faultspace/internal/machine"
	"faultspace/internal/trace"
)

// needsControlTrace verifies the golden run recorded the per-cycle
// control-flow trace the attack spaces prune against.
func needsControlTrace(g *trace.Golden) error {
	if uint64(len(g.BoundaryPCs)) != g.Cycles ||
		uint64(len(g.ExecPCs)) != g.Cycles ||
		uint64(len(g.IRQEntries)) != g.Cycles {
		return fmt.Errorf("pruning: golden trace of %q lacks the per-cycle control-flow record (have %d/%d/%d entries for %d cycles)",
			g.Name, len(g.BoundaryPCs), len(g.ExecPCs), len(g.IRQEntries), g.Cycles)
	}
	return nil
}

// skipPrunable reports whether op is a straight-line data instruction:
// no control transfer, no IRQ-state mutation. Skipping one leaves the
// PC, cycle count and timer phase exactly on the golden trajectory, so
// the only state difference is the skipped register/memory write.
func skipPrunable(op isa.Op) bool {
	switch op {
	case isa.OpLi, isa.OpMov,
		isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMul, isa.OpSlt, isa.OpSltu,
		isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpShli,
		isa.OpShri, isa.OpSlti,
		isa.OpLw, isa.OpLb, isa.OpSw, isa.OpSb, isa.OpSwi, isa.OpSbi,
		isa.OpRdspc:
		return true
	}
	return false
}

// conditionalBranch reports whether op is a conditional branch — the one
// control-transfer family whose skip is a no-op when the golden run fell
// through (skipping a not-taken branch reproduces the fall-through).
func conditionalBranch(op isa.Op) bool {
	switch op {
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu:
		return true
	}
	return false
}

// BuildSkip partitions the instruction-skip fault space: one coordinate
// per injection slot t ∈ [1, Δt], skipping the dynamic instruction that
// retires at cycle t. code must be the traced program.
//
// Deadness of a skipped write is decided against the single-bit def/use
// partitions: leaving a register or memory byte at its pre-instruction
// value corrupts only bits that the partition proves are overwritten
// before their next read (or never read again), so execution continues on
// the golden access trace and the outcome is the golden outcome. A store
// with no RAM write access in the golden trace went to an MMIO port
// (serial/detect/correct/abort) and is never prunable.
func BuildSkip(g *trace.Golden, code []isa.Instruction) (*FaultSpace, error) {
	if err := needsControlTrace(g); err != nil {
		return nil, err
	}
	mem, err := Build(g)
	if err != nil {
		return nil, err
	}
	regs, err := BuildRegisters(g)
	if err != nil {
		return nil, err
	}

	// Index the golden RAM write accesses by cycle. Accesses are recorded
	// in execution order, so per-cycle runs are contiguous.
	writesAt := make(map[uint64][]trace.Access)
	for _, a := range g.Accesses {
		if a.Kind == machine.AccessWrite {
			writesAt[a.Cycle] = append(writesAt[a.Cycle], a)
		}
	}

	// deadMem reports whether every bit of RAM byte addr is dead at slot
	// t+1. All bits of a byte share one event stream (accesses cover
	// whole bytes), so probing one bit suffices.
	deadMem := func(t uint64, addr uint32) (bool, error) {
		if t >= g.Cycles {
			return true, nil // nothing executes after the final cycle
		}
		_, live, err := mem.Locate(t+1, uint64(addr)*8)
		return !live, err
	}
	deadReg := func(t uint64, r int) (bool, error) {
		if t >= g.Cycles {
			return true, nil
		}
		_, live, err := regs.Locate(t+1, uint64(r-1)*32)
		return !live, err
	}

	fs := &FaultSpace{
		Kind:   SpaceSkip,
		Cycles: g.Cycles,
		Bits:   1,
		byBit:  make(map[uint64][]int32),
	}
	for t := uint64(1); t <= g.Cycles; t++ {
		pc := g.ExecPCs[t-1]
		if pc >= uint32(len(code)) {
			return nil, fmt.Errorf("pruning: golden ExecPC %d at cycle %d outside program of %d instructions",
				pc, t, len(code))
		}
		ins := code[pc]
		noEffect := false
		switch {
		case ins.Op == isa.OpNop:
			noEffect = true
		case conditionalBranch(ins.Op) && t < g.Cycles && g.BoundaryPCs[t] == pc+1:
			// The golden run fell through; skipping reproduces that.
			noEffect = true
		case skipPrunable(ins.Op):
			dead := true
			if w := ins.WritesReg(); w > int(isa.RegZero) {
				if dead, err = deadReg(t, w); err != nil {
					return nil, err
				}
			}
			if dead && isa.Classify(ins.Op) == isa.ClassStore {
				ws := writesAt[t]
				if len(ws) == 0 {
					// No RAM write recorded: the store hit an MMIO port;
					// skipping it changes the observable output.
					dead = false
				}
				for _, a := range ws {
					for i := uint32(0); dead && i < uint32(a.Size); i++ {
						if dead, err = deadMem(t, a.Addr+i); err != nil {
							return nil, err
						}
					}
				}
			}
			noEffect = dead
		}
		if noEffect {
			fs.KnownNoEffect++
		} else {
			fs.Classes = append(fs.Classes, Class{Bit: 0, DefCycle: t - 1, UseCycle: t})
		}
	}
	indexByBit(fs)
	if err := fs.checkPartition(); err != nil {
		return nil, err
	}
	return fs, nil
}

// BuildPC partitions the PC-corruption fault space: coordinates are
// (slot t, bit b) with b ∈ [0, 32), flipping bit b of the boundary PC at
// slot t. codeLen is the traced program's length in instructions.
func BuildPC(g *trace.Golden, codeLen uint32) (*FaultSpace, error) {
	if err := needsControlTrace(g); err != nil {
		return nil, err
	}
	fs := &FaultSpace{
		Kind:   SpacePC,
		Cycles: g.Cycles,
		Bits:   machine.PCBits,
		byBit:  make(map[uint64][]int32),
	}
	for b := uint64(0); b < machine.PCBits; b++ {
		runStart := uint64(0) // first slot of the current bad-PC run, 0 = none
		flush := func(end uint64) {
			if runStart != 0 {
				fs.Classes = append(fs.Classes, Class{Bit: b, DefCycle: runStart - 1, UseCycle: end})
				runStart = 0
			}
		}
		for t := uint64(1); t <= g.Cycles; t++ {
			target := g.BoundaryPCs[t-1] ^ uint32(1)<<b
			if !g.IRQEntries[t-1] && target >= codeLen {
				// Deterministic ExcBadPC on the next fetch: extend the run.
				if runStart == 0 {
					runStart = t
				}
				continue
			}
			flush(t - 1)
			// An in-program flip (or a flip swallowed into the handler's
			// saved return address) must actually be executed.
			fs.Classes = append(fs.Classes, Class{Bit: b, DefCycle: t - 1, UseCycle: t})
		}
		flush(g.Cycles)
	}
	sort.Slice(fs.Classes, func(i, j int) bool {
		a, b := fs.Classes[i], fs.Classes[j]
		if a.UseCycle != b.UseCycle {
			return a.UseCycle < b.UseCycle
		}
		return a.Bit < b.Bit
	})
	indexByBit(fs)
	if err := fs.checkPartition(); err != nil {
		return nil, err
	}
	return fs, nil
}
