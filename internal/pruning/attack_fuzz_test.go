package pruning

import (
	"testing"
)

// FuzzSkipCoordinateRoundTrip fuzzes the skip-space class codec: archives
// and cluster work units ship skip classes as raw (def, use) pairs that
// FromClasses must reconstruct into exactly the encoded partition — or
// reject, never panic. Canonically constructed partitions (mode=true)
// must round-trip with every class preserved index-parallel and Locate
// agreeing with naive interval membership at every slot; arbitrary pairs
// (mode=false) probe the rejection paths.
func FuzzSkipCoordinateRoundTrip(f *testing.F) {
	f.Add(true, uint16(40), uint64(0), []byte{0, 1, 3, 2, 0, 0})
	f.Add(true, uint16(500), uint64(0), []byte{7, 3, 1, 1, 2, 0, 5, 3})
	f.Add(false, uint16(12), uint64(4), []byte{0, 0, 8, 0, 0, 7, 12, 0})
	f.Add(false, uint16(0), uint64(9), []byte{1, 200, 3, 0})
	f.Fuzz(func(t *testing.T, mode bool, cyc uint16, known uint64, raw []byte) {
		cycles := uint64(cyc)
		var classes []Class
		if mode {
			// Canonical construction: non-overlapping ascending intervals
			// with the known-No-Effect remainder computed to close the
			// partition. FromClasses must accept these unconditionally.
			slot, weight := uint64(1), uint64(0)
			for i := 0; i+1 < len(raw) && slot <= cycles; i += 2 {
				slot += uint64(raw[i] % 8)
				if slot > cycles {
					break
				}
				use := slot + uint64(raw[i+1]%4)
				if use > cycles {
					use = cycles
				}
				classes = append(classes, Class{Bit: 0, DefCycle: slot - 1, UseCycle: use})
				weight += use - (slot - 1)
				slot = use + 1
			}
			known = cycles - weight
		} else {
			// Arbitrary pairs: mostly invalid (wrong order, out-of-range
			// bits and cycles, broken partitions) — FromClasses must error
			// cleanly on every one it does not accept.
			for i := 0; i+3 < len(raw); i += 4 {
				classes = append(classes, Class{
					Bit:      uint64(raw[i] % 2),
					DefCycle: uint64(raw[i+1]),
					UseCycle: uint64(raw[i+2]) | uint64(raw[i+3])<<8,
				})
			}
		}

		fs, err := FromClasses(SpaceSkip, cycles, 1, classes, known)
		if err != nil {
			if mode {
				t.Fatalf("canonical skip partition rejected: %v", err)
			}
			return
		}
		if len(fs.Classes) != len(classes) {
			t.Fatalf("round trip changed class count: %d -> %d", len(classes), len(fs.Classes))
		}
		for i := range classes {
			if fs.Classes[i] != classes[i] {
				t.Fatalf("class %d changed in round trip: %+v -> %+v", i, classes[i], fs.Classes[i])
			}
		}
		for slot := uint64(1); slot <= cycles; slot++ {
			wantIn, wantCi := false, 0
			for ci, c := range classes {
				if slot > c.DefCycle && slot <= c.UseCycle {
					wantIn, wantCi = true, ci
					break
				}
			}
			ci, in, err := fs.Locate(slot, 0)
			if err != nil {
				t.Fatalf("Locate(%d, 0): %v", slot, err)
			}
			if in != wantIn || (in && ci != wantCi) {
				t.Fatalf("Locate(%d, 0) = (%d, %v), want (%d, %v)", slot, ci, in, wantCi, wantIn)
			}
		}
	})
}
