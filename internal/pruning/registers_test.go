package pruning

import (
	"testing"

	"faultspace/internal/machine"
	"faultspace/internal/trace"
)

// regGolden builds a Golden with only a register trace.
func regGolden(cycles uint64, accesses ...trace.Access) *trace.Golden {
	return &trace.Golden{
		Name:        "regs",
		Cycles:      cycles,
		RAMBits:     8,
		RegAccesses: accesses,
	}
}

func regAccess(cycle uint64, reg int, kind machine.AccessKind) trace.Access {
	return trace.Access{Cycle: cycle, Addr: uint32(reg-1) * 4, Size: 4, Kind: kind}
}

func TestBuildRegistersBasic(t *testing.T) {
	// r1 written at cycle 2, read at cycle 5.
	g := regGolden(6,
		regAccess(2, 1, machine.AccessWrite),
		regAccess(5, 1, machine.AccessRead),
	)
	fs, err := BuildRegisters(g)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Kind != SpaceRegisters {
		t.Errorf("kind = %v", fs.Kind)
	}
	if fs.Bits != machine.RegSpaceBits {
		t.Errorf("bits = %d, want %d", fs.Bits, machine.RegSpaceBits)
	}
	if fs.Size() != 6*machine.RegSpaceBits {
		t.Errorf("size = %d", fs.Size())
	}
	if len(fs.Classes) != 32 {
		t.Fatalf("classes = %d, want 32", len(fs.Classes))
	}
	for _, c := range fs.Classes {
		if c.Weight() != 3 || c.Slot() != 5 {
			t.Errorf("class %+v, want weight 3 slot 5", c)
		}
		if c.Bit >= 32 {
			t.Errorf("class bit %d outside r1's 32 bits", c.Bit)
		}
	}
}

// TestReadThenWriteSameCycle covers the intra-instruction pattern
// "addi r1, r1, 1": the read ends the interval, the same-cycle write
// starts the next one.
func TestReadThenWriteSameCycle(t *testing.T) {
	g := regGolden(8,
		regAccess(2, 1, machine.AccessWrite),
		regAccess(4, 1, machine.AccessRead),
		regAccess(4, 1, machine.AccessWrite),
		regAccess(7, 1, machine.AccessRead),
	)
	fs, err := BuildRegisters(g)
	if err != nil {
		t.Fatal(err)
	}
	// Per bit of r1: class (2,4] weight 2 and class (4,7] weight 3.
	var weights []uint64
	for _, c := range fs.Classes {
		if c.Bit == 0 {
			weights = append(weights, c.Weight())
		}
	}
	if len(weights) != 2 || weights[0] != 2 || weights[1] != 3 {
		t.Errorf("bit 0 weights = %v, want [2 3]", weights)
	}
}

func TestWriteThenReadSameCycleRejected(t *testing.T) {
	g := regGolden(8,
		regAccess(4, 1, machine.AccessWrite),
		regAccess(4, 1, machine.AccessRead),
	)
	if _, err := BuildRegisters(g); err == nil {
		t.Error("write-then-read in one cycle must be rejected (order is read-then-write)")
	}
}

func TestDoubleReadSameCycleRejected(t *testing.T) {
	g := regGolden(8,
		regAccess(4, 1, machine.AccessRead),
		regAccess(4, 1, machine.AccessRead),
	)
	if _, err := BuildRegisters(g); err == nil {
		t.Error("duplicate same-cycle reads must be rejected (the tracer deduplicates)")
	}
}

func TestRegisterPartitionInvariant(t *testing.T) {
	g := regGolden(20,
		regAccess(1, 1, machine.AccessWrite),
		regAccess(3, 2, machine.AccessWrite),
		regAccess(5, 1, machine.AccessRead),
		regAccess(5, 3, machine.AccessWrite),
		regAccess(9, 3, machine.AccessRead),
		regAccess(9, 3, machine.AccessWrite),
		regAccess(12, 2, machine.AccessRead),
		regAccess(15, 3, machine.AccessRead),
	)
	fs, err := BuildRegisters(g)
	if err != nil {
		t.Fatal(err)
	}
	var classWeight uint64
	for _, c := range fs.Classes {
		classWeight += c.Weight()
	}
	if classWeight+fs.KnownNoEffect != fs.Size() {
		t.Errorf("partition broken: %d + %d != %d", classWeight, fs.KnownNoEffect, fs.Size())
	}
}
