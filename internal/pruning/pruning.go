// Package pruning implements def/use fault-space pruning for transient
// single-bit faults in main memory (§III-C of Schirmeier et al., DSN 2015).
//
// The fault space of a benchmark run is the grid of (injection slot,
// memory bit) coordinates, with slot t ∈ [1, Δt] denoting a bit flip after
// instruction t−1 retired and before instruction t executes, and bit
// b ∈ [0, Δm). The def/use insight: all flips of a bit between one access
// and the next *read* of that bit are equivalent — the earliest point they
// can be activated is that read. Flips between an access and the next
// *write* (or after the last access) are never read and are known a priori
// to be "No Effect".
//
// Build therefore partitions the fault space into:
//
//   - equivalence classes, one per (read, bit) pair, each carrying its
//     exact Weight (the data lifetime in cycles, the correction factor
//     demanded by Pitfall 1), and
//   - a KnownNoEffect remainder whose outcome needs no experiment.
//
// The partition is exact: Σ class weights + KnownNoEffect = Δt·Δm.
package pruning

import (
	"fmt"
	"sort"

	"faultspace/internal/machine"
	"faultspace/internal/trace"
)

// Class is one def/use equivalence class: all injections into Bit during
// slots (DefCycle, UseCycle] behave identically, because the flipped bit is
// first consumed by the read at UseCycle.
type Class struct {
	Bit      uint64 // memory bit index (byte*8 + bit-in-byte)
	DefCycle uint64 // cycle of the preceding access (0 = start of run)
	UseCycle uint64 // cycle of the activating read; also the representative injection slot
}

// Weight is the number of fault-space coordinates the class stands for —
// the data lifetime in cycles. Results from the single representative
// experiment must be multiplied by this weight (Pitfall 1).
func (c Class) Weight() uint64 { return c.UseCycle - c.DefCycle }

// Slot is the representative injection slot: the latest possible time,
// directly before the activating read (the black dot in Fig. 1b).
func (c Class) Slot() uint64 { return c.UseCycle }

// SpaceKind identifies which machine state a fault space covers.
type SpaceKind uint8

// Fault-space kinds.
const (
	// SpaceMemory is the paper's primary fault model: single-bit flips in
	// main memory.
	SpaceMemory SpaceKind = iota + 1
	// SpaceRegisters is the §VI-B generalization: single-bit flips in the
	// CPU register file (r1..r15; r0 is hardwired zero and immune).
	SpaceRegisters
	// SpaceSkip is the instruction-skip attack model (ARMORY-style): the
	// dynamic instruction retiring at cycle t is not executed. The space
	// is one-dimensional (Bits = 1, one coordinate per slot); slots whose
	// skipped instruction provably cannot change the observable outcome
	// are known No Effect (see BuildSkip).
	SpaceSkip
	// SpacePC is single-bit PC corruption at an injection boundary: the
	// next fetch happens from the flipped address. Slots whose flip sends
	// the PC outside the program deterministically raise ExcBadPC and are
	// grouped per bit into maximal runs (see BuildPC).
	SpacePC
	// SpaceBurst2 and SpaceBurst4 are multi-bit burst faults: k adjacent
	// bits flipped in one RAM byte. A byte has 9−k burst positions; the
	// coordinate layout is byte*(9−k)+offset (see BuildBurst). Def/use
	// intervals are the memory model's, widened to whole-byte events.
	SpaceBurst2
	SpaceBurst4
)

// String returns the kind name.
func (k SpaceKind) String() string {
	switch k {
	case SpaceMemory:
		return "memory"
	case SpaceRegisters:
		return "registers"
	case SpaceSkip:
		return "skip"
	case SpacePC:
		return "pc"
	case SpaceBurst2:
		return "burst2"
	case SpaceBurst4:
		return "burst4"
	default:
		return fmt.Sprintf("space(%d)", uint8(k))
	}
}

// Valid reports whether k is a known fault-space kind.
func (k SpaceKind) Valid() bool {
	switch k {
	case SpaceMemory, SpaceRegisters, SpaceSkip, SpacePC, SpaceBurst2, SpaceBurst4:
		return true
	}
	return false
}

// BurstWidth returns the burst width k of a burst space kind (0 for
// non-burst kinds).
func (k SpaceKind) BurstWidth() int {
	switch k {
	case SpaceBurst2:
		return 2
	case SpaceBurst4:
		return 4
	}
	return 0
}

// FaultSpace is the pruned fault space of one golden run.
type FaultSpace struct {
	// Kind is the machine state this space covers.
	Kind SpaceKind
	// Cycles is Δt, the time dimension (number of injection slots).
	Cycles uint64
	// Bits is Δm, the memory dimension.
	Bits uint64
	// Classes are the equivalence classes requiring one experiment each,
	// sorted by (Slot, Bit).
	Classes []Class
	// KnownNoEffect is the total weight of coordinates known a priori to
	// be "No Effect" (faults overwritten before a read, or never read).
	KnownNoEffect uint64

	// byBit indexes Classes per bit for coordinate lookups; classes of a
	// bit are sorted by UseCycle.
	byBit map[uint64][]int32
}

// Size returns the raw fault-space size w = Δt·Δm.
func (fs *FaultSpace) Size() uint64 { return fs.Cycles * fs.Bits }

// ExperimentWeight returns the total weight covered by equivalence classes
// (the population w′ remaining after excluding known-No-Effect coordinates,
// §V-C Corollary 1).
func (fs *FaultSpace) ExperimentWeight() uint64 { return fs.Size() - fs.KnownNoEffect }

// ReductionFactor returns how many raw coordinates each conducted
// experiment stands for on average: w / #classes.
func (fs *FaultSpace) ReductionFactor() float64 {
	if len(fs.Classes) == 0 {
		return 0
	}
	return float64(fs.Size()) / float64(len(fs.Classes))
}

// Build partitions the main-memory fault space of the golden run.
func Build(g *trace.Golden) (*FaultSpace, error) {
	return buildSpace(SpaceMemory, g.Cycles, g.RAMBits, g.Accesses, 8)
}

// BuildRegisters partitions the register-file fault space of the golden
// run (§VI-B). Within a cycle a register may be read and then written (an
// instruction consumes sources before producing its destination); the read
// ends the previous def/use interval and the write starts the next one.
func BuildRegisters(g *trace.Golden) (*FaultSpace, error) {
	return buildSpace(SpaceRegisters, g.Cycles, g.RegBits(), g.RegAccesses, 8)
}

// BuildBurst partitions the k-adjacent-bit burst fault space (k ∈ {2, 4}).
//
// Soundness of reusing the memory def/use intervals: every fav32 RAM
// access reads or writes whole bytes, so all 9−k burst positions within a
// byte share that byte's event stream. A burst injected between an access
// and the next read of its byte is first consumed, in its entirety, by
// that read (all k flipped bits live in the one byte); a burst between an
// access and the next write is wholly overwritten. The single-bit interval
// partition therefore carries over with the per-byte coordinate count
// widened from 8 bits to 9−k positions.
func BuildBurst(g *trace.Golden, k int) (*FaultSpace, error) {
	var kind SpaceKind
	switch k {
	case 2:
		kind = SpaceBurst2
	case 4:
		kind = SpaceBurst4
	default:
		return nil, fmt.Errorf("pruning: unsupported burst width %d (want 2 or 4)", k)
	}
	perByte := uint64(9 - k)
	return buildSpace(kind, g.Cycles, g.RAMBits/8*perByte, g.Accesses, perByte)
}

// FromClasses reconstructs a fault space from externally stored classes
// (e.g. a scan archive). The classes are re-sorted, re-indexed and the
// exact-partition invariant is verified, so a tampered or inconsistent
// archive is rejected.
func FromClasses(kind SpaceKind, cycles, bits uint64, classes []Class, knownNoEffect uint64) (*FaultSpace, error) {
	if !kind.Valid() {
		return nil, fmt.Errorf("pruning: unknown space kind %d", kind)
	}
	fs := &FaultSpace{
		Kind:          kind,
		Cycles:        cycles,
		Bits:          bits,
		Classes:       make([]Class, len(classes)),
		KnownNoEffect: knownNoEffect,
		byBit:         make(map[uint64][]int32),
	}
	copy(fs.Classes, classes)
	for i, c := range fs.Classes {
		if c.Bit >= bits {
			return nil, fmt.Errorf("pruning: class bit %d outside space (%d bits)", c.Bit, bits)
		}
		if c.UseCycle > cycles {
			return nil, fmt.Errorf("pruning: class use cycle %d outside run (%d cycles)", c.UseCycle, cycles)
		}
		// Classes must arrive in canonical (Slot, Bit) order: outcome
		// arrays stored alongside them are index-parallel, so re-sorting
		// here would silently repair the pairing.
		if i > 0 {
			p := fs.Classes[i-1]
			if c.UseCycle < p.UseCycle || (c.UseCycle == p.UseCycle && c.Bit <= p.Bit) {
				return nil, fmt.Errorf("pruning: classes not in canonical (slot, bit) order at index %d", i)
			}
		}
	}
	indexByBit(fs)
	if err := fs.checkPartition(); err != nil {
		return nil, err
	}
	return fs, nil
}

// buildSpace partitions an access-interval fault space. perByte is the
// number of fault-space coordinates per accessed byte: 8 for single-bit
// spaces, 9−k for k-bit burst spaces (every access covers whole bytes, so
// all coordinates of a byte share its event stream).
//
// The construction is allocation-light on purpose: PrepareSpace runs once
// per scan (and once per benchmark iteration), and the map-of-slices +
// reflection-sort version of this function used to cost as much as a
// third of the executor's per-scan budget. Bit indices are dense — Bits
// is the RAM, register-file or burst coordinate count, bounded by the
// 64 KiB RAM ceiling — so per-bit event lists live in one flat array
// carved by prefix sums, and the final (Slot, Bit) ordering falls out of
// a counting sort over UseCycle rather than a comparison sort: the
// bit-major construction already yields ascending UseCycle per bit and
// ascending Bit per UseCycle, and counting placement is stable.
func buildSpace(kind SpaceKind, cycles, bits uint64, accesses []trace.Access, perByte uint64) (*FaultSpace, error) {
	fs := &FaultSpace{
		Kind:   kind,
		Cycles: cycles,
		Bits:   bits,
	}

	// Pass 1: count events per bit.
	counts := make([]int32, bits)
	for _, a := range accesses {
		if a.Cycle == 0 || a.Cycle > cycles {
			return nil, fmt.Errorf("pruning: access at cycle %d outside run of %d cycles", a.Cycle, cycles)
		}
		base := uint64(a.Addr) * perByte
		n := uint64(a.Size) * perByte
		if base+n > bits {
			return nil, fmt.Errorf("pruning: access to bit %d outside %s space (%d bits)", base+n-1, kind, bits)
		}
		for i := base; i < base+n; i++ {
			counts[i]++
		}
	}

	// Carve one flat event array into per-bit lists via prefix sums. An
	// event packs (cycle << 1 | isRead) into a uint64; cycle counts fit
	// 63 bits by construction.
	starts := make([]int32, bits+1)
	var total int32
	for b, c := range counts {
		starts[b] = total
		total += c
	}
	starts[bits] = total
	events := make([]uint64, total)
	fill := make([]int32, bits)
	copy(fill, starts[:bits])
	for _, a := range accesses {
		ev := a.Cycle << 1
		if a.Kind == machine.AccessRead {
			ev |= 1
		}
		base := uint64(a.Addr) * perByte
		n := uint64(a.Size) * perByte
		for i := base; i < base+n; i++ {
			events[fill[i]] = ev
			fill[i]++
		}
	}

	// Pass 2 over per-bit event lists: validate monotonicity, account
	// known-No-Effect weight, and count the classes (reads) per UseCycle
	// for the counting sort. Bits never accessed contribute Cycles
	// coordinates of known No Effect each.
	perCycle := make([]int32, cycles+2)
	var touched uint64
	var nclasses int32
	for bit := uint64(0); bit < bits; bit++ {
		evs := events[starts[bit]:starts[bit+1]]
		if len(evs) == 0 {
			continue
		}
		touched++
		// The trace is recorded in execution order. Per bit the cycles are
		// strictly increasing, except that a register read may be followed
		// by a write of the same register in the same cycle (the
		// instruction consumes before it produces); that write starts a
		// zero-length overwritten interval, which is fine.
		prev := uint64(0)
		prevRead := false
		for _, ev := range evs {
			cycle, read := ev>>1, ev&1 != 0
			if cycle < prev || (cycle == prev && !(prevRead && !read)) {
				return nil, fmt.Errorf("pruning: non-monotonic events for bit %d (cycle %d after %d)", bit, cycle, prev)
			}
			if read {
				perCycle[cycle+1]++
				nclasses++
			} else {
				// Injections in (prev, cycle] are overwritten by this write.
				fs.KnownNoEffect += cycle - prev
			}
			prev = cycle
			prevRead = read
		}
		// Tail after the last access: dormant, never read again.
		fs.KnownNoEffect += cycles - prev
	}
	fs.KnownNoEffect += (bits - touched) * cycles

	// Counting sort: place classes directly in canonical (Slot, Bit)
	// order, which the campaign engines need to advance a single pioneer
	// machine monotonically in time.
	for c := uint64(1); c < cycles+2; c++ {
		perCycle[c] += perCycle[c-1]
	}
	fs.Classes = make([]Class, nclasses)
	for bit := uint64(0); bit < bits; bit++ {
		prev := uint64(0)
		for _, ev := range events[starts[bit]:starts[bit+1]] {
			cycle, read := ev>>1, ev&1 != 0
			if read {
				fs.Classes[perCycle[cycle]] = Class{Bit: bit, DefCycle: prev, UseCycle: cycle}
				perCycle[cycle]++
			}
			prev = cycle
		}
	}
	indexByBit(fs)

	if err := fs.checkPartition(); err != nil {
		return nil, err
	}
	return fs, nil
}

// indexByBit (re)builds the per-bit class index. Classes are in
// canonical (Slot, Bit) order, so appending class indices bit by bit
// yields per-bit lists sorted by UseCycle, as Locate requires. The
// lists are carved from one flat backing array sized by a counting
// pass, so the index costs two slice allocations regardless of how
// many bits are touched.
func indexByBit(fs *FaultSpace) {
	counts := make(map[uint64]int32, len(fs.byBit))
	for _, c := range fs.Classes {
		counts[c.Bit]++
	}
	backing := make([]int32, 0, len(fs.Classes))
	fs.byBit = make(map[uint64][]int32, len(counts))
	for bit, n := range counts {
		lo := len(backing)
		backing = backing[:lo+int(n)]
		fs.byBit[bit] = backing[lo:lo:lo+int(n)]
	}
	for i, c := range fs.Classes {
		fs.byBit[c.Bit] = append(fs.byBit[c.Bit], int32(i))
	}
}

// checkPartition verifies the exact-partition invariant.
func (fs *FaultSpace) checkPartition() error {
	var classWeight uint64
	for _, c := range fs.Classes {
		if c.UseCycle <= c.DefCycle {
			return fmt.Errorf("pruning: class %+v has non-positive weight", c)
		}
		classWeight += c.Weight()
	}
	if classWeight+fs.KnownNoEffect != fs.Size() {
		return fmt.Errorf("pruning: partition mismatch: classes %d + known %d != w %d",
			classWeight, fs.KnownNoEffect, fs.Size())
	}
	return nil
}

// Locate maps a raw fault-space coordinate to its equivalence class.
// It returns the class index, or ok=false when the coordinate is known
// a priori to be "No Effect". Slot must be in [1, Cycles] and bit in
// [0, Bits).
func (fs *FaultSpace) Locate(slot, bit uint64) (int, bool, error) {
	if slot == 0 || slot > fs.Cycles {
		return 0, false, fmt.Errorf("pruning: slot %d outside [1, %d]", slot, fs.Cycles)
	}
	if bit >= fs.Bits {
		return 0, false, fmt.Errorf("pruning: bit %d outside [0, %d)", bit, fs.Bits)
	}
	idxs := fs.byBit[bit]
	// Classes per bit are sorted by UseCycle; find the first class with
	// UseCycle >= slot and check whether the slot falls inside it.
	lo := sort.Search(len(idxs), func(i int) bool {
		return fs.Classes[idxs[i]].UseCycle >= slot
	})
	if lo < len(idxs) {
		c := fs.Classes[idxs[lo]]
		if slot > c.DefCycle && slot <= c.UseCycle {
			return int(idxs[lo]), true, nil
		}
	}
	return 0, false, nil
}
