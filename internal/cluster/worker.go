package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"faultspace/internal/campaign"
	"faultspace/internal/checkpoint"
	"faultspace/internal/pruning"
	"faultspace/internal/telemetry"
	"faultspace/internal/trace"
)

// Worker sentinel errors.
var (
	// ErrShutdown is returned by Join when the coordinator announced an
	// interrupt-driven shutdown before the campaign completed.
	ErrShutdown = errors.New("cluster: coordinator shut down")
	// ErrRejected is returned when the coordinator rejected the worker —
	// identity mismatch or a protocol violation. Not retryable.
	ErrRejected = errors.New("cluster: rejected by coordinator")
	// ErrUnreachable is returned when the coordinator stayed unreachable
	// through the bounded retry budget.
	ErrUnreachable = errors.New("cluster: coordinator unreachable")
)

// WorkerOptions parameterizes Join.
type WorkerOptions struct {
	// ID names the worker in leases and statistics (default "w<pid>").
	ID string
	// Workers is the number of parallel experiment executors per unit
	// (default GOMAXPROCS, via campaign.Config).
	Workers int
	// Strategy selects the experiment execution strategy (default
	// snapshot). Deliberately free to differ from other workers — the
	// strategy-equivalence invariant guarantees identical outcomes.
	Strategy campaign.Strategy
	// LadderInterval is the rung spacing for campaign.StrategyLadder
	// (0 auto-tunes from the golden-trace length). Like Strategy, it is
	// outcome-invariant and local to this worker.
	LadderInterval uint64
	// Predecode enables the simulator's pre-decoded dispatch stream on
	// this worker's machines. Outcome-invariant and local to this worker.
	Predecode bool
	// Memo enables cross-experiment outcome memoization. The worker keeps
	// one cache per campaign, shared across all the units it leases — the
	// biggest win of the pool+memo combination, since leased units of the
	// same campaign funnel through many common post-fault states.
	// Outcome-invariant (invariant 11) and local to this worker.
	Memo bool
	// MaxRetries bounds consecutive failed attempts per request before
	// the worker gives up (default 6).
	MaxRetries int
	// BaseBackoff is the initial retry backoff, doubled per attempt up to
	// MaxBackoff (defaults 50ms / 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// PollInterval is the wait between lease polls when every unit is
	// leased out (default 200ms).
	PollInterval time.Duration
	// Interrupt, when closed, makes the worker stop abruptly — mid-unit,
	// without submitting or deregistering, exactly like a crash. The
	// lease-expiry path of the coordinator must absorb it.
	Interrupt <-chan struct{}
	// Telemetry, when non-nil, instruments the worker's campaign engine
	// (scan counters, outcome histograms, machine-pool reuse) across all
	// the units it runs. Session-scoped and local to this worker.
	Telemetry *telemetry.Registry
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Logf, when non-nil, receives worker life-cycle log lines.
	Logf func(format string, args ...any)
	// onUnit is a test hook invoked after each granted lease.
	onUnit func(u WorkUnit)
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.ID == "" {
		o.ID = fmt.Sprintf("w%d", os.Getpid())
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 6
	}
	if o.BaseBackoff == 0 {
		o.BaseBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.PollInterval == 0 {
		o.PollInterval = 200 * time.Millisecond
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Join connects to a coordinator, rebuilds the campaign from the
// handshake spec — the worker needs no local program knowledge — and
// pulls, executes and submits work units until the campaign completes.
// It returns nil on completion, ErrShutdown when the coordinator stopped
// early, campaign.ErrInterrupted when Options.Interrupt fired, and a
// permanent error for admission or protocol failures.
func Join(baseURL string, opts WorkerOptions) error {
	opts = opts.withDefaults()
	w := &worker{base: strings.TrimSuffix(baseURL, "/"), opts: opts}

	body, err := w.post("/v1/handshake", nil)
	if err != nil {
		return err
	}
	spec, err := DecodeSpec(body)
	if err != nil {
		return fmt.Errorf("cluster: handshake: %w", err)
	}
	return JoinCampaign(baseURL, spec, opts)
}

// JoinCampaign runs the worker loop for a campaign whose spec was
// obtained out of band — e.g. from the campaign service's fleet
// handshake, which assigns campaigns to workers dynamically. It rebuilds
// the campaign from the spec, verifies the identity hash and then
// leases, executes and submits work units exactly like Join.
func JoinCampaign(baseURL string, spec Spec, opts WorkerOptions) error {
	opts = opts.withDefaults()
	if spec.Proto != ProtoVersion {
		return fmt.Errorf("%w: coordinator speaks protocol %d, this worker %d", ErrRejected, spec.Proto, ProtoVersion)
	}
	w := &worker{base: strings.TrimSuffix(baseURL, "/"), opts: opts}
	if err := w.rebuild(spec); err != nil {
		return err
	}
	opts.Logf("worker %s: joined %s (%s, %d classes, %s space)",
		opts.ID, w.base, spec.Name, len(w.space.Classes), w.space.Kind)
	return w.loop()
}

type worker struct {
	base string
	opts WorkerOptions

	spec   Spec
	target campaign.Target
	golden *trace.Golden
	space  *pruning.FaultSpace
	cfg    campaign.Config

	// spans records this worker's slice of the campaign timeline (nil
	// when the spec carries no trace ID, i.e. tracing off). The recorder
	// is drained into every submission, so spans ride the existing result
	// path to the coordinator instead of needing their own endpoint.
	spans *telemetry.SpanRecorder
	// waitStart anchors the current worker.wait span: set when the first
	// UnitWait answer of an idle stretch arrives, cleared on any other
	// answer.
	waitStart time.Time
}

// rebuild reconstructs the campaign from the handshake spec via
// BuildCampaign — the worker-side half of the admission check — and
// layers this worker's local execution choices (all outcome-invariant)
// on top of the outcome-relevant config the spec pins down.
func (w *worker) rebuild(spec Spec) error {
	// A nonzero trace ID in the spec switches span tracing on: this
	// worker records its slice of the campaign timeline and ships it back
	// with each submission.
	if !spec.TraceID.IsZero() {
		w.spans = telemetry.NewSpanRecorder(spec.TraceID, w.opts.ID, 0)
	}
	sp := w.spans.Start("worker.rebuild")
	t, g, fs, cfg, err := BuildCampaign(spec)
	if err != nil {
		return err
	}
	if sp.Live() {
		sp.End(fmt.Sprintf("%s: golden replay + %d classes", spec.Name, len(fs.Classes)))
	}
	// One pool for the whole campaign: every leased unit is one
	// RunClasses call, and without the pool each of them would
	// re-allocate every worker machine's RAM image.
	pool := campaign.NewMachinePool(t)
	pool.Instrument(w.opts.Telemetry)
	cfg.Workers = w.opts.Workers
	cfg.Strategy = w.opts.Strategy
	cfg.LadderInterval = w.opts.LadderInterval
	cfg.Predecode = w.opts.Predecode
	cfg.Interrupt = w.opts.Interrupt
	cfg.Telemetry = w.opts.Telemetry
	cfg.Spans = w.spans
	cfg.Pool = pool
	if w.opts.Memo {
		// One cache per campaign, like the pool: every leased unit's
		// RunClasses call shares (and grows) the same entries.
		cfg.MemoCache = campaign.NewMemoCache()
	}
	w.target, w.golden, w.space, w.cfg, w.spec = t, g, fs, cfg, spec
	return nil
}

func (w *worker) loop() error {
	leaseReq := EncodeLeaseRequest(LeaseRequest{Identity: w.spec.Identity, WorkerID: w.opts.ID})
	for {
		if w.interrupted() {
			return campaign.ErrInterrupted
		}
		// Span the lease round trip: on a fleet whose units are small, the
		// HTTP protocol overhead is where the wall time goes, and a timeline
		// that leaves it dark would misattribute it to the scans.
		sp := w.spans.Start("worker.lease")
		body, err := w.post("/v1/lease", leaseReq)
		if err != nil {
			return err
		}
		u, err := DecodeWorkUnit(body)
		if err != nil {
			return fmt.Errorf("cluster: lease: %w", err)
		}
		if sp.Live() {
			sp.End("")
		}
		if w.opts.onUnit != nil {
			w.opts.onUnit(u)
		}
		if u.Status == UnitWait {
			if w.spans != nil && w.waitStart.IsZero() {
				w.waitStart = time.Now()
			}
		} else if !w.waitStart.IsZero() {
			// The idle stretch ended — one worker.wait span covers all the
			// consecutive UnitWait polls.
			w.spans.Record("worker.wait", "", w.waitStart, time.Since(w.waitStart))
			w.waitStart = time.Time{}
		}
		switch u.Status {
		case UnitDone:
			w.leave(leaseReq)
			w.opts.Logf("worker %s: campaign complete", w.opts.ID)
			return nil
		case UnitShutdown:
			w.leave(leaseReq)
			return ErrShutdown
		case UnitWait:
			select {
			case <-w.opts.Interrupt:
				return campaign.ErrInterrupted
			case <-time.After(w.opts.PollInterval):
			}
			continue
		}

		for _, ci := range u.Classes {
			if ci >= len(w.space.Classes) {
				return fmt.Errorf("%w: leased class %d outside the fault space", ErrRejected, ci)
			}
		}
		outcomes, err := w.runUnit(u)
		if err != nil {
			if errors.Is(err, campaign.ErrInterrupted) {
				// Die abruptly, as a crashed worker would: the unit's lease
				// expires and the coordinator reassigns it.
				return campaign.ErrInterrupted
			}
			return err
		}
		if err := w.submit(u, outcomes); err != nil {
			return err
		}
		w.opts.Logf("worker %s: unit %d done (%d classes)", w.opts.ID, u.ID, len(u.Classes))
	}
}

// runUnit executes one leased unit through the regular campaign
// machinery, heartbeating the lease while it runs.
func (w *worker) runUnit(u WorkUnit) (map[int]campaign.Outcome, error) {
	stop := make(chan struct{})
	defer close(stop)
	go w.heartbeat(u.ID, stop)
	sp := w.spans.Start("unit.scan")
	outcomes, err := campaign.RunClasses(w.target, w.golden, w.space, w.cfg, u.Classes)
	if err == nil && sp.Live() {
		sp.End(fmt.Sprintf("unit %d (%d classes)", u.ID, len(u.Classes)))
	}
	return outcomes, err
}

// heartbeat extends the lease of a unit every LeaseTTL/3 until stopped.
// Failures are ignored: a missed heartbeat at worst costs a reassignment,
// which the idempotent merge absorbs.
func (w *worker) heartbeat(unitID uint64, stop <-chan struct{}) {
	frame := EncodeHeartbeat(Heartbeat{Identity: w.spec.Identity, WorkerID: w.opts.ID, Units: []uint64{unitID}})
	t := time.NewTicker(w.spec.LeaseTTL / 3)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			w.postOnce("/v1/heartbeat", frame)
		}
	}
}

func (w *worker) submit(u WorkUnit, outcomes map[int]campaign.Outcome) error {
	entries := make([]checkpoint.Entry, 0, len(outcomes))
	for ci, o := range outcomes {
		entries = append(entries, checkpoint.Entry{Class: ci, Outcome: uint8(o)})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Class < entries[j].Class })
	// The worker.submit span ends after the drain below, so it ships with
	// the NEXT submission — each timeline batch trails the round trip that
	// carried the previous one. The final submit span of a campaign is
	// never shipped; the coordinator's unit.lease span covers that tail.
	sp := w.spans.Start("worker.submit")
	_, err := w.post("/v1/submit", EncodeSubmission(Submission{
		Identity: w.spec.Identity,
		WorkerID: w.opts.ID,
		UnitID:   u.ID,
		Token:    u.Token,
		Entries:  entries,
		// Drain the recorder into the submission: spans ride the result
		// path, so the coordinator's timeline grows as work completes with
		// no extra round trips. Nil (and zero wire bytes) when tracing is
		// off.
		Spans: w.spans.Drain(),
	}))
	if err == nil && sp.Live() {
		sp.End(fmt.Sprintf("unit %d", u.ID))
	}
	return err
}

// leave deregisters the worker, best effort.
func (w *worker) leave(leaseReq []byte) {
	w.postOnce("/v1/leave", leaseReq)
}

func (w *worker) interrupted() bool {
	select {
	case <-w.opts.Interrupt:
		return true
	default:
		return false
	}
}

// post issues one POST with bounded retries and exponential backoff.
// Transport errors and 5xx responses are retried; 4xx responses are
// permanent (ErrRejected).
func (w *worker) post(path string, body []byte) ([]byte, error) {
	backoff := w.opts.BaseBackoff
	var lastErr error
	for attempt := 0; attempt < w.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-w.opts.Interrupt:
				return nil, campaign.ErrInterrupted
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > w.opts.MaxBackoff {
				backoff = w.opts.MaxBackoff
			}
		}
		resp, status, err := w.postOnce(path, body)
		switch {
		case err != nil:
			lastErr = err
		case status == http.StatusOK:
			return resp, nil
		case status >= 500:
			lastErr = fmt.Errorf("cluster: %s: HTTP %d: %s", path, status, strings.TrimSpace(string(resp)))
		default:
			return nil, fmt.Errorf("%w: %s: HTTP %d: %s", ErrRejected, path, status, strings.TrimSpace(string(resp)))
		}
		w.opts.Logf("worker %s: %s attempt %d/%d failed: %v", w.opts.ID, path, attempt+1, w.opts.MaxRetries, lastErr)
	}
	return nil, fmt.Errorf("%w: %s after %d attempts: %v", ErrUnreachable, path, w.opts.MaxRetries, lastErr)
}

func (w *worker) postOnce(path string, body []byte) ([]byte, int, error) {
	resp, err := w.opts.Client.Post(w.base+path, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBody+1))
	if err != nil {
		return nil, 0, err
	}
	return data, resp.StatusCode, nil
}
