package cluster

import (
	"fmt"

	"faultspace/internal/campaign"
	"faultspace/internal/isa"
	"faultspace/internal/machine"
	"faultspace/internal/pruning"
	"faultspace/internal/telemetry"
	"faultspace/internal/trace"
)

// NewSpec assembles the campaign spec: the complete, self-contained
// campaign description shipped in coordinator handshakes and accepted as
// the body of a service campaign submission. classes is the total
// equivalence-class count of the prepared fault space (a sanity check
// the receiving side re-verifies after rebuilding the campaign).
// LeaseTTL defaults to DefaultLeaseTTL; a serving coordinator stamps its
// own before answering handshakes.
func NewSpec(t campaign.Target, kind pruning.SpaceKind, cfg campaign.Config, maxGoldenCycles, classes uint64) (Spec, error) {
	id, err := t.CampaignIdentity(kind, cfg)
	if err != nil {
		return Spec{}, fmt.Errorf("identity: %w", err)
	}
	code, err := isa.EncodeProgram(t.Code)
	if err != nil {
		return Spec{}, fmt.Errorf("encode program: %w", err)
	}
	factor, slack := cfg.EffectiveTimeout()
	objective := ""
	if cfg.Objective != nil {
		objective = cfg.Objective.Name
	}
	return Spec{
		Proto:           ProtoVersion,
		Identity:        id,
		Name:            t.Name,
		Code:            code,
		Image:           t.Image,
		RAMSize:         uint64(t.Mach.RAMSize),
		MaxSerial:       uint64(t.Mach.MaxSerial),
		TimerPeriod:     t.Mach.TimerPeriod,
		TimerVector:     uint32(t.Mach.TimerVector),
		SpaceKind:       uint8(kind),
		TimeoutFactor:   factor,
		TimeoutSlack:    slack,
		MaxGoldenCycles: maxGoldenCycles,
		Classes:         classes,
		LeaseTTL:        DefaultLeaseTTL,
		Objective:       objective,
		// A fresh trace ID per spec: every campaign's fleet spans correlate
		// under one 128-bit ID. The ID is observability identity only —
		// campaign identity (the hash above) never covers it (invariant 15),
		// so re-running the same campaign archives byte-identical reports
		// under a different trace.
		TraceID: telemetry.NewTraceID(),
	}, nil
}

// BuildCampaign reconstructs a campaign from a spec deterministically:
// it decodes the program, re-records the golden run, re-derives the
// pruned fault space and verifies both the announced class count and the
// campaign identity hash. A spec whose rebuild diverges (different
// simulator semantics, skewed or forged spec) fails here rather than
// poisoning results — this is the worker-side half of the admission
// check, and the service's submission validation.
//
// The returned config carries only the outcome-relevant parameters (the
// timeout budget); callers layer their local execution choices (workers,
// strategy, pool, memo) on top, which never changes the identity.
func BuildCampaign(spec Spec) (campaign.Target, *trace.Golden, *pruning.FaultSpace, campaign.Config, error) {
	var cfg campaign.Config
	code, err := isa.DecodeProgram(spec.Code)
	if err != nil {
		return campaign.Target{}, nil, nil, cfg, fmt.Errorf("cluster: spec program: %w", err)
	}
	t := campaign.Target{
		Name:  spec.Name,
		Code:  code,
		Image: append([]byte(nil), spec.Image...),
		Mach: machine.Config{
			RAMSize:     int(spec.RAMSize),
			MaxSerial:   int(spec.MaxSerial),
			TimerPeriod: spec.TimerPeriod,
			TimerVector: spec.TimerVector,
		},
	}
	obj, err := campaign.ObjectiveByName(spec.Objective)
	if err != nil {
		// An unknown objective name must fail loudly: this worker cannot
		// reproduce the campaign's outcomes, so running anyway would poison
		// results (the identity check below would also trip, less clearly).
		return campaign.Target{}, nil, nil, cfg, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	cfg = campaign.Config{
		TimeoutFactor: spec.TimeoutFactor,
		TimeoutSlack:  spec.TimeoutSlack,
		Objective:     obj,
	}
	kind := pruning.SpaceKind(spec.SpaceKind)
	g, fs, err := t.PrepareSpace(kind, spec.MaxGoldenCycles)
	if err != nil {
		return campaign.Target{}, nil, nil, cfg, fmt.Errorf("cluster: rebuild campaign: %w", err)
	}
	if uint64(len(fs.Classes)) != spec.Classes {
		return campaign.Target{}, nil, nil, cfg, fmt.Errorf("%w: rebuilt fault space has %d classes, spec announced %d",
			ErrRejected, len(fs.Classes), spec.Classes)
	}
	id, err := t.CampaignIdentity(kind, cfg)
	if err != nil {
		return campaign.Target{}, nil, nil, cfg, fmt.Errorf("cluster: identity: %w", err)
	}
	if id != spec.Identity {
		return campaign.Target{}, nil, nil, cfg, fmt.Errorf("%w: rebuilt campaign identity differs from the spec's", ErrRejected)
	}
	return t, g, fs, cfg, nil
}
