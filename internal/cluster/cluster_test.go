package cluster

import (
	"bytes"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"faultspace/internal/campaign"
	"faultspace/internal/machine"
	"faultspace/internal/progs"
	"faultspace/internal/pruning"
	"faultspace/internal/trace"
)

const testMaxGolden = 1 << 22

// testCampaign prepares a small benchmark campaign.
func testCampaign(t testing.TB, name string) (campaign.Target, *trace.Golden, *pruning.FaultSpace) {
	t.Helper()
	spec, err := progs.Resolve(name, progs.Sizes{
		BinSemRounds: 1, SyncRounds: 1, SyncBufBytes: 16,
		ClockTicks: 2, ClockPeriod: 32, MboxMessages: 2,
		PreemptWork: 8, PreemptPeriod: 24, SortElements: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := spec.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	tgt := campaign.Target{
		Name:  prog.Name,
		Code:  prog.Code,
		Image: prog.Image,
		Mach: machine.Config{
			RAMSize:     prog.RAMSize,
			TimerPeriod: prog.TimerPeriod,
			TimerVector: prog.TimerVector,
		},
	}
	golden, fs, err := tgt.PrepareSpace(pruning.SpaceMemory, testMaxGolden)
	if err != nil {
		t.Fatal(err)
	}
	return tgt, golden, fs
}

// runCluster serves a coordinator on a loopback listener, joins it with
// the given worker option sets concurrently, and returns the result plus
// the per-worker Join errors.
func runCluster(t testing.TB, coord *Coordinator, workers []WorkerOptions) (*campaign.Result, []error) {
	t.Helper()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w WorkerOptions) {
			defer wg.Done()
			errs[i] = Join(srv.URL, w)
		}(i, w)
	}
	res, err := coord.Wait()
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	wg.Wait()
	coord.Seal()
	return res, errs
}

func assertPlacementEquivalent(t *testing.T, tgt campaign.Target, golden *trace.Golden, fs *pruning.FaultSpace, got *campaign.Result) {
	t.Helper()
	want, err := campaign.FullScan(tgt, golden, fs, campaign.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Identity != want.Identity {
		t.Error("distributed campaign must keep the local campaign identity")
	}
	if len(got.Outcomes) != len(want.Outcomes) {
		t.Fatalf("outcome vector length %d, want %d", len(got.Outcomes), len(want.Outcomes))
	}
	for i := range want.Outcomes {
		if got.Outcomes[i] != want.Outcomes[i] {
			t.Fatalf("class %d (slot %d, bit %d): distributed %v, local %v", i,
				fs.Classes[i].Slot(), fs.Classes[i].Bit, got.Outcomes[i], want.Outcomes[i])
		}
	}
}

// TestClusterPlacementEquivalence: a coordinator plus two loopback
// workers — one snapshot, one rerun — must produce the exact outcome
// vector of a local FullScan.
func TestClusterPlacementEquivalence(t *testing.T) {
	tgt, golden, fs := testCampaign(t, "bin_sem2")
	coord, err := NewCoordinator(tgt, golden, fs, campaign.Config{}, Options{
		UnitSize:        32,
		MaxGoldenCycles: testMaxGolden,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, errs := runCluster(t, coord, []WorkerOptions{
		{ID: "snap"},
		{ID: "rerun", Strategy: campaign.StrategyRerun},
	})
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	assertPlacementEquivalent(t, tgt, golden, fs, res)

	p := coord.Snapshot()
	if p.Done != len(fs.Classes) || p.OutstandingLeases != 0 {
		t.Errorf("final progress: done %d/%d, %d leases outstanding", p.Done, p.Total, p.OutstandingLeases)
	}
	if len(p.Workers) != 2 {
		t.Errorf("progress knows %d workers, want 2", len(p.Workers))
	}
	var merged int
	for _, ws := range p.Workers {
		merged += ws.Merged
	}
	if merged != len(fs.Classes) {
		t.Errorf("workers merged %d classes, want %d", merged, len(fs.Classes))
	}
}

// TestClusterKillWorkerMidScan kills one worker abruptly mid-unit (no
// submit, no leave — exactly a crash) and proves the lease machinery
// loses nothing: the survivor finishes, at least one unit is reassigned,
// and the result still matches a local FullScan.
func TestClusterKillWorkerMidScan(t *testing.T) {
	tgt, golden, fs := testCampaign(t, "sort1")
	coord, err := NewCoordinator(tgt, golden, fs, campaign.Config{}, Options{
		UnitSize:        16,
		LeaseTTL:        150 * time.Millisecond,
		MaxGoldenCycles: testMaxGolden,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	kill := make(chan struct{})
	var once sync.Once
	victim := WorkerOptions{
		ID:        "victim",
		Interrupt: kill,
		// Slow strategy + single executor so the kill lands mid-unit.
		Strategy: campaign.StrategyRerun,
		Workers:  1,
		onUnit: func(u WorkUnit) {
			if u.Status == UnitGranted {
				once.Do(func() { close(kill) })
			}
		},
	}
	survivor := WorkerOptions{ID: "survivor", PollInterval: 20 * time.Millisecond}

	res, errs := runCluster(t, coord, []WorkerOptions{victim, survivor})
	if !errors.Is(errs[0], campaign.ErrInterrupted) {
		t.Errorf("victim: err = %v, want ErrInterrupted", errs[0])
	}
	if errs[1] != nil {
		t.Errorf("survivor: %v", errs[1])
	}
	assertPlacementEquivalent(t, tgt, golden, fs, res)
	if got := coord.Snapshot().Reassignments; got < 1 {
		t.Errorf("reassignments = %d, want >= 1 (the victim's leased unit must expire and move)", got)
	}
}

// TestClusterUnitOrderInvariance pins two properties of the unit
// carving. First, every unit's class list is injection-ordered (the
// fork worker's monotone-cursor precondition). Second, the order units
// are GRANTED in must not matter: with the coordinator's pending queue
// shuffled and a fork-strategy worker draining it, the merged outcome
// vector — and with it every archived report, which is a pure function
// of target, space, identity and outcomes — stays byte-identical to a
// local FullScan and to an unshuffled cluster run.
func TestClusterUnitOrderInvariance(t *testing.T) {
	tgt, golden, fs := testCampaign(t, "bin_sem2")
	outcomesOf := func(shuffleSeed int64) []campaign.Outcome {
		coord, err := NewCoordinator(tgt, golden, fs, campaign.Config{}, Options{
			UnitSize:        16,
			MaxGoldenCycles: testMaxGolden,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range coord.units {
			for i := 1; i < len(u.classes); i++ {
				if fs.Classes[u.classes[i]].Slot() < fs.Classes[u.classes[i-1]].Slot() {
					t.Fatalf("unit %d not injection-ordered at position %d", u.id, i)
				}
			}
		}
		if shuffleSeed != 0 {
			rng := rand.New(rand.NewSource(shuffleSeed))
			rng.Shuffle(len(coord.pending), func(i, j int) {
				coord.pending[i], coord.pending[j] = coord.pending[j], coord.pending[i]
			})
		}
		res, errs := runCluster(t, coord, []WorkerOptions{
			{ID: "fork", Strategy: campaign.StrategyFork},
		})
		if errs[0] != nil {
			t.Fatal(errs[0])
		}
		assertPlacementEquivalent(t, tgt, golden, fs, res)
		return res.Outcomes
	}
	ref := outcomesOf(0)
	for _, seed := range []int64{1, 2} {
		got := outcomesOf(seed)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("seed %d: class %d: %v, want %v (grant order leaked into outcomes)",
					seed, i, got[i], ref[i])
			}
		}
	}
}

// TestClusterResumeFromPrior seeds the coordinator with half the
// outcomes (as a checkpoint restore would) and verifies only the
// remainder is executed, with the merged result still bit-identical.
func TestClusterResumeFromPrior(t *testing.T) {
	tgt, golden, fs := testCampaign(t, "hi")
	want, err := campaign.FullScan(tgt, golden, fs, campaign.Config{})
	if err != nil {
		t.Fatal(err)
	}
	prior := make(map[int]campaign.Outcome)
	for i := 0; i < len(fs.Classes)/2; i++ {
		prior[i] = want.Outcomes[i]
	}
	coord, err := NewCoordinator(tgt, golden, fs, campaign.Config{}, Options{
		UnitSize:        4,
		MaxGoldenCycles: testMaxGolden,
	}, prior)
	if err != nil {
		t.Fatal(err)
	}
	res, errs := runCluster(t, coord, []WorkerOptions{{ID: "w"}})
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	assertPlacementEquivalent(t, tgt, golden, fs, res)
	if p := coord.Snapshot(); p.Session != len(fs.Classes)-len(prior) {
		t.Errorf("session executed %d classes, want %d (prior must not re-run)", p.Session, len(fs.Classes)-len(prior))
	}
}

// TestClusterIdentityAdmission: requests carrying a different campaign
// identity must be rejected with HTTP 409 — the admission check that
// keeps a worker with a different program image, fault space or timeout
// budget out of the campaign.
func TestClusterIdentityAdmission(t *testing.T) {
	tgt, golden, fs := testCampaign(t, "hi")
	coord, err := NewCoordinator(tgt, golden, fs, campaign.Config{}, Options{MaxGoldenCycles: testMaxGolden}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	var wrong [32]byte
	wrong[0] = 0xff
	for _, tc := range []struct {
		path string
		body []byte
	}{
		{"/v1/lease", EncodeLeaseRequest(LeaseRequest{Identity: wrong, WorkerID: "evil"})},
		{"/v1/submit", EncodeSubmission(Submission{Identity: wrong, WorkerID: "evil"})},
		{"/v1/heartbeat", EncodeHeartbeat(Heartbeat{Identity: wrong, WorkerID: "evil"})},
	} {
		resp, err := http.Post(srv.URL+tc.path, "application/octet-stream", bytes.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("%s with foreign identity: HTTP %d, want 409", tc.path, resp.StatusCode)
		}
	}

	// A worker whose timeout budget differs computes a different identity
	// and must refuse during its own handshake verification too: simulate
	// by corrupting the spec the coordinator would serve. Covered from the
	// worker side via a coordinator for a different campaign.
	tgt2, golden2, fs2 := testCampaign(t, "sort1")
	cfg2 := campaign.Config{TimeoutFactor: 2}
	coord2, err := NewCoordinator(tgt2, golden2, fs2, cfg2, Options{MaxGoldenCycles: testMaxGolden}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = coord2
	if coord.Identity() == coord2.Identity() {
		t.Error("different campaigns must have different identities")
	}
}

// TestClusterInterruptShutdown: closing the coordinator's interrupt
// stops lease grants; a polling worker receives the shutdown notice and
// exits with ErrShutdown.
func TestClusterInterruptShutdown(t *testing.T) {
	tgt, golden, fs := testCampaign(t, "hi")
	intCh := make(chan struct{})
	coord, err := NewCoordinator(tgt, golden, fs, campaign.Config{}, Options{
		MaxGoldenCycles: testMaxGolden,
		Interrupt:       intCh,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	close(intCh)
	if _, err := coord.Wait(); !errors.Is(err, campaign.ErrInterrupted) {
		t.Fatalf("Wait: %v, want ErrInterrupted", err)
	}
	if err := Join(srv.URL, WorkerOptions{ID: "late"}); !errors.Is(err, ErrShutdown) {
		t.Errorf("Join after interrupt: %v, want ErrShutdown", err)
	}
}

// TestClusterMethodRejection: every mutating cluster endpoint enforces
// POST and the read endpoints GET; anything else gets 405 with an Allow
// header naming the one accepted method.
func TestClusterMethodRejection(t *testing.T) {
	tgt, golden, fs := testCampaign(t, "hi")
	coord, err := NewCoordinator(tgt, golden, fs, campaign.Config{}, Options{
		MaxGoldenCycles: testMaxGolden,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	cases := []struct {
		path   string
		method string // the rejected method to try
		allow  string
	}{
		{"/v1/handshake", http.MethodGet, "POST"},
		{"/v1/handshake", http.MethodDelete, "POST"},
		{"/v1/lease", http.MethodGet, "POST"},
		{"/v1/submit", http.MethodGet, "POST"},
		{"/v1/submit", http.MethodPut, "POST"},
		{"/v1/heartbeat", http.MethodGet, "POST"},
		{"/v1/leave", http.MethodGet, "POST"},
		{"/v1/status", http.MethodPost, "GET"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: HTTP %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != tc.allow {
			t.Errorf("%s %s: Allow %q, want %q", tc.method, tc.path, got, tc.allow)
		}
	}
}
