package cluster

import (
	"fmt"
	"sort"
	"time"
)

// Straggler is one watchdog verdict: a worker (or the unit it holds)
// that the coordinator flags as anomalously slow or silent. Verdicts
// are advisory — the lease machinery still reclaims and reassigns on
// its own schedule — but they surface in /v1/status, as trace events
// and in the fleet.stragglers gauge, so an operator (or an autoscaler)
// sees a stalling fleet member before its leases start expiring.
type Straggler struct {
	WorkerID string `json:"workerId"`
	// Kind is "lease_outlier" (the unit has been held far longer than
	// the fleet's typical lease duration) or "silent_heartbeat" (the
	// worker holds units but has not been heard from in two heartbeat
	// intervals).
	Kind   string `json:"kind"`
	UnitID uint64 `json:"unitId,omitempty"`
	// AgeMs is how long the condition has persisted; ThresholdMs the
	// bound it exceeded.
	AgeMs       float64 `json:"ageMs"`
	ThresholdMs float64 `json:"thresholdMs"`
}

// Watchdog thresholds (DESIGN.md §4d).
const (
	// watchdogMinSamples is how many completed leases the outlier
	// detector needs before it trusts its statistics.
	watchdogMinSamples = 5
	// watchdogLeaseWindow bounds the completed-lease-duration window the
	// MAD statistics are computed over (a ring: old campaigns phases age
	// out, so the baseline tracks the current workload).
	watchdogLeaseWindow = 512
	// watchdogMADFactor scales the normalized MAD (1.4826·MAD estimates
	// one standard deviation for normal data) into the outlier slack.
	watchdogMADFactor = 4.0
	// watchdogFloor is the minimum outlier slack, so microsecond-scale
	// lease baselines don't flag ordinary scheduling jitter.
	watchdogFloor = 10 * time.Millisecond
)

// recordLeaseDurationLocked feeds one completed lease (grant → full
// merge) into the watchdog's ring window.
func (c *Coordinator) recordLeaseDurationLocked(d time.Duration) {
	if len(c.leaseDurs) < watchdogLeaseWindow {
		c.leaseDurs = append(c.leaseDurs, d)
	} else {
		c.leaseDurs[c.leaseDurNext%watchdogLeaseWindow] = d
	}
	c.leaseDurNext++
}

// leaseThresholdLocked derives the lease-duration outlier bound:
// median + max(4·1.4826·MAD, median, 10ms) over the completed-lease
// window. The median/MAD pair is robust — a few genuinely slow units in
// the window shift the bound far less than a mean/stddev pair would.
// Returns ok=false until watchdogMinSamples leases completed.
func (c *Coordinator) leaseThresholdLocked() (time.Duration, bool) {
	n := len(c.leaseDurs)
	if n < watchdogMinSamples {
		return 0, false
	}
	durs := append([]time.Duration(nil), c.leaseDurs...)
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	med := durs[n/2]
	devs := durs // reuse: overwrite in place with |x-med|
	for i, d := range durs {
		if d >= med {
			devs[i] = d - med
		} else {
			devs[i] = med - d
		}
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	mad := devs[n/2]
	slack := time.Duration(watchdogMADFactor * 1.4826 * float64(mad))
	if slack < med {
		slack = med
	}
	if slack < watchdogFloor {
		slack = watchdogFloor
	}
	return med + slack, true
}

// stragglersLocked computes the current watchdog verdicts, emits a
// trace event for each newly flagged condition, and keeps the
// fleet.stragglers gauge current.
func (c *Coordinator) stragglersLocked() []Straggler {
	now := time.Now()
	var out []Straggler
	flag := func(s Straggler) {
		out = append(out, s)
		key := fmt.Sprintf("%s/%s/%d", s.WorkerID, s.Kind, s.UnitID)
		if !c.flagged[key] {
			c.flagged[key] = true
			c.opts.Telemetry.Tracef("watchdog.straggler", "%s %s unit %d: %.0fms > %.0fms",
				s.Kind, s.WorkerID, s.UnitID, s.AgeMs, s.ThresholdMs)
		}
	}

	if threshold, ok := c.leaseThresholdLocked(); ok {
		for _, u := range c.units {
			if u.state != unitLeased || u.grantedAt.IsZero() {
				continue
			}
			if age := now.Sub(u.grantedAt); age > threshold {
				flag(Straggler{
					WorkerID: u.owner, Kind: "lease_outlier", UnitID: u.id,
					AgeMs:       float64(age) / float64(time.Millisecond),
					ThresholdMs: float64(threshold) / float64(time.Millisecond),
				})
			}
		}
	}

	// Workers heartbeat every LeaseTTL/3 (worker.go); a holder silent
	// for two intervals is stalling even though its lease has not
	// expired yet.
	silentAfter := 2 * c.opts.LeaseTTL / 3
	for _, wi := range c.workers {
		if wi.left || wi.outstanding == 0 || wi.lastSeen.IsZero() {
			continue
		}
		if age := now.Sub(wi.lastSeen); age > silentAfter {
			flag(Straggler{
				WorkerID: wi.id, Kind: "silent_heartbeat",
				AgeMs:       float64(age) / float64(time.Millisecond),
				ThresholdMs: float64(silentAfter) / float64(time.Millisecond),
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].WorkerID != out[j].WorkerID {
			return out[i].WorkerID < out[j].WorkerID
		}
		return out[i].Kind < out[j].Kind
	})
	c.telStragglers.Set(int64(len(out)))
	return out
}

// Stragglers returns the current watchdog verdicts (also served in
// /v1/status).
func (c *Coordinator) Stragglers() []Straggler {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stragglersLocked()
}
