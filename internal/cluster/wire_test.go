package cluster

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"faultspace/internal/checkpoint"
	"faultspace/internal/telemetry"
)

func testSpec() Spec {
	var id [32]byte
	for i := range id {
		id[i] = byte(i * 7)
	}
	var tr telemetry.TraceID
	for i := range tr {
		tr[i] = byte(i + 1)
	}
	return Spec{
		Proto:           ProtoVersion,
		Identity:        id,
		Name:            "hi/baseline",
		Code:            []byte{1, 2, 3, 4, 5, 6, 7, 8},
		Image:           []byte{0xaa, 0x55},
		RAMSize:         2,
		MaxSerial:       1 << 16,
		TimerPeriod:     64,
		TimerVector:     12,
		SpaceKind:       1,
		TimeoutFactor:   4,
		TimeoutSlack:    256,
		MaxGoldenCycles: 1 << 22,
		Classes:         16,
		LeaseTTL:        10 * time.Second,
		Objective:       "bypass",
		TraceID:         tr,
	}
}

// TestWorkerRejectsProtoMismatch pins the fleet upgrade story: a worker
// handed a spec from a coordinator speaking another protocol version
// (e.g. a v1 binary joining a v2 campaign carrying an objective) must
// refuse at admission, before any network traffic or scan work.
func TestWorkerRejectsProtoMismatch(t *testing.T) {
	for _, proto := range []uint32{ProtoVersion - 1, ProtoVersion + 1, 0} {
		spec := testSpec()
		spec.Proto = proto
		err := JoinCampaign("http://invalid.invalid", spec, WorkerOptions{ID: "w"})
		if !errors.Is(err, ErrRejected) {
			t.Errorf("proto %d: err = %v, want ErrRejected", proto, err)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	want := testSpec()
	got, err := DecodeSpec(EncodeSpec(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("spec round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestWorkUnitRoundTrip(t *testing.T) {
	for _, want := range []WorkUnit{
		{Status: UnitGranted, ID: 3, Token: 99, Classes: []int{0, 1, 5, 1000, 1001}},
		{Status: UnitWait},
		{Status: UnitDone},
		{Status: UnitShutdown},
	} {
		got, err := DecodeWorkUnit(EncodeWorkUnit(want))
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("unit round trip:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestSubmissionRoundTrip(t *testing.T) {
	want := Submission{
		WorkerID: "w1",
		UnitID:   7,
		Token:    42,
		Entries: []checkpoint.Entry{
			{Class: 0, Outcome: 2}, {Class: 3, Outcome: 0}, {Class: 4, Outcome: 7},
		},
		// Scope is deliberately empty: it is not encoded on the wire —
		// the coordinator stamps the admitted worker ID instead, so a
		// worker cannot attribute spans to another.
		Spans: []telemetry.Span{
			{Name: "unit.scan", Detail: "unit 7", Start: time.Unix(0, 1234567890), Dur: 5 * time.Millisecond},
			{Name: "worker.wait", Start: time.Unix(0, 42), Dur: time.Microsecond},
		},
	}
	want.Identity[0] = 0xfe
	got, err := DecodeSubmission(EncodeSubmission(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("submission round trip:\n got %+v\nwant %+v", got, want)
	}
	// A span with a scope set must come back without it: the field does
	// not survive the wire by design.
	scoped := want
	scoped.Spans = []telemetry.Span{{Scope: "forged", Name: "x", Start: time.Unix(0, 1), Dur: 1}}
	got, err = DecodeSubmission(EncodeSubmission(scoped))
	if err != nil {
		t.Fatal(err)
	}
	if got.Spans[0].Scope != "" {
		t.Errorf("span scope %q crossed the wire, want stripped", got.Spans[0].Scope)
	}
}

func TestHeartbeatAndLeaseRoundTrip(t *testing.T) {
	hb := Heartbeat{WorkerID: "w2", Units: []uint64{1, 9}}
	gotHB, err := DecodeHeartbeat(EncodeHeartbeat(hb))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotHB, hb) {
		t.Errorf("heartbeat round trip: got %+v want %+v", gotHB, hb)
	}
	lr := LeaseRequest{WorkerID: "w3"}
	gotLR, err := DecodeLeaseRequest(EncodeLeaseRequest(lr))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotLR, lr) {
		t.Errorf("lease round trip: got %+v want %+v", gotLR, lr)
	}
}

func TestDecodeRejectsWrongKindAndGarbage(t *testing.T) {
	if _, err := DecodeWorkUnit(EncodeSpec(testSpec())); err == nil {
		t.Error("work-unit decoder must reject a spec frame")
	}
	if _, err := DecodeSpec(nil); err == nil {
		t.Error("spec decoder must reject empty input")
	}
	if _, err := DecodeLeaseRequest(EncodeLeaseRequest(LeaseRequest{})); err == nil {
		t.Error("empty worker id must be rejected")
	}
	// Descending classes violate the strict-ascending contract.
	bad := checkpoint.AppendFrame(nil, 'W', []byte{
		UnitGranted,
		1, 0, 0, 0, 0, 0, 0, 0, // id
		1, 0, 0, 0, 0, 0, 0, 0, // token
		2, // two classes
		5, // class 4
		0, // delta 0 — not ascending
	})
	if _, err := DecodeWorkUnit(bad); err == nil {
		t.Error("zero class delta must be rejected")
	}
	// Trailing bytes after a valid frame.
	withTail := append(EncodeWorkUnit(WorkUnit{Status: UnitWait}), 0x00)
	if _, err := DecodeWorkUnit(withTail); err == nil {
		t.Error("trailing bytes must be rejected")
	}
}

// FuzzWorkUnitDecode is the cluster mirror of FuzzCheckpointDecode: the
// wire-protocol decoder must error on mutated or truncated frames, never
// panic, and everything it accepts must re-encode to the same bytes.
func FuzzWorkUnitDecode(f *testing.F) {
	f.Add(EncodeWorkUnit(WorkUnit{Status: UnitGranted, ID: 1, Token: 2, Classes: []int{0, 1, 2, 250, 4096}}))
	f.Add(EncodeWorkUnit(WorkUnit{Status: UnitWait}))
	f.Add(EncodeWorkUnit(WorkUnit{Status: UnitDone}))
	f.Add(EncodeWorkUnit(WorkUnit{Status: UnitShutdown, ID: ^uint64(0), Token: ^uint64(0)}))
	f.Add(EncodeSpec(testSpec()))
	f.Add(EncodeSubmission(Submission{WorkerID: "w", Entries: []checkpoint.Entry{{Class: 1, Outcome: 3}}}))
	f.Add([]byte{})
	f.Add([]byte("W garbage that is not a frame"))

	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeWorkUnit(data)
		if err == nil {
			// Whatever the decoder accepts must satisfy the protocol
			// invariants and survive a semantic round trip.
			if u.Status > UnitShutdown {
				t.Errorf("accepted unit with invalid status %d", u.Status)
			}
			for i := 1; i < len(u.Classes); i++ {
				if u.Classes[i] <= u.Classes[i-1] {
					t.Errorf("accepted unit with non-ascending classes: %v", u.Classes)
				}
			}
			again, err := DecodeWorkUnit(EncodeWorkUnit(u))
			if err != nil || !reflect.DeepEqual(again, u) {
				t.Errorf("unit round trip failed: %+v vs %+v (%v)", again, u, err)
			}
		}
		// The sibling decoders share the reader; they must be equally
		// panic-free on arbitrary input.
		DecodeSpec(data)
		DecodeSubmission(data)
		DecodeHeartbeat(data)
		DecodeLeaseRequest(data)
	})
}
