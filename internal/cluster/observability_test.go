package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"faultspace/internal/campaign"
	"faultspace/internal/checkpoint"
	"faultspace/internal/pruning"
	"faultspace/internal/telemetry"
	"faultspace/internal/telemetry/promtest"
)

// chromeDoc mirrors the Chrome trace-event JSON contract under test.
type chromeDoc struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Ts   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

// leaseAs drives the lease endpoint directly, as a protocol-level worker.
func leaseAs(t *testing.T, url string, id [32]byte, workerID string) WorkUnit {
	t.Helper()
	resp, err := http.Post(url+"/v1/lease", "application/octet-stream",
		bytes.NewReader(EncodeLeaseRequest(LeaseRequest{Identity: id, WorkerID: workerID})))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease as %s: HTTP %d: %s", workerID, resp.StatusCode, body)
	}
	u, err := DecodeWorkUnit(body)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// submitAs submits the unit's full outcome set as the given worker.
func submitAs(t *testing.T, url string, id [32]byte, workerID string, u WorkUnit, outcomes []campaign.Outcome) {
	t.Helper()
	entries := make([]checkpoint.Entry, len(u.Classes))
	for i, ci := range u.Classes {
		entries[i] = checkpoint.Entry{Class: ci, Outcome: uint8(outcomes[ci])}
	}
	s := Submission{Identity: id, WorkerID: workerID, UnitID: u.ID, Token: u.Token, Entries: entries}
	resp, err := http.Post(url+"/v1/submit", "application/octet-stream", bytes.NewReader(EncodeSubmission(s)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit as %s: HTTP %d", workerID, resp.StatusCode)
	}
}

// TestIdentityIgnoresTraceID pins the identity half of invariant 15:
// the trace ID is observability identity only. Two specs of the same
// campaign mint distinct trace IDs yet share one campaign identity
// hash, so re-running a campaign under a new trace still hits the
// archive and admits the same workers.
func TestIdentityIgnoresTraceID(t *testing.T) {
	tgt, _, fs := testCampaign(t, "bin_sem2")
	classes := uint64(len(fs.Classes))
	s1, err := NewSpec(tgt, pruning.SpaceMemory, campaign.Config{}, testMaxGolden, classes)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSpec(tgt, pruning.SpaceMemory, campaign.Config{}, testMaxGolden, classes)
	if err != nil {
		t.Fatal(err)
	}
	if s1.TraceID.IsZero() || s2.TraceID.IsZero() {
		t.Fatal("NewSpec must mint a trace ID")
	}
	if s1.TraceID == s2.TraceID {
		t.Error("two specs share a trace ID; timelines would collide")
	}
	if s1.Identity != s2.Identity {
		t.Error("campaign identity differs across trace IDs; the trace ID leaked into the hash")
	}
}

// TestFleetTraceTimeline runs a real coordinator-plus-two-workers fleet
// and proves the merged timeline told the campaign's whole story: the
// /v1/trace export is well-formed Chrome trace-event JSON carrying the
// campaign trace ID, it names the coordinator and both worker scopes,
// and the non-root spans cover at least 95% of the campaign's wall time
// — while the scan report stays placement-equivalent to a local run.
func TestFleetTraceTimeline(t *testing.T) {
	tgt, golden, fs := testCampaign(t, "bin_sem2")
	coord, err := NewCoordinator(tgt, golden, fs, campaign.Config{}, Options{
		UnitSize:        8,
		MaxGoldenCycles: testMaxGolden,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if coord.TraceID().IsZero() {
		t.Fatal("NewSpec must mint a trace ID for every cluster campaign")
	}
	res, errs := runCluster(t, coord, []WorkerOptions{
		{ID: "wa"},
		{ID: "wb", Strategy: campaign.StrategyFork},
	})
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	// Invariant 15: tracing is identification, never configuration — the
	// report must be byte-identical to an untraced local scan's.
	assertPlacementEquivalent(t, tgt, golden, fs, res)

	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/trace: HTTP %d", resp.StatusCode)
	}
	var doc chromeDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("/v1/trace: decode: %v", err)
	}
	if got := doc.OtherData["traceId"]; got != coord.TraceID().String() {
		t.Errorf("trace document id %q, want %q", got, coord.TraceID())
	}

	// Thread metadata must name every scope that produced spans —
	// the coordinator and both workers.
	scopeOf := map[int]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			scopeOf[ev.Tid] = ev.Args["name"]
		}
	}
	seen := map[string]bool{}
	for _, name := range scopeOf {
		seen[name] = true
	}
	for _, want := range []string{"coordinator", "wa", "wb"} {
		if !seen[want] {
			t.Errorf("timeline has no %q thread (scopes: %v)", want, scopeOf)
		}
	}

	// The campaign root span anchors the wall-time window.
	var campStart, campEnd float64
	haveRoot := false
	type iv struct{ lo, hi float64 }
	var others []iv
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		names[ev.Name] = true
		if ev.Name == "campaign" {
			haveRoot = true
			campStart, campEnd = ev.Ts, ev.Ts+ev.Dur
			continue
		}
		others = append(others, iv{ev.Ts, ev.Ts + ev.Dur})
	}
	if !haveRoot {
		t.Fatal("timeline has no campaign root span")
	}
	if campEnd <= campStart {
		t.Fatalf("campaign root span has non-positive duration [%g, %g]", campStart, campEnd)
	}
	for _, want := range []string{"unit.lease", "worker.rebuild", "unit.scan"} {
		if !names[want] {
			t.Errorf("timeline has no %q span (have %v)", want, names)
		}
	}

	// Interval-union coverage: the non-root spans, clipped to the
	// campaign window, must explain at least 95% of the wall time — the
	// "no dark time" acceptance bar for the tracing layer.
	sort.Slice(others, func(i, j int) bool { return others[i].lo < others[j].lo })
	var covered, cursor float64
	cursor = campStart
	for _, s := range others {
		lo, hi := s.lo, s.hi
		if lo < cursor {
			lo = cursor
		}
		if hi > campEnd {
			hi = campEnd
		}
		if hi > lo {
			covered += hi - lo
			cursor = hi
		}
	}
	if frac := covered / (campEnd - campStart); frac < 0.95 {
		t.Errorf("spans cover %.1f%% of the campaign wall time, want >= 95%%", 100*frac)
	}

	// The JSONL stream must carry the same spans, one object per line,
	// each stamped with the trace ID.
	resp2, err := http.Get(srv.URL + "/v1/trace?format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	lines := 0
	sc := bufio.NewScanner(resp2.Body)
	for sc.Scan() {
		var line struct {
			Trace string `json:"trace"`
			Scope string `json:"scope"`
			Name  string `json:"name"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("jsonl line %d: %v", lines+1, err)
		}
		if line.Trace != coord.TraceID().String() || line.Name == "" || line.Scope == "" {
			t.Fatalf("jsonl line %d malformed: %+v", lines+1, line)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if wantSpans := len(others) + 1; lines != wantSpans {
		t.Errorf("jsonl stream has %d spans, chrome export %d", lines, wantSpans)
	}
}

// TestWatchdogFlagsStragglerWorker builds a lease-duration baseline with
// a fast protocol-level worker, then lets a second worker sit on a lease
// far past the MAD outlier threshold: the watchdog must flag it in
// /v1/status, emit exactly one deduplicated trace event, raise the
// fleet.stragglers gauge — and none of it may change the report bytes.
func TestWatchdogFlagsStragglerWorker(t *testing.T) {
	tgt, golden, fs := testCampaign(t, "bin_sem2")
	want, err := campaign.FullScan(tgt, golden, fs, campaign.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	reg.EnableTrace(256)
	coord, err := NewCoordinator(tgt, golden, fs, campaign.Config{}, Options{
		UnitSize: 4,
		// Long TTL: the slow worker must be flagged as an outlier well
		// before its lease would expire and be reassigned.
		LeaseTTL:        time.Minute,
		MaxGoldenCycles: testMaxGolden,
		Telemetry:       reg,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	id := coord.Identity()

	// Six fast grant→submit cycles seed the watchdog's outlier baseline
	// (it needs at least five completed leases).
	for i := 0; i < 6; i++ {
		u := leaseAs(t, srv.URL, id, "fast")
		if u.Status != UnitGranted {
			t.Fatalf("baseline lease %d: status %d, want granted", i, u.Status)
		}
		submitAs(t, srv.URL, id, "fast", u, want.Outcomes)
	}

	slow := leaseAs(t, srv.URL, id, "slow")
	if slow.Status != UnitGranted {
		t.Fatalf("slow lease: status %d, want granted", slow.Status)
	}
	// The fast leases completed in single-digit milliseconds, so the
	// threshold sits near its 10ms floor; 150ms is unambiguously late.
	time.Sleep(150 * time.Millisecond)

	var st struct {
		Stragglers []Straggler `json:"stragglers"`
	}
	getJSON(t, srv.URL+"/v1/status", &st)
	var verdict *Straggler
	for i := range st.Stragglers {
		if st.Stragglers[i].WorkerID == "slow" && st.Stragglers[i].Kind == "lease_outlier" {
			verdict = &st.Stragglers[i]
		}
	}
	if verdict == nil {
		t.Fatalf("slow worker not flagged; stragglers = %+v", st.Stragglers)
	}
	if verdict.UnitID != slow.ID {
		t.Errorf("verdict names unit %d, want %d", verdict.UnitID, slow.ID)
	}
	if verdict.AgeMs < verdict.ThresholdMs || verdict.ThresholdMs <= 0 {
		t.Errorf("verdict age %.1fms vs threshold %.1fms: age must exceed a positive threshold", verdict.AgeMs, verdict.ThresholdMs)
	}
	if got := reg.Snapshot().Gauges["fleet.stragglers"]; got != 1 {
		t.Errorf("fleet.stragglers gauge = %d, want 1", got)
	}

	// The verdict is deduplicated: repeated status polls re-report it but
	// record only one trace event.
	getJSON(t, srv.URL+"/v1/status", &st)
	var dbg struct {
		Events []telemetry.Event `json:"events"`
	}
	getJSON(t, srv.URL+"/debug/telemetry", &dbg)
	events := 0
	for _, e := range dbg.Events {
		if e.Name == "watchdog.straggler" {
			events++
		}
	}
	if events != 1 {
		t.Errorf("watchdog.straggler trace events = %d, want exactly 1", events)
	}

	// Late is not wrong: the slow worker's submission merges normally,
	// the remaining units drain, and the result matches a local scan.
	submitAs(t, srv.URL, id, "slow", slow, want.Outcomes)
	for {
		u := leaseAs(t, srv.URL, id, "fast")
		if u.Status != UnitGranted {
			break
		}
		submitAs(t, srv.URL, id, "fast", u, want.Outcomes)
	}
	res, err := coord.Wait()
	if err != nil {
		t.Fatal(err)
	}
	coord.Seal()
	assertPlacementEquivalent(t, tgt, golden, fs, res)

	// Zero the slice first: the field is omitempty, so a decode into the
	// old struct would keep the stale verdicts around.
	st.Stragglers = nil
	getJSON(t, srv.URL+"/v1/status", &st)
	if len(st.Stragglers) != 0 {
		t.Errorf("stragglers after completion = %+v, want none", st.Stragglers)
	}
	if got := reg.Snapshot().Gauges["fleet.stragglers"]; got != 0 {
		t.Errorf("fleet.stragglers gauge = %d after completion, want 0", got)
	}
}

// TestWindowedWorkerRates pins the /v1/status rate semantics: a worker's
// experiments-per-second is averaged over the last RateWindow, so after
// an idle stretch it decays to zero instead of being diluted over the
// whole session (the since-join bug this replaces).
func TestWindowedWorkerRates(t *testing.T) {
	tgt, golden, fs := testCampaign(t, "hi")
	want, err := campaign.FullScan(tgt, golden, fs, campaign.Config{})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(tgt, golden, fs, campaign.Config{}, Options{
		UnitSize:        8,
		LeaseTTL:        time.Minute,
		RateWindow:      50 * time.Millisecond,
		MaxGoldenCycles: testMaxGolden,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	id := coord.Identity()

	u := leaseAs(t, srv.URL, id, "w")
	if u.Status != UnitGranted {
		t.Fatalf("lease: status %d, want granted", u.Status)
	}
	submitAs(t, srv.URL, id, "w", u, want.Outcomes)

	rateOf := func(p Progress) float64 {
		for _, ws := range p.Workers {
			if ws.ID == "w" {
				return ws.Rate
			}
		}
		t.Fatal("worker w missing from progress")
		return 0
	}
	if r := rateOf(coord.Snapshot()); r <= 0 {
		t.Errorf("rate right after submitting = %g, want > 0", r)
	}
	// Two idle windows later the rate must have decayed to zero. The
	// first snapshot closes whatever window the submission landed in;
	// the second covers a fully idle one.
	time.Sleep(60 * time.Millisecond)
	coord.Snapshot()
	time.Sleep(60 * time.Millisecond)
	if r := rateOf(coord.Snapshot()); r != 0 {
		t.Errorf("rate after two idle windows = %g, want 0", r)
	}
}

// TestCoordinatorMetricsExposition scrapes the coordinator's /metrics
// through the validating Prometheus text-format parser: the registry's
// instruments and the synthetic per-worker series must all be
// grammatically correct, and the endpoint must work with or without a
// registry.
func TestCoordinatorMetricsExposition(t *testing.T) {
	tgt, golden, fs := testCampaign(t, "bin_sem2")
	reg := telemetry.New()
	coord, err := NewCoordinator(tgt, golden, fs, campaign.Config{}, Options{
		UnitSize:        16,
		MaxGoldenCycles: testMaxGolden,
		Telemetry:       reg,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, errs := runCluster(t, coord, []WorkerOptions{{ID: "w1"}})
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	assertPlacementEquivalent(t, tgt, golden, fs, res)

	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics Content-Type %q", got)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := promtest.Validate(body)
	if err != nil {
		t.Fatalf("/metrics does not parse as Prometheus text format: %v\n%s", err, body)
	}

	find := func(name, labelKey, labelVal string) *promtest.Sample {
		for i := range doc.Samples {
			s := &doc.Samples[i]
			if s.Name == name && (labelKey == "" || s.Labels[labelKey] == labelVal) {
				return s
			}
		}
		return nil
	}
	if s := find("faultspace_cluster_leases_granted_total", "", ""); s == nil || s.Value <= 0 {
		t.Errorf("faultspace_cluster_leases_granted_total missing or zero: %+v", s)
	}
	if s := find("faultspace_cluster_worker_experiments_total", "worker", "w1"); s == nil || s.Value < float64(len(fs.Classes)) {
		t.Errorf("per-worker experiments series missing or low: %+v (want >= %d)", s, len(fs.Classes))
	}
	if s := find("faultspace_fleet_stragglers", "", ""); s == nil || s.Value != 0 {
		t.Errorf("faultspace_fleet_stragglers = %+v, want present and 0", s)
	}
	if doc.Types["faultspace_cluster_lease_duration_seconds"] != "histogram" {
		t.Error("faultspace_cluster_lease_duration_seconds must be declared a histogram")
	}

	// Without a registry the endpoint still serves (per-worker series
	// only) and still parses.
	coord2, err := NewCoordinator(tgt, golden, fs, campaign.Config{}, Options{
		MaxGoldenCycles: testMaxGolden,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(coord2.Handler())
	defer srv2.Close()
	resp2, err := http.Get(srv2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := promtest.Validate(body2); err != nil {
		t.Errorf("registry-less /metrics does not parse: %v\n%s", err, body2)
	}
}
