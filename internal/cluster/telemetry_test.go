package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"faultspace/internal/campaign"
	"faultspace/internal/telemetry"
)

// statusDoc mirrors the /v1/status JSON contract under test.
type statusDoc struct {
	Name    string `json:"name"`
	Done    int    `json:"done"`
	Total   int    `json:"total"`
	Workers []struct {
		ID          string  `json:"id"`
		Experiments int     `json:"experiments"`
		Merged      int     `json:"merged"`
		Rate        float64 `json:"expPerSec"`
	} `json:"workers"`
	Telemetry *telemetry.Snapshot `json:"telemetry"`
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestStatusAndTelemetryEndpoints runs a real loopback cluster with
// telemetry enabled and exercises the observability surface over HTTP:
// /v1/status must carry the instrument snapshot and per-worker session
// rates, /debug/telemetry the snapshot plus trace events, and the
// opt-in pprof mux must answer.
func TestStatusAndTelemetryEndpoints(t *testing.T) {
	tgt, golden, fs := testCampaign(t, "bin_sem2")
	reg := telemetry.New()
	reg.EnableTrace(256)
	coord, err := NewCoordinator(tgt, golden, fs, campaign.Config{}, Options{
		UnitSize:        16,
		MaxGoldenCycles: testMaxGolden,
		Telemetry:       reg,
		Pprof:           true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	wreg := telemetry.New()
	werr := make(chan error, 1)
	go func() {
		werr <- Join(srv.URL, WorkerOptions{ID: "w1", Workers: 2, Telemetry: wreg})
	}()
	if _, err := coord.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := <-werr; err != nil {
		t.Fatal(err)
	}

	var st statusDoc
	getJSON(t, srv.URL+"/v1/status", &st)
	if st.Done != len(fs.Classes) || st.Total != len(fs.Classes) {
		t.Errorf("status done/total = %d/%d, want %d/%d", st.Done, st.Total, len(fs.Classes), len(fs.Classes))
	}
	if len(st.Workers) != 1 || st.Workers[0].ID != "w1" {
		t.Fatalf("status workers = %+v, want exactly w1", st.Workers)
	}
	if w := st.Workers[0]; w.Experiments < len(fs.Classes) || w.Rate <= 0 {
		t.Errorf("worker session stats wrong: %+v (want >= %d experiments, positive rate)", w, len(fs.Classes))
	}
	if st.Telemetry == nil {
		t.Fatal("status must embed the telemetry snapshot when a registry is configured")
	}
	if got := st.Telemetry.Counters["cluster.leases_granted"]; got == 0 {
		t.Error("cluster.leases_granted must be non-zero after a completed campaign")
	}
	if got := st.Telemetry.Counters["cluster.submissions"]; got == 0 {
		t.Error("cluster.submissions must be non-zero after a completed campaign")
	}

	var dbg struct {
		Telemetry telemetry.Snapshot `json:"telemetry"`
		Events    []telemetry.Event  `json:"events"`
	}
	getJSON(t, srv.URL+"/debug/telemetry", &dbg)
	if dbg.Telemetry.Counters["cluster.leases_granted"] == 0 {
		t.Error("/debug/telemetry must serve the registry counters")
	}
	var joined, granted bool
	for _, e := range dbg.Events {
		switch e.Name {
		case "worker.joined":
			joined = true
		case "lease.granted":
			granted = true
		}
	}
	if !joined || !granted {
		t.Errorf("trace events missing (joined=%v granted=%v): %+v", joined, granted, dbg.Events)
	}

	resp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof endpoint: HTTP %d, want 200", resp.StatusCode)
	}

	// The worker's own registry saw the campaign through the campaign
	// engine: every class ran exactly once, on pooled machines.
	if got := wreg.Counter("scan.experiments").Value(); got != uint64(len(fs.Classes)) {
		t.Errorf("worker scan.experiments = %d, want %d", got, len(fs.Classes))
	}
	if wreg.Counter("pool.alloc").Value() == 0 {
		t.Error("pool.alloc must be non-zero")
	}
	if len(fs.Classes) > 16 && wreg.Counter("pool.reuse").Value() == 0 {
		t.Error("pool.reuse must be non-zero across multiple units")
	}
}

// TestDebugEndpointsOffByDefault: without a registry and without Pprof,
// the debug surface must not exist.
func TestDebugEndpointsOffByDefault(t *testing.T) {
	tgt, golden, fs := testCampaign(t, "bin_sem2")
	coord, err := NewCoordinator(tgt, golden, fs, campaign.Config{}, Options{
		MaxGoldenCycles: testMaxGolden,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	for _, path := range []string{"/debug/telemetry", "/debug/pprof/cmdline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: HTTP %d, want 404", path, resp.StatusCode)
		}
	}
	var st statusDoc
	getJSON(t, srv.URL+"/v1/status", &st)
	if st.Telemetry != nil {
		t.Error("status must omit the telemetry snapshot when no registry is configured")
	}
}
