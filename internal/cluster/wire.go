// Package cluster distributes a fault-injection campaign across machines:
// a coordinator shards the pruned equivalence classes of a campaign into
// leased work units and serves them over HTTP; workers pull leases, run
// the experiments through the regular campaign machinery and stream the
// per-class outcomes back.
//
// The design leans entirely on two invariants established earlier:
// experiments are deterministic and independent (so any worker computes
// the same outcome for a class), and execution placement — like strategy
// and worker count — is excluded from the campaign identity hash. The
// identity hash doubles as the admission check: every request after the
// handshake carries it, and a worker whose program image, fault-space
// kind or timeout budget differs is rejected with HTTP 409.
//
// # Wire protocol
//
// Every message body is one CRC-guarded frame in the checkpoint framing
// (kind, u32 length, u32 CRC32-IEEE, payload; see internal/checkpoint).
// All integers are little-endian; variable-length integers use Go's
// uvarint encoding. Endpoints:
//
//	POST /v1/handshake  → 'S' spec: everything a worker needs to rebuild
//	                      the campaign (program, machine config, fault
//	                      space kind, timeout budget, identity hash)
//	POST /v1/lease      'L' request → 'W' work unit (or wait/done/shutdown)
//	POST /v1/submit     'U' submission → 200 (idempotent, duplicate-safe)
//	POST /v1/heartbeat  'B' heartbeat → 200 (extends lease deadlines)
//	POST /v1/leave      'L' request → 200 (worker exit notice)
//	GET  /v1/status     JSON progress snapshot (human/monitoring aid)
//
// Decoders never panic on malformed input — the FuzzWorkUnitDecode fuzz
// target pins that down, mirroring FuzzCheckpointDecode.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"faultspace/internal/checkpoint"
	"faultspace/internal/telemetry"
)

// ProtoVersion is the wire-protocol version spoken by this package.
// Version 2 appended the attacker-objective name to the handshake spec;
// version-1 peers reject it in JoinCampaign, so a mixed fleet can never
// silently record objective-less outcomes for an objective campaign.
// Version 3 appended the campaign trace ID to the spec and a span list
// to submissions (fleet-wide distributed tracing); as before, the whole
// fleet upgrades together — older peers are rejected at admission.
const ProtoVersion = 3

// Frame kinds of the cluster wire protocol.
const (
	msgSpec      = 'S'
	msgLease     = 'L'
	msgWorkUnit  = 'W'
	msgSubmit    = 'U'
	msgHeartbeat = 'B'
)

// maxUnitClasses bounds the class count a single work unit or submission
// may carry — a sanity limit for the decoders, far above any real unit.
const maxUnitClasses = 1 << 20

// maxSubmitSpans bounds the span count one submission may carry — the
// worker-side recorder holds at most DefaultSpanCapacity spans between
// submissions, so this is generous.
const maxSubmitSpans = 1 << 16

// ErrWire marks a malformed cluster protocol message.
var ErrWire = errors.New("cluster: malformed message")

// Spec is the handshake payload: the complete campaign description. A
// worker rebuilds the target and fault space from it deterministically,
// recomputes the campaign identity and refuses to proceed on mismatch.
type Spec struct {
	Proto    uint32
	Identity [32]byte
	Name     string
	Code     []byte // isa.EncodeProgram image (ROM, fault-immune)
	Image    []byte // initial RAM contents
	// Machine configuration (see machine.Config).
	RAMSize     uint64
	MaxSerial   uint64
	TimerPeriod uint64
	TimerVector uint32
	// Campaign parameters.
	SpaceKind       uint8
	TimeoutFactor   float64
	TimeoutSlack    uint64
	MaxGoldenCycles uint64
	Classes         uint64 // total equivalence-class count (sanity check)
	LeaseTTL        time.Duration
	// Objective is the attacker-objective name ("" = none), resolved by
	// the worker via campaign.ObjectiveByName. Proto 2+.
	Objective string
	// TraceID is the campaign's 128-bit trace identifier, minted at
	// submission time; the zero value disables span tracing fleet-wide.
	// Identification only — excluded from the campaign identity hash
	// (DESIGN.md invariant 15). Proto 3+.
	TraceID telemetry.TraceID
}

// Work-unit statuses of a lease response.
const (
	// UnitGranted carries a leased work unit.
	UnitGranted uint8 = iota
	// UnitWait means no unit is available right now (all leased); the
	// worker should poll again shortly.
	UnitWait
	// UnitDone means the campaign is complete; the worker may exit.
	UnitDone
	// UnitShutdown means the coordinator is stopping (interrupt); the
	// worker should exit without waiting for completion.
	UnitShutdown
)

// WorkUnit is one leased shard of the campaign: a set of equivalence
// classes to run. Classes are strictly ascending.
type WorkUnit struct {
	Status  uint8
	ID      uint64
	Token   uint64 // lease token; stale tokens are still merge-safe
	Classes []int
}

// LeaseRequest asks the coordinator for a work unit. The same payload
// shape serves the /v1/leave exit notice.
type LeaseRequest struct {
	Identity [32]byte
	WorkerID string
}

// Submission streams the outcomes of one completed work unit back.
// Entries are strictly ascending by class. Submissions are idempotent:
// outcomes are deterministic, so merging a duplicate (or a stale-lease
// re-execution) is a no-op.
type Submission struct {
	Identity [32]byte
	WorkerID string
	UnitID   uint64
	Token    uint64
	Entries  []checkpoint.Entry
	// Spans are the worker-side trace spans accumulated since the last
	// submission (empty when tracing is off). They ride the result path
	// so span shipping needs no extra endpoint; the coordinator stamps
	// each with the submitting worker's ID as scope, so the Scope field
	// is not encoded on the wire. Proto 3+.
	Spans []telemetry.Span
}

// Heartbeat extends the lease deadlines of the listed units.
type Heartbeat struct {
	Identity [32]byte
	WorkerID string
	Units    []uint64
}

// --- encoding ------------------------------------------------------------

func appendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// EncodeSpec encodes a handshake spec as one wire frame.
func EncodeSpec(s Spec) []byte {
	p := make([]byte, 0, 64+len(s.Code)+len(s.Image))
	p = appendU32(p, s.Proto)
	p = append(p, s.Identity[:]...)
	p = appendString(p, s.Name)
	p = appendBytes(p, s.Code)
	p = appendBytes(p, s.Image)
	p = appendU64(p, s.RAMSize)
	p = appendU64(p, s.MaxSerial)
	p = appendU64(p, s.TimerPeriod)
	p = appendU32(p, s.TimerVector)
	p = append(p, s.SpaceKind)
	p = appendU64(p, math.Float64bits(s.TimeoutFactor))
	p = appendU64(p, s.TimeoutSlack)
	p = appendU64(p, s.MaxGoldenCycles)
	p = appendU64(p, s.Classes)
	p = appendU64(p, uint64(s.LeaseTTL))
	p = appendString(p, s.Objective)
	p = append(p, s.TraceID[:]...)
	return checkpoint.AppendFrame(nil, msgSpec, p)
}

// EncodeWorkUnit encodes a lease response as one wire frame. Classes must
// be strictly ascending (they are delta-encoded).
func EncodeWorkUnit(u WorkUnit) []byte {
	p := make([]byte, 0, 16+2*len(u.Classes))
	p = append(p, u.Status)
	p = appendU64(p, u.ID)
	p = appendU64(p, u.Token)
	p = binary.AppendUvarint(p, uint64(len(u.Classes)))
	prev := -1
	for _, ci := range u.Classes {
		p = binary.AppendUvarint(p, uint64(ci-prev))
		prev = ci
	}
	return checkpoint.AppendFrame(nil, msgWorkUnit, p)
}

// EncodeLeaseRequest encodes a lease request (or leave notice) frame.
func EncodeLeaseRequest(r LeaseRequest) []byte {
	p := make([]byte, 0, 40+len(r.WorkerID))
	p = append(p, r.Identity[:]...)
	p = appendString(p, r.WorkerID)
	return checkpoint.AppendFrame(nil, msgLease, p)
}

// EncodeSubmission encodes a result submission frame. Entries must be
// strictly ascending by class.
func EncodeSubmission(s Submission) []byte {
	p := make([]byte, 0, 64+3*len(s.Entries))
	p = append(p, s.Identity[:]...)
	p = appendString(p, s.WorkerID)
	p = appendU64(p, s.UnitID)
	p = appendU64(p, s.Token)
	p = binary.AppendUvarint(p, uint64(len(s.Entries)))
	prev := -1
	for _, e := range s.Entries {
		p = binary.AppendUvarint(p, uint64(e.Class-prev))
		p = append(p, e.Outcome)
		prev = e.Class
	}
	p = binary.AppendUvarint(p, uint64(len(s.Spans)))
	for _, sp := range s.Spans {
		p = appendString(p, sp.Name)
		p = appendString(p, sp.Detail)
		p = appendU64(p, uint64(sp.Start.UnixNano()))
		p = appendU64(p, uint64(sp.Dur.Nanoseconds()))
	}
	return checkpoint.AppendFrame(nil, msgSubmit, p)
}

// EncodeHeartbeat encodes a heartbeat frame.
func EncodeHeartbeat(h Heartbeat) []byte {
	p := make([]byte, 0, 48+8*len(h.Units))
	p = append(p, h.Identity[:]...)
	p = appendString(p, h.WorkerID)
	p = binary.AppendUvarint(p, uint64(len(h.Units)))
	for _, id := range h.Units {
		p = binary.AppendUvarint(p, id)
	}
	return checkpoint.AppendFrame(nil, msgHeartbeat, p)
}

// --- decoding ------------------------------------------------------------

// reader is a bounds-checked little-endian payload reader. All methods
// are no-ops after the first error, so decoders can parse linearly and
// check the error once.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", ErrWire, what, r.off)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) {
		r.fail("payload cut")
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail("length prefix exceeds payload")
		return nil
	}
	return r.take(int(n))
}

func (r *reader) str() string { return string(r.bytes()) }

func (r *reader) identity() (id [32]byte) {
	copy(id[:], r.take(32))
	return id
}

// finish reports the first decode error, or a trailing-garbage error if
// the payload was not fully consumed.
func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("%w: %d trailing bytes", ErrWire, len(r.data)-r.off)
	}
	return nil
}

// unframe validates the outer CRC frame and returns the payload of the
// single expected message frame.
func unframe(data []byte, wantKind byte) ([]byte, error) {
	kind, payload, next, err := checkpoint.ReadFrame(data, 0)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWire, err)
	}
	if kind != wantKind {
		return nil, fmt.Errorf("%w: frame kind %q, want %q", ErrWire, kind, wantKind)
	}
	if next != len(data) {
		return nil, fmt.Errorf("%w: %d bytes after frame", ErrWire, len(data)-next)
	}
	return payload, nil
}

// DecodeSpec parses a handshake spec frame. It never panics.
func DecodeSpec(data []byte) (Spec, error) {
	payload, err := unframe(data, msgSpec)
	if err != nil {
		return Spec{}, err
	}
	r := &reader{data: payload}
	var s Spec
	s.Proto = r.u32()
	s.Identity = r.identity()
	s.Name = r.str()
	s.Code = append([]byte(nil), r.bytes()...)
	s.Image = append([]byte(nil), r.bytes()...)
	s.RAMSize = r.u64()
	s.MaxSerial = r.u64()
	s.TimerPeriod = r.u64()
	s.TimerVector = r.u32()
	s.SpaceKind = r.u8()
	s.TimeoutFactor = math.Float64frombits(r.u64())
	s.TimeoutSlack = r.u64()
	s.MaxGoldenCycles = r.u64()
	s.Classes = r.u64()
	s.LeaseTTL = time.Duration(r.u64())
	s.Objective = r.str()
	if s.Proto >= 3 {
		// Proto-2 frames end at the objective; decoding them cleanly lets
		// JoinCampaign report the version mismatch instead of "payload cut".
		copy(s.TraceID[:], r.take(16))
	}
	if err := r.finish(); err != nil {
		return Spec{}, err
	}
	if s.LeaseTTL <= 0 {
		return Spec{}, fmt.Errorf("%w: non-positive lease TTL", ErrWire)
	}
	return s, nil
}

// DecodeWorkUnit parses a lease response frame. It never panics: mutated
// or truncated frames error out (the FuzzWorkUnitDecode contract).
func DecodeWorkUnit(data []byte) (WorkUnit, error) {
	payload, err := unframe(data, msgWorkUnit)
	if err != nil {
		return WorkUnit{}, err
	}
	r := &reader{data: payload}
	var u WorkUnit
	u.Status = r.u8()
	u.ID = r.u64()
	u.Token = r.u64()
	n := r.uvarint()
	if r.err == nil && n > maxUnitClasses {
		return WorkUnit{}, fmt.Errorf("%w: unit of %d classes exceeds limit", ErrWire, n)
	}
	prev := -1
	for i := uint64(0); i < n && r.err == nil; i++ {
		d := r.uvarint()
		if r.err != nil {
			break
		}
		if d == 0 || d > maxClassIndex || prev > maxClassIndex-int(d) {
			return WorkUnit{}, fmt.Errorf("%w: class delta %d breaks ascending order", ErrWire, d)
		}
		prev += int(d)
		u.Classes = append(u.Classes, prev)
	}
	if err := r.finish(); err != nil {
		return WorkUnit{}, err
	}
	if u.Status > UnitShutdown {
		return WorkUnit{}, fmt.Errorf("%w: unknown unit status %d", ErrWire, u.Status)
	}
	return u, nil
}

// maxClassIndex bounds decoded class indices so delta accumulation cannot
// overflow int on any platform.
const maxClassIndex = 1 << 40

// DecodeLeaseRequest parses a lease request (or leave notice) frame.
func DecodeLeaseRequest(data []byte) (LeaseRequest, error) {
	payload, err := unframe(data, msgLease)
	if err != nil {
		return LeaseRequest{}, err
	}
	r := &reader{data: payload}
	var q LeaseRequest
	q.Identity = r.identity()
	q.WorkerID = r.str()
	if err := r.finish(); err != nil {
		return LeaseRequest{}, err
	}
	if q.WorkerID == "" {
		return LeaseRequest{}, fmt.Errorf("%w: empty worker id", ErrWire)
	}
	return q, nil
}

// DecodeSubmission parses a result submission frame.
func DecodeSubmission(data []byte) (Submission, error) {
	payload, err := unframe(data, msgSubmit)
	if err != nil {
		return Submission{}, err
	}
	r := &reader{data: payload}
	var s Submission
	s.Identity = r.identity()
	s.WorkerID = r.str()
	s.UnitID = r.u64()
	s.Token = r.u64()
	n := r.uvarint()
	if r.err == nil && n > maxUnitClasses {
		return Submission{}, fmt.Errorf("%w: submission of %d entries exceeds limit", ErrWire, n)
	}
	prev := -1
	for i := uint64(0); i < n && r.err == nil; i++ {
		d := r.uvarint()
		o := r.u8()
		if r.err != nil {
			break
		}
		if d == 0 || d > maxClassIndex || prev > maxClassIndex-int(d) {
			return Submission{}, fmt.Errorf("%w: class delta %d breaks ascending order", ErrWire, d)
		}
		prev += int(d)
		s.Entries = append(s.Entries, checkpoint.Entry{Class: prev, Outcome: o})
	}
	ns := r.uvarint()
	if r.err == nil && ns > maxSubmitSpans {
		return Submission{}, fmt.Errorf("%w: submission of %d spans exceeds limit", ErrWire, ns)
	}
	for i := uint64(0); i < ns && r.err == nil; i++ {
		var sp telemetry.Span
		sp.Name = r.str()
		sp.Detail = r.str()
		start := r.u64()
		dur := r.u64()
		if r.err != nil {
			break
		}
		if start > math.MaxInt64 || dur > math.MaxInt64 {
			return Submission{}, fmt.Errorf("%w: span time out of range", ErrWire)
		}
		sp.Start = time.Unix(0, int64(start))
		sp.Dur = time.Duration(dur)
		s.Spans = append(s.Spans, sp)
	}
	if err := r.finish(); err != nil {
		return Submission{}, err
	}
	if s.WorkerID == "" {
		return Submission{}, fmt.Errorf("%w: empty worker id", ErrWire)
	}
	return s, nil
}

// DecodeHeartbeat parses a heartbeat frame.
func DecodeHeartbeat(data []byte) (Heartbeat, error) {
	payload, err := unframe(data, msgHeartbeat)
	if err != nil {
		return Heartbeat{}, err
	}
	r := &reader{data: payload}
	var h Heartbeat
	h.Identity = r.identity()
	h.WorkerID = r.str()
	n := r.uvarint()
	if r.err == nil && n > maxUnitClasses {
		return Heartbeat{}, fmt.Errorf("%w: heartbeat of %d units exceeds limit", ErrWire, n)
	}
	for i := uint64(0); i < n && r.err == nil; i++ {
		h.Units = append(h.Units, r.uvarint())
	}
	if err := r.finish(); err != nil {
		return Heartbeat{}, err
	}
	if h.WorkerID == "" {
		return Heartbeat{}, fmt.Errorf("%w: empty worker id", ErrWire)
	}
	return h, nil
}
