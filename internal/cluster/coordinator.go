package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"

	"faultspace/internal/campaign"
	"faultspace/internal/pruning"
	"faultspace/internal/telemetry"
	"faultspace/internal/trace"
)

// Options parameterizes a Coordinator.
type Options struct {
	// UnitSize is the number of equivalence classes per work unit
	// (default DefaultUnitSize). Units are contiguous injection-ordered
	// class-index ranges, so a snapshot-strategy worker replays each
	// golden prefix once and a fork-strategy worker carves dense batches
	// along rung boundaries.
	UnitSize int
	// LeaseTTL is how long a leased unit may go without a heartbeat or
	// submission before it is reassigned (default DefaultLeaseTTL).
	LeaseTTL time.Duration
	// MaxGoldenCycles is shipped to workers so their golden replay bound
	// matches the coordinator's.
	MaxGoldenCycles uint64
	// OnResult receives every freshly merged outcome — the checkpoint
	// writer hook. Calls are serialized under the coordinator lock, so a
	// checkpoint.Writer needs no extra locking.
	OnResult func(class int, o campaign.Outcome)
	// OnProgress receives cluster progress events: one initial, throttled
	// intermediate ones, one final.
	OnProgress func(Progress)
	// ProgressInterval throttles intermediate progress events (default
	// 1s; negative = one event per submission).
	ProgressInterval time.Duration
	// Interrupt, when closed, stops the campaign: leases stop being
	// granted, Wait returns the partial result with ErrInterrupted.
	Interrupt <-chan struct{}
	// Telemetry, when non-nil, receives cluster metrics (lease grants and
	// expiries, submissions, duplicate submits, heartbeats and their gap
	// histogram; see DESIGN.md §4d) and enables the /debug/telemetry
	// endpoint on Handler(). Purely observational: it never changes what
	// the coordinator computes.
	Telemetry *telemetry.Registry
	// TraceID overrides the campaign trace ID minted by NewSpec — the
	// service passes a submitted campaign's ID through so the fleet's
	// spans correlate with the submission. Zero keeps the minted one.
	// The trace ID is observability identity only and never feeds the
	// campaign identity hash (invariant 15).
	TraceID telemetry.TraceID
	// SpanCapacity bounds the merged campaign timeline: the
	// coordinator's own spans plus every span workers ship back with
	// submissions (default DefaultTimelineCapacity). Beyond capacity the
	// newest spans are dropped and the loss is self-described via the
	// recorder's drop counter in /debug/telemetry.
	SpanCapacity int
	// RateWindow is the averaging window for the per-worker
	// experiments-per-second rates in /v1/status (default
	// DefaultRateWindow). Rates cover the last full window, so an idle
	// worker's rate decays to zero instead of being diluted over its
	// whole session.
	RateWindow time.Duration
	// Pprof additionally mounts net/http/pprof under /debug/pprof/ on
	// Handler() — opt-in, for live profiling of a long cluster scan.
	Pprof bool
}

// Defaults for Options.
const (
	DefaultUnitSize = 256
	DefaultLeaseTTL = 10 * time.Second
	// DefaultRateWindow is the /v1/status per-worker rate window.
	DefaultRateWindow = 5 * time.Second
	// DefaultTimelineCapacity is the default span budget for the merged
	// campaign timeline — four times a single recorder's default, since
	// the coordinator aggregates a whole fleet.
	DefaultTimelineCapacity = 4 * telemetry.DefaultSpanCapacity
)

func (o Options) withDefaults() Options {
	if o.UnitSize == 0 {
		o.UnitSize = DefaultUnitSize
	}
	if o.LeaseTTL == 0 {
		o.LeaseTTL = DefaultLeaseTTL
	}
	if o.ProgressInterval == 0 {
		o.ProgressInterval = time.Second
	}
	if o.RateWindow == 0 {
		o.RateWindow = DefaultRateWindow
	}
	if o.SpanCapacity == 0 {
		o.SpanCapacity = DefaultTimelineCapacity
	}
	return o
}

// WorkerStat is one worker's slice of a cluster Progress event. The
// JSON field names are the /v1/status wire contract.
type WorkerStat struct {
	ID string `json:"id"`
	// Experiments counts entries this worker submitted, including
	// re-executions of reassigned units — the work it actually performed.
	Experiments int `json:"experiments"`
	// Merged counts the outcomes this worker contributed first.
	Merged int `json:"merged"`
	// Rate is the worker's experiments-per-second over the last full
	// Options.RateWindow (the partial current window before the first
	// window completes), so it tracks what the worker is doing now — an
	// idle worker's rate decays to zero within a window instead of being
	// diluted over its whole session.
	Rate float64 `json:"expPerSec"`
	// Outstanding is the number of units the worker currently holds.
	Outstanding int `json:"outstanding"`
}

// Progress is one event of a distributed campaign's progress stream: the
// regular campaign progress plus cluster-level statistics.
type Progress struct {
	campaign.Progress
	// OutstandingLeases is the number of currently leased units.
	OutstandingLeases int
	// Reassignments counts units whose lease expired and were handed to
	// another worker.
	Reassignments int
	// Workers holds per-worker statistics, sorted by ID.
	Workers []WorkerStat
	// Stragglers holds the watchdog's current verdicts (watchdog.go),
	// sorted by worker ID then kind.
	Stragglers []Straggler
}

type unitState uint8

const (
	unitPending unitState = iota
	unitLeased
	unitDone
)

type unit struct {
	id       uint64
	classes  []int
	state    unitState
	token    uint64
	owner    string
	deadline time.Time
	// grantedAt is when the current lease was granted; it anchors the
	// unit.lease span and the watchdog's lease-age check.
	grantedAt time.Time
}

type workerInfo struct {
	id          string
	experiments int
	merged      int
	outstanding int
	joined      time.Time
	left        bool
	// lastHeartbeat feeds the cluster.heartbeat_gap histogram: the time
	// between a worker's consecutive heartbeats. Zero until the first one.
	lastHeartbeat time.Time
	// lastSeen is the last contact of any kind (lease, submit, heartbeat,
	// leave) — the watchdog's silent-heartbeat anchor.
	lastSeen time.Time
	// Windowed-rate state: experiments counted up to winStart, and the
	// rate of the last completed window (valid once hasRate is set).
	winStart time.Time
	winExp   int
	rate     float64
	hasRate  bool
}

// Coordinator shards a campaign into leased work units and merges the
// outcomes workers stream back. It is an http.Handler; all state is
// guarded by one mutex, which also serializes the OnResult checkpoint
// hook.
type Coordinator struct {
	target   campaign.Target
	golden   *trace.Golden
	space    *pruning.FaultSpace
	identity [32]byte
	spec     []byte // encoded handshake frame
	opts     Options

	mu          sync.Mutex
	units       []*unit
	pending     []*unit // LIFO of grantable units
	leased      int
	outcomes    []campaign.Outcome
	have        []bool
	counts      [campaign.NumOutcomes]uint64
	attacks     uint64
	remaining   int
	session     int
	start       time.Time
	lastEmit    time.Time
	reassigned  int
	workers     map[string]*workerInfo
	nextToken   uint64
	interrupted bool
	sealed      bool
	finished    chan struct{}

	// Fleet timeline: the campaign trace ID from the spec and the merged
	// span recorder (the coordinator's own spans plus the spans workers
	// ship back with submissions), served at /v1/trace. rampedUp latches
	// the one-shot campaign.rampup span covering campaign start to the
	// first lease grant — the time-to-first-work a fleet operator cares
	// about, and otherwise a dark region at the head of every timeline.
	traceID  telemetry.TraceID
	spans    *telemetry.SpanRecorder
	rampedUp bool

	// Watchdog state (watchdog.go): a ring window of completed lease
	// durations and the already-flagged verdict keys (one trace event per
	// distinct condition).
	leaseDurs    []time.Duration
	leaseDurNext int
	flagged      map[string]bool

	// Telemetry instruments, resolved once in NewCoordinator; all nil
	// (no-op) when Options.Telemetry is nil.
	telGranted    *telemetry.Counter
	telExpired    *telemetry.Counter
	telSubmits    *telemetry.Counter
	telDuplicates *telemetry.Counter
	telHeartbeats *telemetry.Counter
	telWorkers    *telemetry.Gauge
	telGap        *telemetry.Histogram
	telLeaseDur   *telemetry.Histogram
	telStragglers *telemetry.Gauge
}

// NewCoordinator builds a coordinator for the campaign. prior holds
// checkpoint-restored outcomes by class index; only the remaining classes
// are sharded into work units, so a resumed distributed campaign redoes
// no work. cfg supplies the outcome-relevant campaign parameters (the
// timeout budget) that are hashed into the identity and shipped to
// workers.
func NewCoordinator(t campaign.Target, golden *trace.Golden, fs *pruning.FaultSpace, cfg campaign.Config, opts Options, prior map[int]campaign.Outcome) (*Coordinator, error) {
	opts = opts.withDefaults()
	if opts.MaxGoldenCycles == 0 {
		return nil, fmt.Errorf("cluster: MaxGoldenCycles must be set")
	}
	id, err := t.CampaignIdentity(fs.Kind, cfg)
	if err != nil {
		return nil, fmt.Errorf("cluster: identity: %w", err)
	}
	c := &Coordinator{
		target:   t,
		golden:   golden,
		space:    fs,
		identity: id,
		opts:     opts,
		outcomes: make([]campaign.Outcome, len(fs.Classes)),
		have:     make([]bool, len(fs.Classes)),
		workers:  make(map[string]*workerInfo),
		flagged:  make(map[string]bool),
		start:    time.Now(),
		finished: make(chan struct{}),
	}
	reg := opts.Telemetry
	c.telGranted = reg.Counter("cluster.leases_granted")
	c.telExpired = reg.Counter("cluster.leases_expired")
	c.telSubmits = reg.Counter("cluster.submissions")
	c.telDuplicates = reg.Counter("cluster.duplicate_submits")
	c.telHeartbeats = reg.Counter("cluster.heartbeats")
	c.telWorkers = reg.Gauge("cluster.active_workers")
	c.telGap = reg.Histogram("cluster.heartbeat_gap")
	c.telLeaseDur = reg.Histogram("cluster.lease_duration")
	c.telStragglers = reg.Gauge("fleet.stragglers")
	spec, err := NewSpec(t, fs.Kind, cfg, opts.MaxGoldenCycles, uint64(len(fs.Classes)))
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	spec.LeaseTTL = opts.LeaseTTL
	// Wire the fleet timeline. A registry with span tracing enabled (the
	// favscan -trace serve path) contributes its recorder so local and
	// fleet spans merge into one timeline under the registry's trace ID;
	// otherwise the coordinator records into its own recorder under the
	// spec's ID (Options.TraceID when a service passed one through).
	if rec := reg.SpanRecorder(); rec != nil {
		c.spans = rec
		spec.TraceID = rec.TraceID()
	} else {
		if !opts.TraceID.IsZero() {
			spec.TraceID = opts.TraceID
		}
		c.spans = telemetry.NewSpanRecorder(spec.TraceID, "coordinator", opts.SpanCapacity)
	}
	c.traceID = spec.TraceID
	c.spec = EncodeSpec(spec)

	for ci, o := range prior {
		if ci < 0 || ci >= len(fs.Classes) {
			return nil, fmt.Errorf("cluster: prior class index %d outside [0, %d)", ci, len(fs.Classes))
		}
		if !o.Known() {
			return nil, fmt.Errorf("cluster: prior class %d has unknown outcome %d", ci, o)
		}
		c.outcomes[ci] = o
		c.have[ci] = true
		c.counts[o.Base()]++
		if o.Attack() {
			c.attacks++
		}
	}
	c.remaining = len(fs.Classes) - len(prior)

	var todo []int
	for i := range fs.Classes {
		if !c.have[i] {
			todo = append(todo, i)
		}
	}
	// Carve units in injection order: class indices are (Slot, Bit)-sorted
	// by construction, and this stable sort turns that into an explicit
	// contract of the carving rather than an accident of the pruning
	// layer — fork-strategy workers batch each leased unit along rung
	// boundaries and rely on ascending injection cycles for their monotone
	// golden cursor (internal/campaign scanFork).
	sort.SliceStable(todo, func(i, j int) bool {
		return fs.Classes[todo[i]].Slot() < fs.Classes[todo[j]].Slot()
	})
	for len(todo) > 0 {
		n := opts.UnitSize
		if n > len(todo) {
			n = len(todo)
		}
		u := &unit{id: uint64(len(c.units)), classes: todo[:n]}
		c.units = append(c.units, u)
		todo = todo[n:]
	}
	// Grant units in class order: pending is popped from the tail.
	for i := len(c.units) - 1; i >= 0; i-- {
		c.pending = append(c.pending, c.units[i])
	}
	if c.remaining == 0 {
		c.finishLocked()
	}
	c.mu.Lock()
	c.emitLocked(false)
	c.mu.Unlock()
	return c, nil
}

// Identity returns the campaign identity hash the coordinator admits.
func (c *Coordinator) Identity() [32]byte { return c.identity }

// TraceID returns the campaign's trace ID (shipped to workers in the
// handshake spec).
func (c *Coordinator) TraceID() telemetry.TraceID { return c.traceID }

// Timeline returns the merged fleet span timeline so far (sorted by
// start time) and how many spans were dropped at capacity.
func (c *Coordinator) Timeline() ([]telemetry.Span, uint64) {
	return c.spans.Spans(), c.spans.Dropped()
}

// finishLocked closes the finished channel exactly once, recording the
// campaign root span the first time. (Safe without the lock in
// NewCoordinator, before the coordinator is shared.)
func (c *Coordinator) finishLocked() {
	select {
	case <-c.finished:
	default:
		c.spans.Add(telemetry.Span{
			Scope:  "coordinator",
			Name:   "campaign",
			Detail: c.target.Name + " " + c.space.Kind.String(),
			Start:  c.start,
			Dur:    time.Since(c.start),
		})
		close(c.finished)
	}
}

// Handler returns the coordinator's HTTP handler. With
// Options.Telemetry set it additionally serves /debug/telemetry (the
// live instrument snapshot plus retained trace events as JSON), and
// with Options.Pprof the standard net/http/pprof endpoints under
// /debug/pprof/ — both are observability side doors and never touch
// campaign state.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/handshake", c.handleHandshake)
	mux.HandleFunc("/v1/lease", c.handleLease)
	mux.HandleFunc("/v1/submit", c.handleSubmit)
	mux.HandleFunc("/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/v1/leave", c.handleLeave)
	mux.HandleFunc("/v1/status", c.handleStatus)
	mux.HandleFunc("/v1/trace", c.handleTrace)
	mux.HandleFunc("/metrics", c.handleMetrics)
	if c.opts.Telemetry != nil {
		mux.HandleFunc("/debug/telemetry", c.handleTelemetry)
	}
	if c.opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Wait blocks until every class has an outcome (returning the complete
// result) or Options.Interrupt is closed (returning the partial result
// with campaign.ErrInterrupted). Late in-flight submissions keep merging
// — and reaching OnResult — until Seal is called.
func (c *Coordinator) Wait() (*campaign.Result, error) {
	var interrupt <-chan struct{} = c.opts.Interrupt
	select {
	case <-c.finished:
		c.mu.Lock()
		c.emitLocked(true)
		res := c.resultLocked()
		c.mu.Unlock()
		return res, nil
	case <-interrupt:
		c.mu.Lock()
		c.interrupted = true
		c.emitLocked(true)
		res := c.resultLocked()
		c.mu.Unlock()
		return res, campaign.ErrInterrupted
	}
}

// Seal stops result merging: subsequent submissions are rejected with
// 503 and OnResult will not be invoked again. Call it after the HTTP
// server has shut down (or before closing a checkpoint writer) so no
// handler can race a closed writer.
func (c *Coordinator) Seal() {
	c.mu.Lock()
	c.sealed = true
	c.mu.Unlock()
}

// Drained reports whether every worker that ever joined has left again.
func (c *Coordinator) Drained() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		if !w.left {
			return false
		}
	}
	return true
}

// Snapshot returns the current progress (also served at /v1/status).
func (c *Coordinator) Snapshot() Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.progressLocked(false)
}

func (c *Coordinator) resultLocked() *campaign.Result {
	return &campaign.Result{
		Target:   c.target,
		Golden:   c.golden,
		Space:    c.space,
		Outcomes: append([]campaign.Outcome(nil), c.outcomes...),
		Identity: c.identity,
	}
}

// --- HTTP handlers -------------------------------------------------------

// maxBody bounds request bodies; submissions are the largest legitimate
// message (a few bytes per class).
const maxBody = 16 << 20

// RequireMethod enforces the single allowed method of an endpoint,
// answering anything else with 405 and an Allow header per RFC 9110.
// Shared with the campaign service's endpoints (internal/service).
func RequireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		http.Error(w, "cluster: "+method+" required", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if !RequireMethod(w, r, http.MethodPost) {
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		http.Error(w, "cluster: read: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if len(body) > maxBody {
		http.Error(w, "cluster: request too large", http.StatusBadRequest)
		return nil, false
	}
	return body, true
}

// admit enforces the campaign identity admission check shared by every
// post-handshake endpoint.
func (c *Coordinator) admit(w http.ResponseWriter, id [32]byte) bool {
	if id != c.identity {
		http.Error(w, "cluster: campaign identity mismatch (different program image, fault-space kind or timeout budget)",
			http.StatusConflict)
		return false
	}
	return true
}

func (c *Coordinator) handleHandshake(w http.ResponseWriter, r *http.Request) {
	if _, ok := readBody(w, r); !ok {
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(c.spec)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	q, err := DecodeLeaseRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !c.admit(w, q.Identity) {
		return
	}

	c.mu.Lock()
	c.touchLocked(q.WorkerID)
	resp := WorkUnit{Status: UnitWait}
	switch {
	case c.interrupted || c.sealed:
		resp.Status = UnitShutdown
	case c.remaining == 0:
		resp.Status = UnitDone
	default:
		if len(c.pending) == 0 {
			c.reclaimExpiredLocked()
		}
		if n := len(c.pending); n > 0 {
			u := c.pending[n-1]
			c.pending = c.pending[:n-1]
			c.nextToken++
			u.state = unitLeased
			u.token = c.nextToken
			u.owner = q.WorkerID
			u.grantedAt = time.Now()
			u.deadline = u.grantedAt.Add(c.opts.LeaseTTL)
			c.leased++
			c.workers[q.WorkerID].outstanding++
			resp = WorkUnit{Status: UnitGranted, ID: u.id, Token: u.token, Classes: u.classes}
			if !c.rampedUp {
				c.rampedUp = true
				c.spans.Add(telemetry.Span{
					Scope:  "coordinator",
					Name:   "campaign.rampup",
					Detail: "campaign start to first lease grant",
					Start:  c.start,
					Dur:    u.grantedAt.Sub(c.start),
				})
			}
			c.telGranted.Inc()
			c.opts.Telemetry.Tracef("lease.granted", "unit %d (%d classes) to %s", u.id, len(u.classes), q.WorkerID)
		}
	}
	c.mu.Unlock()

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(EncodeWorkUnit(resp))
}

// reclaimExpiredLocked returns expired leases to the pending pool.
func (c *Coordinator) reclaimExpiredLocked() {
	now := time.Now()
	for _, u := range c.units {
		if u.state == unitLeased && now.After(u.deadline) {
			u.state = unitPending
			c.leased--
			if wi := c.workers[u.owner]; wi != nil && wi.outstanding > 0 {
				wi.outstanding--
			}
			c.telExpired.Inc()
			c.opts.Telemetry.Tracef("lease.expired", "unit %d reclaimed from %s", u.id, u.owner)
			u.owner = ""
			c.pending = append(c.pending, u)
			c.reassigned++
		}
	}
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	s, err := DecodeSubmission(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !c.admit(w, s.Identity) {
		return
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sealed {
		http.Error(w, "cluster: coordinator sealed", http.StatusServiceUnavailable)
		return
	}
	if s.UnitID >= uint64(len(c.units)) {
		http.Error(w, fmt.Sprintf("cluster: unknown unit %d", s.UnitID), http.StatusBadRequest)
		return
	}
	u := c.units[s.UnitID]
	member := make(map[int]bool, len(u.classes))
	for _, ci := range u.classes {
		member[ci] = true
	}
	for _, e := range s.Entries {
		if !member[e.Class] {
			http.Error(w, fmt.Sprintf("cluster: class %d not part of unit %d", e.Class, s.UnitID), http.StatusBadRequest)
			return
		}
		if !campaign.Outcome(e.Outcome).Known() {
			http.Error(w, fmt.Sprintf("cluster: unknown outcome %d", e.Outcome), http.StatusBadRequest)
			return
		}
	}

	wi := c.touchLocked(s.WorkerID)
	wi.experiments += len(s.Entries)
	c.telSubmits.Inc()
	// Merge the worker's spans into the fleet timeline. The scope is
	// stamped from the authenticated-by-admission worker ID, never taken
	// from the wire, so a worker cannot attribute spans to another.
	for _, sp := range s.Spans {
		sp.Scope = s.WorkerID
		c.spans.Add(sp)
	}
	// Idempotent merge: outcomes are deterministic, so the first record
	// for a class is as good as any duplicate — including submissions
	// under a stale lease token after a reassignment.
	for _, e := range s.Entries {
		if c.have[e.Class] {
			c.telDuplicates.Inc()
			continue
		}
		o := campaign.Outcome(e.Outcome)
		c.have[e.Class] = true
		c.outcomes[e.Class] = o
		c.counts[o.Base()]++
		if o.Attack() {
			c.attacks++
		}
		c.remaining--
		c.session++
		wi.merged++
		if c.opts.OnResult != nil {
			c.opts.OnResult(e.Class, o)
		}
	}
	if len(s.Entries) == len(u.classes) && u.state != unitDone {
		if u.state == unitLeased {
			c.leased--
			if owner := c.workers[u.owner]; owner != nil && owner.outstanding > 0 {
				owner.outstanding--
			}
			// Close out the lease: grant → full merge is the coordinator's
			// view of the unit's life, feeding both the timeline and the
			// watchdog's outlier baseline.
			if !u.grantedAt.IsZero() {
				d := time.Since(u.grantedAt)
				c.spans.Add(telemetry.Span{
					Scope:  "coordinator",
					Name:   "unit.lease",
					Detail: fmt.Sprintf("unit %d (%d classes) by %s", u.id, len(u.classes), u.owner),
					Start:  u.grantedAt,
					Dur:    d,
				})
				c.recordLeaseDurationLocked(d)
				c.telLeaseDur.Observe(d)
			}
		} else {
			// The unit's lease had already expired and it went back to the
			// pending pool; drop it from there so nobody re-runs it.
			for i, p := range c.pending {
				if p == u {
					c.pending = append(c.pending[:i], c.pending[i+1:]...)
					break
				}
			}
		}
		u.state = unitDone
		u.owner = ""
	}
	if c.opts.OnProgress != nil &&
		(c.opts.ProgressInterval < 0 || time.Since(c.lastEmit) >= c.opts.ProgressInterval) {
		c.emitLocked(false)
	}
	if c.remaining == 0 {
		c.finishLocked()
	}
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	h, err := DecodeHeartbeat(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !c.admit(w, h.Identity) {
		return
	}
	c.mu.Lock()
	wi := c.touchLocked(h.WorkerID)
	c.telHeartbeats.Inc()
	now := time.Now()
	if !wi.lastHeartbeat.IsZero() {
		c.telGap.Observe(now.Sub(wi.lastHeartbeat))
	}
	wi.lastHeartbeat = now
	for _, id := range h.Units {
		if id < uint64(len(c.units)) {
			u := c.units[id]
			if u.state == unitLeased && u.owner == h.WorkerID {
				u.deadline = now.Add(c.opts.LeaseTTL)
			}
		}
	}
	c.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleLeave(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	q, err := DecodeLeaseRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !c.admit(w, q.Identity) {
		return
	}
	c.mu.Lock()
	if wi := c.workers[q.WorkerID]; wi != nil {
		if !wi.left {
			c.telWorkers.Add(-1)
			c.opts.Telemetry.Tracef("worker.left", "%s", q.WorkerID)
		}
		wi.left = true
		// Return whatever the worker still holds without waiting for the
		// lease to expire; a voluntary return is not a reassignment.
		for _, u := range c.units {
			if u.state == unitLeased && u.owner == q.WorkerID {
				u.state = unitPending
				u.owner = ""
				c.leased--
				c.pending = append(c.pending, u)
			}
		}
		wi.outstanding = 0
	}
	c.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	if !RequireMethod(w, r, http.MethodGet) {
		return
	}
	p := c.Snapshot()
	resp := struct {
		Name     string `json:"name"`
		Space    string `json:"space"`
		Done     int    `json:"done"`
		Total    int    `json:"total"`
		Failures uint64 `json:"failures"`
		// Attacks counts classes whose outcome satisfied the campaign's
		// attacker objective (0 without one).
		Attacks       uint64  `json:"attacks"`
		Rate          float64 `json:"expPerSec"`
		Leases        int     `json:"outstandingLeases"`
		Reassignments int     `json:"reassignments"`
		// Workers carries each worker's session statistics, including its
		// windowed experiments-per-second rate.
		Workers []WorkerStat `json:"workers"`
		// Stragglers holds the watchdog's current verdicts (empty when the
		// fleet looks healthy).
		Stragglers []Straggler `json:"stragglers,omitempty"`
		// Telemetry is the coordinator's live instrument snapshot; absent
		// when the coordinator runs without a registry.
		Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
	}{
		Name: c.target.Name, Space: c.space.Kind.String(),
		Done: p.Done, Total: p.Total, Failures: p.Failures(),
		Attacks: p.Attacks,
		Rate:    p.Rate, Leases: p.OutstandingLeases,
		Reassignments: p.Reassignments, Workers: p.Workers,
		Stragglers: p.Stragglers,
	}
	if c.opts.Telemetry != nil {
		snap := c.opts.Telemetry.Snapshot()
		resp.Telemetry = &snap
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleTelemetry serves the full registry snapshot plus the retained
// trace events — the /debug/telemetry endpoint (only mounted when a
// registry is configured).
func (c *Coordinator) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	if !RequireMethod(w, r, http.MethodGet) {
		return
	}
	reg := c.opts.Telemetry
	resp := struct {
		Telemetry      telemetry.Snapshot `json:"telemetry"`
		Events         []telemetry.Event  `json:"events,omitempty"`
		EventsDropped  uint64             `json:"events_dropped,omitempty"`
		EventsCapacity int                `json:"events_capacity,omitempty"`
		TraceID        string             `json:"trace_id,omitempty"`
		Spans          int                `json:"spans,omitempty"`
		SpansDropped   uint64             `json:"spans_dropped,omitempty"`
		SpansCapacity  int                `json:"spans_capacity,omitempty"`
	}{Telemetry: reg.Snapshot()}
	if tr := reg.Tracer(); tr != nil {
		resp.Events = tr.Events()
		resp.EventsDropped = tr.Dropped()
		resp.EventsCapacity = tr.Cap()
	}
	if !c.traceID.IsZero() {
		resp.TraceID = c.traceID.String()
		resp.Spans = len(c.spans.Spans())
		resp.SpansDropped = c.spans.Dropped()
		resp.SpansCapacity = c.spans.Cap()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleTrace serves the merged fleet span timeline: Chrome trace-event
// JSON by default (loadable in Perfetto / chrome://tracing), one JSON
// object per span with ?format=jsonl.
func (c *Coordinator) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !RequireMethod(w, r, http.MethodGet) {
		return
	}
	if c.traceID.IsZero() {
		http.Error(w, "cluster: span tracing disabled for this campaign", http.StatusNotFound)
		return
	}
	spans, _ := c.Timeline()
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/jsonl")
		telemetry.WriteSpansJSONL(w, c.traceID, spans)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	telemetry.WriteChromeTrace(w, c.traceID, spans)
}

// handleMetrics serves the Prometheus text exposition: the registry's
// instruments (when one is configured) plus synthetic per-worker series
// labelled by worker ID, derived from the same statistics /v1/status
// reports.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !RequireMethod(w, r, http.MethodGet) {
		return
	}
	p := c.Snapshot()
	sets := make([]telemetry.MetricSet, 0, 1+len(p.Workers))
	if c.opts.Telemetry != nil {
		sets = append(sets, telemetry.MetricSet{Snap: c.opts.Telemetry.Snapshot()})
	}
	for _, ws := range p.Workers {
		snap := telemetry.Snapshot{
			Counters: map[string]uint64{
				"cluster.worker.experiments": uint64(ws.Experiments),
				"cluster.worker.merged":      uint64(ws.Merged),
			},
			Gauges: map[string]int64{
				"cluster.worker.outstanding": int64(ws.Outstanding),
			},
		}
		sets = append(sets, telemetry.MetricSet{
			Labels: map[string]string{"worker": ws.ID},
			Snap:   snap,
		})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.WritePrometheusSets(w, sets)
}

// --- progress ------------------------------------------------------------

func (c *Coordinator) touchLocked(workerID string) *workerInfo {
	wi := c.workers[workerID]
	if wi == nil {
		now := time.Now()
		wi = &workerInfo{id: workerID, joined: now, winStart: now}
		c.workers[workerID] = wi
		c.telWorkers.Add(1)
		c.opts.Telemetry.Tracef("worker.joined", "%s", workerID)
	} else if wi.left {
		// A worker that left and came back counts as active again.
		c.telWorkers.Add(1)
		c.opts.Telemetry.Tracef("worker.joined", "%s (rejoined)", workerID)
	}
	wi.left = false
	wi.lastSeen = time.Now()
	return wi
}

func (c *Coordinator) progressLocked(final bool) Progress {
	p := Progress{
		Progress: campaign.Progress{
			Done:    len(c.space.Classes) - c.remaining,
			Total:   len(c.space.Classes),
			Session: c.session,
			Counts:  c.counts,
			Attacks: c.attacks,
			Elapsed: time.Since(c.start),
			Final:   final,
		},
		OutstandingLeases: c.leased,
		Reassignments:     c.reassigned,
	}
	if p.Elapsed > 0 && c.session > 0 {
		p.Rate = float64(c.session) / p.Elapsed.Seconds()
		if rem := c.remaining; rem > 0 && p.Rate > 0 {
			p.ETA = time.Duration(float64(rem) / p.Rate * float64(time.Second))
		}
	}
	now := time.Now()
	for _, wi := range c.workers {
		ws := WorkerStat{
			ID:          wi.id,
			Experiments: wi.experiments,
			Merged:      wi.merged,
			Outstanding: wi.outstanding,
		}
		// Roll the rate window forward: each elapsed RateWindow becomes the
		// reported rate, so the stat reflects recent throughput. Several
		// windows may have passed since the last progress computation — the
		// experiments since winStart then spread over all of them, and a
		// fully idle stretch decays the rate to zero.
		if d := now.Sub(wi.winStart); d >= c.opts.RateWindow {
			windows := float64(d) / float64(c.opts.RateWindow)
			wi.rate = float64(wi.experiments-wi.winExp) / (windows * c.opts.RateWindow.Seconds())
			wi.hasRate = true
			wi.winStart = now
			wi.winExp = wi.experiments
		}
		if wi.hasRate {
			ws.Rate = wi.rate
		} else if d := now.Sub(wi.winStart); d > 0 && wi.experiments > wi.winExp {
			// Before the first full window: the partial-window rate.
			ws.Rate = float64(wi.experiments-wi.winExp) / d.Seconds()
		}
		p.Workers = append(p.Workers, ws)
	}
	sort.Slice(p.Workers, func(i, j int) bool { return p.Workers[i].ID < p.Workers[j].ID })
	p.Stragglers = c.stragglersLocked()
	return p
}

func (c *Coordinator) emitLocked(final bool) {
	if c.opts.OnProgress == nil {
		return
	}
	c.lastEmit = time.Now()
	c.opts.OnProgress(c.progressLocked(final))
}
