// Package archive encodes completed campaigns as self-contained JSON
// scan archives so that expensive scans can be stored, shared and
// re-analyzed without re-running the experiments — the role the FAIL*
// result database plays for the paper's campaigns. An archive keeps the
// fault-space geometry, every equivalence class with its outcome, and
// the golden run's reference output.
//
// The encoding is deterministic: a campaign result maps to exactly one
// byte sequence. Together with the strategy/placement/accelerator
// equivalence invariants (DESIGN.md invariants 8–11) this is what makes
// archived reports content-addressable by the campaign identity hash —
// the service's result archive (internal/service) stores these bytes
// verbatim and serves them for duplicate submissions (invariant 12).
package archive

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"faultspace/internal/campaign"
	"faultspace/internal/pruning"
	"faultspace/internal/trace"
)

// Version is bumped on incompatible schema changes.
const Version = 1

// identityHex renders a campaign identity hash for the archive; the zero
// hash (identity unknown) maps to the empty string.
func identityHex(id [32]byte) string {
	if id == ([32]byte{}) {
		return ""
	}
	return hex.EncodeToString(id[:])
}

type scanArchive struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	// Identity is the hex campaign identity hash (see CampaignIdentity),
	// correlating the archive with the campaign (and any checkpoint file)
	// that produced it. Empty in archives from older builds or results
	// reconstructed without a program.
	Identity      string         `json:"identity,omitempty"`
	Space         string         `json:"space"`
	Cycles        uint64         `json:"cycles"`
	Bits          uint64         `json:"bits"`
	RAMBits       uint64         `json:"ramBits"`
	KnownNoEffect uint64         `json:"knownNoEffect"`
	Serial        []byte         `json:"serial"`
	Detects       uint64         `json:"detects"`
	Corrects      uint64         `json:"corrects"`
	Classes       []classArchive `json:"classes"`
}

type classArchive struct {
	Bit     uint64 `json:"b"`
	Def     uint64 `json:"d"`
	Use     uint64 `json:"u"`
	Outcome uint8  `json:"o"`
}

// Encode writes a completed scan as a JSON archive.
func Encode(w io.Writer, r *campaign.Result) error {
	if len(r.Outcomes) != len(r.Space.Classes) {
		return fmt.Errorf("archive: scan result has %d outcomes for %d classes",
			len(r.Outcomes), len(r.Space.Classes))
	}
	a := scanArchive{
		Version:       Version,
		Name:          r.Target.Name,
		Identity:      identityHex(r.Identity),
		Space:         r.Space.Kind.String(),
		Cycles:        r.Space.Cycles,
		Bits:          r.Space.Bits,
		RAMBits:       r.Golden.RAMBits,
		KnownNoEffect: r.Space.KnownNoEffect,
		Serial:        r.Golden.Serial,
		Detects:       r.Golden.Detects,
		Corrects:      r.Golden.Corrects,
		Classes:       make([]classArchive, len(r.Space.Classes)),
	}
	for i, c := range r.Space.Classes {
		a.Classes[i] = classArchive{
			Bit:     c.Bit,
			Def:     c.DefCycle,
			Use:     c.UseCycle,
			Outcome: uint8(r.Outcomes[i]),
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&a)
}

// Decode reads a scan archive and reconstructs a campaign result
// sufficient for analysis and reporting (Analyze, Compare, outcome
// dumps). The reconstructed result has no program attached and cannot be
// re-executed. The fault-space partition invariant is re-verified, so
// inconsistent or tampered archives are rejected.
func Decode(r io.Reader) (*campaign.Result, error) {
	var a scanArchive
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("archive: decode scan archive: %w", err)
	}
	if a.Version != Version {
		return nil, fmt.Errorf("archive: scan archive version %d, want %d", a.Version, Version)
	}
	var kind pruning.SpaceKind
	switch a.Space {
	case pruning.SpaceMemory.String():
		kind = pruning.SpaceMemory
	case pruning.SpaceRegisters.String():
		kind = pruning.SpaceRegisters
	case pruning.SpaceSkip.String():
		kind = pruning.SpaceSkip
	case pruning.SpacePC.String():
		kind = pruning.SpacePC
	case pruning.SpaceBurst2.String():
		kind = pruning.SpaceBurst2
	case pruning.SpaceBurst4.String():
		kind = pruning.SpaceBurst4
	default:
		return nil, fmt.Errorf("archive: unknown fault space %q in archive", a.Space)
	}

	classes := make([]pruning.Class, len(a.Classes))
	outcomes := make([]campaign.Outcome, len(a.Classes))
	for i, c := range a.Classes {
		classes[i] = pruning.Class{Bit: c.Bit, DefCycle: c.Def, UseCycle: c.Use}
		if !campaign.Outcome(c.Outcome).Known() {
			return nil, fmt.Errorf("archive: archive class %d has unknown outcome %d", i, c.Outcome)
		}
		outcomes[i] = campaign.Outcome(c.Outcome)
	}
	fs, err := pruning.FromClasses(kind, a.Cycles, a.Bits, classes, a.KnownNoEffect)
	if err != nil {
		return nil, fmt.Errorf("archive: scan archive inconsistent: %w", err)
	}
	var id [32]byte
	if a.Identity != "" {
		raw, err := hex.DecodeString(a.Identity)
		if err != nil || len(raw) != len(id) {
			return nil, fmt.Errorf("archive: scan archive has malformed identity %q", a.Identity)
		}
		copy(id[:], raw)
	}
	return &campaign.Result{
		Identity: id,
		Target:   campaign.Target{Name: a.Name},
		Golden: &trace.Golden{
			Name:     a.Name,
			Cycles:   a.Cycles,
			RAMBits:  a.RAMBits,
			Serial:   a.Serial,
			Detects:  a.Detects,
			Corrects: a.Corrects,
		},
		Space:    fs,
		Outcomes: outcomes,
	}, nil
}
