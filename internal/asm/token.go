// Package asm implements the fav32 two-pass assembler.
//
// The assembler turns textual assembly into an asm.Program: a slice of
// decoded isa.Instructions (the ROM) plus an initial RAM image (the data
// section). Code labels resolve to instruction indices, data labels to RAM
// byte addresses, and .equ symbols to arbitrary constants. Pseudo
// instructions for protected data accesses (pld/pst) are parsed but must be
// expanded by internal/harden before final assembly.
//
// Syntax overview:
//
//	; line comment (also: # comment)
//	        .ram    512             ; RAM size for this program (bytes)
//	        .equ    GREET, 'H'      ; constant definition
//	        .data                   ; switch to data section
//	buf:    .space  32              ; reserve zeroed bytes
//	val:    .word   1, 2, 3         ; emit little-endian words
//	        .byte   0xff            ; emit bytes
//	        .align  4
//	        .org    0x40            ; set data location counter
//	        .text                   ; switch to code section (default)
//	start:  li      r1, GREET
//	        sw      r1, val(r0)     ; symbolic offsets are expressions
//	        beq     r1, r0, start
//	        call    func            ; pseudo for jal
//	        halt
package asm

import (
	"fmt"
	"strings"
)

// Pos locates a statement in the concatenated source.
type Pos struct {
	Line int // 1-based line number
}

// Error is an assembly diagnostic tied to a source line.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("line %d: %s", e.Pos.Line, e.Msg)
}

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// tokKind classifies lexer tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // single punctuation rune: ( ) + - * / % & | ^ ~ , :
	tokShl   // <<
	tokShr   // >>
)

type token struct {
	kind tokKind
	text string
	val  int64 // for tokNumber
}

// lexLine splits one source line (comment already stripped) into tokens.
func lexLine(pos Pos, line string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case isIdentStart(c):
			j := i + 1
			for j < len(line) && isIdentPart(line[j]) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: line[i:j]})
			i = j
		case c >= '0' && c <= '9':
			j := i + 1
			for j < len(line) && (isIdentPart(line[j])) {
				j++
			}
			v, err := parseNumber(line[i:j])
			if err != nil {
				return nil, errf(pos, "bad number %q: %v", line[i:j], err)
			}
			toks = append(toks, token{kind: tokNumber, text: line[i:j], val: v})
			i = j
		case c == '\'':
			v, n, err := parseCharLit(line[i:])
			if err != nil {
				return nil, errf(pos, "%v", err)
			}
			toks = append(toks, token{kind: tokNumber, text: line[i : i+n], val: v})
			i += n
		case c == '<' && i+1 < len(line) && line[i+1] == '<':
			toks = append(toks, token{kind: tokShl, text: "<<"})
			i += 2
		case c == '>' && i+1 < len(line) && line[i+1] == '>':
			toks = append(toks, token{kind: tokShr, text: ">>"})
			i += 2
		case strings.ContainsRune("()+-*/%&|^~,:", rune(c)):
			toks = append(toks, token{kind: tokPunct, text: string(c)})
			i++
		default:
			return nil, errf(pos, "unexpected character %q", c)
		}
	}
	toks = append(toks, token{kind: tokEOF})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '.' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func parseNumber(s string) (int64, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var (
		v    int64
		base int64 = 10
	)
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		base = 16
		s = s[2:]
	} else if strings.HasPrefix(s, "0b") || strings.HasPrefix(s, "0B") {
		base = 2
		s = s[2:]
	}
	if s == "" {
		return 0, fmt.Errorf("empty digits")
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '_' {
			continue
		}
		var d int64
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = int64(c-'A') + 10
		default:
			return 0, fmt.Errorf("bad digit %q", c)
		}
		if d >= base {
			return 0, fmt.Errorf("digit %q out of range for base %d", c, base)
		}
		v = v*base + d
	}
	if neg {
		v = -v
	}
	return v, nil
}

// parseCharLit parses a character literal starting at s[0] == '\”. It
// returns the value, the number of bytes consumed, and an error.
func parseCharLit(s string) (int64, int, error) {
	if len(s) < 3 {
		return 0, 0, fmt.Errorf("unterminated character literal")
	}
	if s[1] == '\\' {
		if len(s) < 4 || s[3] != '\'' {
			return 0, 0, fmt.Errorf("bad escaped character literal")
		}
		var v byte
		switch s[2] {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case 'r':
			v = '\r'
		case '0':
			v = 0
		case '\\':
			v = '\\'
		case '\'':
			v = '\''
		default:
			return 0, 0, fmt.Errorf("unknown escape \\%c", s[2])
		}
		return int64(v), 4, nil
	}
	if s[2] != '\'' {
		return 0, 0, fmt.Errorf("unterminated character literal")
	}
	return int64(s[1]), 3, nil
}
