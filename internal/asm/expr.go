package asm

import "fmt"

// Expr is a constant expression evaluated during assembly.
type Expr interface {
	// Eval computes the expression value using syms for symbol lookup.
	Eval(syms SymbolTable) (int64, error)
	String() string
}

// SymbolTable resolves symbol names during expression evaluation.
type SymbolTable interface {
	Lookup(name string) (int64, bool)
}

// MapSymbols is a SymbolTable backed by a map.
type MapSymbols map[string]int64

// Lookup implements SymbolTable.
func (m MapSymbols) Lookup(name string) (int64, bool) {
	v, ok := m[name]
	return v, ok
}

// NumExpr is an integer literal.
type NumExpr struct{ Value int64 }

// Eval implements Expr.
func (e NumExpr) Eval(SymbolTable) (int64, error) { return e.Value, nil }

func (e NumExpr) String() string { return fmt.Sprintf("%d", e.Value) }

// SymExpr is a symbol reference (label or .equ constant).
type SymExpr struct{ Name string }

// Eval implements Expr.
func (e SymExpr) Eval(syms SymbolTable) (int64, error) {
	if syms == nil {
		return 0, fmt.Errorf("undefined symbol %q", e.Name)
	}
	v, ok := syms.Lookup(e.Name)
	if !ok {
		return 0, fmt.Errorf("undefined symbol %q", e.Name)
	}
	return v, nil
}

func (e SymExpr) String() string { return e.Name }

// UnExpr is a unary operation: - or ~.
type UnExpr struct {
	Op rune
	X  Expr
}

// Eval implements Expr.
func (e UnExpr) Eval(syms SymbolTable) (int64, error) {
	v, err := e.X.Eval(syms)
	if err != nil {
		return 0, err
	}
	switch e.Op {
	case '-':
		return -v, nil
	case '~':
		return ^v, nil
	default:
		return 0, fmt.Errorf("unknown unary operator %q", e.Op)
	}
}

func (e UnExpr) String() string { return fmt.Sprintf("%c%s", e.Op, e.X) }

// BinExpr is a binary operation.
type BinExpr struct {
	Op string // + - * / % & | ^ << >>
	X  Expr
	Y  Expr
}

// Eval implements Expr.
func (e BinExpr) Eval(syms SymbolTable) (int64, error) {
	x, err := e.X.Eval(syms)
	if err != nil {
		return 0, err
	}
	y, err := e.Y.Eval(syms)
	if err != nil {
		return 0, err
	}
	switch e.Op {
	case "+":
		return x + y, nil
	case "-":
		return x - y, nil
	case "*":
		return x * y, nil
	case "/":
		if y == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return x / y, nil
	case "%":
		if y == 0 {
			return 0, fmt.Errorf("modulo by zero")
		}
		return x % y, nil
	case "&":
		return x & y, nil
	case "|":
		return x | y, nil
	case "^":
		return x ^ y, nil
	case "<<":
		if y < 0 || y > 63 {
			return 0, fmt.Errorf("shift amount %d out of range", y)
		}
		return x << uint(y), nil
	case ">>":
		if y < 0 || y > 63 {
			return 0, fmt.Errorf("shift amount %d out of range", y)
		}
		return x >> uint(y), nil
	default:
		return 0, fmt.Errorf("unknown operator %q", e.Op)
	}
}

func (e BinExpr) String() string { return fmt.Sprintf("(%s %s %s)", e.X, e.Op, e.Y) }

// exprParser parses constant expressions from a token stream with this
// precedence ladder (loosest first): | ^ &, << >>, + -, * / %, unary.
type exprParser struct {
	pos  Pos
	toks []token
	i    int
}

func (p *exprParser) peek() token   { return p.toks[p.i] }
func (p *exprParser) next() token   { t := p.toks[p.i]; p.i++; return t }
func (p *exprParser) atEnd() bool   { return p.toks[p.i].kind == tokEOF }
func (p *exprParser) save() int     { return p.i }
func (p *exprParser) restore(i int) { p.i = i }

func (p *exprParser) acceptPunct(s string) bool {
	t := p.peek()
	if (t.kind == tokPunct && t.text == s) ||
		(t.kind == tokShl && s == "<<") ||
		(t.kind == tokShr && s == ">>") {
		p.i++
		return true
	}
	return false
}

func (p *exprParser) parseExpr() (Expr, error) {
	return p.parseBinary(0)
}

var precLevels = [][]string{
	{"|", "^"},
	{"&"},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *exprParser) parseBinary(level int) (Expr, error) {
	if level == len(precLevels) {
		return p.parseUnary()
	}
	x, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range precLevels[level] {
			if p.acceptPunct(op) {
				y, err := p.parseBinary(level + 1)
				if err != nil {
					return nil, err
				}
				x = BinExpr{Op: op, X: x, Y: y}
				matched = true
				break
			}
		}
		if !matched {
			return x, nil
		}
	}
}

func (p *exprParser) parseUnary() (Expr, error) {
	if p.acceptPunct("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnExpr{Op: '-', X: x}, nil
	}
	if p.acceptPunct("~") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnExpr{Op: '~', X: x}, nil
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		return NumExpr{Value: t.val}, nil
	case tokIdent:
		p.next()
		return SymExpr{Name: t.text}, nil
	case tokPunct:
		if t.text == "(" {
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if !p.acceptPunct(")") {
				return nil, errf(p.pos, "missing closing parenthesis")
			}
			return x, nil
		}
	}
	return nil, errf(p.pos, "expected expression, found %q", t.text)
}
