package asm

import (
	"strings"
	"testing"
)

// FuzzAssemble feeds arbitrary text through the full parse+assemble
// pipeline; the assembler must reject garbage with errors, never panic,
// and any program it accepts must be structurally valid.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"halt\n",
		"li r1, 'H'\nsb r1, 0x10000(r0)\nhalt\n",
		".ram 64\n.equ X, 1<<4\n.data\nv: .word X, -1\n.text\nlw r1, v(r0)\nhalt\n",
		".timer 64, isr\nnop\nhalt\nisr: sret\n",
		"loop: addi r1, r1, 1\nbne r1, r2, loop\nhalt\n",
		"pld r1, 0(r2)\npst r1, 0(r2)\npchk\n",
		"; comment with 'quote\n# another\nli r3, ';'\nhalt",
		".data\n.org 8\n.space 4\n.align 4\n.byte 1,2,3\n.text\nret\n",
		"call f\nhalt\nf: inc r4\nnot r5, r4\nbgt r4, r5, f\nret\n",
		"li r1, 0xDEAD_BEEF % 7 + (3*4)\nhalt\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz", src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if len(p.Code) == 0 {
			t.Fatal("accepted program without instructions")
		}
		for i, ins := range p.Code {
			if verr := ins.Validate(); verr != nil {
				t.Fatalf("instruction %d invalid after successful assembly: %v", i, verr)
			}
		}
		if len(p.Image) > p.RAMSize {
			t.Fatalf("image %d exceeds RAM %d", len(p.Image), p.RAMSize)
		}
		// The disassembly of accepted code must not contain the fallback
		// verbose form (it would mean an instruction the toolchain cannot
		// render).
		for _, ins := range p.Code {
			if strings.Contains(ins.String(), "rd=") {
				t.Fatalf("unrenderable instruction accepted: %v", ins)
			}
		}
	})
}

// FuzzParseNumber exercises the numeric literal parser.
func FuzzParseNumber(f *testing.F) {
	for _, s := range []string{"0", "42", "0x1F", "0b101", "1_000", "0xDEAD_BEEF", "-7", "0x", "0b2"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		_, _ = parseNumber(s) // must not panic
	})
}
