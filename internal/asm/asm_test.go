package asm

import (
	"strings"
	"testing"

	"faultspace/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble("test", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestAssembleMinimal(t *testing.T) {
	p := mustAssemble(t, "halt\n")
	if len(p.Code) != 1 || p.Code[0].Op != isa.OpHalt {
		t.Fatalf("got %v", p.Code)
	}
	if p.RAMSize != DefaultRAMSize {
		t.Errorf("RAMSize = %d, want default %d", p.RAMSize, DefaultRAMSize)
	}
}

func TestAssembleEveryFormat(t *testing.T) {
	p := mustAssemble(t, `
        .ram    64
start:  nop
        li      r1, -2
        mov     r2, r1
        add     r3, r1, r2
        addi    r3, r3, 0x10
        lw      r4, 8(r14)
        lb      r5, 9(sp)
        sw      r4, 12(r0)
        sb      r5, 13(r0)
        swi     -1, 16(r0)
        sbi     'x', 20(r0)
        beq     r1, r2, start
        bne     r1, r2, start
        blt     r1, r2, start
        bge     r1, r2, start
        bltu    r1, r2, start
        bgeu    r1, r2, start
        jmp     start
        jal     start
        jr      lr
        jalr    r1, r2
        halt
`)
	wantOps := []isa.Op{
		isa.OpNop, isa.OpLi, isa.OpMov, isa.OpAdd, isa.OpAddi,
		isa.OpLw, isa.OpLb, isa.OpSw, isa.OpSb, isa.OpSwi, isa.OpSbi,
		isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu,
		isa.OpJmp, isa.OpJal, isa.OpJr, isa.OpJalr, isa.OpHalt,
	}
	if len(p.Code) != len(wantOps) {
		t.Fatalf("got %d instructions, want %d", len(p.Code), len(wantOps))
	}
	for i, op := range wantOps {
		if p.Code[i].Op != op {
			t.Errorf("instr %d: op = %v, want %v", i, p.Code[i].Op, op)
		}
	}
	// Spot-check operands.
	if p.Code[1].Imm != -2 {
		t.Error("li immediate wrong")
	}
	if p.Code[5].Rs != isa.RegSP || p.Code[5].Imm != 8 {
		t.Errorf("lw operands wrong: %+v", p.Code[5])
	}
	if p.Code[6].Rs != isa.RegSP {
		t.Error("sp alias not resolved")
	}
	if p.Code[9].Imm2 != -1 || p.Code[9].Imm != 16 {
		t.Errorf("swi operands wrong: %+v", p.Code[9])
	}
	if p.Code[10].Imm2 != 'x' {
		t.Error("sbi char literal wrong")
	}
	if p.Code[11].Imm != 0 {
		t.Errorf("branch target = %d, want 0 (label start)", p.Code[11].Imm)
	}
	if p.Code[19].Rs != isa.RegLR {
		t.Error("lr alias not resolved")
	}
}

func TestPseudoAliases(t *testing.T) {
	p := mustAssemble(t, `
f:      inc     r1
        dec     r2
        not     r3, r4
        bgt     r1, r2, f
        ble     r1, r2, f
        bgtu    r1, r2, f
        bleu    r1, r2, f
        call    f
        ret
        halt
`)
	checks := []struct {
		i    int
		op   isa.Op
		desc string
		ok   func(ins isa.Instruction) bool
	}{
		{0, isa.OpAddi, "inc", func(i isa.Instruction) bool { return i.Rd == 1 && i.Rs == 1 && i.Imm == 1 }},
		{1, isa.OpAddi, "dec", func(i isa.Instruction) bool { return i.Rd == 2 && i.Imm == -1 }},
		{2, isa.OpXori, "not", func(i isa.Instruction) bool { return i.Rd == 3 && i.Rs == 4 && i.Imm == -1 }},
		{3, isa.OpBlt, "bgt swaps", func(i isa.Instruction) bool { return i.Rs == 2 && i.Rt == 1 }},
		{4, isa.OpBge, "ble swaps", func(i isa.Instruction) bool { return i.Rs == 2 && i.Rt == 1 }},
		{5, isa.OpBltu, "bgtu swaps", func(i isa.Instruction) bool { return i.Rs == 2 && i.Rt == 1 }},
		{6, isa.OpBgeu, "bleu swaps", func(i isa.Instruction) bool { return i.Rs == 2 && i.Rt == 1 }},
		{7, isa.OpJal, "call", func(i isa.Instruction) bool { return i.Imm == 0 }},
		{8, isa.OpJr, "ret", func(i isa.Instruction) bool { return i.Rs == isa.RegLR }},
	}
	for _, c := range checks {
		ins := p.Code[c.i]
		if ins.Op != c.op || !c.ok(ins) {
			t.Errorf("%s: got %v", c.desc, ins)
		}
	}
}

func TestDataSection(t *testing.T) {
	p := mustAssemble(t, `
        .ram    64
        .data
a:      .word   0x11223344, -1
b:      .byte   1, 2, 3
        .align  4
c:      .word   a+4
        .org    0x20
d:      .space  8
        .text
        lw      r1, a(r0)
        halt
`)
	if got := p.Symbols["a"]; got != 0 {
		t.Errorf("a = %d, want 0", got)
	}
	if got := p.Symbols["b"]; got != 8 {
		t.Errorf("b = %d, want 8", got)
	}
	if got := p.Symbols["c"]; got != 12 {
		t.Errorf("c = %d, want 12 (aligned)", got)
	}
	if got := p.Symbols["d"]; got != 0x20 {
		t.Errorf("d = %#x, want 0x20", got)
	}
	if len(p.Image) != 0x28 {
		t.Errorf("image length = %d, want 40", len(p.Image))
	}
	// Little-endian word 0x11223344 at 0.
	if p.Image[0] != 0x44 || p.Image[3] != 0x11 {
		t.Errorf("word bytes = % x", p.Image[0:4])
	}
	if p.Image[4] != 0xff || p.Image[7] != 0xff {
		t.Error(".word -1 must be all ones")
	}
	if p.Image[8] != 1 || p.Image[9] != 2 || p.Image[10] != 3 {
		t.Error(".byte values wrong")
	}
	if p.Image[12] != 4 { // c: .word a+4 = 4
		t.Errorf("c word = %d, want 4", p.Image[12])
	}
}

func TestEquAndExpressions(t *testing.T) {
	p := mustAssemble(t, `
        .equ    BASE, 0x100
        .equ    SIZE, 8*4
        .equ    END, BASE + SIZE - 1
        .equ    MASK, ~0xff & 0xffff
        .equ    SHIFTED, 1 << 4 | 1
        .ram    BASE + SIZE
        li      r1, END
        li      r2, MASK
        li      r3, SHIFTED
        li      r4, (2+3)*4
        li      r5, 100/7
        li      r6, 100%7
        li      r7, -BASE
        halt
`)
	want := map[int]int32{
		0: 0x11f,
		1: 0xff00,
		2: 17,
		3: 20,
		4: 14,
		5: 2,
		6: -0x100,
	}
	for i, w := range want {
		if p.Code[i].Imm != w {
			t.Errorf("instr %d imm = %d, want %d", i, p.Code[i].Imm, w)
		}
	}
	if p.RAMSize != 0x120 {
		t.Errorf("RAMSize = %d, want %d", p.RAMSize, 0x120)
	}
}

func TestCommentsAndCharLiterals(t *testing.T) {
	p := mustAssemble(t, `
        li r1, ';'      ; semicolon literal must survive comments
        li r2, '#'      # hash comment style
        li r3, '\n'
        li r4, '\''
        li r5, '\\'
        li r6, '\0'
        halt
`)
	want := []int32{';', '#', '\n', '\'', '\\', 0}
	for i, w := range want {
		if p.Code[i].Imm != w {
			t.Errorf("instr %d imm = %d, want %d", i, p.Code[i].Imm, w)
		}
	}
}

func TestNumberFormats(t *testing.T) {
	p := mustAssemble(t, `
        li r1, 0x10
        li r2, 0b101
        li r3, 1_000
        li r4, 0xDEAD_BEEF
        halt
`)
	deadbeef := uint32(0xDEAD_BEEF)
	want := []int32{16, 5, 1000, int32(deadbeef)}
	for i, w := range want {
		if p.Code[i].Imm != w {
			t.Errorf("instr %d imm = %d, want %d", i, p.Code[i].Imm, w)
		}
	}
}

func TestMemOperandForms(t *testing.T) {
	p := mustAssemble(t, `
        .equ OFF, 12
        lw r1, (r2)
        lw r1, 4(r2)
        lw r1, OFF(r2)
        lw r1, OFF+4(r2)
        lw r1, (OFF+4)*2(r2)
        halt
`)
	want := []int32{0, 4, 12, 16, 32}
	for i, w := range want {
		if p.Code[i].Imm != w || p.Code[i].Rs != 2 {
			t.Errorf("instr %d: imm=%d rs=%d, want imm=%d rs=2", i, p.Code[i].Imm, p.Code[i].Rs, w)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown-mnemonic", "frob r1\n halt", "unknown mnemonic"},
		{"unknown-directive", ".frob 1\n halt", "unknown directive"},
		{"unknown-register", "li rx, 1\n halt", "unknown register"},
		{"register-out-of-range", "li r16, 1\n halt", "unknown register"},
		{"undefined-symbol", "li r1, NOPE\n halt", "undefined symbol"},
		{"duplicate-label", "a: nop\na: halt", "redefined"},
		{"duplicate-equ", ".equ X, 1\n.equ X, 2\n halt", "redefined"},
		{"branch-out-of-range", "beq r1, r2, 99\n halt", "target"},
		{"missing-comma", "add r1 r2, r3\n halt", "comma"},
		{"trailing-tokens", "nop nop\n halt", "trailing"},
		{"imm2-overflow", "swi 5000, 0(r0)\n halt", "12 bits"},
		{"word-unaligned", ".data\n.byte 1\n.word 2\n.text\n halt", "unaligned"},
		{"space-negative", ".data\n.space 0-1\n.text\n halt", "out of range"},
		{"align-not-pow2", ".data\n.align 3\n.text\n halt", "power of two"},
		{"data-outside-section", ".word 1\n halt", "outside .data"},
		{"ram-too-small", ".ram 4\n.data\n.space 8\n.text\n halt", "exceeds RAM"},
		{"empty-program", "; nothing\n", "no instructions"},
		{"pseudo-not-expanded", "pld r1, 0(r2)\n halt", "not expanded"},
		{"bad-char", "li r1, @\n halt", "unexpected character"},
		{"division-by-zero", "li r1, 1/0\n halt", "division by zero"},
		{"unterminated-char", "li r1, 'a\n halt", "unterminated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble("bad", tc.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestMultipleErrorsReported(t *testing.T) {
	_, err := Assemble("bad", "frob r1\nfrob r2\n halt")
	if err == nil {
		t.Fatal("expected errors")
	}
	if strings.Count(err.Error(), "unknown mnemonic") != 2 {
		t.Errorf("expected both errors reported, got: %v", err)
	}
}

func TestLabelOnlyLineAndAttachedLabels(t *testing.T) {
	p := mustAssemble(t, `
start:
        nop
loop:   jmp loop
        halt
`)
	if p.Symbols["start"] != 0 {
		t.Errorf("start = %d, want 0", p.Symbols["start"])
	}
	if p.Symbols["loop"] != 1 {
		t.Errorf("loop = %d, want 1", p.Symbols["loop"])
	}
	if p.Code[1].Imm != 1 {
		t.Error("jmp loop should target instruction 1")
	}
}

func TestLinesTracksSource(t *testing.T) {
	p := mustAssemble(t, "nop\nnop\n\nhalt\n")
	if len(p.Lines) != 3 {
		t.Fatalf("lines = %v", p.Lines)
	}
	if p.Lines[0] != 1 || p.Lines[1] != 2 || p.Lines[2] != 4 {
		t.Errorf("lines = %v, want [1 2 4]", p.Lines)
	}
}

func TestForwardReferences(t *testing.T) {
	p := mustAssemble(t, `
        jmp end
        .data
ptr:    .word end
        .text
end:    halt
`)
	if p.Code[0].Imm != 1 {
		t.Errorf("forward jmp target = %d, want 1", p.Code[0].Imm)
	}
	if p.Image[0] != 1 {
		t.Errorf("data forward ref = %d, want 1", p.Image[0])
	}
}

func TestTimerDirective(t *testing.T) {
	p := mustAssemble(t, `
        .timer  64, isr
        nop
        halt
isr:    sret
`)
	if p.TimerPeriod != 64 {
		t.Errorf("period = %d, want 64", p.TimerPeriod)
	}
	if p.TimerVector != 2 {
		t.Errorf("vector = %d, want 2 (label isr)", p.TimerVector)
	}

	noTimer := mustAssemble(t, "halt\n")
	if noTimer.TimerPeriod != 0 {
		t.Error("programs without .timer must have period 0")
	}

	bad := []struct{ name, src string }{
		{"zero-period", ".timer 0, h\nh: halt"},
		{"negative-period", ".timer 0-5, h\nh: halt"},
		{"vector-out-of-range", ".timer 4, 99\n halt"},
		{"missing-arg", ".timer 4\n halt"},
		{"undefined-handler", ".timer 4, nowhere\n halt"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Assemble("bad", tc.src); err == nil {
				t.Errorf("source %q must be rejected", tc.src)
			}
		})
	}
}

func TestSretMnemonic(t *testing.T) {
	p := mustAssemble(t, "sret\nhalt\n")
	if p.Code[0].Op != isa.OpSret {
		t.Errorf("op = %v, want sret", p.Code[0].Op)
	}
}

func TestStmtIsPseudo(t *testing.T) {
	stmts, err := Parse("pld r1, 0(r2)\npst r1, 0(r2)\npchk\nlw r1, 0(r2)\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, true, false}
	for i, w := range want {
		if stmts[i].IsPseudo() != w {
			t.Errorf("stmt %d IsPseudo = %v, want %v", i, stmts[i].IsPseudo(), w)
		}
	}
}
