package asm

import (
	"errors"
	"strconv"
	"strings"

	"faultspace/internal/isa"
)

// StmtKind classifies parsed statements.
type StmtKind uint8

// Statement kinds.
const (
	StmtEmpty StmtKind = iota + 1 // label-only or blank line
	StmtInstr                     // machine instruction or pld/pst pseudo
	StmtDir                       // directive (.word, .byte, .space, ...)
	StmtEqu                       // .equ NAME, expr
)

// OperandKind classifies instruction operands.
type OperandKind uint8

// Operand kinds.
const (
	OperandReg  OperandKind = iota + 1 // register
	OperandExpr                        // immediate / branch target expression
	OperandMem                         // offset(base) memory reference
)

// Operand is one parsed instruction operand.
type Operand struct {
	Kind OperandKind
	Reg  uint8 // register number (OperandReg) or base register (OperandMem)
	Expr Expr  // immediate (OperandExpr) or offset (OperandMem)
}

// Names of the protected-access pseudo instructions understood by the
// parser and expanded by internal/harden.
const (
	PseudoPLoad  = "pld"  // pld rd, off(rs): protected word load
	PseudoPStore = "pst"  // pst rt, off(rs): protected word store
	PseudoPCheck = "pchk" // pchk: verify/scrub the whole protected region
)

// Stmt is one parsed assembly statement.
type Stmt struct {
	Pos     Pos
	Label   string // label defined at this statement, or ""
	Kind    StmtKind
	Name    string // mnemonic (StmtInstr) or directive name (StmtDir/StmtEqu)
	Ops     []Operand
	Exprs   []Expr // directive arguments
	EquName string // symbol defined by .equ
}

// IsPseudo reports whether the statement is a protected-access pseudo
// instruction that internal/harden must expand before assembly.
func (s Stmt) IsPseudo() bool {
	return s.Kind == StmtInstr &&
		(s.Name == PseudoPLoad || s.Name == PseudoPStore || s.Name == PseudoPCheck)
}

// Parse parses assembly source into statements. It accumulates diagnostics
// and returns them joined, so several errors surface in one run.
func Parse(src string) ([]Stmt, error) {
	var (
		stmts []Stmt
		errs  []error
	)
	lines := strings.Split(src, "\n")
	for li, raw := range lines {
		pos := Pos{Line: li + 1}
		line := stripComment(raw)
		if strings.TrimSpace(line) == "" {
			continue
		}
		toks, err := lexLine(pos, line)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		st, err := parseStmt(pos, toks)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if st.Kind == StmtEmpty && st.Label == "" {
			continue
		}
		stmts = append(stmts, st)
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return stmts, nil
}

// stripComment removes ';' and '#' comments, ignoring comment characters
// inside character literals.
func stripComment(line string) string {
	inChar := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inChar:
			if c == '\\' {
				i++ // skip escaped char
			} else if c == '\'' {
				inChar = false
			}
		case c == '\'':
			inChar = true
		case c == ';' || c == '#':
			return line[:i]
		}
	}
	return line
}

func parseStmt(pos Pos, toks []token) (Stmt, error) {
	p := &exprParser{pos: pos, toks: toks}
	st := Stmt{Pos: pos, Kind: StmtEmpty}

	// Optional label: IDENT ':'
	if p.peek().kind == tokIdent && !strings.HasPrefix(p.peek().text, ".") {
		mark := p.save()
		name := p.next().text
		if p.acceptPunct(":") {
			st.Label = name
		} else {
			p.restore(mark)
		}
	}
	if p.atEnd() {
		return st, nil
	}

	head := p.peek()
	if head.kind != tokIdent {
		return st, errf(pos, "expected mnemonic or directive, found %q", head.text)
	}
	p.next()
	name := strings.ToLower(head.text)

	if strings.HasPrefix(name, ".") {
		return parseDirective(pos, p, st, name)
	}
	return parseInstr(pos, p, st, name)
}

func parseDirective(pos Pos, p *exprParser, st Stmt, name string) (Stmt, error) {
	st.Name = name
	switch name {
	case ".equ":
		st.Kind = StmtEqu
		if p.peek().kind != tokIdent {
			return st, errf(pos, ".equ: expected symbol name")
		}
		sym := p.next().text
		if !p.acceptPunct(",") {
			return st, errf(pos, ".equ: expected comma after name")
		}
		e, err := p.parseExpr()
		if err != nil {
			return st, err
		}
		st.Exprs = []Expr{e}
		st.EquName = sym
	case ".text", ".data":
		st.Kind = StmtDir
	case ".word", ".byte", ".space", ".org", ".align", ".ram", ".timer":
		st.Kind = StmtDir
		for {
			e, err := p.parseExpr()
			if err != nil {
				return st, err
			}
			st.Exprs = append(st.Exprs, e)
			if !p.acceptPunct(",") {
				break
			}
		}
	case ".ascii":
		return st, errf(pos, ".ascii is not supported; use .byte with character literals")
	default:
		return st, errf(pos, "unknown directive %q", name)
	}
	if !p.atEnd() {
		return st, errf(pos, "trailing tokens after %s", name)
	}
	return st, nil
}

// instrFormat describes the operand shape of a mnemonic.
type instrFormat uint8

const (
	fmtNone   instrFormat = iota + 1 // nop, halt
	fmtR3                            // add rd, rs, rt
	fmtRI                            // addi rd, rs, imm
	fmtLI                            // li rd, imm
	fmtMov                           // mov rd, rs
	fmtLoad                          // lw rd, off(rs)
	fmtStore                         // sw rt, off(rs)
	fmtStoreI                        // swi imm2, off(rs)
	fmtBranch                        // beq rs, rt, target
	fmtJump                          // jmp target
	fmtJr                            // jr rs
	fmtJalr                          // jalr rd, rs
	fmtRd                            // rdspc rd
)

var formats = map[string]instrFormat{
	"nop": fmtNone, "halt": fmtNone, "sret": fmtNone,
	"rdspc": fmtRd, "wrspc": fmtJr,
	"li": fmtLI, "mov": fmtMov,
	"add": fmtR3, "sub": fmtR3, "and": fmtR3, "or": fmtR3, "xor": fmtR3,
	"shl": fmtR3, "shr": fmtR3, "sar": fmtR3, "mul": fmtR3, "slt": fmtR3, "sltu": fmtR3,
	"addi": fmtRI, "andi": fmtRI, "ori": fmtRI, "xori": fmtRI,
	"shli": fmtRI, "shri": fmtRI, "slti": fmtRI,
	"lw": fmtLoad, "lb": fmtLoad,
	"sw": fmtStore, "sb": fmtStore,
	"swi": fmtStoreI, "sbi": fmtStoreI,
	"beq": fmtBranch, "bne": fmtBranch, "blt": fmtBranch, "bge": fmtBranch,
	"bltu": fmtBranch, "bgeu": fmtBranch,
	"jmp": fmtJump, "jal": fmtJump,
	"jr": fmtJr, "jalr": fmtJalr,
	// Protected-access pseudo instructions (expanded by internal/harden).
	PseudoPLoad: fmtLoad, PseudoPStore: fmtStore, PseudoPCheck: fmtNone,
}

// Pure-alias pseudo mnemonics rewritten during parsing.
var aliases = map[string]struct {
	name string
	swap bool // swap first two operands (for bgt/ble style aliases)
}{
	"call": {name: "jal"},
	"bgt":  {name: "blt", swap: true},
	"ble":  {name: "bge", swap: true},
	"bgtu": {name: "bltu", swap: true},
	"bleu": {name: "bgeu", swap: true},
}

func parseInstr(pos Pos, p *exprParser, st Stmt, name string) (Stmt, error) {
	st.Kind = StmtInstr

	if alias, ok := aliases[name]; ok {
		st2, err := parseByFormat(pos, p, st, alias.name, formats[alias.name])
		if err != nil {
			return st2, err
		}
		if alias.swap {
			st2.Ops[0], st2.Ops[1] = st2.Ops[1], st2.Ops[0]
		}
		return st2, nil
	}

	// Multi-token conveniences.
	switch name {
	case "ret": // jr r15
		st.Name = "jr"
		st.Ops = []Operand{{Kind: OperandReg, Reg: isa.RegLR}}
		if !p.atEnd() {
			return st, errf(pos, "ret takes no operands")
		}
		return st, nil
	case "inc", "dec": // addi rd, rd, ±1
		r, err := parseReg(pos, p)
		if err != nil {
			return st, err
		}
		delta := int64(1)
		if name == "dec" {
			delta = -1
		}
		st.Name = "addi"
		st.Ops = []Operand{
			{Kind: OperandReg, Reg: r},
			{Kind: OperandReg, Reg: r},
			{Kind: OperandExpr, Expr: NumExpr{Value: delta}},
		}
		if !p.atEnd() {
			return st, errf(pos, "%s takes one register operand", name)
		}
		return st, nil
	case "not": // xori rd, rs, -1
		rd, err := parseReg(pos, p)
		if err != nil {
			return st, err
		}
		if !p.acceptPunct(",") {
			return st, errf(pos, "not: expected comma")
		}
		rs, err := parseReg(pos, p)
		if err != nil {
			return st, err
		}
		st.Name = "xori"
		st.Ops = []Operand{
			{Kind: OperandReg, Reg: rd},
			{Kind: OperandReg, Reg: rs},
			{Kind: OperandExpr, Expr: NumExpr{Value: -1}},
		}
		if !p.atEnd() {
			return st, errf(pos, "not takes two register operands")
		}
		return st, nil
	}

	f, ok := formats[name]
	if !ok {
		return st, errf(pos, "unknown mnemonic %q", name)
	}
	return parseByFormat(pos, p, st, name, f)
}

func parseByFormat(pos Pos, p *exprParser, st Stmt, name string, f instrFormat) (Stmt, error) {
	st.Name = name
	var err error
	switch f {
	case fmtNone:
		// no operands
	case fmtR3:
		st.Ops, err = parseOperands(pos, p, OperandReg, OperandReg, OperandReg)
	case fmtRI:
		st.Ops, err = parseOperands(pos, p, OperandReg, OperandReg, OperandExpr)
	case fmtLI:
		st.Ops, err = parseOperands(pos, p, OperandReg, OperandExpr)
	case fmtMov:
		st.Ops, err = parseOperands(pos, p, OperandReg, OperandReg)
	case fmtLoad, fmtStore:
		st.Ops, err = parseOperands(pos, p, OperandReg, OperandMem)
	case fmtStoreI:
		st.Ops, err = parseOperands(pos, p, OperandExpr, OperandMem)
	case fmtBranch:
		st.Ops, err = parseOperands(pos, p, OperandReg, OperandReg, OperandExpr)
	case fmtJump:
		st.Ops, err = parseOperands(pos, p, OperandExpr)
	case fmtJr, fmtRd:
		st.Ops, err = parseOperands(pos, p, OperandReg)
	case fmtJalr:
		st.Ops, err = parseOperands(pos, p, OperandReg, OperandReg)
	default:
		err = errf(pos, "internal: unknown format for %q", name)
	}
	if err != nil {
		return st, err
	}
	if !p.atEnd() {
		return st, errf(pos, "trailing tokens after %s operands", name)
	}
	return st, nil
}

func parseOperands(pos Pos, p *exprParser, kinds ...OperandKind) ([]Operand, error) {
	ops := make([]Operand, 0, len(kinds))
	for i, k := range kinds {
		if i > 0 && !p.acceptPunct(",") {
			return nil, errf(pos, "expected comma before operand %d", i+1)
		}
		var (
			op  Operand
			err error
		)
		switch k {
		case OperandReg:
			op.Kind = OperandReg
			op.Reg, err = parseReg(pos, p)
		case OperandExpr:
			op.Kind = OperandExpr
			op.Expr, err = p.parseExpr()
		case OperandMem:
			op, err = parseMem(pos, p)
		}
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// regAliases maps register alias names to numbers.
var regAliases = map[string]uint8{
	"zero": isa.RegZero,
	"fp":   isa.RegFP,
	"sp":   isa.RegSP,
	"lr":   isa.RegLR,
}

func regByName(name string) (uint8, bool) {
	if r, ok := regAliases[strings.ToLower(name)]; ok {
		return r, true
	}
	low := strings.ToLower(name)
	if len(low) >= 2 && low[0] == 'r' {
		n, err := strconv.Atoi(low[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return uint8(n), true
		}
	}
	return 0, false
}

func parseReg(pos Pos, p *exprParser) (uint8, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return 0, errf(pos, "expected register, found %q", t.text)
	}
	r, ok := regByName(t.text)
	if !ok {
		return 0, errf(pos, "unknown register %q", t.text)
	}
	p.next()
	return r, nil
}

// parseMem parses "off(base)" or "(base)" (offset 0).
func parseMem(pos Pos, p *exprParser) (Operand, error) {
	op := Operand{Kind: OperandMem, Expr: NumExpr{Value: 0}}

	// Bare "(base)" form: a parenthesized register, not an expression.
	if p.peek().kind == tokPunct && p.peek().text == "(" {
		mark := p.save()
		p.next()
		if t := p.peek(); t.kind == tokIdent {
			if r, ok := regByName(t.text); ok {
				p.next()
				if p.acceptPunct(")") {
					op.Reg = r
					return op, nil
				}
			}
		}
		p.restore(mark)
	}

	e, err := p.parseExpr()
	if err != nil {
		return op, err
	}
	op.Expr = e
	if !p.acceptPunct("(") {
		return op, errf(pos, "expected '(base)' in memory operand")
	}
	r, err := parseReg(pos, p)
	if err != nil {
		return op, err
	}
	if !p.acceptPunct(")") {
		return op, errf(pos, "expected ')' in memory operand")
	}
	op.Reg = r
	return op, nil
}
