package asm

import (
	"errors"
	"fmt"

	"faultspace/internal/isa"
)

// DefaultRAMSize is used when a program has no .ram directive.
const DefaultRAMSize = 256

// Program is the output of the assembler: a fav32 ROM image plus the
// initial RAM contents and the resolved symbol table.
type Program struct {
	Name    string
	Code    []isa.Instruction
	Image   []byte           // initial RAM contents (data section)
	RAMSize int              // bytes of RAM the program wants (.ram)
	Symbols map[string]int64 // labels and .equ constants
	Lines   []int            // source line per instruction, for diagnostics

	// TimerPeriod/TimerVector configure the deterministic timer interrupt
	// (.timer PERIOD, handler). Zero period means no timer.
	TimerPeriod uint64
	TimerVector uint32
}

// Assemble parses and assembles source in one step. Programs containing
// pld/pst pseudo instructions must instead go through Parse, a harden
// transformation, and AssembleStmts.
func Assemble(name, src string) (*Program, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return AssembleStmts(name, stmts)
}

// AssembleStmts runs the two-pass assembler over parsed (and, if needed,
// hardening-expanded) statements.
func AssembleStmts(name string, stmts []Stmt) (*Program, error) {
	a := &assembler{
		prog: &Program{
			Name:    name,
			RAMSize: DefaultRAMSize,
			Symbols: make(map[string]int64),
		},
	}
	if err := a.passOne(stmts); err != nil {
		return nil, err
	}
	if err := a.passTwo(stmts); err != nil {
		return nil, err
	}
	if len(a.prog.Code) == 0 {
		return nil, errors.New("asm: program has no instructions")
	}
	return a.prog, nil
}

type section uint8

const (
	secText section = iota + 1
	secData
)

type assembler struct {
	prog *Program
	sec  section
	ic   int // instruction counter (pass 1)
	dc   int // data location counter
	dMax int // high-water mark of the data image
}

// passOne assigns values to all labels and .equ symbols and determines the
// data image size.
func (a *assembler) passOne(stmts []Stmt) error {
	a.sec = secText
	a.ic, a.dc, a.dMax = 0, 0, 0
	syms := a.prog.Symbols

	define := func(pos Pos, name string, v int64) error {
		if _, dup := syms[name]; dup {
			return errf(pos, "symbol %q redefined", name)
		}
		syms[name] = v
		return nil
	}

	var errs []error
	for _, st := range stmts {
		if st.Label != "" {
			v := int64(a.ic)
			if a.sec == secData {
				v = int64(a.dc)
			}
			if err := define(st.Pos, st.Label, v); err != nil {
				errs = append(errs, err)
				continue
			}
		}
		switch st.Kind {
		case StmtEmpty:
			// label only
		case StmtEqu:
			v, err := st.Exprs[0].Eval(MapSymbols(syms))
			if err != nil {
				errs = append(errs, errf(st.Pos, ".equ %s: %v", st.EquName, err))
				continue
			}
			if err := define(st.Pos, st.EquName, v); err != nil {
				errs = append(errs, err)
			}
		case StmtInstr:
			if st.IsPseudo() {
				errs = append(errs, errf(st.Pos,
					"%s pseudo instruction not expanded; apply a hardening variant first", st.Name))
				continue
			}
			a.ic++
		case StmtDir:
			if err := a.sizeDirective(st); err != nil {
				errs = append(errs, err)
			}
		}
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	return nil
}

// sizeDirective advances the location counters for a directive during pass
// one. Size-affecting arguments (.space, .org, .align, .ram) must be
// evaluable from symbols defined so far.
func (a *assembler) sizeDirective(st Stmt) error {
	syms := MapSymbols(a.prog.Symbols)
	switch st.Name {
	case ".text":
		a.sec = secText
	case ".data":
		a.sec = secData
	case ".word":
		if err := a.wantData(st); err != nil {
			return err
		}
		if a.dc%4 != 0 {
			return errf(st.Pos, ".word at unaligned address %d", a.dc)
		}
		a.advance(len(st.Exprs) * 4)
	case ".byte":
		if err := a.wantData(st); err != nil {
			return err
		}
		a.advance(len(st.Exprs))
	case ".space":
		if err := a.wantData(st); err != nil {
			return err
		}
		n, err := a.evalSize(st, syms)
		if err != nil {
			return err
		}
		a.advance(int(n))
	case ".align":
		if err := a.wantData(st); err != nil {
			return err
		}
		n, err := a.evalSize(st, syms)
		if err != nil {
			return err
		}
		if n <= 0 || (n&(n-1)) != 0 {
			return errf(st.Pos, ".align %d: not a positive power of two", n)
		}
		for a.dc%int(n) != 0 {
			a.advance(1)
		}
	case ".org":
		if err := a.wantData(st); err != nil {
			return err
		}
		n, err := a.evalSize(st, syms)
		if err != nil {
			return err
		}
		a.dc = int(n)
		if a.dc > a.dMax {
			a.dMax = a.dc
		}
	case ".ram":
		n, err := a.evalSize(st, syms)
		if err != nil {
			return err
		}
		if n <= 0 {
			return errf(st.Pos, ".ram %d: must be positive", n)
		}
		a.prog.RAMSize = int(n)
	case ".timer":
		// Arguments are evaluated in pass two, when the handler label is
		// known; here only the arity is checked.
		if len(st.Exprs) != 2 {
			return errf(st.Pos, ".timer takes PERIOD, HANDLER")
		}
	default:
		return errf(st.Pos, "unknown directive %q", st.Name)
	}
	return nil
}

func (a *assembler) wantData(st Stmt) error {
	if a.sec != secData {
		return errf(st.Pos, "%s outside .data section", st.Name)
	}
	return nil
}

func (a *assembler) evalSize(st Stmt, syms SymbolTable) (int64, error) {
	if len(st.Exprs) != 1 {
		return 0, errf(st.Pos, "%s takes exactly one argument", st.Name)
	}
	n, err := st.Exprs[0].Eval(syms)
	if err != nil {
		return 0, errf(st.Pos, "%s: %v", st.Name, err)
	}
	if n < 0 || n > 1<<20 {
		return 0, errf(st.Pos, "%s: value %d out of range", st.Name, n)
	}
	return n, nil
}

func (a *assembler) advance(n int) {
	a.dc += n
	if a.dc > a.dMax {
		a.dMax = a.dc
	}
}

// passTwo emits instructions and the data image with the full symbol table.
func (a *assembler) passTwo(stmts []Stmt) error {
	p := a.prog
	syms := MapSymbols(p.Symbols)
	if a.dMax > p.RAMSize {
		return fmt.Errorf("asm: data section (%d bytes) exceeds RAM size %d", a.dMax, p.RAMSize)
	}
	p.Image = make([]byte, a.dMax)
	p.Code = make([]isa.Instruction, 0, a.ic)
	p.Lines = make([]int, 0, a.ic)

	a.sec = secText
	a.dc = 0

	var errs []error
	for _, st := range stmts {
		switch st.Kind {
		case StmtInstr:
			ins, err := encodeStmt(st, syms, a.ic)
			if err != nil {
				errs = append(errs, err)
				continue
			}
			p.Code = append(p.Code, ins)
			p.Lines = append(p.Lines, st.Pos.Line)
		case StmtDir:
			if err := a.emitDirective(st, syms); err != nil {
				errs = append(errs, err)
			}
		}
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	return nil
}

func (a *assembler) emitDirective(st Stmt, syms SymbolTable) error {
	switch st.Name {
	case ".text":
		a.sec = secText
	case ".data":
		a.sec = secData
	case ".word":
		for _, e := range st.Exprs {
			v, err := e.Eval(syms)
			if err != nil {
				return errf(st.Pos, ".word: %v", err)
			}
			if v < -1<<31 || v > 1<<32-1 {
				return errf(st.Pos, ".word: value %d does not fit in 32 bits", v)
			}
			u := uint32(v)
			a.prog.Image[a.dc] = byte(u)
			a.prog.Image[a.dc+1] = byte(u >> 8)
			a.prog.Image[a.dc+2] = byte(u >> 16)
			a.prog.Image[a.dc+3] = byte(u >> 24)
			a.dc += 4
		}
	case ".byte":
		for _, e := range st.Exprs {
			v, err := e.Eval(syms)
			if err != nil {
				return errf(st.Pos, ".byte: %v", err)
			}
			if v < -128 || v > 255 {
				return errf(st.Pos, ".byte: value %d does not fit in 8 bits", v)
			}
			a.prog.Image[a.dc] = byte(v)
			a.dc++
		}
	case ".space":
		n, _ := a.evalSize(st, syms)
		a.dc += int(n)
	case ".align":
		n, _ := a.evalSize(st, syms)
		for a.dc%int(n) != 0 {
			a.dc++
		}
	case ".org":
		n, _ := a.evalSize(st, syms)
		a.dc = int(n)
	case ".ram":
		// handled in pass one
	case ".timer":
		period, err := st.Exprs[0].Eval(syms)
		if err != nil {
			return errf(st.Pos, ".timer: %v", err)
		}
		vector, err := st.Exprs[1].Eval(syms)
		if err != nil {
			return errf(st.Pos, ".timer: %v", err)
		}
		if period <= 0 {
			return errf(st.Pos, ".timer: period %d must be positive", period)
		}
		if vector < 0 || vector >= int64(a.ic) {
			return errf(st.Pos, ".timer: handler %d outside program [0, %d)", vector, a.ic)
		}
		a.prog.TimerPeriod = uint64(period)
		a.prog.TimerVector = uint32(vector)
	}
	return nil
}

// encodeStmt lowers one instruction statement to an isa.Instruction.
// nInstr is the total instruction count, used to range-check branch targets.
func encodeStmt(st Stmt, syms SymbolTable, nInstr int) (isa.Instruction, error) {
	op, ok := isa.OpByName(st.Name)
	if !ok {
		return isa.Instruction{}, errf(st.Pos, "unknown mnemonic %q", st.Name)
	}
	ins := isa.Instruction{Op: op}

	evalImm := func(e Expr) (int32, error) {
		v, err := e.Eval(syms)
		if err != nil {
			return 0, errf(st.Pos, "%s: %v", st.Name, err)
		}
		if v < -1<<31 || v > 1<<32-1 {
			return 0, errf(st.Pos, "%s: immediate %d does not fit in 32 bits", st.Name, v)
		}
		return int32(uint32(v)), nil
	}
	evalTarget := func(e Expr) (int32, error) {
		v, err := e.Eval(syms)
		if err != nil {
			return 0, errf(st.Pos, "%s: %v", st.Name, err)
		}
		if v < 0 || v >= int64(nInstr) {
			return 0, errf(st.Pos, "%s: target %d outside program [0, %d)", st.Name, v, nInstr)
		}
		return int32(v), nil
	}

	var err error
	switch formats[st.Name] {
	case fmtNone:
	case fmtLI:
		ins.Rd = st.Ops[0].Reg
		ins.Imm, err = evalImm(st.Ops[1].Expr)
	case fmtMov:
		ins.Rd, ins.Rs = st.Ops[0].Reg, st.Ops[1].Reg
	case fmtR3:
		ins.Rd, ins.Rs, ins.Rt = st.Ops[0].Reg, st.Ops[1].Reg, st.Ops[2].Reg
	case fmtRI:
		ins.Rd, ins.Rs = st.Ops[0].Reg, st.Ops[1].Reg
		ins.Imm, err = evalImm(st.Ops[2].Expr)
	case fmtLoad:
		ins.Rd = st.Ops[0].Reg
		ins.Rs = st.Ops[1].Reg
		ins.Imm, err = evalImm(st.Ops[1].Expr)
	case fmtStore:
		ins.Rt = st.Ops[0].Reg
		ins.Rs = st.Ops[1].Reg
		ins.Imm, err = evalImm(st.Ops[1].Expr)
	case fmtStoreI:
		var v int32
		v, err = evalImm(st.Ops[0].Expr)
		if err == nil {
			if v < -(1<<11) || v > 1<<11-1 {
				err = errf(st.Pos, "%s: immediate %d does not fit in 12 bits", st.Name, v)
			} else {
				ins.Imm2 = v
			}
		}
		if err == nil {
			ins.Rs = st.Ops[1].Reg
			ins.Imm, err = evalImm(st.Ops[1].Expr)
		}
	case fmtBranch:
		ins.Rs, ins.Rt = st.Ops[0].Reg, st.Ops[1].Reg
		ins.Imm, err = evalTarget(st.Ops[2].Expr)
	case fmtJump:
		ins.Imm, err = evalTarget(st.Ops[0].Expr)
	case fmtJr:
		ins.Rs = st.Ops[0].Reg
	case fmtRd:
		ins.Rd = st.Ops[0].Reg
	case fmtJalr:
		ins.Rd, ins.Rs = st.Ops[0].Reg, st.Ops[1].Reg
	default:
		err = errf(st.Pos, "internal: no encoder for %q", st.Name)
	}
	if err != nil {
		return isa.Instruction{}, err
	}
	if err := ins.Validate(); err != nil {
		return isa.Instruction{}, errf(st.Pos, "%v", err)
	}
	return ins, nil
}
