package faultspace

import (
	"strings"
	"testing"

	"faultspace/internal/progs"
)

func TestAssembleSourceErrors(t *testing.T) {
	if _, err := AssembleSource("bad", "frobnicate r1\n"); err == nil {
		t.Error("bad source must fail")
	}
	if _, err := AssembleSource("pseudo", "pld r1, 0(r2)\nhalt\n"); err == nil {
		t.Error("unexpanded pseudo instructions must fail")
	}
}

func TestMachineConfigCarriesTimer(t *testing.T) {
	p, err := progs.Clock1(2, 64).Baseline()
	if err != nil {
		t.Fatal(err)
	}
	cfg := MachineConfig(p)
	if cfg.TimerPeriod != 64 || cfg.RAMSize != p.RAMSize {
		t.Errorf("config %+v does not match program", cfg)
	}
	if cfg.TimerVector == 0 {
		t.Error("timer vector not propagated")
	}
}

func TestSampleOptionValidation(t *testing.T) {
	p, err := progs.Hi().Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sample(p, SampleOptions{N: 10, Biased: true, Effective: true}); err == nil {
		t.Error("Biased+Effective must be rejected")
	}
	if _, err := Sample(p, SampleOptions{N: 0}); err == nil {
		t.Error("N = 0 must be rejected")
	}
}

func TestScanGoldenFailurePropagates(t *testing.T) {
	p, err := AssembleSource("spin", "jmp 0\n")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Scan(p, ScanOptions{MaxGoldenCycles: 100})
	if err == nil || !strings.Contains(err.Error(), "did not halt") {
		t.Errorf("non-halting golden run must fail usefully, got %v", err)
	}
}

func TestCompareErrorOnFailureFreeBaseline(t *testing.T) {
	a := Analysis{FailWeight: 0}
	b := Analysis{FailWeight: 5}
	if _, err := Compare(a, b); err == nil {
		t.Error("comparison against a failure-free baseline must error")
	}
}

func TestMustAnalyzePanicsOnBadResult(t *testing.T) {
	p, err := progs.Hi().Baseline()
	if err != nil {
		t.Fatal(err)
	}
	scan, err := Scan(p, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the result so Analyze must fail.
	scan.Space.Cycles = 0
	scan.Space.Bits = 0
	defer func() {
		if recover() == nil {
			t.Error("MustAnalyze must panic on analysis failure")
		}
	}()
	MustAnalyze(scan)
}

func TestComparisonVerdictHelpers(t *testing.T) {
	a := Analysis{FailWeight: 100, SpaceSize: 1000, CoverageWeighted: 0.9}
	b := Analysis{FailWeight: 50, SpaceSize: 2000, CoverageWeighted: 0.975}
	cmp, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.FailuresSayImproved() || !cmp.CoverageSaysImproved() || cmp.Misleading() {
		t.Errorf("consistent improvement misclassified: %+v", cmp)
	}
	if cmp.MWTFGain != 2 {
		t.Errorf("MWTF gain = %v, want 2", cmp.MWTFGain)
	}

	worse := Analysis{FailWeight: 600, SpaceSize: 4000, CoverageWeighted: 0.95}
	cmp, err = Compare(a, worse)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.FailuresSayImproved() {
		t.Error("6x more failures is not an improvement")
	}
	if !cmp.CoverageSaysImproved() || !cmp.Misleading() {
		t.Errorf("the dilution situation must be flagged misleading: %+v", cmp)
	}
}

func TestScanAllRegisteredBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("scans are slow")
	}
	// Every registered benchmark must survive assembly, golden run, and a
	// full scan in both variants — the end-to-end contract of the
	// registry.
	for _, name := range progs.Names() {
		spec, err := progs.Resolve(name, progs.Sizes{
			BinSemRounds: 2, SyncRounds: 2, SyncBufBytes: 32,
			ClockTicks: 2, MboxMessages: 3, PreemptWork: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, build := range []func() (*Program, error){spec.Baseline, spec.Hardened} {
			p, err := build()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			scan, err := Scan(p, ScanOptions{})
			if err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			a := MustAnalyze(scan)
			if a.SpaceSize == 0 || a.Classes == 0 {
				t.Errorf("%s: degenerate scan %+v", p.Name, a)
			}
		}
	}
}

// TestScanOptionsSpaceValidation pins the admission-time space check: an
// unknown SpaceKind — e.g. a campaign built by a newer client submitted
// to an older binary — must fail loudly instead of silently scanning
// SpaceMemory.
func TestScanOptionsSpaceValidation(t *testing.T) {
	cases := []struct {
		name string
		in   SpaceKind
		want SpaceKind
		ok   bool
	}{
		{"zero-defaults-to-memory", 0, SpaceMemory, true},
		{"memory", SpaceMemory, SpaceMemory, true},
		{"registers", SpaceRegisters, SpaceRegisters, true},
		{"skip", SpaceSkip, SpaceSkip, true},
		{"pc", SpacePC, SpacePC, true},
		{"burst2", SpaceBurst2, SpaceBurst2, true},
		{"burst4", SpaceBurst4, SpaceBurst4, true},
		{"one-past-last", SpaceBurst4 + 1, 0, false},
		{"garbage", SpaceKind(99), 0, false},
		{"max", SpaceKind(255), 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ScanOptions{Space: tc.in}.space()
			if tc.ok {
				if err != nil {
					t.Fatalf("space() = %v, want %v", err, tc.want)
				}
				if got != tc.want {
					t.Fatalf("space() = %v, want %v", got, tc.want)
				}
				return
			}
			if err == nil {
				t.Fatalf("space() accepted unknown kind %d as %v", tc.in, got)
			}
			if !strings.Contains(err.Error(), "unknown fault-space kind") {
				t.Fatalf("space() error %q does not name the failure", err)
			}
		})
	}

	// The validation must reach every public entry point.
	p, err := progs.Hi().Baseline()
	if err != nil {
		t.Fatal(err)
	}
	bad := ScanOptions{Space: SpaceKind(42)}
	if _, err := Scan(p, bad); err == nil {
		t.Error("Scan accepted an unknown space kind")
	}
	if _, err := CampaignIdentity(p, bad); err == nil {
		t.Error("CampaignIdentity accepted an unknown space kind")
	}
	if _, err := Sample(p, SampleOptions{ScanOptions: bad, N: 1}); err == nil {
		t.Error("Sample accepted an unknown space kind")
	}
}
