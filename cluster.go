package faultspace

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"faultspace/internal/campaign"
	"faultspace/internal/checkpoint"
	"faultspace/internal/cluster"
)

// ClusterProgress is one event of a distributed campaign's progress
// stream: the regular scan progress plus per-worker statistics,
// outstanding leases and reassignment counts.
type ClusterProgress = cluster.Progress

// WorkerStat is one worker's slice of a ClusterProgress event.
type WorkerStat = cluster.WorkerStat

// ErrCoordinatorShutdown is returned by JoinScan when the coordinator
// announced an interrupt-driven shutdown before the campaign completed.
var ErrCoordinatorShutdown = cluster.ErrShutdown

// ErrCoordinatorUnreachable is returned by JoinScan when the coordinator
// stayed unreachable through the worker's bounded retry budget — e.g.
// after the coordinator process was killed outright.
var ErrCoordinatorUnreachable = cluster.ErrUnreachable

// ServeOptions parameterizes ServeScan. The embedded ScanOptions keep
// their meaning; Workers and Rerun are ignored (the coordinator executes
// no experiments itself).
type ServeOptions struct {
	ScanOptions
	// UnitSize is the number of equivalence classes per leased work unit
	// (default cluster.DefaultUnitSize).
	UnitSize int
	// LeaseTTL is how long a leased unit survives without heartbeat or
	// submission before reassignment (default cluster.DefaultLeaseTTL).
	LeaseTTL time.Duration
	// OnClusterProgress receives cluster progress events (per-worker
	// experiments/s, outstanding leases, reassignments). It supersedes
	// ScanOptions.OnProgress, which is ignored in cluster mode.
	OnClusterProgress func(ClusterProgress)
	// OnListen, when non-nil, receives the bound listen address once the
	// coordinator is serving — useful with ":0" addresses.
	OnListen func(addr string)
	// DrainTimeout bounds how long ServeScan waits after completion for
	// workers to fetch their done notice and deregister (default 3s).
	DrainTimeout time.Duration
	// Pprof mounts net/http/pprof profiling endpoints under /debug/pprof/
	// on the coordinator's HTTP handler. Off by default: profiling a
	// public coordinator address is opt-in.
	Pprof bool
}

// ServeScan runs a distributed full fault-space scan: it prepares the
// campaign locally, then serves leased work units to workers joining via
// JoinScan (or favscan -join) on addr until every equivalence class has
// an outcome. The final result — and therefore the report — is
// byte-identical to a local FullScan of the same program (invariant 8,
// placement equivalence).
//
// Checkpoint and Resume behave exactly as in Scan: merged outcomes
// stream into the crash-safe checkpoint, and a restarted coordinator
// resumes with no experiment redone. Interrupt stops granting leases and
// returns the partial result with ErrInterrupted.
func ServeScan(p *Program, addr string, opts ServeOptions) (*ScanResult, error) {
	t := Target(p)
	kind, err := opts.space()
	if err != nil {
		return nil, fmt.Errorf("faultspace: %w", err)
	}
	golden, fs, err := t.PrepareSpace(kind, opts.maxGolden())
	if err != nil {
		return nil, fmt.Errorf("faultspace: %w", err)
	}
	cfg, err := opts.campaignConfig()
	if err != nil {
		return nil, fmt.Errorf("faultspace: %w", err)
	}

	var w *checkpoint.Writer
	var prior map[int]campaign.Outcome
	if opts.Checkpoint != "" {
		id, err := t.CampaignIdentity(fs.Kind, cfg)
		if err != nil {
			return nil, fmt.Errorf("faultspace: %w", err)
		}
		hdr := checkpoint.Header{Version: checkpoint.Version, Identity: id, Classes: uint64(len(fs.Classes))}
		if opts.Resume {
			var raw map[int]uint8
			w, raw, err = checkpoint.Open(opts.Checkpoint, hdr)
			if err != nil {
				return nil, fmt.Errorf("faultspace: %w", err)
			}
			prior = make(map[int]campaign.Outcome, len(raw))
			for ci, o := range raw {
				if !campaign.Outcome(o).Known() {
					w.Close()
					return nil, fmt.Errorf("faultspace: checkpoint class %d has unknown outcome %d", ci, o)
				}
				prior[ci] = campaign.Outcome(o)
			}
		} else {
			w, err = checkpoint.Create(opts.Checkpoint, hdr)
			if err != nil {
				return nil, fmt.Errorf("faultspace: %w (resume to continue an existing checkpoint)", err)
			}
		}
	}

	copts := cluster.Options{
		UnitSize:         opts.UnitSize,
		LeaseTTL:         opts.LeaseTTL,
		MaxGoldenCycles:  opts.maxGolden(),
		OnProgress:       opts.OnClusterProgress,
		ProgressInterval: opts.ProgressInterval,
		Interrupt:        opts.Interrupt,
		Telemetry:        opts.Telemetry,
		Pprof:            opts.Pprof,
	}
	if w != nil {
		w.Instrument(opts.Telemetry)
		copts.OnResult = func(ci int, o campaign.Outcome) { w.Append(ci, uint8(o)) }
	}
	coord, err := cluster.NewCoordinator(t, golden, fs, cfg, copts, prior)
	if err != nil {
		if w != nil {
			w.Close()
		}
		return nil, fmt.Errorf("faultspace: %w", err)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if w != nil {
			w.Close()
		}
		return nil, fmt.Errorf("faultspace: %w", err)
	}
	if opts.OnListen != nil {
		opts.OnListen(ln.Addr().String())
	}
	srv := &http.Server{Handler: coord.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	res, scanErr := coord.Wait()
	// Let polling workers fetch their done/shutdown notice before tearing
	// the server down; workers deregister via /v1/leave as they exit. On
	// the interrupt path this also lets in-flight units finish submitting,
	// so their experiments are recorded — the cluster analogue of the
	// local graceful-interrupt semantics.
	drain := opts.DrainTimeout
	if drain == 0 {
		drain = 3 * time.Second
	}
	deadline := time.Now().Add(drain)
	for !coord.Drained() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	// Close the listener and connections, then seal the coordinator so no
	// late handler can touch a closed checkpoint writer.
	srv.Close()
	<-serveErr
	coord.Seal()
	if w != nil {
		// Close flushes buffered records — including on the interrupt
		// path, which makes a SIGINT-killed coordinator resumable.
		if cerr := w.Close(); cerr != nil && scanErr == nil {
			return nil, fmt.Errorf("faultspace: %w", cerr)
		}
	}
	if scanErr != nil {
		if errors.Is(scanErr, campaign.ErrInterrupted) {
			return res, fmt.Errorf("faultspace: %w", scanErr)
		}
		return nil, fmt.Errorf("faultspace: %w", scanErr)
	}
	return res, nil
}

// JoinOptions parameterizes JoinScan.
type JoinOptions struct {
	// WorkerID names this worker in coordinator statistics (default
	// "w<pid>").
	WorkerID string
	// Workers is the number of parallel experiment executors (default
	// GOMAXPROCS).
	Workers int
	// Rerun selects the rerun-from-reset strategy for this worker's
	// experiments; strategies may differ freely across the cluster.
	// Superseded by Strategy; ignored when Strategy is set.
	Rerun bool
	// Strategy selects this worker's execution strategy explicitly
	// (default snapshot, or rerun when Rerun is set).
	Strategy Strategy
	// LadderInterval is the rung spacing for StrategyLadder (0 auto-
	// tunes from the golden-trace length).
	LadderInterval uint64
	// Predecode enables the simulator's pre-decoded dispatch stream on
	// this worker's machines. Outcome-invariant and local to this worker.
	Predecode bool
	// Memo enables cross-experiment outcome memoization, with one cache
	// per campaign shared across all units this worker leases.
	// Outcome-invariant and local to this worker.
	Memo bool
	// Interrupt, when closed, makes the worker die abruptly mid-unit
	// without submitting — the crash the coordinator's lease expiry must
	// absorb.
	Interrupt <-chan struct{}
	// Logf, when non-nil, receives worker life-cycle log lines.
	Logf func(format string, args ...any)
	// Telemetry, when non-nil, collects this worker's campaign metrics
	// (experiments, outcome timings, machine-pool reuse). Outcome-
	// invariant, exactly as in ScanOptions.
	Telemetry *Telemetry
}

// JoinScan joins a coordinator started with ServeScan (or favscan
// -serve) as a worker: it rebuilds the campaign from the handshake —
// needing no local program knowledge — verifies the campaign identity,
// then pulls, executes and submits leased work units until the campaign
// completes. Requests are retried with exponential backoff; a worker
// whose campaign identity differs from the coordinator's is rejected.
func JoinScan(addr string, opts JoinOptions) error {
	wopts := cluster.WorkerOptions{
		ID:             opts.WorkerID,
		Workers:        opts.Workers,
		Strategy:       opts.Strategy,
		LadderInterval: opts.LadderInterval,
		Predecode:      opts.Predecode,
		Memo:           opts.Memo,
		Interrupt:      opts.Interrupt,
		Logf:           opts.Logf,
		Telemetry:      opts.Telemetry,
	}
	if wopts.Strategy == 0 && opts.Rerun {
		wopts.Strategy = campaign.StrategyRerun
	}
	if err := cluster.Join(normalizeURL(addr), wopts); err != nil {
		if errors.Is(err, campaign.ErrInterrupted) {
			return fmt.Errorf("faultspace: %w", campaign.ErrInterrupted)
		}
		return fmt.Errorf("faultspace: %w", err)
	}
	return nil
}

// normalizeURL accepts bare host:port coordinator addresses.
func normalizeURL(addr string) string {
	if len(addr) >= 7 && (addr[:7] == "http://" || (len(addr) >= 8 && addr[:8] == "https://")) {
		return addr
	}
	return "http://" + addr
}
