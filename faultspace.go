// Package faultspace is a fault-injection (FI) evaluation toolkit that
// reproduces "Avoiding Pitfalls in Fault-Injection Based Comparison of
// Program Susceptibility to Soft Errors" (Schirmeier, Borchert, Spinczyk;
// DSN 2015).
//
// It provides, end to end:
//
//   - a deterministic fav32 RISC simulator and assembler (the paper's
//     machine model: in-order, one cycle per instruction, fault-immune ROM),
//   - golden-run tracing and def/use fault-space pruning with exact
//     per-class weights (Pitfall 1),
//   - full fault-space scans and sampling campaigns, including the biased
//     class-sampling procedure of Pitfall 2 for demonstration,
//   - the metrics the paper dissects: fault coverage (weighted, unweighted,
//     activated-only) and the proposed comparison metric — extrapolated
//     absolute failure counts with the comparison ratio r (Pitfall 3),
//   - software-based hardware fault-tolerance transformations: SUM+DMR
//     hardening, plus the paper's deliberately bogus DFT/DFT′ dilution
//     transformations for the §IV Gedankenexperiment,
//   - ports of the paper's benchmarks: hi, bin_sem2, sync2 on a small
//     cooperative threading kernel.
//
// The typical pipeline:
//
//	prog, _ := faultspace.AssembleSource("hi", src)
//	scan, _ := faultspace.Scan(prog, faultspace.ScanOptions{})
//	a := faultspace.Analyze(scan)
//	fmt.Println(a.CoverageWeighted, a.FailWeight)
//
// Comparing a hardened variant against its baseline:
//
//	cmp := faultspace.Compare(faultspace.Analyze(base), faultspace.Analyze(hard))
//	if cmp.RatioWeighted < 1 { /* hardening actually helps */ }
package faultspace

import (
	"errors"
	"fmt"
	"io"
	"time"

	"faultspace/internal/asm"
	"faultspace/internal/campaign"
	"faultspace/internal/checkpoint"
	"faultspace/internal/machine"
	"faultspace/internal/pruning"
	"faultspace/internal/telemetry"
	"faultspace/internal/trace"
)

// Program is an assembled fav32 benchmark binary.
type Program = asm.Program

// ScanResult is the outcome of a full fault-space scan.
type ScanResult = campaign.Result

// Golden is the record of a fault-free reference run.
type Golden = trace.Golden

// FaultSpace is a def/use-pruned fault space.
type FaultSpace = pruning.FaultSpace

// AssembleSource assembles fav32 assembly into a Program. Sources using
// the pld/pst protected-access pseudo instructions must instead be built
// through internal/progs or an explicit hardening variant.
func AssembleSource(name, src string) (*Program, error) {
	return asm.Assemble(name, src)
}

// SpaceKind selects which machine state faults are injected into.
type SpaceKind = pruning.SpaceKind

// Fault-space kinds.
const (
	// SpaceMemory is the paper's primary fault model: transient single-bit
	// flips in main memory.
	SpaceMemory = pruning.SpaceMemory
	// SpaceRegisters is the §VI-B generalization: flips in the CPU
	// register file.
	SpaceRegisters = pruning.SpaceRegisters
	// SpaceSkip is the attack-style instruction-skip model: the
	// instruction at each slot is suppressed (one per-slot coordinate,
	// Bits = 1).
	SpaceSkip = pruning.SpaceSkip
	// SpacePC is the attack-style program-counter model: a single-bit
	// flip in the 32-bit PC at each slot boundary.
	SpacePC = pruning.SpacePC
	// SpaceBurst2 and SpaceBurst4 are multi-bit burst models: k adjacent
	// bits of one RAM byte invert at once (k = 2 and 4).
	SpaceBurst2 = pruning.SpaceBurst2
	SpaceBurst4 = pruning.SpaceBurst4
)

// Strategy selects how scan experiments re-reach their injection slot.
type Strategy = campaign.Strategy

// Experiment-execution strategies. All strategies produce byte-identical
// scan results (the strategy-equivalence invariant); they differ only in
// speed and memory.
const (
	// StrategySnapshot advances one pioneer machine through the golden run
	// and forks experiment machines at each injection slot. Default.
	StrategySnapshot = campaign.StrategySnapshot
	// StrategyRerun re-executes every experiment from the reset state —
	// the naive mode, kept for validation and ablation.
	StrategyRerun = campaign.StrategyRerun
	// StrategyLadder captures delta snapshots of the golden run every
	// LadderInterval cycles and serves each experiment from the nearest
	// rung at-or-below its injection slot, executing only the remaining
	// delta.
	StrategyLadder = campaign.StrategyLadder
	// StrategyFork batches classes along rung boundaries in injection
	// order and advances a per-worker cursor machine monotonically
	// through the golden run, forking a cheap dirty-page-delta child at
	// each injection cycle — the golden prefix is simulated once per
	// batch instead of once per experiment. The fastest strategy on full
	// scans; see DESIGN.md §4f.
	StrategyFork = campaign.StrategyFork
)

// Progress is one event of a scan's progress stream; see ScanOptions.
type Progress = campaign.Progress

// Telemetry is a metrics and event-trace registry: named atomic
// counters, gauges and duration histograms plus an optional bounded
// ring-buffer event tracer. Attach one via ScanOptions.Telemetry (or
// ServeOptions/JoinOptions) to observe a campaign; a nil registry
// disables all instrumentation at zero cost. Telemetry never changes
// scan results (DESIGN.md invariant 10).
type Telemetry = telemetry.Registry

// NewTelemetry creates an empty telemetry registry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// TraceID is a 128-bit campaign trace identifier: minted at submission,
// propagated through the cluster wire protocol, stamped on every
// exported timeline. The zero TraceID means "tracing off". Trace IDs
// are identification, not configuration — they are excluded from the
// campaign identity hash (DESIGN.md invariant 15).
type TraceID = telemetry.TraceID

// NewTraceID mints a random trace ID.
func NewTraceID() TraceID { return telemetry.NewTraceID() }

// Span is one completed timed operation in a campaign timeline.
type Span = telemetry.Span

// SpanRecorder is a bounded, concurrency-safe store of completed spans.
// Attach one to a Telemetry registry via Telemetry.EnableSpans to trace
// a scan; a nil recorder disables span tracing at zero cost.
type SpanRecorder = telemetry.SpanRecorder

// WriteChromeTrace writes a span timeline as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, trace TraceID, spans []Span) error {
	return telemetry.WriteChromeTrace(w, trace, spans)
}

// WriteSpansJSONL writes spans as one JSON object per line — the
// streaming-friendly sibling of WriteChromeTrace.
func WriteSpansJSONL(w io.Writer, trace TraceID, spans []Span) error {
	return telemetry.WriteSpansJSONL(w, trace, spans)
}

// WritePrometheus renders a telemetry snapshot in the Prometheus text
// exposition format (version 0.0.4), with the given constant labels on
// every series (nil for none). The coordinator, service and favscan
// -metrics listener all serve this under /metrics.
func WritePrometheus(w io.Writer, snap telemetry.Snapshot, labels map[string]string) error {
	return telemetry.WritePrometheus(w, snap, labels)
}

// RunManifest is the machine-readable record of one campaign run:
// campaign identity and configuration, wall/CPU timing, the final
// counter snapshot and retained trace events. favscan -telemetry
// writes one per run.
type RunManifest = telemetry.Manifest

// ErrInterrupted is returned by Scan when the campaign was stopped via
// ScanOptions.Interrupt. All completed experiments have been flushed to
// the checkpoint (if one is configured); rerun with Resume to continue.
var ErrInterrupted = campaign.ErrInterrupted

// ScanOptions parameterizes Scan.
type ScanOptions struct {
	// TimeoutFactor bounds experiment runtime as a multiple of the golden
	// runtime (default 4).
	TimeoutFactor float64
	// Workers is the number of parallel experiment executors (default:
	// GOMAXPROCS).
	Workers int
	// Rerun forces the naive rerun-from-start execution strategy instead
	// of snapshot forking. Superseded by Strategy; kept for backward
	// compatibility and ignored when Strategy is set.
	Rerun bool
	// Strategy selects the execution strategy explicitly (default:
	// StrategySnapshot, or StrategyRerun when Rerun is set). Strategies
	// are outcome-invariant: they never change the scan result.
	Strategy Strategy
	// LadderInterval is the rung spacing in cycles for StrategyLadder;
	// 0 auto-tunes from the golden-trace length. Smaller intervals trade
	// snapshot memory for less delta re-execution per experiment.
	LadderInterval uint64
	// Predecode enables the simulator's pre-decoded dispatch stream: the
	// program is lowered once per worker machine into a dense instruction
	// stream executed by a tight chunked loop. Outcome-invariant — the
	// fast path is proven Step-equivalent — so like Strategy it never
	// changes scan results and is excluded from the campaign identity.
	Predecode bool
	// Memo enables cross-experiment outcome memoization: post-injection
	// machine states are hashed at rung-interval boundaries and the
	// remainder of each run is shared across all experiments of the
	// campaign. Outcome-invariant (DESIGN.md invariant 11).
	Memo bool
	// MaxGoldenCycles bounds the golden run (default 1<<22).
	MaxGoldenCycles uint64
	// Space selects the fault space (default SpaceMemory).
	Space SpaceKind
	// Objective names an attacker-objective predicate ("" = none; see
	// ObjectiveNames for the builtins). Outcomes satisfying the objective
	// carry the attack flag; unlike the execution knobs this CHANGES the
	// recorded outcomes, so the name is part of the campaign identity.
	Objective string

	// Checkpoint, when non-empty, streams every completed experiment into
	// the crash-safe checkpoint file at this path (see internal/checkpoint
	// for the format). The file is keyed by the campaign identity hash, so
	// it can never be resumed against a different program, fault space or
	// outcome-relevant configuration.
	Checkpoint string
	// Resume continues a previous campaign from Checkpoint: completed
	// classes are loaded and skipped, only the remainder runs. If the
	// checkpoint file does not exist yet, the scan starts fresh — so
	// passing Checkpoint+Resume unconditionally gives at-least-once
	// crash-restart semantics. Without Resume, Scan refuses to overwrite
	// an existing checkpoint.
	Resume bool
	// OnProgress, when non-nil, receives progress events: one initial,
	// throttled intermediate ones (see ProgressInterval), one final.
	OnProgress func(Progress)
	// ProgressInterval throttles intermediate progress events
	// (default 1s; negative = one event per experiment).
	ProgressInterval time.Duration
	// Interrupt, when non-nil, stops the scan gracefully once closed:
	// in-flight experiments finish and are checkpointed, then Scan
	// returns the partial result with ErrInterrupted.
	Interrupt <-chan struct{}
	// Telemetry, when non-nil, collects campaign metrics: experiment
	// counts, per-outcome timing histograms, strategy shortcut counters
	// and checkpoint I/O. Outcome-invariant (invariant 10) and excluded
	// from the campaign identity hash, exactly like Strategy and Workers.
	Telemetry *Telemetry
}

// DefaultMaxGoldenCycles bounds golden runs when ScanOptions leaves
// MaxGoldenCycles zero.
const DefaultMaxGoldenCycles = 1 << 22

func (o ScanOptions) campaignConfig() (campaign.Config, error) {
	obj, err := campaign.ObjectiveByName(o.Objective)
	if err != nil {
		return campaign.Config{}, err
	}
	cfg := campaign.Config{
		TimeoutFactor:    o.TimeoutFactor,
		Workers:          o.Workers,
		Strategy:         o.Strategy,
		LadderInterval:   o.LadderInterval,
		Predecode:        o.Predecode,
		Memo:             o.Memo,
		Objective:        obj,
		OnProgress:       o.OnProgress,
		ProgressInterval: o.ProgressInterval,
		Interrupt:        o.Interrupt,
		Telemetry:        o.Telemetry,
		// Span tracing rides the registry: EnableSpans attaches a recorder,
		// a bare registry (or none) leaves cfg.Spans nil and the scan pays
		// nothing. Nil-safe through the whole chain.
		Spans: o.Telemetry.SpanRecorder(),
	}
	if cfg.Strategy == 0 && o.Rerun {
		cfg.Strategy = campaign.StrategyRerun
	}
	return cfg, nil
}

func (o ScanOptions) maxGolden() uint64 {
	if o.MaxGoldenCycles == 0 {
		return DefaultMaxGoldenCycles
	}
	return o.MaxGoldenCycles
}

// space resolves the fault-space kind, rejecting unknown values instead
// of silently defaulting them to SpaceMemory: a typo'd kind must never
// quietly scan the wrong space.
func (o ScanOptions) space() (SpaceKind, error) {
	if o.Space == 0 {
		return SpaceMemory, nil
	}
	if !o.Space.Valid() {
		return 0, fmt.Errorf("unknown fault-space kind %d", o.Space)
	}
	return o.Space, nil
}

// ObjectiveNames lists the builtin attacker-objective names accepted by
// ScanOptions.Objective, sorted.
func ObjectiveNames() []string { return campaign.ObjectiveNames() }

// MachineConfig derives the simulator configuration of a program.
func MachineConfig(p *Program) machine.Config {
	return machine.Config{
		RAMSize:     p.RAMSize,
		TimerPeriod: p.TimerPeriod,
		TimerVector: p.TimerVector,
	}
}

// Target builds the campaign target for a program.
func Target(p *Program) campaign.Target {
	return campaign.Target{
		Name:  p.Name,
		Code:  p.Code,
		Image: p.Image,
		Mach:  MachineConfig(p),
	}
}

// Scan records the golden run of the program, prunes its fault space and
// performs a complete fault-space scan: one experiment per def/use
// equivalence class. With ScanOptions.Checkpoint set, completed
// experiments stream into a crash-safe checkpoint file; with Resume, a
// previous campaign's checkpoint is continued instead of restarted.
func Scan(p *Program, opts ScanOptions) (*ScanResult, error) {
	t := Target(p)
	kind, err := opts.space()
	if err != nil {
		return nil, fmt.Errorf("faultspace: %w", err)
	}
	golden, fs, err := t.PrepareSpace(kind, opts.maxGolden())
	if err != nil {
		return nil, fmt.Errorf("faultspace: %w", err)
	}
	cfg, err := opts.campaignConfig()
	if err != nil {
		return nil, fmt.Errorf("faultspace: %w", err)
	}
	if opts.Checkpoint == "" {
		res, err := campaign.ResumeScan(t, golden, fs, cfg, nil)
		if err != nil {
			if errors.Is(err, campaign.ErrInterrupted) {
				return res, fmt.Errorf("faultspace: %w", err)
			}
			return nil, fmt.Errorf("faultspace: %w", err)
		}
		return res, nil
	}
	return scanCheckpointed(t, golden, fs, cfg, opts)
}

// scanCheckpointed runs a full scan that streams completed experiments
// into (and, when resuming, restores them from) a checkpoint file.
func scanCheckpointed(t campaign.Target, golden *Golden, fs *FaultSpace, cfg campaign.Config, opts ScanOptions) (*ScanResult, error) {
	id, err := t.CampaignIdentity(fs.Kind, cfg)
	if err != nil {
		return nil, fmt.Errorf("faultspace: %w", err)
	}
	hdr := checkpoint.Header{Version: checkpoint.Version, Identity: id, Classes: uint64(len(fs.Classes))}

	var w *checkpoint.Writer
	var prior map[int]campaign.Outcome
	if opts.Resume {
		var raw map[int]uint8
		w, raw, err = checkpoint.Open(opts.Checkpoint, hdr)
		if err != nil {
			return nil, fmt.Errorf("faultspace: %w", err)
		}
		prior = make(map[int]campaign.Outcome, len(raw))
		for ci, o := range raw {
			if !campaign.Outcome(o).Known() {
				w.Close()
				return nil, fmt.Errorf("faultspace: checkpoint class %d has unknown outcome %d", ci, o)
			}
			prior[ci] = campaign.Outcome(o)
		}
	} else {
		w, err = checkpoint.Create(opts.Checkpoint, hdr)
		if err != nil {
			return nil, fmt.Errorf("faultspace: %w (resume to continue an existing checkpoint)", err)
		}
	}
	w.Instrument(cfg.Telemetry)
	cfg.OnResult = func(ci int, o campaign.Outcome) { w.Append(ci, uint8(o)) }

	res, scanErr := campaign.ResumeScan(t, golden, fs, cfg, prior)
	// Close flushes buffered records — including on the interrupt path,
	// which is what makes a SIGINT-killed campaign resumable without loss.
	if cerr := w.Close(); cerr != nil && scanErr == nil {
		return nil, fmt.Errorf("faultspace: %w", cerr)
	}
	if scanErr != nil {
		if errors.Is(scanErr, campaign.ErrInterrupted) {
			return res, fmt.Errorf("faultspace: %w", scanErr)
		}
		return nil, fmt.Errorf("faultspace: %w", scanErr)
	}
	return res, nil
}

// CampaignIdentity returns the campaign identity hash Scan would use for
// this program and options — the key binding checkpoints and archives to
// their campaign (see campaign.Target.CampaignIdentity).
func CampaignIdentity(p *Program, opts ScanOptions) ([32]byte, error) {
	kind, err := opts.space()
	if err != nil {
		return [32]byte{}, fmt.Errorf("faultspace: %w", err)
	}
	cfg, err := opts.campaignConfig()
	if err != nil {
		return [32]byte{}, fmt.Errorf("faultspace: %w", err)
	}
	return Target(p).CampaignIdentity(kind, cfg)
}

// SampleOptions parameterizes Sample.
type SampleOptions struct {
	ScanOptions
	// N is the number of samples to draw (required).
	N int
	// Seed makes the campaign reproducible.
	Seed int64
	// Biased draws equivalence classes uniformly instead of raw fault-space
	// coordinates — the statistically wrong procedure of Pitfall 2.
	Biased bool
	// Effective samples only the reduced population w′ (excluding
	// known-No-Effect coordinates, §V-C Corollary 1).
	Effective bool
}

// Sample runs a sampling campaign over the program's fault space.
func Sample(p *Program, opts SampleOptions) (*campaign.SampleResult, error) {
	t := Target(p)
	kind, err := opts.space()
	if err != nil {
		return nil, fmt.Errorf("faultspace: %w", err)
	}
	golden, fs, err := t.PrepareSpace(kind, opts.maxGolden())
	if err != nil {
		return nil, fmt.Errorf("faultspace: %w", err)
	}
	mode := campaign.SampleRaw
	switch {
	case opts.Biased && opts.Effective:
		return nil, fmt.Errorf("faultspace: Biased and Effective sampling are mutually exclusive")
	case opts.Biased:
		mode = campaign.SampleClasses
	case opts.Effective:
		mode = campaign.SampleEffective
	}
	cfg, err := opts.campaignConfig()
	if err != nil {
		return nil, fmt.Errorf("faultspace: %w", err)
	}
	sr, err := campaign.SampleScan(t, golden, fs, cfg, mode, opts.N, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("faultspace: %w", err)
	}
	return sr, nil
}
