// Package faultspace is a fault-injection (FI) evaluation toolkit that
// reproduces "Avoiding Pitfalls in Fault-Injection Based Comparison of
// Program Susceptibility to Soft Errors" (Schirmeier, Borchert, Spinczyk;
// DSN 2015).
//
// It provides, end to end:
//
//   - a deterministic fav32 RISC simulator and assembler (the paper's
//     machine model: in-order, one cycle per instruction, fault-immune ROM),
//   - golden-run tracing and def/use fault-space pruning with exact
//     per-class weights (Pitfall 1),
//   - full fault-space scans and sampling campaigns, including the biased
//     class-sampling procedure of Pitfall 2 for demonstration,
//   - the metrics the paper dissects: fault coverage (weighted, unweighted,
//     activated-only) and the proposed comparison metric — extrapolated
//     absolute failure counts with the comparison ratio r (Pitfall 3),
//   - software-based hardware fault-tolerance transformations: SUM+DMR
//     hardening, plus the paper's deliberately bogus DFT/DFT′ dilution
//     transformations for the §IV Gedankenexperiment,
//   - ports of the paper's benchmarks: hi, bin_sem2, sync2 on a small
//     cooperative threading kernel.
//
// The typical pipeline:
//
//	prog, _ := faultspace.AssembleSource("hi", src)
//	scan, _ := faultspace.Scan(prog, faultspace.ScanOptions{})
//	a := faultspace.Analyze(scan)
//	fmt.Println(a.CoverageWeighted, a.FailWeight)
//
// Comparing a hardened variant against its baseline:
//
//	cmp := faultspace.Compare(faultspace.Analyze(base), faultspace.Analyze(hard))
//	if cmp.RatioWeighted < 1 { /* hardening actually helps */ }
package faultspace

import (
	"fmt"

	"faultspace/internal/asm"
	"faultspace/internal/campaign"
	"faultspace/internal/machine"
	"faultspace/internal/pruning"
	"faultspace/internal/trace"
)

// Program is an assembled fav32 benchmark binary.
type Program = asm.Program

// ScanResult is the outcome of a full fault-space scan.
type ScanResult = campaign.Result

// Golden is the record of a fault-free reference run.
type Golden = trace.Golden

// FaultSpace is a def/use-pruned fault space.
type FaultSpace = pruning.FaultSpace

// AssembleSource assembles fav32 assembly into a Program. Sources using
// the pld/pst protected-access pseudo instructions must instead be built
// through internal/progs or an explicit hardening variant.
func AssembleSource(name, src string) (*Program, error) {
	return asm.Assemble(name, src)
}

// SpaceKind selects which machine state faults are injected into.
type SpaceKind = pruning.SpaceKind

// Fault-space kinds.
const (
	// SpaceMemory is the paper's primary fault model: transient single-bit
	// flips in main memory.
	SpaceMemory = pruning.SpaceMemory
	// SpaceRegisters is the §VI-B generalization: flips in the CPU
	// register file.
	SpaceRegisters = pruning.SpaceRegisters
)

// ScanOptions parameterizes Scan.
type ScanOptions struct {
	// TimeoutFactor bounds experiment runtime as a multiple of the golden
	// runtime (default 4).
	TimeoutFactor float64
	// Workers is the number of parallel experiment executors (default:
	// GOMAXPROCS).
	Workers int
	// Rerun forces the naive rerun-from-start execution strategy instead
	// of snapshot forking.
	Rerun bool
	// MaxGoldenCycles bounds the golden run (default 1<<22).
	MaxGoldenCycles uint64
	// Space selects the fault space (default SpaceMemory).
	Space SpaceKind
}

// DefaultMaxGoldenCycles bounds golden runs when ScanOptions leaves
// MaxGoldenCycles zero.
const DefaultMaxGoldenCycles = 1 << 22

func (o ScanOptions) campaignConfig() campaign.Config {
	cfg := campaign.Config{
		TimeoutFactor: o.TimeoutFactor,
		Workers:       o.Workers,
	}
	if o.Rerun {
		cfg.Strategy = campaign.StrategyRerun
	}
	return cfg
}

func (o ScanOptions) maxGolden() uint64 {
	if o.MaxGoldenCycles == 0 {
		return DefaultMaxGoldenCycles
	}
	return o.MaxGoldenCycles
}

func (o ScanOptions) space() SpaceKind {
	if o.Space == 0 {
		return SpaceMemory
	}
	return o.Space
}

// MachineConfig derives the simulator configuration of a program.
func MachineConfig(p *Program) machine.Config {
	return machine.Config{
		RAMSize:     p.RAMSize,
		TimerPeriod: p.TimerPeriod,
		TimerVector: p.TimerVector,
	}
}

// Target builds the campaign target for a program.
func Target(p *Program) campaign.Target {
	return campaign.Target{
		Name:  p.Name,
		Code:  p.Code,
		Image: p.Image,
		Mach:  MachineConfig(p),
	}
}

// Scan records the golden run of the program, prunes its fault space and
// performs a complete fault-space scan: one experiment per def/use
// equivalence class.
func Scan(p *Program, opts ScanOptions) (*ScanResult, error) {
	t := Target(p)
	golden, fs, err := t.PrepareSpace(opts.space(), opts.maxGolden())
	if err != nil {
		return nil, fmt.Errorf("faultspace: %w", err)
	}
	res, err := campaign.FullScan(t, golden, fs, opts.campaignConfig())
	if err != nil {
		return nil, fmt.Errorf("faultspace: %w", err)
	}
	return res, nil
}

// SampleOptions parameterizes Sample.
type SampleOptions struct {
	ScanOptions
	// N is the number of samples to draw (required).
	N int
	// Seed makes the campaign reproducible.
	Seed int64
	// Biased draws equivalence classes uniformly instead of raw fault-space
	// coordinates — the statistically wrong procedure of Pitfall 2.
	Biased bool
	// Effective samples only the reduced population w′ (excluding
	// known-No-Effect coordinates, §V-C Corollary 1).
	Effective bool
}

// Sample runs a sampling campaign over the program's fault space.
func Sample(p *Program, opts SampleOptions) (*campaign.SampleResult, error) {
	t := Target(p)
	golden, fs, err := t.PrepareSpace(opts.space(), opts.maxGolden())
	if err != nil {
		return nil, fmt.Errorf("faultspace: %w", err)
	}
	mode := campaign.SampleRaw
	switch {
	case opts.Biased && opts.Effective:
		return nil, fmt.Errorf("faultspace: Biased and Effective sampling are mutually exclusive")
	case opts.Biased:
		mode = campaign.SampleClasses
	case opts.Effective:
		mode = campaign.SampleEffective
	}
	sr, err := campaign.SampleScan(t, golden, fs, opts.campaignConfig(), mode, opts.N, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("faultspace: %w", err)
	}
	return sr, nil
}
