GO ?= go

.PHONY: check vet build test race fuzz-smoke bench

# check is the tier-1 gate: everything a PR must keep green.
check: vet build test race fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A short deterministic-corpus + 10s randomized smoke of the attack
# surfaces: the two binary decoders exposed to untrusted bytes
# (corrupted checkpoint files and mutated cluster wire frames must
# error, never panic), and the ladder delta-restore engine (random
# programs + random restore/flip/run sequences must reproduce full-
# snapshot state bit-for-bit).
fuzz-smoke:
	$(GO) test ./internal/checkpoint -run='^$$' -fuzz=FuzzCheckpointDecode -fuzztime=10s
	$(GO) test ./internal/cluster -run='^$$' -fuzz=FuzzWorkUnitDecode -fuzztime=10s
	$(GO) test ./internal/machine -run='^$$' -fuzz=FuzzDeltaRestore -fuzztime=10s

bench:
	$(GO) test -bench=. -benchmem
