GO ?= go

.PHONY: check vet build test race race-service race-spaces race-fork race-observability fuzz-smoke bench bench-telemetry bench-smoke

# check is the tier-1 gate: everything a PR must keep green.
check: vet build test race race-service race-spaces race-fork race-observability fuzz-smoke bench-telemetry bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The campaign service's multi-campaign concurrency proof under the
# race detector: two tenants' distinct campaigns complete concurrently
# on one shared fleet (TestTwoTenantsConcurrent), plus the rest of the
# service suite (scheduling, backpressure, drain, archive hits) —
# -count=2 shakes out ordering-dependent races the single pass in
# `race` can miss.
race-service:
	$(GO) test -race -count=2 ./internal/service

# The attack-style fault models (instruction skip, PC corruption,
# multi-bit bursts) under the race detector: the objective-carrying
# strategy matrix and skip/burst interrupt+resume in the root package,
# plus the attack-space fleet/archive paths of the campaign service —
# -count=2 shakes out ordering-dependent races, exactly like
# race-service.
race-spaces:
	$(GO) test -race -count=2 -run='TestObjectiveStrategyEquivalence|TestInterruptResumeAttackSpaces|TestOracleRandomCoordinates' . ./internal/experiments
	$(GO) test -race -count=2 -run='TestInvariant12ArchiveHitAttackSpaces' ./internal/service

# The fork strategy under the race detector: the full differential
# strategy-equivalence matrix (which includes fork across every space ×
# accelerator combination), fork interrupt+resume over all six spaces,
# and the fork random-coordinate oracle (invariant 14). The fork scan's
# parent/child machine pairs and batch feeder are the newest concurrent
# code in the executor; this gate is their data-race proof.
race-fork:
	$(GO) test -race -run='TestStrategyEquivalenceAllBenchmarks|TestInterruptResumeFork' .
	$(GO) test -race -run='TestOracleRandomCoordinatesFork' ./internal/experiments

# The observability layer under the race detector: the fleet trace
# timeline (spans merging from concurrent workers into the
# coordinator's recorder), the straggler watchdog and windowed rate
# estimator reading coordinator state while leases churn, the
# /metrics exposition racing live instruments, and the service-side
# trace/metrics/starved-tenant surface — the span recorder and
# watchdog are the newest lock-guarded state shared across worker
# goroutines and HTTP handlers, and -count=2 shakes out
# ordering-dependent races, exactly like race-service.
race-observability:
	$(GO) test -race -count=2 -run='TestFleetTraceTimeline|TestWatchdogFlagsStragglerWorker|TestWindowedWorkerRates|TestCoordinatorMetricsExposition' ./internal/cluster
	$(GO) test -race -count=2 -run='TestServiceTraceAndMetrics|TestStarvedTenantWatchdog' ./internal/service

# A short deterministic-corpus + 10s randomized smoke of the attack
# surfaces: the binary decoders exposed to untrusted bytes
# (corrupted checkpoint files, mutated cluster wire frames and damaged
# service archive entries must error, never panic), the ladder
# delta-restore engine (random
# programs + random restore/flip/run sequences must reproduce full-
# snapshot state bit-for-bit), and the predecode fast path under
# self-modifying stores and code-region bit flips (the pre-decoded
# dispatch stream must stay lockstep-identical to the plain decoder
# through precise invalidation). The attack-space coordinate codecs are
# covered the same way: the burst (k, pos) decoder must reject or decode
# to an exact adjacent mask, and skip-space class lists must survive the
# archive/wire FromClasses round trip.
fuzz-smoke:
	$(GO) test ./internal/checkpoint -run='^$$' -fuzz=FuzzCheckpointDecode -fuzztime=10s
	$(GO) test ./internal/cluster -run='^$$' -fuzz=FuzzWorkUnitDecode -fuzztime=10s
	$(GO) test ./internal/service -run='^$$' -fuzz=FuzzArchiveEntryDecode -fuzztime=10s
	$(GO) test ./internal/machine -run='^$$' -fuzz=FuzzDeltaRestore -fuzztime=10s
	$(GO) test ./internal/machine -run='^$$' -fuzz=FuzzForkClone -fuzztime=10s
	$(GO) test ./internal/machine -run='^$$' -fuzz=FuzzPredecodeSelfModify -fuzztime=10s
	$(GO) test ./internal/machine -run='^$$' -fuzz=FuzzBurstMaskDecode -fuzztime=10s
	$(GO) test ./internal/pruning -run='^$$' -fuzz=FuzzSkipCoordinateRoundTrip -fuzztime=10s

# A short run of the instrument-overhead benchmark: the disabled
# (nil-registry) fast path must stay allocation-free, which -benchmem
# makes visible; TestDisabledPathAllocFree enforces it in `test`.
bench-telemetry:
	$(GO) test ./internal/telemetry -run='^$$' -bench=BenchmarkTelemetryOverhead -benchtime=100x -benchmem

# One un-calibrated iteration of every BenchmarkFullScan row — each
# strategy × accelerator combination plus the attack-space variants —
# so a broken scan configuration fails `make check` instead of being
# discovered at the next full bench run. BENCH_SKIP_WRITE keeps the
# single-iteration timings out of the tracked BENCH_scan.json.
bench-smoke:
	BENCH_SKIP_WRITE=1 $(GO) test -run='^$$' -bench=BenchmarkFullScan -benchtime=1x .

bench:
	$(GO) test -bench=. -benchmem
